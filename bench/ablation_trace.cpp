// Ablation T — observation overhead of ppm::trace.
//
// The tracing hooks are a single never-taken branch per instrumentation
// point when off; when on, each record is a bounds-checked ring store.
// This bench runs the same remote-heavy workload with tracing off and on
// and reports both wall time (host cost of recording) and virtual time
// (which must NOT move: timestamps are virtual, so observation cannot
// perturb the simulated schedule).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;

constexpr uint64_t kN = 1 << 15;

void stencil_workload(Env& env, GlobalShared<double>& a) {
  const uint64_t k = kN / static_cast<uint64_t>(env.node_count());
  const uint64_t offset = k * static_cast<uint64_t>(env.node_id());
  auto vps = env.ppm_do(k);
  env.phase_label("stencil");
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = offset + vp.node_rank();
    // Wrapping neighbors cross the node boundary at the chunk edges, so
    // every phase exercises the fetch/cache/bundle paths being traced.
    const double left = a.get((i + kN - 1) % kN);
    const double right = a.get((i + 1) % kN);
    double acc = 0.25 * (left + right);
    const auto x = static_cast<double>(i);
    for (int t = 0; t < 20; ++t) acc += std::sin(x * 1e-3 + t) * 1e-6;
    a.set(i, acc);
  });
}

/// arg0: tracing off/on.
void BM_Ablation_Trace(benchmark::State& state) {
  RuntimeOptions opts = bench::bench_runtime_options();
  opts.trace = state.range(0) != 0;
  // Modeled-only virtual time: under kMeasured the host cost of recording
  // would leak into the virtual clock and defeat the vtime comparison.
  cluster::MachineConfig mc = bench::bench_machine(8);
  mc.engine.calibration = sim::CalibrationMode::kModeledOnly;
  for (auto _ : state) {
    cluster::Machine machine(mc);
    const RunResult r = run_on(machine, opts, [&](Env& env) {
      auto a = env.global_array<double>(kN);
      for (int round = 0; round < 4; ++round) stencil_workload(env, a);
    });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
    state.counters["trace_events"] =
        static_cast<double>(r.trace_summary.events);
    state.counters["trace_phases"] =
        static_cast<double>(r.trace_summary.phases.size());
  }
  state.counters["trace"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Ablation_Trace)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
