// Figure 3 — "Application Performance of Barnes-Hut Simulation".
//
// Runtime of Barnes–Hut time steps vs node count: PPM (data-driven remote
// tree reads, bundled by the runtime) against the cited MPI method (every
// rank receives full copies of all other ranks' trees every step).
// Expected shape (paper §4.5): PPM scales well; the tree-copying MPI
// method pays an "extremely high volume of data exchange" that grows with
// scale.
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/nbody/nbody_mpi.hpp"
#include "apps/nbody/nbody_ppm.hpp"
#include "bench_common.hpp"
#include "core/ppm.hpp"
#include "mp/comm.hpp"

namespace {

using namespace ppm;
using namespace ppm::apps::nbody;

uint64_t bench_particles() {
  return static_cast<uint64_t>(12'000 * bench::bench_scale());
}

const NbodyOptions kOpts{.theta = 0.5, .eps = 0.01, .dt = 0.002, .steps = 2};

void BM_Fig3_BarnesHutPpm(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const BodySet init = make_plummer(bench_particles(), 2009);
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto st = setup_nbody_ppm(env, init);
          simulate_ppm(env, st, kOpts);
        });
    bench::report_run_counters(state, r);
  }
  state.counters["nodes"] = nodes;
  state.counters["particles"] = static_cast<double>(init.size());
}

void BM_Fig3_BarnesHutMpi(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const BodySet init = make_plummer(bench_particles(), 2009);
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    mp::World world(machine);
    machine.run_per_core([&](const cluster::Place& place) {
      mp::Comm comm = world.comm_at(place);
      auto st = setup_nbody_mpi(comm, init);
      simulate_mpi(comm, st, kOpts);
    });
    state.counters["vtime_ms"] =
        static_cast<double>(machine.last_run_duration_ns()) * 1e-6;
    const auto& fs = machine.fabric().stats();
    state.counters["net_msgs"] =
        static_cast<double>(fs.inter_messages.value());
    state.counters["net_MB"] =
        static_cast<double>(fs.inter_bytes.value()) / 1048576.0;
  }
  state.counters["nodes"] = nodes;
}

}  // namespace

BENCHMARK(BM_Fig3_BarnesHutPpm)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig3_BarnesHutMpi)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
