// Figure 1 — "Application Performance of the CG Solver".
//
// Runtime of a fixed number of CG iterations on the 27-point chimney
// diffusion system, PPM vs MPI, as the node count grows (4 cores per
// node, as on Franklin). Reported metric: `vtime_ms`, the simulated
// machine's virtual time for the solve. Expected shape (paper §4.5): the
// highly tuned MPI code wins clearly at 1 node (PPM pays shared-variable
// access overhead); the gap narrows as nodes are added and communication
// starts to dominate.
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/cg/cg_mpi.hpp"
#include "apps/cg/cg_ppm.hpp"
#include "bench_common.hpp"
#include "core/ppm.hpp"
#include "mp/comm.hpp"

namespace {

using namespace ppm;
using namespace ppm::apps::cg;

ChimneyProblem bench_problem() {
  const double s = std::cbrt(bench::bench_scale());
  return ChimneyProblem{
      .nx = static_cast<uint64_t>(24 * s),
      .ny = static_cast<uint64_t>(24 * s),
      .nz = static_cast<uint64_t>(48 * s),
  };
}

const CgOptions kIters{.max_iterations = 8, .tolerance = 0.0};

void BM_Fig1_CgPpm(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const ChimneyProblem problem = bench_problem();
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          (void)cg_solve_ppm(env, problem, kIters);
        });
    bench::report_run_counters(state, r);
  }
  state.counters["nodes"] = nodes;
  // Matrix order of the chimney system (constant across node counts:
  // this is a strong-scaling figure). Named explicitly so the column is
  // self-describing next to the traffic counters; the MPI rows report
  // the same value.
  state.counters["problem_unknowns"] = static_cast<double>(problem.unknowns());
}

void BM_Fig1_CgMpi(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const ChimneyProblem problem = bench_problem();
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    mp::World world(machine);
    machine.run_per_core([&](const cluster::Place& place) {
      mp::Comm comm = world.comm_at(place);
      (void)cg_solve_mpi(comm, problem, kIters);
    });
    state.counters["vtime_ms"] =
        static_cast<double>(machine.last_run_duration_ns()) * 1e-6;
    const auto& fs = machine.fabric().stats();
    state.counters["net_msgs"] =
        static_cast<double>(fs.inter_messages.value());
    state.counters["net_MB"] =
        static_cast<double>(fs.inter_bytes.value()) / 1048576.0;
  }
  state.counters["nodes"] = nodes;
  state.counters["problem_unknowns"] = static_cast<double>(problem.unknowns());
}

// Figure 1 extended past the paper's axis: the same strong-scaling solve
// on 64-1024 simulated nodes. Modeled-only calibration (the virtual
// clock is a pure function of the cost model, so rows are reproducible
// bit-for-bit) and the conservative-window parallel engine + lazy block
// store (docs/SIM.md) make thousand-node machines tractable in one
// host process. Args are {nodes, sim_threads}; the 256-node row runs at
// both thread counts so BENCH_fig.json carries a wall_speedup column.
// The 8-node row is the reduction-primitive pin: CG's dot-product phases
// ride Env::reduce/reduce_dot, so its accums_executed /
// reduction_bytes_saved counters and the message/byte totals record the
// owner-side win over the fetch-based dot path (bench/perf_baseline.json
// pins the same shape for the CI gate).
void BM_Fig1_CgPpmModeled(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int sim_threads = static_cast<int>(state.range(1));
  const ChimneyProblem problem = bench_problem();
  for (auto _ : state) {
    cluster::MachineConfig mc = bench::bench_machine(nodes);
    mc.engine.calibration = sim::CalibrationMode::kModeledOnly;
    mc.sim_threads = sim_threads;
    cluster::Machine machine(mc);
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          (void)cg_solve_ppm(env, problem, kIters);
        });
    bench::report_run_counters(state, r);
    state.counters["windows"] =
        static_cast<double>(machine.window_stats().windows);
  }
  state.counters["nodes"] = nodes;
  state.counters["sim_threads"] = sim_threads;
  state.counters["problem_unknowns"] = static_cast<double>(problem.unknowns());
}

}  // namespace

BENCHMARK(BM_Fig1_CgPpm)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig1_CgMpi)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig1_CgPpmModeled)
    ->Args({8, 1})
    ->Args({64, 1})->Args({256, 1})->Args({256, 4})->Args({1024, 4})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
