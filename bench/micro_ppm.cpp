// Microbenchmarks of PPM runtime primitives, in simulated time: shared
// read paths (local / cached remote / uncached remote), write+commit
// throughput, and bare phase overhead. These are the constants behind the
// application-level figures.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;

/// Bare global phase overhead (no VP work), per phase, vs node count.
void BM_MicroPpm_EmptyPhase(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  constexpr int kPhases = 50;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto vps = env.ppm_do(1);
          for (int i = 0; i < kPhases; ++i) {
            vps.global_phase([](Vp&) {});
          }
        });
    state.counters["per_phase_us"] =
        r.duration_s() * 1e6 / kPhases;
  }
  state.counters["nodes"] = nodes;
}

/// Node phase overhead for comparison (no network involvement).
void BM_MicroPpm_EmptyNodePhase(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  constexpr int kPhases = 50;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto vps = env.ppm_do_async(1);
          for (int i = 0; i < kPhases; ++i) {
            vps.node_phase([](Vp&) {});
          }
        });
    state.counters["per_phase_us"] = r.duration_s() * 1e6 / kPhases;
  }
  state.counters["nodes"] = nodes;
}

/// Read path costs: arg0 selects the flavor.
enum ReadFlavor : int64_t { kLocal = 0, kRemoteCached = 1, kRemoteCold = 2 };

void BM_MicroPpm_Read(benchmark::State& state) {
  const auto flavor = static_cast<ReadFlavor>(state.range(0));
  constexpr uint64_t kN = 1 << 16;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(2, /*cores=*/1));
    uint64_t reads = 0;
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto a = env.global_array<double>(kN);
          auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
          vps.global_phase([&](Vp&) {
            double acc = 0;
            switch (flavor) {
              case kLocal:
                for (uint64_t i = 0; i < kN / 2; ++i) acc += a.get(i);
                reads = kN / 2;
                break;
              case kRemoteCached:
                // First sweep warms the block cache, second is timed load.
                for (int sweep = 0; sweep < 8; ++sweep) {
                  for (uint64_t i = kN / 2; i < kN; ++i) acc += a.get(i);
                }
                reads = 8 * kN / 2;
                break;
              case kRemoteCold:
                // Strided reads: one per block, always cold.
                for (uint64_t i = kN / 2; i < kN; i += 2048) {
                  acc += a.get(i);
                  ++reads;
                }
                break;
            }
            benchmark::DoNotOptimize(acc);
          });
        });
    state.counters["per_read_ns"] =
        reads > 0 ? static_cast<double>(r.duration_ns) /
                        static_cast<double>(reads)
                  : 0;
    state.counters["blocks"] = static_cast<double>(r.remote_blocks_fetched);
  }
}

/// Deferred write + commit cost per entry (remote scatter, 2 nodes).
void BM_MicroPpm_WriteCommit(benchmark::State& state) {
  constexpr uint64_t kN = 1 << 15;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(2, /*cores=*/1));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto a = env.global_array<double>(kN);
          auto vps = env.ppm_do(env.node_id() == 0 ? kN / 2 : 0);
          vps.global_phase([&](Vp& vp) {
            a.set(kN / 2 + vp.node_rank(), 1.0);  // all remote
          });
        });
    state.counters["per_write_ns"] =
        static_cast<double>(r.duration_ns) / (kN / 2);
    state.counters["bundles"] = static_cast<double>(r.bundles_sent);
  }
}

/// Same write+commit workload under the ppm::check sanitizer (arg0 != 0)
/// vs the plain path (arg0 == 0): the cost of validation when you opt in,
/// and a regression guard for the never-taken hook branch when you don't.
void BM_MicroPpm_WriteCommitChecked(benchmark::State& state) {
  const bool validate = state.range(0) != 0;
  constexpr uint64_t kN = 1 << 15;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(2, /*cores=*/1));
    RuntimeOptions opts = bench::bench_runtime_options();
    opts.validate_phases = validate;
    const RunResult r = run_on(machine, opts, [&](Env& env) {
      auto a = env.global_array<double>(kN);
      auto vps = env.ppm_do(env.node_id() == 0 ? kN / 2 : 0);
      vps.global_phase([&](Vp& vp) {
        a.set(kN / 2 + vp.node_rank(), 1.0);  // all remote
      });
    });
    state.counters["per_write_ns"] =
        static_cast<double>(r.duration_ns) / (kN / 2);
    state.counters["entries_checked"] =
        static_cast<double>(r.check_report.commit_entries_scanned);
  }
}

/// ppm_do group coordination cost vs node count.
void BM_MicroPpm_GroupCreate(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  constexpr int kGroups = 30;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          for (int i = 0; i < kGroups; ++i) {
            (void)env.ppm_do(4);
          }
        });
    state.counters["per_group_us"] = r.duration_s() * 1e6 / kGroups;
  }
  state.counters["nodes"] = nodes;
}

}  // namespace

BENCHMARK(BM_MicroPpm_EmptyPhase)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1);
BENCHMARK(BM_MicroPpm_EmptyNodePhase)->Arg(1)->Arg(4)->Arg(16)
    ->Iterations(1);
BENCHMARK(BM_MicroPpm_Read)->Arg(0)->Arg(1)->Arg(2)->Iterations(1);
BENCHMARK(BM_MicroPpm_WriteCommit)->Iterations(1);
BENCHMARK(BM_MicroPpm_WriteCommitChecked)->Arg(0)->Arg(1)->Iterations(1);
BENCHMARK(BM_MicroPpm_GroupCreate)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1);

BENCHMARK_MAIN();
