// Read-engine fast-path microbenchmark: per-element cost of the three
// access flavors the hot-path campaign optimizes — the handle-inline
// local read, the handle-inline cached-remote-block read, and the bulk
// read_n span path. Reported as per_read_ns next to the figure rows in
// BENCH_fig.json so per-element overhead regressions are visible without
// rerunning the applications.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;

// Arg0 selects the flavor (1/2 run in --smoke sweeps, see tools/bench.sh).
enum ReadPath : int64_t { kLocalInline = 1, kCachedInline = 2, kBulkReadN = 3 };

void BM_ReadElemFastPath(benchmark::State& state) {
  const auto path = static_cast<ReadPath>(state.range(0));
  constexpr uint64_t kN = 1 << 16;
  constexpr uint64_t kHalf = kN / 2;
  constexpr int kSweeps = 8;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(2, /*cores=*/1));
    uint64_t reads = 0;
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto a = env.global_array<double>(kN);
          std::vector<double> buf(kHalf);
          auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
          vps.global_phase([&](Vp&) {
            double acc = 0;
            switch (path) {
              case kLocalInline:
                for (int s = 0; s < kSweeps; ++s) {
                  for (uint64_t i = 0; i < kHalf; ++i) acc += a.get(i);
                }
                reads = kSweeps * kHalf;
                break;
              case kCachedInline:
                // First sweep fills the block cache; the steady state is
                // the handle-probe hit path.
                for (int s = 0; s < kSweeps; ++s) {
                  for (uint64_t i = kHalf; i < kN; ++i) acc += a.get(i);
                }
                reads = kSweeps * kHalf;
                break;
              case kBulkReadN:
                // Same cached-remote range through the span path: the
                // first sweep fetches, later sweeps are per-block copies.
                for (int s = 0; s < kSweeps; ++s) {
                  a.read_n(kHalf, kHalf, buf.data());
                  acc += buf[0] + buf[kHalf - 1];
                }
                reads = kSweeps * kHalf;
                break;
            }
            benchmark::DoNotOptimize(acc);
          });
        });
    state.counters["per_read_ns"] =
        static_cast<double>(r.duration_ns) / static_cast<double>(reads);
    state.counters["slow_path_reads"] =
        static_cast<double>(r.slow_path_reads);
    state.counters["blocks"] = static_cast<double>(r.remote_blocks_fetched);
  }
}

}  // namespace

BENCHMARK(BM_ReadElemFastPath)->Arg(1)->Arg(2)->Arg(3)->Iterations(1);

BENCHMARK_MAIN();
