// Ablation A — read bundling (§3.3 "bundling up fine-grained remote shared
// data accesses into coarse-grained packages").
//
// Runs the two read-dominated applications (CG SpMV iterations and
// Barnes–Hut force walks) with the runtime's read bundling disabled
// (element-at-a-time fetches), and enabled at several block sizes. The
// paper's claim is that this single runtime mechanism is what makes naive
// fine-grained shared-memory style programs efficient on a cluster.
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/cg/cg_ppm.hpp"
#include "apps/nbody/nbody_ppm.hpp"
#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;

RuntimeOptions options_for(int64_t block_bytes) {
  RuntimeOptions opts;
  if (block_bytes == 0) {
    opts.bundle_reads = false;
  } else {
    opts.bundle_reads = true;
    opts.read_block_bytes = static_cast<uint32_t>(block_bytes);
  }
  return opts;
}

/// arg0: read block bytes (0 = bundling off). 4 nodes x 4 cores.
void BM_Ablation_Bundling_Cg(benchmark::State& state) {
  const apps::cg::ChimneyProblem problem{.nx = 12, .ny = 12, .nz = 24};
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(4));
    const RunResult r =
        run_on(machine, options_for(state.range(0)), [&](Env& env) {
          (void)apps::cg::cg_solve_ppm(env, problem,
                                       {.max_iterations = 4,
                                        .tolerance = 0.0});
        });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
    state.counters["blocks"] = static_cast<double>(r.remote_blocks_fetched);
    state.counters["cache_hits"] =
        static_cast<double>(r.remote_reads_served_from_cache);
  }
  state.counters["block_bytes"] = static_cast<double>(state.range(0));
}

void BM_Ablation_Bundling_BarnesHut(benchmark::State& state) {
  const auto init = apps::nbody::make_plummer(3000, 99);
  const apps::nbody::NbodyOptions opts{.theta = 0.5, .eps = 0.02,
                                       .dt = 0.002, .steps = 1};
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(4));
    const RunResult r =
        run_on(machine, options_for(state.range(0)), [&](Env& env) {
          auto st = apps::nbody::setup_nbody_ppm(env, init);
          apps::nbody::simulate_ppm(env, st, opts);
        });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
    state.counters["blocks"] = static_cast<double>(r.remote_blocks_fetched);
  }
  state.counters["block_bytes"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_Ablation_Bundling_Cg)
    ->Arg(0)->Arg(512)->Arg(2048)->Arg(16384)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_Bundling_BarnesHut)
    ->Arg(0)->Arg(512)->Arg(2048)->Arg(16384)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
