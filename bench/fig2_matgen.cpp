// Figure 2 — "Application Performance of the Matrix Generation".
//
// Runtime of the multi-scale collocation sparse-matrix generation, PPM vs
// MPI, vs node count. Expected shape (paper §4.5): the computation is
// complex (numerical quadrature) and data volume modest, so the PPM
// runtime's shared-access overhead is not a significant factor; "the PPM
// program consistently performs better than the MPI implementation" and
// scales better as nodes increase.
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/collocation/matgen_mpi.hpp"
#include "apps/collocation/matgen_ppm.hpp"
#include "bench_common.hpp"
#include "core/ppm.hpp"
#include "mp/comm.hpp"

namespace {

using namespace ppm;
using namespace ppm::apps::collocation;

CollocationProblem bench_problem() {
  const double s = bench::bench_scale();
  CollocationProblem p;
  p.levels = 7;
  p.base = static_cast<uint64_t>(32 * s);
  p.refine_terms = 10;
  p.combo_terms = 8;
  p.bandwidth = 3;
  p.quadrature_points = 48;
  p.seed = 20090401;
  return p;
}

void BM_Fig2_MatgenPpm(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const CollocationProblem problem = bench_problem();
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    uint64_t nnz = 0;
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          const auto out = generate_matrix_ppm(env, problem);
          if (env.node_id() == 0) nnz = out.local_rows.nnz();
        });
    bench::report_run_counters(state, r);
    benchmark::DoNotOptimize(nnz);
  }
  state.counters["nodes"] = nodes;
  state.counters["points"] = static_cast<double>(problem.total_points());
}

void BM_Fig2_MatgenMpi(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const CollocationProblem problem = bench_problem();
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    mp::World world(machine);
    machine.run_per_core([&](const cluster::Place& place) {
      mp::Comm comm = world.comm_at(place);
      const auto out = generate_matrix_mpi(comm, problem);
      benchmark::DoNotOptimize(out.local_rows.nnz());
    });
    state.counters["vtime_ms"] =
        static_cast<double>(machine.last_run_duration_ns()) * 1e-6;
    const auto& fs = machine.fabric().stats();
    state.counters["net_msgs"] =
        static_cast<double>(fs.inter_messages.value());
    state.counters["net_MB"] =
        static_cast<double>(fs.inter_bytes.value()) / 1048576.0;
  }
  state.counters["nodes"] = nodes;
}

}  // namespace

BENCHMARK(BM_Fig2_MatgenPpm)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig2_MatgenMpi)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
