// Simulator scaling — wall-clock throughput of the conservative-window
// parallel engine (docs/SIM.md).
//
// The same modeled CG solve on a fixed 16-node machine, swept over the
// host-thread count driving the simulation. Virtual time and every
// traffic counter are bit-identical across the sweep (that is the
// engine's determinism contract, gated in tools/ci.sh); the only thing
// that may change is `real_time` — how long the host takes to replay the
// run. BENCH_fig.json derives `wall_speedup` for each row from its
// sim_threads=1 twin.
//
// Caveat for readers of the numbers: speedup requires host cores. On a
// single-core host the sweep measures pure windowing overhead (barrier
// wakeups + cross-window merge), which is the honest baseline cost of
// the machinery.
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/cg/cg_ppm.hpp"
#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;
using namespace ppm::apps::cg;

void BM_SimScale_Cg(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int sim_threads = static_cast<int>(state.range(1));
  const double s = std::cbrt(bench::bench_scale());
  const ChimneyProblem problem{
      .nx = static_cast<uint64_t>(24 * s),
      .ny = static_cast<uint64_t>(24 * s),
      .nz = static_cast<uint64_t>(48 * s),
  };
  const CgOptions iters{.max_iterations = 8, .tolerance = 0.0};
  for (auto _ : state) {
    cluster::MachineConfig mc = bench::bench_machine(nodes);
    // Modeled-only virtual clock: identical events regardless of host
    // speed or thread count, so the sweep isolates host-side cost.
    mc.engine.calibration = sim::CalibrationMode::kModeledOnly;
    mc.sim_threads = sim_threads;
    cluster::Machine machine(mc);
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          (void)cg_solve_ppm(env, problem, iters);
        });
    bench::report_run_counters(state, r);
    state.counters["windows"] =
        static_cast<double>(machine.window_stats().windows);
    state.counters["engine_activations"] =
        static_cast<double>(machine.window_stats().engine_activations);
  }
  state.counters["nodes"] = nodes;
  state.counters["sim_threads"] = sim_threads;
}

}  // namespace

BENCHMARK(BM_SimScale_Cg)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8})
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
