// Shared configuration for the benchmark harness.
//
// All figure benches run on the same simulated machine model, loosely
// calibrated to the paper's platform (Cray XT4 "Franklin": 4-core 2.3 GHz
// Opteron nodes, SeaStar interconnect):
//   * network: ~6 us end-to-end small-message latency, ~2 GB/s per-node
//     injection bandwidth, per-message software overheads;
//   * intra-node transport (used by MPI ranks on one node): sub-microsecond
//     latency, memcpy-class bandwidth, but still a per-message cost — the
//     effect the paper's SmartMap footnote discusses;
//   * compute: measured host CPU time of the real kernels, scaled by a
//     calibration factor into simulated-core time.
//
// The absolute numbers are not the point (our substrate is a simulator);
// the benches exist to reproduce the *shape* of Figures 1-3 and Table 1.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "cluster/machine.hpp"
#include "core/options.hpp"
#include "sim/engine.hpp"

namespace ppm::bench {

inline constexpr int kCoresPerNode = 4;  // Franklin's quad-core nodes

/// Host-CPU-ns -> simulated-core-ns scale. The host of record is several
/// times faster than a 2.3 GHz Opteron core; 3.0 keeps compute/network
/// ratios in a realistic band.
inline double calibration_factor() {
  if (const char* env = std::getenv("PPM_BENCH_CALIBRATION")) {
    return std::atof(env);
  }
  return 3.0;
}

inline cluster::MachineConfig bench_machine(int nodes,
                                            int cores = kCoresPerNode) {
  cluster::MachineConfig cfg;
  cfg.nodes = nodes;
  cfg.cores_per_node = cores;
  cfg.network = {.latency_ns = 6'000,
                 .bytes_per_ns = 2.0,
                 .send_overhead_ns = 600,
                 .recv_overhead_ns = 600};
  cfg.intranode = {.latency_ns = 500,
                   .bytes_per_ns = 5.0,
                   .send_overhead_ns = 200,
                   .recv_overhead_ns = 200};
  cfg.engine.calibration = sim::CalibrationMode::kMeasured;
  cfg.engine.calibration_factor = calibration_factor();
  return cfg;
}

inline RuntimeOptions bench_runtime_options() {
  RuntimeOptions opts;  // the defaults are the tuned configuration
  // Coarser bundles than the library default: at the figures' problem
  // sizes the walks/reads touch large remote regions, so bigger blocks
  // amortize per-message latency further (ablation_bundling sweeps this).
  opts.read_block_bytes = 16 * 1024;
  // No additional modeled per-access cost: the *real* cost of going
  // through the runtime library on every shared access is measured by the
  // calibrated virtual clock, and it is already the dominant PPM-side
  // overhead the paper describes ("accesses to the PPM shared variables go
  // through the PPM runtime library, which will bring in some overhead").
  return opts;
}

/// Standard RunResult counters for the PPM side of a bench. tools/bench.sh
/// collects these rows into BENCH_fig.json, so figure benches and
/// ablations report one consistent set.
inline void report_run_counters(benchmark::State& state,
                                const RunResult& r) {
  state.counters["vtime_ms"] = r.duration_s() * 1e3;
  state.counters["duration_ns"] = static_cast<double>(r.duration_ns);
  state.counters["net_msgs"] = static_cast<double>(r.network_messages);
  state.counters["net_bytes"] = static_cast<double>(r.network_bytes);
  state.counters["net_MB"] =
      static_cast<double>(r.network_bytes) / 1048576.0;
  state.counters["bundles"] = static_cast<double>(r.bundles_sent);
  state.counters["fetch_stall_ns"] =
      static_cast<double>(r.fetch_stall_ns);
  state.counters["prefetch_hits"] = static_cast<double>(r.prefetch_hits);
  state.counters["combined"] = static_cast<double>(r.entries_combined);
  state.counters["accums_executed"] =
      static_cast<double>(r.accums_executed);
  state.counters["reduction_bytes_saved"] =
      static_cast<double>(r.reduction_bytes_saved);
  state.counters["blocks_migrated"] =
      static_cast<double>(r.blocks_migrated);
  state.counters["migration_KB"] =
      static_cast<double>(r.migration_bytes) / 1024.0;
  state.counters["remote_to_local"] =
      static_cast<double>(r.remote_to_local_conversions);
}

/// Scale factor for problem sizes: PPM_BENCH_SCALE=2 doubles workloads,
/// =0.5 halves them. Lets the harness run on slow hosts.
inline double bench_scale() {
  if (const char* env = std::getenv("PPM_BENCH_SCALE")) {
    return std::atof(env);
  }
  return 1.0;
}

}  // namespace ppm::bench
