// Ablation C — layered parallelism (§3 "when an algorithm step fits
// naturally, using the node-level can save overhead in global
// communication and synchronization").
//
// Workload: iterative smoothing that is purely node-local (each node's
// data has no cross-node coupling). Implemented twice:
//   * node phases  — per-node synchronization only, no network traffic;
//   * global phases — the same computation on a global array, paying a
//     cluster-wide barrier and commit protocol every iteration.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;

constexpr uint64_t kPerNode = 4096;
constexpr int kIterations = 20;

void BM_Ablation_NodePhases(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto x = env.node_array<double>(kPerNode);
          auto vps = env.ppm_do_async(kPerNode);
          for (int it = 0; it < kIterations; ++it) {
            vps.node_phase([&](Vp& vp) {
              const uint64_t i = vp.node_rank();
              const double left = x.get((i + kPerNode - 1) % kPerNode);
              const double right = x.get((i + 1) % kPerNode);
              x.set(i, 0.25 * left + 0.5 * x.get(i) + 0.25 * right +
                           1e-3 * std::sin(static_cast<double>(i)));
            });
          }
          env.barrier();  // one global sync at the end
        });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}

void BM_Ablation_GlobalPhases(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          const uint64_t n =
              kPerNode * static_cast<uint64_t>(env.node_count());
          auto x = env.global_array<double>(n);
          const uint64_t base = x.local_begin();
          auto vps = env.ppm_do(kPerNode);
          for (int it = 0; it < kIterations; ++it) {
            vps.global_phase([&](Vp& vp) {
              // Same node-local neighborhoods: wrap within the own chunk so
              // the computation is identical, only the phase kind differs.
              const uint64_t i = vp.node_rank();
              const uint64_t gi = base + i;
              const double left = x.get(base + (i + kPerNode - 1) % kPerNode);
              const double right = x.get(base + (i + 1) % kPerNode);
              x.set(gi, 0.25 * left + 0.5 * x.get(gi) + 0.25 * right +
                            1e-3 * std::sin(static_cast<double>(i)));
            });
          }
        });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_Ablation_NodePhases)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_GlobalPhases)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
