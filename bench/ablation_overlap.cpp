// Ablation B — communication/computation overlap (§3.3 "scheduling
// communication needs and computation tasks to enable (automatic) overlap
// of computation and communication").
//
// Workload: a scatter phase in which every VP computes (real work) and
// writes results to remote elements of a global array. With eager
// flushing, write bundles stream to their destinations while the phase is
// still computing; without it, all write traffic is serialized into the
// end-of-phase commit.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;

constexpr uint64_t kN = 1 << 16;

void scatter_workload(Env& env, GlobalShared<double>& a) {
  const uint64_t k = kN / static_cast<uint64_t>(env.node_count());
  const uint64_t offset = k * static_cast<uint64_t>(env.node_id());
  auto vps = env.ppm_do(k);
  vps.global_phase([&](Vp& vp) {
    // Real compute per element, then a remote write (shifted by half the
    // array so nearly every write leaves the node).
    double acc = 0;
    const auto i = static_cast<double>(vp.global_rank());
    for (int t = 0; t < 60; ++t) acc += std::sin(i * 1e-3 + t);
    a.set((offset + vp.node_rank() + kN / 2) % kN, acc);
  });
}

/// arg0: eager flush on/off; arg1: flush threshold in KiB.
void BM_Ablation_Overlap(benchmark::State& state) {
  RuntimeOptions opts = bench::bench_runtime_options();
  opts.eager_flush = state.range(0) != 0;
  opts.flush_threshold_bytes = static_cast<uint32_t>(state.range(1)) * 1024;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(4));
    const RunResult r = run_on(machine, opts, [&](Env& env) {
      auto a = env.global_array<double>(kN);
      for (int round = 0; round < 3; ++round) scatter_workload(env, a);
    });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["bundles"] = static_cast<double>(r.bundles_sent);
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
  }
  state.counters["eager"] = static_cast<double>(state.range(0));
  state.counters["threshold_KiB"] = static_cast<double>(state.range(1));
}

}  // namespace

BENCHMARK(BM_Ablation_Overlap)
    ->Args({0, 64})   // lazy: everything at commit
    ->Args({1, 16})   // eager, fine-grained streaming
    ->Args({1, 64})   // eager, default threshold
    ->Args({1, 256})  // eager, coarse fragments
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
