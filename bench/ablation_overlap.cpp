// Ablation B — communication/computation overlap (§3.3 "scheduling
// communication needs and computation tasks to enable (automatic) overlap
// of computation and communication").
//
// Two sweeps:
//  * BM_Ablation_Overlap — write-side overlap (eager flushing): bundles
//    stream to their destinations while the phase is still computing;
//    without it, all write traffic is serialized into the end-of-phase
//    commit.
//  * BM_Ablation_OverlapEngine — the read/write overlap engine at 8
//    nodes: VP miss-switching (a cache miss runs other ready VPs while
//    the fetch is in flight) crossed with sender-side write combining
//    (same-VP accumulate entries pre-reduced in the dest buffers).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;

constexpr uint64_t kN = 1 << 16;

void scatter_workload(Env& env, GlobalShared<double>& a) {
  const uint64_t k = kN / static_cast<uint64_t>(env.node_count());
  const uint64_t offset = k * static_cast<uint64_t>(env.node_id());
  auto vps = env.ppm_do(k);
  vps.global_phase([&](Vp& vp) {
    // Real compute per element, then a remote write (shifted by half the
    // array so nearly every write leaves the node).
    double acc = 0;
    const auto i = static_cast<double>(vp.global_rank());
    for (int t = 0; t < 60; ++t) acc += std::sin(i * 1e-3 + t);
    a.set((offset + vp.node_rank() + kN / 2) % kN, acc);
  });
}

/// arg0: eager flush on/off; arg1: flush threshold in KiB.
void BM_Ablation_Overlap(benchmark::State& state) {
  RuntimeOptions opts = bench::bench_runtime_options();
  opts.eager_flush = state.range(0) != 0;
  opts.flush_threshold_bytes = static_cast<uint32_t>(state.range(1)) * 1024;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(4));
    const RunResult r = run_on(machine, opts, [&](Env& env) {
      auto a = env.global_array<double>(kN);
      for (int round = 0; round < 3; ++round) scatter_workload(env, a);
    });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["bundles"] = static_cast<double>(r.bundles_sent);
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
  }
  state.counters["eager"] = static_cast<double>(state.range(0));
  state.counters["threshold_KiB"] = static_cast<double>(state.range(1));
}

// ---- Overlap engine: miss-switching x write combining at 8 nodes ----

constexpr int kEngNodes = 8;
constexpr uint64_t kEngVpsPerNode = 256;
constexpr int kEngReadsPerVp = 2;
constexpr int kEngAddsPerVp = 8;
// 64 blocks of 2048 doubles (16 KiB read blocks) per node.
constexpr uint64_t kEngBlockElems = 2048;
constexpr uint64_t kEngBlocksPerNode = 64;
constexpr uint64_t kEngTableN =
    kEngNodes * kEngBlocksPerNode * kEngBlockElems;
constexpr uint64_t kEngBinsPerNode = 64;

// Deterministic index mixer (splitmix64 finalizer).
uint64_t eng_mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Every VP reads a few scattered elements from remote cache blocks (each
/// read a likely miss: the table has 448 remote blocks per node and only
/// 512 VP reads), computes on them, and accumulates several partial
/// results into one remote bin. Miss-switching pipelines the block round
/// trips across a core's VPs; combining folds the same-VP adds into one
/// wire entry.
void overlap_engine_workload(Env& env, GlobalShared<double>& tab,
                             GlobalShared<double>& bins) {
  const auto n = static_cast<uint64_t>(env.node_id());
  const auto nodes = static_cast<uint64_t>(env.node_count());
  auto vps = env.ppm_do(kEngVpsPerNode);
  vps.global_phase([&](Vp& vp) {
    const uint64_t j = vp.node_rank();
    double acc = 0;
    for (int t = 0; t < kEngReadsPerVp; ++t) {
      const uint64_t h = eng_mix(n * kEngVpsPerNode * 4 + j * 4 +
                                 static_cast<uint64_t>(t));
      const uint64_t owner = (n + 1 + h % (nodes - 1)) % nodes;
      const uint64_t elem = owner * kEngBlocksPerNode * kEngBlockElems +
                            (h >> 8) % (kEngBlocksPerNode * kEngBlockElems);
      const double x = tab.get(elem);
      for (int s = 0; s < 40; ++s) acc += std::sin(x + s);
    }
    const uint64_t hb = eng_mix(n * kEngVpsPerNode + j);
    const uint64_t bin_owner = (n + 1 + hb % (nodes - 1)) % nodes;
    const uint64_t bin =
        bin_owner * kEngBinsPerNode + (hb >> 8) % kEngBinsPerNode;
    for (int t = 0; t < kEngAddsPerVp; ++t) {
      bins.add(bin, acc * (1.0 + t));
    }
  });
}

/// arg0: overlap_reads (miss-switching); arg1: combine_writes.
/// Automatic stream prefetch is pinned off in every config so the read
/// traffic is identical across rows and the network_bytes delta isolates
/// write combining.
void BM_Ablation_OverlapEngine(benchmark::State& state) {
  RuntimeOptions opts = bench::bench_runtime_options();
  opts.overlap_reads = state.range(0) != 0;
  opts.combine_writes = state.range(1) != 0;
  opts.prefetch_lookahead_blocks = 0;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(kEngNodes));
    const RunResult r = run_on(machine, opts, [&](Env& env) {
      auto tab = env.global_array<double>(kEngTableN);
      auto bins = env.global_array<double>(kEngNodes * kEngBinsPerNode);
      // Fill the table so reads see nonzero data.
      {
        auto init = env.ppm_do(kEngBlocksPerNode);
        init.global_phase([&](Vp& vp) {
          const uint64_t b0 = tab.local_begin() +
                              vp.node_rank() * kEngBlockElems;
          for (uint64_t i = 0; i < kEngBlockElems; ++i) {
            tab.set(b0 + i, static_cast<double>(i % 97) * 0.01);
          }
        });
      }
      for (int round = 0; round < 3; ++round) {
        overlap_engine_workload(env, tab, bins);
      }
    });
    bench::report_run_counters(state, r);
  }
  state.counters["overlap"] = static_cast<double>(state.range(0));
  state.counters["combine"] = static_cast<double>(state.range(1));
}

}  // namespace

BENCHMARK(BM_Ablation_Overlap)
    ->Args({0, 64})   // lazy: everything at commit
    ->Args({1, 16})   // eager, fine-grained streaming
    ->Args({1, 64})   // eager, default threshold
    ->Args({1, 256})  // eager, coarse fragments
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Ablation_OverlapEngine)
    ->Args({0, 0})  // both off: stall on every miss, ship every entry
    ->Args({1, 0})  // miss-switching only
    ->Args({0, 1})  // write combining only
    ->Args({1, 1})  // full overlap engine (the library default)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
