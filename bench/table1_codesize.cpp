// Table 1 — "Code Size (Number of Lines)".
//
// The paper compares the application source sizes of the PPM and MPI
// programs (CG 161 vs 733; matrix generation 424 vs 744; Barnes-Hut 499
// vs N/A) and attributes the difference to the explicit communication
// bundling/unbundling and synchronization code MPI needs. This binary
// counts the same quantity for this repository's implementations:
// non-blank, non-comment lines of each application's implementation
// sources (shared problem/workload code like the matrix generator or the
// octree is excluded — both versions use it equally, as both versions in
// the paper share the "computation code").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

#ifndef PPM_SOURCE_DIR
#error "PPM_SOURCE_DIR must be defined"
#endif

/// Count non-blank, non-comment lines (// and /* */ style).
int count_loc(const std::vector<std::string>& files) {
  int lines = 0;
  for (const auto& rel : files) {
    std::ifstream in(std::string(PPM_SOURCE_DIR) + "/" + rel);
    if (!in) {
      std::fprintf(stderr, "table1: cannot open %s\n", rel.c_str());
      continue;
    }
    std::string line;
    bool in_block_comment = false;
    while (std::getline(in, line)) {
      // Strip leading whitespace.
      size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos) continue;
      std::string_view s(line.c_str() + i);
      if (in_block_comment) {
        const size_t close = s.find("*/");
        if (close == std::string_view::npos) continue;
        s.remove_prefix(close + 2);
        in_block_comment = false;
        if (s.find_first_not_of(" \t") == std::string_view::npos) continue;
      }
      if (s.starts_with("//")) continue;
      if (s.starts_with("/*")) {
        if (s.find("*/") == std::string_view::npos) in_block_comment = true;
        continue;
      }
      ++lines;
    }
  }
  return lines;
}

struct Row {
  const char* application;
  std::vector<std::string> ppm_files;
  std::vector<std::string> mpi_files;
};

const std::vector<Row>& rows() {
  // Implementation files only (headers are interface documentation); the
  // CG extensions (SSOR preconditioning, general-matrix solver) live in
  // cg_ppm_ext.cpp and are deliberately not counted — the paper's row is
  // the plain CG application program.
  static const std::vector<Row> kRows = {
      {"Conjugate Gradient",
       {"src/apps/cg/cg_ppm.cpp"},
       {"src/apps/cg/cg_mpi.cpp"}},
      {"Matrix Generation",
       {"src/apps/collocation/matgen_ppm.cpp"},
       {"src/apps/collocation/matgen_mpi.cpp"}},
      {"Barnes Hut",
       {"src/apps/nbody/nbody_ppm.cpp"},
       {"src/apps/nbody/nbody_mpi.cpp"}},
  };
  return kRows;
}

void BM_Table1_CodeSize(benchmark::State& state) {
  const Row& row = rows()[static_cast<size_t>(state.range(0))];
  int ppm = 0, mpi = 0;
  for (auto _ : state) {
    ppm = count_loc(row.ppm_files);
    mpi = count_loc(row.mpi_files);
  }
  state.counters["ppm_lines"] = ppm;
  state.counters["mpi_lines"] = mpi;
  state.counters["mpi_over_ppm"] =
      ppm > 0 ? static_cast<double>(mpi) / ppm : 0.0;
  state.SetLabel(row.application);
}

}  // namespace

BENCHMARK(BM_Table1_CodeSize)->Arg(0)->Arg(1)->Arg(2)->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // Also print the table in the paper's layout.
  std::printf("\nTable 1. Code Size (Number of Lines)\n");
  std::printf("%-22s %12s %12s\n", "Application", "PPM Program",
              "MPI Program");
  for (const Row& row : rows()) {
    std::printf("%-22s %12d %12d\n", row.application,
                count_loc(row.ppm_files), count_loc(row.mpi_files));
  }
  benchmark::Shutdown();
  return 0;
}
