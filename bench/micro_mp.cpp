// Microbenchmarks of the message-passing substrate: point-to-point
// latency/bandwidth curves and collective costs vs rank count, in
// simulated time. These pin down the machine model underneath Figures 1-3.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "mp/comm.hpp"

namespace {

using namespace ppm;

/// arg0: message bytes. Simulated ping-pong between two nodes.
void BM_Micro_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<size_t>(state.range(0));
  constexpr int kRounds = 50;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(2, /*cores=*/1));
    mp::World world(machine);
    machine.run_per_core([&](const cluster::Place& place) {
      mp::Comm comm = world.comm_at(place);
      Bytes payload(bytes, std::byte{1});
      for (int i = 0; i < kRounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 0, Bytes(payload));
          (void)comm.recv(1, 0);
        } else {
          (void)comm.recv(0, 0);
          comm.send(0, 0, Bytes(payload));
        }
      }
    });
    const double rtt_us = static_cast<double>(
                              machine.last_run_duration_ns()) /
                          kRounds * 1e-3;
    state.counters["rtt_us"] = rtt_us;
    state.counters["bw_MBps"] =
        rtt_us > 0 ? 2.0 * static_cast<double>(bytes) / rtt_us : 0;
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}

/// Intra-node vs network one-way cost at 1 KiB.
void BM_Micro_IntraVsInter(benchmark::State& state) {
  const bool intra = state.range(0) != 0;
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(2, /*cores=*/2));
    mp::World world(machine);
    machine.run_per_core([&](const cluster::Place& place) {
      mp::Comm comm = world.comm_at(place);
      const int peer = intra ? 1 : 2;  // rank 1 = same node, 2 = other node
      if (comm.rank() == 0) {
        for (int i = 0; i < 100; ++i) {
          comm.send(peer, 0, Bytes(1024, std::byte{0}));
          (void)comm.recv(peer, 0);
        }
      } else if (comm.rank() == peer) {
        for (int i = 0; i < 100; ++i) {
          (void)comm.recv(0, 0);
          comm.send(0, 0, Bytes(1024, std::byte{0}));
        }
      }
    });
    state.counters["rtt_us"] =
        static_cast<double>(machine.last_run_duration_ns()) / 100 * 1e-3;
  }
  state.counters["intra"] = static_cast<double>(state.range(0));
}

/// arg0: nodes (4 cores each). Collective latency in simulated time.
template <typename Body>
void run_collective(benchmark::State& state, Body body, int rounds) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    mp::World world(machine);
    machine.run_per_core([&](const cluster::Place& place) {
      mp::Comm comm = world.comm_at(place);
      for (int i = 0; i < rounds; ++i) body(comm);
    });
    state.counters["per_op_us"] =
        static_cast<double>(machine.last_run_duration_ns()) / rounds * 1e-3;
  }
  state.counters["ranks"] = nodes * bench::kCoresPerNode;
}

void BM_Micro_Barrier(benchmark::State& state) {
  run_collective(state, [](mp::Comm& c) { c.barrier(); }, 20);
}

void BM_Micro_Allreduce(benchmark::State& state) {
  run_collective(state,
                 [](mp::Comm& c) {
                   (void)c.allreduce_value(
                       static_cast<double>(c.rank()),
                       [](double a, double b) { return a + b; });
                 },
                 20);
}

void BM_Micro_Allgatherv1K(benchmark::State& state) {
  run_collective(state,
                 [](mp::Comm& c) {
                   std::vector<double> mine(128, 1.0);  // 1 KiB each
                   (void)c.allgatherv(std::span<const double>(mine));
                 },
                 5);
}

}  // namespace

BENCHMARK(BM_Micro_PingPong)
    ->Arg(8)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 20)
    ->Iterations(1);
BENCHMARK(BM_Micro_IntraVsInter)->Arg(1)->Arg(0)->Iterations(1);
BENCHMARK(BM_Micro_Barrier)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);
BENCHMARK(BM_Micro_Allreduce)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1);
BENCHMARK(BM_Micro_Allgatherv1K)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1);

BENCHMARK_MAIN();
