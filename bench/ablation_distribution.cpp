// Ablation D — data distribution policy ("automatic data distribution and
// locality management", §3).
//
// Workload: accumulate-writes with a heavily skewed target distribution
// (most updates land in a narrow index range). Under a block distribution
// one node owns the hot range and its commit work and NIC serialize the
// whole machine; a cyclic distribution deals the hot elements round-robin
// over all nodes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/ppm.hpp"
#include "util/rng.hpp"

namespace {

using namespace ppm;

constexpr uint64_t kN = 1 << 15;
constexpr uint64_t kVpsPerNode = 2048;
constexpr int kUpdatesPerVp = 64;

void BM_Ablation_Distribution(benchmark::State& state) {
  const bool cyclic = state.range(0) != 0;
  const int nodes = static_cast<int>(state.range(1));
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto a = env.global_array<int64_t>(
              kN, cyclic ? Distribution::kCyclic : Distribution::kBlock);
          auto vps = env.ppm_do(kVpsPerNode);
          vps.global_phase([&](Vp& vp) {
            Rng rng(0xd15 ^ vp.global_rank());
            for (int u = 0; u < kUpdatesPerVp; ++u) {
              // 90% of updates hit the first 1/16th of the index space.
              const bool hot = rng.next_below(10) != 0;
              const uint64_t i = hot ? rng.next_below(kN / 16)
                                     : rng.next_below(kN);
              a.add(i, 1);
            }
          });
        });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
  }
  state.counters["cyclic"] = static_cast<double>(state.range(0));
  state.counters["nodes"] = static_cast<double>(state.range(1));
}

}  // namespace

BENCHMARK(BM_Ablation_Distribution)
    ->Args({0, 4})->Args({1, 4})->Args({0, 8})->Args({1, 8})
    ->Args({0, 16})->Args({1, 16})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
