// Ablation D — data distribution policy ("automatic data distribution and
// locality management", §3).
//
// Workload: accumulate-writes with a heavily skewed target distribution
// (most updates land in a narrow index range). Under a block distribution
// one node owns the hot range and its commit work and NIC serialize the
// whole machine; a cyclic distribution deals the hot elements round-robin
// over all nodes.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/ppm.hpp"
#include "util/rng.hpp"

namespace {

using namespace ppm;

constexpr uint64_t kN = 1 << 15;
constexpr uint64_t kVpsPerNode = 2048;
constexpr int kUpdatesPerVp = 64;

void BM_Ablation_Distribution(benchmark::State& state) {
  const bool cyclic = state.range(0) != 0;
  const int nodes = static_cast<int>(state.range(1));
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          auto a = env.global_array<int64_t>(
              kN, cyclic ? Distribution::kCyclic : Distribution::kBlock);
          auto vps = env.ppm_do(kVpsPerNode);
          vps.global_phase([&](Vp& vp) {
            Rng rng(0xd15 ^ vp.global_rank());
            for (int u = 0; u < kUpdatesPerVp; ++u) {
              // 90% of updates hit the first 1/16th of the index space.
              const bool hot = rng.next_below(10) != 0;
              const uint64_t i = hot ? rng.next_below(kN / 16)
                                     : rng.next_below(kN);
              a.add(i, 1);
            }
          });
        });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
  }
  state.counters["cyclic"] = static_cast<double>(state.range(0));
  state.counters["nodes"] = static_cast<double>(state.range(1));
}

// Ablation L — the locality engine ("automatic data distribution and
// locality management", §3): access-profiled adaptive distribution with
// deterministic block migration.
//
// Workload: a mismatched graph-style partition. The owner-computes VPs of
// node p repeatedly read the chunk of `src` initially placed on node
// (p+1)%P — the skew that arises when the compute partition and the data
// layout were chosen independently. With the planner off, every round
// refetches the neighbour's blocks over the wire; with it on, one
// planning round moves each hot block to its dominant reader and the
// remaining rounds run out of local memory. Committed contents are
// bit-identical either way (checked against a static kBlock reference via
// checksum, reported as the contents_match counter).

constexpr uint64_t kLocalityRounds = 8;

struct LocalityArm {
  RunResult result;
  uint64_t checksum = 0;
};

LocalityArm run_locality_arm(int nodes, Distribution dist,
                             bool adaptive_on) {
  const auto n = static_cast<uint64_t>(
      bench::bench_scale() * static_cast<double>(uint64_t{1} << 15));
  // Modeled-only calibration: the per-element compute is one add, so under
  // measured calibration host noise would drown the communication delta
  // this ablation isolates. Modeled time makes both arms' virtual times
  // exactly reproducible (the traffic counters always are).
  cluster::MachineConfig mcfg = bench::bench_machine(nodes);
  mcfg.engine.calibration = sim::CalibrationMode::kModeledOnly;
  cluster::Machine machine(mcfg);
  RuntimeOptions opts = bench::bench_runtime_options();
  opts.adaptive_distribution = adaptive_on;
  LocalityArm arm;
  arm.result = run_on(machine, opts, [&](Env& env) {
    auto src = env.global_array<double>(n, dist);
    auto out = env.global_array<double>(n, Distribution::kBlock);
    const auto p = static_cast<uint64_t>(env.node_count());
    const uint64_t chunk = n / p;
    auto vps = env.ppm_do(chunk);  // one VP per owned element
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      src.set(i, static_cast<double>(i) * 0.5 + 1.0);
    });
    const uint64_t shift = chunk;  // the right neighbour's partition
    for (uint64_t round = 0; round < kLocalityRounds; ++round) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t i = vp.global_rank();
        out.add(i, src.get((i + shift) % n));
      });
    }
    // Fold both committed arrays into one checksum on node 0, so the
    // arms can prove their logical results are bit-identical.
    auto probe = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    probe.global_phase([&](Vp&) {
      std::vector<uint64_t> idx(n);
      for (uint64_t i = 0; i < n; ++i) idx[i] = i;
      uint64_t h = 0xcbf29ce484222325ULL;
      for (const auto& values : {src.gather(idx), out.gather(idx)}) {
        for (const double v : values) {
          uint64_t bits;
          std::memcpy(&bits, &v, sizeof(bits));
          h = (h ^ bits) * 0x100000001b3ULL;
        }
      }
      arm.checksum = h;
    });
  });
  return arm;
}

void BM_Ablation_Locality(benchmark::State& state) {
  const bool adaptive_on = state.range(0) != 0;
  const int nodes = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const LocalityArm arm =
        run_locality_arm(nodes, Distribution::kAdaptive, adaptive_on);
    // Reference: the same program on a static block layout. Logical
    // contents must not depend on placement or migration.
    const LocalityArm ref =
        run_locality_arm(nodes, Distribution::kBlock, false);
    bench::report_run_counters(state, arm.result);
    state.counters["contents_match"] =
        arm.checksum == ref.checksum ? 1.0 : 0.0;
  }
  state.counters["adaptive"] = static_cast<double>(state.range(0));
  state.counters["nodes"] = static_cast<double>(state.range(1));
}

}  // namespace

BENCHMARK(BM_Ablation_Distribution)
    ->Args({0, 4})->Args({1, 4})->Args({0, 8})->Args({1, 8})
    ->Args({0, 16})->Args({1, 16})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Ablation_Locality)
    ->Args({0, 4})->Args({1, 4})->Args({0, 8})->Args({1, 8})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
