// Extension bench (not a paper figure): BFS on a power-law graph, PPM vs
// the hand-bundled MPI baseline, vs node count. The paper's Introduction
// names graph algorithms as the archetypal unstructured workload; this
// bench quantifies the claim on this repository's implementations. It
// also contrasts block vs cyclic vertex distribution under RMAT hubs.
#include <benchmark/benchmark.h>

#include "apps/graph/graph.hpp"
#include "apps/graph/graph_mpi.hpp"
#include "apps/graph/graph_ppm.hpp"
#include "bench_common.hpp"
#include "core/ppm.hpp"

namespace {

using namespace ppm;
using namespace ppm::apps::graph;

const Graph& bench_graph() {
  static const Graph g = make_rmat_graph(
      static_cast<uint64_t>(30'000 * bench::bench_scale()), 12.0, 4242);
  return g;
}

void BM_ExtGraph_BfsPpm(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const bool cyclic = state.range(1) != 0;
  const Graph& g = bench_graph();
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    const RunResult r =
        run_on(machine, bench::bench_runtime_options(), [&](Env& env) {
          (void)bfs_ppm(env, g, 0,
                        cyclic ? Distribution::kCyclic
                               : Distribution::kBlock);
        });
    state.counters["vtime_ms"] = r.duration_s() * 1e3;
    state.counters["net_msgs"] = static_cast<double>(r.network_messages);
    state.counters["net_MB"] =
        static_cast<double>(r.network_bytes) / 1048576.0;
  }
  state.counters["nodes"] = nodes;
  state.counters["cyclic"] = static_cast<double>(state.range(1));
}

void BM_ExtGraph_BfsMpi(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const Graph& g = bench_graph();
  for (auto _ : state) {
    cluster::Machine machine(bench::bench_machine(nodes));
    mp::World world(machine);
    machine.run_per_core([&](const cluster::Place& place) {
      mp::Comm comm = world.comm_at(place);
      (void)bfs_mpi(comm, g, 0);
    });
    state.counters["vtime_ms"] =
        static_cast<double>(machine.last_run_duration_ns()) * 1e-6;
    const auto& fs = machine.fabric().stats();
    state.counters["net_msgs"] =
        static_cast<double>(fs.inter_messages.value());
    state.counters["net_MB"] =
        static_cast<double>(fs.inter_bytes.value()) / 1048576.0;
  }
  state.counters["nodes"] = nodes;
}

}  // namespace

BENCHMARK(BM_ExtGraph_BfsPpm)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({4, 1})->Args({8, 1})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExtGraph_BfsMpi)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
