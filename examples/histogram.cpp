// Example: massively conflicting accumulate-writes — a distributed
// histogram. Every VP classifies a batch of samples and add()s into shared
// bins; the phase model makes the all-to-all conflict safe and
// deterministic, and the runtime bundles the fine-grained remote updates.
#include <cstdio>

#include "core/ppm.hpp"
#include "util/rng.hpp"

int main() {
  constexpr uint64_t kBins = 64;
  constexpr uint64_t kVpsPerNode = 512;
  constexpr int kSamplesPerVp = 200;

  ppm::PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  ppm::RunResult r = ppm::run(config, [&](ppm::Env& env) {
    auto hist = env.global_array<int64_t>(kBins);

    auto vps = env.ppm_do(kVpsPerNode);
    vps.global_phase([&](ppm::Vp& vp) {
      // Every VP draws from its own deterministic stream.
      ppm::Rng rng(0xfeed ^ vp.global_rank());
      for (int s = 0; s < kSamplesPerVp; ++s) {
        const double x = rng.next_normal();
        const auto bin = static_cast<uint64_t>(std::clamp(
            (x + 4.0) / 8.0 * static_cast<double>(kBins), 0.0,
            static_cast<double>(kBins - 1)));
        hist.add(bin, 1);  // conflicting writes: commutative, bundled
      }
    });

    if (env.node_id() == 0) {
      auto show = env.ppm_do(1);
      show.global_phase([&](ppm::Vp&) {
        int64_t total = 0;
        for (uint64_t b = 0; b < kBins; ++b) total += hist.get(b);
        std::printf("total samples: %lld\n", static_cast<long long>(total));
        for (uint64_t b = 0; b < kBins; b += 4) {
          const auto c = hist.get(b);
          std::printf("%5.1f |", (static_cast<double>(b) / kBins) * 8 - 4);
          for (int64_t s = 0; s < c / 400; ++s) std::printf("#");
          std::printf(" %lld\n", static_cast<long long>(c));
        }
      });
    } else {
      auto show = env.ppm_do(0);
      show.global_phase([](ppm::Vp&) {});
    }
  });

  std::printf("simulated time: %.3f ms\n", r.duration_s() * 1e3);
  return 0;
}
