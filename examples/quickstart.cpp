// Quickstart: the paper's §5 code example, translated to the embedded DSL.
//
// Problem: given a sorted array A and another array B, find for every
// element of B its insertion position in A. Each search is performed by one
// virtual processor inside a single global phase — the paper's
//
//   PPM_function binary_search(int n, PPM_global_shared double A[],
//                              PPM_node_shared double B[],
//                              PPM_node_shared int rank_in_A[]) {
//     PPM_global_phase { ...binary search of B[PPM_VP_node_rank()]... }
//   }
//   ...
//   PPM_do(K) binary_search(N, A, B, rank_in_A);
//
// A is globally shared (distributed over the cluster); B and the result
// are node-shared (each node searches its own B).
#include <cstdio>

#include "core/algorithms.hpp"
#include "core/ppm.hpp"

int main() {
  constexpr uint64_t kN = 1 << 14;  // size of the sorted array A
  constexpr uint64_t kK = 256;      // searches per node

  ppm::PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  ppm::RunResult result = ppm::run(config, [&](ppm::Env& env) {
    auto a = env.global_array<double>(kN);          // PPM_global_shared
    auto b = env.node_array<double>(kK);            // PPM_node_shared
    auto rank_in_a = env.node_array<int64_t>(kK);   // PPM_node_shared

    // Fill A with a sorted sequence (owner-computes) and B with per-node
    // query values.
    ppm::fill(env, a, [](uint64_t i) { return static_cast<double>(i) * 0.5; });
    {
      auto init = env.ppm_do(kK);
      init.node_phase([&](ppm::Vp& vp) {
        const auto i = vp.node_rank();
        b.set(i, static_cast<double>((i * 7919 + env.node_id() * 31) %
                                     (kN / 2)));
      });
    }

    // PPM_do(K) binary_search(N, A, B, rank_in_A);
    auto vps = env.ppm_do(kK);
    vps.global_phase([&](ppm::Vp& vp) {
      uint64_t left = 0;
      uint64_t right = kN;
      const double needle = b.get(vp.node_rank());
      while (left + 1 < right) {
        const uint64_t middle = (left + right) / 2;
        if (a.get(middle) < needle) {  // implicit (bundled) remote reads
          left = middle;
        } else {
          right = middle;
        }
      }
      rank_in_a.set(vp.node_rank(), static_cast<int64_t>(right));
    });

    // Check a few results on node 0.
    if (env.node_id() == 0) {
      auto check = env.ppm_do(1);
      check.global_phase([&](ppm::Vp&) {
        std::printf("node 0 sample results:\n");
        for (uint64_t i = 0; i < 5; ++i) {
          std::printf("  B[%llu] = %6.1f -> rank_in_A = %lld\n",
                      static_cast<unsigned long long>(i), b.get(i),
                      static_cast<long long>(rank_in_a.get(i)));
        }
      });
    } else {
      auto check = env.ppm_do(0);
      check.global_phase([](ppm::Vp&) {});
    }
  });

  std::printf("simulated time: %.3f ms, network messages: %llu\n",
              result.duration_s() * 1e3,
              static_cast<unsigned long long>(result.network_messages));
  return 0;
}
