// Example: 2D electrostatic particle-in-cell plasma simulation — the
// paper's "material physics simulations" — composing three PPM patterns:
// scatter (conflicting accumulate-writes), a multigrid field solve, and
// per-particle pushes.
#include <cmath>
#include <cstdio>

#include "apps/pic/pic.hpp"
#include "core/ppm.hpp"

int main() {
  using namespace ppm;
  using namespace ppm::apps::pic;

  const PicOptions options{.grid = 32, .dt = 0.05, .steps = 5,
                           .mg_cycles = 4};
  const uint64_t n = 2000;

  PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  std::printf("PIC: %llu particles, %llux%llu grid, %d steps\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(options.grid),
              static_cast<unsigned long long>(options.grid), options.steps);

  Particles final_state;
  const RunResult r = run(config, [&](Env& env) {
    Particles mine = make_two_streams(n, 2024);
    simulate_ppm(env, mine, options);
    if (env.node_id() == 0) final_state = std::move(mine);
  });

  // Center of charge of each species: opposite clouds drift together.
  double cx_pos = 0, cx_neg = 0;
  for (uint64_t k = 0; k < n; ++k) {
    (final_state.charge[k] > 0 ? cx_pos : cx_neg) +=
        final_state.x[k] / (n / 2.0);
  }
  std::printf("center of +cloud: x=%.4f | center of -cloud: x=%.4f\n",
              cx_pos, cx_neg);
  std::printf("simulated time: %.2f ms | network: %llu msgs, %.2f MB\n",
              r.duration_s() * 1e3,
              static_cast<unsigned long long>(r.network_messages),
              static_cast<double>(r.network_bytes) / 1048576.0);

  // Serial cross-check.
  Particles serial = make_two_streams(n, 2024);
  simulate_serial(serial, options);
  double max_dev = 0;
  for (uint64_t k = 0; k < n; ++k) {
    max_dev = std::max(max_dev, std::fabs(serial.x[k] - final_state.x[k]));
  }
  std::printf("max deviation from serial PIC: %.2e\n", max_dev);
  return max_dev < 1e-8 ? 0 : 1;
}
