// Example: solve a 2D Poisson problem with geometric multigrid in PPM —
// "multi-grid" is one of the unstructured application domains the paper's
// introduction motivates. Each V-cycle is ~15 global phases (smoothing,
// residual, restriction, prolongation), all with implicit communication.
#include <cstdio>

#include "apps/multigrid/multigrid.hpp"
#include "core/ppm.hpp"

int main() {
  using namespace ppm;
  using namespace ppm::apps::multigrid;

  const uint64_t n = 128;  // 129x129 vertex grid
  const GridLevel f = make_rhs(n);
  const MgOptions opts{};
  const int cycles = 6;

  PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  std::printf("Poisson on a %llux%llu grid, %d V-cycles\n",
              static_cast<unsigned long long>(n + 1),
              static_cast<unsigned long long>(n + 1), cycles);

  std::vector<double> norms;
  const RunResult r = run(config, [&](Env& env) {
    auto history = solve_mg_ppm(env, f, cycles, opts, nullptr);
    if (env.node_id() == 0) norms = std::move(history);
  });

  double prev = -1;
  for (size_t c = 0; c < norms.size(); ++c) {
    std::printf("  cycle %zu: ||r|| = %.3e%s\n", c + 1, norms[c],
                prev > 0 ? strfmt("  (factor %.3f)", norms[c] / prev).c_str()
                         : "");
    prev = norms[c];
  }
  std::printf("simulated time: %.2f ms | network: %llu msgs, %.2f MB\n",
              r.duration_s() * 1e3,
              static_cast<unsigned long long>(r.network_messages),
              static_cast<double>(r.network_bytes) / 1048576.0);
  // Textbook multigrid contracts the residual by ~10x per cycle.
  return (norms.size() == static_cast<size_t>(cycles) &&
          norms.back() < norms.front() * 1e-3)
             ? 0
             : 1;
}
