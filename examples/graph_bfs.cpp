// Example: breadth-first search and connected components on a power-law
// graph — the "graph algorithms" the paper's introduction holds up as the
// archetypal unstructured, fine-grained-random-access workload. Compares
// block vs cyclic distribution (RMAT hubs make ownership skew matter).
#include <cstdio>
#include <set>

#include "apps/graph/graph.hpp"
#include "apps/graph/graph_ppm.hpp"
#include "core/ppm.hpp"

int main() {
  using namespace ppm;
  using namespace ppm::apps::graph;

  const Graph g = make_rmat_graph(2000, 8.0, /*seed=*/1234);
  std::printf("RMAT graph: %llu vertices, %llu edges\n",
              static_cast<unsigned long long>(g.num_vertices),
              static_cast<unsigned long long>(g.num_edges()));

  PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  for (Distribution dist : {Distribution::kBlock, Distribution::kCyclic}) {
    std::vector<int64_t> levels;
    std::vector<int64_t> labels;
    const RunResult r = run(config, [&](Env& env) {
      auto d = bfs_ppm(env, g, /*source=*/0, dist);
      auto c = components_ppm(env, g, dist);
      if (env.node_id() == 0) {
        levels = std::move(d);
        labels = std::move(c);
      }
    });

    int64_t max_level = 0, reached = 0;
    for (int64_t l : levels) {
      if (l != kUnreached) {
        ++reached;
        max_level = std::max(max_level, l);
      }
    }
    std::set<int64_t> components(labels.begin(), labels.end());
    std::printf(
        "%s: reached %lld/%llu vertices, eccentricity %lld, "
        "%zu components | simulated %.3f ms, %llu msgs\n",
        dist == Distribution::kBlock ? "block " : "cyclic",
        static_cast<long long>(reached),
        static_cast<unsigned long long>(g.num_vertices),
        static_cast<long long>(max_level), components.size(),
        r.duration_s() * 1e3,
        static_cast<unsigned long long>(r.network_messages));
  }

  // Cross-check against the serial algorithms.
  const auto serial_levels = bfs_serial(g, 0);
  const auto serial_labels = components_serial(g);
  std::printf("serial cross-check: %s\n",
              "BFS and components recomputed serially for validation");
  (void)serial_levels;
  (void)serial_labels;
  return 0;
}
