// Example: solve the paper's Application 1 — a diffusion system on a 3D
// chimney domain, discretized with the 27-point implicit finite-difference
// scheme — with the PPM conjugate-gradient solver, and verify the result
// against the serial reference.
#include <cmath>
#include <cstdio>

#include "apps/cg/cg_ppm.hpp"
#include "apps/cg/cg_serial.hpp"
#include "core/ppm.hpp"

int main() {
  using namespace ppm;
  using namespace ppm::apps::cg;

  const ChimneyProblem problem{.nx = 12, .ny = 12, .nz = 24};
  const CgOptions options{.max_iterations = 200, .tolerance = 1e-8};

  PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  std::printf("chimney %llux%llux%llu -> %llu unknowns\n",
              static_cast<unsigned long long>(problem.nx),
              static_cast<unsigned long long>(problem.ny),
              static_cast<unsigned long long>(problem.nz),
              static_cast<unsigned long long>(problem.unknowns()));

  std::vector<double> residuals;
  bool converged = false;
  const RunResult r = run(config, [&](Env& env) {
    auto out = cg_solve_ppm(env, problem, options);
    if (env.node_id() == 0) {
      residuals = out.residual_history;
      converged = out.converged;
    }
  });

  std::printf("PPM CG: %s in %zu iterations (simulated %.2f ms)\n",
              converged ? "converged" : "did NOT converge", residuals.size(),
              r.duration_s() * 1e3);
  for (size_t i = 0; i < residuals.size(); i += 20) {
    std::printf("  iter %3zu: ||r|| = %.3e\n", i, residuals[i]);
  }

  // Cross-check with the serial solver.
  const auto serial = cg_solve_serial(build_chimney_matrix(problem),
                                      build_chimney_rhs(problem), options);
  std::printf("serial CG: %d iterations; final residual PPM %.3e vs serial "
              "%.3e\n",
              serial.iterations, residuals.back(),
              serial.residual_history.back());
  const double diff =
      std::fabs(residuals.back() - serial.residual_history.back());
  if (diff > 1e-6 * (1 + serial.residual_history.back())) {
    std::printf("MISMATCH between PPM and serial residuals!\n");
    return 1;
  }
  std::printf("PPM and serial solvers agree.\n");
  return 0;
}
