// Example: multi-scale collocation sparse-matrix generation (the paper's
// Application 2). The integration tables live in global shared arrays; the
// randomly indexed cross-level reads are plain shared accesses.
#include <cstdio>

#include "apps/collocation/matgen_ppm.hpp"
#include "core/ppm.hpp"

int main() {
  using namespace ppm;
  using namespace ppm::apps::collocation;

  CollocationProblem problem;
  problem.levels = 6;
  problem.base = 16;
  problem.refine_terms = 8;
  problem.combo_terms = 6;
  problem.bandwidth = 3;
  problem.quadrature_points = 32;
  problem.seed = 7;

  PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  std::printf("collocation: %d levels, %llu points total\n", problem.levels,
              static_cast<unsigned long long>(problem.total_points()));

  uint64_t total_nnz = 0;
  const RunResult r = run(config, [&](Env& env) {
    const PpmMatgenOutput out = generate_matrix_ppm(env, problem);
    const uint64_t nnz = out.local_rows.nnz();
    const uint64_t sum =
        env.allreduce(nnz, [](uint64_t a, uint64_t b) { return a + b; });
    if (env.node_id() == 0) total_nnz = sum;
  });

  std::printf("generated %llu nonzeros in %.2f ms simulated time\n",
              static_cast<unsigned long long>(total_nnz),
              r.duration_s() * 1e3);
  std::printf("network: %llu messages, %.2f MB; remote blocks fetched: "
              "%llu, reads served from cache: %llu\n",
              static_cast<unsigned long long>(r.network_messages),
              static_cast<double>(r.network_bytes) / 1048576.0,
              static_cast<unsigned long long>(r.remote_blocks_fetched),
              static_cast<unsigned long long>(
                  r.remote_reads_served_from_cache));

  // Cross-check against the serial generator.
  const CsrMatrix serial = generate_matrix_serial(problem);
  if (serial.nnz() != total_nnz) {
    std::printf("MISMATCH: serial generator has %llu nonzeros\n",
                static_cast<unsigned long long>(serial.nnz()));
    return 1;
  }
  std::printf("matches the serial generator (%llu nonzeros).\n",
              static_cast<unsigned long long>(serial.nnz()));
  return 0;
}
