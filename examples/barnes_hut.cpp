// Example: Barnes–Hut N-body simulation (the paper's Application 3) on a
// PPM cluster — data-driven random remote reads of a distributed octree,
// bundled transparently by the runtime.
#include <cmath>
#include <cstdio>

#include "apps/nbody/nbody_ppm.hpp"
#include "apps/nbody/nbody_serial.hpp"
#include "core/ppm.hpp"

int main() {
  using namespace ppm;
  using namespace ppm::apps::nbody;

  const uint64_t n = 4000;
  const NbodyOptions options{.theta = 0.5, .eps = 0.02, .dt = 0.002,
                             .steps = 5};
  const BodySet init = make_two_clusters(n, /*seed=*/42);

  PpmConfig config;
  config.machine.nodes = 4;
  config.machine.cores_per_node = 4;

  const double e0 = total_energy(init, options.eps);
  std::printf("%llu particles (two clusters), %d steps, theta=%.2f\n",
              static_cast<unsigned long long>(n), options.steps,
              options.theta);

  BodySet final_state;
  const RunResult r = run(config, [&](Env& env) {
    auto st = setup_nbody_ppm(env, init);
    simulate_ppm(env, st, options);
    BodySet snap = snapshot_ppm(env, st);
    if (env.node_id() == 0) final_state = std::move(snap);
  });

  const double e1 = total_energy(final_state, options.eps);
  std::printf("simulated machine time: %.2f ms; network: %llu messages, "
              "%.2f MB\n",
              r.duration_s() * 1e3,
              static_cast<unsigned long long>(r.network_messages),
              static_cast<double>(r.network_bytes) / 1048576.0);
  std::printf("energy: %.6f -> %.6f (drift %.3f%%)\n", e0, e1,
              100.0 * std::fabs(e1 - e0) / std::fabs(e0));

  // Sanity: compare against the serial Barnes-Hut trajectory.
  BodySet serial = init;
  simulate_serial_bh(serial, options);
  double max_dev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const Vec3 d = final_state.position(i) - serial.position(i);
    max_dev = std::max(max_dev, std::sqrt(d.norm2()));
  }
  std::printf("max deviation from serial Barnes-Hut: %.2e\n", max_dev);
  return max_dev < 1e-2 ? 0 : 1;
}
