#!/usr/bin/env bash
# Local CI: build the default and sanitizer presets, run the full test
# suite under each. The san preset runs the phase-validator tests under
# ASan+UBSan as well — the validator's own bookkeeping is exercised by
# every checked test, so this doubles as a memory-safety pass over
# src/check/.
#
# Leak detection is off for the san run (see CMakePresets.json): tests
# that exercise error paths abandon blocked fibers without unwinding
# their stacks, so LeakSanitizer flags their live allocations. ASan's
# memory-error and UBSan's UB checks are unaffected.
#
# Usage: tools/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

for preset in default san; do
  echo "=== configure+build preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ctest preset: ${preset} ==="
  ctest --preset "${preset}" -j "${jobs}" "$@"
done

echo "=== bench smoke (run, not gated) ==="
# Exercise the figure/ablation harness end-to-end at toy scale. Failures
# here are reported but do not fail CI: the benches measure, they are not
# correctness referees (the test suite above is).
if tools/bench.sh --smoke --out build/BENCH_smoke.json; then
  echo "bench smoke OK (build/BENCH_smoke.json)"
else
  echo "WARNING: bench smoke failed (not gating CI)" >&2
fi

echo "CI OK: both presets built, all tests passed."
