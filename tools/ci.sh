#!/usr/bin/env bash
# Local CI: build the default and sanitizer presets, run the full test
# suite under each. The san preset runs the phase-validator tests under
# ASan+UBSan as well — the validator's own bookkeeping is exercised by
# every checked test, so this doubles as a memory-safety pass over
# src/check/.
#
# Leak detection is off for the san run (see CMakePresets.json): tests
# that exercise error paths abandon blocked fibers without unwinding
# their stacks, so LeakSanitizer flags their live allocations. ASan's
# memory-error and UBSan's UB checks are unaffected.
#
# Usage: tools/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

declare -A builddir=([default]=build [san]=build-san)

for preset in default san; do
  echo "=== configure+build preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ctest preset: ${preset} ==="
  ctest --preset "${preset}" -j "${jobs}" "$@"
  echo "=== stress smoke preset: ${preset} ==="
  # Differential fuzz harness at fixed seeds (gating). On failure it
  # prints the shrunk repro and a one-line --replay invocation; see
  # docs/TESTING.md for how to reproduce locally. Same sanitizer env as
  # the test preset (error-path fiber abandonment is not a leak).
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --smoke
done

echo "=== bench smoke (run, not gated) ==="
# Exercise the figure/ablation harness end-to-end at toy scale. Failures
# here are reported but do not fail CI: the benches measure, they are not
# correctness referees (the test suite above is).
if tools/bench.sh --smoke --out build/BENCH_smoke.json; then
  echo "bench smoke OK (build/BENCH_smoke.json)"
else
  echo "WARNING: bench smoke failed (not gating CI)" >&2
fi

echo "CI OK: both presets built, all tests passed."
