#!/usr/bin/env bash
# Local CI: build the default and sanitizer presets, run the full test
# suite under each. The san preset runs the phase-validator tests under
# ASan+UBSan as well — the validator's own bookkeeping is exercised by
# every checked test, so this doubles as a memory-safety pass over
# src/check/.
#
# Leak detection is off for the san run (see CMakePresets.json): tests
# that exercise error paths abandon blocked fibers without unwinding
# their stacks, so LeakSanitizer flags their live allocations. ASan's
# memory-error and UBSan's UB checks are unaffected.
#
# Usage: tools/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

declare -A builddir=([default]=build [san]=build-san)

for preset in default san; do
  echo "=== configure+build preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ctest preset: ${preset} ==="
  ctest --preset "${preset}" -j "${jobs}" "$@"
  echo "=== stress smoke preset: ${preset} ==="
  # Differential fuzz harness at fixed seeds (gating). On failure it
  # prints the shrunk repro and a one-line --replay invocation; see
  # docs/TESTING.md for how to reproduce locally. Same sanitizer env as
  # the test preset (error-path fiber abandonment is not a leak).
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --smoke
  # Owner-side accumulate (docs/MODEL.md): the matrix samples the
  # owner_side_accumulate knob per config, but CI pins each delivery path
  # once — owner-applied fragments and the fetch-based fallback — so a
  # regression in either cannot hide behind what the sampler happened to
  # draw. Same fixed seed set as --smoke.
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --smoke --owner-accum=1
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --smoke --owner-accum=0
  echo "=== jobs smoke preset: ${preset} ==="
  # Multi-tenant scheduler gates (docs/SCHEDULER.md): ppm_jobs --smoke
  # checks replay determinism (byte-identical JSON across two runs per
  # policy) and the isolation oracle on its own stream; ppm_stress
  # --multi-job re-checks the oracle across seeds x policies x {clean,
  # faulted} fabrics.
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_jobs" --smoke
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --multi-job --smoke
  echo "=== windowed engine smoke preset: ${preset} ==="
  # Parallel conservative-window engine (docs/SIM.md) under each preset:
  # the san pass runs real host threads through the fiber switch and the
  # window-barrier exchange, so data races that ASan can see (use-after-
  # free of migrated engine state) and UB in the merge path get caught.
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_cli" --app=cg --nodes=4 --cores=4 \
      --size=4096 --iters=8 --calibration=0 --sim-threads=4 >/dev/null
done

echo "=== traced smoke (ppm::trace export gate) ==="
# One traced CG run per CI pass: the Chrome-JSON export must stay loadable
# (Perfetto-compatible) — validated structurally below. The artifact is
# kept in build/ for eyeballing after a failure.
trace_json="build/cg_smoke.trace.json"
ASAN_OPTIONS=detect_leaks=0 \
  build/tools/ppm_cli --app=cg --nodes=4 --size=4096 --iters=12 \
    --calibration=0 --trace="${trace_json}" --profile >/dev/null
python3 - "${trace_json}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "empty traceEvents"
for e in events:
    assert e["ph"] in ("M", "X", "i"), f"unexpected phase type {e['ph']}"
    assert "pid" in e and "tid" in e and "name" in e, f"missing key in {e}"
    if e["ph"] == "X":
        assert "ts" in e and "dur" in e, f"span without ts/dur: {e}"
    if e["ph"] == "i":
        assert "ts" in e, f"instant without ts: {e}"
procs = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "process_name"}
assert {"node0", "node1", "node2", "node3", "fabric"} <= procs, procs
print(f"trace schema OK: {len(events)} events, processes {sorted(procs)}")
PY
echo "traced smoke OK (artifact kept at ${trace_json})"

echo "=== parallel engine determinism gate (docs/SIM.md) ==="
# The windowed engine's contract: a run is a bit-identical replay of
# itself at any host-thread count. Trace the same modeled CG once on one
# thread and once on four; the Chrome trace must match byte-for-byte and
# the RunResult JSON must match on every field except the sim_threads
# echo itself.
for t in 1 4; do
  ASAN_OPTIONS=detect_leaks=0 \
    build/tools/ppm_cli --app=cg --nodes=4 --cores=4 --size=4096 \
      --iters=12 --calibration=0 --sim-threads="${t}" \
      --trace="build/cg_win${t}.trace.json" \
      --json="build/cg_win${t}.json" >/dev/null
done
cmp build/cg_win1.trace.json build/cg_win4.trace.json
python3 - build/cg_win1.json build/cg_win4.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    one = json.load(f)
with open(sys.argv[2]) as f:
    four = json.load(f)
assert one.pop("sim_threads") == 1 and four.pop("sim_threads") == 4
for key in one:
    assert one[key] == four[key], (
        f"{key} diverges across sim_threads: {one[key]!r} != {four[key]!r}")
print(f"windowed determinism OK: trace + {len(one)} result fields "
      "bit-identical at 1 vs 4 host threads")
PY
echo "parallel engine determinism OK"

echo "=== jobs report schema (ppm_jobs --json gate) ==="
# The ppm_jobs/v1 JSON report is a stable machine-readable surface
# (docs/SCHEDULER.md); validate field presence and types structurally.
jobs_json="build/jobs_smoke.json"
ASAN_OPTIONS=detect_leaks=0 \
  build/tools/ppm_jobs --policy=backfill --jobs=10 --seed=3 \
    --json="${jobs_json}"
python3 - "${jobs_json}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "ppm_jobs/v1", doc.get("schema")
top = {"policy": str, "seed": int, "machine_nodes": int,
       "cores_per_node": int, "backbone_bytes_per_ns": float,
       "queue_capacity": int, "jobs": int, "completed_jobs": int,
       "rejected_jobs": int, "makespan_ns": int,
       "throughput_jobs_per_s": float, "p50_latency_ns": int,
       "p99_latency_ns": int, "node_utilization": float,
       "fabric_utilization": float, "fabric_bytes": int,
       "backbone_wait_ns": int, "backpressure_ns": int,
       "max_queue_depth": int, "completion_order": list, "per_job": list}
for key, ty in top.items():
    assert isinstance(doc[key], ty), f"{key}: {doc.get(key)!r}"
per_job = {"id": int, "kind": str, "nodes": int, "size": int, "steps": int,
           "arrival_ns": int, "rejected": bool, "start_ns": int,
           "finish_ns": int, "wait_ns": int, "latency_ns": int,
           "preemptions": int, "placement": list, "digest": str,
           "fabric_tx_messages": int, "fabric_tx_bytes": int,
           "backbone_wait_ns": int, "fetch_stall_ns": int,
           "blocks_fetched": int}
assert doc["per_job"], "no jobs in report"
for j in doc["per_job"]:
    for key, ty in per_job.items():
        assert isinstance(j[key], ty), f"per_job.{key}: {j.get(key)!r}"
assert doc["completed_jobs"] + doc["rejected_jobs"] == doc["jobs"]
print(f"jobs schema OK: {doc['jobs']} jobs, policy {doc['policy']}")
PY
echo "jobs report schema OK (artifact kept at ${jobs_json})"

echo "=== perf smoke (modeled CG vtime gate) ==="
# Modeled-only calibration makes the virtual clock a pure function of the
# cost model and the read/write stream, so this run is bit-deterministic
# and cheap (<1s). Gate: CG vtime at 8 nodes must stay within
# max_regression_ratio of the checked-in baseline (bench/perf_baseline.json)
# so hot-path regressions fail CI instead of silently eroding the Fig.1
# numbers. Network bytes must not grow at all — the optimization campaign's
# wire-neutrality invariant. Regenerate the baseline (command is recorded
# in the JSON) only for intentional model changes.
perf_json="build/perf_smoke.json"
ASAN_OPTIONS=detect_leaks=0 \
  build/tools/ppm_cli --app=cg --nodes=8 --cores=4 --size=27648 --iters=8 \
    --calibration=0 --json="${perf_json}" >/dev/null
python3 - "${perf_json}" bench/perf_baseline.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    run = json.load(f)
with open(sys.argv[2]) as f:
    base = json.load(f)
assert base["schema"] == "ppm_perf_baseline/v1", base.get("schema")
ratio = run["duration_ns"] / base["duration_ns"]
print(f"perf smoke: duration {run['duration_ns']} ns vs baseline "
      f"{base['duration_ns']} ns (ratio {ratio:.3f}, "
      f"limit {base['max_regression_ratio']:.2f}); "
      f"net {run['network_bytes']} B vs baseline {base['network_bytes']} B")
if ratio > base["max_regression_ratio"]:
    sys.exit(f"FAIL: modeled CG vtime regressed {ratio:.3f}x "
             f"(> {base['max_regression_ratio']:.2f}x baseline)")
if run["network_bytes"] > base["network_bytes"]:
    sys.exit(f"FAIL: modeled CG network bytes grew "
             f"{run['network_bytes']} > {base['network_bytes']}")
PY
echo "perf smoke OK (artifact kept at ${perf_json})"

echo "=== bench smoke (run, not gated) ==="
# Exercise the figure/ablation harness end-to-end at toy scale. Failures
# here are reported but do not fail CI: the benches measure, they are not
# correctness referees (the test suite above is).
if tools/bench.sh --smoke --out build/BENCH_smoke.json; then
  echo "bench smoke OK (build/BENCH_smoke.json)"
else
  echo "WARNING: bench smoke failed (not gating CI)" >&2
fi

echo "CI OK: both presets built, all tests passed."
