#!/usr/bin/env bash
# Local CI: build the default and sanitizer presets, run the full test
# suite under each. The san preset runs the phase-validator tests under
# ASan+UBSan as well — the validator's own bookkeeping is exercised by
# every checked test, so this doubles as a memory-safety pass over
# src/check/.
#
# Leak detection is off for the san run (see CMakePresets.json): tests
# that exercise error paths abandon blocked fibers without unwinding
# their stacks, so LeakSanitizer flags their live allocations. ASan's
# memory-error and UBSan's UB checks are unaffected.
#
# Usage: tools/ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

declare -A builddir=([default]=build [san]=build-san)

for preset in default san; do
  echo "=== configure+build preset: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ctest preset: ${preset} ==="
  ctest --preset "${preset}" -j "${jobs}" "$@"
  echo "=== stress smoke preset: ${preset} ==="
  # Differential fuzz harness at fixed seeds (gating). On failure it
  # prints the shrunk repro and a one-line --replay invocation; see
  # docs/TESTING.md for how to reproduce locally. Same sanitizer env as
  # the test preset (error-path fiber abandonment is not a leak).
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --smoke
  # Owner-side accumulate (docs/MODEL.md): the matrix samples the
  # owner_side_accumulate knob per config, but CI pins each delivery path
  # once — owner-applied fragments and the fetch-based fallback — so a
  # regression in either cannot hide behind what the sampler happened to
  # draw. Same fixed seed set as --smoke.
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --smoke --owner-accum=1
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --smoke --owner-accum=0
  echo "=== jobs smoke preset: ${preset} ==="
  # Multi-tenant scheduler gates (docs/SCHEDULER.md): ppm_jobs --smoke
  # checks replay determinism (byte-identical JSON across two runs per
  # policy) and the isolation oracle on its own stream; ppm_stress
  # --multi-job re-checks the oracle across seeds x policies x {clean,
  # faulted} fabrics.
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_jobs" --smoke
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_stress" --multi-job --smoke
  echo "=== windowed engine smoke preset: ${preset} ==="
  # Parallel conservative-window engine (docs/SIM.md) under each preset:
  # the san pass runs real host threads through the fiber switch and the
  # window-barrier exchange, so data races that ASan can see (use-after-
  # free of migrated engine state) and UB in the merge path get caught.
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_cli" --app=cg --nodes=4 --cores=4 \
      --size=4096 --iters=8 --calibration=0 --sim-threads=4 >/dev/null
  echo "=== model fit smoke preset: ${preset} ==="
  # Fit the ppm::model compositional performance model on a small CG
  # (docs/OBSERVABILITY.md); the fitted-coefficients artifact is kept per
  # preset so a failing drift gate can be compared across default/san.
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    "${builddir[$preset]}/tools/ppm_cli" --app=cg --cores=4 --size=4096 \
      --iters=8 --model --json="${builddir[$preset]}/model_coeffs.json" \
      >/dev/null
  echo "model fit smoke OK (artifact kept at ${builddir[$preset]}/model_coeffs.json)"
done

echo "=== traced smoke (ppm::trace export gate) ==="
# One traced CG run per CI pass: the Chrome-JSON export must stay loadable
# (Perfetto-compatible) — validated structurally below. The artifact is
# kept in build/ for eyeballing after a failure.
trace_json="build/cg_smoke.trace.json"
ASAN_OPTIONS=detect_leaks=0 \
  build/tools/ppm_cli --app=cg --nodes=4 --size=4096 --iters=12 \
    --calibration=0 --trace="${trace_json}" --profile >/dev/null
python3 - "${trace_json}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "empty traceEvents"
for e in events:
    assert e["ph"] in ("M", "X", "i"), f"unexpected phase type {e['ph']}"
    assert "pid" in e and "tid" in e and "name" in e, f"missing key in {e}"
    if e["ph"] == "X":
        assert "ts" in e and "dur" in e, f"span without ts/dur: {e}"
    if e["ph"] == "i":
        assert "ts" in e, f"instant without ts: {e}"
procs = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "process_name"}
assert {"node0", "node1", "node2", "node3", "fabric"} <= procs, procs
print(f"trace schema OK: {len(events)} events, processes {sorted(procs)}")
PY
echo "traced smoke OK (artifact kept at ${trace_json})"

echo "=== parallel engine determinism gate (docs/SIM.md) ==="
# The windowed engine's contract: a run is a bit-identical replay of
# itself at any host-thread count. Trace the same modeled CG once on one
# thread and once on four; the Chrome trace must match byte-for-byte and
# the RunResult JSON must match on every field except the sim_threads
# echo itself.
for t in 1 4; do
  ASAN_OPTIONS=detect_leaks=0 \
    build/tools/ppm_cli --app=cg --nodes=4 --cores=4 --size=4096 \
      --iters=12 --calibration=0 --sim-threads="${t}" \
      --trace="build/cg_win${t}.trace.json" \
      --json="build/cg_win${t}.json" >/dev/null
done
cmp build/cg_win1.trace.json build/cg_win4.trace.json
python3 - build/cg_win1.json build/cg_win4.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    one = json.load(f)
with open(sys.argv[2]) as f:
    four = json.load(f)
assert one.pop("sim_threads") == 1 and four.pop("sim_threads") == 4
for key in one:
    assert one[key] == four[key], (
        f"{key} diverges across sim_threads: {one[key]!r} != {four[key]!r}")
print(f"windowed determinism OK: trace + {len(one)} result fields "
      "bit-identical at 1 vs 4 host threads")
PY
echo "parallel engine determinism OK"

echo "=== jobs report schema (ppm_jobs --json gate) ==="
# The ppm_jobs/v1 JSON report is a stable machine-readable surface
# (docs/SCHEDULER.md); validate field presence and types structurally.
jobs_json="build/jobs_smoke.json"
ASAN_OPTIONS=detect_leaks=0 \
  build/tools/ppm_jobs --policy=backfill --jobs=10 --seed=3 \
    --json="${jobs_json}"
python3 - "${jobs_json}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "ppm_jobs/v1", doc.get("schema")
top = {"policy": str, "seed": int, "machine_nodes": int,
       "cores_per_node": int, "backbone_bytes_per_ns": float,
       "queue_capacity": int, "jobs": int, "completed_jobs": int,
       "rejected_jobs": int, "makespan_ns": int,
       "throughput_jobs_per_s": float, "p50_latency_ns": int,
       "p99_latency_ns": int, "node_utilization": float,
       "fabric_utilization": float, "fabric_bytes": int,
       "backbone_wait_ns": int, "backpressure_ns": int,
       "max_queue_depth": int, "completion_order": list, "per_job": list}
for key, ty in top.items():
    assert isinstance(doc[key], ty), f"{key}: {doc.get(key)!r}"
per_job = {"id": int, "kind": str, "nodes": int, "size": int, "steps": int,
           "arrival_ns": int, "rejected": bool, "start_ns": int,
           "finish_ns": int, "wait_ns": int, "latency_ns": int,
           "preemptions": int, "placement": list, "digest": str,
           "fabric_tx_messages": int, "fabric_tx_bytes": int,
           "backbone_wait_ns": int, "fetch_stall_ns": int,
           "blocks_fetched": int}
assert doc["per_job"], "no jobs in report"
for j in doc["per_job"]:
    for key, ty in per_job.items():
        assert isinstance(j[key], ty), f"per_job.{key}: {j.get(key)!r}"
assert doc["completed_jobs"] + doc["rejected_jobs"] == doc["jobs"]
print(f"jobs schema OK: {doc['jobs']} jobs, policy {doc['policy']}")
PY
echo "jobs report schema OK (artifact kept at ${jobs_json})"

echo "=== perf smoke (modeled CG vtime gate) ==="
# Modeled-only calibration makes the virtual clock a pure function of the
# cost model and the read/write stream, so this run is bit-deterministic
# and cheap (<1s). Gate: CG vtime at 8 nodes must stay within
# max_regression_ratio of the checked-in baseline (bench/perf_baseline.json)
# so hot-path regressions fail CI instead of silently eroding the Fig.1
# numbers. Network bytes must not grow at all — the optimization campaign's
# wire-neutrality invariant. Regenerate the baseline (command is recorded
# in the JSON) only for intentional model changes.
perf_json="build/perf_smoke.json"
ASAN_OPTIONS=detect_leaks=0 \
  build/tools/ppm_cli --app=cg --nodes=8 --cores=4 --size=27648 --iters=8 \
    --calibration=0 --json="${perf_json}" >/dev/null
python3 - "${perf_json}" bench/perf_baseline.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    run = json.load(f)
with open(sys.argv[2]) as f:
    base = json.load(f)
assert base["schema"] == "ppm_perf_baseline/v1", base.get("schema")
ratio = run["duration_ns"] / base["duration_ns"]
print(f"perf smoke: duration {run['duration_ns']} ns vs baseline "
      f"{base['duration_ns']} ns (ratio {ratio:.3f}, "
      f"limit {base['max_regression_ratio']:.2f}); "
      f"net {run['network_bytes']} B vs baseline {base['network_bytes']} B")
if ratio > base["max_regression_ratio"]:
    sys.exit(f"FAIL: modeled CG vtime regressed {ratio:.3f}x "
             f"(> {base['max_regression_ratio']:.2f}x baseline)")
if run["network_bytes"] > base["network_bytes"]:
    sys.exit(f"FAIL: modeled CG network bytes grew "
             f"{run['network_bytes']} > {base['network_bytes']}")
PY
echo "perf smoke OK (artifact kept at ${perf_json})"

echo "=== model validation gate (ppm::model vs simulator) ==="
# The compositional performance model (docs/OBSERVABILITY.md) must
# interpolate/extrapolate: coefficients fit from traced modeled runs at
# 2-8 nodes have to predict simulator vtime at held-out 12 and 16 nodes
# within 25% relative error, for CG and Barnes-Hut. Modeled-only runs are
# bit-deterministic, so a failure here is a real behavior change, not
# noise. Artifacts are kept for the drift oracle below.
build/tools/ppm_cli --app=cg --size=13824 --iters=8 --cores=4 --model \
  --validate=12,16 --json=build/model_cg.json >/dev/null
build/tools/ppm_cli --app=barneshut --size=2000 --steps=2 --cores=4 \
  --model --validate=12,16 --json=build/model_barneshut.json >/dev/null
python3 - build/model_cg.json build/model_barneshut.json <<'PY'
import json, sys
LIMIT = 0.25
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "ppm_model/v1", doc.get("schema")
    assert doc["validation"], f"{path}: no validation rows"
    for v in doc["validation"]:
        err = v["rel_err"]
        print(f"model gate: {doc['app']} N={v['nodes']} "
              f"measured {v['measured_vtime_ns']} ns, "
              f"predicted {v['predicted_vtime_ns']:.0f} ns "
              f"({err:+.1%})")
        if abs(err) > LIMIT:
            sys.exit(f"FAIL: {doc['app']} model mispredicts vtime at "
                     f"N={v['nodes']}: {err:+.1%} (limit ±{LIMIT:.0%})")
PY
echo "model validation gate OK"

echo "=== model drift oracle (per-term coefficients) ==="
# Coefficient ~1 means "the analytic cost for this term is exactly
# right"; bench/perf_baseline.json pins the fitted coefficients of the
# Fig.1 CG workload. When vtime behavior changes, the term whose
# coefficient moved names the regressed cost (per-fetch software
# overhead vs barrier depth vs wire volume...), instead of CI only
# reporting that total vtime grew. The fit is bit-deterministic, so any
# drift is a real change. Regenerate the baseline section only for
# intentional cost-model changes (command recorded in the JSON).
python3 - build/model_cg.json bench/perf_baseline.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    run = json.load(f)
with open(sys.argv[2]) as f:
    base = json.load(f)["model"]
fitted = {t["name"]: t["coefficient"] for t in run["terms"]}
limit = base["max_coefficient_drift"]
bad = []
for name, pinned in base["coefficients"].items():
    got = fitted.get(name)
    assert got is not None, f"model fit lost term {name}"
    allowed = limit * max(abs(pinned), 0.25)
    flag = "DRIFT" if abs(got - pinned) > allowed else "ok"
    print(f"drift oracle: {name:<11} pinned {pinned:.4f} "
          f"fitted {got:.4f} (allowed ±{allowed:.4f}) {flag}")
    if flag == "DRIFT":
        bad.append(name)
if bad:
    sys.exit("FAIL: cost term(s) regressed — coefficient drift in: "
             + ", ".join(bad))
PY
echo "model drift oracle OK"

echo "=== bench smoke (run, not gated) ==="
# Exercise the figure/ablation harness end-to-end at toy scale. Failures
# here are reported but do not fail CI: the benches measure, they are not
# correctness referees (the test suite above is).
if tools/bench.sh --smoke --out build/BENCH_smoke.json; then
  echo "bench smoke OK (build/BENCH_smoke.json)"
else
  echo "WARNING: bench smoke failed (not gating CI)" >&2
fi

echo "=== model row schema gate (BENCH_fig.json) ==="
# The model/* rows are a stable machine-readable surface like the trace
# JSON (docs/TESTING.md): validate the committed artifact structurally,
# plus the fresh smoke output when the (non-gating) bench smoke produced
# one. Each figure app must carry a fit row and the predicted Figures 1-3
# overlay at >= 512 nodes.
model_gate_files=(BENCH_fig.json)
if [ -f build/BENCH_smoke.json ]; then
  model_gate_files+=(build/BENCH_smoke.json)
fi
python3 - "${model_gate_files[@]}" <<'PY'
import json, sys
TERMS = ("compute", "fetch_rt", "wire", "msg_sw", "stall_node", "barrier")
FIGS = ("fig1_cg", "fig2_matgen", "fig3_barneshut")
for path in sys.argv[1:]:
    with open(path) as f:
        rows = [r for r in json.load(f)["rows"] if r.get("bench") == "model"]
    assert rows, f"{path}: no model/* rows"
    for fig in FIGS:
        fit = [r for r in rows if r["name"] == f"model/{fig}/fit"]
        assert len(fit) == 1, f"{path}: expected one model/{fig}/fit row"
        r = fit[0]
        assert isinstance(r["app"], str) and isinstance(r["fit_nodes"], list)
        assert isinstance(r["max_fit_rel_err"], float)
        for t in TERMS:
            c = r.get(f"coeff_{t}")
            assert isinstance(c, (int, float)) and c >= 0, (
                f"{path}: model/{fig}/fit coeff_{t}: {c!r}")
        preds = [r for r in rows
                 if r["name"].startswith(f"model/{fig}/predict/")]
        assert preds, f"{path}: no model/{fig}/predict rows"
        for r in preds:
            assert r["predicted"] == 1 and isinstance(r["nodes"], int)
            for k in ("vtime_ms", "messages", "net_bytes", "fetches"):
                assert isinstance(r[k], (int, float)) and r[k] >= 0, (
                    f"{path}: {r['name']} {k}: {r.get(k)!r}")
        assert max(r["nodes"] for r in preds) >= 512, (
            f"{path}: model/{fig} overlay stops below 512 nodes")
        for r in (r for r in rows
                  if r["name"].startswith(f"model/{fig}/validate/")):
            for k in ("vtime_ms", "measured_vtime_ms", "rel_err"):
                assert isinstance(r[k], (int, float)), (
                    f"{path}: {r['name']} {k}: {r.get(k)!r}")
    print(f"model row schema OK: {path} ({len(rows)} model rows)")
PY
echo "model row schema gate OK"

echo "CI OK: both presets built, all tests passed."
