// ppm_stress — differential fuzzing CLI over the ppm::stress library.
//
// Each program seed expands deterministically into a random PPM program
// (stress::generate_program) and a config matrix (stress::sample_configs);
// the differential oracle checks every config against the golden
// interpreter, against the reference config, and under ppm::check. On a
// red verdict the program is shrunk to a minimal repro and a one-line
// --replay invocation is printed, then the process exits nonzero.
//
//   ppm_stress --smoke              fixed seed set, CI gate
//   ppm_stress --minutes=N          soak: fresh seeds until N minutes pass
//   ppm_stress --seed=S --programs=P   explicit range
//   ppm_stress --replay=SEED:CFG    re-run one failing (seed, config) pair
//   ppm_stress --json=FILE          benchmark-format throughput record
//   ppm_stress --trace-on-failure   dump ppm::trace JSON of a shrunken
//                                   repro (reference + diverging config)
//   ppm_stress --multi-job          co-scheduling isolation oracle: every
//                                   job run under the ppm::jobs scheduler
//                                   (contention, faults, preemption) must
//                                   commit the same state as alone on an
//                                   idle machine (docs/SCHEDULER.md)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "jobs/jobs.hpp"
#include "stress/runner.hpp"
#include "util/error.hpp"

namespace {

constexpr int kDefaultConfigs = 6;
constexpr uint64_t kSmokeSeeds[] = {1, 2, 3, 4, 5, 6};

struct Args {
  bool smoke = false;
  bool verbose = false;
  double minutes = 0.0;
  uint64_t seed = 1;
  int programs = 16;
  int configs = kDefaultConfigs;
  bool has_replay = false;
  bool trace_on_failure = false;
  bool multi_job = false;
  int owner_accum = -1;  // -1 sampled per config, 0/1 forced matrix-wide
  uint64_t replay_seed = 0;
  size_t replay_config = 0;
  std::string json_path;
};

[[noreturn]] void usage(int rc) {
  std::fprintf(
      rc == 0 ? stdout : stderr,
      "usage: ppm_stress [--smoke] [--minutes=N] [--seed=S] [--programs=P]\n"
      "                  [--configs=C] [--replay=SEED:CFG] [--json=FILE]\n"
      "                  [--owner-accum=0|1] [--trace-on-failure]\n"
      "                  [--multi-job] [--verbose]\n");
  std::exit(rc);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg == "--verbose" || arg == "-v") {
      a.verbose = true;
    } else if (arg == "--trace-on-failure") {
      a.trace_on_failure = true;
    } else if (arg == "--multi-job") {
      a.multi_job = true;
    } else if (arg.rfind("--minutes=", 0) == 0) {
      a.minutes = std::strtod(val("--minutes=").c_str(), nullptr);
    } else if (arg.rfind("--seed=", 0) == 0) {
      a.seed = std::strtoull(val("--seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--programs=", 0) == 0) {
      a.programs = std::atoi(val("--programs=").c_str());
    } else if (arg.rfind("--configs=", 0) == 0) {
      a.configs = std::atoi(val("--configs=").c_str());
    } else if (arg.rfind("--owner-accum=", 0) == 0) {
      a.owner_accum = std::atoi(val("--owner-accum=").c_str()) != 0 ? 1 : 0;
    } else if (arg.rfind("--json=", 0) == 0) {
      a.json_path = val("--json=");
    } else if (arg.rfind("--replay=", 0) == 0) {
      const std::string v = val("--replay=");
      const size_t colon = v.find(':');
      if (colon == std::string::npos) usage(2);
      a.has_replay = true;
      a.replay_seed = std::strtoull(v.substr(0, colon).c_str(), nullptr, 10);
      a.replay_config =
          std::strtoull(v.substr(colon + 1).c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      usage(2);
    }
  }
  if (a.programs <= 0 || a.configs <= 0) usage(2);
  return a;
}

// --owner-accum=0|1 pins the owner_side_accumulate knob across the whole
// sampled config matrix (default: keep the per-config sampled values).
// tools/ci.sh uses this so each kAccum delivery path — owner-applied
// fragments and the fetch-based fallback — is gated deterministically
// instead of depending on what the matrix happened to sample.
std::vector<ppm::stress::StressConfig> configs_for(const Args& a,
                                                   uint64_t seed, int count) {
  auto cfgs = ppm::stress::sample_configs(seed, count);
  if (a.owner_accum < 0) return cfgs;
  const bool on = a.owner_accum != 0;
  for (auto& c : cfgs) {
    if (c.runtime.owner_side_accumulate == on) continue;
    c.runtime.owner_side_accumulate = on;
    const std::string tag = "-noacc";
    const size_t pos = c.name.find(tag);
    if (on && pos != std::string::npos) {
      c.name.erase(pos, tag.size());
    } else if (!on && pos == std::string::npos) {
      c.name += tag;
    }
  }
  return cfgs;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

// --trace-on-failure: re-run one config of the shrunken repro under
// ppm::trace and dump the Chrome JSON. The failing run may throw — the
// partial trace up to the failure point is exported anyway.
void dump_repro_trace(const ppm::stress::ProgramSpec& spec,
                      const ppm::stress::StressConfig& cfg,
                      const std::string& path) {
  ppm::stress::RunArtifacts artifacts;
  artifacts.trace = true;
  try {
    (void)ppm::stress::run_under_config(spec, cfg, &artifacts);
  } catch (const ppm::Error&) {
    // expected for the diverging config; keep the partial trace
  }
  if (artifacts.trace_json.empty() ||
      !write_text_file(path, artifacts.trace_json)) {
    std::fprintf(stderr, "trace: could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "trace (%s): %s\n", cfg.name.c_str(), path.c_str());
}

// On failure: report, shrink, print the replay line, exit 1.
[[noreturn]] void report_failure(const Args& a, const ppm::stress::ProgramSpec& spec,
                                 const std::vector<ppm::stress::StressConfig>& cfgs,
                                 const ppm::stress::Verdict& v) {
  std::fprintf(stderr, "FAIL seed=%" PRIu64 " config=%zu (%s)\n  %s\n",
               spec.seed, v.config_index, v.config_name.c_str(),
               v.detail.c_str());
  std::fprintf(stderr, "original program:\n%s", spec.dump().c_str());
  const auto sh = ppm::stress::shrink(spec, cfgs, v.config_index);
  const auto vs = ppm::stress::run_differential(sh.spec, sh.configs);
  std::fprintf(stderr, "shrunk repro (%d shrink runs):\n%s",
               sh.runs, sh.spec.dump().c_str());
  if (!vs.ok) {
    std::fprintf(stderr, "shrunk verdict: config %zu (%s): %s\n",
                 vs.config_index, vs.config_name.c_str(), vs.detail.c_str());
  }
  if (a.trace_on_failure) {
    // Two traces, side by side: the reference config (golden behavior) and
    // the diverging one, both on the shrunken repro.
    char path[128];
    std::snprintf(path, sizeof(path), "ppm_stress_seed%" PRIu64 "_ref.trace.json",
                  spec.seed);
    dump_repro_trace(sh.spec, sh.configs.front(), path);
    if (sh.configs.size() > 1) {
      std::snprintf(path, sizeof(path),
                    "ppm_stress_seed%" PRIu64 "_fail.trace.json", spec.seed);
      dump_repro_trace(sh.spec, sh.configs.back(), path);
    }
  }
  std::fprintf(stderr, "replay: ppm_stress%s --replay=%" PRIu64 ":%zu\n",
               a.smoke ? " --smoke" : "", spec.seed, v.config_index);
  std::exit(1);
}

// --multi-job: run a seeded heterogeneous job stream under the ppm::jobs
// gang scheduler — co-tenants contending on the shared backbone, seeded
// fabric fault injection, and one forced drain/preempt — and check every
// completed job's committed-state digest against the same job run alone
// on an idle machine. Any divergence means phase semantics leaked timing
// into committed state; that is a red verdict, same as the differential
// oracle.
int run_multi_job(const Args& a) {
  std::vector<uint64_t> seeds;
  if (a.smoke) {
    seeds = {1, 2, 3};
  } else {
    seeds = {a.seed};
  }
  int jobs_checked = 0;
  int failures = 0;
  for (const uint64_t seed : seeds) {
    for (const ppm::jobs::Policy policy :
         {ppm::jobs::Policy::kFifo, ppm::jobs::Policy::kBackfill}) {
      for (const bool faulted : {false, true}) {
        ppm::jobs::JobsConfig cfg;
        cfg.machine.nodes = 8;
        cfg.machine.cores_per_node = 2;
        cfg.machine.backbone_bytes_per_ns = 4.0;
        cfg.machine.engine.calibration =
            ppm::sim::CalibrationMode::kModeledOnly;
        if (faulted) {
          cfg.machine.faults.delay_jitter = true;
          cfg.machine.faults.seed = seed;
        }
        cfg.policy = policy;
        cfg.seed = seed;
        cfg.job_count = 6;
        cfg.queue_capacity = 3;
        cfg.preempt_job_id = 1;
        const ppm::jobs::JobsResult res = ppm::jobs::run_jobs(cfg);
        for (const ppm::jobs::JobStats& st : res.jobs) {
          if (st.rejected) continue;
          const uint64_t alone = ppm::jobs::run_job_isolated(st.spec, cfg);
          ++jobs_checked;
          if (st.state_digest != alone) {
            std::fprintf(stderr,
                         "FAIL multi-job seed=%" PRIu64
                         " policy=%s faults=%d job=%" PRIu64
                         " (%s): digest %016" PRIx64
                         " != isolated %016" PRIx64 "\n",
                         seed, ppm::jobs::policy_name(policy), faulted ? 1 : 0,
                         st.spec.id, ppm::jobs::kind_name(st.spec.kind),
                         st.state_digest, alone);
            ++failures;
          }
        }
      }
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "ppm_stress --multi-job: %d divergence(s)\n",
                 failures);
    return 1;
  }
  std::printf(
      "ppm_stress --multi-job: %zu seed(s) x 2 policies x {clean, faulted}: "
      "%d co-scheduled jobs bit-identical to isolated runs\n",
      seeds.size(), jobs_checked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const Args a = parse(argc, argv);
  if (a.multi_job) return run_multi_job(a);
  const auto t0 = Clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  if (a.has_replay) {
    // Reconstruct the exact (program, config) pair and re-run it against
    // the reference the way run_differential would.
    const auto spec = ppm::stress::generate_program(a.replay_seed);
    const int count = std::max(a.configs,
                               static_cast<int>(a.replay_config) + 1);
    const auto all = configs_for(a, a.replay_seed, count);
    std::vector<ppm::stress::StressConfig> pair;
    pair.push_back(all[0]);
    if (a.replay_config != 0) pair.push_back(all[a.replay_config]);
    std::printf("replaying seed=%" PRIu64 " config=%zu (%s)\n%s",
                a.replay_seed, a.replay_config,
                all[a.replay_config].name.c_str(), spec.dump().c_str());
    const auto v = ppm::stress::run_differential(spec, pair);
    if (v.ok) {
      std::printf("replay verdict: clean\n");
      return 0;
    }
    report_failure(a, spec, all, v);
  }

  int ran = 0;
  ppm::stress::RunTotals totals;
  const auto run_one = [&](uint64_t seed) {
    const auto spec = ppm::stress::generate_program(seed);
    const auto cfgs = configs_for(a, seed, a.configs);
    if (a.verbose) {
      std::printf("seed=%" PRIu64 " k=%" PRIu64 " phases=%zu arrays=%zu\n",
                  seed, spec.k_total, spec.phases.size(), spec.arrays.size());
    }
    const auto v = ppm::stress::run_differential(
        spec, cfgs, a.json_path.empty() ? nullptr : &totals);
    if (!v.ok) report_failure(a, spec, cfgs, v);
    ++ran;
  };

  if (a.smoke) {
    for (const uint64_t seed : kSmokeSeeds) run_one(seed);
  } else if (a.minutes > 0.0) {
    uint64_t seed = a.seed;
    while (elapsed_s() < a.minutes * 60.0) run_one(seed++);
  } else {
    for (int p = 0; p < a.programs; ++p) {
      run_one(a.seed + static_cast<uint64_t>(p));
    }
  }

  const double secs = elapsed_s();
  const double rate = secs > 0.0 ? static_cast<double>(ran) / secs : 0.0;
  std::printf(
      "ppm_stress: %d programs x %d configs: all verdicts clean "
      "(%.2fs, %.2f programs/s)\n",
      ran, a.configs, secs, rate);

  if (!a.json_path.empty()) {
    // Phase-structure fields (critical path, compute imbalance) come from
    // one traced representative run: the first seed of this invocation
    // under the reference config. Virtual-time quantities, so they are
    // deterministic even though the throughput numbers above are not
    // (docs/TESTING.md documents the full record schema).
    const uint64_t rep_seed = a.smoke ? kSmokeSeeds[0] : a.seed;
    const auto rep_cfgs = configs_for(a, rep_seed, a.configs);
    // The single-node reference config has no commit traffic and zero
    // modeled compute; trace the first multi-node config instead so the
    // phase structure is non-degenerate.
    size_t rep = 0;
    for (size_t i = 0; i < rep_cfgs.size(); ++i) {
      if (rep_cfgs[i].machine.nodes > 1) {
        rep = i;
        break;
      }
    }
    ppm::stress::RunArtifacts artifacts;
    artifacts.trace = true;
    (void)ppm::stress::run_under_config(
        ppm::stress::generate_program(rep_seed), rep_cfgs[rep], &artifacts);
    int64_t critical_path_ns = 0;
    double imbalance_max = 0.0;
    double imbalance_sum = 0.0;
    const auto& phases = artifacts.result.trace_summary.phases;
    for (const auto& p : phases) {
      critical_path_ns += p.compute_max_ns + p.commit_max_ns;
      imbalance_max = std::max(imbalance_max, p.imbalance());
      imbalance_sum += p.imbalance();
    }
    const double imbalance_mean =
        phases.empty() ? 0.0
                       : imbalance_sum / static_cast<double>(phases.size());

    // google-benchmark JSON shape, so tools/bench.sh's merger can fold the
    // throughput row into BENCH_fig.json unchanged.
    std::ofstream out(a.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", a.json_path.c_str());
      return 1;
    }
    char buf[1536];
    std::snprintf(
        buf, sizeof(buf),
        "{\"benchmarks\": [{\"name\": \"stress/%s\", "
        "\"programs\": %d, \"configs_per_program\": %d, "
        "\"wall_seconds\": %.3f, \"programs_per_sec\": %.3f, "
        "\"config_runs\": %" PRIu64 ", "
        "\"network_messages\": %" PRIu64 ", "
        "\"network_bytes\": %" PRIu64 ", "
        "\"blocks_fetched\": %" PRIu64 ", "
        "\"reads_from_cache\": %" PRIu64 ", "
        "\"fetch_stall_ns\": %" PRIu64 ", "
        "\"blocks_migrated\": %" PRIu64 ", "
        "\"critical_path_ns\": %" PRId64 ", "
        "\"imbalance_max\": %.6f, "
        "\"imbalance_mean\": %.6f}]}\n",
        a.smoke ? "smoke" : "run", ran, a.configs, secs, rate, totals.runs,
        totals.network_messages, totals.network_bytes, totals.blocks_fetched,
        totals.reads_from_cache, totals.fetch_stall_ns,
        totals.blocks_migrated, critical_path_ns, imbalance_max,
        imbalance_mean);
    out << buf;
  }
  return 0;
}
