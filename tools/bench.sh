#!/usr/bin/env bash
# Figure/ablation bench harness: runs the figure benches and the overlap
# and distribution/locality ablations at fixed seeds and merges their
# JSON output into BENCH_fig.json
# at the repo root (one object per bench row: name + every reported
# counter, duration_ns / net_bytes / bundles / fetch_stall_ns included).
#
# The workloads are deterministic (fixed seeds, virtual-time simulator),
# so the traffic counters are exactly reproducible; vtime under measured
# calibration varies with host speed.
#
# Usage: tools/bench.sh [--smoke] [--out FILE]
#   --smoke  shrink workloads (PPM_BENCH_SCALE=0.25) and run only the
#            smallest node counts — a CI-speed sanity pass, not a
#            measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_fig.json"
smoke=0
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --out) out="$2"; shift ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
  shift
done

benches=(fig1_cg fig2_matgen fig3_barneshut ablation_overlap
         ablation_distribution ablation_trace micro_readpath sim_scale)

filter="."
if [ "${smoke}" = 1 ]; then
  export PPM_BENCH_SCALE="${PPM_BENCH_SCALE:-0.25}"
  # Smallest node counts only; keep all four overlap-engine configs and
  # both locality-engine arms at the smallest node count. SimScale keeps
  # its 1- and 4-thread arms so the wall_speedup column is exercised;
  # the large modeled Fig.1 rows (64+ nodes) are full-run only.
  filter='(/1/|/2/|OverlapEngine|Locality/[01]/4|Trace|SimScale_Cg/16/[14]/)'
fi

cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc 2>/dev/null || echo 4)" \
  $(printf -- '--target %s ' "${benches[@]}") --target ppm_stress \
  --target ppm_jobs

tmpdir=$(mktemp -d)
trap 'rm -rf "${tmpdir}"' EXIT
for b in "${benches[@]}"; do
  echo "=== bench: ${b} ==="
  "build/bench/${b}" --benchmark_filter="${filter}" \
    --benchmark_format=json >"${tmpdir}/${b}.json"
done

# Stress-harness throughput (programs/sec over the fixed smoke seeds);
# emits the same benchmark JSON shape so the merger below folds it in.
echo "=== bench: ppm_stress ==="
build/tools/ppm_stress --smoke --json="${tmpdir}/ppm_stress.json"

# ppm::model predicted-figure overlay (docs/OBSERVABILITY.md): fit the
# compositional performance model per figure app from traced modeled runs
# at 2-8 nodes, validate it against the simulator at held-out 12/16
# nodes, and extrapolate Figures 1-3 to Franklin-scale node counts the
# simulator cannot execute. Modeled-only runs are bit-deterministic, so
# these rows are exactly reproducible (unlike the measured vtime rows).
echo "=== bench: ppm_model ==="
cmake --build --preset default -j "$(nproc 2>/dev/null || echo 4)" \
  --target ppm_cli >/dev/null
model_predict="512,1024,2048,4096,9660"
build/tools/ppm_cli --app=cg --size=13824 --iters=8 --cores=4 --model \
  --predict="${model_predict}" --validate=12,16 \
  --json="${tmpdir}/model_fig1_cg.json"
build/tools/ppm_cli --app=matgen --levels=4 --cores=4 --model \
  --predict="${model_predict}" --validate=12,16 \
  --json="${tmpdir}/model_fig2_matgen.json"
build/tools/ppm_cli --app=barneshut --size=2000 --steps=2 --cores=4 \
  --model --predict="${model_predict}" --validate=12,16 \
  --json="${tmpdir}/model_fig3_barneshut.json"

python3 - "${out}" "${tmpdir}" "${benches[@]}" ppm_stress <<'PY'
import json, sys
out, tmpdir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
rows = []
for b in benches:
    with open(f"{tmpdir}/{b}.json") as f:
        data = json.load(f)
    for run in data.get("benchmarks", []):
        row = {"bench": b, "name": run["name"]}
        for key, val in run.items():
            if isinstance(val, (int, float)) and key not in ("family_index",
                    "per_family_instance_index", "repetition_index",
                    "repetitions", "iterations", "threads"):
                row[key] = val
        rows.append(row)
# Every row carries sim_threads: 0 = classic sequential engine, >= 1 =
# the conservative-window parallel engine (docs/SIM.md). Benches that
# sweep the engine report it as a counter; everything else defaults to 0.
for r in rows:
    r.setdefault("sim_threads", 0)
# PPM-vs-reference gap column: for every PPM row whose benchmark has an
# MPI twin at the same arguments (BM_..Ppm/N vs BM_..Mpi/N), report
# vtime_ppm / vtime_mpi so the figure's headline ratio is a first-class
# column instead of a by-hand division across rows.
by_name = {(r["bench"], r["name"]): r for r in rows}
for r in rows:
    if "Ppm" in r["name"] and "vtime_ms" in r:
        twin = by_name.get((r["bench"], r["name"].replace("Ppm", "Mpi")))
        if twin and twin.get("vtime_ms"):
            r["gap_vs_mpi"] = r["vtime_ms"] / twin["vtime_ms"]
# Parallel-engine wall-clock column: a windowed row (sim_threads > 1,
# thread count as the last bare-numeric benchmark argument, before any
# /iterations:N or /real_time suffix) is paired with its sim_threads=1
# twin at the same arguments; wall_speedup is how much faster the host
# replays the identical run with more driver threads (sequential wall /
# parallel wall).
for r in rows:
    st = int(r["sim_threads"])
    if st <= 1:
        continue
    parts = r["name"].split("/")
    idx = max((i for i, p in enumerate(parts) if p == str(st)), default=-1)
    if idx < 0:
        continue
    twin_name = "/".join(parts[:idx] + ["1"] + parts[idx + 1:])
    twin = by_name.get((r["bench"], twin_name))
    if twin and twin.get("real_time"):
        r["wall_speedup"] = twin["real_time"] / r["real_time"]
# ppm::model rows: per figure app one fit row (fitted term coefficients =
# the drift oracle's inputs), the Franklin-scale prediction overlay, and
# the held-out validation rows (model vs simulator). "predicted": 1 marks
# numbers that come from the model, not a simulator execution.
for fig in ("fig1_cg", "fig2_matgen", "fig3_barneshut"):
    with open(f"{tmpdir}/model_{fig}.json") as f:
        doc = json.load(f)
    fit_row = {"bench": "model", "name": f"model/{fig}/fit",
               "app": doc["app"], "fit_nodes": doc["fit_nodes"],
               "max_fit_rel_err": max(abs(r["rel_err"])
                                      for r in doc["fit"])}
    for t in doc["terms"]:
        fit_row[f"coeff_{t['name']}"] = t["coefficient"]
    rows.append(fit_row)
    for p in doc["predictions"]:
        rows.append({"bench": "model",
                     "name": f"model/{fig}/predict/{p['nodes']}",
                     "app": doc["app"], "nodes": p["nodes"],
                     "predicted": 1,
                     "vtime_ms": p["vtime_ns"] * 1e-6,
                     "messages": p["messages"],
                     "net_bytes": p["bytes"],
                     "fetches": p["fetches"]})
    for v in doc["validation"]:
        rows.append({"bench": "model",
                     "name": f"model/{fig}/validate/{v['nodes']}",
                     "app": doc["app"], "nodes": v["nodes"],
                     "predicted": 1,
                     "vtime_ms": v["predicted_vtime_ns"] * 1e-6,
                     "measured_vtime_ms": v["measured_vtime_ns"] * 1e-6,
                     "rel_err": v["rel_err"]})
with open(out, "w") as f:
    json.dump({"rows": rows}, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out}: {len(rows)} rows")
PY

# Multi-tenant scheduler bench (docs/SCHEDULER.md): FIFO vs backfill over
# the same sampled job stream at 8 and 16 nodes, fixed seed. Written as
# BENCH_jobs.json next to the main output; per-job fabric bytes and
# backbone/fetch stalls ride along so contention attribution is in the
# artifact, not just the aggregates.
echo "=== bench: ppm_jobs ==="
jobs_out="$(dirname "${out}")/BENCH_jobs.json"
jobs_n=24
if [ "${smoke}" = 1 ]; then
  jobs_n=8
fi
for policy in fifo backfill; do
  for nodes in 8 16; do
    build/tools/ppm_jobs --policy="${policy}" --nodes="${nodes}" \
      --jobs="${jobs_n}" --seed=1 \
      --json="${tmpdir}/jobs_${policy}_${nodes}.json"
  done
done

python3 - "${jobs_out}" "${tmpdir}" <<'PY'
import json, sys
out, tmpdir = sys.argv[1], sys.argv[2]
rows = []
for policy in ("fifo", "backfill"):
    for nodes in (8, 16):
        with open(f"{tmpdir}/jobs_{policy}_{nodes}.json") as f:
            doc = json.load(f)
        row = {"bench": "ppm_jobs", "name": f"jobs/{policy}/{nodes}"}
        for key, val in doc.items():
            if isinstance(val, (int, float)) and not isinstance(val, bool):
                row[key] = val
        # Tolerate schema drift in ppm_jobs --json: a missing per-job
        # field fails with the offending key/job named instead of a bare
        # KeyError traceback.
        wanted = ("id", "kind", "nodes", "latency_ns", "fabric_tx_bytes",
                  "backbone_wait_ns", "fetch_stall_ns")
        per_job = []
        for i, j in enumerate(doc.get("per_job", [])):
            if j.get("rejected", False):
                continue
            missing = [k for k in wanted if k not in j]
            if missing:
                sys.exit(f"error: jobs_{policy}_{nodes}.json per_job[{i}] "
                         f"(id={j.get('id', '?')}) missing key(s): "
                         f"{', '.join(missing)}")
            per_job.append({k: j[k] for k in wanted})
        row["per_job"] = per_job
        rows.append(row)
with open(out, "w") as f:
    json.dump({"rows": rows}, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out}: {len(rows)} rows")
PY
