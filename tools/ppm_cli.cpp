// ppm_cli — command-line driver for the PPM applications on a simulated
// cluster. The quickest way to poke at the library without writing code:
//
//   ppm_cli --app=cg --nodes=8 --cores=4 --size=20000
//   ppm_cli --app=cg --matrix=system.mtx --tol=1e-10
//   ppm_cli --app=pcg --nodes=4
//   ppm_cli --app=matgen --levels=6
//   ppm_cli --app=barneshut --size=5000 --steps=4
//   ppm_cli --app=bfs --size=50000 --dist=cyclic
//   ppm_cli --app=matmul --size=64
//   ppm_cli --app=cg --profile          # per-phase breakdown
//   ppm_cli --app=cg --json=out.json    # machine-readable RunResult
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>

#include <unistd.h>

#include "apps/cg/cg_ppm.hpp"
#include "apps/cg/mm_io.hpp"
#include "apps/collocation/matgen_ppm.hpp"
#include "apps/dense/dense.hpp"
#include "apps/graph/graph_ppm.hpp"
#include "apps/nbody/nbody_ppm.hpp"
#include "core/ppm.hpp"
#include "model/model.hpp"
#include "trace/export.hpp"

namespace {

using namespace ppm;

struct CliOptions {
  std::string app = "cg";
  int nodes = 4;
  int cores = 4;
  int sim_threads = 0;  // 0 = classic sequential engine (docs/SIM.md)
  uint64_t size = 0;  // 0 = per-app default
  int steps = 3;
  int levels = 5;
  int max_iterations = 200;
  double tolerance = 1e-8;
  std::string matrix_file;
  Distribution dist = Distribution::kBlock;
  bool profile = false;
  bool check = false;  // run under the ppm::check phase sanitizer
  double calibration = 3.0;
  std::string trace_json;    // --trace=FILE: Chrome trace-event JSON
  std::string trace_binary;  // --trace-bin=FILE: compact binary dump
  uint32_t trace_buffer = 0;  // --trace-buffer=N events/track (0 = default)
  bool json = false;          // --json[=FILE]: RunResult as JSON
  std::string json_path;      // empty = stdout (after the human summary)
  // ppm::model mode (docs/OBSERVABILITY.md): fit the compositional
  // performance model from traced modeled runs at --fit-nodes, then
  // evaluate it at --predict node counts and/or check it against the
  // simulator at --validate node counts. With --json the document is
  // schema "ppm_model/v1" instead of "ppm_cli/v1".
  bool model = false;
  std::vector<int> fit_nodes = {2, 3, 4, 5, 6, 7, 8};
  std::vector<int> predict_nodes;
  std::vector<int> validate_nodes;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--app=cg|pcg|matgen|barneshut|bfs|components|matmul]\n"
      "          [--nodes=N] [--cores=C] [--sim-threads=T] [--size=S]\n"
      "          [--steps=K]\n"
      "          [--levels=L] [--iters=I] [--tol=T] [--matrix=FILE.mtx]\n"
      "          [--dist=block|cyclic|adaptive] [--calibration=F]\n"
      "          [--profile] [--check] [--trace=FILE.json]\n"
      "          [--trace-bin=FILE.bin] [--trace-buffer=EVENTS]\n"
      "          [--json[=FILE]]\n"
      "          [--model] [--fit-nodes=N1,N2,...] [--predict=N1,N2,...]\n"
      "          [--validate=N1,N2,...]\n"
      "model mode fits the ppm::model performance model from traced\n"
      "modeled-only runs at --fit-nodes (default 2..8), predicts vtime/\n"
      "bytes/messages at --predict counts, and compares predictions with\n"
      "the simulator at --validate counts; --predict/--validate imply\n"
      "--model.\n",
      argv0);
  std::exit(2);
}

std::vector<int> parse_int_list(const char* v, const char* argv0) {
  std::vector<int> out;
  const char* p = v;
  while (true) {
    char* end = nullptr;
    const long n = std::strtol(p, &end, 10);
    if (end == p || n < 2) usage(argv0);
    out.push_back(static_cast<int>(n));
    if (*end == '\0') break;
    if (*end != ',') usage(argv0);
    p = end + 1;
  }
  return out;
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--app=")) {
      opt.app = v;
    } else if (const char* v = value_of("--nodes=")) {
      opt.nodes = std::atoi(v);
    } else if (const char* v = value_of("--cores=")) {
      opt.cores = std::atoi(v);
    } else if (const char* v = value_of("--sim-threads=")) {
      opt.sim_threads = std::atoi(v);
    } else if (const char* v = value_of("--size=")) {
      opt.size = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--steps=")) {
      opt.steps = std::atoi(v);
    } else if (const char* v = value_of("--levels=")) {
      opt.levels = std::atoi(v);
    } else if (const char* v = value_of("--iters=")) {
      opt.max_iterations = std::atoi(v);
    } else if (const char* v = value_of("--tol=")) {
      opt.tolerance = std::atof(v);
    } else if (const char* v = value_of("--matrix=")) {
      opt.matrix_file = v;
    } else if (const char* v = value_of("--calibration=")) {
      opt.calibration = std::atof(v);
    } else if (const char* v = value_of("--dist=")) {
      if (std::string(v) == "cyclic") {
        opt.dist = Distribution::kCyclic;
      } else if (std::string(v) == "block") {
        opt.dist = Distribution::kBlock;
      } else if (std::string(v) == "adaptive") {
        // Owner-mapped layout with the migration planner armed at every
        // global commit (the locality engine).
        opt.dist = Distribution::kAdaptive;
      } else {
        usage(argv[0]);
      }
    } else if (const char* v = value_of("--trace=")) {
      opt.trace_json = v;
    } else if (const char* v = value_of("--trace-bin=")) {
      opt.trace_binary = v;
    } else if (const char* v = value_of("--trace-buffer=")) {
      opt.trace_buffer = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--json=")) {
      opt.json = true;
      opt.json_path = v;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--model") {
      opt.model = true;
    } else if (const char* v = value_of("--fit-nodes=")) {
      opt.fit_nodes = parse_int_list(v, argv[0]);
      opt.model = true;
    } else if (const char* v = value_of("--predict=")) {
      opt.predict_nodes = parse_int_list(v, argv[0]);
      opt.model = true;
    } else if (const char* v = value_of("--validate=")) {
      opt.validate_nodes = parse_int_list(v, argv[0]);
      opt.model = true;
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg == "--check") {
      opt.check = true;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

void print_profile(NodeRuntime& rt) {
  std::printf("phase profile (node 0):\n");
  std::printf("  %-5s %-6s %-12s %10s %12s %12s %8s %8s %10s\n", "#",
              "scope", "label", "VPs", "compute_us", "commit_us", "writes",
              "accums", "red_saved");
  for (const auto& p : rt.phase_profiles()) {
    std::printf(
        "  %-5llu %-6s %-12s %10llu %12.1f %12.1f %8llu %8llu %10llu\n",
        static_cast<unsigned long long>(p.phase_index),
        p.global ? "global" : "node",
        p.label.empty() ? "-" : p.label.c_str(),
        static_cast<unsigned long long>(p.k_local),
        static_cast<double>(p.compute_ns()) * 1e-3,
        static_cast<double>(p.commit_ns()) * 1e-3,
        static_cast<unsigned long long>(p.write_entries),
        static_cast<unsigned long long>(p.accums_executed),
        static_cast<unsigned long long>(p.reduction_bytes_saved));
  }
}

bool write_file(const std::string& path, const void* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  return std::fclose(f) == 0 && ok;
}

void print_result(const RunResult& r) {
  std::printf("simulated time: %.3f ms | network: %llu msgs, %.2f MB | "
              "blocks fetched: %llu, cache hits: %llu\n",
              r.duration_s() * 1e3,
              static_cast<unsigned long long>(r.network_messages),
              static_cast<double>(r.network_bytes) / 1048576.0,
              static_cast<unsigned long long>(r.remote_blocks_fetched),
              static_cast<unsigned long long>(
                  r.remote_reads_served_from_cache));
  if (r.blocks_migrated != 0) {
    std::printf("locality engine: %llu block(s) migrated (%.1f KB), "
                "%llu remote accesses made local\n",
                static_cast<unsigned long long>(r.blocks_migrated),
                static_cast<double>(r.migration_bytes) / 1024.0,
                static_cast<unsigned long long>(
                    r.remote_to_local_conversions));
  }
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out.append(buf, static_cast<size_t>(n));
}

// Full RunResult as JSON (schema "ppm_cli/v1"). Counter names match the
// ppm_stress --json record where the two overlap (network_messages,
// network_bytes, blocks_fetched, reads_from_cache, fetch_stall_ns,
// blocks_migrated), so downstream tooling can diff the two tools' output
// without a field-name translation table. counter_rollup is always
// present; phase_profiles and trace_summary appear when --profile /
// tracing were on (docs/TESTING.md documents the schema).
std::string result_to_json(const CliOptions& opt, int effective_sim_threads,
                           const RunResult& r, NodeRuntime& node0) {
  std::string out;
  out.reserve(4096);
  out += "{\n \"schema\": \"ppm_cli/v1\",\n ";
  appendf(out, "\"app\": \"%s\", \"nodes\": %d, \"cores\": %d, "
          "\"sim_threads\": %d,\n ",
          opt.app.c_str(), opt.nodes, opt.cores, effective_sim_threads);
  appendf(out, "\"duration_ns\": %" PRId64 ", ", r.duration_ns);
  appendf(out, "\"network_messages\": %" PRIu64 ", ", r.network_messages);
  appendf(out, "\"network_bytes\": %" PRIu64 ",\n ", r.network_bytes);
  appendf(out, "\"intranode_messages\": %" PRIu64 ", ",
          r.intranode_messages);
  appendf(out, "\"intranode_bytes\": %" PRIu64 ", ", r.intranode_bytes);
  appendf(out, "\"global_phases\": %" PRIu64 ", ", r.global_phases);
  appendf(out, "\"node_phases\": %" PRIu64 ",\n ", r.node_phases);
  appendf(out, "\"blocks_fetched\": %" PRIu64 ", ", r.remote_blocks_fetched);
  appendf(out, "\"reads_from_cache\": %" PRIu64 ", ",
          r.remote_reads_served_from_cache);
  appendf(out, "\"write_entries\": %" PRIu64 ", ", r.write_entries);
  appendf(out, "\"bundles_sent\": %" PRIu64 ",\n ", r.bundles_sent);
  appendf(out, "\"fetch_stall_ns\": %" PRIu64 ", ", r.fetch_stall_ns);
  appendf(out, "\"prefetch_issued\": %" PRIu64 ", ", r.prefetch_issued);
  appendf(out, "\"prefetch_hits\": %" PRIu64 ", ", r.prefetch_hits);
  appendf(out, "\"entries_combined\": %" PRIu64 ",\n ", r.entries_combined);
  appendf(out, "\"blocks_migrated\": %" PRIu64 ", ", r.blocks_migrated);
  appendf(out, "\"migration_bytes\": %" PRIu64 ", ", r.migration_bytes);
  appendf(out, "\"remote_to_local_conversions\": %" PRIu64 ", ",
          r.remote_to_local_conversions);
  appendf(out, "\"stale_messages_dropped\": %" PRIu64 ",\n",
          r.stale_messages_dropped);
  out += " \"counter_rollup\": [\n";
  for (size_t i = 0; i < r.counter_rollup.size(); ++i) {
    const auto& c = r.counter_rollup[i];
    appendf(out,
            "  {\"name\": \"%s\", \"sum\": %" PRIu64 ", \"min\": %" PRIu64
            ", \"max\": %" PRIu64 ", \"min_node\": %d, \"max_node\": %d}%s\n",
            c.name.c_str(), c.sum, c.min, c.max, c.min_node, c.max_node,
            i + 1 < r.counter_rollup.size() ? "," : "");
  }
  out += " ]";
  if (opt.profile) {
    out += ",\n \"phase_profiles\": [\n";
    const auto& profiles = node0.phase_profiles();
    for (size_t i = 0; i < profiles.size(); ++i) {
      const auto& p = profiles[i];
      appendf(out,
              "  {\"index\": %" PRIu64 ", \"scope\": \"%s\", "
              "\"label\": \"%s\", \"vps\": %" PRIu64
              ", \"compute_ns\": %" PRId64 ", \"commit_ns\": %" PRId64
              ", \"write_entries\": %" PRIu64 ", \"fetch_stall_ns\": %" PRIu64
              ", \"accums_executed\": %" PRIu64
              ", \"reduction_bytes_saved\": %" PRIu64 "}%s\n",
              p.phase_index, p.global ? "global" : "node", p.label.c_str(),
              p.k_local, p.compute_ns(), p.commit_ns(), p.write_entries,
              p.fetch_stall_ns, p.accums_executed, p.reduction_bytes_saved,
              i + 1 < profiles.size() ? "," : "");
    }
    out += " ]";
  }
  if (r.trace_summary.events != 0) {
    const auto& t = r.trace_summary;
    int64_t critical_path_ns = 0;
    int64_t compute_critical_ns = 0;
    int64_t commit_critical_ns = 0;
    double imbalance_max = 0.0;
    double imbalance_sum = 0.0;
    for (const auto& p : t.phases) {
      critical_path_ns += p.compute_max_ns + p.commit_max_ns;
      compute_critical_ns += p.compute_max_ns;
      commit_critical_ns += p.commit_max_ns;
      imbalance_max = std::max(imbalance_max, p.imbalance());
      imbalance_sum += p.imbalance();
    }
    out += ",\n \"trace_summary\": {";
    appendf(out, "\"events\": %" PRIu64 ", \"dropped\": %" PRIu64
            ", \"phases\": %zu,\n  ",
            t.events, t.dropped, t.phases.size());
    appendf(out, "\"critical_path_ns\": %" PRId64 ", ", critical_path_ns);
    appendf(out, "\"compute_critical_ns\": %" PRId64 ", ",
            compute_critical_ns);
    appendf(out, "\"commit_critical_ns\": %" PRId64 ",\n  ",
            commit_critical_ns);
    appendf(out, "\"imbalance_max\": %.6f, ", imbalance_max);
    appendf(out, "\"imbalance_mean\": %.6f,\n  ",
            t.phases.empty()
                ? 0.0
                : imbalance_sum / static_cast<double>(t.phases.size()));
    appendf(out, "\"cache_hits\": %" PRIu64 ", \"cache_misses\": %" PRIu64
            ", \"fetches\": %" PRIu64 ", \"fetch_latency_ns\": %" PRIu64
            ",\n  ",
            t.cache_hits, t.cache_misses, t.fetches, t.fetch_latency_ns);
    appendf(out, "\"stall_ns\": %" PRIu64 ", \"messages\": %" PRIu64
            ", \"bundling_efficiency\": %.6f, \"overlap_efficiency\": %.6f}",
            t.stall_ns, t.messages, t.bundling_efficiency(),
            t.overlap_efficiency());
  }
  out += "\n}\n";
  return out;
}

PpmConfig build_config(const CliOptions& opt) {
  PpmConfig cfg;
  cfg.machine.nodes = opt.nodes;
  cfg.machine.cores_per_node = opt.cores;
  cfg.machine.sim_threads = opt.sim_threads;
  // --calibration=0 selects modeled-only virtual time: slower-converging
  // timings but fully deterministic, so two identical --trace runs emit
  // byte-identical JSON.
  if (opt.calibration > 0) {
    cfg.machine.engine.calibration = sim::CalibrationMode::kMeasured;
    cfg.machine.engine.calibration_factor = opt.calibration;
  } else {
    cfg.machine.engine.calibration = sim::CalibrationMode::kModeledOnly;
  }
  cfg.runtime.profile_phases = opt.profile;
  cfg.runtime.validate_phases = opt.check;
  cfg.runtime.trace = !opt.trace_json.empty() || !opt.trace_binary.empty() ||
                      opt.profile;
  if (opt.trace_buffer != 0) cfg.runtime.trace_buffer_events = opt.trace_buffer;
  cfg.runtime.adaptive_distribution = opt.dist == Distribution::kAdaptive;
  return cfg;
}

/// One complete app run on its own simulated machine. The machine and
/// runtime stay alive past collect() so callers can still reach node 0's
/// phase profiles and the trace recorder.
struct AppExecution {
  std::unique_ptr<cluster::Machine> machine;
  std::unique_ptr<Runtime> runtime;
  RunResult result;
};

/// Build a fresh machine from cfg and run the selected app on it once
/// (model mode runs this in a loop over node counts). Returns 0, or 2
/// for an unknown --app.
int execute_app(const CliOptions& opt, const PpmConfig& cfg,
                AppExecution& ex) {
  ex.machine = std::make_unique<cluster::Machine>(cfg.machine);
  ex.runtime = std::make_unique<Runtime>(*ex.machine, cfg.runtime);
  cluster::Machine& machine = *ex.machine;
  Runtime& runtime = *ex.runtime;
  RunResult& result = ex.result;

  const apps::cg::CgOptions cg_opts{.max_iterations = opt.max_iterations,
                                    .tolerance = opt.tolerance};

  auto execute = [&](const std::function<void(Env&)>& program) {
    machine.run_per_node([&](int node) {
      NodeRuntime& nr = runtime.node(node);
      nr.start();
      Env env(nr);
      program(env);
      nr.finish();
    });
    result = runtime.collect();
  };

  if (opt.app == "cg" || opt.app == "pcg") {
    apps::cg::CsrMatrix a;
    std::vector<double> b;
    apps::cg::ChimneyProblem problem;
    if (!opt.matrix_file.empty()) {
      a = apps::cg::read_matrix_market_file(opt.matrix_file);
      b.assign(a.n, 1.0);
      std::printf("loaded %s: %llu unknowns, %llu nonzeros\n",
                  opt.matrix_file.c_str(),
                  static_cast<unsigned long long>(a.n),
                  static_cast<unsigned long long>(a.nnz()));
    } else {
      const uint64_t target = opt.size != 0 ? opt.size : 16'384;
      const auto edge = static_cast<uint64_t>(
          std::max(2.0, std::cbrt(static_cast<double>(target) / 2.0)));
      problem = {.nx = edge, .ny = edge, .nz = 2 * edge};
      std::printf("chimney %llux%llux%llu: %llu unknowns\n",
                  static_cast<unsigned long long>(problem.nx),
                  static_cast<unsigned long long>(problem.ny),
                  static_cast<unsigned long long>(problem.nz),
                  static_cast<unsigned long long>(problem.unknowns()));
    }
    int iters = 0;
    bool converged = false;
    double final_residual = 0;
    execute([&](Env& env) {
      apps::cg::PpmCgOutput out =
          !opt.matrix_file.empty()
              ? apps::cg::cg_solve_ppm_matrix(env, a, b, cg_opts)
              : (opt.app == "pcg"
                     ? apps::cg::cg_solve_ppm_ssor(env, problem, cg_opts)
                     : apps::cg::cg_solve_ppm(env, problem, cg_opts));
      if (env.node_id() == 0) {
        iters = out.iterations;
        converged = out.converged;
        final_residual = out.residual_history.empty()
                             ? 0.0
                             : out.residual_history.back();
      }
    });
    std::printf("%s: %s after %d iterations, final ||r|| = %.3e\n",
                opt.app.c_str(), converged ? "converged" : "NOT converged",
                iters, final_residual);
  } else if (opt.app == "matgen") {
    apps::collocation::CollocationProblem problem;
    problem.levels = opt.levels;
    problem.base = opt.size != 0 ? opt.size : 16;
    uint64_t nnz = 0;
    execute([&](Env& env) {
      const auto out = apps::collocation::generate_matrix_ppm(env, problem);
      const auto total = env.allreduce(
          out.local_rows.nnz(),
          [](uint64_t x, uint64_t y) { return x + y; });
      if (env.node_id() == 0) nnz = total;
    });
    std::printf("matgen: %llu points, %llu nonzeros\n",
                static_cast<unsigned long long>(problem.total_points()),
                static_cast<unsigned long long>(nnz));
  } else if (opt.app == "barneshut") {
    const uint64_t n = opt.size != 0 ? opt.size : 4000;
    const auto init = apps::nbody::make_plummer(n, 99);
    const apps::nbody::NbodyOptions nb{.theta = 0.5, .eps = 0.01,
                                       .dt = 0.002, .steps = opt.steps};
    execute([&](Env& env) {
      auto st = apps::nbody::setup_nbody_ppm(env, init);
      apps::nbody::simulate_ppm(env, st, nb);
    });
    std::printf("barneshut: %llu particles, %d steps\n",
                static_cast<unsigned long long>(n), opt.steps);
  } else if (opt.app == "bfs" || opt.app == "components") {
    const uint64_t n = opt.size != 0 ? opt.size : 20'000;
    const auto g = apps::graph::make_rmat_graph(n, 8.0, 7);
    int64_t summary = 0;
    execute([&](Env& env) {
      if (opt.app == "bfs") {
        const auto d = apps::graph::bfs_ppm(env, g, 0, opt.dist);
        if (env.node_id() == 0) {
          for (int64_t v : d) summary = std::max(summary, v);
        }
      } else {
        const auto labels = apps::graph::components_ppm(env, g, opt.dist);
        if (env.node_id() == 0) {
          std::set<int64_t> unique(labels.begin(), labels.end());
          summary = static_cast<int64_t>(unique.size());
        }
      }
    });
    std::printf("%s: %llu vertices, %llu edges, %s = %lld\n",
                opt.app.c_str(), static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(g.num_edges()),
                opt.app == "bfs" ? "eccentricity" : "components",
                static_cast<long long>(summary));
  } else if (opt.app == "matmul") {
    const uint64_t n = opt.size != 0 ? opt.size : 48;
    const auto a = apps::dense::make_matrix(n, 1);
    const auto b = apps::dense::make_matrix(n, 2);
    double checksum = 0;
    execute([&](Env& env) {
      const auto c = apps::dense::matmul_ppm(env, a, b);
      if (env.node_id() == 0) {
        for (double v : c.data) checksum += v;
      }
    });
    std::printf("matmul: n=%llu, checksum %.6f\n",
                static_cast<unsigned long long>(n), checksum);
  } else {
    std::fprintf(stderr, "unknown app '%s'\n", opt.app.c_str());
    return 2;
  }
  return 0;
}

// ---- ppm::model mode (docs/OBSERVABILITY.md) --------------------------

struct ModelValidation {
  int nodes = 0;
  int64_t measured_vtime_ns = 0;
  double predicted_vtime_ns = 0;
  double rel_err = 0;  // predicted/measured - 1
};

// Schema "ppm_model/v1" (docs/TESTING.md): fitted counter shapes and term
// coefficients (the drift oracle's inputs), per-fit residuals, and the
// requested predictions/validations.
std::string model_to_json(const CliOptions& opt, const model::Model& mdl,
                          std::span<const model::Observation> obs,
                          std::span<const model::Prediction> preds,
                          std::span<const ModelValidation> vals) {
  std::string out;
  out.reserve(4096);
  out += "{\n \"schema\": \"ppm_model/v1\",\n ";
  appendf(out, "\"app\": \"%s\", \"cores\": %d,\n ", opt.app.c_str(),
          mdl.cores);
  appendf(out,
          "\"machine\": {\"latency_ns\": %.1f, \"bytes_per_ns\": %.3f, "
          "\"send_overhead_ns\": %.1f, \"recv_overhead_ns\": %.1f},\n ",
          mdl.costs.latency_ns, mdl.costs.bytes_per_ns,
          mdl.costs.send_overhead_ns, mdl.costs.recv_overhead_ns);
  out += "\"fit_nodes\": [";
  for (size_t i = 0; i < mdl.fit_nodes.size(); ++i) {
    appendf(out, "%s%d", i != 0 ? ", " : "", mdl.fit_nodes[i]);
  }
  out += "],\n \"counters\": [\n";
  for (size_t i = 0; i < model::kCounters; ++i) {
    const model::Shape& s = mdl.counters[i];
    appendf(out,
            "  {\"name\": \"%s\", \"a\": %.17g, \"b\": %.17g, "
            "\"exponent\": %.6f, \"log_power\": %d, \"formula\": \"%s\"}%s\n",
            model::kCounterNames[i], s.a, s.b, s.exponent, s.log_power,
            s.formula().c_str(), i + 1 < model::kCounters ? "," : "");
  }
  out += " ],\n \"terms\": [\n";
  for (size_t i = 0; i < mdl.terms.size(); ++i) {
    const auto& t = mdl.terms[i];
    appendf(out,
            "  {\"name\": \"%s\", \"coefficient\": %.17g, "
            "\"prior\": %.2f}%s\n",
            t.name.c_str(), t.coefficient, t.prior,
            i + 1 < mdl.terms.size() ? "," : "");
  }
  out += " ],\n \"fit\": [\n";
  for (size_t i = 0; i < obs.size(); ++i) {
    appendf(out,
            "  {\"nodes\": %d, \"measured_vtime_ns\": %" PRId64
            ", \"rel_err\": %.6f}%s\n",
            obs[i].nodes, obs[i].vtime_ns, mdl.fit_rel_err[i],
            i + 1 < obs.size() ? "," : "");
  }
  out += " ],\n \"predictions\": [\n";
  for (size_t i = 0; i < preds.size(); ++i) {
    const auto& p = preds[i];
    appendf(out,
            "  {\"nodes\": %d, \"vtime_ns\": %.1f, \"messages\": %.1f, "
            "\"bytes\": %.1f, \"fetches\": %.1f, \"stall_ns\": %.1f, "
            "\"accums_executed\": %.1f, \"reduction_bytes_saved\": %.1f, "
            "\"terms_ns\": {",
            p.nodes, p.vtime_ns, p.messages, p.bytes, p.fetches, p.stall_ns,
            p.accums_executed, p.reduction_bytes_saved);
    for (size_t t = 0; t < model::kTerms; ++t) {
      appendf(out, "%s\"%s\": %.1f", t != 0 ? ", " : "",
              model::kTermNames[t], p.term_ns[t]);
    }
    appendf(out, "}}%s\n", i + 1 < preds.size() ? "," : "");
  }
  out += " ],\n \"validation\": [\n";
  for (size_t i = 0; i < vals.size(); ++i) {
    const auto& v = vals[i];
    appendf(out,
            "  {\"nodes\": %d, \"measured_vtime_ns\": %" PRId64
            ", \"predicted_vtime_ns\": %.1f, \"rel_err\": %.6f}%s\n",
            v.nodes, v.measured_vtime_ns, v.predicted_vtime_ns, v.rel_err,
            i + 1 < vals.size() ? "," : "");
  }
  out += " ]\n}\n";
  return out;
}

/// Fit the model from traced modeled runs at opt.fit_nodes, predict at
/// opt.predict_nodes, validate against the simulator at
/// opt.validate_nodes. Fit and validation runs force modeled-only
/// calibration: virtual time is then bit-deterministic, so the fitted
/// coefficients (and the CI drift oracle built on them) are exactly
/// reproducible.
int run_model(const CliOptions& opt, std::string* json_out) {
  std::vector<model::Observation> obs;
  for (int n : opt.fit_nodes) {
    CliOptions o = opt;
    o.nodes = n;
    o.profile = false;
    o.check = false;
    PpmConfig cfg = build_config(o);
    cfg.machine.engine.calibration = sim::CalibrationMode::kModeledOnly;
    cfg.runtime.trace = true;  // the critical-path split needs the tracer
    cfg.runtime.profile_phases = false;
    std::printf("model: fit run at %d nodes\n", n);
    AppExecution ex;
    if (const int rc = execute_app(o, cfg, ex); rc != 0) return rc;
    obs.push_back(model::observe(n, opt.cores, ex.result));
  }
  const model::Model mdl = model::fit(
      obs, model::MachineCosts::from_config(build_config(opt).machine));
  std::fputs(mdl.to_string().c_str(), stdout);

  std::vector<model::Prediction> preds;
  preds.reserve(opt.predict_nodes.size());
  for (int n : opt.predict_nodes) preds.push_back(mdl.predict(n));
  if (!preds.empty()) {
    std::printf("predictions:\n  %-6s %12s %14s %12s %12s\n", "N",
                "vtime_ms", "messages", "MB", "fetches");
    for (const auto& p : preds) {
      std::printf("  %-6d %12.3f %14.0f %12.2f %12.0f\n", p.nodes,
                  p.vtime_ns * 1e-6, p.messages, p.bytes / 1048576.0,
                  p.fetches);
    }
  }

  std::vector<ModelValidation> vals;
  for (int n : opt.validate_nodes) {
    CliOptions o = opt;
    o.nodes = n;
    o.profile = false;
    o.check = false;
    PpmConfig cfg = build_config(o);
    cfg.machine.engine.calibration = sim::CalibrationMode::kModeledOnly;
    cfg.runtime.profile_phases = false;
    std::printf("model: validation run at %d nodes\n", n);
    AppExecution ex;
    if (const int rc = execute_app(o, cfg, ex); rc != 0) return rc;
    const model::Prediction p = mdl.predict(n);
    ModelValidation v;
    v.nodes = n;
    v.measured_vtime_ns = ex.result.duration_ns;
    v.predicted_vtime_ns = p.vtime_ns;
    v.rel_err =
        p.vtime_ns / static_cast<double>(ex.result.duration_ns) - 1.0;
    vals.push_back(v);
  }
  if (!vals.empty()) {
    std::printf("validation (model vs simulator):\n  %-6s %14s %14s %8s\n",
                "N", "measured_ms", "model_ms", "err");
    for (const auto& v : vals) {
      std::printf("  %-6d %14.3f %14.3f %+7.1f%%\n", v.nodes,
                  static_cast<double>(v.measured_vtime_ns) * 1e-6,
                  v.predicted_vtime_ns * 1e-6, v.rel_err * 100.0);
    }
  }
  if (json_out != nullptr) {
    *json_out = model_to_json(opt, mdl, obs, preds, vals);
  }
  return 0;
}

int run_cli(const CliOptions& opt) {
  // Bare --json promises clean JSON on stdout: divert the human
  // narrative (including the apps' own progress lines) to stderr and
  // restore stdout just before emitting the document.
  int saved_stdout = -1;
  if (opt.json && opt.json_path.empty()) {
    std::fflush(stdout);
    saved_stdout = dup(STDOUT_FILENO);
    dup2(STDERR_FILENO, STDOUT_FILENO);
  }
  auto restore_stdout = [&] {
    if (saved_stdout != -1) {
      std::fflush(stdout);
      dup2(saved_stdout, STDOUT_FILENO);
      close(saved_stdout);
      saved_stdout = -1;
    }
  };
  auto emit_json = [&](const std::string& json) -> int {
    restore_stdout();
    if (opt.json_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else if (!write_file(opt.json_path, json.data(), json.size())) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    return 0;
  };

  if (opt.model) {
    std::string json;
    const int rc = run_model(opt, opt.json ? &json : nullptr);
    if (rc != 0) return rc;
    restore_stdout();
    return opt.json ? emit_json(json) : 0;
  }

  const PpmConfig cfg = build_config(opt);
  AppExecution ex;
  if (const int rc = execute_app(opt, cfg, ex); rc != 0) return rc;
  RunResult& result = ex.result;
  Runtime& runtime = *ex.runtime;

  print_result(result);
  if (runtime.trace() != nullptr) {
    if (!opt.trace_json.empty()) {
      const std::string json = trace::to_chrome_json(*runtime.trace());
      if (!write_file(opt.trace_json, json.data(), json.size())) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opt.trace_json.c_str());
        return 1;
      }
      std::printf("trace: %llu events (%llu dropped) -> %s\n",
                  static_cast<unsigned long long>(
                      runtime.trace()->total_recorded()),
                  static_cast<unsigned long long>(
                      runtime.trace()->total_dropped()),
                  opt.trace_json.c_str());
    }
    if (!opt.trace_binary.empty()) {
      const Bytes bin = trace::to_binary(*runtime.trace());
      if (!write_file(opt.trace_binary, bin.data(), bin.size())) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opt.trace_binary.c_str());
        return 1;
      }
    }
  }
  if (opt.profile) {
    print_profile(runtime.node(0));
    std::fputs(result.trace_summary.to_string().c_str(), stdout);
  }
  if (opt.check) {
    std::fputs(result.check_report.to_string().c_str(), stdout);
    if (!result.check_report.clean()) return 3;
  }
  restore_stdout();
  if (opt.json) {
    return emit_json(result_to_json(opt, ex.machine->sim_threads(), result,
                                    runtime.node(0)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_cli(parse(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
