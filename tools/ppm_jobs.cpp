// ppm_jobs — drive the ppm::jobs multi-tenant scheduler from the shell
// (docs/SCHEDULER.md):
//
//   ppm_jobs --policy=backfill --jobs=16 --seed=3       # human summary
//   ppm_jobs --policy=fifo --json                       # ppm_jobs/v1 JSON
//   ppm_jobs --json=FILE --nodes=16 --backbone=4.0
//   ppm_jobs --preempt=2                                # drain job 2 once
//   ppm_jobs --smoke                                    # CI gate: replay
//                                                       # determinism + the
//                                                       # isolation oracle
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "jobs/jobs.hpp"

namespace {

using namespace ppm;

struct Args {
  jobs::Policy policy = jobs::Policy::kFifo;
  uint64_t seed = 1;
  int job_count = 12;
  int nodes = 8;
  int cores = 4;
  double backbone = 4.0;
  size_t queue = 4;
  int64_t preempt = -1;
  bool json = false;
  std::string json_path;
  bool smoke = false;
};

[[noreturn]] void usage(int rc) {
  std::fprintf(
      rc == 0 ? stdout : stderr,
      "usage: ppm_jobs [--policy=fifo|backfill|smallest] [--jobs=N]\n"
      "                [--seed=S] [--nodes=N] [--cores=C] [--backbone=F]\n"
      "                [--queue=N] [--preempt=JOBID] [--json[=FILE]]\n"
      "                [--smoke]\n");
  std::exit(rc);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--policy=", 0) == 0) {
      if (!jobs::parse_policy(val("--policy="), &a.policy)) usage(2);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      a.job_count = std::atoi(val("--jobs=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      a.seed = std::strtoull(val("--seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      a.nodes = std::atoi(val("--nodes=").c_str());
    } else if (arg.rfind("--cores=", 0) == 0) {
      a.cores = std::atoi(val("--cores=").c_str());
    } else if (arg.rfind("--backbone=", 0) == 0) {
      a.backbone = std::strtod(val("--backbone=").c_str(), nullptr);
    } else if (arg.rfind("--queue=", 0) == 0) {
      a.queue = std::strtoull(val("--queue=").c_str(), nullptr, 10);
    } else if (arg.rfind("--preempt=", 0) == 0) {
      a.preempt = std::strtoll(val("--preempt=").c_str(), nullptr, 10);
    } else if (arg == "--json") {
      a.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      a.json = true;
      a.json_path = val("--json=");
    } else if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      usage(2);
    }
  }
  if (a.job_count < 0 || a.nodes <= 0 || a.cores <= 0 || a.queue == 0) {
    usage(2);
  }
  return a;
}

jobs::JobsConfig make_config(const Args& a) {
  jobs::JobsConfig cfg;
  cfg.machine.nodes = a.nodes;
  cfg.machine.cores_per_node = a.cores;
  cfg.machine.backbone_bytes_per_ns = a.backbone;
  // Modeled-only virtual time: replays of the same config are then
  // bit-identical, which --smoke and the replay test assert on raw bytes.
  cfg.machine.engine.calibration = sim::CalibrationMode::kModeledOnly;
  cfg.policy = a.policy;
  cfg.seed = a.seed;
  cfg.job_count = a.job_count;
  cfg.queue_capacity = a.queue;
  cfg.preempt_job_id = a.preempt;
  return cfg;
}

void print_human(const jobs::JobsConfig& cfg, const jobs::JobsResult& res) {
  std::printf("ppm_jobs: policy=%s seed=%" PRIu64
              " machine=%dx%d backbone=%.1f B/ns\n",
              jobs::policy_name(cfg.policy), cfg.seed, cfg.machine.nodes,
              cfg.machine.cores_per_node, cfg.machine.backbone_bytes_per_ns);
  std::printf("  %-4s %-9s %5s %6s %5s %12s %12s %4s %8s %10s\n", "id",
              "kind", "nodes", "size", "steps", "wait_us", "latency_us",
              "pre", "tx_KB", "bb_wait_us");
  for (const auto& st : res.jobs) {
    if (st.rejected) {
      std::printf("  %-4" PRIu64 " %-9s %5d %6" PRIu64
                  " %5" PRIu64 "  REJECTED (machine has %d nodes)\n",
                  st.spec.id, jobs::kind_name(st.spec.kind),
                  st.spec.nodes_required, st.spec.size, st.spec.steps,
                  cfg.machine.nodes);
      continue;
    }
    std::printf("  %-4" PRIu64 " %-9s %5d %6" PRIu64 " %5" PRIu64
                " %12.1f %12.1f %4d %8.1f %10.1f\n",
                st.spec.id, jobs::kind_name(st.spec.kind),
                st.spec.nodes_required, st.spec.size, st.spec.steps,
                static_cast<double>(st.wait_ns) * 1e-3,
                static_cast<double>(st.latency_ns) * 1e-3, st.preemptions,
                static_cast<double>(st.fabric_tx_bytes) / 1024.0,
                static_cast<double>(st.backbone_wait_ns) * 1e-3);
  }
  std::printf(
      "  completed %d, rejected %d | makespan %.3f ms | "
      "throughput %.1f jobs/s | p50 %.1f us, p99 %.1f us\n",
      res.completed_jobs, res.rejected_jobs,
      static_cast<double>(res.makespan_ns) * 1e-6, res.throughput_jobs_per_s,
      static_cast<double>(res.p50_latency_ns) * 1e-3,
      static_cast<double>(res.p99_latency_ns) * 1e-3);
  std::printf(
      "  node util %.1f%% | fabric util %.1f%% (%.2f MB, backbone wait "
      "%.1f us) | backpressure %.1f us, max queue %zu\n",
      res.node_utilization * 100.0, res.fabric_utilization * 100.0,
      static_cast<double>(res.fabric_bytes) / 1048576.0,
      static_cast<double>(res.backbone_wait_ns) * 1e-3,
      static_cast<double>(res.backpressure_ns) * 1e-3, res.max_queue_depth);
}

// --smoke: for each policy, (a) two runs of the same config must produce
// byte-identical JSON (replay determinism), (b) every completed job's
// state digest must equal the same job run alone on an idle machine (the
// multi-tenant isolation oracle), (c) basic report sanity.
int run_smoke(const Args& a) {
  Args sa = a;
  sa.nodes = 8;
  sa.cores = 2;
  sa.job_count = 8;
  sa.preempt = 2;  // exercise drain/requeue/resume in the gate too
  int failures = 0;
  for (const jobs::Policy policy :
       {jobs::Policy::kFifo, jobs::Policy::kBackfill}) {
    sa.policy = policy;
    const jobs::JobsConfig cfg = make_config(sa);
    const jobs::JobsResult res = jobs::run_jobs(cfg);
    const std::string j1 = jobs::to_json(cfg, res);
    const std::string j2 = jobs::to_json(cfg, jobs::run_jobs(cfg));
    const char* name = jobs::policy_name(policy);
    if (j1 != j2) {
      std::fprintf(stderr, "FAIL %s: replay JSON differs\n", name);
      ++failures;
    }
    if (res.completed_jobs + res.rejected_jobs !=
        static_cast<int>(res.jobs.size())) {
      std::fprintf(stderr, "FAIL %s: %zu jobs, %d completed + %d rejected\n",
                   name, res.jobs.size(), res.completed_jobs,
                   res.rejected_jobs);
      ++failures;
    }
    if (res.completed_jobs == 0 || res.makespan_ns <= 0) {
      std::fprintf(stderr, "FAIL %s: empty run (%d completed)\n", name,
                   res.completed_jobs);
      ++failures;
    }
    for (const auto& st : res.jobs) {
      if (st.rejected) continue;
      const uint64_t alone = jobs::run_job_isolated(st.spec, cfg);
      if (st.state_digest != alone) {
        std::fprintf(stderr,
                     "FAIL %s: job %" PRIu64 " (%s) digest %016" PRIx64
                     " != isolated %016" PRIx64 "\n",
                     name, st.spec.id, jobs::kind_name(st.spec.kind),
                     st.state_digest, alone);
        ++failures;
      }
    }
    std::printf("smoke %s: %d jobs, makespan %.3f ms, %s\n", name,
                res.completed_jobs,
                static_cast<double>(res.makespan_ns) * 1e-6,
                failures == 0 ? "ok" : "FAILING");
  }
  if (failures != 0) {
    std::fprintf(stderr, "ppm_jobs --smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("ppm_jobs --smoke: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.smoke) return run_smoke(a);
    const jobs::JobsConfig cfg = make_config(a);
    const jobs::JobsResult res = jobs::run_jobs(cfg);
    if (a.json) {
      const std::string json = jobs::to_json(cfg, res);
      if (a.json_path.empty()) {
        std::fputs(json.c_str(), stdout);
      } else {
        std::FILE* f = std::fopen(a.json_path.c_str(), "wb");
        if (f == nullptr ||
            std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
            std::fclose(f) != 0) {
          std::fprintf(stderr, "cannot write %s\n", a.json_path.c_str());
          return 1;
        }
      }
    } else {
      print_human(cfg, res);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
