#include "util/rng.hpp"

#include <cmath>

namespace ppm {

uint64_t SplitMix64::next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t mix64(uint64_t x) {
  SplitMix64 sm(x);
  return sm.next();
}

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::next_in(int64_t lo, int64_t hi) {
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = next_double_in(-1.0, 1.0);
    v = next_double_in(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double k = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * k;
  have_spare_normal_ = true;
  return u * k;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace ppm
