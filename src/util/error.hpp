// Error handling primitives shared by every PPM module.
//
// The library reports contract violations and runtime failures by throwing
// ppm::Error. PPM_CHECK is used for conditions that depend on user input
// (misuse of the API, malformed messages); assert() remains for internal
// invariants that should be impossible to violate.
#pragma once

#include <stdexcept>
#include <string>

namespace ppm {

/// Exception type thrown for all PPM library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

/// Format helper: tiny printf-style formatter used across the library
/// (gcc 12 lacks std::format).
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ppm

/// Check a condition that can be violated by API misuse or bad input.
/// Throws ppm::Error with location info and an optional formatted message.
#define PPM_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::ppm::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                         ::ppm::strfmt("" __VA_ARGS__)); \
    }                                                                     \
  } while (0)
