// Deterministic random number generation.
//
// All stochastic pieces of the library (workload generators, dynamic VP
// scheduling jitter, property tests) draw from these generators so that
// every run is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

namespace ppm {

/// SplitMix64: tiny generator used for seeding and cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next();

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 — the library's workhorse PRNG.
/// Fast, 256-bit state, passes BigCrush; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t next_below(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t next_in(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method).
  double next_normal();

  /// Split off an independent stream (for per-node / per-VP generators).
  Rng split();

 private:
  uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// 64-bit mix function usable as a hash for integers.
uint64_t mix64(uint64_t x);

}  // namespace ppm
