// Flat binary serialization used for every simulated network message.
//
// ByteWriter appends trivially-copyable values and contiguous ranges to a
// growable byte vector; ByteReader consumes them back with bounds checking,
// throwing ppm::Error on truncated or garbled input (exercised by the
// failure-injection tests).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace ppm {

using Bytes = std::vector<std::byte>;

class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopt an existing byte vector as backing store, keeping its capacity
  /// but discarding its contents — recycles a flushed buffer's allocation.
  explicit ByteWriter(Bytes recycled) : buf_(std::move(recycled)) {
    buf_.clear();
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &value, sizeof(T));
  }

  /// Length-prefixed contiguous range of trivially-copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> values) {
    put<uint64_t>(values.size());
    const size_t off = buf_.size();
    buf_.resize(off + values.size_bytes());
    if (!values.empty()) {
      std::memcpy(buf_.data() + off, values.data(), values.size_bytes());
    }
  }

  template <typename T>
  void put_vector(const std::vector<T>& values) {
    put_span(std::span<const T>(values));
  }

  void put_string(const std::string& s) {
    put_span(std::span<const char>(s.data(), s.size()));
  }

  /// Raw bytes without a length prefix (caller knows the size).
  void put_raw(const void* data, size_t n) {
    const size_t off = buf_.size();
    buf_.resize(off + n);
    if (n != 0) std::memcpy(buf_.data() + off, data, n);
  }

  /// Append n uninitialized-ish bytes and return a pointer to them; lets
  /// hot paths serialize a whole record with one growth operation.
  std::byte* extend(size_t n) {
    const size_t off = buf_.size();
    if (buf_.capacity() < off + n) {
      buf_.reserve(std::max(off + n, off * 2 + 64));
    }
    buf_.resize(off + n);
    return buf_.data() + off;
  }

  size_t size() const { return buf_.size(); }
  /// Drop the contents but keep the allocation (hot paths that refill the
  /// same writer every phase).
  void clear() { buf_.clear(); }
  Bytes take() && { return std::move(buf_); }
  const Bytes& bytes() const { return buf_; }
  /// Mutable access to already-written bytes (in-place record patching,
  /// e.g. write combining folding a value into a buffered entry). The
  /// pointer is invalidated by the next append.
  std::byte* data() { return buf_.data(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T value;
    PPM_CHECK(pos_ + sizeof(T) <= data_.size(),
              "truncated message: need %zu bytes at offset %zu, have %zu",
              sizeof(T), pos_, data_.size());
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<uint64_t>();
    PPM_CHECK(n <= (data_.size() - pos_) / sizeof(T),
              "garbled message: claimed %llu elements exceeds payload",
              static_cast<unsigned long long>(n));
    std::vector<T> out(n);
    if (n != 0) {
      std::memcpy(out.data(), data_.data() + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return out;
  }

  std::string get_string() {
    const auto v = get_vector<char>();
    return std::string(v.begin(), v.end());
  }

  void get_raw(void* out, size_t n) {
    PPM_CHECK(pos_ + n <= data_.size(), "truncated message payload");
    if (n != 0) std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  /// View of the next n bytes without copying; advances the cursor.
  std::span<const std::byte> view(size_t n) {
    PPM_CHECK(pos_ + n <= data_.size(), "truncated message payload");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace ppm
