// Wall-clock timing helper used for virtual-time calibration and benches.
#pragma once

#include <chrono>

namespace ppm {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or last reset().
  int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppm
