#include "util/error.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace ppm {

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::string what = strfmt("PPM_CHECK failed: %s at %s:%d", expr, file, line);
  if (!msg.empty()) {
    what += ": ";
    what += msg;
  }
  throw Error(what);
}

}  // namespace detail
}  // namespace ppm
