#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ppm {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PPM_CHECK(!bounds_.empty(), "histogram needs at least one bucket boundary");
  PPM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram boundaries must be sorted");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Interpolate within bucket i.
      const double lo = (i == 0) ? bounds_.front() : bounds_[i - 1];
      const double hi = (i >= bounds_.size()) ? bounds_.back() : bounds_[i];
      if (counts_[i] == 0 || hi <= lo) return hi;
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds_.back();
}

std::string Histogram::to_string() const {
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const char* prefix = (i == 0) ? "(-inf" : nullptr;
    if (prefix != nullptr) {
      out += strfmt("(-inf, %.3g]: %llu\n", bounds_[0],
                    static_cast<unsigned long long>(counts_[0]));
    } else if (i < bounds_.size()) {
      out += strfmt("(%.3g, %.3g]: %llu\n", bounds_[i - 1], bounds_[i],
                    static_cast<unsigned long long>(counts_[i]));
    } else {
      out += strfmt("(%.3g, +inf): %llu\n", bounds_.back(),
                    static_cast<unsigned long long>(counts_[i]));
    }
  }
  return out;
}

}  // namespace ppm
