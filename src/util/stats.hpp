// Lightweight statistics accumulators used by the simulator, the network
// model, and the benchmark harness.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ppm {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const RunningStat& other);

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Monotonically increasing counters keyed at construction time; used for
/// network traffic accounting (messages, bytes, per-kind tallies).
///
/// Increments are relaxed atomics: under the windowed parallel simulator
/// (docs/SIM.md) the fabric bumps the aggregate counters from several host
/// threads at once. Totals stay exact (each add lands once); only the
/// momentary interleaving is unordered, which no reader depends on.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-boundary histogram for latency/size distributions.
class Histogram {
 public:
  /// Buckets: (-inf, bounds[0]], (bounds[0], bounds[1]], ..., (last, +inf)
  explicit Histogram(std::vector<double> bounds);

  void add(double x);
  uint64_t bucket_count(size_t i) const { return counts_.at(i); }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }

  /// Approximate quantile via linear interpolation across buckets.
  double quantile(double q) const;

  std::string to_string() const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace ppm
