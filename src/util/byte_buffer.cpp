#include "util/byte_buffer.hpp"

// Header-only in practice; this TU pins the vtable-less templates into the
// library and keeps a place for future non-template helpers.
namespace ppm {}  // namespace ppm
