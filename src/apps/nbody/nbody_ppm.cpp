#include "apps/nbody/nbody_ppm.hpp"

#include <numeric>

#include "util/error.hpp"

namespace ppm::apps::nbody {

namespace {
/// Upper bound on octree nodes for k particles with kLeafCap-sized leaves:
/// every split adds at most 8 nodes and there are at most k splits on the
/// way down; a generous linear bound with headroom is cheap and safe.
uint64_t pool_capacity(uint64_t local_particles) {
  return 8 * local_particles + 64;
}
}  // namespace

PpmNbodyState setup_nbody_ppm(Env& env, const BodySet& init) {
  const uint64_t n = init.size();
  PpmNbodyState st;
  st.n = n;
  st.px = env.global_array<double>(n);
  st.py = env.global_array<double>(n);
  st.pz = env.global_array<double>(n);
  st.vx = env.global_array<double>(n);
  st.vy = env.global_array<double>(n);
  st.vz = env.global_array<double>(n);
  st.mass = env.global_array<double>(n);
  const uint64_t chunk =
      (n + static_cast<uint64_t>(env.node_count()) - 1) /
      static_cast<uint64_t>(env.node_count());
  st.pool_stride = pool_capacity(chunk);
  st.tree_pool = env.global_array<TreeNode>(
      st.pool_stride * static_cast<uint64_t>(env.node_count()));
  st.tree_counts = env.global_array<int64_t>(
      static_cast<uint64_t>(env.node_count()));

  // Load initial conditions: immediate local writes outside phases.
  for (uint64_t i = st.px.local_begin(); i < st.px.local_end(); ++i) {
    st.px.set(i, init.px[i]);
    st.py.set(i, init.py[i]);
    st.pz.set(i, init.pz[i]);
    st.vx.set(i, init.vx[i]);
    st.vy.set(i, init.vy[i]);
    st.vz.set(i, init.vz[i]);
    st.mass.set(i, init.mass[i]);
  }
  env.barrier();
  return st;
}

namespace {

/// Build this node's octree from its committed particle chunk and publish
/// it into the shared pool (one global phase).
void publish_trees(Env& env, PpmNbodyState& st) {
  const uint64_t begin = st.px.local_begin();
  const uint64_t count = st.px.local_end() - begin;
  std::vector<int64_t> ids(count);
  std::iota(ids.begin(), ids.end(), static_cast<int64_t>(begin));
  Octree tree;
  tree.build(st.px.local_span(), st.py.local_span(), st.pz.local_span(),
             st.mass.local_span(), ids);
  const auto base = static_cast<int32_t>(
      st.pool_stride * static_cast<uint64_t>(env.node_id()));
  tree.offset_children(base);
  PPM_CHECK(tree.nodes().size() <= st.pool_stride,
            "tree pool overflow: %zu nodes > stride %llu",
            tree.nodes().size(),
            static_cast<unsigned long long>(st.pool_stride));

  // Empty chunks participate with k = 0; their count stays 0 from array
  // initialization (ownership is static, so it can never go stale).
  auto vps = env.ppm_do(tree.nodes().size());
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = vp.node_rank();
    st.tree_pool.set(static_cast<uint64_t>(base) + i, tree.nodes()[i]);
    if (i == 0) {
      st.tree_counts.set(static_cast<uint64_t>(env.node_id()),
                         static_cast<int64_t>(tree.nodes().size()));
    }
  });
}

}  // namespace

std::vector<Vec3> accelerations_ppm(Env& env, PpmNbodyState& st,
                                    const NbodyOptions& options) {
  publish_trees(env, st);
  const uint64_t begin = st.px.local_begin();
  const uint64_t count = st.px.local_end() - begin;
  std::vector<Vec3> acc(count);
  // Zero-copy reads: local pool slots resolve into committed storage,
  // remote ones into the runtime's block cache (bundled fetches).
  auto fetch = [&](int32_t idx) -> const TreeNode& {
    return st.tree_pool.view(static_cast<uint64_t>(idx));
  };
  auto vps = env.ppm_do(count);
  vps.global_phase([&](Vp& vp) {
    const uint64_t li = vp.node_rank();
    const uint64_t gi = begin + li;
    const double x = st.px.get(gi);
    const double y = st.py.get(gi);
    const double z = st.pz.get(gi);
    Vec3 a;
    for (int owner = 0; owner < env.node_count(); ++owner) {
      if (st.tree_counts.get(static_cast<uint64_t>(owner)) == 0) continue;
      const auto root = static_cast<int32_t>(
          st.pool_stride * static_cast<uint64_t>(owner));
      a += bh_accel(fetch, root, static_cast<int64_t>(gi), x, y, z,
                    options.theta, options.eps);
    }
    acc[li] = a;  // node-local scratch, disjoint per VP
  });
  return acc;
}

void simulate_ppm(Env& env, PpmNbodyState& st, const NbodyOptions& options) {
  const uint64_t begin = st.px.local_begin();
  const uint64_t count = st.px.local_end() - begin;
  for (int s = 0; s < options.steps; ++s) {
    const auto acc = accelerations_ppm(env, st, options);
    auto vps = env.ppm_do(count);
    vps.global_phase([&](Vp& vp) {
      const uint64_t li = vp.node_rank();
      const uint64_t gi = begin + li;
      const double nvx = st.vx.get(gi) + acc[li].x * options.dt;
      const double nvy = st.vy.get(gi) + acc[li].y * options.dt;
      const double nvz = st.vz.get(gi) + acc[li].z * options.dt;
      st.vx.set(gi, nvx);
      st.vy.set(gi, nvy);
      st.vz.set(gi, nvz);
      st.px.set(gi, st.px.get(gi) + nvx * options.dt);
      st.py.set(gi, st.py.get(gi) + nvy * options.dt);
      st.pz.set(gi, st.pz.get(gi) + nvz * options.dt);
    });
  }
}

BodySet snapshot_ppm(Env& env, PpmNbodyState& st) {
  BodySet out;
  out.resize(st.n);
  std::vector<uint64_t> idx(st.n);
  std::iota(idx.begin(), idx.end(), 0);
  auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
  std::vector<double>* fields[7] = {&out.px, &out.py, &out.pz, &out.vx,
                                    &out.vy, &out.vz, &out.mass};
  GlobalShared<double>* arrays[7] = {&st.px, &st.py, &st.pz, &st.vx,
                                     &st.vy, &st.vz, &st.mass};
  vps.global_phase([&](Vp& vp) {
    (void)vp;
    for (int f = 0; f < 7; ++f) {
      *fields[f] = arrays[f]->gather(idx);
    }
  });
  // Ship to the other nodes so every caller returns the same snapshot.
  env.broadcast(out.px, 0);
  env.broadcast(out.py, 0);
  env.broadcast(out.pz, 0);
  env.broadcast(out.vx, 0);
  env.broadcast(out.vy, 0);
  env.broadcast(out.vz, 0);
  env.broadcast(out.mass, 0);
  return out;
}

}  // namespace ppm::apps::nbody
