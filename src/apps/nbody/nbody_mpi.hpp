// Barnes–Hut in message-passing style, following the method the paper
// cites as the MPI comparator (Garmire & Ong): every rank builds a tree
// over its own particles, then "in every round of computation, each node
// needs to receive copies of the trees from all other nodes" — an
// allgather of the serialized trees whose volume dominates at scale. That
// extremely high data-exchange volume is precisely the behaviour the
// paper's Figure 3 discussion attributes to the MPI version.
#pragma once

#include "apps/nbody/body.hpp"
#include "apps/nbody/nbody_serial.hpp"
#include "apps/nbody/octree.hpp"
#include "mp/comm.hpp"

namespace ppm::apps::nbody {

struct MpiNbodyState {
  uint64_t n = 0;
  uint64_t begin = 0;  // first global particle id owned by this rank
  BodySet local;       // this rank's particles
};

/// Slice the initial conditions onto this rank. Collective.
MpiNbodyState setup_nbody_mpi(mp::Comm& comm, const BodySet& init);

/// Accelerations of this rank's particles: local tree build, allgather of
/// all trees, local walks. Collective.
std::vector<Vec3> accelerations_mpi(mp::Comm& comm, MpiNbodyState& state,
                                    const NbodyOptions& options);

/// Advance options.steps steps. Collective.
void simulate_mpi(mp::Comm& comm, MpiNbodyState& state,
                  const NbodyOptions& options);

/// Assemble the full particle set on every rank. Collective.
BodySet snapshot_mpi(mp::Comm& comm, const MpiNbodyState& state);

}  // namespace ppm::apps::nbody
