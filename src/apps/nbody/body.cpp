#include "apps/nbody/body.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace ppm::apps::nbody {

void BodySet::resize(uint64_t n) {
  px.resize(n);
  py.resize(n);
  pz.resize(n);
  vx.resize(n);
  vy.resize(n);
  vz.resize(n);
  mass.resize(n);
}

namespace {
void fill_cluster(BodySet& bodies, uint64_t begin, uint64_t end, Vec3 center,
                  double radius, Rng& rng) {
  for (uint64_t i = begin; i < end; ++i) {
    // Centrally concentrated radial profile (Plummer-flavored, truncated).
    const double u = rng.next_double();
    const double r = radius * u / std::sqrt(1.0 + u * u);
    const double costh = rng.next_double_in(-1.0, 1.0);
    const double sinth = std::sqrt(1.0 - costh * costh);
    const double phi = rng.next_double_in(0.0, 2.0 * M_PI);
    bodies.px[i] = center.x + r * sinth * std::cos(phi);
    bodies.py[i] = center.y + r * sinth * std::sin(phi);
    bodies.pz[i] = center.z + r * costh;
    bodies.vx[i] = 0.01 * rng.next_normal();
    bodies.vy[i] = 0.01 * rng.next_normal();
    bodies.vz[i] = 0.01 * rng.next_normal();
    bodies.mass[i] = 1.0 / static_cast<double>(bodies.size());
  }
}
}  // namespace

BodySet make_plummer(uint64_t n, uint64_t seed) {
  BodySet bodies;
  bodies.resize(n);
  Rng rng(seed);
  fill_cluster(bodies, 0, n, {0, 0, 0}, 1.0, rng);
  return bodies;
}

BodySet make_two_clusters(uint64_t n, uint64_t seed) {
  BodySet bodies;
  bodies.resize(n);
  Rng rng(seed);
  fill_cluster(bodies, 0, n / 2, {-0.8, 0, 0}, 0.4, rng);
  fill_cluster(bodies, n / 2, n, {0.8, 0.2, 0}, 0.4, rng);
  return bodies;
}

}  // namespace ppm::apps::nbody
