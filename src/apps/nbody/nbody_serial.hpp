// Serial Barnes–Hut simulation (and its direct-sum validation helpers).
#pragma once

#include "apps/nbody/body.hpp"
#include "apps/nbody/octree.hpp"

namespace ppm::apps::nbody {

struct NbodyOptions {
  double theta = 0.5;
  double eps = 0.01;   // gravitational softening
  double dt = 0.005;
  int steps = 4;
};

/// Advance the whole set `steps` leapfrog-ish steps (kick-drift with
/// per-step force evaluation), one global octree per step.
void simulate_serial_bh(BodySet& bodies, const NbodyOptions& options);

/// Accelerations of every particle via one global octree (no integration).
std::vector<Vec3> accelerations_serial_bh(const BodySet& bodies,
                                          const NbodyOptions& options);

/// Accelerations via O(n^2) direct sum (ground truth).
std::vector<Vec3> accelerations_direct(const BodySet& bodies, double eps);

/// Total energy (kinetic + softened potential) — conservation diagnostics.
double total_energy(const BodySet& bodies, double eps);

}  // namespace ppm::apps::nbody
