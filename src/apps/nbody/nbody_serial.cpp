#include "apps/nbody/nbody_serial.hpp"

#include <cmath>
#include <numeric>

namespace ppm::apps::nbody {

namespace {
Octree build_full_tree(const BodySet& bodies) {
  std::vector<int64_t> ids(bodies.size());
  std::iota(ids.begin(), ids.end(), 0);
  Octree tree;
  tree.build(bodies.px, bodies.py, bodies.pz, bodies.mass, ids);
  return tree;
}
}  // namespace

std::vector<Vec3> accelerations_serial_bh(const BodySet& bodies,
                                          const NbodyOptions& options) {
  const Octree tree = build_full_tree(bodies);
  auto fetch = [&](int32_t idx) -> const TreeNode& {
    return tree.nodes()[static_cast<size_t>(idx)];
  };
  std::vector<Vec3> acc(bodies.size());
  for (uint64_t i = 0; i < bodies.size(); ++i) {
    acc[i] = bh_accel(fetch, 0, static_cast<int64_t>(i), bodies.px[i],
                      bodies.py[i], bodies.pz[i], options.theta, options.eps);
  }
  return acc;
}

std::vector<Vec3> accelerations_direct(const BodySet& bodies, double eps) {
  std::vector<Vec3> acc(bodies.size());
  for (uint64_t i = 0; i < bodies.size(); ++i) {
    acc[i] = direct_accel(bodies, i, eps);
  }
  return acc;
}

void simulate_serial_bh(BodySet& bodies, const NbodyOptions& options) {
  for (int s = 0; s < options.steps; ++s) {
    const auto acc = accelerations_serial_bh(bodies, options);
    for (uint64_t i = 0; i < bodies.size(); ++i) {
      bodies.vx[i] += acc[i].x * options.dt;
      bodies.vy[i] += acc[i].y * options.dt;
      bodies.vz[i] += acc[i].z * options.dt;
      bodies.px[i] += bodies.vx[i] * options.dt;
      bodies.py[i] += bodies.vy[i] * options.dt;
      bodies.pz[i] += bodies.vz[i] * options.dt;
    }
  }
}

double total_energy(const BodySet& bodies, double eps) {
  double kinetic = 0, potential = 0;
  const double eps2 = eps * eps;
  for (uint64_t i = 0; i < bodies.size(); ++i) {
    kinetic += 0.5 * bodies.mass[i] * bodies.velocity(i).norm2();
    for (uint64_t j = i + 1; j < bodies.size(); ++j) {
      const double rx = bodies.px[j] - bodies.px[i];
      const double ry = bodies.py[j] - bodies.py[i];
      const double rz = bodies.pz[j] - bodies.pz[i];
      potential -= bodies.mass[i] * bodies.mass[j] /
                   std::sqrt(rx * rx + ry * ry + rz * rz + eps2);
    }
  }
  return kinetic + potential;
}

}  // namespace ppm::apps::nbody
