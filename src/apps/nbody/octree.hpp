// Octree construction and the Barnes–Hut force walk.
//
// TreeNode is a fixed-size POD so a whole tree (or forest) can live in a
// GlobalShared<TreeNode> array and be walked remotely through plain shared
// reads. Leaves inline their particles' ids, positions and masses: one
// remote node fetch delivers everything needed for the near-field sum.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/nbody/body.hpp"

namespace ppm::apps::nbody {

inline constexpr int kLeafCap = 4;

struct LeafParticle {
  int64_t id = -1;  // global particle id (for self-exclusion)
  double x = 0, y = 0, z = 0;
  double m = 0;
};

struct TreeNode {
  double cx = 0, cy = 0, cz = 0;  // center of mass
  double mass = 0;
  double half = 0;                // half-width of the cell
  int32_t child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  int32_t leaf_count = -1;        // >= 0: leaf with that many particles
  LeafParticle leaf[kLeafCap]{};

  bool is_leaf() const { return leaf_count >= 0; }
};

/// Builds an octree over a particle subset. Node 0 is the root. Child
/// indices are pool-local; offset_children() rebases them for publication
/// into a shared pool.
class Octree {
 public:
  /// ids[i] is the global id of the particle at (x[i], y[i], z[i]).
  void build(std::span<const double> x, std::span<const double> y,
             std::span<const double> z, std::span<const double> m,
             std::span<const int64_t> ids);

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  /// Rebase all child links by `offset` (for insertion into a shared pool).
  void offset_children(int32_t offset);

 private:
  int32_t insert(int32_t node, int64_t id, double x, double y, double z,
                 double m);
  void split(int32_t node);
  int octant_of(const TreeNode& node, double x, double y, double z) const;
  void finalize_mass(int32_t node);

  std::vector<TreeNode> nodes_;
};

/// Barnes–Hut acceleration on (px, py, pz) from the tree rooted at `root`,
/// excluding the particle with global id `self_id`. `fetch(idx)` resolves a
/// node index to a `const TreeNode&` — local array access, shared-array
/// view, or a copy received over the network, depending on the caller.
/// Templated so the per-node fetch inlines: the walk touches hundreds of
/// nodes per particle.
///
/// Softened gravity: a = sum G * m_j * r / (|r|^2 + eps^2)^(3/2), G = 1.
template <typename Fetch>
Vec3 bh_accel(Fetch&& fetch, int32_t root, int64_t self_id, double px,
              double py, double pz, double theta, double eps) {
  Vec3 acc;
  // Small inline stack: tree depth is O(log n) but siblings pile up.
  std::vector<int32_t> stack;
  stack.reserve(128);
  stack.push_back(root);
  const double eps2 = eps * eps;
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const TreeNode& node = fetch(idx);
    if (node.mass <= 0) continue;
    const double dx = node.cx - px;
    const double dy = node.cy - py;
    const double dz = node.cz - pz;
    const double d2 = dx * dx + dy * dy + dz * dz;
    if (node.is_leaf()) {
      for (int i = 0; i < node.leaf_count; ++i) {
        const LeafParticle& lp = node.leaf[i];
        if (lp.id == self_id) continue;
        const double rx = lp.x - px, ry = lp.y - py, rz = lp.z - pz;
        const double r2 = rx * rx + ry * ry + rz * rz + eps2;
        const double inv = lp.m / (r2 * std::sqrt(r2));
        acc += Vec3{rx, ry, rz} * inv;
      }
      continue;
    }
    const double width = 2.0 * node.half;
    if (width * width < theta * theta * d2) {
      // Far enough: monopole approximation with the center of mass.
      const double r2 = d2 + eps2;
      const double inv = node.mass / (r2 * std::sqrt(r2));
      acc += Vec3{dx, dy, dz} * inv;
      continue;
    }
    for (int32_t c : node.child) {
      if (c >= 0) stack.push_back(c);
    }
  }
  return acc;
}

/// Reference O(n^2) direct sum over an explicit particle set.
Vec3 direct_accel(const BodySet& bodies, uint64_t self, double eps);

}  // namespace ppm::apps::nbody
