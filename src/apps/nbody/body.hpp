// Particle sets and initial conditions for the Barnes–Hut application.
#pragma once

#include <cstdint>
#include <vector>

namespace ppm::apps::nbody {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  double norm2() const { return x * x + y * y + z * z; }
};

/// Structure-of-arrays particle container.
struct BodySet {
  std::vector<double> px, py, pz;
  std::vector<double> vx, vy, vz;
  std::vector<double> mass;

  uint64_t size() const { return px.size(); }
  void resize(uint64_t n);
  Vec3 position(uint64_t i) const { return {px[i], py[i], pz[i]}; }
  Vec3 velocity(uint64_t i) const { return {vx[i], vy[i], vz[i]}; }
};

/// Plummer-like spherical cluster (bounded radius, centrally concentrated),
/// deterministic in the seed. Velocities start as small random jitter.
BodySet make_plummer(uint64_t n, uint64_t seed);

/// Two off-center clusters — exercises deep, uneven trees.
BodySet make_two_clusters(uint64_t n, uint64_t seed);

}  // namespace ppm::apps::nbody
