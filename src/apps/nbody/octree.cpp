#include "apps/nbody/octree.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ppm::apps::nbody {

void Octree::build(std::span<const double> x, std::span<const double> y,
                   std::span<const double> z, std::span<const double> m,
                   std::span<const int64_t> ids) {
  nodes_.clear();
  if (x.empty()) return;
  // Bounding cube of the subset.
  double lo = x[0], hi = x[0];
  for (size_t i = 0; i < x.size(); ++i) {
    lo = std::min({lo, x[i], y[i], z[i]});
    hi = std::max({hi, x[i], y[i], z[i]});
  }
  TreeNode root;
  root.cx = 0.5 * (lo + hi);  // cell center until mass finalization
  root.cy = root.cx;
  root.cz = root.cx;
  root.half = 0.5 * (hi - lo) + 1e-12;
  root.leaf_count = 0;
  nodes_.push_back(root);
  for (size_t i = 0; i < x.size(); ++i) {
    insert(0, ids[i], x[i], y[i], z[i], m[i]);
  }
  finalize_mass(0);
}

int Octree::octant_of(const TreeNode& node, double x, double y, double z)
    const {
  return (x >= node.cx ? 1 : 0) | (y >= node.cy ? 2 : 0) |
         (z >= node.cz ? 4 : 0);
}

void Octree::split(int32_t node) {
  // Move the node's inline particles into children; the node becomes
  // internal. Geometry (cx, cy, cz, half) still holds the cell center here
  // — centers of mass replace the geometry only in finalize_mass().
  LeafParticle staged[kLeafCap];
  const int count = nodes_[static_cast<size_t>(node)].leaf_count;
  std::copy_n(nodes_[static_cast<size_t>(node)].leaf, count, staged);
  nodes_[static_cast<size_t>(node)].leaf_count = -1;
  for (int i = 0; i < count; ++i) {
    insert(node, staged[i].id, staged[i].x, staged[i].y, staged[i].z,
           staged[i].m);
  }
}

int32_t Octree::insert(int32_t node, int64_t id, double x, double y,
                       double z, double m) {
  TreeNode& n = nodes_[static_cast<size_t>(node)];
  if (n.is_leaf()) {
    if (n.leaf_count < kLeafCap) {
      n.leaf[n.leaf_count++] = LeafParticle{id, x, y, z, m};
      return node;
    }
    // Guard against pathological coincident points: if the cell is already
    // tiny, keep overflowing particles in an (over-full) chain by merging
    // masses into the last slot rather than splitting forever.
    if (n.half < 1e-9) {
      LeafParticle& last = n.leaf[kLeafCap - 1];
      last.m += m;
      return node;
    }
    split(node);
    // `n` may dangle after split (vector growth) — re-enter.
    return insert(node, id, x, y, z, m);
  }
  const int oct = octant_of(n, x, y, z);
  int32_t child = n.child[oct];
  if (child < 0) {
    TreeNode c;
    const double h = n.half * 0.5;
    c.cx = n.cx + ((oct & 1) ? h : -h);
    c.cy = n.cy + ((oct & 2) ? h : -h);
    c.cz = n.cz + ((oct & 4) ? h : -h);
    c.half = h;
    c.leaf_count = 0;
    child = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(c);
    nodes_[static_cast<size_t>(node)].child[oct] = child;
  }
  return insert(child, id, x, y, z, m);
}

void Octree::finalize_mass(int32_t node) {
  TreeNode& n = nodes_[static_cast<size_t>(node)];
  if (n.is_leaf()) {
    double mx = 0, my = 0, mz = 0, mass = 0;
    for (int i = 0; i < n.leaf_count; ++i) {
      mx += n.leaf[i].m * n.leaf[i].x;
      my += n.leaf[i].m * n.leaf[i].y;
      mz += n.leaf[i].m * n.leaf[i].z;
      mass += n.leaf[i].m;
    }
    if (mass > 0) {
      n.cx = mx / mass;
      n.cy = my / mass;
      n.cz = mz / mass;
    }
    n.mass = mass;
    return;
  }
  double mx = 0, my = 0, mz = 0, mass = 0;
  for (int32_t c : n.child) {
    if (c < 0) continue;
    finalize_mass(c);
    const TreeNode& cn = nodes_[static_cast<size_t>(c)];
    mx += cn.mass * cn.cx;
    my += cn.mass * cn.cy;
    mz += cn.mass * cn.cz;
    mass += cn.mass;
  }
  TreeNode& n2 = nodes_[static_cast<size_t>(node)];  // reload (no growth now)
  if (mass > 0) {
    n2.cx = mx / mass;
    n2.cy = my / mass;
    n2.cz = mz / mass;
  }
  n2.mass = mass;
}

void Octree::offset_children(int32_t offset) {
  for (TreeNode& n : nodes_) {
    for (int32_t& c : n.child) {
      if (c >= 0) c += offset;
    }
  }
}

Vec3 direct_accel(const BodySet& bodies, uint64_t self, double eps) {
  Vec3 acc;
  const double eps2 = eps * eps;
  const Vec3 p = bodies.position(self);
  for (uint64_t j = 0; j < bodies.size(); ++j) {
    if (j == self) continue;
    const double rx = bodies.px[j] - p.x;
    const double ry = bodies.py[j] - p.y;
    const double rz = bodies.pz[j] - p.z;
    const double r2 = rx * rx + ry * ry + rz * rz + eps2;
    const double inv = bodies.mass[j] / (r2 * std::sqrt(r2));
    acc += Vec3{rx, ry, rz} * inv;
  }
  return acc;
}

}  // namespace ppm::apps::nbody
