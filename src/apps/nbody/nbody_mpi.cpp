#include "apps/nbody/nbody_mpi.hpp"

#include <numeric>

#include "util/error.hpp"

namespace ppm::apps::nbody {

MpiNbodyState setup_nbody_mpi(mp::Comm& comm, const BodySet& init) {
  const uint64_t n = init.size();
  const auto ranks = static_cast<uint64_t>(comm.size());
  const uint64_t chunk = (n + ranks - 1) / ranks;
  const uint64_t b = std::min(n, chunk * static_cast<uint64_t>(comm.rank()));
  const uint64_t e = std::min(n, b + chunk);
  MpiNbodyState st;
  st.n = n;
  st.begin = b;
  st.local.resize(e - b);
  for (uint64_t i = b; i < e; ++i) {
    const uint64_t l = i - b;
    st.local.px[l] = init.px[i];
    st.local.py[l] = init.py[i];
    st.local.pz[l] = init.pz[i];
    st.local.vx[l] = init.vx[i];
    st.local.vy[l] = init.vy[i];
    st.local.vz[l] = init.vz[i];
    st.local.mass[l] = init.mass[i];
  }
  return st;
}

std::vector<Vec3> accelerations_mpi(mp::Comm& comm, MpiNbodyState& st,
                                    const NbodyOptions& options) {
  // Local tree over this rank's particles.
  std::vector<int64_t> ids(st.local.size());
  std::iota(ids.begin(), ids.end(), static_cast<int64_t>(st.begin));
  Octree tree;
  tree.build(st.local.px, st.local.py, st.local.pz, st.local.mass, ids);

  // The comparator method's core cost: every rank receives a full copy of
  // every other rank's tree, every step.
  const auto forests =
      comm.allgatherv(std::span<const TreeNode>(tree.nodes()));

  std::vector<Vec3> acc(st.local.size());
  for (uint64_t i = 0; i < st.local.size(); ++i) {
    Vec3 a;
    for (const auto& forest : forests) {
      if (forest.empty()) continue;
      auto fetch = [&](int32_t idx) -> const TreeNode& {
        return forest[static_cast<size_t>(idx)];
      };
      a += bh_accel(fetch, 0, static_cast<int64_t>(st.begin + i),
                    st.local.px[i], st.local.py[i], st.local.pz[i],
                    options.theta, options.eps);
    }
    acc[i] = a;
  }
  return acc;
}

void simulate_mpi(mp::Comm& comm, MpiNbodyState& st,
                  const NbodyOptions& options) {
  for (int s = 0; s < options.steps; ++s) {
    const auto acc = accelerations_mpi(comm, st, options);
    for (uint64_t i = 0; i < st.local.size(); ++i) {
      st.local.vx[i] += acc[i].x * options.dt;
      st.local.vy[i] += acc[i].y * options.dt;
      st.local.vz[i] += acc[i].z * options.dt;
      st.local.px[i] += st.local.vx[i] * options.dt;
      st.local.py[i] += st.local.vy[i] * options.dt;
      st.local.pz[i] += st.local.vz[i] * options.dt;
    }
  }
}

BodySet snapshot_mpi(mp::Comm& comm, const MpiNbodyState& st) {
  BodySet out;
  out.resize(st.n);
  auto gather_field = [&](const std::vector<double>& local,
                          std::vector<double>& full) {
    const auto blocks = comm.allgatherv(std::span<const double>(local));
    uint64_t at = 0;
    for (const auto& b : blocks) {
      for (double v : b) full[at++] = v;
    }
    PPM_CHECK(at == st.n, "snapshot assembled %llu of %llu particles",
              static_cast<unsigned long long>(at),
              static_cast<unsigned long long>(st.n));
  };
  gather_field(st.local.px, out.px);
  gather_field(st.local.py, out.py);
  gather_field(st.local.pz, out.pz);
  gather_field(st.local.vx, out.vx);
  gather_field(st.local.vy, out.vy);
  gather_field(st.local.vz, out.vz);
  gather_field(st.local.mass, out.mass);
  return out;
}

}  // namespace ppm::apps::nbody
