// Barnes–Hut in PPM (the paper's Application 3).
//
// Particles live in global shared arrays. Each step, every node builds an
// octree over its own particles in local memory and publishes it into a
// global shared node pool with one phase; the force phase then walks *all*
// nodes' trees through plain shared reads. The data-driven random accesses
// to remote tree nodes are exactly the traffic the paper says is
// "virtually impossible to prepare and bundle in advance" by hand — here
// the runtime's block cache bundles them transparently, avoiding the full
// tree copies of the MPI method.
#pragma once

#include "apps/nbody/body.hpp"
#include "apps/nbody/nbody_serial.hpp"
#include "apps/nbody/octree.hpp"
#include "core/ppm.hpp"

namespace ppm::apps::nbody {

struct PpmNbodyState {
  uint64_t n = 0;
  GlobalShared<double> px, py, pz, vx, vy, vz, mass;
  GlobalShared<TreeNode> tree_pool;   // nodes * pool_stride slots
  GlobalShared<int64_t> tree_counts;  // per node: published tree size
  uint64_t pool_stride = 0;
};

/// Allocate the shared state and load the initial conditions (every node
/// passes the same BodySet and writes its own chunk). Collective.
PpmNbodyState setup_nbody_ppm(Env& env, const BodySet& init);

/// This node's accelerations (index i = global particle local_begin + i),
/// one tree publication + force phase. Collective.
std::vector<Vec3> accelerations_ppm(Env& env, PpmNbodyState& state,
                                    const NbodyOptions& options);

/// Advance `options.steps` steps. Collective.
void simulate_ppm(Env& env, PpmNbodyState& state,
                  const NbodyOptions& options);

/// Copy the full particle set out of the shared arrays (any node).
BodySet snapshot_ppm(Env& env, PpmNbodyState& state);

}  // namespace ppm::apps::nbody
