// Dense matrix multiplication — the *structured* counterpoint to the
// paper's unstructured applications. The paper notes that for regular
// workloads "domain decomposition methods can be applied and the low-level
// programming tasks generally do not pose a real problem" for MPI; this
// module lets the repository demonstrate both sides: a straightforward
// PPM row-block version, and a classic SUMMA implementation on a 2D rank
// grid built with communicator splitting.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ppm.hpp"
#include "mp/comm.hpp"

namespace ppm::apps::dense {

/// Row-major square matrix.
struct Matrix {
  uint64_t n = 0;
  std::vector<double> data;  // n * n

  double& at(uint64_t r, uint64_t c) { return data[r * n + c]; }
  double at(uint64_t r, uint64_t c) const { return data[r * n + c]; }
};

/// Deterministic test matrix: smooth entries, no blow-up under products.
Matrix make_matrix(uint64_t n, uint64_t seed);

/// Serial reference: C = A * B.
Matrix matmul_serial(const Matrix& a, const Matrix& b);

/// PPM row-block product: A, B and C live in global shared arrays
/// distributed by rows; each node's VPs compute its row chunk of C,
/// reading the remote rows of B through plain shared accesses (bundled by
/// the runtime). Collective; returns the full C on every node.
Matrix matmul_ppm(Env& env, const Matrix& a, const Matrix& b);

/// SUMMA on a q x q rank grid (comm.size() must be a perfect square and
/// divide n in both dimensions). Row/column communicators come from
/// comm.split(). Collective; returns the full C on every rank.
Matrix matmul_mpi_summa(mp::Comm& comm, const Matrix& a, const Matrix& b);

}  // namespace ppm::apps::dense
