#include "apps/dense/dense.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::apps::dense {

Matrix make_matrix(uint64_t n, uint64_t seed) {
  Matrix m;
  m.n = n;
  m.data.resize(n * n);
  Rng rng(seed);
  for (double& v : m.data) v = rng.next_double_in(-1.0, 1.0) / std::sqrt(n);
  return m;
}

Matrix matmul_serial(const Matrix& a, const Matrix& b) {
  PPM_CHECK(a.n == b.n, "dimension mismatch");
  const uint64_t n = a.n;
  Matrix c;
  c.n = n;
  c.data.assign(n * n, 0.0);
  // i-k-j loop order: streams B rows, decent cache behavior.
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t k = 0; k < n; ++k) {
      const double aik = a.at(i, k);
      for (uint64_t j = 0; j < n; ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_ppm(Env& env, const Matrix& a, const Matrix& b) {
  PPM_CHECK(a.n == b.n, "dimension mismatch");
  const uint64_t n = a.n;
  auto gb = env.global_array<double>(n * n);  // B, row-distributed
  auto gc = env.global_array<double>(n * n);  // C, row-distributed

  // Load the owned rows of B (immediate local writes), A rows stay in the
  // node program's own memory — only B is accessed across nodes.
  for (uint64_t e = gb.local_begin(); e < gb.local_end(); ++e) {
    gb.set(e, b.data[e]);
  }
  env.barrier();

  const uint64_t row0 = gc.local_begin() / n;
  const uint64_t row1 = (gc.local_end() + n - 1) / n;
  // Element distribution may split a row across nodes; compute whole rows
  // whose first element we own (the tail node may own a partial first
  // row handled by its predecessor).
  const uint64_t first_row = (gc.local_begin() % n == 0)
                                 ? row0
                                 : row0 + 1;
  auto vps = env.ppm_do(first_row < row1 ? row1 - first_row : 0);
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = first_row + vp.node_rank();
    std::vector<double> acc(n, 0.0);
    for (uint64_t k = 0; k < n; ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (uint64_t j = 0; j < n; ++j) {
        acc[j] += aik * gb.get(k * n + j);  // remote rows: bundled reads
      }
    }
    for (uint64_t j = 0; j < n; ++j) gc.set(i * n + j, acc[j]);
  });

  // Assemble the full product everywhere.
  Matrix c;
  c.n = n;
  auto probe = env.ppm_do(env.node_id() == 0 ? 1 : 0);
  probe.global_phase([&](Vp&) {
    std::vector<uint64_t> idx(n * n);
    for (uint64_t e = 0; e < n * n; ++e) idx[e] = e;
    c.data = gc.gather(idx);
  });
  env.broadcast(c.data, /*root=*/0);
  return c;
}

Matrix matmul_mpi_summa(mp::Comm& comm, const Matrix& a, const Matrix& b) {
  PPM_CHECK(a.n == b.n, "dimension mismatch");
  const uint64_t n = a.n;
  const int p = comm.size();
  const int q = static_cast<int>(std::lround(std::sqrt(p)));
  PPM_CHECK(q * q == p, "SUMMA needs a square rank count (%d given)", p);
  PPM_CHECK(n % static_cast<uint64_t>(q) == 0,
            "SUMMA needs q | n (n=%llu, q=%d)",
            static_cast<unsigned long long>(n), q);
  const uint64_t bs = n / static_cast<uint64_t>(q);  // block edge

  const int my_row = comm.rank() / q;
  const int my_col = comm.rank() % q;
  mp::Comm row_comm = comm.split(my_row, my_col);
  mp::Comm col_comm = comm.split(my_col, my_row);

  auto block_of = [&](const Matrix& m, int br, int bc) {
    std::vector<double> block(bs * bs);
    for (uint64_t r = 0; r < bs; ++r) {
      for (uint64_t c = 0; c < bs; ++c) {
        block[r * bs + c] = m.at(static_cast<uint64_t>(br) * bs + r,
                                 static_cast<uint64_t>(bc) * bs + c);
      }
    }
    return block;
  };

  std::vector<double> my_a = block_of(a, my_row, my_col);
  std::vector<double> my_b = block_of(b, my_row, my_col);
  std::vector<double> my_c(bs * bs, 0.0);

  // SUMMA: for every panel k, the owners broadcast their A (along the
  // row communicator) and B (along the column communicator) blocks, then
  // everyone accumulates a local GEMM.
  for (int k = 0; k < q; ++k) {
    std::vector<double> a_panel = (my_col == k) ? my_a
                                                : std::vector<double>(bs * bs);
    row_comm.bcast(a_panel, /*root=*/k);
    std::vector<double> b_panel = (my_row == k) ? my_b
                                                : std::vector<double>(bs * bs);
    col_comm.bcast(b_panel, /*root=*/k);
    for (uint64_t i = 0; i < bs; ++i) {
      for (uint64_t kk = 0; kk < bs; ++kk) {
        const double aik = a_panel[i * bs + kk];
        for (uint64_t j = 0; j < bs; ++j) {
          my_c[i * bs + j] += aik * b_panel[kk * bs + j];
        }
      }
    }
  }

  // Everyone assembles the full C from the block grid.
  const auto blocks = comm.allgatherv(std::span<const double>(my_c));
  Matrix c;
  c.n = n;
  c.data.assign(n * n, 0.0);
  for (int rank = 0; rank < p; ++rank) {
    const int br = rank / q;
    const int bc = rank % q;
    const auto& block = blocks[static_cast<size_t>(rank)];
    PPM_CHECK(block.size() == bs * bs, "SUMMA block size mismatch");
    for (uint64_t r = 0; r < bs; ++r) {
      for (uint64_t cc = 0; cc < bs; ++cc) {
        c.at(static_cast<uint64_t>(br) * bs + r,
             static_cast<uint64_t>(bc) * bs + cc) = block[r * bs + cc];
      }
    }
  }
  return c;
}

}  // namespace ppm::apps::dense
