// Sparse matrix generation for a multi-scale collocation method — the
// paper's Application 2 (after Chen/Wu/Xu, "Fast collocation methods for
// high-dimensional weakly singular integral equations").
//
// Structure of the computation (what drives the communication pattern):
//   * L levels; level l carries m_l = base * 2^l basis functions and
//     collocation points.
//   * Every basis has an "integration table" value T_l[i] obtained by a
//     genuinely expensive numerical quadrature of a weakly singular
//     kernel, PLUS (for l > 0) a linear combination of *randomly indexed*
//     table entries of coarser levels — the multi-scale refinement that
//     forces level-by-level computation with high-volume random reads of
//     global data.
//   * A matrix entry (row, col) is a linear combination of randomly
//     indexed table values from levels up to the row's level, with the
//     hierarchical nonzero pattern of the collocation discretization.
// All random choices derive from a seed via hashing, so serial, PPM and
// MPI implementations produce bit-identical matrices.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/cg/csr.hpp"

namespace ppm::apps::collocation {

using cg::CsrMatrix;

struct CollocationProblem {
  int levels = 5;
  uint64_t base = 16;      // basis count at level 0
  int refine_terms = 8;    // random coarse-table reads per table entry
  int combo_terms = 6;     // random table reads per matrix entry
  int bandwidth = 3;       // half-width of the hierarchical nonzero window
  int quadrature_points = 64;
  uint64_t seed = 0x5eed;

  uint64_t level_size(int level) const { return base << level; }
  uint64_t level_offset(int level) const {
    return base * ((uint64_t{1} << level) - 1);
  }
  uint64_t total_points() const { return level_offset(levels); }
  int level_of(uint64_t point) const;
};

/// Quadrature of the weakly singular kernel for basis (level, i): the
/// expensive "numerical integration of very high computational complexity".
double integrate_basis(const CollocationProblem& p, int level, uint64_t i);

/// The random (level, index, weight) references that refine table entry
/// (level, i) from coarser levels. Deterministic in the seed.
struct TableRef {
  int level;
  uint64_t index;
  double weight;
};
std::vector<TableRef> table_refinement_refs(const CollocationProblem& p,
                                            int level, uint64_t i);

/// The random references combined into matrix entry (row, col).
std::vector<TableRef> entry_refs(const CollocationProblem& p, uint64_t row,
                                 uint64_t col);

/// Global column indices of row `row` (hierarchical pattern, sorted).
std::vector<uint64_t> columns_of_row(const CollocationProblem& p,
                                     uint64_t row);

/// All integration tables, level by level (serial reference).
std::vector<std::vector<double>> compute_tables_serial(
    const CollocationProblem& p);

/// The full matrix (serial reference).
CsrMatrix generate_matrix_serial(const CollocationProblem& p);

/// Rows [row_begin, row_end) given completed tables — shared by all
/// implementations once the table values are available.
CsrMatrix generate_rows(
    const CollocationProblem& p, uint64_t row_begin, uint64_t row_end,
    const std::function<double(int level, uint64_t index)>& table);

}  // namespace ppm::apps::collocation
