// PPM implementation of the multi-scale collocation matrix generator.
//
// The integration tables are global shared arrays (one per level). Each
// level is one global phase: VPs compute their node's chunk, reading the
// randomly indexed coarser-table entries with plain shared reads — the
// runtime's bundling does the communication heavy lifting. Matrix rows are
// then produced in a final phase the same way.
#pragma once

#include "apps/collocation/collocation.hpp"
#include "core/ppm.hpp"

namespace ppm::apps::collocation {

struct PpmMatgenOutput {
  uint64_t row_begin = 0;
  uint64_t row_end = 0;
  CsrMatrix local_rows;
};

/// Generate the matrix on the calling Env's cluster; collective.
PpmMatgenOutput generate_matrix_ppm(Env& env, const CollocationProblem& p);

}  // namespace ppm::apps::collocation
