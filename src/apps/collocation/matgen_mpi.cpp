#include "apps/collocation/matgen_mpi.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace ppm::apps::collocation {

namespace {

/// Packed (level, index) key for remote table lookups.
struct Key {
  uint32_t level;
  uint64_t index;
};

uint64_t pack(int level, uint64_t index) {
  return (static_cast<uint64_t>(level) << 56) | index;
}
int level_of_key(uint64_t key) { return static_cast<int>(key >> 56); }
uint64_t index_of_key(uint64_t key) { return key & ((1ULL << 56) - 1); }

/// Block distribution of one level's table over ranks.
struct LevelDist {
  uint64_t chunk;
  uint64_t begin(int rank) const { return chunk * static_cast<uint64_t>(rank); }
};

}  // namespace

MpiMatgenOutput generate_matrix_mpi(mp::Comm& comm,
                                    const CollocationProblem& p) {
  const int ranks = comm.size();
  const int me = comm.rank();

  // Per-level distribution and local storage.
  std::vector<LevelDist> dist(static_cast<size_t>(p.levels));
  std::vector<std::vector<double>> local_tables(
      static_cast<size_t>(p.levels));
  for (int l = 0; l < p.levels; ++l) {
    const uint64_t m = p.level_size(l);
    dist[static_cast<size_t>(l)].chunk =
        (m + static_cast<uint64_t>(ranks) - 1) / static_cast<uint64_t>(ranks);
  }
  auto owner_of = [&](int level, uint64_t index) {
    return static_cast<int>(index / dist[static_cast<size_t>(level)].chunk);
  };
  auto local_value = [&](int level, uint64_t index) {
    const uint64_t b =
        dist[static_cast<size_t>(level)].begin(me);
    return local_tables[static_cast<size_t>(level)][index - b];
  };

  // Two-round exchange: ship deduplicated request lists to owners, answer
  // the requests addressed to us, and return a lookup for everything we
  // asked for. Must be called by all ranks together.
  auto fetch_remote = [&](const std::vector<uint64_t>& keys_needed)
      -> std::unordered_map<uint64_t, double> {
    std::vector<std::vector<uint64_t>> requests(static_cast<size_t>(ranks));
    for (uint64_t key : keys_needed) {
      requests[static_cast<size_t>(
                   owner_of(level_of_key(key), index_of_key(key)))]
          .push_back(key);
    }
    const auto incoming = comm.alltoallv(requests);
    // Serve: look up every requested value in our local chunks.
    std::vector<std::vector<double>> replies(static_cast<size_t>(ranks));
    for (int src = 0; src < ranks; ++src) {
      const auto& asks = incoming[static_cast<size_t>(src)];
      auto& rep = replies[static_cast<size_t>(src)];
      rep.reserve(asks.size());
      for (uint64_t key : asks) {
        rep.push_back(local_value(level_of_key(key), index_of_key(key)));
      }
    }
    const auto answers = comm.alltoallv(replies);
    std::unordered_map<uint64_t, double> lookup;
    for (int src = 0; src < ranks; ++src) {
      const auto& sent = requests[static_cast<size_t>(src)];
      const auto& got = answers[static_cast<size_t>(src)];
      PPM_CHECK(sent.size() == got.size(), "table reply size mismatch");
      for (size_t j = 0; j < sent.size(); ++j) lookup[sent[j]] = got[j];
    }
    return lookup;
  };

  auto dedup = [](std::vector<uint64_t> keys) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  };

  // ---- Stage 1: tables, level by level ----
  for (int l = 0; l < p.levels; ++l) {
    const uint64_t m = p.level_size(l);
    const uint64_t b = dist[static_cast<size_t>(l)].begin(me);
    const uint64_t e = std::min(m, b + dist[static_cast<size_t>(l)].chunk);
    // Which coarse entries do my refinements need?
    std::vector<uint64_t> needed;
    for (uint64_t i = b; i < e; ++i) {
      for (const TableRef& ref : table_refinement_refs(p, l, i)) {
        if (owner_of(ref.level, ref.index) != me) {
          needed.push_back(pack(ref.level, ref.index));
        }
      }
    }
    const auto lookup = fetch_remote(dedup(std::move(needed)));
    auto& t = local_tables[static_cast<size_t>(l)];
    t.resize(e > b ? e - b : 0);
    for (uint64_t i = b; i < e; ++i) {
      double v = integrate_basis(p, l, i);
      for (const TableRef& ref : table_refinement_refs(p, l, i)) {
        v += ref.weight * (owner_of(ref.level, ref.index) == me
                               ? local_value(ref.level, ref.index)
                               : lookup.at(pack(ref.level, ref.index)));
      }
      t[i - b] = v;
    }
  }

  // ---- Stage 2: matrix rows ----
  const uint64_t total = p.total_points();
  const uint64_t row_chunk =
      (total + static_cast<uint64_t>(ranks) - 1) / static_cast<uint64_t>(ranks);
  const uint64_t row0 = std::min(total, row_chunk * static_cast<uint64_t>(me));
  const uint64_t row1 = std::min(total, row0 + row_chunk);

  std::vector<uint64_t> needed;
  for (uint64_t row = row0; row < row1; ++row) {
    for (uint64_t col : columns_of_row(p, row)) {
      for (const TableRef& ref : entry_refs(p, row, col)) {
        if (owner_of(ref.level, ref.index) != me) {
          needed.push_back(pack(ref.level, ref.index));
        }
      }
    }
  }
  const auto lookup = fetch_remote(dedup(std::move(needed)));

  MpiMatgenOutput out;
  out.row_begin = row0;
  out.row_end = row1;
  out.local_rows = generate_rows(
      p, row0, row1, [&](int level, uint64_t index) {
        return owner_of(level, index) == me
                   ? local_value(level, index)
                   : lookup.at(pack(level, index));
      });
  return out;
}

}  // namespace ppm::apps::collocation
