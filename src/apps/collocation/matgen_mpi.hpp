// Message-passing implementation of the collocation matrix generator —
// the paper's MPI comparator.
//
// Tables are block-distributed over ranks. Because remote table entries
// are addressed by data-dependent random indices, every stage must be
// hand-coded as a two-round exchange: collect the (level, index) pairs
// this rank needs, deduplicate, send request lists to the owning ranks
// (alltoallv), answer incoming requests, then compute using the assembled
// lookup table. This request/reply plumbing is exactly the "bundling and
// unbundling" code the paper's Table 1 counts against MPI.
#pragma once

#include "apps/collocation/collocation.hpp"
#include "mp/comm.hpp"

namespace ppm::apps::collocation {

struct MpiMatgenOutput {
  uint64_t row_begin = 0;
  uint64_t row_end = 0;
  CsrMatrix local_rows;
};

/// Generate the matrix; collective over all ranks of comm.
MpiMatgenOutput generate_matrix_mpi(mp::Comm& comm,
                                    const CollocationProblem& p);

}  // namespace ppm::apps::collocation
