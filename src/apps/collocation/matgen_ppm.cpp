#include "apps/collocation/matgen_ppm.hpp"

namespace ppm::apps::collocation {

PpmMatgenOutput generate_matrix_ppm(Env& env, const CollocationProblem& p) {
  // One global shared table per level.
  std::vector<GlobalShared<double>> tables;
  tables.reserve(static_cast<size_t>(p.levels));
  for (int l = 0; l < p.levels; ++l) {
    tables.push_back(env.global_array<double>(p.level_size(l)));
  }

  // Level-by-level table computation. The refinement reads hit coarser
  // levels at random indices; bundling turns them into block fetches.
  for (int l = 0; l < p.levels; ++l) {
    auto& t = tables[static_cast<size_t>(l)];
    const uint64_t base = t.local_begin();
    auto vps = env.ppm_do(t.local_end() - base);
    vps.global_phase([&, l](Vp& vp) {
      const uint64_t i = base + vp.node_rank();
      double v = integrate_basis(p, l, i);
      for (const TableRef& ref : table_refinement_refs(p, l, i)) {
        v += ref.weight *
             tables[static_cast<size_t>(ref.level)].get(ref.index);
      }
      t.set(i, v);
    });
  }

  // Matrix rows: this node takes a contiguous block of the row space. The
  // sparsity structure is deterministic, so the CSR skeleton is built
  // up front and VPs fill disjoint value slots in node-local memory.
  const uint64_t total = p.total_points();
  const auto nodes = static_cast<uint64_t>(env.node_count());
  const uint64_t chunk = (total + nodes - 1) / nodes;
  const uint64_t row0 =
      std::min(total, chunk * static_cast<uint64_t>(env.node_id()));
  const uint64_t row1 = std::min(total, row0 + chunk);

  PpmMatgenOutput out;
  out.row_begin = row0;
  out.row_end = row1;
  out.local_rows.n = total;
  out.local_rows.row_ptr.push_back(0);
  for (uint64_t row = row0; row < row1; ++row) {
    const auto cols = columns_of_row(p, row);
    out.local_rows.col_idx.insert(out.local_rows.col_idx.end(), cols.begin(),
                                  cols.end());
    out.local_rows.row_ptr.push_back(out.local_rows.col_idx.size());
  }
  out.local_rows.values.assign(out.local_rows.col_idx.size(), 0.0);

  auto vps = env.ppm_do(row1 - row0);
  vps.global_phase([&](Vp& vp) {
    const uint64_t local_row = vp.node_rank();
    const uint64_t row = row0 + local_row;
    for (uint64_t k = out.local_rows.row_ptr[local_row];
         k < out.local_rows.row_ptr[local_row + 1]; ++k) {
      const uint64_t col = out.local_rows.col_idx[k];
      double v = 0.0;
      for (const TableRef& ref : entry_refs(p, row, col)) {
        v += ref.weight *
             tables[static_cast<size_t>(ref.level)].get(ref.index);
      }
      out.local_rows.values[k] = v;  // disjoint slots: safe local writes
    }
  });
  return out;
}

}  // namespace ppm::apps::collocation
