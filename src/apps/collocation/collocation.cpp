#include "apps/collocation/collocation.hpp"

#include <cmath>
#include <functional>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::apps::collocation {

namespace {

/// Centered pseudo-random weight in [-0.5, 0.5) from a hash word.
double weight_from(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;
}

}  // namespace

int CollocationProblem::level_of(uint64_t point) const {
  for (int l = 0; l < levels; ++l) {
    if (point < level_offset(l + 1)) return l;
  }
  PPM_CHECK(false, "point %llu beyond the last level",
            static_cast<unsigned long long>(point));
  return -1;
}

double integrate_basis(const CollocationProblem& p, int level, uint64_t i) {
  // Composite Simpson quadrature of a weakly singular oscillatory kernel:
  //   f(x) = sin((i+1) pi x) / sqrt(|x - c| + h)
  // with the collocation point c = (i + 1/2) / m_l and smoothing h ~ mesh
  // width. Finer levels oscillate faster — more work per point, as in the
  // real method.
  const auto m = static_cast<double>(p.level_size(level));
  const double c = (static_cast<double>(i) + 0.5) / m;
  const double h = 1.0 / m;
  const double freq = (static_cast<double>(i % 16) + 1.0) * M_PI;
  const int segments = p.quadrature_points * (level + 1);
  auto f = [&](double x) {
    return std::sin(freq * x) / std::sqrt(std::fabs(x - c) + h);
  };
  const double dx = 1.0 / segments;
  double acc = f(0.0) + f(1.0);
  for (int s = 1; s < segments; ++s) {
    acc += f(s * dx) * (s % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * dx / 3.0;
}

std::vector<TableRef> table_refinement_refs(const CollocationProblem& p,
                                            int level, uint64_t i) {
  std::vector<TableRef> refs;
  if (level == 0) return refs;
  refs.reserve(static_cast<size_t>(p.refine_terms));
  for (int t = 0; t < p.refine_terms; ++t) {
    const uint64_t h = mix64(p.seed ^ mix64(0x7ab1e << 8 | level) ^
                             mix64(i * 2654435761ULL + t));
    TableRef ref;
    ref.level = static_cast<int>(h % static_cast<uint64_t>(level));
    ref.index = mix64(h) % p.level_size(ref.level);
    ref.weight = weight_from(mix64(h ^ 0x1234));
    refs.push_back(ref);
  }
  return refs;
}

std::vector<TableRef> entry_refs(const CollocationProblem& p, uint64_t row,
                                 uint64_t col) {
  const int row_level = p.level_of(row);
  std::vector<TableRef> refs;
  refs.reserve(static_cast<size_t>(p.combo_terms));
  for (int t = 0; t < p.combo_terms; ++t) {
    const uint64_t h =
        mix64(p.seed ^ mix64(row * 0x9e3779b97f4a7c15ULL + col) ^
              static_cast<uint64_t>(t) * 0xbf58476d1ce4e5b9ULL);
    TableRef ref;
    ref.level = static_cast<int>(h % static_cast<uint64_t>(row_level + 1));
    ref.index = mix64(h ^ 0xabcd) % p.level_size(ref.level);
    ref.weight = weight_from(mix64(h ^ 0x77));
    refs.push_back(ref);
  }
  return refs;
}

std::vector<uint64_t> columns_of_row(const CollocationProblem& p,
                                     uint64_t row) {
  const int row_level = p.level_of(row);
  const uint64_t i = row - p.level_offset(row_level);
  const auto mi = static_cast<double>(p.level_size(row_level));
  std::vector<uint64_t> cols;
  // Hierarchical pattern: at every level, the bases whose support overlaps
  // this collocation point's neighbourhood.
  for (int lc = 0; lc < p.levels; ++lc) {
    const uint64_t mc = p.level_size(lc);
    const auto center = static_cast<int64_t>(
        (static_cast<double>(i) + 0.5) / mi * static_cast<double>(mc));
    for (int64_t d = -p.bandwidth; d <= p.bandwidth; ++d) {
      const int64_t j = center + d;
      if (j < 0 || j >= static_cast<int64_t>(mc)) continue;
      cols.push_back(p.level_offset(lc) + static_cast<uint64_t>(j));
    }
  }
  return cols;  // level-major, ascending within a level => globally sorted
}

std::vector<std::vector<double>> compute_tables_serial(
    const CollocationProblem& p) {
  std::vector<std::vector<double>> tables(static_cast<size_t>(p.levels));
  for (int l = 0; l < p.levels; ++l) {
    auto& t = tables[static_cast<size_t>(l)];
    t.resize(p.level_size(l));
    for (uint64_t i = 0; i < t.size(); ++i) {
      double v = integrate_basis(p, l, i);
      for (const TableRef& ref : table_refinement_refs(p, l, i)) {
        v += ref.weight * tables[static_cast<size_t>(ref.level)][ref.index];
      }
      t[i] = v;
    }
  }
  return tables;
}

CsrMatrix generate_rows(
    const CollocationProblem& p, uint64_t row_begin, uint64_t row_end,
    const std::function<double(int level, uint64_t index)>& table) {
  CsrMatrix out;
  out.n = p.total_points();
  out.row_ptr.push_back(0);
  for (uint64_t row = row_begin; row < row_end; ++row) {
    for (uint64_t col : columns_of_row(p, row)) {
      double v = 0.0;
      for (const TableRef& ref : entry_refs(p, row, col)) {
        v += ref.weight * table(ref.level, ref.index);
      }
      out.col_idx.push_back(col);
      out.values.push_back(v);
    }
    out.row_ptr.push_back(out.col_idx.size());
  }
  return out;
}

CsrMatrix generate_matrix_serial(const CollocationProblem& p) {
  const auto tables = compute_tables_serial(p);
  return generate_rows(p, 0, p.total_points(),
                       [&](int level, uint64_t index) {
                         return tables[static_cast<size_t>(level)][index];
                       });
}

}  // namespace ppm::apps::collocation
