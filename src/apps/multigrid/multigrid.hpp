// Geometric multigrid for the 2D Poisson problem — "multi-grid" is on the
// paper's list of unstructured/irregular application domains that motivate
// PPM. The method hops between grid levels; every transfer (restriction,
// prolongation) and every smoothing sweep is naturally a parallel phase,
// and the stencil reads at chunk borders are the fine-grained remote
// accesses the runtime bundles.
//
// Problem: -laplace(u) = f on the unit square, homogeneous Dirichlet
// boundary, 5-point stencil on an (N+1)x(N+1) vertex grid with N = 2^k.
// Interior unknowns are the (N-1)^2 inner vertices; arrays store the full
// vertex grid (boundary entries stay 0).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ppm.hpp"

namespace ppm::apps::multigrid {

struct MgOptions {
  int pre_smooth = 2;    // damped-Jacobi sweeps before coarsening
  int post_smooth = 2;   // sweeps after prolongation
  double omega = 0.8;    // Jacobi damping
  int coarse_size = 2;   // solve directly (by smoothing) when N <= this
  int coarse_sweeps = 40;
};

/// Dense vertex-grid field for one level: (n+1)*(n+1) doubles, row-major.
struct GridLevel {
  uint64_t n = 0;  // cells per side (vertices per side = n + 1)
  std::vector<double> values;

  uint64_t side() const { return n + 1; }
  double& at(uint64_t i, uint64_t j) { return values[i * side() + j]; }
  double at(uint64_t i, uint64_t j) const { return values[i * side() + j]; }
};

GridLevel make_level(uint64_t n);

/// Deterministic smooth right-hand side with a couple of point sources.
GridLevel make_rhs(uint64_t n);

/// residual r = f + laplace(u) (5-point, h = 1/n), interior only.
void residual_serial(const GridLevel& u, const GridLevel& f, GridLevel& r);

/// L2 norm of the interior of a grid function.
double norm_serial(const GridLevel& g);

/// One damped Jacobi sweep on the interior.
void jacobi_serial(GridLevel& u, const GridLevel& f, double omega);

/// One multigrid V-cycle (serial reference). u is updated in place.
void vcycle_serial(GridLevel& u, const GridLevel& f, const MgOptions& opts);

/// Multigrid solver in PPM: every node passes the same f; runs `cycles`
/// V-cycles and returns the residual norm after each cycle (collective;
/// identical on every node). The final solution's interior is written
/// into `u_out` on every node.
std::vector<double> solve_mg_ppm(Env& env, const GridLevel& f, int cycles,
                                 const MgOptions& opts, GridLevel* u_out);

}  // namespace ppm::apps::multigrid
