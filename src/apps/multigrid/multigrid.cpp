#include "apps/multigrid/multigrid.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ppm::apps::multigrid {

namespace {
bool is_power_of_two(uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

GridLevel make_level(uint64_t n) {
  PPM_CHECK(is_power_of_two(n) && n >= 2,
            "grid size must be a power of two >= 2 (got %llu)",
            static_cast<unsigned long long>(n));
  GridLevel g;
  g.n = n;
  g.values.assign((n + 1) * (n + 1), 0.0);
  return g;
}

GridLevel make_rhs(uint64_t n) {
  GridLevel f = make_level(n);
  const double h = 1.0 / static_cast<double>(n);
  for (uint64_t i = 1; i < n; ++i) {
    for (uint64_t j = 1; j < n; ++j) {
      const double x = static_cast<double>(i) * h;
      const double y = static_cast<double>(j) * h;
      f.at(i, j) = std::sin(M_PI * x) * std::sin(2.0 * M_PI * y) +
                   0.3 * std::exp(-40.0 * ((x - 0.3) * (x - 0.3) +
                                           (y - 0.7) * (y - 0.7)));
    }
  }
  return f;
}

void residual_serial(const GridLevel& u, const GridLevel& f, GridLevel& r) {
  PPM_CHECK(u.n == f.n && u.n == r.n, "level size mismatch");
  const uint64_t n = u.n;
  const double inv_h2 = static_cast<double>(n) * static_cast<double>(n);
  for (uint64_t i = 1; i < n; ++i) {
    for (uint64_t j = 1; j < n; ++j) {
      const double lap = (u.at(i - 1, j) + u.at(i + 1, j) + u.at(i, j - 1) +
                          u.at(i, j + 1) - 4.0 * u.at(i, j)) *
                         inv_h2;
      r.at(i, j) = f.at(i, j) + lap;
    }
  }
}

double norm_serial(const GridLevel& g) {
  double acc = 0;
  for (uint64_t i = 1; i < g.n; ++i) {
    for (uint64_t j = 1; j < g.n; ++j) {
      acc += g.at(i, j) * g.at(i, j);
    }
  }
  return std::sqrt(acc / static_cast<double>((g.n - 1) * (g.n - 1)));
}

void jacobi_serial(GridLevel& u, const GridLevel& f, double omega) {
  const uint64_t n = u.n;
  const double h2 = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  GridLevel next = u;
  for (uint64_t i = 1; i < n; ++i) {
    for (uint64_t j = 1; j < n; ++j) {
      const double gs = 0.25 * (u.at(i - 1, j) + u.at(i + 1, j) +
                                u.at(i, j - 1) + u.at(i, j + 1) +
                                h2 * f.at(i, j));
      next.at(i, j) = (1.0 - omega) * u.at(i, j) + omega * gs;
    }
  }
  u = std::move(next);
}

namespace {

/// Full-weighting restriction of the fine residual onto the coarse grid.
GridLevel restrict_serial(const GridLevel& fine) {
  GridLevel coarse = make_level(fine.n / 2);
  for (uint64_t i = 1; i < coarse.n; ++i) {
    for (uint64_t j = 1; j < coarse.n; ++j) {
      const uint64_t fi = 2 * i, fj = 2 * j;
      coarse.at(i, j) =
          0.25 * fine.at(fi, fj) +
          0.125 * (fine.at(fi - 1, fj) + fine.at(fi + 1, fj) +
                   fine.at(fi, fj - 1) + fine.at(fi, fj + 1)) +
          0.0625 * (fine.at(fi - 1, fj - 1) + fine.at(fi - 1, fj + 1) +
                    fine.at(fi + 1, fj - 1) + fine.at(fi + 1, fj + 1));
    }
  }
  return coarse;
}

/// Bilinear prolongation of the coarse correction, added into the fine u.
void prolong_add_serial(const GridLevel& coarse, GridLevel& fine) {
  const uint64_t n = fine.n;
  for (uint64_t i = 1; i < n; ++i) {
    for (uint64_t j = 1; j < n; ++j) {
      const uint64_t ci = i / 2, cj = j / 2;
      double v;
      if (i % 2 == 0 && j % 2 == 0) {
        v = coarse.at(ci, cj);
      } else if (i % 2 == 1 && j % 2 == 0) {
        v = 0.5 * (coarse.at(ci, cj) + coarse.at(ci + 1, cj));
      } else if (i % 2 == 0 && j % 2 == 1) {
        v = 0.5 * (coarse.at(ci, cj) + coarse.at(ci, cj + 1));
      } else {
        v = 0.25 * (coarse.at(ci, cj) + coarse.at(ci + 1, cj) +
                    coarse.at(ci, cj + 1) + coarse.at(ci + 1, cj + 1));
      }
      fine.at(i, j) += v;
    }
  }
}

}  // namespace

void vcycle_serial(GridLevel& u, const GridLevel& f, const MgOptions& opts) {
  if (u.n <= static_cast<uint64_t>(opts.coarse_size)) {
    for (int s = 0; s < opts.coarse_sweeps; ++s) {
      jacobi_serial(u, f, opts.omega);
    }
    return;
  }
  for (int s = 0; s < opts.pre_smooth; ++s) jacobi_serial(u, f, opts.omega);
  GridLevel r = make_level(u.n);
  residual_serial(u, f, r);
  const GridLevel coarse_f = restrict_serial(r);
  GridLevel coarse_u = make_level(u.n / 2);
  vcycle_serial(coarse_u, coarse_f, opts);
  prolong_add_serial(coarse_u, u);
  for (int s = 0; s < opts.post_smooth; ++s) jacobi_serial(u, f, opts.omega);
}

}  // namespace ppm::apps::multigrid
