// PPM implementation of the multigrid V-cycle. Each level's fields are
// global shared arrays; Jacobi sweeps, residual evaluation, restriction
// and prolongation are each a single global phase (the phase-start read
// snapshot gives Jacobi its double buffering for free, and the stencil
// reads across chunk borders ride the runtime's block cache).
#include <cmath>

#include "apps/multigrid/multigrid.hpp"
#include "core/algorithms.hpp"
#include "util/error.hpp"

namespace ppm::apps::multigrid {

namespace {

/// One level's distributed state plus its phase executor.
struct Level {
  uint64_t n = 0;
  GlobalShared<double> u, f, r;
};

struct Hierarchy {
  std::vector<Level> levels;  // [0] = finest
};

uint64_t side(uint64_t n) { return n + 1; }

Hierarchy build_hierarchy(Env& env, uint64_t n_fine, int coarse_size) {
  Hierarchy h;
  for (uint64_t n = n_fine;; n /= 2) {
    Level level;
    level.n = n;
    const uint64_t elems = side(n) * side(n);
    level.u = env.global_array<double>(elems);
    level.f = env.global_array<double>(elems);
    level.r = env.global_array<double>(elems);
    h.levels.push_back(level);
    if (n <= static_cast<uint64_t>(coarse_size)) break;
  }
  return h;
}

/// Run `body(i, j, e)` as one global phase over this node's chunk of the
/// level's element space; (i, j) are vertex coordinates of element e.
template <typename Body>
void grid_phase(Env& env, const Level& level, Body body) {
  const uint64_t base = level.u.local_begin();
  const uint64_t s = side(level.n);
  auto vps = env.ppm_do(level.u.local_end() - base);
  vps.global_phase([&](Vp& vp) {
    const uint64_t e = base + vp.node_rank();
    body(e / s, e % s, e);
  });
}

void jacobi_ppm(Env& env, Level& level, double omega) {
  const uint64_t n = level.n;
  const uint64_t s = side(n);
  const double h2 = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  grid_phase(env, level, [&](uint64_t i, uint64_t j, uint64_t e) {
    if (i == 0 || i == n || j == 0 || j == n) return;  // boundary
    const double gs =
        0.25 * (level.u.get(e - s) + level.u.get(e + s) +
                level.u.get(e - 1) + level.u.get(e + 1) +
                h2 * level.f.get(e));
    level.u.set(e, (1.0 - omega) * level.u.get(e) + omega * gs);
  });
}

void residual_ppm(Env& env, Level& level) {
  const uint64_t n = level.n;
  const uint64_t s = side(n);
  const double inv_h2 = static_cast<double>(n) * static_cast<double>(n);
  grid_phase(env, level, [&](uint64_t i, uint64_t j, uint64_t e) {
    if (i == 0 || i == n || j == 0 || j == n) {
      level.r.set(e, 0.0);
      return;
    }
    const double lap = (level.u.get(e - s) + level.u.get(e + s) +
                        level.u.get(e - 1) + level.u.get(e + 1) -
                        4.0 * level.u.get(e)) *
                       inv_h2;
    level.r.set(e, level.f.get(e) + lap);
  });
}

/// coarse.f = full-weighted restriction of fine.r; coarse.u = 0.
void restrict_ppm(Env& env, Level& fine, Level& coarse) {
  const uint64_t fs = side(fine.n);
  const uint64_t cn = coarse.n;
  grid_phase(env, coarse, [&](uint64_t i, uint64_t j, uint64_t e) {
    coarse.u.set(e, 0.0);
    if (i == 0 || i == cn || j == 0 || j == cn) {
      coarse.f.set(e, 0.0);
      return;
    }
    const uint64_t fe = (2 * i) * fs + (2 * j);
    const double v =
        0.25 * fine.r.get(fe) +
        0.125 * (fine.r.get(fe - fs) + fine.r.get(fe + fs) +
                 fine.r.get(fe - 1) + fine.r.get(fe + 1)) +
        0.0625 * (fine.r.get(fe - fs - 1) + fine.r.get(fe - fs + 1) +
                  fine.r.get(fe + fs - 1) + fine.r.get(fe + fs + 1));
    coarse.f.set(e, v);
  });
}

/// fine.u += bilinear prolongation of coarse.u.
void prolong_add_ppm(Env& env, Level& coarse, Level& fine) {
  const uint64_t fn = fine.n;
  const uint64_t cs = side(coarse.n);
  grid_phase(env, fine, [&](uint64_t i, uint64_t j, uint64_t e) {
    if (i == 0 || i == fn || j == 0 || j == fn) return;
    const uint64_t ce = (i / 2) * cs + (j / 2);
    double v;
    if (i % 2 == 0 && j % 2 == 0) {
      v = coarse.u.get(ce);
    } else if (i % 2 == 1 && j % 2 == 0) {
      v = 0.5 * (coarse.u.get(ce) + coarse.u.get(ce + cs));
    } else if (i % 2 == 0 && j % 2 == 1) {
      v = 0.5 * (coarse.u.get(ce) + coarse.u.get(ce + 1));
    } else {
      v = 0.25 * (coarse.u.get(ce) + coarse.u.get(ce + cs) +
                  coarse.u.get(ce + 1) + coarse.u.get(ce + cs + 1));
    }
    fine.u.add(e, v);
  });
}

double residual_norm_ppm(Env& env, Level& level) {
  residual_ppm(env, level);
  const double sq = dot(env, level.r, level.r);
  const auto interior = static_cast<double>((level.n - 1) * (level.n - 1));
  return std::sqrt(sq / interior);
}

void vcycle_ppm(Env& env, Hierarchy& h, size_t depth, const MgOptions& opts) {
  Level& level = h.levels[depth];
  if (depth + 1 == h.levels.size()) {
    for (int s = 0; s < opts.coarse_sweeps; ++s) {
      jacobi_ppm(env, level, opts.omega);
    }
    return;
  }
  for (int s = 0; s < opts.pre_smooth; ++s) {
    jacobi_ppm(env, level, opts.omega);
  }
  residual_ppm(env, level);
  restrict_ppm(env, level, h.levels[depth + 1]);
  vcycle_ppm(env, h, depth + 1, opts);
  prolong_add_ppm(env, h.levels[depth + 1], level);
  for (int s = 0; s < opts.post_smooth; ++s) {
    jacobi_ppm(env, level, opts.omega);
  }
}

}  // namespace

std::vector<double> solve_mg_ppm(Env& env, const GridLevel& f, int cycles,
                                 const MgOptions& opts, GridLevel* u_out) {
  PPM_CHECK(f.n >= 2, "grid too small");
  Hierarchy h = build_hierarchy(env, f.n, opts.coarse_size);

  // Load the right-hand side (immediate local writes), u starts at 0.
  Level& fine = h.levels[0];
  for (uint64_t e = fine.f.local_begin(); e < fine.f.local_end(); ++e) {
    fine.f.set(e, f.values[e]);
  }
  env.barrier();

  std::vector<double> history;
  history.reserve(static_cast<size_t>(cycles));
  for (int c = 0; c < cycles; ++c) {
    vcycle_ppm(env, h, 0, opts);
    history.push_back(residual_norm_ppm(env, fine));
  }

  if (u_out != nullptr) {
    *u_out = make_level(f.n);
    std::vector<uint64_t> idx(u_out->values.size());
    for (uint64_t e = 0; e < idx.size(); ++e) idx[e] = e;
    auto probe = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    probe.global_phase([&](Vp&) { u_out->values = fine.u.gather(idx); });
    env.broadcast(u_out->values, /*root=*/0);
  }
  return history;
}

}  // namespace ppm::apps::multigrid
