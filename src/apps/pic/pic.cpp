#include "apps/pic/pic.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::apps::pic {

using multigrid::GridLevel;
using multigrid::make_level;

void Particles::resize(uint64_t n) {
  x.resize(n);
  y.resize(n);
  vx.resize(n);
  vy.resize(n);
  charge.resize(n);
}

Particles make_two_streams(uint64_t n, uint64_t seed) {
  Particles p;
  p.resize(n);
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    const bool positive = (i % 2 == 0);
    // Two offset Gaussian clouds of opposite charge.
    const double cx = positive ? 0.35 : 0.65;
    const double cy = positive ? 0.4 : 0.6;
    p.x[i] = std::clamp(cx + 0.08 * rng.next_normal(), 0.05, 0.95);
    p.y[i] = std::clamp(cy + 0.08 * rng.next_normal(), 0.05, 0.95);
    p.vx[i] = 0.02 * rng.next_normal();
    p.vy[i] = 0.02 * rng.next_normal();
    p.charge[i] = positive ? 1.0 : -1.0;
  }
  return p;
}

namespace {

struct CellWeights {
  uint64_t i, j;       // lower-left vertex
  double w00, w10, w01, w11;
};

CellWeights weights_of(double x, double y, uint64_t n) {
  const double gx = x * static_cast<double>(n);
  const double gy = y * static_cast<double>(n);
  auto i = static_cast<uint64_t>(gx);
  auto j = static_cast<uint64_t>(gy);
  if (i >= n) i = n - 1;
  if (j >= n) j = n - 1;
  const double fx = gx - static_cast<double>(i);
  const double fy = gy - static_cast<double>(j);
  return {i, j, (1 - fx) * (1 - fy), fx * (1 - fy), (1 - fx) * fy, fx * fy};
}

/// E = -grad(phi) at (x, y), cloud-in-cell consistent with deposition.
void field_at(const GridLevel& phi, double x, double y, double* ex,
              double* ey) {
  const uint64_t n = phi.n;
  const CellWeights w = weights_of(x, y, n);
  const double h = 1.0 / static_cast<double>(n);
  const double fy = w.w01 + w.w11;  // fractional y within the cell
  const double fx = w.w10 + w.w11;
  *ex = -((1 - fy) * (phi.at(w.i + 1, w.j) - phi.at(w.i, w.j)) +
          fy * (phi.at(w.i + 1, w.j + 1) - phi.at(w.i, w.j + 1))) /
        h;
  *ey = -((1 - fx) * (phi.at(w.i, w.j + 1) - phi.at(w.i, w.j)) +
          fx * (phi.at(w.i + 1, w.j + 1) - phi.at(w.i + 1, w.j))) /
        h;
}

void push_particle(Particles& p, uint64_t k, const GridLevel& phi,
                   double dt) {
  double ex, ey;
  field_at(phi, p.x[k], p.y[k], &ex, &ey);
  p.vx[k] += p.charge[k] * ex * dt;
  p.vy[k] += p.charge[k] * ey * dt;
  p.x[k] += p.vx[k] * dt;
  p.y[k] += p.vy[k] * dt;
  // Reflect off the walls (stay strictly interior).
  constexpr double kEps = 1e-6;
  if (p.x[k] < kEps) {
    p.x[k] = 2 * kEps - p.x[k];
    p.vx[k] = -p.vx[k];
  }
  if (p.x[k] > 1 - kEps) {
    p.x[k] = 2 * (1 - kEps) - p.x[k];
    p.vx[k] = -p.vx[k];
  }
  if (p.y[k] < kEps) {
    p.y[k] = 2 * kEps - p.y[k];
    p.vy[k] = -p.vy[k];
  }
  if (p.y[k] > 1 - kEps) {
    p.y[k] = 2 * (1 - kEps) - p.y[k];
    p.vy[k] = -p.vy[k];
  }
}

}  // namespace

GridLevel deposit_serial(const Particles& particles, uint64_t grid) {
  GridLevel rho = make_level(grid);
  for (uint64_t k = 0; k < particles.size(); ++k) {
    const CellWeights w = weights_of(particles.x[k], particles.y[k], grid);
    const double q = particles.charge[k];
    rho.at(w.i, w.j) += q * w.w00;
    rho.at(w.i + 1, w.j) += q * w.w10;
    rho.at(w.i, w.j + 1) += q * w.w01;
    rho.at(w.i + 1, w.j + 1) += q * w.w11;
  }
  return rho;
}

double total_charge(const GridLevel& rho) {
  double acc = 0;
  for (double v : rho.values) acc += v;
  return acc;
}

void simulate_serial(Particles& particles, const PicOptions& options) {
  const multigrid::MgOptions mg{};
  for (int s = 0; s < options.steps; ++s) {
    const GridLevel rho = deposit_serial(particles, options.grid);
    GridLevel phi = make_level(options.grid);
    for (int c = 0; c < options.mg_cycles; ++c) {
      multigrid::vcycle_serial(phi, rho, mg);
    }
    for (uint64_t k = 0; k < particles.size(); ++k) {
      push_particle(particles, k, phi, options.dt);
    }
  }
}

void simulate_ppm(Env& env, Particles& particles,
                  const PicOptions& options) {
  const uint64_t n_particles = particles.size();
  const uint64_t grid = options.grid;
  const uint64_t vertices = (grid + 1) * (grid + 1);
  const multigrid::MgOptions mg{};

  // Block-distribute the particles: each node owns a contiguous slice.
  const auto nodes = static_cast<uint64_t>(env.node_count());
  const uint64_t chunk = (n_particles + nodes - 1) / nodes;
  const uint64_t begin =
      std::min(n_particles, chunk * static_cast<uint64_t>(env.node_id()));
  const uint64_t end = std::min(n_particles, begin + chunk);

  auto rho = env.global_array<double>(vertices);

  for (int s = 0; s < options.steps; ++s) {
    // Zero the charge grid (owner-computes), then scatter: every particle
    // VP adds its weighted charge into 4 vertices — conflicting
    // accumulate-writes, bundled by the runtime.
    {
      auto zero = env.ppm_do(rho.local_end() - rho.local_begin());
      const uint64_t base = rho.local_begin();
      zero.global_phase([&](Vp& vp) { rho.set(base + vp.node_rank(), 0.0); });
    }
    {
      auto scatter = env.ppm_do(end - begin);
      const uint64_t stride = grid + 1;
      scatter.global_phase([&](Vp& vp) {
        const uint64_t k = begin + vp.node_rank();
        const CellWeights w = weights_of(particles.x[k], particles.y[k],
                                         grid);
        const double q = particles.charge[k];
        rho.add(w.i * stride + w.j, q * w.w00);
        rho.add((w.i + 1) * stride + w.j, q * w.w10);
        rho.add(w.i * stride + w.j + 1, q * w.w01);
        rho.add((w.i + 1) * stride + w.j + 1, q * w.w11);
      });
    }

    // Assemble rho (row-major (i, j) = i * stride + j matches GridLevel),
    // solve the field with the PPM multigrid, and push own particles.
    GridLevel rho_grid = make_level(grid);
    {
      auto probe = env.ppm_do(env.node_id() == 0 ? 1 : 0);
      probe.global_phase([&](Vp&) {
        std::vector<uint64_t> idx(vertices);
        for (uint64_t e = 0; e < vertices; ++e) idx[e] = e;
        rho_grid.values = rho.gather(idx);
      });
      env.broadcast(rho_grid.values, /*root=*/0);
    }
    GridLevel phi;
    (void)multigrid::solve_mg_ppm(env, rho_grid, options.mg_cycles, mg,
                                  &phi);
    for (uint64_t k = begin; k < end; ++k) {
      push_particle(particles, k, phi, options.dt);
    }
  }

  // Everyone ends with the full particle state: exchange the slices
  // through a shared array whose block distribution matches the particle
  // slices by construction (same ceil-chunk formula).
  for (auto* field :
       {&particles.x, &particles.y, &particles.vx, &particles.vy}) {
    auto buf = env.global_array<double>(std::max<uint64_t>(1, n_particles));
    PPM_CHECK(buf.local_begin() == begin && buf.local_end() == end,
              "particle slice does not match the array distribution");
    for (uint64_t k = begin; k < end; ++k) {
      buf.set(k, (*field)[k]);  // immediate local writes
    }
    env.barrier();
    std::vector<double> full;
    auto probe = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    probe.global_phase([&](Vp&) {
      std::vector<uint64_t> idx(n_particles);
      for (uint64_t e = 0; e < n_particles; ++e) idx[e] = e;
      full = buf.gather(idx);
    });
    env.broadcast(full, /*root=*/0);
    *field = std::move(full);
  }
}

}  // namespace ppm::apps::pic
