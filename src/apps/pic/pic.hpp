// Particle-in-cell (electrostatic, 2D) — the "material physics
// simulations" entry on the paper's list of unstructured applications.
//
// The PIC loop is a showcase of everything PPM claims to make easy:
//   * charge deposition: every particle scatters weighted charge into the
//     4 surrounding grid vertices — massive conflicting accumulate-writes,
//     handled by commutative add() and write bundling;
//   * field solve: -laplace(phi) = rho, delegated to the geometric
//     multigrid solver (apps/multigrid);
//   * field gather: every particle interpolates E = -grad(phi) from the
//     grid — fine-grained random reads, handled by the block cache;
//   * push: leapfrog update of the particle's own state.
//
// Domain: the unit square with homogeneous Dirichlet phi; particles
// reflect off the walls. Units are normalized (charge/mass = 1).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/multigrid/multigrid.hpp"
#include "core/ppm.hpp"

namespace ppm::apps::pic {

struct PicOptions {
  uint64_t grid = 32;     // cells per side (power of two)
  double dt = 0.05;
  int steps = 3;
  int mg_cycles = 4;      // V-cycles per field solve
};

/// Particle state, structure-of-arrays.
struct Particles {
  std::vector<double> x, y;    // positions in (0, 1)
  std::vector<double> vx, vy;
  std::vector<double> charge;  // signed

  uint64_t size() const { return x.size(); }
  void resize(uint64_t n);
};

/// Two offset clouds of opposite charge — deterministic in the seed.
Particles make_two_streams(uint64_t n, uint64_t seed);

/// Charge deposition (cloud-in-cell / bilinear weighting) onto an
/// (n+1)^2 vertex grid. Serial reference.
multigrid::GridLevel deposit_serial(const Particles& particles,
                                    uint64_t grid);

/// Advance `options.steps` PIC steps serially (deposit, multigrid field
/// solve, gather, leapfrog push with wall reflection).
void simulate_serial(Particles& particles, const PicOptions& options);

/// The same loop in PPM: particles block-distributed, rho/phi in global
/// shared arrays, deposition via add(), field solve via solve_mg_ppm.
/// Collective; on return every node holds the full final particle state.
void simulate_ppm(Env& env, Particles& particles,
                  const PicOptions& options);

/// Total charge on a grid (deposition conservation diagnostics).
double total_charge(const multigrid::GridLevel& rho);

}  // namespace ppm::apps::pic
