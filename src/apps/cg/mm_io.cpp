#include "apps/cg/mm_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ppm::apps::cg {

void write_matrix_market(const CsrMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by the PPM library\n";
  out << a.n << " " << a.n << " " << a.nnz() << "\n";
  out.precision(17);
  for (uint64_t i = 0; i < a.n; ++i) {
    for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      out << (i + 1) << " " << (a.col_idx[k] + 1) << " " << a.values[k]
          << "\n";
    }
  }
  PPM_CHECK(out.good(), "MatrixMarket write failed");
}

void write_matrix_market_file(const CsrMatrix& a, const std::string& path) {
  std::ofstream out(path);
  PPM_CHECK(out.is_open(), "cannot open %s for writing", path.c_str());
  write_matrix_market(a, out);
}

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  PPM_CHECK(static_cast<bool>(std::getline(in, line)),
            "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PPM_CHECK(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  PPM_CHECK(object == "matrix" && format == "coordinate",
            "only coordinate matrices are supported (got %s %s)",
            object.c_str(), format.c_str());
  PPM_CHECK(field == "real" || field == "integer",
            "only real/integer fields are supported (got %s)",
            field.c_str());
  const bool symmetric = (symmetry == "symmetric");
  PPM_CHECK(symmetric || symmetry == "general",
            "unsupported symmetry '%s'", symmetry.c_str());

  // Skip comments.
  do {
    PPM_CHECK(static_cast<bool>(std::getline(in, line)),
              "MatrixMarket stream ends before the size line");
  } while (!line.empty() && line[0] == '%');

  uint64_t rows = 0, cols = 0, entries = 0;
  {
    std::istringstream size_line(line);
    size_line >> rows >> cols >> entries;
    PPM_CHECK(!size_line.fail(), "malformed size line '%s'", line.c_str());
  }
  PPM_CHECK(rows == cols, "only square matrices are supported (%llux%llu)",
            static_cast<unsigned long long>(rows),
            static_cast<unsigned long long>(cols));

  struct Entry {
    uint64_t r, c;
    double v;
  };
  std::vector<Entry> coo;
  coo.reserve(entries * (symmetric ? 2 : 1));
  for (uint64_t e = 0; e < entries; ++e) {
    uint64_t r = 0, c = 0;
    double v = 0;
    in >> r >> c >> v;
    PPM_CHECK(!in.fail(), "malformed entry %llu",
              static_cast<unsigned long long>(e));
    PPM_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
              "entry %llu out of bounds (%llu, %llu)",
              static_cast<unsigned long long>(e),
              static_cast<unsigned long long>(r),
              static_cast<unsigned long long>(c));
    coo.push_back({r - 1, c - 1, v});
    if (symmetric && r != c) coo.push_back({c - 1, r - 1, v});
  }
  std::sort(coo.begin(), coo.end(), [](const Entry& a, const Entry& b) {
    return a.r != b.r ? a.r < b.r : a.c < b.c;
  });

  CsrMatrix m;
  m.n = rows;
  m.row_ptr.assign(rows + 1, 0);
  for (const Entry& e : coo) ++m.row_ptr[e.r + 1];
  for (uint64_t i = 0; i < rows; ++i) m.row_ptr[i + 1] += m.row_ptr[i];
  m.col_idx.reserve(coo.size());
  m.values.reserve(coo.size());
  for (const Entry& e : coo) {
    m.col_idx.push_back(e.c);
    m.values.push_back(e.v);
  }
  return m;
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PPM_CHECK(in.is_open(), "cannot open %s", path.c_str());
  return read_matrix_market(in);
}

}  // namespace ppm::apps::cg
