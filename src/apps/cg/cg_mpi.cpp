#include "apps/cg/cg_mpi.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace ppm::apps::cg {

namespace {

constexpr int kTagGhost = 100;

struct GhostPlan {
  // Ranks I receive ghost values from, with the global indices they send
  // (in transmission order) — established once at setup.
  std::vector<int> recv_from;
  std::vector<std::vector<uint64_t>> recv_indices;
  // Ranks I send to, with the local row offsets they asked for.
  std::vector<int> send_to;
  std::vector<std::vector<uint64_t>> send_local_rows;
};

}  // namespace

MpiCgOutput cg_solve_mpi(mp::Comm& comm, const ChimneyProblem& problem,
                         const CgOptions& options) {
  const uint64_t n = problem.unknowns();
  const int p_ranks = comm.size();
  const int me = comm.rank();
  const uint64_t chunk =
      (n + static_cast<uint64_t>(p_ranks) - 1) / static_cast<uint64_t>(p_ranks);
  auto row_begin_of = [&](int rank) {
    return std::min(n, chunk * static_cast<uint64_t>(rank));
  };
  const uint64_t row0 = row_begin_of(me);
  const uint64_t row1 = row_begin_of(me + 1);
  const uint64_t rows = row1 - row0;

  // ---- Setup: local slice, ghost analysis, request-list exchange ----

  CsrMatrix a = build_chimney_matrix_rows(problem, row0, row1);
  const std::vector<double> b_full = build_chimney_rhs(problem);

  // Unique off-slice columns, grouped by owning rank.
  std::map<int, std::vector<uint64_t>> needed;  // owner -> sorted indices
  {
    std::vector<uint64_t> ghosts(a.col_idx.begin(), a.col_idx.end());
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    for (uint64_t c : ghosts) {
      if (c < row0 || c >= row1) {
        needed[static_cast<int>(c / chunk)].push_back(c);
      }
    }
  }

  // Tell every owner which of its entries we need (alltoallv of index
  // lists); learn which of our entries the others need.
  std::vector<std::vector<uint64_t>> requests(
      static_cast<size_t>(p_ranks));
  for (auto& [owner, idx] : needed) {
    requests[static_cast<size_t>(owner)] = idx;
  }
  const auto incoming = comm.alltoallv(requests);

  GhostPlan plan;
  for (const auto& [owner, idx] : needed) {
    plan.recv_from.push_back(owner);
    plan.recv_indices.push_back(idx);
  }
  for (int src = 0; src < p_ranks; ++src) {
    if (src == me || incoming[static_cast<size_t>(src)].empty()) continue;
    plan.send_to.push_back(src);
    std::vector<uint64_t> local_rows;
    local_rows.reserve(incoming[static_cast<size_t>(src)].size());
    for (uint64_t g : incoming[static_cast<size_t>(src)]) {
      PPM_CHECK(g >= row0 && g < row1,
                "rank %d asked rank %d for non-owned row", src, me);
      local_rows.push_back(g - row0);
    }
    plan.send_local_rows.push_back(std::move(local_rows));
  }

  // Remap column indices to local-and-ghost numbering: locals first, then
  // ghosts in (owner, index) order.
  std::unordered_map<uint64_t, uint64_t> ghost_slot;
  uint64_t next_slot = rows;
  for (const auto& idx : plan.recv_indices) {
    for (uint64_t g : idx) ghost_slot.emplace(g, next_slot++);
  }
  for (uint64_t& c : a.col_idx) {
    c = (c >= row0 && c < row1) ? c - row0 : ghost_slot.at(c);
  }

  // ---- CG iteration ----

  std::vector<double> x(rows, 0.0);
  std::vector<double> r(b_full.begin() + static_cast<int64_t>(row0),
                        b_full.begin() + static_cast<int64_t>(row1));
  std::vector<double> p_vec(next_slot, 0.0);  // locals + ghost halo
  std::vector<double> q(rows, 0.0);
  std::copy(r.begin(), r.end(), p_vec.begin());

  auto local_dot = [](std::span<const double> u, std::span<const double> v) {
    double acc = 0;
    for (size_t i = 0; i < u.size(); ++i) acc += u[i] * v[i];
    return acc;
  };
  auto sum_all = [&](double v) {
    return comm.allreduce_value(v, [](double u, double w) { return u + w; });
  };

  // Bundle and ship the p entries each neighbor asked for, and fill our
  // ghost halo with what the owners send — one message per neighbor pair.
  auto exchange_ghosts = [&] {
    std::vector<mp::Request> sends;
    sends.reserve(plan.send_to.size());
    for (size_t s = 0; s < plan.send_to.size(); ++s) {
      std::vector<double> payload;
      payload.reserve(plan.send_local_rows[s].size());
      for (uint64_t lr : plan.send_local_rows[s]) payload.push_back(p_vec[lr]);
      ByteWriter w;
      w.put_span(std::span<const double>(payload));
      sends.push_back(comm.isend(plan.send_to[s], kTagGhost,
                                 std::move(w).take()));
    }
    for (size_t g = 0; g < plan.recv_from.size(); ++g) {
      const auto values = comm.recv_vec<double>(plan.recv_from[g], kTagGhost);
      PPM_CHECK(values.size() == plan.recv_indices[g].size(),
                "ghost exchange size mismatch");
      for (size_t j = 0; j < values.size(); ++j) {
        p_vec[ghost_slot.at(plan.recv_indices[g][j])] = values[j];
      }
    }
    comm.waitall(sends);
  };

  const double b_norm = std::sqrt(sum_all(local_dot(r, r)));
  const double threshold = options.tolerance * (b_norm > 0 ? b_norm : 1.0);
  double rr = sum_all(local_dot(r, r));

  MpiCgOutput out;
  out.row_begin = row0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    exchange_ghosts();
    // Local SpMV over the halo-extended p.
    for (uint64_t i = 0; i < rows; ++i) {
      double acc = 0.0;
      for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        acc += a.values[k] * p_vec[a.col_idx[k]];
      }
      q[i] = acc;
    }
    const double pq = sum_all(local_dot({p_vec.data(), rows}, q));
    const double alpha = rr / pq;
    for (uint64_t i = 0; i < rows; ++i) {
      x[i] += alpha * p_vec[i];
      r[i] -= alpha * q[i];
    }
    const double rr_new = sum_all(local_dot(r, r));
    out.residual_history.push_back(std::sqrt(rr_new));
    ++out.iterations;
    if (std::sqrt(rr_new) <= threshold) {
      out.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    for (uint64_t i = 0; i < rows; ++i) {
      p_vec[i] = r[i] + beta * p_vec[i];
    }
    rr = rr_new;
  }
  out.x_local = std::move(x);
  return out;
}

}  // namespace ppm::apps::cg
