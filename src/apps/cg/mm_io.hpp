// MatrixMarket (coordinate, real) import/export for CSR matrices — the
// interchange format sparse-solver users actually have on disk.
#pragma once

#include <iosfwd>
#include <string>

#include "apps/cg/csr.hpp"

namespace ppm::apps::cg {

/// Write `a` in MatrixMarket coordinate/real/general format (1-based).
void write_matrix_market(const CsrMatrix& a, std::ostream& out);
void write_matrix_market_file(const CsrMatrix& a, const std::string& path);

/// Read a MatrixMarket coordinate/real matrix (general or symmetric; a
/// symmetric file is expanded to full storage). Rows must equal columns.
/// Throws ppm::Error on malformed input.
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

}  // namespace ppm::apps::cg
