#include "apps/cg/trisolve.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ppm::apps::cg {

CsrMatrix lower_triangle(const CsrMatrix& a) {
  CsrMatrix l;
  l.n = a.n;
  l.row_ptr.push_back(0);
  for (uint64_t i = 0; i < a.n; ++i) {
    for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] <= i) {
        l.col_idx.push_back(a.col_idx[k]);
        l.values.push_back(a.values[k]);
      }
    }
    l.row_ptr.push_back(l.col_idx.size());
  }
  return l;
}

std::vector<uint32_t> dependency_levels(const CsrMatrix& lower) {
  std::vector<uint32_t> level(lower.n, 0);
  for (uint64_t i = 0; i < lower.n; ++i) {
    uint32_t lvl = 0;
    for (uint64_t k = lower.row_ptr[i]; k < lower.row_ptr[i + 1]; ++k) {
      const uint64_t j = lower.col_idx[k];
      PPM_CHECK(j <= i, "matrix is not lower triangular (entry %llu,%llu)",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(j));
      if (j < i) lvl = std::max(lvl, level[j] + 1);
    }
    level[i] = lvl;
  }
  return level;
}

std::vector<double> trisolve_serial(const CsrMatrix& lower,
                                    std::span<const double> b) {
  PPM_CHECK(b.size() == lower.n, "rhs size mismatch");
  std::vector<double> y(lower.n, 0.0);
  for (uint64_t i = 0; i < lower.n; ++i) {
    double acc = b[i];
    double diag = 0.0;
    for (uint64_t k = lower.row_ptr[i]; k < lower.row_ptr[i + 1]; ++k) {
      const uint64_t j = lower.col_idx[k];
      if (j == i) {
        diag = lower.values[k];
      } else {
        acc -= lower.values[k] * y[j];
      }
    }
    PPM_CHECK(diag != 0.0, "zero diagonal in row %llu",
              static_cast<unsigned long long>(i));
    y[i] = acc / diag;
  }
  return y;
}

CsrMatrix upper_triangle(const CsrMatrix& a) {
  CsrMatrix u;
  u.n = a.n;
  u.row_ptr.push_back(0);
  for (uint64_t i = 0; i < a.n; ++i) {
    for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] >= i) {
        u.col_idx.push_back(a.col_idx[k]);
        u.values.push_back(a.values[k]);
      }
    }
    u.row_ptr.push_back(u.col_idx.size());
  }
  return u;
}

std::vector<uint32_t> dependency_levels_upper(const CsrMatrix& upper) {
  std::vector<uint32_t> level(upper.n, 0);
  for (uint64_t ii = upper.n; ii-- > 0;) {
    uint32_t lvl = 0;
    for (uint64_t k = upper.row_ptr[ii]; k < upper.row_ptr[ii + 1]; ++k) {
      const uint64_t j = upper.col_idx[k];
      PPM_CHECK(j >= ii, "matrix is not upper triangular (entry %llu,%llu)",
                static_cast<unsigned long long>(ii),
                static_cast<unsigned long long>(j));
      if (j > ii) lvl = std::max(lvl, level[j] + 1);
    }
    level[ii] = lvl;
  }
  return level;
}

std::vector<double> trisolve_upper_serial(const CsrMatrix& upper,
                                          std::span<const double> b) {
  PPM_CHECK(b.size() == upper.n, "rhs size mismatch");
  std::vector<double> y(upper.n, 0.0);
  for (uint64_t ii = upper.n; ii-- > 0;) {
    double acc = b[ii];
    double diag = 0.0;
    for (uint64_t k = upper.row_ptr[ii]; k < upper.row_ptr[ii + 1]; ++k) {
      const uint64_t j = upper.col_idx[k];
      if (j == ii) {
        diag = upper.values[k];
      } else {
        acc -= upper.values[k] * y[j];
      }
    }
    PPM_CHECK(diag != 0.0, "zero diagonal in row %llu",
              static_cast<unsigned long long>(ii));
    y[ii] = acc / diag;
  }
  return y;
}

std::vector<double> trisolve_ppm(Env& env, const CsrMatrix& lower,
                                 std::span<const double> b) {
  PPM_CHECK(b.size() == lower.n, "rhs size mismatch");
  const uint64_t n = lower.n;
  auto y = env.global_array<double>(n);

  // Own rows, grouped by dependency level. The level analysis is pure
  // local preprocessing (every node computes the same schedule).
  const auto levels = dependency_levels(lower);
  const uint32_t num_levels =
      levels.empty() ? 0 : *std::max_element(levels.begin(), levels.end()) + 1;
  const uint64_t row0 = y.local_begin();
  const uint64_t row1 = y.local_end();
  std::vector<std::vector<uint64_t>> rows_by_level(num_levels);
  for (uint64_t i = row0; i < row1; ++i) {
    rows_by_level[levels[i]].push_back(i);
  }

  // One global phase per level: all rows of a level are independent; their
  // sub-diagonal reads hit rows solved in earlier (committed) levels —
  // possibly on other nodes, which is exactly the fine-grained data-driven
  // traffic that makes this kernel hard to hand-code.
  for (uint32_t lvl = 0; lvl < num_levels; ++lvl) {
    const auto& rows = rows_by_level[lvl];
    auto vps = env.ppm_do(rows.size());
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = rows[vp.node_rank()];
      double acc = b[i];
      double diag = 0.0;
      for (uint64_t k = lower.row_ptr[i]; k < lower.row_ptr[i + 1]; ++k) {
        const uint64_t j = lower.col_idx[k];
        if (j == i) {
          diag = lower.values[k];
        } else {
          acc -= lower.values[k] * y.get(j);
        }
      }
      PPM_CHECK(diag != 0.0, "zero diagonal in row %llu",
                static_cast<unsigned long long>(i));
      y.set(i, acc / diag);
    });
  }

  // Everyone assembles the full solution.
  std::vector<double> full;
  auto probe = env.ppm_do(env.node_id() == 0 ? 1 : 0);
  probe.global_phase([&](Vp&) {
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    full = y.gather(idx);
  });
  env.broadcast(full, /*root=*/0);
  return full;
}


SsorApplyPpm::SsorApplyPpm(Env& env, const CsrMatrix& a)
    : lower_(lower_triangle(a)), upper_(upper_triangle(a)) {
  diag_.assign(a.n, 0.0);
  for (uint64_t i = 0; i < a.n; ++i) {
    for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i) diag_[i] = a.values[k];
    }
    PPM_CHECK(diag_[i] != 0.0, "SSOR needs a nonzero diagonal (row %llu)",
              static_cast<unsigned long long>(i));
  }
  y_ = env.global_array<double>(a.n);

  const auto fwd_levels = dependency_levels(lower_);
  const auto bwd_levels = dependency_levels_upper(upper_);
  const uint32_t fwd_count =
      *std::max_element(fwd_levels.begin(), fwd_levels.end()) + 1;
  const uint32_t bwd_count =
      *std::max_element(bwd_levels.begin(), bwd_levels.end()) + 1;
  forward_rows_.resize(fwd_count);
  backward_rows_.resize(bwd_count);
  for (uint64_t i = y_.local_begin(); i < y_.local_end(); ++i) {
    forward_rows_[fwd_levels[i]].push_back(i);
    backward_rows_[bwd_levels[i]].push_back(i);
  }
  // Group creation is collective; do it once, not per apply().
  forward_groups_.reserve(fwd_count);
  for (const auto& rows : forward_rows_) {
    forward_groups_.push_back(env.ppm_do(rows.size()));
  }
  backward_groups_.reserve(bwd_count);
  for (const auto& rows : backward_rows_) {
    backward_groups_.push_back(env.ppm_do(rows.size()));
  }
}

void SsorApplyPpm::apply(Env& env, const GlobalShared<double>& r,
                         GlobalShared<double>& z) {
  (void)env;
  // Forward sweep: (D + L) y = r.
  for (size_t lvl = 0; lvl < forward_groups_.size(); ++lvl) {
    const auto& rows = forward_rows_[lvl];
    forward_groups_[lvl].global_phase([&](Vp& vp) {
      const uint64_t i = rows[vp.node_rank()];
      double acc = r.get(i);
      for (uint64_t k = lower_.row_ptr[i]; k < lower_.row_ptr[i + 1]; ++k) {
        const uint64_t j = lower_.col_idx[k];
        if (j != i) acc -= lower_.values[k] * y_.get(j);
      }
      y_.set(i, acc / diag_[i]);
    });
  }
  // Diagonal scale + backward sweep: (D + U) z = D y.
  for (size_t lvl = 0; lvl < backward_groups_.size(); ++lvl) {
    const auto& rows = backward_rows_[lvl];
    backward_groups_[lvl].global_phase([&](Vp& vp) {
      const uint64_t i = rows[vp.node_rank()];
      double acc = y_.get(i) * diag_[i];
      for (uint64_t k = upper_.row_ptr[i]; k < upper_.row_ptr[i + 1]; ++k) {
        const uint64_t j = upper_.col_idx[k];
        if (j != i) acc -= upper_.values[k] * z.get(j);
      }
      z.set(i, acc / diag_[i]);
    });
  }
}

}  // namespace ppm::apps::cg

