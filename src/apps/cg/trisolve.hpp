// Level-scheduled sparse triangular solve.
//
// The paper's Introduction points at Rothberg & Gupta's "Parallel ICCG …
// addressing the triangular solve bottleneck" as an application so hostile
// to message passing that it is "considered unsuitable for MPI": the
// forward-substitution dependencies force fine-grained, data-driven reads
// of just-computed entries. In PPM the classic level-scheduling
// formulation is a few lines: one global phase per dependency level, with
// the cross-row reads as plain shared accesses.
#pragma once

#include "apps/cg/csr.hpp"
#include "core/ppm.hpp"

namespace ppm::apps::cg {

/// Dependency levels of a lower-triangular CSR matrix:
/// level[i] = 1 + max(level[j]) over j < i with L(i,j) != 0 (level[i] = 0
/// for rows with no sub-diagonal entries). Rows of equal level are
/// independent and can be solved in parallel.
std::vector<uint32_t> dependency_levels(const CsrMatrix& lower);

/// Extract the lower triangle (including the diagonal) of a CSR matrix.
CsrMatrix lower_triangle(const CsrMatrix& a);

/// Serial forward substitution: solve L y = b.
std::vector<double> trisolve_serial(const CsrMatrix& lower,
                                    std::span<const double> b);

/// PPM level-scheduled solve of L y = b; collective. Every node passes the
/// full L and b (each keeps only its own rows); returns the full solution
/// on every node.
std::vector<double> trisolve_ppm(Env& env, const CsrMatrix& lower,
                                 std::span<const double> b);

/// Extract the upper triangle (including the diagonal).
CsrMatrix upper_triangle(const CsrMatrix& a);

/// Dependency levels for backward substitution on an upper-triangular
/// matrix: level[i] = 1 + max(level[j]) over j > i with U(i,j) != 0.
std::vector<uint32_t> dependency_levels_upper(const CsrMatrix& upper);

/// Serial backward substitution: solve U y = b.
std::vector<double> trisolve_upper_serial(const CsrMatrix& upper,
                                          std::span<const double> b);

/// Reusable symmetric-Gauss-Seidel (SSOR, omega = 1) preconditioner
/// applied with PPM level-scheduled triangular solves:
///   M = (D + L) D^{-1} (D + U),   apply: z = M^{-1} r.
/// This is the preconditioner structure of the "Parallel ICCG" kernel the
/// paper's Introduction cites as unsuitable for hand-coded message
/// passing. All per-level schedules and shared temporaries are set up
/// once; apply() is called every PCG iteration.
class SsorApplyPpm {
 public:
  /// Collective. `a` is the full symmetric matrix (every node passes the
  /// same one and keeps its own rows).
  SsorApplyPpm(Env& env, const CsrMatrix& a);

  /// z = M^{-1} r. Collective; r and z are committed global arrays.
  void apply(Env& env, const GlobalShared<double>& r,
             GlobalShared<double>& z);

 private:
  CsrMatrix lower_;
  CsrMatrix upper_;
  std::vector<double> diag_;
  GlobalShared<double> y_;  // intermediate forward-solve result
  // Own rows grouped by dependency level, and the matching VP groups
  // (created once: group creation is collective).
  std::vector<std::vector<uint64_t>> forward_rows_;
  std::vector<std::vector<uint64_t>> backward_rows_;
  std::vector<VpGroup> forward_groups_;
  std::vector<VpGroup> backward_groups_;
};

}  // namespace ppm::apps::cg
