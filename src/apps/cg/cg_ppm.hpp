// Conjugate-gradient solver written in PPM (the paper's Application 1).
//
// This is deliberately the *simple* program the paper advertises: vectors
// are global shared arrays, the sparse matrix-vector product reads remote
// entries of p through plain array syntax (p.get(j)), and the runtime's
// bundling turns those fine-grained accesses into block transfers. No
// explicit communication or synchronization code appears — compare with
// cg_mpi.hpp which hand-codes the ghost exchange.
#pragma once

#include "apps/cg/cg_serial.hpp"
#include "apps/cg/csr.hpp"
#include "core/ppm.hpp"

namespace ppm::apps::cg {

struct PpmCgOutput {
  GlobalShared<double> x;  // the solution (distributed)
  std::vector<double> residual_history;
  int iterations = 0;
  bool converged = false;
};

/// Solve the chimney diffusion problem on the calling Env's cluster.
/// Called from a PPM node program; collective across nodes.
PpmCgOutput cg_solve_ppm(Env& env, const ChimneyProblem& problem,
                         const CgOptions& options = {});

/// Solve A x = b for an arbitrary SPD matrix (every node passes the full
/// matrix and keeps its own row slice). Collective.
PpmCgOutput cg_solve_ppm_matrix(Env& env, const CsrMatrix& a_full,
                                std::span<const double> b,
                                const CgOptions& options = {});

/// Preconditioned CG with the symmetric-Gauss-Seidel (SSOR) preconditioner
/// applied through PPM level-scheduled triangular solves — the "Parallel
/// ICCG" kernel shape of the paper's reference [20]. Converges in fewer
/// iterations than the unpreconditioned solver.
PpmCgOutput cg_solve_ppm_ssor(Env& env, const ChimneyProblem& problem,
                              const CgOptions& options = {});

}  // namespace ppm::apps::cg
