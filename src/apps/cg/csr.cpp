#include "apps/cg/csr.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ppm::apps::cg {

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  PPM_CHECK(x.size() == n && y.size() == n, "spmv: dimension mismatch");
  for (uint64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (uint64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      acc += values[k] * x[col_idx[k]];
    }
    y[i] = acc;
  }
}

CsrMatrix CsrMatrix::row_slice(uint64_t row_begin, uint64_t row_end) const {
  PPM_CHECK(row_begin <= row_end && row_end <= n, "bad row slice");
  CsrMatrix out;
  out.n = n;  // column space stays global
  out.row_ptr.reserve(row_end - row_begin + 1);
  const uint64_t k0 = row_ptr[row_begin];
  out.row_ptr.push_back(0);
  for (uint64_t i = row_begin; i < row_end; ++i) {
    out.row_ptr.push_back(row_ptr[i + 1] - k0);
  }
  out.col_idx.assign(col_idx.begin() + static_cast<int64_t>(k0),
                     col_idx.begin() + static_cast<int64_t>(row_ptr[row_end]));
  out.values.assign(values.begin() + static_cast<int64_t>(k0),
                    values.begin() + static_cast<int64_t>(row_ptr[row_end]));
  return out;
}

namespace {
/// Diffusion coefficient: varies smoothly along the chimney so the operator
/// is not translation invariant.
double kappa(uint64_t z, uint64_t nz) {
  return 1.0 + 0.5 * std::sin(2.0 * M_PI * static_cast<double>(z) /
                              static_cast<double>(nz));
}
}  // namespace

CsrMatrix build_chimney_matrix(const ChimneyProblem& p) {
  return build_chimney_matrix_rows(p, 0, p.unknowns());
}

CsrMatrix build_chimney_matrix_rows(const ChimneyProblem& p,
                                    uint64_t row_begin, uint64_t row_end) {
  PPM_CHECK(p.nx >= 2 && p.ny >= 2 && p.nz >= 2,
            "chimney grid needs at least 2 points per dimension");
  const uint64_t n = p.unknowns();
  PPM_CHECK(row_begin <= row_end && row_end <= n, "bad row range");
  CsrMatrix a;
  a.n = n;
  a.row_ptr.reserve(row_end - row_begin + 1);
  a.row_ptr.push_back(0);
  a.col_idx.reserve((row_end - row_begin) * 27);
  a.values.reserve((row_end - row_begin) * 27);

  auto index = [&](uint64_t x, uint64_t y, uint64_t z) {
    return (z * p.ny + y) * p.nx + x;
  };

  for (uint64_t row = row_begin; row < row_end; ++row) {
    const uint64_t x = row % p.nx;
    const uint64_t y = (row / p.nx) % p.ny;
    const uint64_t z = row / (p.nx * p.ny);
    const double k = kappa(z, p.nz);
    double offdiag_sum = 0.0;
    const uint64_t diag_slot = a.col_idx.size();
    // Reserve the diagonal slot first (natural CSR ordering within the
    // row is by column index; we sort implicitly by emitting in
    // neighbor order then fixing the diagonal value afterwards).
    a.col_idx.push_back(index(x, y, z));
    a.values.push_back(0.0);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const int64_t xx = static_cast<int64_t>(x) + dx;
          const int64_t yy = static_cast<int64_t>(y) + dy;
          const int64_t zz = static_cast<int64_t>(z) + dz;
          if (xx < 0 || yy < 0 || zz < 0 ||
              xx >= static_cast<int64_t>(p.nx) ||
              yy >= static_cast<int64_t>(p.ny) ||
              zz >= static_cast<int64_t>(p.nz)) {
            continue;  // homogeneous Dirichlet boundary
          }
          // Coupling weight falls with taxicab distance (face 1.0,
          // edge 0.5, corner 0.25), scaled by the arithmetic mean of the
          // endpoint coefficients — symmetric, so the matrix stays SPD.
          const int dist = std::abs(dx) + std::abs(dy) + std::abs(dz);
          const double k_edge =
              0.5 * (k + kappa(static_cast<uint64_t>(zz), p.nz));
          const double w =
              -k_edge * (dist == 1 ? 1.0 : dist == 2 ? 0.5 : 0.25);
          a.col_idx.push_back(index(static_cast<uint64_t>(xx),
                                    static_cast<uint64_t>(yy),
                                    static_cast<uint64_t>(zz)));
          a.values.push_back(w);
          offdiag_sum += w;
        }
      }
    }
    // Strict diagonal dominance => SPD.
    a.values[diag_slot] = -offdiag_sum + 0.1 * k;
    a.row_ptr.push_back(a.col_idx.size());
  }
  return a;
}

std::vector<double> build_chimney_rhs(const ChimneyProblem& p) {
  std::vector<double> b(p.unknowns(), 0.0);
  // A hot source at the chimney base and a sink near the top.
  auto index = [&](uint64_t x, uint64_t y, uint64_t z) {
    return (z * p.ny + y) * p.nx + x;
  };
  b[index(p.nx / 2, p.ny / 2, 1)] = 100.0;
  b[index(p.nx / 3, p.ny / 3, p.nz - 2)] = -40.0;
  for (uint64_t i = 0; i < b.size(); ++i) {
    b[i] += 1e-3 * std::cos(0.01 * static_cast<double>(i));
  }
  return b;
}

}  // namespace ppm::apps::cg
