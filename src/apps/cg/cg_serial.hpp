// Serial conjugate-gradient reference solver.
#pragma once

#include <span>
#include <vector>

#include "apps/cg/csr.hpp"

namespace ppm::apps::cg {

struct CgResult {
  std::vector<double> x;
  std::vector<double> residual_history;  // ||r||_2 after each iteration
  int iterations = 0;
  bool converged = false;
};

struct CgOptions {
  int max_iterations = 200;
  double tolerance = 1e-8;  // relative to ||b||
};

/// Solve A x = b with unpreconditioned CG.
CgResult cg_solve_serial(const CsrMatrix& a, std::span<const double> b,
                         const CgOptions& options = {});

}  // namespace ppm::apps::cg
