// Extensions of the PPM CG solver beyond the paper's Application 1:
// the SSOR-preconditioned variant (the "Parallel ICCG" kernel shape of the
// paper's reference [20]) and the general-matrix entry point used with
// MatrixMarket inputs. Kept out of cg_ppm.cpp so Table 1 counts the same
// "CG application program" the paper counted.
#include "apps/cg/cg_ppm.hpp"

#include <cmath>

#include "apps/cg/trisolve.hpp"
#include "core/algorithms.hpp"

namespace ppm::apps::cg {


PpmCgOutput cg_solve_ppm_ssor(Env& env, const ChimneyProblem& problem,
                              const CgOptions& options) {
  const uint64_t n = problem.unknowns();
  auto x = env.global_array<double>(n);
  auto r = env.global_array<double>(n);
  auto z = env.global_array<double>(n);
  auto p = env.global_array<double>(n);
  auto q = env.global_array<double>(n);

  const uint64_t row0 = x.local_begin();
  const uint64_t rows = x.local_end() - row0;
  // The preconditioner needs the full symmetric matrix for its level
  // analysis; the SpMV keeps only the local slice.
  const CsrMatrix a_full = build_chimney_matrix(problem);
  const CsrMatrix a = a_full.row_slice(row0, row0 + rows);
  const std::vector<double> b = build_chimney_rhs(problem);
  SsorApplyPpm preconditioner(env, a_full);

  auto vps = env.ppm_do(rows);
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = row0 + vp.node_rank();
    x.set(i, 0.0);
    r.set(i, b[i]);
  });
  preconditioner.apply(env, r, z);
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = row0 + vp.node_rank();
    p.set(i, z.get(i));
  });

  const double b_norm = std::sqrt(dot(env, r, r));
  const double threshold = options.tolerance * (b_norm > 0 ? b_norm : 1.0);

  PpmCgOutput out{x, {}, 0, false};
  double rz = dot(env, r, z);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = vp.node_rank();
      double acc = 0.0;
      for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        acc += a.values[k] * p.get(a.col_idx[k]);
      }
      q.set(row0 + i, acc);
    });
    const double alpha = rz / dot(env, p, q);
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = row0 + vp.node_rank();
      x.add(i, alpha * p.get(i));
      r.add(i, -alpha * q.get(i));
    });
    const double rr = dot(env, r, r);
    out.residual_history.push_back(std::sqrt(rr));
    ++out.iterations;
    if (std::sqrt(rr) <= threshold) {
      out.converged = true;
      break;
    }
    preconditioner.apply(env, r, z);
    const double rz_new = dot(env, r, z);
    const double beta = rz_new / rz;
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = row0 + vp.node_rank();
      p.set(i, z.get(i) + beta * p.get(i));
    });
    rz = rz_new;
  }
  return out;
}


PpmCgOutput cg_solve_ppm_matrix(Env& env, const CsrMatrix& a_full,
                                std::span<const double> b,
                                const CgOptions& options) {
  PPM_CHECK(b.size() == a_full.n, "rhs size mismatch");
  const uint64_t n = a_full.n;
  auto x = env.global_array<double>(n);
  auto r = env.global_array<double>(n);
  auto p = env.global_array<double>(n);
  auto q = env.global_array<double>(n);

  const uint64_t row0 = x.local_begin();
  const uint64_t rows = x.local_end() - row0;
  const CsrMatrix a = a_full.row_slice(row0, row0 + rows);

  auto vps = env.ppm_do(rows);
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = row0 + vp.node_rank();
    x.set(i, 0.0);
    r.set(i, b[i]);
    p.set(i, b[i]);
  });

  const double b_norm = std::sqrt(dot(env, r, r));
  const double threshold = options.tolerance * (b_norm > 0 ? b_norm : 1.0);

  PpmCgOutput out{x, {}, 0, false};
  double rr = dot(env, r, r);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = vp.node_rank();
      double acc = 0.0;
      for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        acc += a.values[k] * p.get(a.col_idx[k]);
      }
      q.set(row0 + i, acc);
    });
    const double alpha = rr / dot(env, p, q);
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = row0 + vp.node_rank();
      x.add(i, alpha * p.get(i));
      r.add(i, -alpha * q.get(i));
    });
    const double rr_new = dot(env, r, r);
    out.residual_history.push_back(std::sqrt(rr_new));
    ++out.iterations;
    if (std::sqrt(rr_new) <= threshold) {
      out.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = row0 + vp.node_rank();
      p.set(i, r.get(i) + beta * p.get(i));
    });
    rr = rr_new;
  }
  return out;
}

}  // namespace ppm::apps::cg


