// Conjugate-gradient solver in explicit message-passing style — the
// paper's "highly-tuned MPI implementation" comparator.
//
// One rank per core. Rows are block-distributed over ranks. At setup each
// rank analyzes its matrix slice to find the ghost entries of p it needs,
// exchanges request lists with the owning ranks, and remaps column indices
// to a local+ghost numbering. Every iteration then performs one bundled
// ghost exchange per neighbor pair (isend/irecv), a purely local SpMV, and
// allreduce dot products — all the communication and synchronization code
// the PPM version does not have to write.
#pragma once

#include "apps/cg/cg_serial.hpp"
#include "apps/cg/csr.hpp"
#include "mp/comm.hpp"

namespace ppm::apps::cg {

struct MpiCgOutput {
  std::vector<double> x_local;  // this rank's rows of the solution
  uint64_t row_begin = 0;
  std::vector<double> residual_history;
  int iterations = 0;
  bool converged = false;
};

/// Solve the chimney diffusion problem; collective over all ranks of comm.
MpiCgOutput cg_solve_mpi(mp::Comm& comm, const ChimneyProblem& problem,
                         const CgOptions& options = {});

}  // namespace ppm::apps::cg
