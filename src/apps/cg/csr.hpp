// Compressed-sparse-row matrix and the 27-point finite-difference operator
// used by the paper's Application 1 ("diffusion problem on 3D chimney
// domain by a 27 point implicit finite difference scheme").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ppm::apps::cg {

/// CSR sparse matrix (square, double precision).
struct CsrMatrix {
  uint64_t n = 0;
  std::vector<uint64_t> row_ptr;  // n + 1 entries
  std::vector<uint64_t> col_idx;
  std::vector<double> values;

  uint64_t nnz() const { return col_idx.size(); }

  /// y = A x (serial).
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Rows [row_begin, row_end) as a standalone matrix slice with global
  /// column indices — the per-node storage of the distributed solvers.
  CsrMatrix row_slice(uint64_t row_begin, uint64_t row_end) const;
};

/// Parameters of the chimney-domain diffusion problem. The paper's test
/// uses a 256^3-scale grid; benches here scale it down, keeping the shape
/// (a chimney: elongated in z).
struct ChimneyProblem {
  uint64_t nx = 16;
  uint64_t ny = 16;
  uint64_t nz = 32;

  uint64_t unknowns() const { return nx * ny * nz; }
};

/// Build the 27-point implicit finite-difference diffusion operator on the
/// chimney grid. Symmetric positive definite: diagonal strictly dominates
/// the 26 off-diagonal couplings. A mild z-dependent diffusion coefficient
/// makes the matrix non-Toeplitz (unstructured data formats in the paper's
/// wording come from the domain shape and the CSR storage).
CsrMatrix build_chimney_matrix(const ChimneyProblem& problem);

/// Build only rows [row_begin, row_end) of the operator (global column
/// indices). This is what each node/rank of the distributed solvers
/// generates locally.
CsrMatrix build_chimney_matrix_rows(const ChimneyProblem& problem,
                                    uint64_t row_begin, uint64_t row_end);

/// Right-hand side with deterministic structure (point sources).
std::vector<double> build_chimney_rhs(const ChimneyProblem& problem);

}  // namespace ppm::apps::cg
