#include "apps/cg/cg_serial.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ppm::apps::cg {

namespace {
double dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}
}  // namespace

CgResult cg_solve_serial(const CsrMatrix& a, std::span<const double> b,
                         const CgOptions& options) {
  PPM_CHECK(b.size() == a.n, "rhs size mismatch");
  const uint64_t n = a.n;
  CgResult result;
  result.x.assign(n, 0.0);
  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> q(n, 0.0);

  const double b_norm = std::sqrt(dot(b, b));
  const double threshold = options.tolerance * (b_norm > 0 ? b_norm : 1.0);
  double rr = dot(r, r);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    a.spmv(p, q);
    const double alpha = rr / dot(p, q);
    for (uint64_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    const double rr_new = dot(r, r);
    result.residual_history.push_back(std::sqrt(rr_new));
    ++result.iterations;
    if (std::sqrt(rr_new) <= threshold) {
      result.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    for (uint64_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
  }
  return result;
}

}  // namespace ppm::apps::cg
