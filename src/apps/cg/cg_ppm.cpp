#include "apps/cg/cg_ppm.hpp"

#include <cmath>

#include "apps/cg/trisolve.hpp"
#include "core/algorithms.hpp"

namespace ppm::apps::cg {

PpmCgOutput cg_solve_ppm(Env& env, const ChimneyProblem& problem,
                         const CgOptions& options) {
  const uint64_t n = problem.unknowns();
  // All four vectors stay kBlock deliberately: dot() and local_begin/
  // local_end assume the contiguous block layout, and the chimney
  // matrix's banded structure keeps p-reads clustered near each node's
  // own chunk — there is no skewed hot set for the locality engine
  // (Distribution::kAdaptive) to exploit here. The graph kernels are the
  // owner-mapped showcase.
  auto x = env.global_array<double>(n);
  auto r = env.global_array<double>(n);
  auto p = env.global_array<double>(n);
  auto q = env.global_array<double>(n);

  // Owner-computes: this node's VPs handle its chunk of rows. The local
  // matrix rows are generated directly into node-local memory.
  const uint64_t row0 = x.local_begin();
  const uint64_t rows = x.local_end() - row0;
  const CsrMatrix a = build_chimney_matrix_rows(problem, row0, row0 + rows);
  const std::vector<double> b = build_chimney_rhs(problem);

  auto vps = env.ppm_do(rows);

  // r = p = b, x = 0.
  env.phase_label("init");
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = row0 + vp.node_rank();
    x.set(i, 0.0);
    r.set(i, b[i]);
    p.set(i, b[i]);
  });

  const double b_norm = std::sqrt(dot(env, r, r));
  const double threshold =
      options.tolerance * (b_norm > 0 ? b_norm : 1.0);

  PpmCgOutput out{x, {}, 0, false};
  double rr = dot(env, r, r);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // q = A p. Remote p entries are plain shared reads; the runtime
    // bundles them into block fetches. Announcing the row's column
    // pattern up front lets the off-chunk blocks stream in while the
    // accumulation walks the local ones.
    env.phase_label("spmv");
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = vp.node_rank();
      p.prefetch(std::span<const uint64_t>(
          a.col_idx.data() + a.row_ptr[i], a.row_ptr[i + 1] - a.row_ptr[i]));
      double acc = 0.0;
      for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        acc += a.values[k] * p.get(a.col_idx[k]);
      }
      q.set(row0 + i, acc);
    });

    const double alpha = rr / dot(env, p, q);

    // x += alpha p;  r -= alpha q.
    env.phase_label("axpy");
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = row0 + vp.node_rank();
      x.add(i, alpha * p.get(i));
      r.add(i, -alpha * q.get(i));
    });

    const double rr_new = dot(env, r, r);
    out.residual_history.push_back(std::sqrt(rr_new));
    ++out.iterations;
    if (std::sqrt(rr_new) <= threshold) {
      out.converged = true;
      break;
    }
    const double beta = rr_new / rr;

    // p = r + beta p.
    env.phase_label("p_update");
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = row0 + vp.node_rank();
      p.set(i, r.get(i) + beta * p.get(i));
    });
    rr = rr_new;
  }
  return out;
}

}  // namespace ppm::apps::cg
