#include "apps/cg/cg_ppm.hpp"

#include <algorithm>
#include <cmath>

#include "apps/cg/trisolve.hpp"

namespace ppm::apps::cg {

PpmCgOutput cg_solve_ppm(Env& env, const ChimneyProblem& problem,
                         const CgOptions& options) {
  const uint64_t n = problem.unknowns();
  // All four vectors stay kBlock deliberately: reduce_dot() and
  // local_begin/local_end assume the contiguous block layout, and the chimney
  // matrix's banded structure keeps p-reads clustered near each node's
  // own chunk — there is no skewed hot set for the locality engine
  // (Distribution::kAdaptive) to exploit here. The graph kernels are the
  // owner-mapped showcase.
  auto x = env.global_array<double>(n);
  auto r = env.global_array<double>(n);
  auto p = env.global_array<double>(n);
  auto q = env.global_array<double>(n);

  // Owner-computes: this node's VPs handle its chunk of rows. The local
  // matrix rows are generated directly into node-local memory.
  const uint64_t row0 = x.local_begin();
  const uint64_t rows = x.local_end() - row0;
  const CsrMatrix a = build_chimney_matrix_rows(problem, row0, row0 + rows);
  const std::vector<double> b = build_chimney_rhs(problem);

  // One VP per row makes every shared access a separate runtime call; a
  // coarse group — a few lanes per core, each owning a contiguous row
  // sub-span — amortizes that overhead over whole spans: SpMV announces a
  // lane's column band as one prefetch_range() hint and writes its q
  // segment with one set_n(), and the vector phases move data through the
  // bulk read_n/set_n/add_n path (one range write entry per lane per
  // array instead of one entry per element). Committed results are
  // bit-identical to the per-element formulation — each element is
  // computed by exactly one lane with the same arithmetic, and the
  // miss-switching engine still overlaps lanes blocked on remote p
  // blocks with runnable ones.
  const uint64_t lanes =
      std::min<uint64_t>(rows, uint64_t{4} * env.cores_per_node());
  auto vps = env.ppm_do(lanes);
  std::vector<uint64_t> lane_first(lanes), lane_count(lanes);
  for (uint64_t l = 0; l < lanes; ++l) {
    lane_first[l] = l * rows / lanes;
    lane_count[l] = (l + 1) * rows / lanes - lane_first[l];
  }

  // Per-lane column extents, computed once: the chimney stencil's columns
  // sit inside a narrow band around the diagonal, so one [lo, hi) range
  // covers a lane's whole p-read set and prefetch_range() walks cache
  // blocks instead of paying a per-nonzero owner lookup in the hint
  // itself (interior lanes' bands are entirely local and skip the
  // runtime altogether).
  std::vector<uint64_t> col_lo(lanes, 0), col_hi(lanes, 0);
  for (uint64_t l = 0; l < lanes; ++l) {
    uint64_t lo = ~uint64_t{0}, hi = 0;
    for (uint64_t i = lane_first[l]; i < lane_first[l] + lane_count[l]; ++i) {
      for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        lo = std::min(lo, a.col_idx[k]);
        hi = std::max(hi, a.col_idx[k] + 1);
      }
    }
    if (hi > lo) {
      col_lo[l] = lo;
      col_hi[l] = hi;
    }
  }

  // Per-lane scratch, hoisted out of the iteration loop (lanes touch only
  // their own slot, so concurrent cores never share a buffer).
  std::vector<std::vector<double>> s1(lanes), s2(lanes), s3(lanes);
  for (uint64_t l = 0; l < lanes; ++l) {
    s1[l].resize(lane_count[l]);
    s2[l].resize(lane_count[l]);
    s3[l].resize(lane_count[l]);
  }

  // SpMV band scratch: the accumulation indexes p through one read_n of
  // the lane's whole column band instead of a runtime get() per nonzero.
  // Same committed values (read_n returns the same phase-start elements),
  // same wire traffic (prefetch_range already pulled every cache block in
  // the band), but ownership/bounds resolve once per band rather than 27
  // times per row — the per-element overhead behind the 1-node
  // gap_vs_mpi in BENCH_fig.json, where every access is local and the
  // runtime call is pure overhead.
  std::vector<std::vector<double>> band(lanes);
  for (uint64_t l = 0; l < lanes; ++l) {
    band[l].resize(col_hi[l] - col_lo[l]);
  }

  // r = p = b, x = 0. The r·r reduction rides this phase's commit
  // barrier (env.reduce_dot): each node folds its own chunk after the
  // commit applies and the partials travel on the barrier's dissemination
  // tokens — no separate allgather sweep, and the one registration serves
  // both b_norm and the first rr (the fetch-based formulation ran two
  // full dot() exchanges here).
  auto rr0_h = env.reduce_dot(r, r);
  env.phase_label("init");
  vps.global_phase([&](Vp& vp) {
    const uint64_t l = vp.node_rank();
    const uint64_t first = row0 + lane_first[l], count = lane_count[l];
    std::fill(s1[l].begin(), s1[l].end(), 0.0);
    x.set_n(first, count, s1[l].data());
    r.set_n(first, count, b.data() + first);
    p.set_n(first, count, b.data() + first);
  });

  const double rr0 = rr0_h.value();
  const double b_norm = std::sqrt(rr0);
  const double threshold =
      options.tolerance * (b_norm > 0 ? b_norm : 1.0);

  PpmCgOutput out{x, {}, 0, false};
  double rr = rr0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // q = A p. Remote p entries are plain shared reads; the runtime
    // bundles them into block fetches. Announcing the lane's column band
    // up front lets the off-chunk blocks stream in while the
    // accumulation walks the local ones. The p·q reduction registered
    // here resolves at this phase's commit, when q is freshly written —
    // the same committed values the fetch-based dot() read afterwards.
    auto pq_h = env.reduce_dot(p, q);
    env.phase_label("spmv");
    vps.global_phase([&](Vp& vp) {
      const uint64_t l = vp.node_rank();
      const uint64_t lo = col_lo[l];
      const double* pv = band[l].data();
      if (col_hi[l] > lo) {
        p.prefetch_range(lo, col_hi[l]);
        p.read_n(lo, col_hi[l] - lo, band[l].data());
      }
      double* qv = s1[l].data();
      for (uint64_t j = 0; j < lane_count[l]; ++j) {
        const uint64_t i = lane_first[l] + j;
        double acc = 0.0;
        for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
          acc += a.values[k] * pv[a.col_idx[k] - lo];
        }
        qv[j] = acc;
      }
      q.set_n(row0 + lane_first[l], lane_count[l], qv);
    });

    const double alpha = rr / pq_h.value();

    // x += alpha p;  r -= alpha q. The new r·r resolves at this commit.
    auto rr_h = env.reduce_dot(r, r);
    env.phase_label("axpy");
    vps.global_phase([&](Vp& vp) {
      const uint64_t l = vp.node_rank();
      const uint64_t first = row0 + lane_first[l], count = lane_count[l];
      double* pv = s1[l].data();
      double* qv = s2[l].data();
      double* acc = s3[l].data();
      p.read_n(first, count, pv);
      q.read_n(first, count, qv);
      for (uint64_t j = 0; j < count; ++j) acc[j] = alpha * pv[j];
      x.add_n(first, count, acc);
      for (uint64_t j = 0; j < count; ++j) acc[j] = -alpha * qv[j];
      r.add_n(first, count, acc);
    });

    const double rr_new = rr_h.value();
    out.residual_history.push_back(std::sqrt(rr_new));
    ++out.iterations;
    if (std::sqrt(rr_new) <= threshold) {
      out.converged = true;
      break;
    }
    const double beta = rr_new / rr;

    // p = r + beta p.
    env.phase_label("p_update");
    vps.global_phase([&](Vp& vp) {
      const uint64_t l = vp.node_rank();
      const uint64_t first = row0 + lane_first[l], count = lane_count[l];
      double* rv = s1[l].data();
      double* pv = s2[l].data();
      double* nv = s3[l].data();
      r.read_n(first, count, rv);
      p.read_n(first, count, pv);
      for (uint64_t j = 0; j < count; ++j) nv[j] = rv[j] + beta * pv[j];
      p.set_n(first, count, nv);
    });
    rr = rr_new;
  }
  return out;
}

}  // namespace ppm::apps::cg
