// Message-passing BFS baseline: level-synchronous frontier expansion with
// hand-coded update bundling — every iteration each rank collects the
// (vertex, level) updates destined for every other rank, ships them with
// one alltoallv, applies the incoming ones, and votes on termination.
#pragma once

#include "apps/graph/graph.hpp"
#include "mp/comm.hpp"

namespace ppm::apps::graph {

/// BFS hop distances from `source`; collective, every rank receives the
/// full distance vector.
std::vector<int64_t> bfs_mpi(mp::Comm& comm, const Graph& full,
                             uint64_t source);

}  // namespace ppm::apps::graph
