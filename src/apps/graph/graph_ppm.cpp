#include "apps/graph/graph_ppm.hpp"

#include <limits>

namespace ppm::apps::graph {

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max();

/// Vertices owned by this node under the chosen distribution, as global
/// ids, plus the matching adjacency rows.
struct Partition {
  std::vector<uint64_t> vertices;
  // adjacency[i] = neighbor list of vertices[i]
  std::vector<std::vector<uint64_t>> adjacency;
};

Partition partition_for(Env& env, const Graph& full,
                        const GlobalShared<int64_t>& owner_map) {
  Partition part;
  for (uint64_t v = 0; v < full.num_vertices; ++v) {
    if (owner_map.owner(v) != env.node_id()) continue;
    part.vertices.push_back(v);
    part.adjacency.emplace_back(
        full.adjacency.begin() + static_cast<int64_t>(full.row_ptr[v]),
        full.adjacency.begin() + static_cast<int64_t>(full.row_ptr[v + 1]));
  }
  return part;
}

/// Assemble the full contents of a small global array on every node.
std::vector<int64_t> collect_full(Env& env, GlobalShared<int64_t>& arr) {
  std::vector<int64_t> full;
  auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
  vps.global_phase([&](Vp&) {
    std::vector<uint64_t> idx(arr.size());
    for (uint64_t i = 0; i < arr.size(); ++i) idx[i] = i;
    full = arr.gather(idx);
  });
  env.broadcast(full, /*root=*/0);
  return full;
}

}  // namespace

std::vector<int64_t> bfs_ppm(Env& env, const Graph& full, uint64_t source,
                             Distribution dist) {
  const uint64_t n = full.num_vertices;
  auto level = env.global_array<int64_t>(n, dist);
  const Partition part = partition_for(env, full, level);

  // Initialize: everything unreached (kInf), the source at level 0.
  {
    auto init = env.ppm_do(part.vertices.size());
    init.global_phase([&](Vp& vp) {
      const uint64_t v = part.vertices[vp.node_rank()];
      level.set(v, v == source ? 0 : kInf);
    });
  }

  // Level-synchronous expansion with an explicit local frontier: one VP
  // per frontier vertex pushes L+1 to its neighbors (remote min_updates,
  // bundled by the runtime); the next frontier is the set of own vertices
  // whose committed level just became L+1.
  std::vector<uint64_t> frontier;  // positions into part.vertices
  for (size_t pos = 0; pos < part.vertices.size(); ++pos) {
    if (part.vertices[pos] == source) frontier.push_back(pos);
  }
  for (int64_t current = 0;; ++current) {
    auto vps = env.ppm_do(frontier.size());
    vps.global_phase([&](Vp& vp) {
      const uint64_t pos = frontier[vp.node_rank()];
      for (uint64_t w : part.adjacency[pos]) {
        level.min_update(w, current + 1);
      }
    });
    frontier.clear();
    for (size_t pos = 0; pos < part.vertices.size(); ++pos) {
      if (level.get(part.vertices[pos]) == current + 1) {
        frontier.push_back(pos);
      }
    }
    const uint64_t active = env.allreduce(
        static_cast<uint64_t>(frontier.size()),
        [](uint64_t a, uint64_t b) { return a + b; });
    if (active == 0) break;
  }

  auto result = collect_full(env, level);
  for (int64_t& d : result) {
    if (d == kInf) d = kUnreached;
  }
  return result;
}

std::vector<int64_t> components_ppm(Env& env, const Graph& full,
                                    Distribution dist) {
  const uint64_t n = full.num_vertices;
  auto label = env.global_array<int64_t>(n, dist);
  const Partition part = partition_for(env, full, label);

  auto vps = env.ppm_do(part.vertices.size());
  vps.global_phase([&](Vp& vp) {
    const uint64_t v = part.vertices[vp.node_rank()];
    label.set(v, static_cast<int64_t>(v));
  });

  // Push-style label propagation: every vertex offers its label to all
  // neighbors; min_update keeps the smallest. Fixpoint when no label
  // changed anywhere.
  for (int round = 0;; ++round) {
    if (round == 1) {
      // One propagation round has profiled the real access pattern; for
      // owner-mapped arrays, ask the locality engine to pull hot label
      // blocks toward their dominant readers at the next commit (no-op
      // for static layouts or when automatic migration is already on).
      env.rebalance(label);
    }
    uint64_t changed_local = 0;
    vps.global_phase([&](Vp& vp) {
      const uint64_t v = part.vertices[vp.node_rank()];
      const int64_t mine = label.get(v);
      const auto& nbrs = part.adjacency[vp.node_rank()];
      // Start the remote neighbor-label fetches before comparing, so the
      // round trips overlap this VP's scan (and other VPs' compute).
      label.prefetch(nbrs);
      for (uint64_t w : nbrs) {
        if (label.get(w) > mine) {
          label.min_update(w, mine);
          ++changed_local;
        }
      }
    });
    const uint64_t changed = env.allreduce(
        changed_local, [](uint64_t a, uint64_t b) { return a + b; });
    if (changed == 0) break;
  }
  return collect_full(env, label);
}

}  // namespace ppm::apps::graph
