// Distributed graph algorithms — the paper's Introduction names "graph
// algorithms" first among the unstructured applications that motivate PPM
// (high-volume random fine-grained access to neighbor state).
//
// Graph representation: CSR adjacency. Generators produce deterministic
// undirected graphs: a uniform random graph and an RMAT-style power-law
// graph (skewed degrees — the hard case for distribution).
#pragma once

#include <cstdint>
#include <vector>

namespace ppm::apps::graph {

inline constexpr int64_t kUnreached = -1;

/// CSR adjacency of an undirected graph (each edge stored both ways).
struct Graph {
  uint64_t num_vertices = 0;
  std::vector<uint64_t> row_ptr;  // num_vertices + 1
  std::vector<uint64_t> adjacency;

  uint64_t num_edges() const { return adjacency.size() / 2; }
  uint64_t degree(uint64_t v) const { return row_ptr[v + 1] - row_ptr[v]; }

  /// Adjacency of rows [begin, end) only (global neighbor ids) — what each
  /// node of a distributed implementation stores.
  Graph row_slice(uint64_t begin, uint64_t end) const;
};

/// Erdos–Renyi-style graph: each vertex draws ~avg_degree endpoints.
Graph make_uniform_graph(uint64_t vertices, double avg_degree,
                         uint64_t seed);

/// RMAT-style power-law graph (quadrant probabilities 0.45/0.22/0.22/0.11).
Graph make_rmat_graph(uint64_t vertices, double avg_degree, uint64_t seed);

/// Serial BFS: hop distance from `source` (kUnreached if unreachable).
std::vector<int64_t> bfs_serial(const Graph& graph, uint64_t source);

/// Serial connected components: per-vertex label = smallest vertex id in
/// its component (label propagation fixpoint).
std::vector<int64_t> components_serial(const Graph& graph);

}  // namespace ppm::apps::graph
