#include "apps/graph/graph.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::apps::graph {

namespace {

Graph from_edges(uint64_t vertices, std::vector<std::pair<uint64_t, uint64_t>>
                                        edges) {
  // Deduplicate, drop self-loops, symmetrize.
  std::vector<std::pair<uint64_t, uint64_t>> sym;
  sym.reserve(edges.size() * 2);
  for (auto [u, v] : edges) {
    if (u == v) continue;
    sym.emplace_back(u, v);
    sym.emplace_back(v, u);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  Graph g;
  g.num_vertices = vertices;
  g.row_ptr.assign(vertices + 1, 0);
  for (const auto& [u, v] : sym) ++g.row_ptr[u + 1];
  for (uint64_t i = 0; i < vertices; ++i) g.row_ptr[i + 1] += g.row_ptr[i];
  g.adjacency.resize(sym.size());
  std::vector<uint64_t> cursor(g.row_ptr.begin(), g.row_ptr.end() - 1);
  for (const auto& [u, v] : sym) g.adjacency[cursor[u]++] = v;
  return g;
}

}  // namespace

Graph Graph::row_slice(uint64_t begin, uint64_t end) const {
  PPM_CHECK(begin <= end && end <= num_vertices, "bad row slice");
  Graph out;
  out.num_vertices = num_vertices;
  const uint64_t k0 = row_ptr[begin];
  out.row_ptr.push_back(0);
  for (uint64_t v = begin; v < end; ++v) {
    out.row_ptr.push_back(row_ptr[v + 1] - k0);
  }
  out.adjacency.assign(adjacency.begin() + static_cast<int64_t>(k0),
                       adjacency.begin() + static_cast<int64_t>(row_ptr[end]));
  return out;
}

Graph make_uniform_graph(uint64_t vertices, double avg_degree,
                         uint64_t seed) {
  PPM_CHECK(vertices >= 2, "graph needs at least two vertices");
  Rng rng(seed);
  const auto edges_wanted =
      static_cast<uint64_t>(static_cast<double>(vertices) * avg_degree / 2);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(edges_wanted);
  for (uint64_t e = 0; e < edges_wanted; ++e) {
    edges.emplace_back(rng.next_below(vertices), rng.next_below(vertices));
  }
  return from_edges(vertices, std::move(edges));
}

Graph make_rmat_graph(uint64_t vertices, double avg_degree, uint64_t seed) {
  PPM_CHECK(vertices >= 2, "graph needs at least two vertices");
  // Round up to a power of two for the recursive quadrant construction;
  // endpoints beyond `vertices` are folded back with modulo.
  uint64_t side = 1;
  while (side < vertices) side <<= 1;
  Rng rng(seed);
  const auto edges_wanted =
      static_cast<uint64_t>(static_cast<double>(vertices) * avg_degree / 2);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(edges_wanted);
  for (uint64_t e = 0; e < edges_wanted; ++e) {
    uint64_t u = 0, v = 0;
    for (uint64_t bit = side >> 1; bit > 0; bit >>= 1) {
      const double p = rng.next_double();
      // (a, b, c, d) = (0.45, 0.22, 0.22, 0.11)
      if (p < 0.45) {
        // upper-left: nothing to add
      } else if (p < 0.67) {
        v |= bit;
      } else if (p < 0.89) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    edges.emplace_back(u % vertices, v % vertices);
  }
  return from_edges(vertices, std::move(edges));
}

std::vector<int64_t> bfs_serial(const Graph& g, uint64_t source) {
  PPM_CHECK(source < g.num_vertices, "bfs source out of range");
  std::vector<int64_t> dist(g.num_vertices, kUnreached);
  std::deque<uint64_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const uint64_t u = queue.front();
    queue.pop_front();
    for (uint64_t k = g.row_ptr[u]; k < g.row_ptr[u + 1]; ++k) {
      const uint64_t v = g.adjacency[k];
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<int64_t> components_serial(const Graph& g) {
  // Label propagation to a fixpoint: label(v) = min over component of v.
  std::vector<int64_t> label(g.num_vertices);
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    label[v] = static_cast<int64_t>(v);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint64_t u = 0; u < g.num_vertices; ++u) {
      for (uint64_t k = g.row_ptr[u]; k < g.row_ptr[u + 1]; ++k) {
        const uint64_t v = g.adjacency[k];
        if (label[v] < label[u]) {
          label[u] = label[v];
          changed = true;
        }
      }
    }
  }
  return label;
}

}  // namespace ppm::apps::graph
