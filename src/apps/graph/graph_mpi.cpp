#include "apps/graph/graph_mpi.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace ppm::apps::graph {

std::vector<int64_t> bfs_mpi(mp::Comm& comm, const Graph& full,
                             uint64_t source) {
  PPM_CHECK(source < full.num_vertices, "bfs source out of range");
  const uint64_t n = full.num_vertices;
  const auto ranks = static_cast<uint64_t>(comm.size());
  const uint64_t chunk = (n + ranks - 1) / ranks;
  const uint64_t begin =
      std::min(n, chunk * static_cast<uint64_t>(comm.rank()));
  const uint64_t end = std::min(n, begin + chunk);
  const Graph slice = full.row_slice(begin, end);
  auto owner_of = [&](uint64_t v) { return static_cast<int>(v / chunk); };

  std::vector<int64_t> local(end - begin,
                             std::numeric_limits<int64_t>::max());
  std::vector<uint64_t> frontier;  // local indices
  if (owner_of(source) == comm.rank()) {
    local[source - begin] = 0;
    frontier.push_back(source - begin);
  }

  for (int64_t level = 0;; ++level) {
    // Bundle the neighbor updates by destination rank.
    std::vector<std::vector<uint64_t>> outgoing(ranks);
    for (uint64_t lu : frontier) {
      for (uint64_t k = slice.row_ptr[lu]; k < slice.row_ptr[lu + 1]; ++k) {
        const uint64_t w = slice.adjacency[k];
        outgoing[static_cast<size_t>(owner_of(w))].push_back(w);
      }
    }
    const auto incoming = comm.alltoallv(outgoing);

    frontier.clear();
    for (const auto& batch : incoming) {
      for (uint64_t w : batch) {
        const uint64_t lw = w - begin;
        if (local[lw] == std::numeric_limits<int64_t>::max()) {
          local[lw] = level + 1;
          frontier.push_back(lw);
        }
      }
    }
    const auto active = comm.allreduce_value(
        static_cast<uint64_t>(frontier.size()),
        [](uint64_t a, uint64_t b) { return a + b; });
    if (active == 0) break;
  }

  // Assemble the full vector everywhere.
  const auto blocks = comm.allgatherv(std::span<const int64_t>(local));
  std::vector<int64_t> full_dist;
  full_dist.reserve(n);
  for (const auto& b : blocks) {
    full_dist.insert(full_dist.end(), b.begin(), b.end());
  }
  for (int64_t& d : full_dist) {
    if (d == std::numeric_limits<int64_t>::max()) d = kUnreached;
  }
  return full_dist;
}

}  // namespace ppm::apps::graph
