// PPM implementations of the graph algorithms: level-synchronous BFS and
// label-propagation connected components.
//
// Both are textbook phase programs: each vertex is a virtual processor,
// neighbor state lives in global shared arrays, and the push step is a
// commutative min_update on remote elements — exactly the "high-volume
// random fine-grained data accesses" the paper motivates, with all
// communication implicit.
//
// Pass Distribution::kAdaptive for the vertex-state arrays (with
// RuntimeOptions::adaptive_distribution, or relying on the rebalance()
// hint in components_ppm) to let the locality engine migrate hot blocks
// toward their dominant readers; results are bit-identical under every
// distribution.
#pragma once

#include "apps/graph/graph.hpp"
#include "core/ppm.hpp"

namespace ppm::apps::graph {

/// BFS hop distances from `source`. Collective; every node receives the
/// full distance vector. `full` is the whole graph (each node slices its
/// own rows; the paper's SPMD programs hold their partition locally).
std::vector<int64_t> bfs_ppm(Env& env, const Graph& full, uint64_t source,
                             Distribution dist = Distribution::kBlock);

/// Connected-component labels (smallest vertex id per component).
/// Collective; every node receives the full label vector.
std::vector<int64_t> components_ppm(
    Env& env, const Graph& full,
    Distribution dist = Distribution::kBlock);

}  // namespace ppm::apps::graph
