// Simulated machine bring-up: a networked cluster of manycore nodes.
//
// A Machine owns the simulation engine and the interconnect fabric and
// launches SPMD programs onto it. Two launch shapes are provided:
//   * run_per_core  — one fiber per (node, core); this is how the MPI-style
//     baselines run (one rank per core, as on the paper's Cray XT4);
//   * run_per_node  — one fiber per node (on core 0); this is how PPM
//     programs run (the PPM runtime manages the remaining cores itself).
//
// Fabric port map: ports 0..cores_per_node-1 belong to the per-core ranks;
// port cores_per_node is the node's runtime service port (used by the PPM
// runtime's communication engine).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace ppm::cluster {

struct MachineConfig {
  int nodes = 2;
  int cores_per_node = 4;
  net::LinkParams network{};
  net::LinkParams intranode{.latency_ns = 400,
                            .bytes_per_ns = 6.0,
                            .send_overhead_ns = 150,
                            .recv_overhead_ns = 150};
  net::FaultConfig faults{};  // deterministic delay/reorder injection
  /// Shared-backbone bandwidth for inter-node traffic (bytes/ns); 0 = off.
  /// See net::FabricConfig::backbone_bytes_per_ns. ppm::jobs turns this on
  /// so co-scheduled jobs on disjoint node sets contend for the fabric.
  double backbone_bytes_per_ns = 0.0;
  sim::EngineConfig engine{};
  /// Host threads for the parallel windowed simulator (docs/SIM.md).
  /// 0 (the default) keeps the classic single shared engine — exactly the
  /// historical sequential behavior. >= 1 switches to windowed mode: one
  /// Engine per simulated node, driven in conservative time windows on
  /// min(sim_threads, nodes) host threads. Every windowed thread count
  /// replays the same simulation bit-for-bit (sim_threads=1 is the
  /// reference); classic and windowed may order same-time events
  /// differently, so virtual times can differ between 0 and >= 1.
  /// Silently forced back to 0 when the config cannot be source-
  /// partitioned: backbone_bytes_per_ns > 0 (a machine-global
  /// serialization point) or network.latency_ns <= 0 (the lookahead must
  /// be positive).
  int sim_threads = 0;

  int total_cores() const { return nodes * cores_per_node; }
};

/// Identity of one simulated hardware thread.
struct Place {
  int node = 0;
  int core = 0;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  int nodes() const { return config_.nodes; }
  int cores_per_node() const { return config_.cores_per_node; }
  const MachineConfig& config() const { return config_; }

  /// The shared engine of the classic (sim_threads == 0) mode. Errors in
  /// windowed mode, where no single engine exists — per-node callers use
  /// engine_for_node() (valid in both modes).
  sim::Engine& engine();
  sim::Engine& engine_for_node(int node);
  net::Fabric& fabric() { return *fabric_; }

  /// True when this machine runs the windowed parallel simulator (the
  /// effective mode, after the config clamps described on
  /// MachineConfig::sim_threads).
  bool windowed() const { return !engines_.empty(); }
  /// Effective host-thread count: 0 in classic mode.
  int sim_threads() const { return sim_threads_; }
  /// Cumulative windowed-driver stats across runs (all zero in classic
  /// mode).
  const sim::WindowStats& window_stats() const { return window_stats_; }

  /// Port on which a node's runtime service listens.
  int service_port() const { return config_.cores_per_node; }

  /// Launch `body` once per (node, core) and run the simulation to
  /// completion. Throws on program error or deadlock.
  void run_per_core(const std::function<void(const Place&)>& body);

  /// Launch `body` once per node, on that node's core 0, and run the
  /// simulation to completion.
  void run_per_node(const std::function<void(int node)>& body);

  /// Spawn an extra fiber bound to a place (used by the PPM runtime for
  /// worker cores and service loops). Does not run the simulation.
  sim::Fiber::Id spawn_at(const Place& place, std::string name,
                          std::function<void()> body);

  /// Virtual time at which the most recent run() finished (max over all
  /// program fibers' completion times).
  int64_t last_run_duration_ns() const { return last_run_duration_ns_; }

 private:
  /// Drive the windowed engines to completion (WindowScheduler + fabric
  /// exchange), then perform the cross-engine deadlock check that
  /// Engine::run() does for the classic mode.
  void run_windowed();

  MachineConfig config_;
  std::unique_ptr<sim::Engine> engine_;                // classic mode only
  std::vector<std::unique_ptr<sim::Engine>> engines_;  // windowed: per node
  std::vector<sim::Engine*> engine_ptrs_;
  std::unique_ptr<sim::HostPool> pool_;
  std::unique_ptr<net::Fabric> fabric_;
  sim::WindowStats window_stats_;
  int sim_threads_ = 0;
  int64_t last_run_duration_ns_ = 0;
};

}  // namespace ppm::cluster
