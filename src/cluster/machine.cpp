#include "cluster/machine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ppm::cluster {

Machine::Machine(MachineConfig config) : config_(config) {
  PPM_CHECK(config_.nodes > 0, "machine needs at least one node");
  PPM_CHECK(config_.cores_per_node > 0,
            "machine needs at least one core per node");
  // Windowed mode needs source-partitionable timing; fall back to the
  // classic engine otherwise (see MachineConfig::sim_threads).
  int sim_threads = std::max(0, config_.sim_threads);
  if (config_.backbone_bytes_per_ns > 0.0 || config_.network.latency_ns <= 0) {
    sim_threads = 0;
  }
  sim_threads_ = std::min(sim_threads, config_.nodes);

  net::FabricConfig fc;
  fc.num_nodes = config_.nodes;
  fc.ports_per_node = config_.cores_per_node + 1;  // +1 runtime service port
  fc.network = config_.network;
  fc.intranode = config_.intranode;
  fc.faults = config_.faults;
  fc.backbone_bytes_per_ns = config_.backbone_bytes_per_ns;

  if (sim_threads_ == 0) {
    engine_ = std::make_unique<sim::Engine>(config_.engine);
    fabric_ = std::make_unique<net::Fabric>(*engine_, fc);
    return;
  }
  engines_.reserve(static_cast<size_t>(config_.nodes));
  engine_ptrs_.reserve(static_cast<size_t>(config_.nodes));
  for (int n = 0; n < config_.nodes; ++n) {
    engines_.push_back(std::make_unique<sim::Engine>(config_.engine));
    engine_ptrs_.push_back(engines_.back().get());
  }
  pool_ = std::make_unique<sim::HostPool>(sim_threads_);
  fabric_ = std::make_unique<net::Fabric>(engine_ptrs_, fc);
}

sim::Engine& Machine::engine() {
  PPM_CHECK(engine_ != nullptr,
            "Machine::engine() is classic-mode only; this machine runs the "
            "windowed simulator (sim_threads=%d) — use engine_for_node()",
            sim_threads_);
  return *engine_;
}

sim::Engine& Machine::engine_for_node(int node) {
  PPM_CHECK(node >= 0 && node < config_.nodes, "bad node %d", node);
  if (engine_ != nullptr) return *engine_;
  return *engines_[static_cast<size_t>(node)];
}

void Machine::run_windowed() {
  sim::WindowScheduler sched(engine_ptrs_, fabric_->min_cross_latency_ns(),
                             *pool_);
  sched.run(
      [this](int64_t horizon) { return fabric_->exchange_cross_traffic(horizon); });
  window_stats_.windows += sched.stats().windows;
  window_stats_.engine_activations += sched.stats().engine_activations;
  // All queues drained and the final exchange injected nothing; any fiber
  // still alive can never run again.
  std::string stuck;
  for (const auto& e : engines_) {
    if (e->all_fibers_finished()) continue;
    if (!stuck.empty()) stuck += ' ';
    stuck += e->stuck_fiber_names();
  }
  PPM_CHECK(stuck.empty(),
            "deadlock: fibers blocked with no pending events: %s",
            stuck.c_str());
}

void Machine::run_per_core(const std::function<void(const Place&)>& body) {
  int64_t t_start = 0;
  for (int n = 0; n < config_.nodes; ++n) {
    t_start = std::max(t_start, engine_for_node(n).engine_now_ns());
  }
  // One finish-time slot per node: each slot is written only by fibers of
  // that node's engine, so windowed mode needs no host synchronization.
  std::vector<int64_t> t_end(static_cast<size_t>(config_.nodes), t_start);
  for (int n = 0; n < config_.nodes; ++n) {
    sim::Engine& eng = engine_for_node(n);
    for (int c = 0; c < config_.cores_per_node; ++c) {
      const Place place{n, c};
      eng.spawn(
          strfmt("n%d.c%d", n, c),
          [&eng, body, place, end = &t_end[static_cast<size_t>(n)]] {
            body(place);
            *end = std::max(*end, eng.now_ns());
          },
          t_start);
    }
  }
  if (windowed()) {
    run_windowed();
  } else {
    engine_->run();
  }
  last_run_duration_ns_ =
      *std::max_element(t_end.begin(), t_end.end()) - t_start;
}

void Machine::run_per_node(const std::function<void(int node)>& body) {
  int64_t t_start = 0;
  for (int n = 0; n < config_.nodes; ++n) {
    t_start = std::max(t_start, engine_for_node(n).engine_now_ns());
  }
  std::vector<int64_t> t_end(static_cast<size_t>(config_.nodes), t_start);
  for (int n = 0; n < config_.nodes; ++n) {
    sim::Engine& eng = engine_for_node(n);
    eng.spawn(
        strfmt("n%d.main", n),
        [&eng, body, n, end = &t_end[static_cast<size_t>(n)]] {
          body(n);
          *end = std::max(*end, eng.now_ns());
        },
        t_start);
  }
  if (windowed()) {
    run_windowed();
  } else {
    engine_->run();
  }
  last_run_duration_ns_ =
      *std::max_element(t_end.begin(), t_end.end()) - t_start;
}

sim::Fiber::Id Machine::spawn_at(const Place& place, std::string name,
                                 std::function<void()> body) {
  PPM_CHECK(place.node >= 0 && place.node < config_.nodes &&
                place.core >= 0 && place.core < config_.cores_per_node,
            "spawn_at: bad place n%d.c%d", place.node, place.core);
  sim::Engine& eng = engine_for_node(place.node);
  int64_t start;
  sim::Engine* cur = sim::current_engine();
  if (cur != nullptr && cur->on_fiber()) {
    PPM_CHECK(cur == &eng,
              "windowed spawn_at: fiber on another engine cannot spawn onto "
              "node %d",
              place.node);
    start = cur->now_ns();
  } else {
    start = eng.engine_now_ns();
  }
  return eng.spawn(std::move(name), std::move(body), start);
}

}  // namespace ppm::cluster
