#include "cluster/machine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ppm::cluster {

Machine::Machine(MachineConfig config) : config_(config) {
  PPM_CHECK(config_.nodes > 0, "machine needs at least one node");
  PPM_CHECK(config_.cores_per_node > 0,
            "machine needs at least one core per node");
  engine_ = std::make_unique<sim::Engine>(config_.engine);
  net::FabricConfig fc;
  fc.num_nodes = config_.nodes;
  fc.ports_per_node = config_.cores_per_node + 1;  // +1 runtime service port
  fc.network = config_.network;
  fc.intranode = config_.intranode;
  fc.faults = config_.faults;
  fc.backbone_bytes_per_ns = config_.backbone_bytes_per_ns;
  fabric_ = std::make_unique<net::Fabric>(*engine_, fc);
}

void Machine::run_per_core(const std::function<void(const Place&)>& body) {
  const int64_t t_start = engine_->engine_now_ns();
  int64_t t_end = t_start;
  for (int n = 0; n < config_.nodes; ++n) {
    for (int c = 0; c < config_.cores_per_node; ++c) {
      const Place place{n, c};
      engine_->spawn(
          strfmt("n%d.c%d", n, c),
          [this, body, place, &t_end] {
            body(place);
            t_end = std::max(t_end, engine_->now_ns());
          },
          t_start);
    }
  }
  engine_->run();
  last_run_duration_ns_ = t_end - t_start;
}

void Machine::run_per_node(const std::function<void(int node)>& body) {
  const int64_t t_start = engine_->engine_now_ns();
  int64_t t_end = t_start;
  for (int n = 0; n < config_.nodes; ++n) {
    engine_->spawn(
        strfmt("n%d.main", n),
        [this, body, n, &t_end] {
          body(n);
          t_end = std::max(t_end, engine_->now_ns());
        },
        t_start);
  }
  engine_->run();
  last_run_duration_ns_ = t_end - t_start;
}

sim::Fiber::Id Machine::spawn_at(const Place& place, std::string name,
                                 std::function<void()> body) {
  PPM_CHECK(place.node >= 0 && place.node < config_.nodes &&
                place.core >= 0 && place.core < config_.cores_per_node,
            "spawn_at: bad place n%d.c%d", place.node, place.core);
  const int64_t start =
      engine_->on_fiber() ? engine_->now_ns() : engine_->engine_now_ns();
  return engine_->spawn(std::move(name), std::move(body), start);
}

}  // namespace ppm::cluster
