#include "model/model.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "cluster/machine.hpp"
#include "util/error.hpp"

namespace ppm::model {

namespace {

/// PMNF exponent grid. Small on purpose: with a handful of observations a
/// richer hypothesis space buys variance, not insight (Extra-P's lesson).
constexpr double kExponents[] = {-1.0, -0.5, 0.0,     1.0 / 3.0, 0.5,
                                 2.0 / 3.0, 1.0, 4.0 / 3.0, 1.5, 2.0};
constexpr int kLogPowers[] = {0, 1, 2};

double shape_basis(double n, double exponent, int log_power) {
  double v = std::pow(n, exponent);
  if (log_power != 0) v *= std::pow(std::log2(n), log_power);
  return v;
}

/// Closed-form least squares of y = a + b*x. Degenerate x (constant)
/// returns the mean with b = 0.
void ls_ab(std::span<const double> xs, std::span<const double> ys,
           double* a, double* b) {
  const double m = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t k = 0; k < xs.size(); ++k) {
    sx += xs[k];
    sy += ys[k];
    sxx += xs[k] * xs[k];
    sxy += xs[k] * ys[k];
  }
  const double det = m * sxx - sx * sx;
  if (std::abs(det) < 1e-12 * std::max(1.0, sxx)) {
    *a = sy / m;
    *b = 0.0;
    return;
  }
  *b = (m * sxy - sx * sy) / det;
  *a = (sy - *b * sx) / m;
}

/// Solve the symmetric linear system M x = r in place (Gaussian
/// elimination with partial pivoting). Dimensions are tiny (<= kTerms).
bool solve_inplace(std::vector<std::vector<double>>& m,
                   std::vector<double>& r) {
  const size_t n = r.size();
  for (size_t p = 0; p < n; ++p) {
    size_t piv = p;
    for (size_t q = p + 1; q < n; ++q) {
      if (std::abs(m[q][p]) > std::abs(m[piv][p])) piv = q;
    }
    if (std::abs(m[piv][p]) < 1e-300) return false;
    std::swap(m[p], m[piv]);
    std::swap(r[p], r[piv]);
    for (size_t q = p + 1; q < n; ++q) {
      const double f = m[q][p] / m[p][p];
      for (size_t c = p; c < n; ++c) m[q][c] -= f * m[p][c];
      r[q] -= f * r[p];
    }
  }
  for (size_t p = n; p-- > 0;) {
    double s = r[p];
    for (size_t c = p + 1; c < n; ++c) s -= m[p][c] * r[c];
    r[p] = s / m[p][p];
  }
  return true;
}

int dissemination_depth(double nodes) {
  int depth = 0;
  for (double span = 1.0; span < nodes; span *= 2.0) ++depth;
  return depth < 1 ? 1 : depth;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out.append(buf, static_cast<size_t>(n));
}

}  // namespace

double Shape::eval(double n) const {
  if (exponent == 0.0 && log_power == 0) return a;
  return a + b * shape_basis(n, exponent, log_power);
}

std::string Shape::formula() const {
  std::string out;
  if (exponent == 0.0 && log_power == 0) {
    appendf(out, "%.6g", a);
    return out;
  }
  appendf(out, "%.6g + %.6g*N^%.2f", a, b, exponent);
  if (log_power != 0) appendf(out, "*log2(N)^%d", log_power);
  return out;
}

Shape fit_shape(std::span<const double> ns, std::span<const double> ys) {
  PPM_CHECK(ns.size() == ys.size(), "fit_shape: ns/ys size mismatch");
  const size_t m = ns.size();
  Shape best;
  if (m == 0) return best;
  {  // constant fallback, also the m < 3 answer
    double s = 0;
    for (double y : ys) s += y;
    best.a = s / static_cast<double>(m);
  }
  if (m < 3) return best;

  double best_key = -1.0;
  std::vector<double> xs(m), xs2(m - 1), ys2(m - 1);
  for (double exponent : kExponents) {
    for (int log_power : kLogPowers) {
      if (exponent == 0.0 && log_power == 0) {
        // The constant hypothesis: basis identically zero.
        for (size_t k = 0; k < m; ++k) xs[k] = 0.0;
      } else {
        for (size_t k = 0; k < m; ++k) {
          xs[k] = shape_basis(ns[k], exponent, log_power);
        }
      }
      // Leave-one-out cross-validation error of the hypothesis.
      double cv = 0.0;
      for (size_t leave = 0; leave < m; ++leave) {
        size_t w = 0;
        for (size_t k = 0; k < m; ++k) {
          if (k == leave) continue;
          xs2[w] = xs[k];
          ys2[w] = ys[k];
          ++w;
        }
        double a, b;
        ls_ab(std::span<const double>(xs2.data(), w),
              std::span<const double>(ys2.data(), w), &a, &b);
        const double err = a + b * xs[leave] - ys[leave];
        cv += err * err;
      }
      // Mild simplicity preference: near-tied hypotheses resolve toward
      // small exponents and no log factors.
      const double key =
          cv * (1.0 + 0.02 * (std::abs(exponent) + 0.5 * log_power));
      if (best_key < 0.0 || key < best_key) {
        best_key = key;
        ls_ab(xs, ys, &best.a, &best.b);
        best.exponent = exponent;
        best.log_power = log_power;
        if (best.b == 0.0) {  // degenerate: normalize to the constant form
          best.exponent = 0.0;
          best.log_power = 0;
        }
      }
    }
  }
  return best;
}

MachineCosts MachineCosts::from_config(const cluster::MachineConfig& cfg) {
  MachineCosts c;
  c.latency_ns = static_cast<double>(cfg.network.latency_ns);
  c.bytes_per_ns = cfg.network.bytes_per_ns;
  c.send_overhead_ns = static_cast<double>(cfg.network.send_overhead_ns);
  c.recv_overhead_ns = static_cast<double>(cfg.network.recv_overhead_ns);
  return c;
}

Observation observe(int nodes, int cores, const RunResult& r) {
  PPM_CHECK(r.trace_summary.events != 0,
            "model::observe requires a traced run (RuntimeOptions::trace)");
  Observation o;
  o.nodes = nodes;
  o.cores = cores;
  o.vtime_ns = r.duration_ns;
  o.messages = r.network_messages;
  o.bytes = r.network_bytes;
  o.fetches = r.remote_blocks_fetched;
  o.stall_ns = r.fetch_stall_ns;
  // Counters sum per-node increments; phases run on every node in
  // lockstep, so divide back to the per-node phase count the barrier term
  // scales with.
  o.global_phases = nodes > 0 ? r.global_phases / nodes : r.global_phases;
  o.node_phases = nodes > 0 ? r.node_phases / nodes : r.node_phases;
  for (const auto& p : r.trace_summary.phases) {
    o.compute_critical_ns += p.compute_max_ns;
    o.commit_critical_ns += p.commit_max_ns;
  }
  o.accums_executed = r.accums_executed;
  o.reduction_bytes_saved = r.reduction_bytes_saved;
  return o;
}

std::vector<double> term_drivers(const MachineCosts& costs, double nodes,
                                 double compute_critical_ns, double messages,
                                 double bytes, double fetches,
                                 double stall_ns, double global_phases) {
  const double sw = costs.send_overhead_ns + costs.recv_overhead_ns;
  const double depth = dissemination_depth(nodes);
  return {
      // compute: the critical-path compute legs, straight time.
      compute_critical_ns,
      // fetch_rt: each remote block fetch on the average node pays a
      // round trip (request + response) plus both software overheads
      // twice.
      (fetches / nodes) * (2.0 * costs.latency_ns + 2.0 * sw),
      // wire: this node's share of the byte volume, serialized at link
      // bandwidth.
      (bytes / nodes) / costs.bytes_per_ns,
      // msg_sw: per-message software cost of this node's share of the
      // message count.
      (messages / nodes) * sw,
      // stall_node: residual per-node fetch stall the fetch_rt term's
      // idealized round trips do not capture (queueing, convoying).
      stall_ns / nodes,
      // barrier: every global phase commits through an O(log N)
      // dissemination barrier; each round is one message hop.
      global_phases * depth * (costs.latency_ns + sw),
  };
}

Model fit(std::span<const Observation> obs, const MachineCosts& costs) {
  PPM_CHECK(obs.size() >= 3, "model::fit needs >= 3 observations");
  Model mdl;
  mdl.costs = costs;
  mdl.cores = obs[0].cores;
  for (const auto& o : obs) {
    PPM_CHECK(o.cores == mdl.cores,
              "model::fit: observations mix cores_per_node");
    mdl.fit_nodes.push_back(o.nodes);
  }

  // Layer 1: PMNF shape per counter.
  const size_t m = obs.size();
  std::vector<double> ns(m), ys(m);
  for (size_t k = 0; k < m; ++k) ns[k] = static_cast<double>(obs[k].nodes);
  auto fit_counter = [&](size_t idx, auto getter) {
    for (size_t k = 0; k < m; ++k) {
      ys[k] = static_cast<double>(getter(obs[k]));
    }
    mdl.counters[idx] = fit_shape(ns, ys);
  };
  fit_counter(0, [](const Observation& o) { return o.compute_critical_ns; });
  fit_counter(1, [](const Observation& o) { return o.messages; });
  fit_counter(2, [](const Observation& o) { return o.bytes; });
  fit_counter(3, [](const Observation& o) { return o.fetches; });
  fit_counter(4, [](const Observation& o) { return o.stall_ns; });
  fit_counter(5, [](const Observation& o) { return o.global_phases; });
  fit_counter(6, [](const Observation& o) { return o.accums_executed; });
  fit_counter(7,
              [](const Observation& o) { return o.reduction_bytes_saved; });

  // Layer 2: ridge-regularized NNLS of vtime over the analytic terms,
  // pulled toward the physical prior. Measured drivers (not the shapes)
  // feed the fit; shapes only extrapolate.
  static const double kPriors[kTerms] = {1.0, 1.0, 1.0, 1.0, 0.5, 1.0};
  constexpr double kLambda = 0.05;
  std::vector<std::vector<double>> a(m);
  std::vector<double> y(m);
  for (size_t r = 0; r < m; ++r) {
    const Observation& o = obs[r];
    a[r] = term_drivers(costs, o.nodes,
                        static_cast<double>(o.compute_critical_ns),
                        static_cast<double>(o.messages),
                        static_cast<double>(o.bytes),
                        static_cast<double>(o.fetches),
                        static_cast<double>(o.stall_ns),
                        static_cast<double>(o.global_phases));
    y[r] = static_cast<double>(o.vtime_ns);
  }
  double ata[kTerms][kTerms];
  double aty[kTerms];
  double colnorm[kTerms];
  for (size_t i = 0; i < kTerms; ++i) {
    aty[i] = 0;
    colnorm[i] = 0;
    for (size_t j = 0; j < kTerms; ++j) ata[i][j] = 0;
    for (size_t r = 0; r < m; ++r) {
      aty[i] += a[r][i] * y[r];
      colnorm[i] += a[r][i] * a[r][i];
      for (size_t j = 0; j < kTerms; ++j) ata[i][j] += a[r][i] * a[r][j];
    }
    if (colnorm[i] < 1e-18) colnorm[i] = 1e-18;
  }
  bool active[kTerms];
  double coeff[kTerms];
  for (size_t i = 0; i < kTerms; ++i) {
    active[i] = true;
    coeff[i] = kPriors[i];
  }
  for (int pass = 0; pass < 2 * static_cast<int>(kTerms); ++pass) {
    std::vector<size_t> idx;
    for (size_t i = 0; i < kTerms; ++i) {
      if (active[i]) idx.push_back(i);
    }
    if (idx.empty()) break;
    std::vector<std::vector<double>> mm(idx.size(),
                                        std::vector<double>(idx.size()));
    std::vector<double> rhs(idx.size());
    for (size_t p = 0; p < idx.size(); ++p) {
      for (size_t q = 0; q < idx.size(); ++q) {
        mm[p][q] = ata[idx[p]][idx[q]];
      }
      mm[p][p] += kLambda * colnorm[idx[p]];
      rhs[p] = aty[idx[p]] + kLambda * colnorm[idx[p]] * kPriors[idx[p]];
    }
    if (!solve_inplace(mm, rhs)) break;
    for (size_t i = 0; i < kTerms; ++i) coeff[i] = 0.0;
    for (size_t p = 0; p < idx.size(); ++p) coeff[idx[p]] = rhs[p];
    // Active-set step of NNLS: drop every negative coefficient and
    // re-solve on the survivors.
    bool dropped = false;
    for (size_t i = 0; i < kTerms; ++i) {
      if (active[i] && coeff[i] < 0.0) {
        active[i] = false;
        coeff[i] = 0.0;
        dropped = true;
      }
    }
    if (!dropped) break;
  }
  mdl.terms.resize(kTerms);
  for (size_t i = 0; i < kTerms; ++i) {
    mdl.terms[i] = {kTermNames[i], coeff[i], kPriors[i]};
  }

  for (size_t r = 0; r < m; ++r) {
    double pred = 0;
    for (size_t i = 0; i < kTerms; ++i) pred += coeff[i] * a[r][i];
    mdl.fit_rel_err.push_back(y[r] > 0 ? pred / y[r] - 1.0 : 0.0);
  }
  return mdl;
}

Prediction Model::predict(int nodes) const {
  PPM_CHECK(nodes >= 2, "model predictions need >= 2 nodes");
  const double n = static_cast<double>(nodes);
  auto counter = [&](size_t idx) {
    return std::max(0.0, counters[idx].eval(n));
  };
  Prediction p;
  p.nodes = nodes;
  const double compute = counter(0);
  p.messages = counter(1);
  p.bytes = counter(2);
  p.fetches = counter(3);
  p.stall_ns = counter(4);
  const double gph = counter(5);
  p.accums_executed = counter(6);
  p.reduction_bytes_saved = counter(7);
  const std::vector<double> drivers = term_drivers(
      costs, n, compute, p.messages, p.bytes, p.fetches, p.stall_ns, gph);
  p.term_ns.resize(kTerms);
  for (size_t i = 0; i < kTerms; ++i) {
    p.term_ns[i] = terms[i].coefficient * drivers[i];
    p.vtime_ns += p.term_ns[i];
  }
  return p;
}

std::string Model::to_string() const {
  std::string out;
  out += "performance model (ppm::model):\n";
  out += "  counter shapes d(N) fit at N = {";
  for (size_t i = 0; i < fit_nodes.size(); ++i) {
    appendf(out, "%s%d", i == 0 ? "" : ", ", fit_nodes[i]);
  }
  out += "}:\n";
  for (size_t i = 0; i < kCounters; ++i) {
    appendf(out, "    %-22s = %s\n", kCounterNames[i],
            counters[i].formula().c_str());
  }
  out += "  vtime terms (coefficient x analytic driver):\n";
  for (const auto& t : terms) {
    appendf(out, "    %-12s coeff %.4f (prior %.2f)\n", t.name.c_str(),
            t.coefficient, t.prior);
  }
  out += "  fit residuals (model vs measured):\n";
  for (size_t i = 0; i < fit_rel_err.size(); ++i) {
    appendf(out, "    N=%-4d %+.1f%%\n", fit_nodes[i],
            fit_rel_err[i] * 100.0);
  }
  return out;
}

}  // namespace ppm::model
