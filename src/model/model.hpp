// ppm::model — compositional performance model and what-if extrapolation
// (docs/OBSERVABILITY.md).
//
// The paper's headline figures are drawn at up to 9660 Franklin nodes —
// far beyond what the simulator can execute. This library closes the gap
// the Extra-P way: fit analytic cost terms from small traced runs, then
// evaluate the composed model at node counts never simulated.
//
// Two fitting layers:
//
//   1. *Counter shapes.* Every structural driver of a run — critical-path
//      compute, fabric messages, wire bytes, block fetches, fetch stall,
//      accumulate/reduction savings — is fit as d(N) = a + b·N^i·log2(N)^j
//      over a small exponent grid (the PMNF of the Extra-P line of work),
//      selected by leave-one-out cross-validation so four-to-seven
//      observations cannot buy a wiggly hypothesis.
//   2. *Time composition.* Virtual time is modeled as a non-negative
//      linear combination of analytic per-term costs built from those
//      drivers and the machine's link parameters: per-phase critical
//      compute, per-fetch round trips, wire-byte serialization, per-
//      message software overhead, per-node residual fetch stall, and the
//      commit barrier's O(log N) dissemination depth. Coefficients are
//      fit by ridge-regularized non-negative least squares pulled toward
//      the physical prior (coefficient 1 = the analytic cost is exactly
//      right), so the fit *corrects* the cost model instead of free-
//      fitting it — and a coefficient drifting between two fits names the
//      cost term that regressed (the drift oracle in tools/ci.sh).
//
// Everything here is a pure function of Observations; tests drive it with
// synthetic data of known shape.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/options.hpp"

namespace ppm::cluster {
struct MachineConfig;
}

namespace ppm::model {

/// One traced modeled run at a fixed node count: the structural counters
/// the model composes over, extracted from RunResult (+ trace_summary).
struct Observation {
  int nodes = 0;
  int cores = 0;
  int64_t vtime_ns = 0;
  uint64_t messages = 0;           // fabric messages
  uint64_t bytes = 0;              // fabric bytes
  uint64_t fetches = 0;            // remote blocks fetched
  uint64_t stall_ns = 0;           // VP fetch-stall time, summed over nodes
  uint64_t global_phases = 0;      // per node
  uint64_t node_phases = 0;        // per node
  int64_t compute_critical_ns = 0;  // sum of per-phase max compute legs
  int64_t commit_critical_ns = 0;   // sum of per-phase max commit legs
  uint64_t accums_executed = 0;
  uint64_t reduction_bytes_saved = 0;
};

/// Build an Observation from a collected run. Requires the run to have
/// been traced (RuntimeOptions::trace) — the critical-path split comes
/// from RunResult::trace_summary.
Observation observe(int nodes, int cores, const RunResult& r);

/// One fitted counter hypothesis: d(N) = a + b · N^exponent · log2(N)^
/// log_power. exponent == 0 && log_power == 0 encodes the constant model
/// (b folded away).
struct Shape {
  double a = 0.0;
  double b = 0.0;
  double exponent = 0.0;
  int log_power = 0;

  /// Evaluate at node count n (n >= 1). Not clamped; counter users clamp
  /// to >= 0 themselves.
  double eval(double n) const;
  /// e.g. "123.4 + 5.6*N^0.50*log2(N)^1" or "123.4" for the constant fit.
  std::string formula() const;
};

/// Least-squares PMNF fit of (ns, ys) with leave-one-out CV model
/// selection. ns must all be >= 1 and hold at least two distinct values
/// (with fewer the constant model is returned).
Shape fit_shape(std::span<const double> ns, std::span<const double> ys);

/// Per-unit analytic costs of the simulated machine, the constants the
/// composed terms are built from.
struct MachineCosts {
  double latency_ns = 5'000;
  double bytes_per_ns = 2.0;
  double send_overhead_ns = 500;
  double recv_overhead_ns = 500;

  static MachineCosts from_config(const cluster::MachineConfig& cfg);
};

/// One composed cost term: fitted multiplier on an analytic driver.
struct CostTerm {
  std::string name;
  double coefficient = 1.0;  // fitted (>= 0)
  double prior = 1.0;        // ridge target ("the analytic cost is right")
};

/// Model evaluation at one node count.
struct Prediction {
  int nodes = 0;
  double vtime_ns = 0;
  double messages = 0;
  double bytes = 0;
  double fetches = 0;
  double stall_ns = 0;
  double accums_executed = 0;
  double reduction_bytes_saved = 0;
  /// Per-term share of vtime_ns, aligned with Model::terms.
  std::vector<double> term_ns;
};

/// Names of the counter shapes a Model carries, in storage order.
inline constexpr const char* kCounterNames[] = {
    "compute_critical_ns", "messages", "bytes", "fetches",
    "stall_ns",            "global_phases", "accums_executed",
    "reduction_bytes_saved"};
inline constexpr size_t kCounters = 8;

/// Names of the composed vtime terms, in storage order.
inline constexpr const char* kTermNames[] = {
    "compute", "fetch_rt", "wire", "msg_sw", "stall_node", "barrier"};
inline constexpr size_t kTerms = 6;

struct Model {
  MachineCosts costs;
  int cores = 0;
  std::vector<int> fit_nodes;
  Shape counters[kCounters];  // indexed like kCounterNames
  std::vector<CostTerm> terms;  // kTerms entries, kTermNames order
  /// Relative fit residual (model/measured - 1) per fit observation.
  std::vector<double> fit_rel_err;

  /// Evaluate the composed model at an arbitrary node count (>= 2).
  Prediction predict(int nodes) const;
  /// Human-readable report: shapes, coefficients, fit residuals.
  std::string to_string() const;
};

/// Fit the full model from traced modeled observations (>= 3, distinct
/// node counts, same cores). Deterministic: same observations, same model.
Model fit(std::span<const Observation> obs, const MachineCosts& costs);

/// The analytic per-term drivers (ns each) the composition uses, for one
/// set of counter values at node count n. Exposed for tests and for the
/// drift oracle's documentation; returns kTerms values in kTermNames
/// order.
std::vector<double> term_drivers(const MachineCosts& costs, double nodes,
                                 double compute_critical_ns, double messages,
                                 double bytes, double fetches,
                                 double stall_ns, double global_phases);

}  // namespace ppm::model
