// Simulated cluster interconnect.
//
// The fabric connects (node, port) endpoints. Port assignment is owned by
// the layers above: the message-passing library uses one port per simulated
// core (one "rank" per core, as on the paper's Cray XT4), and the PPM
// runtime uses one dedicated service port per node.
//
// Timing follows a LogGP-style model:
//   * per-message sender software overhead (charged to the sending fiber's
//     CPU via sim::advance),
//   * egress serialization — a node's NIC transmits one message at a time,
//     occupying the link for bytes/bandwidth. This is what makes many cores
//     of one node *contend* for the network, an effect the paper's runtime
//     explicitly schedules around;
//   * wire latency;
//   * ingress serialization at the destination NIC;
//   * per-message receiver software overhead.
// Messages between endpoints of the same node travel a separate intra-node
// fabric (lower latency, higher bandwidth, no NIC occupancy) modeling
// shared-memory transports of MPI implementations — still paying a
// per-message software cost, which the paper calls out (its SmartMap
// footnote).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ppm::trace {
class Recorder;
}

namespace ppm::net {

struct LinkParams {
  int64_t latency_ns = 5'000;        // wire latency per message
  double bytes_per_ns = 2.0;          // bandwidth (2 bytes/ns = 2 GB/s)
  int64_t send_overhead_ns = 500;     // sender-side software cost
  int64_t recv_overhead_ns = 500;     // receiver-side software cost
};

/// Deterministic message-level fault injection (used by ppm::stress).
///
/// With delay_jitter on, every message is enqueued at its (possibly
/// jittered) delivery time instead of at send time, so endpoints observe
/// arrivals in delivery-time order: messages from different sources — and
/// different ports of one source — reorder freely against each other.
/// Delivery between one (src node, dst node, dst port) pair stays FIFO
/// (jittered times are clamped to the pair's previous delivery), matching
/// the in-order-per-pair contract real transports give and the runtime's
/// bundle fragment protocol assumes. All randomness comes from `seed`, so
/// a faulty schedule replays exactly.
struct FaultConfig {
  bool delay_jitter = false;
  uint64_t seed = 0;
  double delay_probability = 0.25;      // chance a message is delayed
  int64_t max_extra_delay_ns = 100'000; // uniform extra delay in [0, max]
};

struct FabricConfig {
  int num_nodes = 1;
  int ports_per_node = 1;
  LinkParams network{};  // inter-node path (through the NICs)
  LinkParams intranode{.latency_ns = 400,
                       .bytes_per_ns = 6.0,
                       .send_overhead_ns = 150,
                       .recv_overhead_ns = 150};
  FaultConfig faults{};
  /// Shared-backbone bandwidth (bytes/ns) every inter-node message must
  /// serialize through after leaving its egress NIC. 0 disables the stage
  /// entirely (the default — timing is then bit-identical to the
  /// pre-backbone model). With it on, traffic between disjoint node sets
  /// contends: co-scheduled jobs slow each other down measurably, which is
  /// what ppm::jobs quantifies via FabricStats::per_node backbone_wait_ns.
  double backbone_bytes_per_ns = 0.0;
};

struct Message {
  int32_t src_node = 0;
  int32_t src_port = 0;
  int32_t dst_node = 0;
  int32_t dst_port = 0;
  uint64_t kind = 0;  // multiplexing tag interpreted by the layer above
  Bytes payload;
};

/// Aggregate traffic accounting, queryable by benches and tests.
struct FabricStats {
  Counter inter_messages;
  Counter inter_bytes;
  Counter intra_messages;
  Counter intra_bytes;

  /// Per-source-node inter-node traffic, indexed by src node id. Sized by
  /// the Fabric constructor. backbone_wait_ns accumulates the time this
  /// node's messages queued behind other traffic at the shared backbone
  /// (always 0 when FabricConfig::backbone_bytes_per_ns == 0). ppm::jobs
  /// attributes fabric traffic to co-scheduled jobs by taking deltas of
  /// these rows over each job's node allocation and run window.
  struct NodeTraffic {
    uint64_t tx_messages = 0;
    uint64_t tx_bytes = 0;
    uint64_t backbone_wait_ns = 0;
  };
  std::vector<NodeTraffic> per_node;

  void reset() {
    inter_messages.reset();
    inter_bytes.reset();
    intra_messages.reset();
    intra_bytes.reset();
    for (auto& n : per_node) n = NodeTraffic{};
  }
};

/// Receiving side of a (node, port) address: a FIFO of delivered messages.
class Endpoint {
 public:
  Endpoint(sim::Engine& engine, int node, int port)
      : node_(node), port_(port), inbox_(engine) {}

  /// Blocking receive (fiber only).
  Message recv() { return inbox_.pop(); }

  /// Non-blocking receive.
  bool try_recv(Message* out) { return inbox_.try_pop(out); }

  bool has_pending() const { return !inbox_.empty(); }
  int node() const { return node_; }
  int port() const { return port_; }

 private:
  friend class Fabric;
  int node_;
  int port_;
  sim::Channel<Message> inbox_;
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, FabricConfig config);

  /// Send from the current fiber. Charges sender software overhead to the
  /// calling fiber, then schedules delivery into the destination endpoint.
  void send(Message msg);

  Endpoint& endpoint(int node, int port);

  const FabricConfig& config() const { return config_; }
  const FabricStats& stats() const { return stats_; }
  FabricStats& mutable_stats() { return stats_; }

  /// Virtual time at which a `bytes`-sized inter-node message completes,
  /// ignoring contention — useful for tests and analytic baselines.
  int64_t uncontended_network_time_ns(size_t bytes) const;

  /// Attach (or detach, with nullptr) a ppm::trace recorder; every send
  /// then records a kMsgSend span (send time -> delivery time, with kind/
  /// bytes/addressing and fault-delay attribution). Null by default: the
  /// hook is one never-taken branch per send.
  void set_trace_recorder(trace::Recorder* recorder) { tracer_ = recorder; }

 private:
  sim::Engine& engine_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  // node-major
  std::vector<int64_t> egress_free_ns_;   // per node
  std::vector<int64_t> ingress_free_ns_;  // per node
  int64_t backbone_free_ns_ = 0;          // shared backbone (see config)
  FabricStats stats_;
  // Fault injection (see FaultConfig): jitter randomness and the per
  // (src node, dst node, dst port) delivery floor that keeps pairwise FIFO.
  Rng fault_rng_;
  std::unordered_map<uint64_t, int64_t> fault_floor_;
  trace::Recorder* tracer_ = nullptr;
};

}  // namespace ppm::net
