// Simulated cluster interconnect.
//
// The fabric connects (node, port) endpoints. Port assignment is owned by
// the layers above: the message-passing library uses one port per simulated
// core (one "rank" per core, as on the paper's Cray XT4), and the PPM
// runtime uses one dedicated service port per node.
//
// Timing follows a LogGP-style model:
//   * per-message sender software overhead (charged to the sending fiber's
//     CPU via sim::advance),
//   * egress serialization — a node's NIC transmits one message at a time,
//     occupying the link for bytes/bandwidth. This is what makes many cores
//     of one node *contend* for the network, an effect the paper's runtime
//     explicitly schedules around;
//   * wire latency;
//   * ingress serialization at the destination NIC;
//   * per-message receiver software overhead.
// Messages between endpoints of the same node travel a separate intra-node
// fabric (lower latency, higher bandwidth, no NIC occupancy) modeling
// shared-memory transports of MPI implementations — still paying a
// per-message software cost, which the paper calls out (its SmartMap
// footnote).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ppm::trace {
class Recorder;
}

namespace ppm::net {

struct LinkParams {
  int64_t latency_ns = 5'000;        // wire latency per message
  double bytes_per_ns = 2.0;          // bandwidth (2 bytes/ns = 2 GB/s)
  int64_t send_overhead_ns = 500;     // sender-side software cost
  int64_t recv_overhead_ns = 500;     // receiver-side software cost
};

/// Deterministic message-level fault injection (used by ppm::stress).
///
/// With delay_jitter on, every message is enqueued at its (possibly
/// jittered) delivery time instead of at send time, so endpoints observe
/// arrivals in delivery-time order: messages from different sources — and
/// different ports of one source — reorder freely against each other.
/// Delivery between one (src node, dst node, dst port) pair stays FIFO
/// (jittered times are clamped to the pair's previous delivery), matching
/// the in-order-per-pair contract real transports give and the runtime's
/// bundle fragment protocol assumes. All randomness comes from `seed`, so
/// a faulty schedule replays exactly.
struct FaultConfig {
  bool delay_jitter = false;
  uint64_t seed = 0;
  double delay_probability = 0.25;      // chance a message is delayed
  int64_t max_extra_delay_ns = 100'000; // uniform extra delay in [0, max]
  /// Test-only: shift every inter-node arrival by this many ns (may be
  /// negative) AFTER jitter and the pairwise-FIFO clamp. A negative warp
  /// can push an arrival below the windowed driver's conservative horizon;
  /// the exchange step then re-windows it (clamps the arrival up to the
  /// completed horizon, counting FabricStats::rewindowed) instead of ever
  /// delivering into an engine's past. Exercised by tests/sim_parallel_
  /// test.cpp; leave at 0 otherwise.
  int64_t test_arrival_warp_ns = 0;
};

struct FabricConfig {
  int num_nodes = 1;
  int ports_per_node = 1;
  LinkParams network{};  // inter-node path (through the NICs)
  LinkParams intranode{.latency_ns = 400,
                       .bytes_per_ns = 6.0,
                       .send_overhead_ns = 150,
                       .recv_overhead_ns = 150};
  FaultConfig faults{};
  /// Shared-backbone bandwidth (bytes/ns) every inter-node message must
  /// serialize through after leaving its egress NIC. 0 disables the stage
  /// entirely (the default — timing is then bit-identical to the
  /// pre-backbone model). With it on, traffic between disjoint node sets
  /// contends: co-scheduled jobs slow each other down measurably, which is
  /// what ppm::jobs quantifies via FabricStats::per_node backbone_wait_ns.
  double backbone_bytes_per_ns = 0.0;
};

struct Message {
  int32_t src_node = 0;
  int32_t src_port = 0;
  int32_t dst_node = 0;
  int32_t dst_port = 0;
  uint64_t kind = 0;  // multiplexing tag interpreted by the layer above
  Bytes payload;
};

/// Aggregate traffic accounting, queryable by benches and tests.
struct FabricStats {
  Counter inter_messages;
  Counter inter_bytes;
  Counter intra_messages;
  Counter intra_bytes;

  /// Per-source-node inter-node traffic, indexed by src node id. Sized by
  /// the Fabric constructor. backbone_wait_ns accumulates the time this
  /// node's messages queued behind other traffic at the shared backbone
  /// (always 0 when FabricConfig::backbone_bytes_per_ns == 0). ppm::jobs
  /// attributes fabric traffic to co-scheduled jobs by taking deltas of
  /// these rows over each job's node allocation and run window.
  struct NodeTraffic {
    uint64_t tx_messages = 0;
    uint64_t tx_bytes = 0;
    uint64_t backbone_wait_ns = 0;
  };
  std::vector<NodeTraffic> per_node;

  /// Windowed mode only: cross-engine arrivals whose (fault-warped) time
  /// fell below the completed window horizon and were clamped up to it by
  /// the exchange step ("re-windowed"). Always 0 in the classic engine and
  /// whenever FaultConfig::test_arrival_warp_ns >= 0.
  uint64_t rewindowed = 0;

  void reset() {
    inter_messages.reset();
    inter_bytes.reset();
    intra_messages.reset();
    intra_bytes.reset();
    rewindowed = 0;
    for (auto& n : per_node) n = NodeTraffic{};
  }
};

/// Receiving side of a (node, port) address: a FIFO of delivered messages.
class Endpoint {
 public:
  Endpoint(sim::Engine& engine, int node, int port)
      : node_(node), port_(port), inbox_(engine) {}

  /// Blocking receive (fiber only).
  Message recv() { return inbox_.pop(); }

  /// Non-blocking receive.
  bool try_recv(Message* out) { return inbox_.try_pop(out); }

  bool has_pending() const { return !inbox_.empty(); }
  int node() const { return node_; }
  int port() const { return port_; }

 private:
  friend class Fabric;
  int node_;
  int port_;
  sim::Channel<Message> inbox_;
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, FabricConfig config);

  /// Windowed construction (docs/SIM.md): one engine per node; node i's
  /// endpoints block on engine engines[i], and inter-node sends queue into
  /// per-source outboxes that exchange_cross_traffic() drains at window
  /// boundaries. Requires engines.size() == num_nodes, a positive network
  /// latency (it is the driver's lookahead) and no shared backbone (the
  /// backbone is a machine-global serialization point, incompatible with
  /// source-partitioned timing).
  Fabric(const std::vector<sim::Engine*>& engines, FabricConfig config);

  /// Send from the current fiber. Charges sender software overhead to the
  /// calling fiber, then schedules delivery into the destination endpoint.
  void send(Message msg);

  Endpoint& endpoint(int node, int port);

  const FabricConfig& config() const { return config_; }
  const FabricStats& stats() const { return stats_; }
  FabricStats& mutable_stats() { return stats_; }

  /// Virtual time at which a `bytes`-sized inter-node message completes,
  /// ignoring contention — useful for tests and analytic baselines.
  int64_t uncontended_network_time_ns(size_t bytes) const;

  /// Minimum timing distance between a cross-node send and its earliest
  /// possible arrival at the destination NIC: the windowed driver's
  /// lookahead. Fault jitter only ever delays messages, so the wire
  /// latency is the floor even for faulted runs.
  int64_t min_cross_latency_ns() const { return config_.network.latency_ns; }

  /// Windowed mode: move every outbox message into its destination
  /// engine's event queue, in one globally sorted deterministic order
  /// ((arrival, src, src port, dst, dst port, per-src seq)). Arrivals
  /// below `horizon_ns` — possible only with a negative test warp — are
  /// clamped up to it (counted in FabricStats::rewindowed), never
  /// reordered. Single-threaded: call only between windows. Returns the
  /// number of messages injected.
  uint64_t exchange_cross_traffic(int64_t horizon_ns);

  /// Attach (or detach, with nullptr) a ppm::trace recorder; every send
  /// then records a kMsgSend span (send time -> delivery time, with kind/
  /// bytes/addressing and fault-delay attribution). Null by default: the
  /// hook is one never-taken branch per send. Classic (single-engine)
  /// mode only.
  void set_trace_recorder(trace::Recorder* recorder) { tracer_ = recorder; }

  /// Windowed-mode tracing: per-node recorders, indexed by node id. A
  /// message's kMsgSend span is recorded on the track of the node whose
  /// engine computes the final delivery time — the source for intra-node
  /// traffic, the DESTINATION for cross-node traffic (the ingress stage
  /// resolves there; recording anywhere else would race). Pass an empty
  /// vector to detach.
  void set_node_trace_recorders(std::vector<trace::Recorder*> recorders);

 private:
  /// One cross-engine message parked between windows.
  struct CrossMsg {
    int64_t arrival_ns;  // first byte at the destination NIC
    int64_t send_ns;     // trace attribution
    int64_t stretch_ns;  // fault-added delay (trace attribution)
    uint64_t seq;        // per-source sequence, breaks remaining ties
    Message msg;
  };

  void windowed_send(Message msg);
  /// Deterministic per-message fault jitter for windowed mode: the shared
  /// Rng draw order of the classic engine would depend on host-thread
  /// interleaving, so windowed jitter is a pure hash of
  /// (seed, src, dst, dst port, per-pair seq) instead.
  int64_t windowed_jitter_ns(const Message& msg, uint64_t pair_seq);
  void record_msg_span(trace::Recorder* rec, const Message& msg, bool intra,
                       int64_t t_send, size_t bytes, int64_t deliver_ns,
                       int64_t stretch_ns);

  sim::Engine& engine_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  // node-major
  std::vector<int64_t> egress_free_ns_;   // per node
  std::vector<int64_t> ingress_free_ns_;  // per node
  int64_t backbone_free_ns_ = 0;          // shared backbone (see config)
  FabricStats stats_;
  // Fault injection (see FaultConfig): jitter randomness and the per
  // (src node, dst node, dst port) delivery floor that keeps pairwise FIFO.
  Rng fault_rng_;
  std::unordered_map<uint64_t, int64_t> fault_floor_;
  trace::Recorder* tracer_ = nullptr;

  // ---- Windowed mode state. Everything below is either owned by one
  // node's engine (outbox_/cross_seq_/pair_*/egress indexed by src,
  // ingress indexed by dst) or touched only at barriers (exchange scratch).
  bool windowed_ = false;
  std::vector<sim::Engine*> node_engines_;            // per node
  std::vector<std::vector<CrossMsg>> outbox_;         // per src node
  std::vector<uint64_t> cross_seq_;                   // per src node
  // Per-source maps: (dst node, dst port) -> fault floor / pair seq.
  std::vector<std::unordered_map<uint64_t, int64_t>> pair_floor_;
  std::vector<std::unordered_map<uint64_t, uint64_t>> pair_seq_;
  std::vector<trace::Recorder*> node_tracers_;        // per node (or empty)
  std::vector<CrossMsg> exchange_scratch_;
};

}  // namespace ppm::net
