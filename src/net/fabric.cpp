#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>

#include "trace/recorder.hpp"
#include "util/error.hpp"

namespace ppm::net {

namespace {
int64_t transmission_ns(size_t bytes, const LinkParams& link) {
  return static_cast<int64_t>(
      std::llround(static_cast<double>(bytes) / link.bytes_per_ns));
}
}  // namespace

Fabric::Fabric(sim::Engine& engine, FabricConfig config)
    : engine_(engine), config_(config),
      fault_rng_(config.faults.seed ^ 0xfab51c0ffee5eedULL) {
  PPM_CHECK(config_.num_nodes > 0, "fabric needs at least one node");
  PPM_CHECK(config_.ports_per_node > 0, "fabric needs at least one port");
  PPM_CHECK(config_.network.bytes_per_ns > 0 &&
                config_.intranode.bytes_per_ns > 0,
            "link bandwidth must be positive");
  endpoints_.reserve(
      static_cast<size_t>(config_.num_nodes * config_.ports_per_node));
  for (int n = 0; n < config_.num_nodes; ++n) {
    for (int p = 0; p < config_.ports_per_node; ++p) {
      endpoints_.push_back(std::make_unique<Endpoint>(engine_, n, p));
    }
  }
  egress_free_ns_.assign(static_cast<size_t>(config_.num_nodes), 0);
  ingress_free_ns_.assign(static_cast<size_t>(config_.num_nodes), 0);
  stats_.per_node.assign(static_cast<size_t>(config_.num_nodes), {});
}

Fabric::Fabric(const std::vector<sim::Engine*>& engines, FabricConfig config)
    : engine_(*engines.at(0)), config_(config),
      fault_rng_(config.faults.seed ^ 0xfab51c0ffee5eedULL),
      windowed_(true), node_engines_(engines) {
  PPM_CHECK(config_.num_nodes > 0, "fabric needs at least one node");
  PPM_CHECK(static_cast<int>(engines.size()) == config_.num_nodes,
            "windowed fabric needs one engine per node (%zu vs %d)",
            engines.size(), config_.num_nodes);
  PPM_CHECK(config_.ports_per_node > 0, "fabric needs at least one port");
  PPM_CHECK(config_.network.bytes_per_ns > 0 &&
                config_.intranode.bytes_per_ns > 0,
            "link bandwidth must be positive");
  PPM_CHECK(config_.network.latency_ns > 0,
            "windowed fabric needs positive network latency (lookahead)");
  PPM_CHECK(config_.backbone_bytes_per_ns == 0.0,
            "windowed fabric cannot model the shared backbone");
  endpoints_.reserve(
      static_cast<size_t>(config_.num_nodes * config_.ports_per_node));
  for (int n = 0; n < config_.num_nodes; ++n) {
    for (int p = 0; p < config_.ports_per_node; ++p) {
      endpoints_.push_back(
          std::make_unique<Endpoint>(*node_engines_[static_cast<size_t>(n)],
                                     n, p));
    }
  }
  const auto nodes = static_cast<size_t>(config_.num_nodes);
  egress_free_ns_.assign(nodes, 0);
  ingress_free_ns_.assign(nodes, 0);
  stats_.per_node.assign(nodes, {});
  outbox_.resize(nodes);
  cross_seq_.assign(nodes, 0);
  pair_floor_.resize(nodes);
  pair_seq_.resize(nodes);
}

void Fabric::set_node_trace_recorders(
    std::vector<trace::Recorder*> recorders) {
  PPM_CHECK(recorders.empty() ||
                static_cast<int>(recorders.size()) == config_.num_nodes,
            "need one trace recorder per node");
  node_tracers_ = std::move(recorders);
}

Endpoint& Fabric::endpoint(int node, int port) {
  PPM_CHECK(node >= 0 && node < config_.num_nodes, "bad node %d", node);
  PPM_CHECK(port >= 0 && port < config_.ports_per_node, "bad port %d", port);
  return *endpoints_[static_cast<size_t>(node * config_.ports_per_node +
                                         port)];
}

void Fabric::record_msg_span(trace::Recorder* rec, const Message& msg,
                             bool intra, int64_t t_send, size_t bytes,
                             int64_t deliver_ns, int64_t stretch_ns) {
  // One span per message: send time -> (possibly fault-stretched)
  // delivery, with the stretch attributed separately in aux. The kind's
  // top byte is the layer-above's message class (RtMsg for the PPM
  // runtime; the mp library tags differently).
  trace::Event e;
  e.t_ns = t_send;
  e.kind = trace::EventKind::kMsgSend;
  e.flags = intra ? trace::kFlagBit0 : 0;
  e.core = static_cast<uint16_t>(msg.src_node);
  e.a = (static_cast<uint64_t>(static_cast<uint16_t>(msg.src_node)) << 48) |
        (static_cast<uint64_t>(static_cast<uint16_t>(msg.src_port)) << 32) |
        (static_cast<uint64_t>(static_cast<uint16_t>(msg.dst_node)) << 16) |
        static_cast<uint64_t>(static_cast<uint16_t>(msg.dst_port));
  e.b = ((msg.kind >> 56) << 56) |
        (static_cast<uint64_t>(bytes) & ((uint64_t{1} << 56) - 1));
  e.c = static_cast<uint64_t>(deliver_ns);
  e.aux =
      static_cast<uint32_t>(std::min<int64_t>(stretch_ns, UINT32_MAX));
  rec->record(e);
}

int64_t Fabric::windowed_jitter_ns(const Message& msg, uint64_t pair_seq) {
  const FaultConfig& faults = config_.faults;
  if (faults.max_extra_delay_ns <= 0) return 0;
  // Two independent hash draws standing in for the classic engine's two
  // Rng draws: one decides, one sizes. Keyed so every (pair, seq) gets a
  // fresh value and the stream is identical for any host-thread count.
  const uint64_t key =
      mix64(faults.seed ^ 0xfab51c0ffee5eedULL) ^
      mix64((static_cast<uint64_t>(msg.src_node) << 42) ^
            (static_cast<uint64_t>(msg.dst_node) << 21) ^
            (static_cast<uint64_t>(msg.dst_port) << 1)) ^
      mix64(pair_seq);
  const uint64_t decide = mix64(key);
  // Same acceptance rate as the classic path: compare a uniform double
  // in [0, 1) against delay_probability.
  const double u =
      static_cast<double>(decide >> 11) * (1.0 / 9007199254740992.0);
  if (u >= faults.delay_probability) return 0;
  return static_cast<int64_t>(
      mix64(key ^ 0x9e3779b97f4a7c15ULL) %
      (static_cast<uint64_t>(faults.max_extra_delay_ns) + 1));
}

void Fabric::windowed_send(Message msg) {
  sim::Engine* eng = sim::current_engine();
  PPM_CHECK(eng != nullptr &&
                eng == node_engines_[static_cast<size_t>(msg.src_node)],
            "windowed Fabric::send must run on the source node's engine "
            "(src %d)",
            msg.src_node);
  Endpoint& dst = endpoint(msg.dst_node, msg.dst_port);  // validates address
  const size_t bytes = msg.payload.size();
  const bool intra = (msg.src_node == msg.dst_node);
  const LinkParams& link = intra ? config_.intranode : config_.network;
  const auto src = static_cast<size_t>(msg.src_node);
  trace::Recorder* src_tracer =
      node_tracers_.empty() ? nullptr : node_tracers_[src];

  eng->advance_ns(link.send_overhead_ns);
  const int64_t t_send = eng->now_ns();
  const FaultConfig& faults = config_.faults;
  const uint64_t pair_key = (static_cast<uint64_t>(msg.src_node) << 40) |
                            (static_cast<uint64_t>(msg.dst_node) << 20) |
                            static_cast<uint64_t>(msg.dst_port);

  if (intra) {
    // Same-node traffic never crosses an engine boundary; this is the
    // classic intra-node path with hash-based (thread-count-independent)
    // jitter instead of the shared Rng.
    int64_t deliver_ns = t_send + link.latency_ns +
                         transmission_ns(bytes, link) +
                         link.recv_overhead_ns;
    const int64_t modeled_deliver_ns = deliver_ns;
    stats_.intra_messages.add();
    stats_.intra_bytes.add(bytes);
    if (faults.delay_jitter) {
      deliver_ns += windowed_jitter_ns(msg, pair_seq_[src][pair_key]++);
      int64_t& floor = pair_floor_[src][pair_key];
      deliver_ns = std::max(deliver_ns, floor);
      floor = deliver_ns;
    }
    if (src_tracer != nullptr) [[unlikely]] {
      record_msg_span(src_tracer, msg, /*intra=*/true, t_send, bytes,
                      deliver_ns, deliver_ns - modeled_deliver_ns);
    }
    if (!faults.delay_jitter) {
      dst.inbox_.push_at(deliver_ns, std::move(msg));
      return;
    }
    eng->at(deliver_ns, [&dst, deliver_ns, m = std::move(msg)]() mutable {
      dst.inbox_.push_at(deliver_ns, std::move(m));
    });
    return;
  }

  // Cross-engine: run the source-owned stages (egress serialization, wire
  // latency, fault jitter) now, park the message in this node's outbox.
  // The destination-owned stages (ingress serialization, receive overhead)
  // run on the destination engine after the barrier injection.
  const int64_t tx = transmission_ns(bytes, link);
  const int64_t tx_start = std::max(t_send, egress_free_ns_[src]);
  egress_free_ns_[src] = tx_start + tx;
  int64_t arrival_ns = tx_start + link.latency_ns;
  const int64_t modeled_arrival_ns = arrival_ns;
  stats_.inter_messages.add();
  stats_.inter_bytes.add(bytes);
  FabricStats::NodeTraffic& nt = stats_.per_node[src];
  ++nt.tx_messages;
  nt.tx_bytes += bytes;
  if (faults.delay_jitter) {
    arrival_ns += windowed_jitter_ns(msg, pair_seq_[src][pair_key]++);
    int64_t& floor = pair_floor_[src][pair_key];
    arrival_ns = std::max(arrival_ns, floor);
    floor = arrival_ns;
  }
  // The test warp shifts every arrival of a pair equally, so pairwise
  // FIFO survives it (and survives a later uniform clamp to the horizon).
  arrival_ns += faults.test_arrival_warp_ns;
  outbox_[src].push_back(CrossMsg{arrival_ns, t_send,
                                  arrival_ns - modeled_arrival_ns,
                                  cross_seq_[src]++, std::move(msg)});
}

uint64_t Fabric::exchange_cross_traffic(int64_t horizon_ns) {
  exchange_scratch_.clear();
  for (auto& box : outbox_) {
    for (CrossMsg& cm : box) exchange_scratch_.push_back(std::move(cm));
    box.clear();
  }
  if (exchange_scratch_.empty()) return 0;
  // The deterministic merge order of the tentpole: time first, then full
  // source/destination addressing, then the per-source sequence number.
  // Injection order fixes each destination engine's event sequence
  // numbering, so any host-thread count replays the same simulation.
  std::sort(exchange_scratch_.begin(), exchange_scratch_.end(),
            [](const CrossMsg& a, const CrossMsg& b) {
              if (a.arrival_ns != b.arrival_ns)
                return a.arrival_ns < b.arrival_ns;
              if (a.msg.src_node != b.msg.src_node)
                return a.msg.src_node < b.msg.src_node;
              if (a.msg.src_port != b.msg.src_port)
                return a.msg.src_port < b.msg.src_port;
              if (a.msg.dst_node != b.msg.dst_node)
                return a.msg.dst_node < b.msg.dst_node;
              if (a.msg.dst_port != b.msg.dst_port)
                return a.msg.dst_port < b.msg.dst_port;
              return a.seq < b.seq;
            });
  const uint64_t injected = exchange_scratch_.size();
  const LinkParams link = config_.network;
  for (CrossMsg& cm : exchange_scratch_) {
    int64_t arrival = cm.arrival_ns;
    if (arrival < horizon_ns) {
      // Only a negative test warp can get here (lookahead == the wire
      // latency floor otherwise): re-window instead of delivering into
      // the destination's past.
      arrival = horizon_ns;
      ++stats_.rewindowed;
    }
    const auto dstn = static_cast<size_t>(cm.msg.dst_node);
    sim::Engine* deng = node_engines_[dstn];
    Endpoint& ep = endpoint(cm.msg.dst_node, cm.msg.dst_port);
    const int64_t tx = transmission_ns(cm.msg.payload.size(), link);
    trace::Recorder* dst_tracer =
        node_tracers_.empty() ? nullptr : node_tracers_[dstn];
    deng->at(arrival, [this, &ep, dstn, arrival, tx, dst_tracer,
                       recv_overhead = link.recv_overhead_ns,
                       send_ns = cm.send_ns, stretch = cm.stretch_ns,
                       m = std::move(cm.msg)]() mutable {
      // Destination-owned ingress NIC serialization, in arrival order.
      const int64_t rx_start = std::max(arrival, ingress_free_ns_[dstn]);
      const int64_t rx_end = rx_start + tx;
      ingress_free_ns_[dstn] = rx_end;
      const int64_t deliver_ns = rx_end + recv_overhead;
      if (dst_tracer != nullptr) [[unlikely]] {
        record_msg_span(dst_tracer, m, /*intra=*/false, send_ns,
                        m.payload.size(), deliver_ns, stretch);
      }
      ep.inbox_.push_at(deliver_ns, std::move(m));
    });
  }
  exchange_scratch_.clear();
  return injected;
}

void Fabric::send(Message msg) {
  if (windowed_) {
    windowed_send(std::move(msg));
    return;
  }
  PPM_CHECK(engine_.on_fiber(), "Fabric::send must be called from a fiber");
  Endpoint& dst = endpoint(msg.dst_node, msg.dst_port);  // validates address
  const size_t bytes = msg.payload.size();
  const bool intra = (msg.src_node == msg.dst_node);
  const LinkParams& link = intra ? config_.intranode : config_.network;

  // Sender software overhead is CPU time of the sending core.
  engine_.advance_ns(link.send_overhead_ns);
  const int64_t t_send = engine_.now_ns();

  int64_t deliver_ns;
  if (intra) {
    // Shared-memory transport: per-message cost + copy time, no NIC.
    deliver_ns = t_send + link.latency_ns + transmission_ns(bytes, link) +
                 link.recv_overhead_ns;
    stats_.intra_messages.add();
    stats_.intra_bytes.add(bytes);
  } else {
    const auto src = static_cast<size_t>(msg.src_node);
    const auto dstn = static_cast<size_t>(msg.dst_node);
    const int64_t tx = transmission_ns(bytes, link);
    // Egress NIC serializes this node's outbound traffic.
    const int64_t tx_start = std::max(t_send, egress_free_ns_[src]);
    egress_free_ns_[src] = tx_start + tx;
    // Optional shared backbone: all inter-node traffic — including between
    // disjoint node sets — serializes through one machine-wide stage after
    // egress, so co-scheduled tenants contend. Off (0) by default, leaving
    // the wire timing bit-identical to the two-NIC model.
    int64_t wire_enter_ns = tx_start;
    FabricStats::NodeTraffic& nt = stats_.per_node[src];
    if (config_.backbone_bytes_per_ns > 0.0) {
      const int64_t bb_tx = static_cast<int64_t>(std::llround(
          static_cast<double>(bytes) / config_.backbone_bytes_per_ns));
      const int64_t bb_start = std::max(tx_start, backbone_free_ns_);
      backbone_free_ns_ = bb_start + bb_tx;
      nt.backbone_wait_ns += static_cast<uint64_t>(bb_start - tx_start);
      wire_enter_ns = bb_start + bb_tx;
    }
    // First byte reaches the destination after the wire latency; the
    // ingress NIC then absorbs the message, serializing with other arrivals.
    const int64_t rx_start =
        std::max(wire_enter_ns + link.latency_ns, ingress_free_ns_[dstn]);
    const int64_t rx_end = rx_start + tx;
    ingress_free_ns_[dstn] = rx_end;
    deliver_ns = rx_end + link.recv_overhead_ns;
    stats_.inter_messages.add();
    stats_.inter_bytes.add(bytes);
    ++nt.tx_messages;
    nt.tx_bytes += bytes;
  }

  const int64_t modeled_deliver_ns = deliver_ns;
  if (config_.faults.delay_jitter) {
    // Fault injection: maybe stretch the delivery, then enqueue AT delivery
    // time (Engine::at) instead of at send time. Endpoint inboxes pop in
    // push order, so the uniform at-delivery path makes arrivals from
    // different (src, dst port) pairs reorder by their jittered times while
    // the floor clamp keeps each individual pair FIFO (see FaultConfig).
    const FaultConfig& faults = config_.faults;
    if (fault_rng_.next_double() < faults.delay_probability &&
        faults.max_extra_delay_ns > 0) {
      deliver_ns += fault_rng_.next_below(
          static_cast<uint64_t>(faults.max_extra_delay_ns) + 1);
    }
    const uint64_t pair_key = (static_cast<uint64_t>(msg.src_node) << 40) |
                              (static_cast<uint64_t>(msg.dst_node) << 20) |
                              static_cast<uint64_t>(msg.dst_port);
    int64_t& floor = fault_floor_[pair_key];
    deliver_ns = std::max(deliver_ns, floor);
    floor = deliver_ns;
  }

  if (tracer_ != nullptr) [[unlikely]] {
    // One span per message: send time -> (possibly fault-stretched)
    // delivery, with the stretch attributed separately in aux. The kind's
    // top byte is the layer-above's message class (RtMsg for the PPM
    // runtime; the mp library tags differently).
    trace::Event e;
    e.t_ns = t_send;
    e.kind = trace::EventKind::kMsgSend;
    e.flags = intra ? trace::kFlagBit0 : 0;
    e.core = static_cast<uint16_t>(msg.src_node);
    e.a = (static_cast<uint64_t>(static_cast<uint16_t>(msg.src_node)) << 48) |
          (static_cast<uint64_t>(static_cast<uint16_t>(msg.src_port)) << 32) |
          (static_cast<uint64_t>(static_cast<uint16_t>(msg.dst_node)) << 16) |
          static_cast<uint64_t>(static_cast<uint16_t>(msg.dst_port));
    e.b = ((msg.kind >> 56) << 56) |
          (static_cast<uint64_t>(bytes) & ((uint64_t{1} << 56) - 1));
    e.c = static_cast<uint64_t>(deliver_ns);
    e.aux = static_cast<uint32_t>(std::min<int64_t>(
        deliver_ns - modeled_deliver_ns, UINT32_MAX));
    tracer_->record(e);
  }

  if (!config_.faults.delay_jitter) {
    dst.inbox_.push_at(deliver_ns, std::move(msg));
    return;
  }
  engine_.at(deliver_ns, [&dst, deliver_ns, m = std::move(msg)]() mutable {
    dst.inbox_.push_at(deliver_ns, std::move(m));
  });
}

int64_t Fabric::uncontended_network_time_ns(size_t bytes) const {
  const LinkParams& link = config_.network;
  return link.send_overhead_ns + link.latency_ns +
         transmission_ns(bytes, link) + link.recv_overhead_ns;
}

}  // namespace ppm::net
