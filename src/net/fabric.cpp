#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>

#include "trace/recorder.hpp"
#include "util/error.hpp"

namespace ppm::net {

namespace {
int64_t transmission_ns(size_t bytes, const LinkParams& link) {
  return static_cast<int64_t>(
      std::llround(static_cast<double>(bytes) / link.bytes_per_ns));
}
}  // namespace

Fabric::Fabric(sim::Engine& engine, FabricConfig config)
    : engine_(engine), config_(config),
      fault_rng_(config.faults.seed ^ 0xfab51c0ffee5eedULL) {
  PPM_CHECK(config_.num_nodes > 0, "fabric needs at least one node");
  PPM_CHECK(config_.ports_per_node > 0, "fabric needs at least one port");
  PPM_CHECK(config_.network.bytes_per_ns > 0 &&
                config_.intranode.bytes_per_ns > 0,
            "link bandwidth must be positive");
  endpoints_.reserve(
      static_cast<size_t>(config_.num_nodes * config_.ports_per_node));
  for (int n = 0; n < config_.num_nodes; ++n) {
    for (int p = 0; p < config_.ports_per_node; ++p) {
      endpoints_.push_back(std::make_unique<Endpoint>(engine_, n, p));
    }
  }
  egress_free_ns_.assign(static_cast<size_t>(config_.num_nodes), 0);
  ingress_free_ns_.assign(static_cast<size_t>(config_.num_nodes), 0);
  stats_.per_node.assign(static_cast<size_t>(config_.num_nodes), {});
}

Endpoint& Fabric::endpoint(int node, int port) {
  PPM_CHECK(node >= 0 && node < config_.num_nodes, "bad node %d", node);
  PPM_CHECK(port >= 0 && port < config_.ports_per_node, "bad port %d", port);
  return *endpoints_[static_cast<size_t>(node * config_.ports_per_node +
                                         port)];
}

void Fabric::send(Message msg) {
  PPM_CHECK(engine_.on_fiber(), "Fabric::send must be called from a fiber");
  Endpoint& dst = endpoint(msg.dst_node, msg.dst_port);  // validates address
  const size_t bytes = msg.payload.size();
  const bool intra = (msg.src_node == msg.dst_node);
  const LinkParams& link = intra ? config_.intranode : config_.network;

  // Sender software overhead is CPU time of the sending core.
  engine_.advance_ns(link.send_overhead_ns);
  const int64_t t_send = engine_.now_ns();

  int64_t deliver_ns;
  if (intra) {
    // Shared-memory transport: per-message cost + copy time, no NIC.
    deliver_ns = t_send + link.latency_ns + transmission_ns(bytes, link) +
                 link.recv_overhead_ns;
    stats_.intra_messages.add();
    stats_.intra_bytes.add(bytes);
  } else {
    const auto src = static_cast<size_t>(msg.src_node);
    const auto dstn = static_cast<size_t>(msg.dst_node);
    const int64_t tx = transmission_ns(bytes, link);
    // Egress NIC serializes this node's outbound traffic.
    const int64_t tx_start = std::max(t_send, egress_free_ns_[src]);
    egress_free_ns_[src] = tx_start + tx;
    // Optional shared backbone: all inter-node traffic — including between
    // disjoint node sets — serializes through one machine-wide stage after
    // egress, so co-scheduled tenants contend. Off (0) by default, leaving
    // the wire timing bit-identical to the two-NIC model.
    int64_t wire_enter_ns = tx_start;
    FabricStats::NodeTraffic& nt = stats_.per_node[src];
    if (config_.backbone_bytes_per_ns > 0.0) {
      const int64_t bb_tx = static_cast<int64_t>(std::llround(
          static_cast<double>(bytes) / config_.backbone_bytes_per_ns));
      const int64_t bb_start = std::max(tx_start, backbone_free_ns_);
      backbone_free_ns_ = bb_start + bb_tx;
      nt.backbone_wait_ns += static_cast<uint64_t>(bb_start - tx_start);
      wire_enter_ns = bb_start + bb_tx;
    }
    // First byte reaches the destination after the wire latency; the
    // ingress NIC then absorbs the message, serializing with other arrivals.
    const int64_t rx_start =
        std::max(wire_enter_ns + link.latency_ns, ingress_free_ns_[dstn]);
    const int64_t rx_end = rx_start + tx;
    ingress_free_ns_[dstn] = rx_end;
    deliver_ns = rx_end + link.recv_overhead_ns;
    stats_.inter_messages.add();
    stats_.inter_bytes.add(bytes);
    ++nt.tx_messages;
    nt.tx_bytes += bytes;
  }

  const int64_t modeled_deliver_ns = deliver_ns;
  if (config_.faults.delay_jitter) {
    // Fault injection: maybe stretch the delivery, then enqueue AT delivery
    // time (Engine::at) instead of at send time. Endpoint inboxes pop in
    // push order, so the uniform at-delivery path makes arrivals from
    // different (src, dst port) pairs reorder by their jittered times while
    // the floor clamp keeps each individual pair FIFO (see FaultConfig).
    const FaultConfig& faults = config_.faults;
    if (fault_rng_.next_double() < faults.delay_probability &&
        faults.max_extra_delay_ns > 0) {
      deliver_ns += fault_rng_.next_below(
          static_cast<uint64_t>(faults.max_extra_delay_ns) + 1);
    }
    const uint64_t pair_key = (static_cast<uint64_t>(msg.src_node) << 40) |
                              (static_cast<uint64_t>(msg.dst_node) << 20) |
                              static_cast<uint64_t>(msg.dst_port);
    int64_t& floor = fault_floor_[pair_key];
    deliver_ns = std::max(deliver_ns, floor);
    floor = deliver_ns;
  }

  if (tracer_ != nullptr) [[unlikely]] {
    // One span per message: send time -> (possibly fault-stretched)
    // delivery, with the stretch attributed separately in aux. The kind's
    // top byte is the layer-above's message class (RtMsg for the PPM
    // runtime; the mp library tags differently).
    trace::Event e;
    e.t_ns = t_send;
    e.kind = trace::EventKind::kMsgSend;
    e.flags = intra ? trace::kFlagBit0 : 0;
    e.core = static_cast<uint16_t>(msg.src_node);
    e.a = (static_cast<uint64_t>(static_cast<uint16_t>(msg.src_node)) << 48) |
          (static_cast<uint64_t>(static_cast<uint16_t>(msg.src_port)) << 32) |
          (static_cast<uint64_t>(static_cast<uint16_t>(msg.dst_node)) << 16) |
          static_cast<uint64_t>(static_cast<uint16_t>(msg.dst_port));
    e.b = ((msg.kind >> 56) << 56) |
          (static_cast<uint64_t>(bytes) & ((uint64_t{1} << 56) - 1));
    e.c = static_cast<uint64_t>(deliver_ns);
    e.aux = static_cast<uint32_t>(std::min<int64_t>(
        deliver_ns - modeled_deliver_ns, UINT32_MAX));
    tracer_->record(e);
  }

  if (!config_.faults.delay_jitter) {
    dst.inbox_.push_at(deliver_ns, std::move(msg));
    return;
  }
  engine_.at(deliver_ns, [&dst, deliver_ns, m = std::move(msg)]() mutable {
    dst.inbox_.push_at(deliver_ns, std::move(m));
  });
}

int64_t Fabric::uncontended_network_time_ns(size_t bytes) const {
  const LinkParams& link = config_.network;
  return link.send_overhead_ns + link.latency_ns +
         transmission_ns(bytes, link) + link.recv_overhead_ns;
}

}  // namespace ppm::net
