// ppm::check — structured findings of the phase-semantics sanitizer.
//
// A Report is the value type the validator produces: a capped list of
// individual Violations plus uncapped summary counters. It deliberately
// depends on nothing but the standard library so that core/options.hpp
// (which embeds one in RunResult) stays cheap to include everywhere.
//
// Severity splits the findings in two:
//   * kError   — the program violates the phase model's determinism
//     contract (racy plain writes, non-commuting accumulate mixes,
//     cross-node lockstep divergence). `clean()` is false.
//   * kWarning — legal but hazardous shapes (e.g. a global array with
//     fewer elements than nodes leaves owners idle). `clean()` stays
//     true; warnings only show up in the violation list and counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppm::check {

/// What the validator found. See docs/validator.md for a minimal
/// offending program per class.
enum class ViolationKind : uint8_t {
  /// (a) Two different VPs plain-`set()` the same element in one phase:
  /// the runtime resolves it deterministically (highest VP rank wins),
  /// but the program almost certainly did not mean to race.
  kSetSetConflict = 0,
  /// (b) One element received a mix of `set` and accumulate ops, or two
  /// different accumulate ops (`add` vs `min`/`max`), from different VPs
  /// in one phase. Mixed ops do not commute; the result depends on VP
  /// rank order, not on program intent.
  kMixedOpConflict = 1,
  /// (c) Nodes diverged on the SPMD-collective sequence: array creations,
  /// group coordinations or global phases do not match across nodes.
  kLockstepMismatch = 2,
  /// (d) Hazardous array shape (warning): e.g. a global array smaller
  /// than the node count, which leaves some owners with zero elements.
  kShapeHazard = 3,
  /// (e) An accumulate op registered as non-commutative (see
  /// Env::register_accum_op) hit an element that received more than one
  /// entry in a single phase. Owner-side application is grouped by source
  /// node, not VP rank, so only exactly-commutative ops (or single-entry
  /// elements) are deterministic there.
  kNonCommutativeAccum = 4,
};

enum class Severity : uint8_t { kError = 0, kWarning = 1 };

const char* violation_kind_name(ViolationKind kind);

/// One finding, anchored to the array/element/phase where it happened.
struct Violation {
  ViolationKind kind = ViolationKind::kSetSetConflict;
  Severity severity = Severity::kError;
  int node = 0;              // node that detected it (owner at commit)
  uint32_t array_id = 0;     // shared-array creation index
  uint64_t element = 0;      // global element index ((a)/(b) only)
  uint64_t phase = 0;        // phase ordinal on the detecting node
  bool global_phase = false;
  uint64_t vp_a = 0;         // first offending global VP rank
  uint64_t vp_b = 0;         // a second, conflicting VP rank
  std::string detail;        // human-readable one-liner

  std::string to_string() const;
};

/// Violations recorded verbatim per node; beyond the cap only the
/// summary counters keep growing.
inline constexpr size_t kMaxRecordedViolations = 64;

struct Report {
  std::vector<Violation> violations;

  // Uncapped per-class counters.
  uint64_t set_set_conflicts = 0;
  uint64_t mixed_op_conflicts = 0;
  uint64_t lockstep_mismatches = 0;
  uint64_t shape_hazards = 0;
  uint64_t non_commutative_accums = 0;

  // Coverage counters: what the validator actually looked at.
  uint64_t phases_checked = 0;
  uint64_t commit_entries_scanned = 0;
  uint64_t reads_observed = 0;
  uint64_t writes_observed = 0;

  /// Error-severity conflict count per offending array id.
  std::map<uint32_t, uint64_t> conflicts_by_array;

  /// Total error-severity findings (warnings excluded).
  uint64_t error_count() const {
    return set_set_conflicts + mixed_op_conflicts + lockstep_mismatches +
           non_commutative_accums;
  }
  /// True when no error-severity violation was found.
  bool clean() const { return error_count() == 0; }
  bool has_warnings() const { return shape_hazards > 0; }

  /// Fold another node's report into this one (counters summed, violation
  /// list concatenated up to the cap).
  void merge(const Report& other);

  /// Multi-line human-readable dump (the `ppm_cli --check` output).
  std::string to_string() const;
};

}  // namespace ppm::check
