#include "check/report.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ppm::check {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kSetSetConflict: return "set-set conflict";
    case ViolationKind::kMixedOpConflict: return "mixed-op conflict";
    case ViolationKind::kLockstepMismatch: return "lockstep mismatch";
    case ViolationKind::kShapeHazard: return "shape hazard";
    case ViolationKind::kNonCommutativeAccum:
      return "non-commutative accumulate conflict";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::string s = strfmt(
      "[%s] %s: node %d, %s phase %llu",
      severity == Severity::kError ? "error" : "warning",
      violation_kind_name(kind), node, global_phase ? "global" : "node",
      static_cast<unsigned long long>(phase));
  if (kind == ViolationKind::kSetSetConflict ||
      kind == ViolationKind::kMixedOpConflict ||
      kind == ViolationKind::kNonCommutativeAccum) {
    s += strfmt(", array %u element %llu, VPs %llu and %llu", array_id,
                static_cast<unsigned long long>(element),
                static_cast<unsigned long long>(vp_a),
                static_cast<unsigned long long>(vp_b));
  } else if (kind == ViolationKind::kShapeHazard) {
    s += strfmt(", array %u", array_id);
  }
  if (!detail.empty()) {
    s += " — ";
    s += detail;
  }
  return s;
}

void Report::merge(const Report& other) {
  set_set_conflicts += other.set_set_conflicts;
  mixed_op_conflicts += other.mixed_op_conflicts;
  lockstep_mismatches += other.lockstep_mismatches;
  shape_hazards += other.shape_hazards;
  non_commutative_accums += other.non_commutative_accums;
  phases_checked += other.phases_checked;
  commit_entries_scanned += other.commit_entries_scanned;
  reads_observed += other.reads_observed;
  writes_observed += other.writes_observed;
  for (const auto& [array, count] : other.conflicts_by_array) {
    conflicts_by_array[array] += count;
  }
  for (const Violation& v : other.violations) {
    if (violations.size() >= kMaxRecordedViolations) break;
    violations.push_back(v);
  }
}

std::string Report::to_string() const {
  std::string s = strfmt(
      "ppm::check report: %llu error(s), %llu warning(s) "
      "(%llu phases, %llu commit entries, %llu writes, %llu reads checked)\n",
      static_cast<unsigned long long>(error_count()),
      static_cast<unsigned long long>(shape_hazards),
      static_cast<unsigned long long>(phases_checked),
      static_cast<unsigned long long>(commit_entries_scanned),
      static_cast<unsigned long long>(writes_observed),
      static_cast<unsigned long long>(reads_observed));
  s += strfmt("  set-set conflicts: %llu | mixed-op conflicts: %llu | "
              "lockstep mismatches: %llu | non-commutative accums: %llu | "
              "shape hazards: %llu\n",
              static_cast<unsigned long long>(set_set_conflicts),
              static_cast<unsigned long long>(mixed_op_conflicts),
              static_cast<unsigned long long>(lockstep_mismatches),
              static_cast<unsigned long long>(non_commutative_accums),
              static_cast<unsigned long long>(shape_hazards));
  if (!conflicts_by_array.empty()) {
    s += "  conflicting elements per array:";
    for (const auto& [array, count] : conflicts_by_array) {
      s += strfmt(" #%u:%llu", array, static_cast<unsigned long long>(count));
    }
    s += '\n';
  }
  const uint64_t total =
      error_count() + shape_hazards;
  for (const Violation& v : violations) {
    s += "  ";
    s += v.to_string();
    s += '\n';
  }
  if (total > violations.size()) {
    s += strfmt("  ... %llu further finding(s) not recorded verbatim\n",
                static_cast<unsigned long long>(total - violations.size()));
  }
  return s;
}

}  // namespace ppm::check
