// ppm::check::PhaseValidator — the phase-semantics sanitizer (PPM's TSan).
//
// One validator is owned by each NodeRuntime when
// RuntimeOptions::validate_phases is set (null pointer otherwise: the
// runtime's hooks compile to a single never-taken branch on the hot
// path). It observes
//   * array creations (SPMD-collective by contract),
//   * group coordinations and phase starts,
//   * every deferred-write entry at the moment it is applied at a commit
//     point — the one place where local writes and remote bundles for the
//     same element converge on the owning node,
// and folds the collective events into a running fingerprint that nodes
// exchange at every global commit to catch lockstep divergence.
//
// The validator never mutates runtime state and never throws; it records
// findings into a check::Report. Fail-fast policy (throwing on the first
// error) is the runtime's decision, driven by
// RuntimeOptions::validate_fail_fast.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "check/report.hpp"

namespace ppm::check {

/// Write-op encoding mirrored from ppm::detail::WriteOp (runtime.cpp
/// static_asserts that the two stay in sync; check:: cannot include core
/// headers because core links this library).
inline constexpr uint8_t kOpSet = 0;
inline constexpr uint8_t kOpAdd = 1;
inline constexpr uint8_t kOpMin = 2;
inline constexpr uint8_t kOpMax = 3;
inline constexpr uint8_t kOpMul = 4;
inline constexpr uint8_t kOpUser0 = 5;
inline constexpr uint8_t kOpUser1 = 6;
inline constexpr uint8_t kOpUser2 = 7;
inline constexpr uint8_t kOpCount = 8;

const char* op_name(uint8_t op);

/// Summary of one node's collective history, exchanged at global commits.
/// `hash` chains every event with its parameters; the three counters give
/// the mismatch message something concrete to say.
struct Fingerprint {
  uint64_t hash = 0;
  uint64_t arrays_created = 0;
  uint64_t groups_coordinated = 0;
  uint64_t global_phases = 0;

  bool operator==(const Fingerprint&) const = default;
};

class PhaseValidator {
 public:
  explicit PhaseValidator(int node);

  // ---- Recording hooks (cheap, never throw) ----

  /// Array creation: folded into the lockstep fingerprint and screened
  /// for shape hazards (class d).
  void on_array_created(uint32_t id, bool global, uint64_t n,
                        uint32_t elem_size, uint8_t dist, int nodes);
  /// A collective ppm_do group coordination completed on this node.
  void on_group_coordinated();
  /// A user accumulate op was registered on an array slot
  /// (Env::register_accum_op; SPMD-collective, so it joins the
  /// fingerprint). A slot registered non-commutative arms class (e): any
  /// element hit by that op more than once in one phase is reported.
  void on_user_op_registered(uint32_t array, uint8_t op, bool commutative);
  /// The locality engine ran a migration planning round at a global
  /// commit. `plan_hash` digests the accepted moves (array, block,
  /// source, destination, slot), so owner maps diverging between nodes —
  /// which would silently corrupt every later remote access — surface as
  /// a lockstep mismatch at the very next fingerprint exchange.
  void on_migration_round(uint64_t arrays_planned, uint64_t moves,
                          uint64_t plan_hash);
  /// A phase body is about to run.
  void on_phase_start(bool global);
  void on_read(uint64_t count = 1) { report_.reads_observed += count; }
  void on_write(uint64_t count = 1) { report_.writes_observed += count; }

  // ---- Commit-time conflict scan (classes a and b) ----

  /// Begin scanning the entries of one commit. `phase` is the detecting
  /// node's ordinal for that phase kind (epoch for global phases).
  void begin_commit(bool global_phase, uint64_t phase);
  /// One deferred-write entry about to be applied to owner storage.
  void on_commit_entry(uint32_t array, uint64_t index, uint8_t op,
                       uint64_t vp_rank);
  /// Analyze the scanned entries; record violations. Returns the number
  /// of new error-severity violations.
  uint64_t finish_commit();

  // ---- Cross-node lockstep check (class c) ----

  Fingerprint fingerprint() const;
  /// Compare all nodes' fingerprints (indexed by node id) at a global
  /// commit. Records one violation on mismatch. Returns the number of new
  /// error-severity violations (0 or 1).
  uint64_t check_lockstep(const std::vector<Fingerprint>& all,
                          uint64_t phase);

  const Report& report() const { return report_; }

 private:
  struct ElemKey {
    uint32_t array;
    uint64_t index;
    bool operator==(const ElemKey&) const = default;
  };
  struct ElemKeyHash {
    size_t operator()(const ElemKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.array) << 48) ^ k.index;
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  /// Per-element access summary within one commit batch.
  struct ElemState {
    uint8_t op_mask = 0;
    bool multi_vp = false;       // ≥2 distinct writers
    bool multi_entry = false;    // ≥2 entries (same writer counts)
    bool set_conflict = false;   // ≥2 distinct writers used kOpSet
    bool has_writer = false;
    bool has_set = false;
    uint64_t first_vp = 0;       // first writer seen
    uint64_t other_vp = 0;       // an example second writer
    uint64_t first_set_vp = 0;
    uint64_t other_set_vp = 0;
  };

  void add_violation(Violation v);
  void fold(uint64_t value);  // chain one event word into the fingerprint

  int node_;
  Report report_;

  // Lockstep fingerprint state.
  uint64_t fp_hash_;
  uint64_t arrays_created_ = 0;
  uint64_t groups_coordinated_ = 0;
  uint64_t global_phases_ = 0;

  // Commit-scan state (cleared in finish_commit).
  bool commit_global_ = false;
  uint64_t commit_phase_ = 0;
  std::unordered_map<ElemKey, ElemState, ElemKeyHash> elems_;

  // Per-array mask of op values registered non-commutative (class e).
  std::unordered_map<uint32_t, uint8_t> noncommutative_ops_;
};

}  // namespace ppm::check
