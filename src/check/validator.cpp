#include "check/validator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ppm::check {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// Event tags folded into the fingerprint ahead of the event's parameters,
// so e.g. "created array of 8" cannot collide with "coordinated group 8".
constexpr uint64_t kTagArray = 0xA1;
constexpr uint64_t kTagGroup = 0xB2;
constexpr uint64_t kTagGlobalPhase = 0xC3;
constexpr uint64_t kTagMigration = 0xD4;
constexpr uint64_t kTagUserOp = 0xE5;

uint8_t popcount8(uint8_t v) {
  uint8_t c = 0;
  for (; v != 0; v &= static_cast<uint8_t>(v - 1)) ++c;
  return c;
}

}  // namespace

const char* op_name(uint8_t op) {
  switch (op) {
    case kOpSet: return "set";
    case kOpAdd: return "add";
    case kOpMin: return "min";
    case kOpMax: return "max";
    case kOpMul: return "mul";
    case kOpUser0: return "user0";
    case kOpUser1: return "user1";
    case kOpUser2: return "user2";
  }
  return "?";
}

PhaseValidator::PhaseValidator(int node) : node_(node), fp_hash_(kFnvOffset) {}

void PhaseValidator::fold(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    fp_hash_ ^= (value >> (i * 8)) & 0xff;
    fp_hash_ *= kFnvPrime;
  }
}

void PhaseValidator::add_violation(Violation v) {
  if (report_.violations.size() < kMaxRecordedViolations) {
    report_.violations.push_back(std::move(v));
  }
}

void PhaseValidator::on_array_created(uint32_t id, bool global, uint64_t n,
                                      uint32_t elem_size, uint8_t dist,
                                      int nodes) {
  ++arrays_created_;
  fold(kTagArray);
  fold((static_cast<uint64_t>(global) << 32) | id);
  fold(n);
  fold((static_cast<uint64_t>(elem_size) << 8) | dist);

  // Class (d): a global array with fewer elements than nodes leaves some
  // owners with zero local elements — legal, but usually a scaled-down
  // problem size that will not exercise the distribution the program
  // expects.
  if (global && n < static_cast<uint64_t>(nodes) && node_ == 0) {
    ++report_.shape_hazards;
    Violation v;
    v.kind = ViolationKind::kShapeHazard;
    v.severity = Severity::kWarning;
    v.node = node_;
    v.array_id = id;
    v.detail = strfmt(
        "global array %u has %llu element(s) on %d nodes; some nodes own "
        "nothing",
        id, static_cast<unsigned long long>(n), nodes);
    add_violation(std::move(v));
  }
}

void PhaseValidator::on_user_op_registered(uint32_t array, uint8_t op,
                                           bool commutative) {
  fold(kTagUserOp);
  fold((static_cast<uint64_t>(array) << 16) |
       (static_cast<uint64_t>(op) << 8) | (commutative ? 1 : 0));
  if (!commutative) {
    noncommutative_ops_[array] |= static_cast<uint8_t>(1u << op);
  }
}

void PhaseValidator::on_group_coordinated() {
  ++groups_coordinated_;
  fold(kTagGroup);
  fold(groups_coordinated_);
}

void PhaseValidator::on_migration_round(uint64_t arrays_planned,
                                        uint64_t moves, uint64_t plan_hash) {
  fold(kTagMigration);
  fold((arrays_planned << 32) | moves);
  fold(plan_hash);
}

void PhaseValidator::on_phase_start(bool global) {
  ++report_.phases_checked;
  if (global) {
    ++global_phases_;
    fold(kTagGlobalPhase);
    fold(global_phases_);
  }
  // Node phases are deliberately NOT folded into the fingerprint: they are
  // node-local by definition, and SPMD programs legitimately run different
  // node-phase counts per node (e.g. work branches on node_id).
}

void PhaseValidator::begin_commit(bool global_phase, uint64_t phase) {
  commit_global_ = global_phase;
  commit_phase_ = phase;
  elems_.clear();
}

void PhaseValidator::on_commit_entry(uint32_t array, uint64_t index,
                                     uint8_t op, uint64_t vp_rank) {
  ++report_.commit_entries_scanned;
  ElemState& st = elems_[ElemKey{array, index}];
  st.op_mask |= static_cast<uint8_t>(1u << op);
  if (!st.has_writer) {
    st.has_writer = true;
    st.first_vp = vp_rank;
  } else {
    st.multi_entry = true;
    if (vp_rank != st.first_vp) {
      st.multi_vp = true;
      st.other_vp = vp_rank;
    }
  }
  if (op == kOpSet) {
    if (!st.has_set) {
      st.has_set = true;
      st.first_set_vp = vp_rank;
    } else if (vp_rank != st.first_set_vp) {
      st.set_conflict = true;
      st.other_set_vp = vp_rank;
    }
  }
}

uint64_t PhaseValidator::finish_commit() {
  if (elems_.empty()) return 0;

  // Deterministic report order regardless of hash-map iteration: collect
  // offending elements and sort by (array, element).
  struct Finding {
    ElemKey key;
    ElemState st;
  };
  std::vector<Finding> findings;
  for (const auto& [key, st] : elems_) {
    const uint8_t accum_mask =
        st.op_mask & static_cast<uint8_t>(~(1u << kOpSet));
    const bool mixed =
        st.multi_vp &&
        ((st.has_set && accum_mask != 0) || popcount8(accum_mask) >= 2);
    bool noncomm = false;
    if (st.multi_entry && !noncommutative_ops_.empty()) {
      const auto it = noncommutative_ops_.find(key.array);
      noncomm = it != noncommutative_ops_.end() &&
                (st.op_mask & it->second) != 0;
    }
    if (st.set_conflict || mixed || noncomm) findings.push_back({key, st});
  }
  elems_.clear();
  if (findings.empty()) return 0;
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.key.array != b.key.array ? a.key.array < b.key.array
                                                : a.key.index < b.key.index;
            });

  uint64_t errors = 0;
  for (const Finding& f : findings) {
    const ElemState& st = f.st;
    Violation v;
    v.severity = Severity::kError;
    v.node = node_;
    v.array_id = f.key.array;
    v.element = f.key.index;
    v.phase = commit_phase_;
    v.global_phase = commit_global_;
    if (st.set_conflict) {
      ++report_.set_set_conflicts;
      ++errors;
      v.kind = ViolationKind::kSetSetConflict;
      v.vp_a = st.first_set_vp;
      v.vp_b = st.other_set_vp;
      v.detail = strfmt(
          "VPs %llu and %llu both set() element %llu of array %u in one "
          "phase; commit order silently picks a winner",
          static_cast<unsigned long long>(v.vp_a),
          static_cast<unsigned long long>(v.vp_b),
          static_cast<unsigned long long>(v.element), v.array_id);
      ++report_.conflicts_by_array[v.array_id];
      add_violation(v);
    }
    const uint8_t accum_mask =
        st.op_mask & static_cast<uint8_t>(~(1u << kOpSet));
    const bool mixed =
        st.multi_vp &&
        ((st.has_set && accum_mask != 0) || popcount8(accum_mask) >= 2);
    if (mixed) {
      ++report_.mixed_op_conflicts;
      ++errors;
      v.kind = ViolationKind::kMixedOpConflict;
      v.vp_a = st.first_vp;
      v.vp_b = st.other_vp;
      std::string ops;
      for (uint8_t op = 0; op < kOpCount; ++op) {
        if ((st.op_mask & (1u << op)) != 0) {
          if (!ops.empty()) ops += '+';
          ops += op_name(op);
        }
      }
      v.detail = strfmt(
          "element %llu of array %u received non-commuting ops {%s} from "
          "different VPs in one phase; result depends on VP rank order",
          static_cast<unsigned long long>(v.element), v.array_id,
          ops.c_str());
      ++report_.conflicts_by_array[v.array_id];
      add_violation(v);
    }
    uint8_t noncomm_hits = 0;
    if (st.multi_entry && !noncommutative_ops_.empty()) {
      const auto it = noncommutative_ops_.find(f.key.array);
      if (it != noncommutative_ops_.end()) {
        noncomm_hits = static_cast<uint8_t>(st.op_mask & it->second);
      }
    }
    if (noncomm_hits != 0) {
      ++report_.non_commutative_accums;
      ++errors;
      v.kind = ViolationKind::kNonCommutativeAccum;
      v.vp_a = st.first_vp;
      v.vp_b = st.multi_vp ? st.other_vp : st.first_vp;
      std::string ops;
      for (uint8_t op = 0; op < kOpCount; ++op) {
        if ((noncomm_hits & (1u << op)) != 0) {
          if (!ops.empty()) ops += '+';
          ops += op_name(op);
        }
      }
      v.detail = strfmt(
          "element %llu of array %u received multiple entries including "
          "non-commutative accumulate op(s) {%s} in one phase; owner-side "
          "application order (by source node) is not the VP rank order",
          static_cast<unsigned long long>(v.element), v.array_id,
          ops.c_str());
      ++report_.conflicts_by_array[v.array_id];
      add_violation(std::move(v));
    }
  }
  return errors;
}

Fingerprint PhaseValidator::fingerprint() const {
  Fingerprint fp;
  fp.hash = fp_hash_;
  fp.arrays_created = arrays_created_;
  fp.groups_coordinated = groups_coordinated_;
  fp.global_phases = global_phases_;
  return fp;
}

uint64_t PhaseValidator::check_lockstep(const std::vector<Fingerprint>& all,
                                        uint64_t phase) {
  const Fingerprint mine = fingerprint();
  int first_differing = -1;
  for (size_t n = 0; n < all.size(); ++n) {
    if (!(all[n] == mine)) {
      first_differing = static_cast<int>(n);
      break;
    }
  }
  if (first_differing < 0) return 0;

  ++report_.lockstep_mismatches;
  const Fingerprint& theirs = all[static_cast<size_t>(first_differing)];
  std::string why;
  if (theirs.arrays_created != mine.arrays_created) {
    why = strfmt("node %d created %llu array(s) vs %llu on node %d",
                 first_differing,
                 static_cast<unsigned long long>(theirs.arrays_created),
                 static_cast<unsigned long long>(mine.arrays_created), node_);
  } else if (theirs.groups_coordinated != mine.groups_coordinated) {
    why = strfmt("node %d coordinated %llu group(s) vs %llu on node %d",
                 first_differing,
                 static_cast<unsigned long long>(theirs.groups_coordinated),
                 static_cast<unsigned long long>(mine.groups_coordinated),
                 node_);
  } else if (theirs.global_phases != mine.global_phases) {
    why = strfmt("node %d ran %llu global phase(s) vs %llu on node %d",
                 first_differing,
                 static_cast<unsigned long long>(theirs.global_phases),
                 static_cast<unsigned long long>(mine.global_phases), node_);
  } else {
    why = strfmt(
        "same event counts but different parameters (array sizes, element "
        "types, distributions or event order differ between node %d and "
        "node %d)",
        first_differing, node_);
  }
  Violation v;
  v.kind = ViolationKind::kLockstepMismatch;
  v.severity = Severity::kError;
  v.node = node_;
  v.phase = phase;
  v.global_phase = true;
  v.detail = "SPMD lockstep divergence at global commit: " + why;
  add_violation(std::move(v));
  return 1;
}

}  // namespace ppm::check
