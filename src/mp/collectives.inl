// Template collective implementations for mp::Comm. Included at the end of
// comm.hpp; not a standalone header.
#pragma once

#include <algorithm>

#include "util/error.hpp"

namespace ppm::mp {

namespace detail {
template <typename T>
Bytes pack_vec(std::span<const T> values) {
  ByteWriter w;
  w.put_span(values);
  return std::move(w).take();
}

template <typename T>
std::vector<T> unpack_vec(const Bytes& data) {
  ByteReader r(data);
  auto v = r.get_vector<T>();
  PPM_CHECK(r.exhausted(), "collective payload has trailing bytes");
  return v;
}
}  // namespace detail

template <typename T>
void Comm::bcast(std::vector<T>& data, int root) {
  const int p = size();
  PPM_CHECK(root >= 0 && root < p, "bcast: bad root %d", root);
  if (p == 1) return;
  const uint64_t seq = next_collective_seq();
  const int vr = (rank() - root + p) % p;  // rank relative to the root
  // Binomial tree: in round k (mask = 2^k) ranks below the mask forward to
  // rank+mask; a rank first appears as a receiver in the round of its MSB.
  uint32_t round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    if (vr < mask) {
      const int dst_vr = vr + mask;
      if (dst_vr < p) {
        const int dst = (dst_vr + root) % p;
        send_raw(to_world(dst), collective_kind(seq, round),
                 detail::pack_vec(std::span<const T>(data)));
      }
    } else if (vr < 2 * mask) {
      const int src = (vr - mask + root) % p;
      data = detail::unpack_vec<T>(
          recv_kind(to_world(src), collective_kind(seq, round)));
    }
  }
}

template <typename T, typename Op>
std::vector<T> Comm::reduce(std::span<const T> local, Op op, int root) {
  const int p = size();
  PPM_CHECK(root >= 0 && root < p, "reduce: bad root %d", root);
  std::vector<T> acc(local.begin(), local.end());
  if (p == 1) return acc;
  const uint64_t seq = next_collective_seq();
  const int vr = (rank() - root + p) % p;
  uint32_t round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    if ((vr & mask) != 0) {
      // Hand the partial to the parent and leave the tree.
      const int dst = (vr - mask + root) % p;
      send_raw(to_world(dst), collective_kind(seq, round),
               detail::pack_vec(std::span<const T>(acc)));
      acc.clear();
      break;
    }
    const int src_vr = vr + mask;
    if (src_vr < p) {
      const int src = (src_vr + root) % p;
      const auto partial = detail::unpack_vec<T>(
          recv_kind(to_world(src), collective_kind(seq, round)));
      PPM_CHECK(partial.size() == acc.size(),
                "reduce: mismatched contribution sizes (%zu vs %zu)",
                partial.size(), acc.size());
      for (size_t i = 0; i < acc.size(); ++i) acc[i] = op(acc[i], partial[i]);
    }
  }
  return rank() == root ? acc : std::vector<T>{};
}

template <typename T, typename Op>
std::vector<T> Comm::allreduce(std::span<const T> local, Op op) {
  std::vector<T> result = reduce(local, op, /*root=*/0);
  if (rank() != 0) result.resize(local.size());
  bcast(result, /*root=*/0);
  return result;
}

template <typename T>
std::vector<std::vector<T>> Comm::gatherv(std::span<const T> local,
                                          int root) {
  const int p = size();
  PPM_CHECK(root >= 0 && root < p, "gatherv: bad root %d", root);
  const uint64_t seq = next_collective_seq();
  if (rank() != root) {
    send_raw(to_world(root), collective_kind(seq, 0),
             detail::pack_vec(local));
    return {};
  }
  std::vector<std::vector<T>> out(static_cast<size_t>(p));
  out[static_cast<size_t>(root)].assign(local.begin(), local.end());
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    out[static_cast<size_t>(src)] = detail::unpack_vec<T>(
        recv_kind(to_world(src), collective_kind(seq, 0)));
  }
  return out;
}

template <typename T>
std::vector<std::vector<T>> Comm::allgatherv(std::span<const T> local) {
  const int p = size();
  std::vector<std::vector<T>> out(static_cast<size_t>(p));
  out[static_cast<size_t>(rank())].assign(local.begin(), local.end());
  if (p == 1) return out;
  const uint64_t seq = next_collective_seq();
  // Ring: in step s, pass along the block that originated s-1 hops back.
  const int right = (rank() + 1) % p;
  const int left = (rank() - 1 + p) % p;
  for (int s = 1; s < p; ++s) {
    const int send_idx = (rank() - s + 1 + p) % p;
    const int recv_idx = (rank() - s + p) % p;
    send_raw(to_world(right), collective_kind(seq, static_cast<uint32_t>(s)),
             detail::pack_vec(
                 std::span<const T>(out[static_cast<size_t>(send_idx)])));
    out[static_cast<size_t>(recv_idx)] = detail::unpack_vec<T>(recv_kind(
        to_world(left), collective_kind(seq, static_cast<uint32_t>(s))));
  }
  return out;
}

template <typename T>
std::vector<std::vector<T>> Comm::alltoallv(
    const std::vector<std::vector<T>>& blocks) {
  const int p = size();
  PPM_CHECK(static_cast<int>(blocks.size()) == p,
            "alltoallv: need exactly one block per rank (%zu given, p=%d)",
            blocks.size(), p);
  std::vector<std::vector<T>> out(static_cast<size_t>(p));
  out[static_cast<size_t>(rank())] = blocks[static_cast<size_t>(rank())];
  if (p == 1) return out;
  const uint64_t seq = next_collective_seq();
  // Rotational pairwise exchange: round r talks to rank +- r.
  for (int r = 1; r < p; ++r) {
    const int dst = (rank() + r) % p;
    const int src = (rank() - r + p) % p;
    send_raw(to_world(dst), collective_kind(seq, static_cast<uint32_t>(r)),
             detail::pack_vec(
                 std::span<const T>(blocks[static_cast<size_t>(dst)])));
    out[static_cast<size_t>(src)] = detail::unpack_vec<T>(recv_kind(
        to_world(src), collective_kind(seq, static_cast<uint32_t>(r))));
  }
  return out;
}

template <typename T, typename Op>
T Comm::scan_inclusive(T value, Op op) {
  const int p = size();
  const uint64_t seq = next_collective_seq();
  T acc = value;
  if (rank() > 0) {
    const auto prev = detail::unpack_vec<T>(
        recv_kind(to_world(rank() - 1), collective_kind(seq, 0)));
    PPM_CHECK(prev.size() == 1, "scan: malformed partial");
    acc = op(prev[0], value);
  }
  if (rank() + 1 < p) {
    send_raw(to_world(rank() + 1), collective_kind(seq, 0),
             detail::pack_vec(std::span<const T>(&acc, 1)));
  }
  return acc;
}

}  // namespace ppm::mp
