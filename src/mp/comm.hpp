// MPI-like message-passing library over the simulated fabric.
//
// One rank per simulated core (rank = node * cores_per_node + core), which
// mirrors how MPI ran on the paper's Cray XT4: processes on cores of the
// same node still exchange data by message passing, paying per-message
// software cost even though no wire is involved.
//
// The library provides blocking and non-blocking point-to-point operations
// with MPI-style (source, tag) matching including wildcards, and the
// collectives the baseline applications need (barrier, bcast, reduce,
// allreduce, gather, allgather(v), alltoall(v), scan). Sends are eager and
// buffered: send() completes locally once the payload is handed to the
// fabric, so the usual "both sides send then recv" exchange patterns do not
// deadlock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <span>
#include <vector>

#include "cluster/machine.hpp"
#include "net/fabric.hpp"
#include "util/byte_buffer.hpp"

namespace ppm::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// User tags must be in [0, kMaxUserTag]; higher values are reserved for
/// collective traffic.
inline constexpr int kMaxUserTag = (1 << 30) - 1;

struct Status {
  int source = kAnySource;  // rank within the receiving communicator
  int tag = kAnyTag;
  size_t bytes = 0;
};

class Comm;

namespace detail {
/// Membership of a sub-communicator: world ranks of the members (sorted by
/// the split ordering) and the reverse index.
struct CommGroup {
  uint32_t token = 0;  // isolates matching between communicators
  std::vector<int> members;            // local rank -> world rank
  std::unordered_map<int, int> index;  // world rank -> local rank
};
}  // namespace detail

/// Per-machine message-passing state shared by all ranks.
class World {
 public:
  explicit World(cluster::Machine& machine);

  int size() const { return size_; }
  cluster::Machine& machine() { return machine_; }

  /// Rank handle for the calling fiber. The caller must be the fiber that
  /// owns this rank's endpoint (one consumer per rank).
  Comm comm(int rank);
  Comm comm_at(const cluster::Place& place);

  int rank_of(const cluster::Place& place) const {
    return place.node * machine_.cores_per_node() + place.core;
  }
  int node_of(int rank) const { return rank / machine_.cores_per_node(); }
  int core_of(int rank) const { return rank % machine_.cores_per_node(); }

 private:
  friend class Comm;
  struct RankState {
    std::deque<net::Message> unexpected;
    std::unordered_map<uint32_t, uint64_t> collective_seq;  // per comm
  };

  cluster::Machine& machine_;
  int size_;
  std::vector<RankState> ranks_;
};

/// Non-blocking operation handle. Send requests complete immediately
/// (eager buffered); receive requests complete in wait().
class Request {
 public:
  bool valid() const { return active_; }

 private:
  friend class Comm;
  bool active_ = false;
  bool is_recv_ = false;
  int peer_ = kAnySource;
  int tag_ = kAnyTag;
};

class Comm {
 public:
  /// Rank within this communicator.
  int rank() const { return local_rank_; }
  /// Size of this communicator.
  int size() const {
    return group_ ? static_cast<int>(group_->members.size())
                  : world_->size();
  }
  /// Rank within the world (endpoint identity).
  int world_rank() const { return world_rank_; }

  /// Split this communicator MPI_Comm_split-style: members with the same
  /// `color` form a new communicator, ordered by (key, old rank).
  /// Collective over this communicator.
  Comm split(int color, int key);

  // ---- Point-to-point ----

  /// Blocking (buffered-eager) send of raw bytes with a user tag.
  void send(int dst, int tag, Bytes data);

  /// Blocking receive matching (src, tag); wildcards allowed.
  Bytes recv(int src = kAnySource, int tag = kAnyTag,
             Status* status = nullptr);

  /// Non-blocking send/recv.
  Request isend(int dst, int tag, Bytes data);
  Request irecv(int src = kAnySource, int tag = kAnyTag);
  Bytes wait(Request& request, Status* status = nullptr);
  void waitall(std::span<Request> requests);

  /// Non-blocking probe for a matching message.
  bool iprobe(int src = kAnySource, int tag = kAnyTag,
              Status* status = nullptr);

  // ---- Typed convenience wrappers ----

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_vec(int dst, int tag, std::span<const T> values) {
    ByteWriter w;
    w.put_span(values);
    send(dst, tag, std::move(w).take());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dst, int tag, const T& value) {
    send_vec<T>(dst, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv_vec(int src = kAnySource, int tag = kAnyTag,
                          Status* status = nullptr) {
    const Bytes data = recv(src, tag, status);
    ByteReader r(data);
    return r.get_vector<T>();
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int src = kAnySource, int tag = kAnyTag,
               Status* status = nullptr) {
    auto v = recv_vec<T>(src, tag, status);
    PPM_CHECK(v.size() == 1, "recv_value: expected 1 element, got %zu",
              v.size());
    return v[0];
  }

  // ---- Collectives (must be called by all ranks, in the same order) ----

  void barrier();

  template <typename T>
  void bcast(std::vector<T>& data, int root);

  /// Element-wise reduction of equally-sized vectors onto `root`.
  template <typename T, typename Op>
  std::vector<T> reduce(std::span<const T> local, Op op, int root);

  template <typename T, typename Op>
  std::vector<T> allreduce(std::span<const T> local, Op op);

  template <typename T, typename Op>
  T allreduce_value(T value, Op op) {
    return allreduce(std::span<const T>(&value, 1), op)[0];
  }

  /// Gather variable-length per-rank blocks onto `root`; result indexed by
  /// source rank (empty on non-roots).
  template <typename T>
  std::vector<std::vector<T>> gatherv(std::span<const T> local, int root);

  /// Ring allgather of variable-length blocks; result indexed by rank.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> local);

  /// Personalized all-to-all: blocks[d] goes to rank d; returns blocks
  /// received, indexed by source rank.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& blocks);

  /// Inclusive prefix combine over ranks (chain algorithm).
  template <typename T, typename Op>
  T scan_inclusive(T value, Op op);

 private:
  friend class World;
  Comm(World* world, int world_rank)
      : world_(world), world_rank_(world_rank), local_rank_(world_rank) {}
  Comm(World* world, int world_rank, int local_rank,
       std::shared_ptr<const detail::CommGroup> group)
      : world_(world), world_rank_(world_rank), local_rank_(local_rank),
        group_(std::move(group)) {}

  void send_raw(int dst, uint64_t kind, Bytes data);
  Bytes recv_kind(int src, uint64_t kind);  // exact-kind matching receive
  net::Endpoint& endpoint();
  World::RankState& state();
  bool matches(const net::Message& m, int world_cores, int src,
               int tag) const;

  /// Per-call collective kind: unique (sequence, round) pair with the
  /// collective flag set. All ranks call collectives in the same order, so
  /// sequences agree across ranks.
  uint64_t collective_kind(uint64_t seq, uint32_t round) const;
  uint64_t next_collective_seq();
  /// World rank of a local rank in this communicator.
  int to_world(int local) const {
    return group_ ? group_->members[static_cast<size_t>(local)] : local;
  }
  uint32_t token() const { return group_ ? group_->token : 0; }

  World* world_;
  int world_rank_;
  int local_rank_;
  std::shared_ptr<const detail::CommGroup> group_;  // null = world
};

}  // namespace ppm::mp

#include "mp/collectives.inl"
