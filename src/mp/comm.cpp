#include "mp/comm.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::mp {

namespace {
// Message kind layout:
//   bit 63            collective flag
//   bits 62..40       communicator token (0 = world)
//   p2p:  bits 31..0  user tag
//   coll: bits 39..8  sequence, bits 7..0 round
constexpr uint64_t kCollectiveFlag = 1ULL << 63;
constexpr int kTokenShift = 40;
constexpr uint64_t kTokenMask = (1ULL << 23) - 1;

uint32_t token_of(uint64_t kind) {
  return static_cast<uint32_t>((kind >> kTokenShift) & kTokenMask);
}
}  // namespace

World::World(cluster::Machine& machine)
    : machine_(machine), size_(machine.config().total_cores()) {
  ranks_.resize(static_cast<size_t>(size_));
}

Comm World::comm(int rank) {
  PPM_CHECK(rank >= 0 && rank < size_, "bad rank %d (world size %d)", rank,
            size_);
  return Comm(this, rank);
}

Comm World::comm_at(const cluster::Place& place) {
  return comm(rank_of(place));
}

net::Endpoint& Comm::endpoint() {
  return world_->machine_.fabric().endpoint(world_->node_of(world_rank_),
                                            world_->core_of(world_rank_));
}

World::RankState& Comm::state() {
  return world_->ranks_[static_cast<size_t>(world_rank_)];
}

void Comm::send(int dst, int tag, Bytes data) {
  PPM_CHECK(tag >= 0 && tag <= kMaxUserTag, "bad user tag %d", tag);
  PPM_CHECK(dst >= 0 && dst < size(), "bad destination rank %d", dst);
  send_raw(to_world(dst),
           (static_cast<uint64_t>(token()) << kTokenShift) |
               static_cast<uint64_t>(tag),
           std::move(data));
}

void Comm::send_raw(int dst, uint64_t kind, Bytes data) {
  PPM_CHECK(dst >= 0 && dst < world_->size(), "bad destination rank %d",
            dst);
  net::Message m;
  m.src_node = world_->node_of(world_rank_);
  m.src_port = world_->core_of(world_rank_);
  m.dst_node = world_->node_of(dst);
  m.dst_port = world_->core_of(dst);
  m.kind = kind;
  m.payload = std::move(data);
  world_->machine_.fabric().send(std::move(m));
}

bool Comm::matches(const net::Message& m, int world_cores, int src,
                   int tag) const {
  if ((m.kind & kCollectiveFlag) != 0) return false;  // p2p matching only
  if (token_of(m.kind) != token()) return false;      // other communicator
  const int msg_src_world = m.src_node * world_cores + m.src_port;
  int msg_src = msg_src_world;
  if (group_) {
    const auto it = group_->index.find(msg_src_world);
    if (it == group_->index.end()) return false;  // sender not a member
    msg_src = it->second;
  }
  const int msg_tag = static_cast<int>(m.kind & 0xffffffffULL);
  return (src == kAnySource || src == msg_src) &&
         (tag == kAnyTag || tag == msg_tag);
}

Bytes Comm::recv(int src, int tag, Status* status) {
  PPM_CHECK(src == kAnySource || (src >= 0 && src < size()),
            "bad source rank %d", src);
  PPM_CHECK(tag == kAnyTag || (tag >= 0 && tag <= kMaxUserTag),
            "bad user tag %d", tag);
  const int cores = world_->machine_.cores_per_node();
  auto& unexpected = state().unexpected;

  auto finish = [&](net::Message m) -> Bytes {
    if (status != nullptr) {
      const int src_world = m.src_node * cores + m.src_port;
      status->source =
          group_ ? group_->index.at(src_world) : src_world;
      status->tag = static_cast<int>(m.kind & 0xffffffffULL);
      status->bytes = m.payload.size();
    }
    return std::move(m.payload);
  };

  for (auto it = unexpected.begin(); it != unexpected.end(); ++it) {
    if (matches(*it, cores, src, tag)) {
      net::Message m = std::move(*it);
      unexpected.erase(it);
      return finish(std::move(m));
    }
  }
  for (;;) {
    net::Message m = endpoint().recv();
    if (matches(m, cores, src, tag)) return finish(std::move(m));
    unexpected.push_back(std::move(m));
  }
}

Bytes Comm::recv_kind(int src, uint64_t kind) {
  auto& unexpected = state().unexpected;
  for (auto it = unexpected.begin(); it != unexpected.end(); ++it) {
    const int msg_src =
        it->src_node * world_->machine_.cores_per_node() + it->src_port;
    if (it->kind == kind && msg_src == src) {
      Bytes payload = std::move(it->payload);
      unexpected.erase(it);
      return payload;
    }
  }
  for (;;) {
    net::Message m = endpoint().recv();
    const int msg_src =
        m.src_node * world_->machine_.cores_per_node() + m.src_port;
    if (m.kind == kind && msg_src == src) return std::move(m.payload);
    unexpected.push_back(std::move(m));
  }
}

Request Comm::isend(int dst, int tag, Bytes data) {
  // Eager buffered protocol: hand to the fabric now; complete immediately.
  send(dst, tag, std::move(data));
  Request r;
  r.active_ = true;
  r.is_recv_ = false;
  return r;
}

Request Comm::irecv(int src, int tag) {
  Request r;
  r.active_ = true;
  r.is_recv_ = true;
  r.peer_ = src;
  r.tag_ = tag;
  return r;
}

Bytes Comm::wait(Request& request, Status* status) {
  PPM_CHECK(request.active_, "wait on an inactive request");
  request.active_ = false;
  if (!request.is_recv_) return {};
  return recv(request.peer_, request.tag_, status);
}

void Comm::waitall(std::span<Request> requests) {
  for (Request& r : requests) {
    if (r.valid()) (void)wait(r);
  }
}

bool Comm::iprobe(int src, int tag, Status* status) {
  const int cores = world_->machine_.cores_per_node();
  auto& unexpected = state().unexpected;
  // Drain everything currently delivered into the unexpected queue first.
  net::Message m;
  while (endpoint().try_recv(&m)) unexpected.push_back(std::move(m));
  for (const auto& msg : unexpected) {
    if (matches(msg, cores, src, tag)) {
      if (status != nullptr) {
        const int src_world = msg.src_node * cores + msg.src_port;
        status->source =
            group_ ? group_->index.at(src_world) : src_world;
        status->tag = static_cast<int>(msg.kind & 0xffffffffULL);
        status->bytes = msg.payload.size();
      }
      return true;
    }
  }
  return false;
}

uint64_t Comm::collective_kind(uint64_t seq, uint32_t round) const {
  PPM_CHECK(round < 256, "collective round overflow");
  PPM_CHECK(seq < (1ULL << 32), "collective sequence overflow");
  return kCollectiveFlag |
         (static_cast<uint64_t>(token()) << kTokenShift) | (seq << 8) |
         round;
}

uint64_t Comm::next_collective_seq() {
  return state().collective_seq[token()]++;
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2 p) rounds; in round k each rank
  // signals (rank + 2^k) % p and hears from (rank - 2^k + p) % p.
  const int p = size();
  if (p == 1) return;
  const uint64_t seq = next_collective_seq();
  uint32_t round = 0;
  for (int offset = 1; offset < p; offset *= 2, ++round) {
    const int to = (local_rank_ + offset) % p;
    const int from = (local_rank_ - offset % p + p) % p;
    send_raw(to_world(to), collective_kind(seq, round), Bytes{});
    (void)recv_kind(to_world(from), collective_kind(seq, round));
  }
}

Comm Comm::split(int color, int key) {
  // Everyone shares (color, key, world rank); members of the same color
  // form the new communicator ordered by (key, old local rank).
  struct Entry {
    int color;
    int key;
    int old_rank;
    int world;
  };
  const Entry mine{color, key, local_rank_, world_rank_};
  const auto all = allgatherv(std::span<const Entry>(&mine, 1));
  std::vector<Entry> members;
  for (const auto& block : all) {
    for (const Entry& e : block) {
      if (e.color == color) members.push_back(e);
    }
  }
  std::sort(members.begin(), members.end(),
            [](const Entry& a, const Entry& b) {
              return a.key != b.key ? a.key < b.key
                                    : a.old_rank < b.old_rank;
            });
  auto group = std::make_shared<detail::CommGroup>();
  // Deterministic token: every member derives it from shared data. The
  // sequence below was consumed identically by all members' allgatherv.
  const uint64_t seq = state().collective_seq[token()];
  group->token = static_cast<uint32_t>(
      (mix64((static_cast<uint64_t>(token()) << 32) ^ (seq << 8) ^
             static_cast<uint64_t>(color + 1)) &
       kTokenMask));
  if (group->token == 0) group->token = 1;
  int my_local = -1;
  for (size_t i = 0; i < members.size(); ++i) {
    group->members.push_back(members[i].world);
    group->index.emplace(members[i].world, static_cast<int>(i));
    if (members[i].world == world_rank_) my_local = static_cast<int>(i);
  }
  PPM_CHECK(my_local >= 0, "split: caller missing from its own color");
  return Comm(world_, world_rank_, my_local, std::move(group));
}

}  // namespace ppm::mp
