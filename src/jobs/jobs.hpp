// ppm::jobs — a deterministic multi-tenant job scheduler for the simulated
// machine (docs/SCHEDULER.md).
//
// A seeded stream of heterogeneous job specs (CG solves, matgen, Barnes-
// Hut-style steps at mixed sizes and node counts) is admitted through a
// bounded JobQueue; a gang scheduler allocates disjoint node sets of one
// shared cluster::Machine under a pluggable policy (FIFO, backfill,
// smallest-first). Each running job is a tenant ppm::Runtime on its node
// partition — jobs share the one fabric, so inter-job contention is real
// (turn MachineConfig::backbone_bytes_per_ns on to make disjoint node
// sets contend) and attributed per job from FabricStats::per_node deltas.
//
// Everything runs in virtual time on the deterministic sim engine: the
// same seed + policy reproduce the job stream, the placements, the
// completion order, every per-job vtime, and every counter bit-for-bit.
// Committed job state is timing-independent (the PPM phase contract), so
// each co-scheduled job's final state digest equals the digest of the
// same job run alone on an idle machine — ppm_stress --multi-job checks
// exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/machine.hpp"
#include "core/options.hpp"

namespace ppm::jobs {

enum class JobKind : uint8_t {
  kCg = 0,         // conjugate-gradient solve on a 1-D Laplacian
  kMatgen = 1,     // scattered-write matrix/histogram generator
  kBarnesHut = 2,  // n-body-style force/integrate steps
};
const char* kind_name(JobKind kind);

struct JobSpec {
  uint64_t id = 0;            // assigned by the stream (dense, arrival order)
  JobKind kind = JobKind::kCg;
  int nodes_required = 1;     // gang size; > machine nodes => clean rejection
  uint64_t size = 1024;       // elements / particles
  uint64_t steps = 4;         // workload steps (CG iterations, sim steps)
  uint64_t seed = 1;          // workload-content seed
  int64_t arrival_ns = 0;     // virtual submission time
};

/// Deterministic heterogeneous job stream: mixed kinds, mostly small gangs
/// with occasional near-full-machine jobs (those make FIFO head-of-line
/// blocking visible against backfill), arrivals spread over virtual time.
std::vector<JobSpec> sample_jobs(uint64_t seed, int count, int machine_nodes);

enum class Policy : uint8_t {
  kFifo,           // strict arrival order; head-of-line blocks the queue
  kBackfill,       // first queued job that fits the free nodes
  kSmallestFirst,  // smallest fitting gang (ties: queue order)
};
const char* policy_name(Policy policy);
bool parse_policy(std::string_view name, Policy* out);

struct JobsConfig {
  /// The one shared machine all jobs are co-scheduled onto. Set
  /// backbone_bytes_per_ns to make inter-job fabric contention real.
  cluster::MachineConfig machine{};
  /// Runtime options for every job's tenant Runtime (trace must stay off:
  /// the fabric/engine trace recorders are machine-wide singletons).
  RuntimeOptions runtime{};
  Policy policy = Policy::kFifo;
  uint64_t seed = 1;
  int job_count = 8;
  /// Explicit job stream (must be sorted by arrival_ns); empty => the
  /// seeded sample_jobs stream. Ids are reassigned densely either way.
  std::vector<JobSpec> jobs;
  /// Admission backpressure: the generator blocks while this many jobs
  /// are queued (a preempted job's requeue is exempt — drain cannot
  /// deadlock against admission).
  size_t queue_capacity = 4;
  /// Workload steps between drain checks (each check is one broadcast).
  uint64_t steps_per_chunk = 2;
  /// Drain/preempt exercise: when >= 0, the job with this id is preempted
  /// at its first chunk boundary (checkpoint -> requeue at the head ->
  /// relaunch from the checkpoint, possibly on different nodes).
  int64_t preempt_job_id = -1;
};

/// Per-job outcome. Contention-attribution fields are deltas of
/// FabricStats::per_node over the job's node allocation and run window —
/// exact attribution, since node sets are disjoint and runtime traffic
/// never leaves the partition.
struct JobStats {
  JobSpec spec;
  bool rejected = false;       // wanted more nodes than the machine has
  int64_t start_ns = 0;        // first launch vtime
  int64_t finish_ns = 0;       // last node fiber done (0 if rejected)
  int64_t wait_ns = 0;         // arrival -> first launch
  int64_t latency_ns = 0;      // arrival -> finish
  int preemptions = 0;
  std::vector<int> machine_nodes;  // final placement (physical node ids)
  uint64_t state_digest = 0;       // FNV-1a over final committed arrays
  uint64_t fabric_tx_messages = 0;
  uint64_t fabric_tx_bytes = 0;
  uint64_t backbone_wait_ns = 0;   // queued behind other tenants' traffic
  uint64_t fetch_stall_ns = 0;     // summed over the job's NodeRuntimes
  uint64_t blocks_fetched = 0;
};

struct JobsResult {
  std::vector<JobStats> jobs;              // indexed by job id
  std::vector<uint64_t> completion_order;  // job ids by finish vtime
  int completed_jobs = 0;
  int rejected_jobs = 0;
  int64_t makespan_ns = 0;  // first admitted arrival -> last finish
  double throughput_jobs_per_s = 0.0;  // completed jobs per vtime second
  int64_t p50_latency_ns = 0;
  int64_t p99_latency_ns = 0;
  /// Allocated node-time over machine node-time across the makespan.
  double node_utilization = 0.0;
  /// Achieved inter-node bytes/ns over the fabric capacity (the backbone
  /// when modeled, else the aggregate per-node NIC bandwidth).
  double fabric_utilization = 0.0;
  uint64_t fabric_bytes = 0;
  uint64_t backbone_wait_ns = 0;
  int64_t backpressure_ns = 0;  // generator vtime blocked on a full queue
  size_t max_queue_depth = 0;
};

/// Run the full stream to completion and report. Deterministic: same
/// config => bit-identical JobsResult (and to_json bytes).
JobsResult run_jobs(const JobsConfig& cfg);

/// Differential oracle helper: run one job alone on a fresh idle machine
/// (same per-node shape, no faults, no backbone) and return its final
/// state digest. A co-scheduled job's JobStats::state_digest must equal
/// this — contention and faults may move vtimes, never committed state.
uint64_t run_job_isolated(const JobSpec& spec, const JobsConfig& cfg);

/// Deterministic machine-readable report (schema "ppm_jobs/v1"; see
/// docs/SCHEDULER.md). Byte-identical across replays of the same config.
std::string to_json(const JobsConfig& cfg, const JobsResult& result);

}  // namespace ppm::jobs
