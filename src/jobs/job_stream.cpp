#include "jobs/jobs.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace ppm::jobs {

const char* kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kCg: return "cg";
    case JobKind::kMatgen: return "matgen";
    case JobKind::kBarnesHut: return "barneshut";
  }
  return "?";
}

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFifo: return "fifo";
    case Policy::kBackfill: return "backfill";
    case Policy::kSmallestFirst: return "smallest";
  }
  return "?";
}

bool parse_policy(std::string_view name, Policy* out) {
  if (name == "fifo") {
    *out = Policy::kFifo;
  } else if (name == "backfill") {
    *out = Policy::kBackfill;
  } else if (name == "smallest" || name == "smallest-first") {
    *out = Policy::kSmallestFirst;
  } else {
    return false;
  }
  return true;
}

std::vector<JobSpec> sample_jobs(uint64_t seed, int count,
                                 int machine_nodes) {
  Rng rng(mix64(seed ^ 0x10b5c4ed01e5ULL));
  std::vector<JobSpec> out;
  out.reserve(static_cast<size_t>(std::max(0, count)));
  int64_t arrival = 0;
  for (int i = 0; i < count; ++i) {
    JobSpec s;
    s.id = static_cast<uint64_t>(i);
    const uint64_t kind_pick = rng.next_below(10);
    s.kind = kind_pick < 4   ? JobKind::kCg
             : kind_pick < 7 ? JobKind::kMatgen
                             : JobKind::kBarnesHut;
    // Gang-size mix: mostly 1-2 nodes, some half-machine, occasionally the
    // whole machine. The big gangs are what separates FIFO (head-of-line
    // blocked behind them) from backfill on the bench.
    const uint64_t nd = rng.next_below(8);
    const int want = nd < 3   ? 1
                     : nd < 5 ? 2
                     : nd < 7 ? std::max(1, machine_nodes / 2)
                              : machine_nodes;
    s.nodes_required = std::min(want, std::max(1, machine_nodes));
    switch (s.kind) {
      case JobKind::kCg:
        s.size = 256 + 64 * rng.next_below(8);
        break;
      case JobKind::kMatgen:
        s.size = 384 + 128 * rng.next_below(8);
        break;
      case JobKind::kBarnesHut:
        s.size = 128 + 32 * rng.next_below(8);
        break;
    }
    s.steps = 2 + rng.next_below(4);
    s.seed = rng.next_u64();
    arrival += 20'000 + static_cast<int64_t>(rng.next_below(180'000));
    s.arrival_ns = arrival;
    out.push_back(s);
  }
  return out;
}

}  // namespace ppm::jobs
