// Deterministic JSON report for a jobs run (schema "ppm_jobs/v1").
//
// Built with snprintf into a std::string: no locale, no iostream state,
// fixed formats — replaying the same config must produce byte-identical
// output (the CLI smoke and the replay test compare raw bytes).
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "jobs/jobs.hpp"

namespace ppm::jobs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out.append(buf, static_cast<size_t>(n));
}

void append_u64(std::string& out, const char* key, uint64_t v,
                bool comma = true) {
  appendf(out, "\"%s\": %" PRIu64 "%s", key, v, comma ? ", " : "");
}

void append_i64(std::string& out, const char* key, int64_t v,
                bool comma = true) {
  appendf(out, "\"%s\": %" PRId64 "%s", key, v, comma ? ", " : "");
}

void append_f(std::string& out, const char* key, double v,
              bool comma = true) {
  appendf(out, "\"%s\": %.6f%s", key, v, comma ? ", " : "");
}

}  // namespace

std::string to_json(const JobsConfig& cfg, const JobsResult& result) {
  std::string out;
  out.reserve(4096);
  out += "{\n \"schema\": \"ppm_jobs/v1\",\n ";
  appendf(out, "\"policy\": \"%s\", ", policy_name(cfg.policy));
  append_u64(out, "seed", cfg.seed);
  appendf(out, "\"machine_nodes\": %d, ", cfg.machine.nodes);
  appendf(out, "\"cores_per_node\": %d, ", cfg.machine.cores_per_node);
  append_f(out, "backbone_bytes_per_ns", cfg.machine.backbone_bytes_per_ns);
  append_u64(out, "queue_capacity", cfg.queue_capacity);
  appendf(out, "\"jobs\": %zu,\n ", result.jobs.size());
  appendf(out, "\"completed_jobs\": %d, ", result.completed_jobs);
  appendf(out, "\"rejected_jobs\": %d, ", result.rejected_jobs);
  append_i64(out, "makespan_ns", result.makespan_ns);
  append_f(out, "throughput_jobs_per_s", result.throughput_jobs_per_s);
  append_i64(out, "p50_latency_ns", result.p50_latency_ns);
  append_i64(out, "p99_latency_ns", result.p99_latency_ns);
  out += "\n ";
  append_f(out, "node_utilization", result.node_utilization);
  append_f(out, "fabric_utilization", result.fabric_utilization);
  append_u64(out, "fabric_bytes", result.fabric_bytes);
  append_u64(out, "backbone_wait_ns", result.backbone_wait_ns);
  append_i64(out, "backpressure_ns", result.backpressure_ns);
  append_u64(out, "max_queue_depth", result.max_queue_depth, false);
  out += ",\n \"completion_order\": [";
  for (size_t i = 0; i < result.completion_order.size(); ++i) {
    appendf(out, "%s%" PRIu64, i == 0 ? "" : ", ",
            result.completion_order[i]);
  }
  out += "],\n \"per_job\": [\n";
  for (size_t i = 0; i < result.jobs.size(); ++i) {
    const JobStats& st = result.jobs[i];
    out += "  {";
    append_u64(out, "id", st.spec.id);
    appendf(out, "\"kind\": \"%s\", ", kind_name(st.spec.kind));
    appendf(out, "\"nodes\": %d, ", st.spec.nodes_required);
    append_u64(out, "size", st.spec.size);
    append_u64(out, "steps", st.spec.steps);
    append_i64(out, "arrival_ns", st.spec.arrival_ns);
    appendf(out, "\"rejected\": %s,\n   ", st.rejected ? "true" : "false");
    append_i64(out, "start_ns", st.start_ns);
    append_i64(out, "finish_ns", st.finish_ns);
    append_i64(out, "wait_ns", st.wait_ns);
    append_i64(out, "latency_ns", st.latency_ns);
    appendf(out, "\"preemptions\": %d, ", st.preemptions);
    out += "\"placement\": [";
    for (size_t k = 0; k < st.machine_nodes.size(); ++k) {
      appendf(out, "%s%d", k == 0 ? "" : ", ", st.machine_nodes[k]);
    }
    out += "],\n   ";
    appendf(out, "\"digest\": \"%016" PRIx64 "\", ", st.state_digest);
    append_u64(out, "fabric_tx_messages", st.fabric_tx_messages);
    append_u64(out, "fabric_tx_bytes", st.fabric_tx_bytes);
    out += "\n   ";
    append_u64(out, "backbone_wait_ns", st.backbone_wait_ns);
    append_u64(out, "fetch_stall_ns", st.fetch_stall_ns);
    append_u64(out, "blocks_fetched", st.blocks_fetched, false);
    out += i + 1 < result.jobs.size() ? "},\n" : "}\n";
  }
  out += " ]\n}\n";
  return out;
}

}  // namespace ppm::jobs
