// Checkpointable PPM workloads run by the ppm::jobs scheduler.
//
// Every workload keeps ALL cross-step state in global shared arrays, so a
// generic collective snapshot (pack_owned_elems + allgather + owner_of
// reassembly) plus the step counter is a complete checkpoint; restoring is
// each node rewriting its owned elements outside phases. That is what
// makes drain/preempt possible without workload-specific state plumbing.
//
// Determinism contract (the multi-job oracle depends on it): committed
// results are bit-identical regardless of timing, placement, or
// co-tenants. Floating-point reductions therefore never ride the
// commutative commit path (arrival order is timing-dependent); they are
// computed over owned elements in index order and combined in node order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/env.hpp"
#include "jobs/jobs.hpp"

namespace ppm::jobs {

/// Logical contents of every shared array (creation order) + the step
/// counter: everything needed to resume the workload elsewhere.
struct Checkpoint {
  uint64_t step = 0;
  std::vector<Bytes> arrays;
};

/// Scheduler -> job control surface. `preempt` may flip to true at any
/// vtime; the job acts on it only at chunk boundaries, where node 0 reads
/// it and broadcasts the decision (SPMD-consistent by construction).
struct JobControl {
  const Checkpoint* resume = nullptr;  // null => fresh start
  bool preempt = false;
};

/// Written by logical node 0 before the node program returns.
struct JobOutcome {
  bool completed = false;  // false => preempted at checkpoint.step
  Checkpoint checkpoint;   // final state (complete or preemption point)
  uint64_t digest = 0;     // checkpoint_digest(checkpoint)
};

/// FNV-1a over the step counter and every array's logical bytes.
uint64_t checkpoint_digest(const Checkpoint& cp);

/// Collective snapshot / restore of the given arrays (call outside
/// phases, on every node of the job's partition).
Checkpoint collect_checkpoint(Env& env, const std::vector<uint32_t>& ids,
                              uint64_t step);
void restore_checkpoint(Env& env, const std::vector<uint32_t>& ids,
                        const Checkpoint& cp);

/// SPMD node program of one job: dispatches on spec.kind, restores from
/// ctl.resume when set, runs steps in chunks of steps_per_chunk with a
/// drain check between chunks, and (on logical node 0, when out != null)
/// reports the final checkpoint + digest.
void run_job_program(Env& env, const JobSpec& spec, uint64_t steps_per_chunk,
                     const JobControl& ctl, JobOutcome* out);

}  // namespace ppm::jobs
