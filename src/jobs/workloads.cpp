#include "jobs/workloads.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::jobs {

namespace {

/// Deterministic double in [0, 1) from (seed, index).
double u01(uint64_t seed, uint64_t i) {
  const uint64_t bits = mix64(seed ^ (i * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// This node's share of n VPs under the canonical balanced split; the
/// coordinate_group offsets then make vp.global_rank() == element index.
uint64_t vp_share(const Env& env, uint64_t n) {
  const auto node = static_cast<uint64_t>(env.node_id());
  const auto nodes = static_cast<uint64_t>(env.node_count());
  return n * (node + 1) / nodes - n * node / nodes;
}

/// Order-deterministic dot product: per-node partials over owned elements
/// in index order, combined in node order (never the commutative commit
/// path — float add there would depend on bundle arrival order).
double dot_owned(Env& env, const GlobalShared<double>& a,
                 const GlobalShared<double>& b) {
  double part = 0.0;
  for (uint64_t i = a.local_begin(); i < a.local_end(); ++i) {
    part += a.get(i) * b.get(i);
  }
  double sum = 0.0;
  for (const double v : env.allgather(part)) sum += v;
  return sum;
}

/// Shared chunk loop: restore-or-init, run steps with a drain check at
/// chunk boundaries, snapshot, report on node 0.
void run_chunked(Env& env, const JobSpec& spec, uint64_t steps_per_chunk,
                 const JobControl& ctl, JobOutcome* out,
                 const std::vector<uint32_t>& ids,
                 const std::function<void()>& init,
                 const std::function<void(uint64_t)>& do_step) {
  uint64_t step = 0;
  if (ctl.resume != nullptr) {
    PPM_CHECK(ctl.resume->arrays.size() == ids.size(),
              "checkpoint shape mismatch: %zu arrays, expected %zu",
              ctl.resume->arrays.size(), ids.size());
    restore_checkpoint(env, ids, *ctl.resume);
    step = ctl.resume->step;
  } else {
    init();
  }
  bool preempted = false;
  const uint64_t chunk = std::max<uint64_t>(1, steps_per_chunk);
  while (step < spec.steps) {
    const uint64_t chunk_end = std::min(spec.steps, step + chunk);
    for (; step < chunk_end; ++step) do_step(step);
    if (step >= spec.steps) break;
    // Drain decision at the chunk boundary: node 0 reads the scheduler's
    // flag at one well-defined vtime and broadcasts it, so every node of
    // the gang takes the same branch regardless of timing.
    std::vector<uint8_t> flag(1, 0);
    if (env.node_id() == 0 && ctl.preempt) flag[0] = 1;
    env.broadcast(flag, 0);
    if (flag[0] != 0) {
      preempted = true;
      break;
    }
  }
  Checkpoint cp = collect_checkpoint(env, ids, step);
  if (out != nullptr && env.node_id() == 0) {
    out->completed = !preempted;
    out->digest = checkpoint_digest(cp);
    out->checkpoint = std::move(cp);
  }
}

/// Conjugate gradient on the 1-D Laplacian stencil [-1, 2, -1] with a
/// seeded right-hand side. One step = one CG iteration: an owner-computes
/// SpMV phase (remote reads at chunk borders), two order-deterministic
/// dots, and two update phases. rho is recomputed from committed r each
/// iteration, so no scalar state survives outside the arrays.
void run_cg(Env& env, const JobSpec& spec, uint64_t steps_per_chunk,
            const JobControl& ctl, JobOutcome* out) {
  const uint64_t n = spec.size;
  auto x = env.global_array<double>(n);
  auto r = env.global_array<double>(n);
  auto p = env.global_array<double>(n);
  auto q = env.global_array<double>(n);
  const std::vector<uint32_t> ids = {x.id(), r.id(), p.id(), q.id()};
  auto g = env.ppm_do(vp_share(env, n));

  const auto init = [&] {
    env.phase_label("cg.init");
    g.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      const double bi = u01(spec.seed, i);
      x.set(i, 0.0);
      r.set(i, bi);
      p.set(i, bi);
      q.set(i, 0.0);
    });
  };
  const auto do_step = [&](uint64_t) {
    env.phase_label("cg.spmv");
    g.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      const double pi = p.get(i);
      const double pl = i > 0 ? p.get(i - 1) : 0.0;
      const double pr = i + 1 < n ? p.get(i + 1) : 0.0;
      q.set(i, 2.0 * pi - pl - pr);
    });
    const double rho = dot_owned(env, r, r);
    const double pq = dot_owned(env, p, q);
    const double alpha = pq != 0.0 ? rho / pq : 0.0;
    env.phase_label("cg.update");
    g.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      x.set(i, x.get(i) + alpha * p.get(i));
      r.set(i, r.get(i) - alpha * q.get(i));
    });
    const double rho_new = dot_owned(env, r, r);
    const double beta = rho != 0.0 ? rho_new / rho : 0.0;
    env.phase_label("cg.direction");
    g.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      p.set(i, r.get(i) + beta * p.get(i));
    });
  };
  run_chunked(env, spec, steps_per_chunk, ctl, out, ids, init, do_step);
}

/// Scattered-write generator: every VP hashes into a cyclic array (max
/// merge — commutative on integers, so order-independent and exact) and
/// histograms what it read. All-to-all fine-grained traffic; the kind of
/// irregular workload read bundling exists for.
void run_matgen(Env& env, const JobSpec& spec, uint64_t steps_per_chunk,
                const JobControl& ctl, JobOutcome* out) {
  const uint64_t n = spec.size;
  auto a = env.global_array<uint64_t>(n, Distribution::kCyclic);
  auto hist = env.global_array<uint64_t>(256);
  const std::vector<uint32_t> ids = {a.id(), hist.id()};
  auto g = env.ppm_do(vp_share(env, n));

  const auto init = [&] {
    env.phase_label("matgen.init");
    g.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      a.set(i, mix64(spec.seed ^ i));
    });
  };
  const auto do_step = [&](uint64_t step) {
    env.phase_label("matgen.scatter");
    g.global_phase([&](Vp& vp) {
      const uint64_t rank = vp.global_rank();
      const uint64_t h =
          mix64(spec.seed ^ (step * 0x9e3779b97f4a7c15ULL) ^ (rank << 1));
      a.max_update(h % n, h);
      const uint64_t peeked = a.get((h >> 8) % n);  // phase-start value
      hist.add(h & 255, 1 + (peeked & 1));
    });
  };
  run_chunked(env, spec, steps_per_chunk, ctl, out, ids, init, do_step);
}

/// Barnes-Hut-style step: each body samples a deterministic set of
/// interaction partners (a stand-in for a tree traversal — strided, so
/// reads spread across every owner), then integrates. Owner-computes:
/// exactly one VP writes each element, with reads from the phase-start
/// snapshot, so commits are order-independent.
void run_barneshut(Env& env, const JobSpec& spec, uint64_t steps_per_chunk,
                   const JobControl& ctl, JobOutcome* out) {
  const uint64_t n = spec.size;
  auto pos = env.global_array<double>(n);
  auto vel = env.global_array<double>(n);
  const std::vector<uint32_t> ids = {pos.id(), vel.id()};
  auto g = env.ppm_do(vp_share(env, n));

  const auto init = [&] {
    env.phase_label("bh.init");
    g.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      pos.set(i, u01(spec.seed, i) * 2.0 - 1.0);
      vel.set(i, 0.0);
    });
  };
  const auto do_step = [&](uint64_t) {
    env.phase_label("bh.step");
    g.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      const double xi = pos.get(i);
      double force = 0.0;
      const uint64_t stride = std::max<uint64_t>(1, n / 8);
      for (uint64_t k = 0; k < 8; ++k) {
        const uint64_t j = (i + 1 + k * stride + k) % n;
        const double d = pos.get(j) - xi;
        force += d * (0.5 / (1.0 + d * d));
      }
      const double v = vel.get(i) * 0.99 + 1e-3 * force;
      vel.set(i, v);
      pos.set(i, xi + 1e-3 * v);
    });
  };
  run_chunked(env, spec, steps_per_chunk, ctl, out, ids, init, do_step);
}

}  // namespace

uint64_t checkpoint_digest(const Checkpoint& cp) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const void* data, size_t len) {
    const auto* b = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ULL;
    }
  };
  mix(&cp.step, sizeof cp.step);
  for (const Bytes& a : cp.arrays) {
    const uint64_t len = a.size();
    mix(&len, sizeof len);
    mix(a.data(), a.size());
  }
  return h;
}

Checkpoint collect_checkpoint(Env& env, const std::vector<uint32_t>& ids,
                              uint64_t step) {
  Checkpoint cp;
  cp.step = step;
  NodeRuntime& rt = env.runtime();
  for (const uint32_t id : ids) {
    const detail::ArrayRecord& rec = rt.array(id);
    // pack_owned_elems is layout-free (ascending global index), so the
    // reassembly below is one cursor per owner walked in owner_of order.
    auto all = rt.allgather_bytes(rt.pack_owned_elems(id));
    const size_t esz = rec.ops.size;
    Bytes logical(rec.n * esz);
    std::vector<size_t> cursor(all.size(), 0);
    for (uint64_t i = 0; i < rec.n; ++i) {
      const auto o = static_cast<size_t>(rec.owner_of(i));
      std::memcpy(logical.data() + i * esz, all[o].data() + cursor[o], esz);
      cursor[o] += esz;
    }
    cp.arrays.push_back(std::move(logical));
  }
  return cp;
}

void restore_checkpoint(Env& env, const std::vector<uint32_t>& ids,
                        const Checkpoint& cp) {
  NodeRuntime& rt = env.runtime();
  for (size_t k = 0; k < ids.size(); ++k) {
    const detail::ArrayRecord& rec = rt.array(ids[k]);
    const size_t esz = rec.ops.size;
    const Bytes& logical = cp.arrays[k];
    PPM_CHECK(logical.size() == rec.n * esz,
              "checkpoint array %u byte-size mismatch", ids[k]);
    for (uint64_t i = 0; i < rec.n; ++i) {
      if (rec.owner_of(i) != env.node_id()) continue;
      rt.write_elem(ids[k], i, logical.data() + i * esz,
                    detail::WriteOp::kSet);
    }
  }
  // No node may enter a phase (and serve remote reads of restored data)
  // before every node finished rewriting its owned elements.
  env.barrier();
}

void run_job_program(Env& env, const JobSpec& spec, uint64_t steps_per_chunk,
                     const JobControl& ctl, JobOutcome* out) {
  PPM_CHECK(spec.size > 0, "job %llu has zero size",
            static_cast<unsigned long long>(spec.id));
  switch (spec.kind) {
    case JobKind::kCg:
      run_cg(env, spec, steps_per_chunk, ctl, out);
      return;
    case JobKind::kMatgen:
      run_matgen(env, spec, steps_per_chunk, ctl, out);
      return;
    case JobKind::kBarnesHut:
      run_barneshut(env, spec, steps_per_chunk, ctl, out);
      return;
  }
  PPM_CHECK(false, "unknown job kind %d", static_cast<int>(spec.kind));
}

}  // namespace ppm::jobs
