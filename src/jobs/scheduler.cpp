// The multi-tenant gang scheduler (docs/SCHEDULER.md).
//
// Three kinds of fibers cooperate in virtual time on one machine:
//   * the generator admits the job stream through a bounded queue
//     (blocking on a full queue = admission backpressure),
//   * the scheduler fiber reaps finished jobs, frees their nodes, and
//     launches every queued job the policy admits against the free set,
//   * per-job node fibers run the tenant Runtime's SPMD node program.
//
// Determinism: every decision is a pure function of replicated state,
// taken at virtual times the deterministic engine reproduces exactly.
// Ties are broken explicitly (finished jobs reap in ascending id order;
// allocation takes the lowest-numbered free nodes), so the same seed and
// policy replay bit-identically.
#include <algorithm>
#include <deque>
#include <memory>

#include "core/env.hpp"
#include "sim/sync.hpp"
#include "core/ppm.hpp"
#include "jobs/workloads.hpp"
#include "util/error.hpp"

namespace ppm::jobs {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

struct PendingJob {
  JobSpec spec;
  std::unique_ptr<Checkpoint> resume;  // non-null for a preempted job
};

struct RunningJob {
  JobSpec spec;
  std::vector<int> nodes;  // physical allocation, ascending
  uint32_t tag = 0;
  int64_t launch_ns = 0;
  std::unique_ptr<Checkpoint> resume;  // keeps ctl.resume alive
  std::unique_ptr<JobControl> ctl;
  std::unique_ptr<JobOutcome> outcome;
  std::unique_ptr<Runtime> runtime;
  int fibers_remaining = 0;
  bool finished = false;  // all node fibers returned
  int64_t finish_ns = 0;
  // FabricStats::per_node at launch, for this job's nodes (delta = the
  // job's own traffic: allocations are disjoint and runtime messages
  // never leave the partition).
  std::vector<net::FabricStats::NodeTraffic> fabric_base;
};

/// Index into `queue` of the job the policy would launch now, or kNone.
size_t pick_next(Policy policy, const std::deque<PendingJob>& queue,
                 int free_nodes) {
  switch (policy) {
    case Policy::kFifo:
      // Strict arrival order: the head either fits or blocks the line.
      if (!queue.empty() && queue.front().spec.nodes_required <= free_nodes) {
        return 0;
      }
      return kNone;
    case Policy::kBackfill:
      for (size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].spec.nodes_required <= free_nodes) return i;
      }
      return kNone;
    case Policy::kSmallestFirst: {
      size_t best = kNone;
      for (size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].spec.nodes_required > free_nodes) continue;
        if (best == kNone ||
            queue[i].spec.nodes_required < queue[best].spec.nodes_required) {
          best = i;
        }
      }
      return best;
    }
  }
  return kNone;
}

int64_t percentile_ns(std::vector<int64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<size_t>(
      static_cast<double>(sorted.size() - 1) * p + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

JobsResult run_jobs(const JobsConfig& cfg) {
  PPM_CHECK(!cfg.runtime.trace,
            "ppm::jobs tenants cannot run traced: the fabric/engine trace "
            "recorders are machine-wide (trace a job via run_job_isolated)");
  PPM_CHECK(cfg.queue_capacity > 0, "job queue needs capacity >= 1");

  cluster::Machine machine(cfg.machine);
  sim::Engine& engine = machine.engine();
  const int machine_nodes = machine.nodes();

  std::vector<JobSpec> specs =
      cfg.jobs.empty() ? sample_jobs(cfg.seed, cfg.job_count, machine_nodes)
                       : cfg.jobs;
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = i;
    PPM_CHECK(i == 0 || specs[i].arrival_ns >= specs[i - 1].arrival_ns,
              "job stream must be sorted by arrival_ns");
  }

  JobsResult res;
  res.jobs.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) res.jobs[i].spec = specs[i];
  if (specs.empty()) return res;  // degenerate: empty stream, nothing to run

  sim::ConditionVar cv(engine);
  std::deque<PendingJob> queue;
  std::vector<std::unique_ptr<RunningJob>> running;
  std::vector<bool> node_busy(static_cast<size_t>(machine_nodes), false);
  bool gen_done = false;
  uint32_t next_tag = 1;
  uint64_t busy_node_ns = 0;

  const auto free_count = [&] {
    int free = 0;
    for (const bool b : node_busy) free += b ? 0 : 1;
    return free;
  };

  // ---- Generator: seeded arrivals through the bounded queue ----
  engine.spawn("jobs.gen", [&] {
    for (const JobSpec& spec : specs) {
      if (engine.now_ns() < spec.arrival_ns) {
        engine.sleep_until_ns(spec.arrival_ns);
      }
      JobStats& st = res.jobs[spec.id];
      if (spec.nodes_required <= 0 || spec.nodes_required > machine_nodes) {
        // Clean rejection at admission: an unsatisfiable gang must never
        // enter the queue (it would wedge every policy's head-of-line).
        st.rejected = true;
        ++res.rejected_jobs;
        cv.notify_all();
        continue;
      }
      const int64_t t0 = engine.now_ns();
      cv.wait([&] { return queue.size() < cfg.queue_capacity; });
      res.backpressure_ns += engine.now_ns() - t0;
      queue.push_back(PendingJob{spec, nullptr});
      res.max_queue_depth = std::max(res.max_queue_depth, queue.size());
      cv.notify_all();
    }
    gen_done = true;
    cv.notify_all();
  });

  // ---- Launch / reap (called from the scheduler fiber) ----
  const auto launch = [&](PendingJob pj) {
    auto rj = std::make_unique<RunningJob>();
    rj->spec = pj.spec;
    rj->resume = std::move(pj.resume);
    // Gang allocation: the lowest-numbered free nodes (deterministic).
    for (int n = 0; n < machine_nodes &&
                    static_cast<int>(rj->nodes.size()) <
                        rj->spec.nodes_required;
         ++n) {
      if (node_busy[static_cast<size_t>(n)]) continue;
      node_busy[static_cast<size_t>(n)] = true;
      rj->nodes.push_back(n);
    }
    PPM_CHECK(rj->nodes.size() ==
                  static_cast<size_t>(rj->spec.nodes_required),
              "launch without enough free nodes");
    PPM_CHECK(next_tag <= detail::kRtTagMax, "run tags exhausted");
    rj->tag = next_tag++;
    rj->launch_ns = engine.now_ns();
    JobStats& st = res.jobs[rj->spec.id];
    if (rj->resume == nullptr) {
      st.start_ns = rj->launch_ns;
      st.wait_ns = rj->launch_ns - rj->spec.arrival_ns;
    }
    rj->ctl = std::make_unique<JobControl>();
    rj->ctl->resume = rj->resume.get();
    if (cfg.preempt_job_id >= 0 &&
        rj->spec.id == static_cast<uint64_t>(cfg.preempt_job_id) &&
        st.preemptions == 0 && rj->resume == nullptr) {
      // Arm the drain: the job will checkpoint at its first chunk
      // boundary and come back through the queue.
      rj->ctl->preempt = true;
    }
    rj->outcome = std::make_unique<JobOutcome>();
    rj->runtime =
        std::make_unique<Runtime>(machine, cfg.runtime, rj->nodes, rj->tag);
    rj->fibers_remaining = rj->spec.nodes_required;
    const auto& per_node = machine.fabric().stats().per_node;
    for (const int phys : rj->nodes) {
      rj->fabric_base.push_back(per_node[static_cast<size_t>(phys)]);
    }
    RunningJob* raw = rj.get();
    for (int k = 0; k < rj->spec.nodes_required; ++k) {
      machine.spawn_at(
          {rj->nodes[static_cast<size_t>(k)], 0},
          strfmt("job%llu.n%d",
                 static_cast<unsigned long long>(rj->spec.id),
                 rj->nodes[static_cast<size_t>(k)]),
          [raw, k, &cfg, &engine, &cv] {
            NodeRuntime& nr = raw->runtime->node(k);
            nr.start();
            Env env(nr);
            run_job_program(env, raw->spec, cfg.steps_per_chunk, *raw->ctl,
                            k == 0 ? raw->outcome.get() : nullptr);
            nr.finish();
            if (--raw->fibers_remaining == 0) {
              raw->finished = true;
              raw->finish_ns = engine.now_ns();
              cv.notify_all();
            }
          });
    }
    running.push_back(std::move(rj));
  };

  const auto reap = [&](size_t idx) {
    auto rj = std::move(running[idx]);
    running.erase(running.begin() + static_cast<ptrdiff_t>(idx));
    // The nodes are not reusable until the tenant's service and worker
    // fibers actually exited (they outlive the node program slightly).
    rj->runtime->wait_runtime_fibers_exited();
    JobStats& st = res.jobs[rj->spec.id];
    const auto& per_node = machine.fabric().stats().per_node;
    for (size_t k = 0; k < rj->nodes.size(); ++k) {
      const auto& now = per_node[static_cast<size_t>(rj->nodes[k])];
      const auto& base = rj->fabric_base[k];
      st.fabric_tx_messages += now.tx_messages - base.tx_messages;
      st.fabric_tx_bytes += now.tx_bytes - base.tx_bytes;
      st.backbone_wait_ns += now.backbone_wait_ns - base.backbone_wait_ns;
    }
    for (int k = 0; k < rj->spec.nodes_required; ++k) {
      const auto& c = rj->runtime->node(k).counters();
      st.fetch_stall_ns += c.fetch_stall_ns;
      st.blocks_fetched += c.blocks_fetched;
    }
    busy_node_ns += rj->nodes.size() *
                    static_cast<uint64_t>(rj->finish_ns - rj->launch_ns);
    for (const int phys : rj->nodes) {
      node_busy[static_cast<size_t>(phys)] = false;
    }
    if (rj->outcome->completed) {
      st.finish_ns = rj->finish_ns;
      st.latency_ns = rj->finish_ns - rj->spec.arrival_ns;
      st.machine_nodes = rj->nodes;
      st.state_digest = rj->outcome->digest;
      res.completion_order.push_back(rj->spec.id);
      ++res.completed_jobs;
    } else {
      // Drained: requeue at the head (it keeps its place in arrival
      // order) with the checkpoint to resume from. Deliberately exempt
      // from queue_capacity — drain must not deadlock against admission.
      ++st.preemptions;
      PendingJob pj;
      pj.spec = rj->spec;
      pj.resume = std::make_unique<Checkpoint>(
          std::move(rj->outcome->checkpoint));
      queue.push_front(std::move(pj));
    }
    cv.notify_all();
    // rj (and its tenant Runtime) destroyed here, after quiesce.
  };

  // ---- Scheduler fiber ----
  engine.spawn("jobs.sched", [&] {
    for (;;) {
      cv.wait([&] {
        if (gen_done && queue.empty() && running.empty()) return true;
        for (const auto& rj : running) {
          if (rj->finished) return true;
        }
        return pick_next(cfg.policy, queue, free_count()) != kNone;
      });
      // Reap every finished job, ascending job id — the deterministic
      // tie-break when several finish at the same vtime.
      for (;;) {
        size_t best = kNone;
        for (size_t i = 0; i < running.size(); ++i) {
          if (!running[i]->finished) continue;
          if (best == kNone ||
              running[i]->spec.id < running[best]->spec.id) {
            best = i;
          }
        }
        if (best == kNone) break;
        reap(best);
      }
      // Launch everything the policy admits against the free nodes.
      for (;;) {
        const size_t i = pick_next(cfg.policy, queue, free_count());
        if (i == kNone) break;
        PendingJob pj = std::move(queue[i]);
        queue.erase(queue.begin() + static_cast<ptrdiff_t>(i));
        cv.notify_all();  // queue shrank: unblock the generator
        launch(std::move(pj));
      }
      if (gen_done && queue.empty() && running.empty()) return;
    }
  });

  engine.run();

  // ---- Aggregate ----
  int64_t first_arrival = 0;
  int64_t last_finish = 0;
  bool any_admitted = false;
  std::vector<int64_t> latencies;
  for (const JobStats& st : res.jobs) {
    if (st.rejected) continue;
    if (!any_admitted || st.spec.arrival_ns < first_arrival) {
      first_arrival = st.spec.arrival_ns;
    }
    any_admitted = true;
    last_finish = std::max(last_finish, st.finish_ns);
    latencies.push_back(st.latency_ns);
  }
  std::sort(latencies.begin(), latencies.end());
  res.makespan_ns = any_admitted ? last_finish - first_arrival : 0;
  res.p50_latency_ns = percentile_ns(latencies, 0.50);
  res.p99_latency_ns = percentile_ns(latencies, 0.99);
  const double makespan_s = static_cast<double>(res.makespan_ns) * 1e-9;
  res.throughput_jobs_per_s =
      makespan_s > 0.0 ? static_cast<double>(res.completed_jobs) / makespan_s
                       : 0.0;
  res.node_utilization =
      res.makespan_ns > 0
          ? static_cast<double>(busy_node_ns) /
                (static_cast<double>(machine_nodes) *
                 static_cast<double>(res.makespan_ns))
          : 0.0;
  const auto& fs = machine.fabric().stats();
  res.fabric_bytes = fs.inter_bytes.value();
  for (const auto& nt : fs.per_node) res.backbone_wait_ns += nt.backbone_wait_ns;
  const double capacity_bytes_per_ns =
      cfg.machine.backbone_bytes_per_ns > 0.0
          ? cfg.machine.backbone_bytes_per_ns
          : cfg.machine.network.bytes_per_ns *
                static_cast<double>(machine_nodes);
  res.fabric_utilization =
      res.makespan_ns > 0 && capacity_bytes_per_ns > 0.0
          ? static_cast<double>(res.fabric_bytes) /
                (static_cast<double>(res.makespan_ns) * capacity_bytes_per_ns)
          : 0.0;
  return res;
}

uint64_t run_job_isolated(const JobSpec& spec, const JobsConfig& cfg) {
  PPM_CHECK(spec.nodes_required > 0, "job needs at least one node");
  // Idle-machine baseline: same node/core shape and runtime options the
  // tenant ran with, but no co-tenants, no faults, no backbone. Only the
  // committed state is compared, and that must be timing-independent.
  cluster::MachineConfig mc = cfg.machine;
  mc.nodes = spec.nodes_required;
  mc.faults = net::FaultConfig{};
  mc.backbone_bytes_per_ns = 0.0;
  cluster::Machine machine(mc);
  Runtime runtime(machine, cfg.runtime);
  JobControl ctl;
  JobOutcome out;
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    run_job_program(env, spec, cfg.steps_per_chunk, ctl,
                    node == 0 ? &out : nullptr);
    nr.finish();
  });
  return out.digest;
}

}  // namespace ppm::jobs
