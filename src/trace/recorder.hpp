// Per-track ring-buffer event recorder of ppm::trace.
//
// One Recorder per node plus one for the fabric and one for the simulation
// engine, owned together by a Trace. The hot-path contract mirrors the
// validator's: subsystems hold a nullable Recorder* and guard every record
// with a single `if (tracer_) [[unlikely]]` branch, so a build with tracing
// off pays one never-taken branch per instrumentation point and nothing
// else. The simulator is single-threaded on the host (one fiber runs at a
// time), so the ring needs no synchronization — "lock-free" comes for free.
//
// The ring has fixed capacity and overwrites the OLDEST event on wrap,
// counting every overwrite in dropped(): a bounded-memory flight recorder
// that always keeps the most recent window.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace ppm::trace {

class Recorder {
 public:
  /// `track` is the recorder's stable display id (node id; nodes and
  /// nodes+1 for the fabric/engine tracks of a Trace). Capacity is clamped
  /// to at least one event and preallocated up front.
  explicit Recorder(uint32_t track, size_t capacity_events);

  void record(const Event& e) {
    if (count_ < ring_.size()) {
      ring_[(head_ + count_) % ring_.size()] = e;
      ++count_;
    } else {
      ring_[head_] = e;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    }
  }

  /// Intern a label, returning its 1-based id (0 means "no label").
  /// Repeated interning of the same string returns the same id.
  uint32_t intern(std::string_view label);
  /// Label text for a 1-based id from intern(); empty for id 0.
  const std::string& label(uint32_t id) const;

  uint32_t track() const { return track_; }
  size_t size() const { return count_; }
  size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const { return dropped_; }
  /// Total record() calls (== size() + dropped()).
  uint64_t recorded() const { return count_ + dropped_; }

  /// Retained events, oldest first.
  std::vector<Event> ordered() const;

  const std::vector<std::string>& labels() const { return labels_; }

 private:
  uint32_t track_;
  std::vector<Event> ring_;
  size_t head_ = 0;
  size_t count_ = 0;
  uint64_t dropped_ = 0;
  std::vector<std::string> labels_;  // labels_[id - 1] holds id's text
};

/// All recorders of one traced run: one per node, one for the fabric, one
/// for the simulation engine. Owned by ppm::Runtime when
/// RuntimeOptions::trace is set; the exporters and analyzer consume it.
class Trace {
 public:
  Trace(int nodes, size_t capacity_per_track);

  int nodes() const { return static_cast<int>(node_tracks_.size()); }
  Recorder& node(int node_id) {
    return node_tracks_[static_cast<size_t>(node_id)];
  }
  const Recorder& node(int node_id) const {
    return node_tracks_[static_cast<size_t>(node_id)];
  }
  Recorder& fabric() { return fabric_; }
  const Recorder& fabric() const { return fabric_; }
  Recorder& engine() { return engine_; }
  const Recorder& engine() const { return engine_; }

  uint64_t total_recorded() const;
  uint64_t total_dropped() const;

 private:
  std::vector<Recorder> node_tracks_;
  Recorder fabric_;
  Recorder engine_;
};

}  // namespace ppm::trace
