// Event vocabulary of ppm::trace (docs/OBSERVABILITY.md).
//
// One fixed-size POD per recorded occurrence. Every kind reuses the same
// four operand words (a, b, c, aux) with kind-specific meaning — the table
// in docs/OBSERVABILITY.md is the authoritative schema; the short comments
// here mirror it. Timestamps are *virtual* nanoseconds of the simulation
// engine, so under CalibrationMode::kModeledOnly a fixed seed/config
// produces a bit-identical event stream.
#pragma once

#include <cstdint>

namespace ppm::trace {

enum class EventKind : uint8_t {
  // Phase engine (per node). a = phase_index.
  kPhaseBegin = 0,    // b = k_local, c = interned label id (0 = none),
                      // flags bit0 = global phase
  kPhaseComputeDone,  // all VPs of the phase finished, commit starts
  kPhaseCommitted,    // commit protocol complete

  // VP scheduling. Span: c = start time, t_ns = end time.
  kVpBatch,  // a = first VP (node rank), b = end (exclusive),
             // aux = VPs actually executed by this batch,
             // flags bit0 = nested under a blocked VP (miss-switching)

  // Remote-read engine. a = array id, b = packed block key
  // (owner << 40 | first owner-local element).
  kCacheHit,     // flags bit0 = served by waiting on an in-flight fetch
  kCacheMiss,    // demand miss; a fetch follows
  kFetchIssued,  // c = request id, flags bit0 = prefetch (lookahead)
  kFetchDone,    // response arrived; c = request id,
                 // flags bit0 = abandoned (phase committed first)
  kFetchStall,   // span: c = stall start, t_ns = wake; a = request id
  kPrefetchHit,  // first demand touch of a prefetched block

  // Write engine.
  kBundleFlush,  // a = destination node, b = payload bytes,
                 // flags bit0 = phase-final (last-marker) fragment

  // Owner-side accumulate / remote reduction.
  kAccumFlush,   // sender ships accum fragments: a = destination node,
                 // b = payload bytes, flags bit0 = kAccumList (else block)
  kAccumApply,   // owner applied staged accum fragments at commit:
                 // a = fragments, b = elements applied
  kCommitReduce, // reductions resolved on this commit's barrier:
                 // a = reductions, b = partial-blob bytes carried

  // Locality engine.
  kMigrationPlan,  // a = arrays planned, b = moves accepted, c = plan hash
  kMigrationMove,  // outbound block: a = array, b = block,
                   // c = (from << 32) | to

  // Fabric (recorded on the fabric track). Span: t_ns = send time,
  // c = delivery time.
  kMsgSend,  // a = src<<48 | sport<<32 | dst<<16 | dport,
             // b = (top kind byte << 56) | payload bytes,
             // aux = fault-injected extra delay ns, flags bit0 = intra-node

  // Simulation engine (recorded on the sim track).
  kEngineStep,  // periodic mark; a = events fired so far
};

/// Stable short name, used by the exporters and the analyzer printout.
const char* kind_name(EventKind kind);

struct Event {
  int64_t t_ns = 0;  // virtual time (span kinds: the END of the span)
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint32_t aux = 0;
  uint16_t core = 0;  // recording core (fabric: source node)
  EventKind kind{};
  uint8_t flags = 0;
};

inline constexpr uint8_t kFlagBit0 = 1;

}  // namespace ppm::trace
