#include "trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

#include "trace/recorder.hpp"

namespace ppm::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

/// Virtual nanoseconds -> the format's microseconds, as a fixed-point
/// decimal string ("12.345"): deterministic, no floating-point formatting.
void append_ts_us(std::string& out, int64_t t_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, t_ns / 1000,
                t_ns % 1000);
  out += buf;
}

class JsonEmitter {
 public:
  void span(uint32_t pid, uint64_t tid, int64_t start_ns, int64_t end_ns,
            const std::string& name, const std::string& args_json) {
    std::string& e = items_.emplace_back();
    e += "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"ts\":";
    append_ts_us(e, start_ns);
    e += ",\"dur\":";
    append_ts_us(e, end_ns > start_ns ? end_ns - start_ns : 0);
    e += ",\"name\":\"";
    append_escaped(e, name);
    e += "\"";
    if (!args_json.empty()) e += ",\"args\":{" + args_json + "}";
    e += "}";
    note_tid(pid, tid);
  }

  void instant(uint32_t pid, uint64_t tid, int64_t t_ns,
               const std::string& name, const std::string& args_json) {
    std::string& e = items_.emplace_back();
    e += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"ts\":";
    append_ts_us(e, t_ns);
    e += ",\"name\":\"";
    append_escaped(e, name);
    e += "\"";
    if (!args_json.empty()) e += ",\"args\":{" + args_json + "}";
    e += "}";
    note_tid(pid, tid);
  }

  std::string finish(const std::map<uint32_t, std::string>& process_names) {
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string& item) {
      if (!first) out += ",\n";
      out += item;
      first = false;
    };
    for (const auto& [pid, name] : process_names) {
      std::string m =
          "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
          name + "\"}}";
      emit(m);
      std::string sort =
          "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":" +
          std::to_string(pid) + "}}";
      emit(sort);
    }
    for (const auto& [pid, tids] : tids_) {
      const bool node_pid = process_names.count(pid) != 0 &&
                            process_names.at(pid).rfind("node", 0) == 0;
      for (const uint64_t tid : tids) {
        const std::string tname =
            node_pid ? "core" + std::to_string(tid)
                     : "track" + std::to_string(tid);
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(tid) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + tname +
             "\"}}");
      }
    }
    for (const std::string& item : items_) emit(item);
    out += "]}\n";
    return out;
  }

 private:
  void note_tid(uint32_t pid, uint64_t tid) { tids_[pid].insert(tid); }

  std::vector<std::string> items_;
  std::map<uint32_t, std::set<uint64_t>> tids_;
};

std::string u64_arg(const char* key, uint64_t v) {
  return "\"" + std::string(key) + "\":" + std::to_string(v);
}

/// Block keys pack (owner << 40) | first (the runtime's encoding).
constexpr int kBlockOwnerShift = 40;

std::string block_args(uint64_t array, uint64_t key) {
  return u64_arg("array", array) + "," +
         u64_arg("owner", key >> kBlockOwnerShift) + "," +
         u64_arg("first", key & ((uint64_t{1} << kBlockOwnerShift) - 1));
}

void export_node(JsonEmitter& json, const Recorder& rec, uint32_t pid) {
  // Open-phase bookkeeping: (begin time, name) per phase index, so the
  // compute and commit spans can be emitted at their end points.
  struct OpenPhase {
    int64_t begin_ns = 0;
    int64_t compute_done_ns = 0;
    std::string name;
  };
  std::unordered_map<uint64_t, OpenPhase> open;
  for (const Event& e : rec.ordered()) {
    switch (e.kind) {
      case EventKind::kPhaseBegin: {
        OpenPhase& p = open[e.a];
        p.begin_ns = e.t_ns;
        p.name = "phase" + std::to_string(e.a);
        const std::string& label = rec.label(static_cast<uint32_t>(e.c));
        if (!label.empty()) p.name += " [" + label + "]";
        if ((e.flags & kFlagBit0) == 0) p.name += " (node)";
        break;
      }
      case EventKind::kPhaseComputeDone: {
        const auto it = open.find(e.a);
        if (it == open.end()) break;
        it->second.compute_done_ns = e.t_ns;
        json.span(pid, 0, it->second.begin_ns, e.t_ns,
                  it->second.name + " compute",
                  u64_arg("phase", e.a));
        break;
      }
      case EventKind::kPhaseCommitted: {
        const auto it = open.find(e.a);
        if (it == open.end()) break;
        json.span(pid, 0, it->second.compute_done_ns, e.t_ns,
                  it->second.name + " commit", u64_arg("phase", e.a));
        open.erase(it);
        break;
      }
      case EventKind::kVpBatch: {
        std::string name = "vp[" + std::to_string(e.a) + "," +
                           std::to_string(e.b) + ")";
        if ((e.flags & kFlagBit0) != 0) name += " nested";
        json.span(pid, e.core, static_cast<int64_t>(e.c), e.t_ns, name,
                  u64_arg("executed", e.aux));
        break;
      }
      case EventKind::kFetchStall:
        json.span(pid, e.core, static_cast<int64_t>(e.c), e.t_ns, "stall",
                  u64_arg("req", e.a));
        break;
      case EventKind::kCacheHit:
        json.instant(pid, e.core, e.t_ns,
                     (e.flags & kFlagBit0) != 0 ? "cache_hit (combined)"
                                                : "cache_hit",
                     block_args(e.a, e.b));
        break;
      case EventKind::kCacheMiss:
        json.instant(pid, e.core, e.t_ns, "cache_miss", block_args(e.a, e.b));
        break;
      case EventKind::kFetchIssued:
        json.instant(pid, e.core, e.t_ns,
                     (e.flags & kFlagBit0) != 0 ? "prefetch_issued"
                                                : "fetch_issued",
                     block_args(e.a, e.b) + "," + u64_arg("req", e.c));
        break;
      case EventKind::kFetchDone:
        json.instant(pid, e.core, e.t_ns,
                     (e.flags & kFlagBit0) != 0 ? "fetch_done (abandoned)"
                                                : "fetch_done",
                     u64_arg("req", e.c));
        break;
      case EventKind::kPrefetchHit:
        json.instant(pid, e.core, e.t_ns, "prefetch_hit",
                     block_args(e.a, e.b));
        break;
      case EventKind::kBundleFlush:
        json.instant(pid, e.core, e.t_ns,
                     (e.flags & kFlagBit0) != 0 ? "bundle_flush (last)"
                                                : "bundle_flush",
                     u64_arg("dest", e.a) + "," + u64_arg("bytes", e.b));
        break;
      case EventKind::kMigrationPlan:
        json.instant(pid, e.core, e.t_ns, "migration_plan",
                     u64_arg("arrays", e.a) + "," + u64_arg("moves", e.b) +
                         "," + u64_arg("hash", e.c));
        break;
      case EventKind::kMigrationMove:
        json.instant(pid, e.core, e.t_ns, "migration_move",
                     u64_arg("array", e.a) + "," + u64_arg("block", e.b) +
                         "," + u64_arg("from", e.c >> 32) + "," +
                         u64_arg("to", e.c & 0xffffffffULL));
        break;
      default:
        json.instant(pid, e.core, e.t_ns, kind_name(e.kind), "");
    }
  }
}

}  // namespace

std::string to_chrome_json(const Trace& trace) {
  JsonEmitter json;
  const int nodes = trace.nodes();
  const uint32_t fabric_pid = static_cast<uint32_t>(nodes);
  const uint32_t sim_pid = static_cast<uint32_t>(nodes) + 1;

  std::map<uint32_t, std::string> process_names;
  for (int n = 0; n < nodes; ++n) {
    process_names[static_cast<uint32_t>(n)] = "node" + std::to_string(n);
  }
  process_names[fabric_pid] = "fabric";
  process_names[sim_pid] = "sim";

  int64_t last_ns = 0;
  for (int n = 0; n < nodes; ++n) {
    export_node(json, trace.node(n), static_cast<uint32_t>(n));
    for (const Event& e : trace.node(n).ordered()) {
      last_ns = std::max(last_ns, e.t_ns);
    }
  }
  for (const Event& e : trace.fabric().ordered()) {
    if (e.kind != EventKind::kMsgSend) continue;
    const uint64_t src = e.a >> 48;
    const uint64_t dst = (e.a >> 16) & 0xffff;
    const uint64_t kind_byte = e.b >> 56;
    const uint64_t bytes = e.b & ((uint64_t{1} << 56) - 1);
    std::string name = "msg " + std::to_string(src) + "->" +
                       std::to_string(dst) + " k" +
                       std::to_string(kind_byte);
    if ((e.flags & kFlagBit0) != 0) name += " (intra)";
    std::string args = u64_arg("bytes", bytes) + "," +
                       u64_arg("sport", (e.a >> 32) & 0xffff) + "," +
                       u64_arg("dport", e.a & 0xffff);
    if (e.aux != 0) args += "," + u64_arg("fault_delay_ns", e.aux);
    json.span(fabric_pid, e.core, e.t_ns, static_cast<int64_t>(e.c), name,
              args);
    last_ns = std::max(last_ns, static_cast<int64_t>(e.c));
  }
  for (const Event& e : trace.engine().ordered()) {
    json.instant(sim_pid, 0, e.t_ns, kind_name(e.kind),
                 u64_arg("events_fired", e.a));
    last_ns = std::max(last_ns, e.t_ns);
  }
  // Surface ring-wrap data loss in the artifact itself.
  for (int n = 0; n < nodes; ++n) {
    if (trace.node(n).dropped() > 0) {
      json.instant(static_cast<uint32_t>(n), 0, last_ns, "events_dropped",
                   u64_arg("count", trace.node(n).dropped()));
    }
  }
  if (trace.fabric().dropped() > 0) {
    json.instant(fabric_pid, 0, last_ns, "events_dropped",
                 u64_arg("count", trace.fabric().dropped()));
  }
  return json.finish(process_names);
}

namespace {

void put_track(ByteWriter& w, const Recorder& rec) {
  w.put(rec.track());
  w.put(rec.dropped());
  w.put(static_cast<uint32_t>(rec.labels().size()));
  for (const std::string& label : rec.labels()) w.put_string(label);
  const auto events = rec.ordered();
  w.put(static_cast<uint64_t>(events.size()));
  for (const Event& e : events) {
    w.put(e.t_ns);
    w.put(e.a);
    w.put(e.b);
    w.put(e.c);
    w.put(e.aux);
    w.put(e.core);
    w.put(static_cast<uint8_t>(e.kind));
    w.put(e.flags);
  }
}

}  // namespace

Bytes to_binary(const Trace& trace) {
  ByteWriter w;
  w.put(kBinaryMagic);
  w.put(kBinaryVersion);
  w.put(static_cast<uint32_t>(trace.nodes()));
  w.put(static_cast<uint32_t>(trace.nodes() + 2));  // track count
  for (int n = 0; n < trace.nodes(); ++n) put_track(w, trace.node(n));
  put_track(w, trace.fabric());
  put_track(w, trace.engine());
  return std::move(w).take();
}

}  // namespace ppm::trace
