#include "trace/recorder.hpp"

#include <algorithm>

namespace ppm::trace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kPhaseBegin: return "phase_begin";
    case EventKind::kPhaseComputeDone: return "phase_compute_done";
    case EventKind::kPhaseCommitted: return "phase_committed";
    case EventKind::kVpBatch: return "vp_batch";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kFetchIssued: return "fetch_issued";
    case EventKind::kFetchDone: return "fetch_done";
    case EventKind::kFetchStall: return "fetch_stall";
    case EventKind::kPrefetchHit: return "prefetch_hit";
    case EventKind::kBundleFlush: return "bundle_flush";
    case EventKind::kAccumFlush: return "accum_flush";
    case EventKind::kAccumApply: return "accum_apply";
    case EventKind::kCommitReduce: return "commit_reduce";
    case EventKind::kMigrationPlan: return "migration_plan";
    case EventKind::kMigrationMove: return "migration_move";
    case EventKind::kMsgSend: return "msg";
    case EventKind::kEngineStep: return "engine_step";
  }
  return "unknown";
}

Recorder::Recorder(uint32_t track, size_t capacity_events)
    : track_(track), ring_(std::max<size_t>(1, capacity_events)) {}

uint32_t Recorder::intern(std::string_view label) {
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return static_cast<uint32_t>(i + 1);
  }
  labels_.emplace_back(label);
  return static_cast<uint32_t>(labels_.size());
}

const std::string& Recorder::label(uint32_t id) const {
  static const std::string kEmpty;
  if (id == 0 || id > labels_.size()) return kEmpty;
  return labels_[id - 1];
}

std::vector<Event> Recorder::ordered() const {
  std::vector<Event> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

Trace::Trace(int nodes, size_t capacity_per_track)
    : fabric_(static_cast<uint32_t>(nodes), capacity_per_track),
      engine_(static_cast<uint32_t>(nodes) + 1, capacity_per_track) {
  node_tracks_.reserve(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    node_tracks_.emplace_back(static_cast<uint32_t>(n), capacity_per_track);
  }
}

uint64_t Trace::total_recorded() const {
  uint64_t total = fabric_.recorded() + engine_.recorded();
  for (const Recorder& r : node_tracks_) total += r.recorded();
  return total;
}

uint64_t Trace::total_dropped() const {
  uint64_t total = fabric_.dropped() + engine_.dropped();
  for (const Recorder& r : node_tracks_) total += r.dropped();
  return total;
}

}  // namespace ppm::trace
