#include "trace/analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "trace/recorder.hpp"

namespace ppm::trace {

namespace {

/// Block keys pack (owner << 40) | first_owner_local — the runtime's
/// BlockKey encoding, mirrored here without including core headers.
constexpr int kBlockOwnerShift = 40;

struct NodePhase {
  bool seen = false;
  bool global = false;
  std::string label;
  int64_t begin_ns = 0;
  int64_t compute_done_ns = 0;
  int64_t committed_ns = 0;
  uint64_t stall_ns = 0;
};

struct PhaseAcc {
  std::vector<NodePhase> per_node;
};

char* fmt(char* buf, size_t n, const char* f, auto... args) {
  std::snprintf(buf, n, f, args...);
  return buf;
}

}  // namespace

double PhaseCritical::imbalance() const {
  if (compute_max_ns <= 0) return 0.0;
  return static_cast<double>(compute_max_ns - compute_min_ns) /
         static_cast<double>(compute_max_ns);
}

double LabelRollup::stall_share() const {
  const double denom =
      static_cast<double>(compute_ns) + static_cast<double>(stall_ns);
  return denom <= 0.0 ? 0.0 : static_cast<double>(stall_ns) / denom;
}

double Summary::bundling_efficiency() const {
  const uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits) /
                          static_cast<double>(total);
}

double Summary::overlap_efficiency() const {
  if (fetch_latency_ns == 0) return 0.0;
  const double ratio = static_cast<double>(stall_ns) /
                       static_cast<double>(fetch_latency_ns);
  return std::max(0.0, 1.0 - ratio);
}

Summary analyze(const Trace& trace) {
  Summary s;
  s.events = trace.total_recorded();
  s.dropped = trace.total_dropped();

  // phase_index -> per-node begin/compute/commit/stall. An ordered map
  // keeps the output sorted by phase index with no extra pass.
  std::map<uint64_t, PhaseAcc> phases;
  struct BlockStat {
    uint64_t fetches = 0;
  };
  std::map<std::pair<uint32_t, uint64_t>, BlockStat> blocks;

  const int nodes = trace.nodes();
  for (int n = 0; n < nodes; ++n) {
    const Recorder& rec = trace.node(n);
    // Issue time per in-flight request id, for fetch-latency matching.
    std::unordered_map<uint64_t, int64_t> issue_t;
    // The phase currently open on this node, for stall attribution.
    NodePhase* open = nullptr;
    for (const Event& e : rec.ordered()) {
      switch (e.kind) {
        case EventKind::kPhaseBegin: {
          PhaseAcc& acc = phases[e.a];
          acc.per_node.resize(static_cast<size_t>(nodes));
          NodePhase& np = acc.per_node[static_cast<size_t>(n)];
          np.seen = true;
          np.global = (e.flags & kFlagBit0) != 0;
          np.label = rec.label(static_cast<uint32_t>(e.c));
          np.begin_ns = e.t_ns;
          open = &np;
          break;
        }
        case EventKind::kPhaseComputeDone: {
          auto it = phases.find(e.a);
          if (it != phases.end() &&
              it->second.per_node[static_cast<size_t>(n)].seen) {
            it->second.per_node[static_cast<size_t>(n)].compute_done_ns =
                e.t_ns;
          }
          break;
        }
        case EventKind::kPhaseCommitted: {
          auto it = phases.find(e.a);
          if (it != phases.end() &&
              it->second.per_node[static_cast<size_t>(n)].seen) {
            it->second.per_node[static_cast<size_t>(n)].committed_ns = e.t_ns;
          }
          open = nullptr;
          break;
        }
        case EventKind::kCacheHit:
          ++s.cache_hits;
          break;
        case EventKind::kCacheMiss:
          ++s.cache_misses;
          break;
        case EventKind::kFetchIssued:
          ++s.fetches;
          issue_t[e.c] = e.t_ns;
          ++blocks[{static_cast<uint32_t>(e.a), e.b}].fetches;
          break;
        case EventKind::kFetchDone: {
          const auto it = issue_t.find(e.c);
          if (it != issue_t.end()) {
            if ((e.flags & kFlagBit0) == 0 && e.t_ns > it->second) {
              s.fetch_latency_ns +=
                  static_cast<uint64_t>(e.t_ns - it->second);
            }
            issue_t.erase(it);
          }
          break;
        }
        case EventKind::kFetchStall: {
          const uint64_t stalled =
              e.t_ns > e.c ? static_cast<uint64_t>(e.t_ns - e.c) : 0;
          s.stall_ns += stalled;
          if (open != nullptr) open->stall_ns += stalled;
          break;
        }
        default:
          break;
      }
    }
  }

  for (const Event& e : trace.fabric().ordered()) {
    if (e.kind != EventKind::kMsgSend) continue;
    ++s.messages;
    s.fault_delay_ns += e.aux;
  }

  for (const auto& [index, acc] : phases) {
    PhaseCritical pc;
    pc.phase_index = index;
    bool first = true;
    for (int n = 0; n < nodes; ++n) {
      const NodePhase& np = acc.per_node[static_cast<size_t>(n)];
      if (!np.seen) continue;
      ++pc.nodes_seen;
      pc.global = pc.global || np.global;
      if (pc.label.empty()) pc.label = np.label;
      const int64_t compute = np.compute_done_ns - np.begin_ns;
      const int64_t commit = np.committed_ns - np.compute_done_ns;
      if (first || np.begin_ns < pc.start_ns) pc.start_ns = np.begin_ns;
      if (first || np.committed_ns > pc.committed_ns) {
        pc.committed_ns = np.committed_ns;
      }
      if (first || compute > pc.compute_max_ns) {
        pc.compute_max_ns = compute;
        pc.critical_node = n;
      }
      if (first || compute < pc.compute_min_ns) pc.compute_min_ns = compute;
      if (first || commit > pc.commit_max_ns) pc.commit_max_ns = commit;
      pc.stall_ns += np.stall_ns;
      first = false;
    }
    if (pc.nodes_seen == 0) continue;
    const double imb = pc.imbalance();
    const size_t bucket = std::min<size_t>(
        s.imbalance_hist.size() - 1,
        static_cast<size_t>(imb * static_cast<double>(
                                      s.imbalance_hist.size())));
    ++s.imbalance_hist[bucket];
    s.phases.push_back(std::move(pc));
  }

  // Per-label rollup over the finished phase list, first-appearance order
  // (phases are already sorted by index, so this is run order).
  std::unordered_map<std::string, size_t> label_slot;
  for (const PhaseCritical& pc : s.phases) {
    const std::string& name = pc.label.empty() ? std::string("-") : pc.label;
    auto [it, inserted] = label_slot.try_emplace(name, s.labels.size());
    if (inserted) {
      s.labels.push_back(LabelRollup{.label = name});
    }
    LabelRollup& lr = s.labels[it->second];
    ++lr.phases;
    lr.compute_ns += pc.compute_max_ns;
    lr.commit_ns += pc.commit_max_ns;
    lr.stall_ns += pc.stall_ns;
  }

  // Top-k hot blocks: count desc, then (array, owner, element) asc — the
  // map iteration order supplies the ascending tie-break for stable_sort.
  std::vector<HotBlock> hot;
  hot.reserve(blocks.size());
  for (const auto& [key, stat] : blocks) {
    HotBlock hb;
    hb.array = key.first;
    hb.owner = key.second >> kBlockOwnerShift;
    hb.first_elem = key.second & ((uint64_t{1} << kBlockOwnerShift) - 1);
    hb.fetches = stat.fetches;
    hot.push_back(hb);
  }
  std::stable_sort(hot.begin(), hot.end(),
                   [](const HotBlock& x, const HotBlock& y) {
                     return x.fetches > y.fetches;
                   });
  if (hot.size() > Summary::kTopHotBlocks) {
    hot.resize(Summary::kTopHotBlocks);
  }
  s.hot_blocks = std::move(hot);
  return s;
}

std::string Summary::to_string() const {
  std::string out;
  char buf[256];
  out += fmt(buf, sizeof(buf),
             "ppm::trace summary: %llu events (%llu dropped)\n",
             static_cast<unsigned long long>(events),
             static_cast<unsigned long long>(dropped));
  out += "  phase scope  label        crit.node  compute max/min us  imbal"
         "  commit us  stall us\n";
  constexpr size_t kMaxRows = 48;
  for (size_t i = 0; i < phases.size() && i < kMaxRows; ++i) {
    const PhaseCritical& p = phases[i];
    out += fmt(buf, sizeof(buf),
               "  %5llu %-6s %-12s %9d %10.1f /%8.1f  %5.2f %10.1f %9.1f\n",
               static_cast<unsigned long long>(p.phase_index),
               p.global ? "global" : "node",
               p.label.empty() ? "-" : p.label.c_str(), p.critical_node,
               static_cast<double>(p.compute_max_ns) * 1e-3,
               static_cast<double>(p.compute_min_ns) * 1e-3, p.imbalance(),
               static_cast<double>(p.commit_max_ns) * 1e-3,
               static_cast<double>(p.stall_ns) * 1e-3);
  }
  if (phases.size() > kMaxRows) {
    out += fmt(buf, sizeof(buf), "  ... %zu more phases\n",
               phases.size() - kMaxRows);
  }
  if (!labels.empty()) {
    out += "  per-label rollup      phases  compute us  commit us  stall us"
           "  stall-share\n";
    for (const LabelRollup& lr : labels) {
      out += fmt(buf, sizeof(buf),
                 "    %-18s %7llu %11.1f %10.1f %9.1f %12.3f\n",
                 lr.label.c_str(), static_cast<unsigned long long>(lr.phases),
                 static_cast<double>(lr.compute_ns) * 1e-3,
                 static_cast<double>(lr.commit_ns) * 1e-3,
                 static_cast<double>(lr.stall_ns) * 1e-3, lr.stall_share());
    }
  }
  out += "  compute-imbalance histogram [0,1) in 1/8 buckets:";
  for (const uint64_t count : imbalance_hist) {
    out += fmt(buf, sizeof(buf), " %llu",
               static_cast<unsigned long long>(count));
  }
  out += "\n";
  if (!hot_blocks.empty()) {
    out += "  hot remote blocks:";
    for (const HotBlock& hb : hot_blocks) {
      out += fmt(buf, sizeof(buf), " arr%u[n%llu+%llu]x%llu", hb.array,
                 static_cast<unsigned long long>(hb.owner),
                 static_cast<unsigned long long>(hb.first_elem),
                 static_cast<unsigned long long>(hb.fetches));
    }
    out += "\n";
  }
  out += fmt(buf, sizeof(buf),
             "  bundling efficiency %.3f (%llu cache hits / %llu misses)\n",
             bundling_efficiency(),
             static_cast<unsigned long long>(cache_hits),
             static_cast<unsigned long long>(cache_misses));
  out += fmt(buf, sizeof(buf),
             "  overlap efficiency %.3f (stall %.1f us / fetch latency "
             "%.1f us over %llu fetches)\n",
             overlap_efficiency(), static_cast<double>(stall_ns) * 1e-3,
             static_cast<double>(fetch_latency_ns) * 1e-3,
             static_cast<unsigned long long>(fetches));
  if (messages > 0 || fault_delay_ns > 0) {
    out += fmt(buf, sizeof(buf),
               "  fabric: %llu messages, fault-injected delay %.1f us\n",
               static_cast<unsigned long long>(messages),
               static_cast<double>(fault_delay_ns) * 1e-3);
  }
  return out;
}

}  // namespace ppm::trace
