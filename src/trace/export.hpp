// Trace exporters: Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing) and a compact binary dump. Both are deterministic
// functions of the recorded events — fixed-format timestamps, no host
// state — so two runs with identical event streams export byte-identical
// artifacts (asserted by core_trace_test).
#pragma once

#include <string>

#include "util/byte_buffer.hpp"

namespace ppm::trace {

class Trace;

/// Chrome trace-event JSON: `{"traceEvents": [...]}` with one process per
/// node (pid = node id, one thread per core), a "fabric" process carrying
/// message spans (one thread per source node), and a "sim" process with
/// engine step marks. Phase compute/commit, VP batches, fetch stalls, and
/// messages are complete ("X") spans; the rest are instants.
std::string to_chrome_json(const Trace& trace);

/// Compact binary dump: magic "PPMT", version, then per track the label
/// table and raw events. Field-by-field serialization (no struct memcpy),
/// so the layout is stable across platforms.
Bytes to_binary(const Trace& trace);

inline constexpr uint32_t kBinaryMagic = 0x544d5050;  // "PPMT" little-endian
inline constexpr uint32_t kBinaryVersion = 1;

}  // namespace ppm::trace
