// Post-run analysis over a recorded Trace (docs/OBSERVABILITY.md):
// per-phase critical path, compute-imbalance histogram, remote-hot blocks,
// and bundling/overlap efficiency ratios. Pure function of the events —
// hand-built event sequences are analyzable in unit tests without a run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ppm::trace {

class Trace;

/// One global phase as the cluster saw it, reassembled by matching the
/// per-node kPhaseBegin/ComputeDone/Committed triples by phase index.
struct PhaseCritical {
  uint64_t phase_index = 0;
  bool global = false;
  std::string label;       // app label via Env::phase_label, may be empty
  int nodes_seen = 0;      // nodes that recorded this phase
  int critical_node = -1;  // last node to finish compute (bound the barrier)
  int64_t start_ns = 0;          // earliest phase entry across nodes
  int64_t committed_ns = 0;      // latest commit completion across nodes
  int64_t compute_max_ns = 0;    // critical node's compute time
  int64_t compute_min_ns = 0;    // fastest node's compute time
  int64_t commit_max_ns = 0;     // slowest node's commit time
  uint64_t stall_ns = 0;         // fetch-stall time inside it, all nodes

  /// Compute imbalance (max-min)/max in [0, 1]; 0 when perfectly balanced.
  double imbalance() const;
};

/// A remote block ranked by how many fetches requested it.
struct HotBlock {
  uint32_t array = 0;
  uint64_t owner = 0;
  uint64_t first_elem = 0;  // owner-local index of the block's first element
  uint64_t fetches = 0;
};

/// All phases sharing one app label, rolled up — the unit at which a
/// hot-path optimization is judged: "where does spmv spend its critical
/// path, compute or fetch stall?" is a per-label question, not a
/// per-phase-instance one.
struct LabelRollup {
  std::string label;        // empty label rolls up as "-"
  uint64_t phases = 0;      // phase instances carrying this label
  int64_t compute_ns = 0;   // sum of critical-node compute time
  int64_t commit_ns = 0;    // sum of slowest-node commit time
  uint64_t stall_ns = 0;    // sum of fetch-stall time, all nodes

  /// Fraction of this label's critical compute spent parked on fetches.
  double stall_share() const;
};

struct Summary {
  uint64_t events = 0;   // events recorded across all tracks
  uint64_t dropped = 0;  // events lost to ring wrap across all tracks

  std::vector<PhaseCritical> phases;

  /// Per-label attribution, ordered by first appearance in the run.
  std::vector<LabelRollup> labels;

  /// Histogram of per-phase compute imbalance: bucket i counts phases with
  /// imbalance in [i/8, (i+1)/8) (last bucket closed at 1).
  std::array<uint64_t, 8> imbalance_hist{};

  /// Top remote-hot blocks by fetch count (at most kTopHotBlocks,
  /// deterministic order: count desc, then array/owner/element asc).
  static constexpr size_t kTopHotBlocks = 8;
  std::vector<HotBlock> hot_blocks;

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t fetches = 0;
  uint64_t fetch_latency_ns = 0;  // issue->response, matched by request id
  uint64_t stall_ns = 0;          // VP time actually parked on fetches
  uint64_t messages = 0;          // fabric sends recorded
  uint64_t fault_delay_ns = 0;    // fault-injected extra delay, summed

  /// Block-cache effectiveness: hits / (hits + misses). 1 when every read
  /// after the first of a block was served locally.
  double bundling_efficiency() const;
  /// Fraction of in-flight fetch latency hidden behind computation:
  /// 1 - stall/latency. 1 means fetches never parked a VP.
  double overlap_efficiency() const;

  /// Human-readable report, printed by `ppm_cli --profile` under tracing.
  std::string to_string() const;
};

Summary analyze(const Trace& trace);

}  // namespace ppm::trace
