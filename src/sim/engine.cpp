#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "sim/stack_switch.hpp"
#include "trace/recorder.hpp"
#include "util/error.hpp"

namespace ppm::sim {

namespace {
thread_local Engine* g_current_engine = nullptr;

int64_t host_steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Engine* current_engine() { return g_current_engine; }

int64_t now_ns() {
  PPM_CHECK(g_current_engine != nullptr, "now_ns() called outside a fiber");
  return g_current_engine->now_ns();
}

void advance_ns(int64_t dt_ns) {
  PPM_CHECK(g_current_engine != nullptr,
            "advance_ns() called outside a fiber");
  g_current_engine->advance_ns(dt_ns);
}

void yield() {
  PPM_CHECK(g_current_engine != nullptr, "yield() called outside a fiber");
  g_current_engine->yield();
}

void sleep_for_ns(int64_t dt_ns) {
  PPM_CHECK(g_current_engine != nullptr,
            "sleep_for_ns() called outside a fiber");
  g_current_engine->sleep_for_ns(dt_ns);
}

Engine::Engine(EngineConfig config) : config_(config) {}

Engine::~Engine() = default;

Fiber::Id Engine::spawn(std::string name, std::function<void()> entry,
                        int64_t start_ns, size_t stack_bytes) {
  PPM_CHECK(!name.empty(), "fiber needs a name (used in diagnostics)");
  if (stack_bytes == 0) stack_bytes = config_.default_stack_bytes;
  const auto id = static_cast<Fiber::Id>(fibers_.size());
  fibers_.push_back(std::make_unique<Fiber>(this, id, std::move(name),
                                            std::move(entry), stack_bytes));
  Fiber* fiber = fibers_.back().get();
  fiber->vclock_ns_ = start_ns;
  at(start_ns, [this, fiber] {
    if (fiber->state_ == FiberState::kRunnable) {
      resume(fiber, engine_now_ns_);
    }
  });
  return id;
}

void Engine::at(int64_t t_ns, std::function<void()> fn) {
  events_.push(Event{t_ns, next_seq_++, std::move(fn)});
}

void Engine::run() {
  run_until(std::numeric_limits<int64_t>::max());
  // With no events left, any non-finished fiber is deadlocked.
  const std::string stuck = stuck_fiber_names();
  PPM_CHECK(stuck.empty(), "simulation deadlock; blocked fibers: %s",
            stuck.c_str());
}

void Engine::run_until(int64_t horizon_ns) {
  PPM_CHECK(!running_, "Engine::run() is not reentrant");
  running_ = true;
  g_current_engine = this;
  while (!events_.empty() && events_.top().t_ns < horizon_ns) {
    // priority_queue::top() is const; move out via const_cast, which is safe
    // because we pop immediately after.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    engine_now_ns_ = std::max(engine_now_ns_, ev.t_ns);
    ++events_fired_;
    if (tracer_ != nullptr && engine_now_ns_ >= next_trace_mark_ns_)
        [[unlikely]] {
      trace::Event mark;
      mark.t_ns = engine_now_ns_;
      mark.kind = trace::EventKind::kEngineStep;
      mark.a = events_fired_;
      tracer_->record(mark);
      next_trace_mark_ns_ =
          (engine_now_ns_ / trace_stride_ns_ + 1) * trace_stride_ns_;
    }
    ev.fn();
    if (pending_error_) {
      running_ = false;
      g_current_engine = nullptr;
      auto err = pending_error_;
      pending_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
  running_ = false;
  g_current_engine = nullptr;
}

int64_t Engine::next_event_ns() const {
  return events_.empty() ? std::numeric_limits<int64_t>::max()
                         : events_.top().t_ns;
}

std::string Engine::stuck_fiber_names() const {
  std::string stuck;
  for (const auto& f : fibers_) {
    if (f->state_ != FiberState::kFinished) {
      stuck += f->name();
      stuck += ' ';
    }
  }
  return stuck;
}

void Engine::set_trace_recorder(trace::Recorder* recorder,
                                int64_t stride_ns) {
  tracer_ = recorder;
  trace_stride_ns_ = std::max<int64_t>(1, stride_ns);
  // Mark immediately at the next fired event, then every stride.
  next_trace_mark_ns_ = engine_now_ns_;
}

bool Engine::all_fibers_finished() const {
  return std::all_of(fibers_.begin(), fibers_.end(), [](const auto& f) {
    return f->state_ == FiberState::kFinished;
  });
}

int64_t Engine::now_ns() {
  PPM_CHECK(current_ != nullptr, "now_ns() requires a running fiber");
  int64_t t = current_->vclock_ns_;
  if (config_.calibration == CalibrationMode::kMeasured) {
    const int64_t wall = host_steady_ns() - slice_wall_start_ns_;
    t += static_cast<int64_t>(static_cast<double>(wall) *
                              config_.calibration_factor);
  }
  return t;
}

void Engine::advance_ns(int64_t dt_ns) {
  PPM_CHECK(current_ != nullptr, "advance_ns() requires a running fiber");
  PPM_CHECK(dt_ns >= 0, "cannot advance time backwards (dt=%lld)",
            static_cast<long long>(dt_ns));
  // Sub-microsecond charges (per-access cost models) skip the scheduling
  // point: the causality window they could reorder within is negligible,
  // and hot paths call this millions of times.
  if (dt_ns < kSmallAdvanceNs) {
    current_->vclock_ns_ += dt_ns;
    return;
  }
  finalize_slice();
  const int64_t target = current_->vclock_ns_ + dt_ns;
  // Conservative discrete-event rule: if anything else is scheduled before
  // this fiber's new clock, let it run first — otherwise a fiber could
  // mutate shared state "from the future" within one host slice.
  if (!events_.empty() && events_.top().t_ns < target) {
    Fiber* self = current_;
    at(target, [this, self, target] { resume(self, target); });
    switch_out(FiberState::kBlocked);
  } else {
    current_->vclock_ns_ = target;
  }
}

void Engine::yield() {
  PPM_CHECK(current_ != nullptr, "yield() requires a running fiber");
  Fiber* self = current_;
  // Charge the measured slice first so the reschedule lands at the fiber's
  // true post-slice virtual time.
  finalize_slice();
  at(self->vclock_ns_, [this, self] { resume(self, self->vclock_ns_); });
  switch_out(FiberState::kRunnable);
}

void Engine::sleep_until_ns(int64_t wake_at_ns) {
  PPM_CHECK(current_ != nullptr, "sleep requires a running fiber");
  Fiber* self = current_;
  at(wake_at_ns, [this, self, wake_at_ns] { resume(self, wake_at_ns); });
  switch_out(FiberState::kBlocked);
}

void Engine::suspend_current() {
  PPM_CHECK(current_ != nullptr, "suspend requires a running fiber");
  switch_out(FiberState::kBlocked);
}

void Engine::wake(Fiber::Id fiber_id, int64_t t_ns) {
  Fiber* fiber = fiber_by_id(fiber_id);
  PPM_CHECK(fiber != nullptr, "wake of unknown fiber %u", fiber_id);
  PPM_CHECK(fiber->state_ == FiberState::kBlocked,
            "wake of fiber '%s' which is not blocked", fiber->name().c_str());
  fiber->state_ = FiberState::kRunnable;
  at(t_ns, [this, fiber, t_ns] {
    if (fiber->state_ == FiberState::kRunnable) resume(fiber, t_ns);
  });
}

bool Engine::try_wake(Fiber::Id fiber_id, int64_t t_ns) {
  Fiber* fiber = fiber_by_id(fiber_id);
  PPM_CHECK(fiber != nullptr, "try_wake of unknown fiber %u", fiber_id);
  if (fiber->state_ != FiberState::kBlocked) return false;
  wake(fiber_id, t_ns);
  return true;
}

Fiber::Id Engine::current_fiber_id() const {
  PPM_CHECK(current_ != nullptr, "no fiber is running");
  return current_->id();
}

const std::string& Engine::current_fiber_name() const {
  PPM_CHECK(current_ != nullptr, "no fiber is running");
  return current_->name();
}

void Engine::resume(Fiber* fiber, int64_t at_ns) {
  PPM_CHECK(current_ == nullptr,
            "resume must be called from the engine loop, not a fiber");
  if (fiber->state_ == FiberState::kFinished) return;
  fiber->state_ = FiberState::kRunning;
  // A fiber never resumes earlier than its own clock: a message that arrives
  // while the receiver is still "busy" is seen when the receiver is free.
  fiber->vclock_ns_ = std::max(fiber->vclock_ns_, at_ns);
  current_ = fiber;
  slice_wall_start_ns_ = host_steady_ns();
  asan_start_switch(&asan_fake_stack_, fiber->context_.uc_stack.ss_sp,
                    fiber->context_.uc_stack.ss_size);
  swapcontext(&engine_context_, &fiber->context_);
  asan_finish_switch(asan_fake_stack_, nullptr, nullptr);
  current_ = nullptr;
  if (fiber->state_ == FiberState::kFinished && fiber->error_ &&
      !pending_error_) {
    pending_error_ = fiber->error_;
    fiber->error_ = nullptr;
  }
}

void Engine::finalize_slice() {
  if (config_.calibration == CalibrationMode::kMeasured) {
    const int64_t wall_now = host_steady_ns();
    const int64_t wall = wall_now - slice_wall_start_ns_;
    current_->vclock_ns_ += static_cast<int64_t>(
        static_cast<double>(wall) * config_.calibration_factor);
    slice_wall_start_ns_ = wall_now;
  }
}

void Engine::switch_out(FiberState new_state) {
  Fiber* self = current_;
  finalize_slice();
  self->state_ = new_state;
  // A finished fiber never runs again: hand ASan a null save slot so it
  // releases the fake stack before ~Fiber munmaps the real one.
  asan_start_switch(
      new_state == FiberState::kFinished ? nullptr : &self->asan_fake_stack_,
      asan_engine_stack_bottom_, asan_engine_stack_size_);
  swapcontext(&self->context_, &engine_context_);
  // Re-record the host-side stack bounds on every resume: under the
  // windowed driver the engine may run on a different pool thread (with a
  // different host stack) each window.
  asan_finish_switch(self->asan_fake_stack_, &asan_engine_stack_bottom_,
                     &asan_engine_stack_size_);
  // Resumed: the engine restored current_ = self and restarted the slice
  // timer; vclock was advanced to the resume time by resume().
}

void Engine::fiber_exit() {
  Fiber* self = current_;
  switch_out(FiberState::kFinished);
  // Unreachable: a finished fiber is never resumed.
  (void)self;
  std::terminate();
}

Fiber* Engine::fiber_by_id(Fiber::Id id) const {
  return id < fibers_.size() ? fibers_[id].get() : nullptr;
}

}  // namespace ppm::sim
