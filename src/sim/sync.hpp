// Blocking primitives for fibers: condition variables, barriers, semaphores
// and timed channels. These model *simulated* synchronization — there is no
// host-thread concurrency to protect against (the engine runs one fiber at
// a time), so these classes only manage virtual-time ordering and wakeups.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace ppm::sim {

/// Virtual time "now" usable both on fibers and in event callbacks.
inline int64_t current_time_ns(Engine& engine) {
  return engine.on_fiber() ? engine.now_ns() : engine.engine_now_ns();
}

/// Condition variable with predicate-style waits.
///
/// Unlike std::condition_variable there is no mutex: fibers are cooperative,
/// so predicate checks are atomic by construction. A waiter resumes no
/// earlier than the notifier's virtual time (information cannot travel
/// backwards in time).
class ConditionVar {
 public:
  explicit ConditionVar(Engine& engine) : engine_(engine) {}

  template <typename Pred>
  void wait(Pred&& pred) {
    while (!pred()) {
      waiters_.push_back(engine_.current_fiber_id());
      engine_.suspend_current();
    }
  }

  void notify_all() {
    const int64_t t = current_time_ns(engine_);
    std::vector<Fiber::Id> woken;
    woken.swap(waiters_);
    for (Fiber::Id id : woken) engine_.wake(id, t);
  }

  void notify_one() {
    if (waiters_.empty()) return;
    const int64_t t = current_time_ns(engine_);
    const Fiber::Id id = waiters_.front();
    waiters_.erase(waiters_.begin());
    engine_.wake(id, t);
  }

  size_t num_waiters() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<Fiber::Id> waiters_;
};

/// Targeted wait list: fibers park on one instance (a fetch slot, an I/O
/// completion) and the completion handler requeues exactly those fibers.
/// Unlike ConditionVar::notify_all no unrelated waiter is woken to re-check
/// its predicate, which matters when thousands of slots complete per phase.
class WaitList {
 public:
  explicit WaitList(Engine& engine) : engine_(engine) {}

  template <typename Pred>
  void wait(Pred&& pred) {
    while (!pred()) {
      waiters_.push_back(engine_.current_fiber_id());
      engine_.suspend_current();
    }
  }

  void wake_all() {
    const int64_t t = current_time_ns(engine_);
    std::vector<Fiber::Id> woken;
    woken.swap(waiters_);
    // try_wake: a waiter registered here may have been resumed through
    // another completion in the meantime (it re-registers if its predicate
    // still fails).
    for (Fiber::Id id : woken) engine_.try_wake(id, t);
  }

  size_t num_waiters() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<Fiber::Id> waiters_;
};

/// Reusable barrier for a fixed number of participants. The release time is
/// the maximum arrival time, which is exactly the BSP superstep rule.
class Barrier {
 public:
  Barrier(Engine& engine, int participants)
      : engine_(engine), participants_(participants), cv_(engine) {
    PPM_CHECK(participants > 0, "barrier needs at least one participant");
  }

  void arrive_and_wait() {
    const uint64_t my_generation = generation_;
    ++arrived_;
    if (arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait([&] { return generation_ != my_generation; });
  }

  int participants() const { return participants_; }

 private:
  Engine& engine_;
  int participants_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  ConditionVar cv_;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Engine& engine, int64_t initial) : count_(initial), cv_(engine) {
    PPM_CHECK(initial >= 0, "semaphore count must be non-negative");
  }

  void acquire(int64_t n = 1) {
    cv_.wait([&] { return count_ >= n; });
    count_ -= n;
  }

  void release(int64_t n = 1) {
    count_ += n;
    cv_.notify_all();
  }

  int64_t count() const { return count_; }

 private:
  int64_t count_;
  ConditionVar cv_;
};

/// FIFO channel carrying values stamped with the virtual time at which they
/// become visible. Producers may be fibers or event callbacks (e.g. network
/// delivery events); consumers are fibers.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(engine), cv_(engine) {}

  /// Push visible at the producer's current virtual time.
  void push(T value) { push_at(current_time_ns(engine_), std::move(value)); }

  /// Push visible at explicit virtual time `t_ns` (>= producer time).
  void push_at(int64_t t_ns, T value) {
    queue_.emplace_back(t_ns, std::move(value));
    cv_.notify_all();
  }

  /// Blocking pop; the consumer resumes no earlier than the value's stamp.
  T pop() {
    cv_.wait([&] { return !queue_.empty(); });
    auto [t, value] = std::move(queue_.front());
    queue_.pop_front();
    // If the value's visibility time is ahead of the consumer, the consumer
    // waits for it (models the receiver being ready before the data).
    Engine& e = engine_;
    if (t > e.now_ns()) e.sleep_until_ns(t);
    return std::move(value);
  }

  bool try_pop(T* out) {
    if (queue_.empty()) return false;
    auto [t, value] = std::move(queue_.front());
    queue_.pop_front();
    if (engine_.on_fiber() && t > engine_.now_ns()) {
      engine_.sleep_until_ns(t);
    }
    *out = std::move(value);
    return true;
  }

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }

 private:
  Engine& engine_;
  ConditionVar cv_;
  std::deque<std::pair<int64_t, T>> queue_;
};

}  // namespace ppm::sim
