// AddressSanitizer fiber-switch annotations.
//
// ASan tracks one stack per OS thread; swapcontext between fiber stacks
// confuses its fake-stack bookkeeping and its unwinder (spurious
// stack-use-after-scope on exception throws, see
// github.com/google/sanitizers/issues/189). The documented fix is to
// bracket every stack switch with __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber. These wrappers compile to nothing
// when ASan is off, so the engine's switch paths stay annotation-free in
// normal builds.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define PPM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PPM_ASAN_FIBERS 1
#endif
#endif

#ifdef PPM_ASAN_FIBERS

extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     size_t* stack_size_old);
}

namespace ppm::sim {

/// Call on the OLD stack, immediately before switching to a stack with the
/// given bounds. `save` stores the old stack's fake-stack handle; pass
/// nullptr when the old stack is exiting forever (fiber finished) so ASan
/// releases its fake frames before the real stack is unmapped.
inline void asan_start_switch(void** save, const void* bottom, size_t size) {
  __sanitizer_start_switch_fiber(save, bottom, size);
}

/// Call as the first action on the NEW stack. `save` is the handle stored
/// when this stack last switched away (nullptr on first entry). The out
/// params receive the bounds of the stack we came from.
inline void asan_finish_switch(void* save, const void** bottom_old,
                               size_t* size_old) {
  __sanitizer_finish_switch_fiber(save, bottom_old, size_old);
}

}  // namespace ppm::sim

#else

namespace ppm::sim {
inline void asan_start_switch(void**, const void*, size_t) {}
inline void asan_finish_switch(void*, const void**, size_t*) {}
}  // namespace ppm::sim

#endif
