#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "sim/engine.hpp"
#include "sim/stack_switch.hpp"
#include "util/error.hpp"

namespace ppm::sim {

namespace {
size_t page_size() {
  static const size_t kPage = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPage;
}

size_t round_up(size_t n, size_t align) {
  return (n + align - 1) / align * align;
}
}  // namespace

Fiber::Fiber(Engine* engine, Id id, std::string name,
             std::function<void()> entry, size_t stack_bytes)
    : engine_(engine), id_(id), name_(std::move(name)),
      entry_(std::move(entry)) {
  stack_bytes_ = round_up(stack_bytes, page_size());
  map_bytes_ = stack_bytes_ + page_size();  // +1 guard page at the bottom
  void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  PPM_CHECK(mem != MAP_FAILED, "fiber stack mmap of %zu bytes failed",
            map_bytes_);
  // Stacks grow downward: protect the lowest page so overflow faults loudly
  // instead of corrupting a neighboring fiber's stack.
  PPM_CHECK(::mprotect(mem, page_size(), PROT_NONE) == 0,
            "fiber guard page mprotect failed");
  stack_ = mem;

  PPM_CHECK(getcontext(&context_) == 0, "getcontext failed");
  context_.uc_stack.ss_sp = static_cast<char*>(mem) + page_size();
  context_.uc_stack.ss_size = stack_bytes_;
  context_.uc_link = nullptr;  // fibers never fall off; trampoline exits
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  if (stack_ != nullptr) {
    ::munmap(stack_, map_bytes_);
  }
}

void Fiber::trampoline() {
  // The engine sets current_ before swapping in, so the running fiber finds
  // itself through its engine (Fiber is a friend of Engine).
  Engine* engine = current_engine();
  Fiber* self = engine->current_;
  // First gain of control on this stack: no fake stack to restore, and the
  // stack we came from is the engine's — record its bounds so switch_out
  // can annotate the reverse switch.
  asan_finish_switch(nullptr, &engine->asan_engine_stack_bottom_,
                     &engine->asan_engine_stack_size_);
  try {
    self->entry_();
  } catch (...) {
    self->error_ = std::current_exception();
  }
  engine->fiber_exit();
}

}  // namespace ppm::sim
