// Conservative-window parallel execution of many Engines (docs/SIM.md).
//
// The windowed driver implements the classic Chandy–Misra–Bryant
// discipline: with one Engine per simulated node and a lookahead equal to
// the minimum cross-engine message latency, every engine can safely fire
// all events in [t_min, t_min + lookahead) without hearing from its peers —
// any message sent inside the window arrives no earlier than the window's
// end. Engines run their windows concurrently on a host-thread pool;
// cross-engine traffic is collected into per-source outboxes and injected
// at the barrier between windows in one deterministic, globally sorted
// order. Because the injection order (and with it every engine's event
// sequence numbering) is fixed at the barrier regardless of how many host
// threads raced through the window, a run is bit-identical across thread
// counts by construction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"

namespace ppm::sim {

/// Fixed-size host thread pool for window execution. `threads` counts the
/// calling thread: HostPool(1) spawns nothing and run() executes inline,
/// so the single-threaded windowed mode has no host-concurrency at all.
/// Workers sleep on a condition variable between rounds (no spinning — the
/// driver is designed to behave on oversubscribed or single-core hosts).
class HostPool {
 public:
  explicit HostPool(int threads);
  ~HostPool();

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  /// Execute every task once; the caller participates and returns when all
  /// tasks completed. Tasks must not throw (wrap exceptions yourself).
  void run(const std::vector<std::function<void()>>& tasks);

  int threads() const { return threads_; }

 private:
  void worker_main();
  /// Pop-and-run tasks from the current round until none remain.
  void drain();

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: a new round is posted
  std::condition_variable done_cv_;   // caller: all tasks of a round done
  const std::vector<std::function<void()>>* tasks_ = nullptr;
  size_t next_task_ = 0;     // guarded by mu_
  size_t unfinished_ = 0;    // guarded by mu_
  uint64_t round_ = 0;       // guarded by mu_
  bool stop_ = false;
};

/// Aggregate statistics of one windowed run, for tests and benches.
struct WindowStats {
  uint64_t windows = 0;            // barriers executed
  uint64_t engine_activations = 0; // run_until calls that had work
};

/// Drive a set of engines to completion in conservative windows.
///
/// `exchange(horizon_ns)` is called at every window barrier (single
/// threaded) and must move all pending cross-engine messages into their
/// destination engines' event queues, returning how many it injected;
/// `horizon_ns` is the boundary every engine has completed, i.e. the floor
/// below which no new event may be scheduled. The run ends when every
/// queue is empty and a final exchange injects nothing. The caller is
/// responsible for the cross-engine deadlock check afterwards.
class WindowScheduler {
 public:
  WindowScheduler(std::vector<Engine*> engines, int64_t lookahead_ns,
                  HostPool& pool);

  void run(const std::function<uint64_t(int64_t horizon_ns)>& exchange);

  const WindowStats& stats() const { return stats_; }

 private:
  std::vector<Engine*> engines_;
  int64_t lookahead_ns_;
  HostPool& pool_;
  WindowStats stats_;
};

}  // namespace ppm::sim
