#include "sim/parallel.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace ppm::sim {

HostPool::HostPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

HostPool::~HostPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void HostPool::drain() {
  for (;;) {
    const std::vector<std::function<void()>>* tasks;
    size_t i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks = tasks_;
      if (tasks == nullptr || next_task_ >= tasks->size()) return;
      i = next_task_++;
    }
    (*tasks)[i]();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--unfinished_ == 0) {
        tasks_ = nullptr;
        done_cv_.notify_all();
      }
    }
  }
}

void HostPool::worker_main() {
  uint64_t seen_round = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || round_ != seen_round; });
      if (stop_) return;
      seen_round = round_;
    }
    drain();
  }
}

void HostPool::run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (const auto& t : tasks) t();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    next_task_ = 0;
    unfinished_ = tasks.size();
    ++round_;
  }
  work_cv_.notify_all();
  drain();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return tasks_ == nullptr; });
}

WindowScheduler::WindowScheduler(std::vector<Engine*> engines,
                                 int64_t lookahead_ns, HostPool& pool)
    : engines_(std::move(engines)), lookahead_ns_(lookahead_ns),
      pool_(pool) {
  PPM_CHECK(!engines_.empty(), "windowed run needs at least one engine");
  PPM_CHECK(lookahead_ns_ > 0,
            "windowed run needs positive lookahead (got %lld)",
            static_cast<long long>(lookahead_ns_));
}

void WindowScheduler::run(
    const std::function<uint64_t(int64_t horizon_ns)>& exchange) {
  constexpr int64_t kIdle = std::numeric_limits<int64_t>::max();
  const size_t n = engines_.size();
  // Per-engine error slots, filled by the window tasks; rethrown (lowest
  // engine index first, for determinism) once the window's barrier is
  // reached so no engine is abandoned mid-window.
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  int64_t completed_horizon = 0;
  for (;;) {
    int64_t t_min = kIdle;
    for (Engine* e : engines_) t_min = std::min(t_min, e->next_event_ns());
    if (t_min == kIdle) {
      // All queues drained; a final exchange may still surface messages
      // produced in the last window.
      if (exchange(completed_horizon) == 0) return;
      continue;
    }
    const int64_t horizon = t_min > kIdle - lookahead_ns_
                                ? kIdle
                                : t_min + lookahead_ns_;
    tasks.clear();
    for (size_t i = 0; i < n; ++i) {
      Engine* e = engines_[i];
      if (e->next_event_ns() >= horizon) continue;  // idle this window
      ++stats_.engine_activations;
      tasks.push_back([e, horizon, err = &errors[i]] {
        try {
          e->run_until(horizon);
        } catch (...) {
          *err = std::current_exception();
        }
      });
    }
    pool_.run(tasks);
    ++stats_.windows;
    for (const std::exception_ptr& err : errors) {
      if (err) std::rethrow_exception(err);
    }
    completed_horizon = horizon;
    exchange(horizon);
  }
}

}  // namespace ppm::sim
