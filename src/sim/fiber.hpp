// Cooperative fibers over POSIX ucontext.
//
// Each simulated hardware core runs application code on one fiber. Fibers
// are scheduled exclusively by sim::Engine (single OS thread), which is what
// makes the whole cluster simulation deterministic.
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <exception>
#include <functional>
#include <string>

namespace ppm::sim {

class Engine;

enum class FiberState : uint8_t {
  kRunnable,  // created or woken, waiting for the engine to resume it
  kRunning,   // currently executing (at most one fiber at a time)
  kBlocked,   // suspended on a wait primitive or sleep
  kFinished,  // entry function returned (or threw)
};

/// A cooperatively scheduled execution context with its own guarded stack.
/// Construction does not start execution; the Engine resumes it.
class Fiber {
 public:
  using Id = uint32_t;

  Fiber(Engine* engine, Id id, std::string name, std::function<void()> entry,
        size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  Id id() const { return id_; }
  const std::string& name() const { return name_; }
  FiberState state() const { return state_; }

  /// Virtual clock of this fiber, nanoseconds. Only meaningful between
  /// slices; while running, Engine::now_ns() folds in the live slice.
  int64_t vclock_ns() const { return vclock_ns_; }

 private:
  friend class Engine;

  static void trampoline();

  Engine* engine_;
  Id id_;
  std::string name_;
  std::function<void()> entry_;
  FiberState state_ = FiberState::kRunnable;
  int64_t vclock_ns_ = 0;

  ucontext_t context_{};
  void* asan_fake_stack_ = nullptr;  // ASan fake-stack handle (see
                                     // sim/stack_switch.hpp); unused and
                                     // null outside sanitized builds
  void* stack_ = nullptr;       // mmap'd region including guard page
  size_t stack_bytes_ = 0;      // usable stack size
  size_t map_bytes_ = 0;        // total mapped size
  std::exception_ptr error_;    // set if entry_ threw
};

}  // namespace ppm::sim
