// Discrete-event simulation engine with virtual time.
//
// The engine owns a set of fibers (one per simulated core, plus runtime
// service fibers) and a time-ordered event queue. Virtual time advances in
// two ways:
//   * modeled costs: sim::advance(ns) and timed events (network delivery,
//     sleeps) — always deterministic;
//   * measured compute: in CalibrationMode::kMeasured the wall-clock
//     duration of each fiber slice, scaled by `calibration_factor`, is
//     charged to the fiber's virtual clock. This lets real application
//     kernels (SpMV, force walks, numerical integration) cost what they
//     actually cost without hand-counting flops.
//
// Exactly one fiber runs at a time on the host thread, so simulated "shared
// memory" accesses within a node need no host synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/fiber.hpp"

namespace ppm::trace {
class Recorder;
}

namespace ppm::sim {

/// advance_ns charges below this threshold skip the conservative
/// scheduling point (no event-queue check, no context switch). Virtual-time
/// causality is therefore only guaranteed at >= this granularity; per-access
/// cost models rely on the cheap path.
inline constexpr int64_t kSmallAdvanceNs = 1000;

enum class CalibrationMode : uint8_t {
  kModeledOnly,  // virtual time advances only through advance()/events
  kMeasured,     // wall time of compute slices is charged to virtual time
};

struct EngineConfig {
  CalibrationMode calibration = CalibrationMode::kModeledOnly;
  /// Virtual nanoseconds charged per measured wall nanosecond.
  double calibration_factor = 1.0;
  size_t default_stack_bytes = 512 * 1024;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a fiber; it becomes runnable at virtual time `start_ns`.
  Fiber::Id spawn(std::string name, std::function<void()> entry,
                  int64_t start_ns = 0, size_t stack_bytes = 0);

  /// Schedule `fn` to run on the engine (not on a fiber) at virtual `t_ns`.
  void at(int64_t t_ns, std::function<void()> fn);

  /// Run until the event queue drains. Throws if a fiber threw, or if
  /// fibers remain blocked with no pending events (deadlock).
  void run();

  /// Partial run for the conservative-window parallel driver
  /// (sim/parallel.hpp): fire events strictly before `horizon_ns`, then
  /// return. Unlike run() this performs no deadlock check — an engine with
  /// only blocked fibers may legitimately be waiting for a cross-engine
  /// message injected at the next window boundary. Rethrows a fiber's
  /// escaped exception just like run().
  void run_until(int64_t horizon_ns);

  /// Timestamp of the earliest pending event, or INT64_MAX when the queue
  /// is empty. The windowed driver takes the minimum across engines to
  /// place the next window boundary.
  int64_t next_event_ns() const;

  /// Space-separated names of fibers that have not finished (empty when
  /// all are done). run() turns a non-empty answer into a deadlock error;
  /// the windowed driver aggregates it across engines first.
  std::string stuck_fiber_names() const;

  /// True when no fibers exist or all have finished.
  bool all_fibers_finished() const;

  // ---- Calls below are valid only from within a running fiber. ----

  /// Current fiber's virtual time (vclock + live measured slice).
  int64_t now_ns();

  /// Charge modeled compute cost to the current fiber.
  void advance_ns(int64_t dt_ns);

  /// Let other runnable fibers at the same virtual time execute.
  void yield();

  /// Block the current fiber until `wake_at_ns` virtual time.
  void sleep_until_ns(int64_t wake_at_ns);
  void sleep_for_ns(int64_t dt_ns) { sleep_until_ns(now_ns() + dt_ns); }

  /// Suspend the current fiber with no scheduled wakeup; a wait primitive
  /// must later call wake(). Used by ConditionVar et al.
  void suspend_current();

  /// Make `fiber` runnable no earlier than virtual time `t_ns` (it resumes
  /// at max(t_ns, its own vclock)). Callable from fibers or event callbacks.
  void wake(Fiber::Id fiber, int64_t t_ns);

  /// Like wake(), but a no-op returning false when the fiber is not
  /// blocked. Completion handlers (e.g. a fetch response requeueing its
  /// waiters) use this: a registered waiter may have been resumed through
  /// another path, or be busy running borrowed work, by the time the
  /// completion fires.
  bool try_wake(Fiber::Id fiber, int64_t t_ns);

  Fiber::Id current_fiber_id() const;
  const std::string& current_fiber_name() const;
  bool on_fiber() const { return current_ != nullptr; }

  /// Engine-global virtual clock: time of the most recently fired event.
  int64_t engine_now_ns() const { return engine_now_ns_; }

  const EngineConfig& config() const { return config_; }

  /// Engine running stats (events fired, slices executed) for tests.
  uint64_t events_fired() const { return events_fired_; }

  /// Attach (or detach, with nullptr) a ppm::trace recorder: the run loop
  /// then drops one kEngineStep mark per `stride_ns` of virtual time — a
  /// bounded-volume progress track that anchors the other tracks'
  /// timelines. Null by default; the check in the loop is one branch.
  void set_trace_recorder(trace::Recorder* recorder,
                          int64_t stride_ns = 100'000);

 private:
  friend class Fiber;

  struct Event {
    int64_t t_ns;
    uint64_t seq;  // FIFO tie-break => deterministic ordering
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.t_ns != b.t_ns ? a.t_ns > b.t_ns : a.seq > b.seq;
    }
  };

  void resume(Fiber* fiber, int64_t at_ns);
  /// Charge the measured wall time of the running slice to the current
  /// fiber's virtual clock and restart the slice timer.
  void finalize_slice();
  /// Finalize the running slice (charge measured time) and swap to engine.
  void switch_out(FiberState new_state);
  [[noreturn]] void fiber_exit();
  Fiber* fiber_by_id(Fiber::Id id) const;

  EngineConfig config_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  uint64_t next_seq_ = 0;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  Fiber* current_ = nullptr;
  ucontext_t engine_context_{};
  // ASan bookkeeping for the engine's own (thread) stack: its fake-stack
  // handle, and its bounds as reported by the first fiber entry. Unused
  // outside sanitized builds.
  void* asan_fake_stack_ = nullptr;
  const void* asan_engine_stack_bottom_ = nullptr;
  size_t asan_engine_stack_size_ = 0;
  int64_t engine_now_ns_ = 0;
  int64_t slice_wall_start_ns_ = 0;  // host steady_clock at slice start
  uint64_t events_fired_ = 0;
  trace::Recorder* tracer_ = nullptr;
  int64_t trace_stride_ns_ = 100'000;
  int64_t next_trace_mark_ns_ = 0;
  bool running_ = false;
  std::exception_ptr pending_error_;
};

/// Engine hosting the current fiber; null outside fibers.
Engine* current_engine();

// Free-function conveniences for code running on a fiber.
int64_t now_ns();
void advance_ns(int64_t dt_ns);
void yield();
void sleep_for_ns(int64_t dt_ns);

}  // namespace ppm::sim
