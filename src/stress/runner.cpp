#include "stress/runner.hpp"

#include <cstring>
#include <map>
#include <utility>

#include "trace/export.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::stress {

namespace {

// exec_op context executing against live PPM shared-array handles.
struct PpmCtx {
  const ProgramSpec* spec;
  std::vector<GlobalShared<uint64_t>>* g;
  std::vector<NodeShared<uint64_t>>* nd;

  uint64_t read(uint32_t a, uint64_t i) const {
    return (*spec).arrays[a].global ? (*g)[a].get(i) : (*nd)[a].get(i);
  }
  uint64_t gather_sum(uint32_t a, const std::vector<uint64_t>& idx) const {
    uint64_t s = 0;
    for (const uint64_t v : (*g)[a].gather(idx)) s += v;
    return s;
  }
  // Every accumulate flavor routes through accumulate()/accumulate_n():
  // with the owner_side_accumulate knob on, remote global elements ship
  // as kAccumList/kAccumBlock fragments applied at the owner; with it
  // off — and always for local elements and node-shared arrays — the
  // handle falls back to the plain deferred-write path. Both must commit
  // bit-identical state, which is exactly what the differential matrix
  // checks.
  void write(uint32_t a, uint64_t i, detail::WriteOp op, uint64_t v) const {
    if ((*spec).arrays[a].global) {
      auto& arr = (*g)[a];
      if (op == detail::WriteOp::kSet) {
        arr.set(i, v);
      } else {
        arr.accumulate(i, static_cast<ReduceOp>(op), v);
      }
    } else {
      auto& arr = (*nd)[a];
      if (op == detail::WriteOp::kSet) {
        arr.set(i, v);
      } else {
        arr.accumulate(i, static_cast<ReduceOp>(op), v);
      }
    }
  }
  void write_run(uint32_t a, uint64_t first, detail::WriteOp op,
                 const std::vector<uint64_t>& vals) const {
    if ((*spec).arrays[a].global) {
      auto& arr = (*g)[a];
      if (op == detail::WriteOp::kSet) {
        arr.set_n(first, vals.size(), vals.data());
      } else {
        arr.accumulate_n(first, vals.size(), static_cast<ReduceOp>(op),
                         vals.data());
      }
    } else {
      auto& arr = (*nd)[a];
      if (op == detail::WriteOp::kSet) {
        arr.set_n(first, vals.size(), vals.data());
      } else {
        arr.accumulate_n(first, vals.size(), static_cast<ReduceOp>(op),
                         vals.data());
      }
    }
  }
  void prefetch(uint32_t a, const std::vector<uint64_t>& idx) const {
    (*g)[a].prefetch(idx);
  }
};

// Collective: every node reassembles the full logical state from each
// array's packed owned elements; the caller keeps node 0's copy.
Snapshot collect_snapshot(const ProgramSpec& spec, Env& env,
                          const std::vector<uint32_t>& ids) {
  NodeRuntime& rt = env.runtime();
  const int nodes = env.node_count();
  Snapshot s;
  s.global_arrays.resize(spec.arrays.size());
  s.node_arrays.resize(spec.arrays.size());
  for (size_t a = 0; a < spec.arrays.size(); ++a) {
    const auto all = rt.allgather_bytes(rt.pack_owned_elems(ids[a]));
    const uint64_t n = spec.arrays[a].n;
    if (spec.arrays[a].global) {
      const auto& rec = rt.array(ids[a]);
      std::vector<uint64_t> out(n);
      std::vector<size_t> cursor(all.size(), 0);
      for (uint64_t i = 0; i < n; ++i) {
        const auto o = static_cast<size_t>(rec.owner_of(i));
        std::memcpy(&out[i], all[o].data() + cursor[o], sizeof(uint64_t));
        cursor[o] += sizeof(uint64_t);
      }
      s.global_arrays[a] = std::move(out);
    } else {
      auto& per = s.node_arrays[a];
      per.resize(static_cast<size_t>(nodes));
      for (int m = 0; m < nodes; ++m) {
        const Bytes& b = all[static_cast<size_t>(m)];
        PPM_CHECK(b.size() == n * sizeof(uint64_t),
                  "snapshot size mismatch for node array");
        per[static_cast<size_t>(m)].resize(n);
        std::memcpy(per[static_cast<size_t>(m)].data(), b.data(), b.size());
      }
    }
  }
  return s;
}

/// First differing element between two states ("" when equal). With
/// globals_only, node arrays are skipped (their shape legitimately depends
/// on the machine's node count).
std::string diff_states(const ProgramSpec& spec, const GoldenState& want,
                        const GoldenState& got, bool globals_only,
                        const char* want_name, const char* got_name) {
  for (size_t a = 0; a < spec.arrays.size(); ++a) {
    if (spec.arrays[a].global) {
      for (uint64_t i = 0; i < spec.arrays[a].n; ++i) {
        const uint64_t w = want.global_arrays[a][i];
        const uint64_t g = got.global_arrays[a][i];
        if (w != g) {
          return strfmt("a%zu[%llu]: %s=%llu %s=%llu", a,
                        static_cast<unsigned long long>(i), want_name,
                        static_cast<unsigned long long>(w), got_name,
                        static_cast<unsigned long long>(g));
        }
      }
    } else if (!globals_only) {
      const auto& wn = want.node_arrays[a];
      const auto& gn = got.node_arrays[a];
      if (wn.size() != gn.size()) {
        return strfmt("a%zu: node instance count %zu vs %zu", a, wn.size(),
                      gn.size());
      }
      for (size_t m = 0; m < wn.size(); ++m) {
        for (uint64_t i = 0; i < spec.arrays[a].n; ++i) {
          if (wn[m][i] != gn[m][i]) {
            return strfmt("a%zu@node%zu[%llu]: %s=%llu %s=%llu", a, m,
                          static_cast<unsigned long long>(i), want_name,
                          static_cast<unsigned long long>(wn[m][i]),
                          got_name,
                          static_cast<unsigned long long>(gn[m][i]));
          }
        }
      }
    }
  }
  return "";
}

}  // namespace

std::vector<StressConfig> sample_configs(uint64_t seed, int count) {
  Rng rng(mix64(seed) ^ 0xc0f1a5ULL);
  std::vector<StressConfig> out;
  out.reserve(static_cast<size_t>(count));

  StressConfig ref;
  ref.machine.nodes = 1;
  ref.machine.cores_per_node = 1;
  ref.runtime.schedule = SchedulePolicy::kStatic;
  ref.runtime.validate_phases = true;
  ref.runtime.validate_fail_fast = true;
  ref.name = "cfg0-ref-1n1c-sta";
  out.push_back(std::move(ref));

  for (int i = 1; i < count; ++i) {
    StressConfig c;
    c.machine.nodes = 1 + static_cast<int>(rng.next_below(4));
    c.machine.cores_per_node = 1 + static_cast<int>(rng.next_below(4));
    // Alternate deterministically so both policies always appear.
    c.runtime.schedule =
        i % 2 != 0 ? SchedulePolicy::kDynamic : SchedulePolicy::kStatic;
    c.runtime.bundle_reads = rng.next_below(4) != 0;
    c.runtime.read_block_bytes = 8u << (3 * rng.next_below(3));  // 8/64/512
    c.runtime.eager_flush = rng.next_below(2) == 0;
    const uint32_t flush_choices[] = {96, 1024, 64 * 1024};
    c.runtime.flush_threshold_bytes = flush_choices[rng.next_below(3)];
    c.runtime.overlap_reads = rng.next_below(2) == 0;
    c.runtime.overlap_max_depth = 1 + static_cast<uint32_t>(rng.next_below(4));
    c.runtime.prefetch_lookahead_blocks =
        static_cast<uint32_t>(rng.next_below(3));
    c.runtime.batch_fetches = rng.next_below(2) == 0;
    c.runtime.strided_prefetch = rng.next_below(2) == 0;
    c.runtime.bulk_access = rng.next_below(2) == 0;
    c.runtime.combine_writes = rng.next_below(2) == 0;
    // Mostly on (the default and the interesting path); off runs keep the
    // fetch-based fallback honest as the equivalence oracle.
    c.runtime.owner_side_accumulate = rng.next_below(4) != 0;
    c.runtime.adaptive_distribution = rng.next_below(2) == 0;
    c.runtime.migrate_remote_ratio = 1.0 + rng.next_double();
    c.runtime.migrate_max_blocks_per_phase =
        1 + static_cast<uint32_t>(rng.next_below(64));
    c.runtime.chunk_size = rng.next_below(2) == 0 ? 0 : 1 + rng.next_below(4);
    c.runtime.profile_phases = rng.next_below(4) == 0;
    c.runtime.access_overhead_ns = rng.next_below(2) == 0 ? 0 : 20;
    c.runtime.validate_phases = rng.next_below(4) != 0;
    c.runtime.validate_fail_fast = c.runtime.validate_phases;
    if (c.machine.nodes > 1 && rng.next_below(2) == 0) {
      c.machine.faults.delay_jitter = true;
      c.machine.faults.seed = rng.next_u64();
      c.machine.faults.delay_probability = 0.3;
      c.machine.faults.max_extra_delay_ns =
          50'000 + static_cast<int64_t>(rng.next_below(200'000));
    }
    c.name = strfmt(
        "cfg%d-%dn%dc-%s%s%s%s%s", i, c.machine.nodes,
        c.machine.cores_per_node,
        c.runtime.schedule == SchedulePolicy::kDynamic ? "dyn" : "sta",
        c.machine.faults.delay_jitter ? "-faults" : "",
        c.runtime.adaptive_distribution ? "-adapt" : "",
        c.runtime.validate_phases ? "" : "-nochk",
        c.runtime.owner_side_accumulate ? "" : "-noacc");
    out.push_back(std::move(c));
  }
  return out;
}

void RunTotals::add(const RunResult& r) {
  ++runs;
  network_messages += r.network_messages;
  network_bytes += r.network_bytes;
  blocks_fetched += r.remote_blocks_fetched;
  reads_from_cache += r.remote_reads_served_from_cache;
  fetch_stall_ns += r.fetch_stall_ns;
  blocks_migrated += r.blocks_migrated;
}

Snapshot run_under_config(const ProgramSpec& spec, const StressConfig& cfg,
                          RunArtifacts* artifacts) {
  Snapshot snap;
  PpmConfig pc;
  pc.machine = cfg.machine;
  pc.runtime = cfg.runtime;
  if (artifacts != nullptr && artifacts->trace) pc.runtime.trace = true;
  // Machine and Runtime are owned here (not via ppm::run) so the trace can
  // be exported even when the node program throws mid-run.
  cluster::Machine machine(pc.machine);
  Runtime runtime(machine, pc.runtime);
  auto export_trace = [&] {
    if (artifacts != nullptr && artifacts->trace &&
        runtime.trace() != nullptr) {
      artifacts->trace_json = trace::to_chrome_json(*runtime.trace());
    }
  };
  auto node_program = [&](Env& env) {
    const int nodes = env.node_count();
    std::vector<GlobalShared<uint64_t>> g(spec.arrays.size());
    std::vector<NodeShared<uint64_t>> nd(spec.arrays.size());
    std::vector<uint32_t> ids(spec.arrays.size());
    for (size_t a = 0; a < spec.arrays.size(); ++a) {
      if (spec.arrays[a].global) {
        g[a] = env.global_array<uint64_t>(spec.arrays[a].n,
                                          spec.arrays[a].dist);
        ids[a] = g[a].id();
      } else {
        nd[a] = env.node_array<uint64_t>(spec.arrays[a].n);
        ids[a] = nd[a].id();
      }
    }
    // The harness's one user accumulate slot: kUser0 = XOR, exactly
    // commutative on uint64. Registered on every array (SPMD-collective)
    // so generated kAccum ops can draw it for any target; golden.cpp's
    // apply() carries the matching reference semantics.
    const auto xor_op = +[](uint64_t& x, const uint64_t& v) { x ^= v; };
    for (size_t a = 0; a < spec.arrays.size(); ++a) {
      if (spec.arrays[a].global) {
        env.register_accum_op(g[a], 0, xor_op);
      } else {
        env.register_accum_op(nd[a], 0, xor_op);
      }
    }
    auto vps = env.ppm_do(spec.k_local(env.node_id(), nodes));
    PpmCtx ctx{&spec, &g, &nd};
    for (const PhaseSpec& ph : spec.phases) {
      for (const uint32_t a : ph.rebalance) {
        if (spec.arrays[a].global) env.rebalance(g[a]);
      }
      const auto body = [&](Vp& vp) {
        for (const OpSpec& op : ph.ops) {
          exec_op(spec, op, vp.global_rank(), ctx);
        }
      };
      if (ph.global) {
        vps.global_phase(body);
      } else {
        vps.node_phase(body);
      }
    }
    Snapshot local = collect_snapshot(spec, env, ids);
    if (env.node_id() == 0) snap = std::move(local);
  };
  try {
    machine.run_per_node([&](int node) {
      NodeRuntime& nr = runtime.node(node);
      nr.start();
      Env env(nr);
      node_program(env);
      nr.finish();
    });
  } catch (...) {
    export_trace();
    throw;
  }
  RunResult result = runtime.collect();
  export_trace();
  if (artifacts != nullptr) artifacts->result = std::move(result);
  return snap;
}

Verdict run_differential(const ProgramSpec& spec,
                         const std::vector<StressConfig>& configs,
                         RunTotals* totals) {
  std::map<int, GoldenState> golden;  // keyed by machine node count
  GoldenState ref_snap;
  for (size_t i = 0; i < configs.size(); ++i) {
    const StressConfig& cfg = configs[i];
    Snapshot snap;
    RunArtifacts artifacts;
    try {
      snap = run_under_config(spec, cfg,
                              totals != nullptr ? &artifacts : nullptr);
    } catch (const Error& e) {
      return {false, i, cfg.name, strfmt("ppm::Error: %s", e.what())};
    }
    if (totals != nullptr) totals->add(artifacts.result);
    auto [it, fresh] = golden.try_emplace(cfg.machine.nodes);
    if (fresh) it->second = run_golden(spec, cfg.machine.nodes);
    if (auto d = diff_states(spec, it->second, snap, /*globals_only=*/false,
                             "golden", "run");
        !d.empty()) {
      return {false, i, cfg.name, d};
    }
    if (i == 0) {
      ref_snap = std::move(snap);
    } else if (auto d = diff_states(spec, ref_snap, snap,
                                    /*globals_only=*/true, "ref", "run");
               !d.empty()) {
      return {false, i, cfg.name, d};
    }

    // Windowed-simulator sweep (docs/SIM.md): the same config re-run under
    // the parallel windowed engine at 1/2/4 host threads must (a) commit
    // the same state as the sequential golden model and (b) be
    // bit-identical to each other in virtual time and every deterministic
    // counter. Always on — a shrink then reproduces sweep failures too.
    static constexpr int kSimThreads[] = {1, 2, 4};
    RunResult wres[std::size(kSimThreads)];
    for (size_t t = 0; t < std::size(kSimThreads); ++t) {
      StressConfig wcfg = cfg;
      wcfg.machine.sim_threads = kSimThreads[t];
      wcfg.name = strfmt("%s-sim%d", cfg.name.c_str(), kSimThreads[t]);
      RunArtifacts warts;
      Snapshot wsnap;
      try {
        wsnap = run_under_config(spec, wcfg, &warts);
      } catch (const Error& e) {
        return {false, i, wcfg.name, strfmt("ppm::Error: %s", e.what())};
      }
      wres[t] = std::move(warts.result);
      if (auto d = diff_states(spec, it->second, wsnap,
                               /*globals_only=*/false, "golden", "windowed");
          !d.empty()) {
        return {false, i, wcfg.name, d};
      }
    }
    const auto wdiff = [&](const char* field, uint64_t a,
                           uint64_t b) -> std::string {
      if (a == b) return {};
      return strfmt("windowed determinism: %s diverges across sim_threads "
                    "(sim1=%llu vs %llu)",
                    field, static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
    };
    for (size_t t = 1; t < std::size(kSimThreads); ++t) {
      const RunResult& a = wres[0];
      const RunResult& b = wres[t];
      for (const auto& d :
           {wdiff("duration_ns", static_cast<uint64_t>(a.duration_ns),
                  static_cast<uint64_t>(b.duration_ns)),
            wdiff("network_messages", a.network_messages,
                  b.network_messages),
            wdiff("network_bytes", a.network_bytes, b.network_bytes),
            wdiff("intranode_messages", a.intranode_messages,
                  b.intranode_messages),
            wdiff("intranode_bytes", a.intranode_bytes, b.intranode_bytes),
            wdiff("write_entries", a.write_entries, b.write_entries),
            wdiff("bundles_sent", a.bundles_sent, b.bundles_sent),
            wdiff("blocks_fetched", a.remote_blocks_fetched,
                  b.remote_blocks_fetched),
            wdiff("reads_from_cache", a.remote_reads_served_from_cache,
                  b.remote_reads_served_from_cache),
            wdiff("fetch_stall_ns", a.fetch_stall_ns, b.fetch_stall_ns),
            wdiff("entries_combined", a.entries_combined,
                  b.entries_combined),
            wdiff("accums_executed", a.accums_executed, b.accums_executed),
            wdiff("reduction_bytes_saved", a.reduction_bytes_saved,
                  b.reduction_bytes_saved),
            wdiff("blocks_migrated", a.blocks_migrated,
                  b.blocks_migrated)}) {
        if (!d.empty()) {
          return {false, i,
                  strfmt("%s-sim%d", cfg.name.c_str(), kSimThreads[t]), d};
        }
      }
    }
  }
  return {};
}

ShrinkResult shrink(const ProgramSpec& spec,
                    const std::vector<StressConfig>& configs,
                    size_t failing_config) {
  ShrinkResult res;
  res.configs.push_back(configs[0]);
  if (failing_config != 0 && failing_config < configs.size()) {
    res.configs.push_back(configs[failing_config]);
  }
  int budget = 200;
  const auto fails = [&](const ProgramSpec& s) {
    ++res.runs;
    --budget;
    return !run_differential(s, res.configs).ok;
  };

  ProgramSpec cur = spec;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    // Drop whole phases, later ones first (later phases usually depend on
    // earlier state, so survivors shrink from the back).
    for (size_t i = cur.phases.size(); i-- > 0 && budget > 0;) {
      if (cur.phases.size() <= 1) break;
      ProgramSpec cand = cur;
      cand.phases.erase(cand.phases.begin() + static_cast<ptrdiff_t>(i));
      if (fails(cand)) {
        cur = std::move(cand);
        progress = true;
      }
    }
    // Drop individual ops.
    for (size_t p = 0; p < cur.phases.size() && budget > 0; ++p) {
      for (size_t o = cur.phases[p].ops.size(); o-- > 0 && budget > 0;) {
        ProgramSpec cand = cur;
        cand.phases[p].ops.erase(cand.phases[p].ops.begin() +
                                 static_cast<ptrdiff_t>(o));
        if (fails(cand)) {
          cur = std::move(cand);
          progress = true;
        }
      }
    }
    // Clear rebalance hints.
    if (budget > 0) {
      ProgramSpec cand = cur;
      bool any = false;
      for (PhaseSpec& ph : cand.phases) {
        any = any || !ph.rebalance.empty();
        ph.rebalance.clear();
      }
      if (any && fails(cand)) {
        cur = std::move(cand);
        progress = true;
      }
    }
    // Lower K, then flatten the split.
    for (const uint64_t k : {uint64_t{1}, cur.k_total / 2}) {
      if (budget <= 0 || k == 0 || k >= cur.k_total) continue;
      ProgramSpec cand = cur;
      cand.k_total = k;
      if (fails(cand)) {
        cur = std::move(cand);
        progress = true;
        break;
      }
    }
    if (cur.k_split_mode != 0 && budget > 0) {
      ProgramSpec cand = cur;
      cand.k_split_mode = 0;
      if (fails(cand)) {
        cur = std::move(cand);
        progress = true;
      }
    }
  }
  // Finally, try lowering the failing config's machine.
  if (res.configs.size() > 1) {
    for (const int n : {1, 2}) {
      if (budget <= 0 || n >= res.configs[1].machine.nodes) continue;
      const int save = res.configs[1].machine.nodes;
      res.configs[1].machine.nodes = n;
      if (!fails(cur)) res.configs[1].machine.nodes = save;
    }
    if (budget > 0 && res.configs[1].machine.cores_per_node > 1) {
      const int save = res.configs[1].machine.cores_per_node;
      res.configs[1].machine.cores_per_node = 1;
      if (!fails(cur)) res.configs[1].machine.cores_per_node = save;
    }
  }
  res.spec = std::move(cur);
  return res;
}

}  // namespace ppm::stress
