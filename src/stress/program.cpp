#include "stress/program.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm::stress {

uint64_t ProgramSpec::k_local(int node, int nodes) const {
  const auto un = static_cast<uint64_t>(node);
  const auto p = static_cast<uint64_t>(nodes);
  switch (k_split_mode) {
    case 1:
      return node == 0 ? k_total : 0;
    case 2:
      return node == nodes - 1 ? k_total : 0;
    default:
      return k_total / p + (un < k_total % p ? 1 : 0);
  }
}

uint64_t ProgramSpec::k_offset(int node, int nodes) const {
  uint64_t off = 0;
  for (int m = 0; m < node; ++m) off += k_local(m, nodes);
  return off;
}

namespace {

const char* dist_name(Distribution d) {
  switch (d) {
    case Distribution::kBlock: return "block";
    case Distribution::kCyclic: return "cyclic";
    case Distribution::kAdaptive: return "adaptive";
  }
  return "?";
}

const char* accum_name(uint8_t op) {
  switch (static_cast<detail::WriteOp>(op)) {
    case detail::WriteOp::kAdd: return "add";
    case detail::WriteOp::kMin: return "min";
    case detail::WriteOp::kMax: return "max";
    case detail::WriteOp::kMul: return "mul";
    case detail::WriteOp::kSet: return "set";
    case detail::WriteOp::kUser0: return "xor";  // the harness's user slot
    case detail::WriteOp::kUser1: return "user1";
    case detail::WriteOp::kUser2: return "user2";
  }
  return "?";
}

// The generator assigns each (phase, target array) one write category on
// first use; later ops on the same target are coerced into it (see the
// check-clean rules in program.hpp).
struct Category {
  bool is_set = false;
  bool is_bulk = false;
  uint8_t accum_op = 1;
  uint64_t ia = 0;       // shared set-index offset
  uint32_t bulk_len = 1;  // shared run length for bulk targets
};

}  // namespace

std::string ProgramSpec::dump() const {
  std::string out = strfmt(
      "program seed=%llu k=%llu split=%u arrays=%zu phases=%zu\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(k_total), k_split_mode, arrays.size(),
      phases.size());
  for (size_t a = 0; a < arrays.size(); ++a) {
    const ArraySpec& ar = arrays[a];
    out += strfmt("  a%zu: %s n=%llu%s%s\n", a,
                  ar.global ? "global" : "node",
                  static_cast<unsigned long long>(ar.n),
                  ar.global ? " " : "",
                  ar.global ? dist_name(ar.dist) : "");
  }
  for (size_t p = 0; p < phases.size(); ++p) {
    const PhaseSpec& ph = phases[p];
    out += strfmt("  phase %zu (%s):", p, ph.global ? "global" : "node");
    for (const uint32_t r : ph.rebalance) out += strfmt(" rebalance(a%u)", r);
    out += "\n";
    for (const OpSpec& op : ph.ops) {
      switch (op.kind) {
        case OpKind::kSet:
          out += strfmt("    a%u[rank+%llu] = %llu*rank+%llu", op.target,
                        static_cast<unsigned long long>(op.ia),
                        static_cast<unsigned long long>(op.va),
                        static_cast<unsigned long long>(op.vb));
          break;
        case OpKind::kAccum:
          out += strfmt("    a%u[(%llu*rank+%llu)%%n] %s= %llu*rank+%llu",
                        op.target, static_cast<unsigned long long>(op.ia),
                        static_cast<unsigned long long>(op.ib),
                        accum_name(op.accum_op),
                        static_cast<unsigned long long>(op.va),
                        static_cast<unsigned long long>(op.vb));
          break;
        case OpKind::kGather:
          out += strfmt(
              "    a%u[(%llu*rank+%llu)%%n] add= val+sum(gather(a%u, %u))",
              op.target, static_cast<unsigned long long>(op.ia),
              static_cast<unsigned long long>(op.ib), op.source,
              op.gather_count);
          break;
        case OpKind::kPrefetch:
          out += strfmt("    prefetch(a%u, %u idxs)", op.source,
                        op.gather_count);
          break;
        case OpKind::kBulk:
          out += strfmt("    a%u[rank*%u+%llu ..+%u] %s= run(%llu*rank+%llu)",
                        op.target, op.gather_count,
                        static_cast<unsigned long long>(op.ia),
                        op.gather_count, accum_name(op.accum_op),
                        static_cast<unsigned long long>(op.va),
                        static_cast<unsigned long long>(op.vb));
          break;
      }
      if (op.use_read && op.kind != OpKind::kPrefetch) {
        out += strfmt(" + a%u[(%llu*rank+%llu)%%n]", op.source,
                      static_cast<unsigned long long>(op.ra),
                      static_cast<unsigned long long>(op.rb));
      }
      out += "\n";
    }
  }
  return out;
}

ProgramSpec generate_program(uint64_t seed, const GenLimits& limits) {
  Rng rng(mix64(seed) ^ 0x57e55ULL);
  ProgramSpec spec;
  spec.seed = seed;

  // Fixed coverage: one global array per distribution, one node array.
  spec.arrays.push_back(
      {true, 1 + rng.next_below(limits.max_n), Distribution::kBlock});
  spec.arrays.push_back(
      {true, 1 + rng.next_below(limits.max_n), Distribution::kCyclic});
  spec.arrays.push_back(
      {true, 1 + rng.next_below(limits.max_n), Distribution::kAdaptive});
  spec.arrays.push_back({false, 1 + rng.next_below(limits.max_n / 2 + 1),
                         Distribution::kBlock});
  const int extra = static_cast<int>(
      rng.next_below(static_cast<uint64_t>(limits.max_extra_arrays) + 1));
  for (int e = 0; e < extra; ++e) {
    ArraySpec ar;
    ar.global = rng.next_below(3) != 0;
    ar.n = 1 + rng.next_below(limits.max_n);
    if (ar.global) {
      ar.dist = static_cast<Distribution>(rng.next_below(3));
    }
    spec.arrays.push_back(ar);
  }

  std::vector<uint32_t> global_ids, node_ids, adaptive_ids;
  for (uint32_t a = 0; a < spec.arrays.size(); ++a) {
    if (spec.arrays[a].global) {
      global_ids.push_back(a);
      if (spec.arrays[a].dist == Distribution::kAdaptive) {
        adaptive_ids.push_back(a);
      }
    } else {
      node_ids.push_back(a);
    }
  }

  // VP count: include the degenerate shapes (0, tiny) with real weight.
  const uint64_t roll = rng.next_below(10);
  if (roll == 0) {
    spec.k_total = 0;
  } else if (roll <= 2) {
    spec.k_total = 1 + rng.next_below(3);  // 1..3: below any core count
  } else {
    spec.k_total = 1 + rng.next_below(limits.max_k);
  }
  spec.k_split_mode = static_cast<uint8_t>(rng.next_below(3));

  const int n_phases =
      1 + static_cast<int>(
              rng.next_below(static_cast<uint64_t>(limits.max_phases)));
  for (int p = 0; p < n_phases; ++p) {
    PhaseSpec ph;
    ph.global = rng.next_below(4) != 0;  // 75% global
    if (!adaptive_ids.empty() && rng.next_below(4) == 0) {
      ph.rebalance.push_back(
          adaptive_ids[rng.next_below(adaptive_ids.size())]);
    }
    // One write category per (phase, target): see file header.
    std::vector<Category> cat(spec.arrays.size());
    std::vector<bool> cat_set(spec.arrays.size(), false);
    const auto& targets = ph.global ? global_ids : node_ids;
    const int n_ops =
        1 + static_cast<int>(
                rng.next_below(static_cast<uint64_t>(limits.max_ops)));
    for (int o = 0; o < n_ops; ++o) {
      OpSpec op;
      const uint64_t kr = rng.next_below(100);
      if (ph.global) {
        if (kr < 30) op.kind = OpKind::kSet;
        else if (kr < 60) op.kind = OpKind::kAccum;
        else if (kr < 75) op.kind = OpKind::kBulk;
        else if (kr < 88) op.kind = OpKind::kGather;
        else op.kind = OpKind::kPrefetch;
      } else {
        if (kr < 40) op.kind = OpKind::kSet;
        else if (kr < 75) op.kind = OpKind::kAccum;
        else op.kind = OpKind::kBulk;
      }
      // Node phases write node arrays; global phases write any array, but
      // node arrays stay eligible (their writes commit with the global
      // batch through the local log).
      const bool allow_node_target = !ph.global || rng.next_below(4) == 0;
      if (op.kind != OpKind::kPrefetch) {
        if (ph.global && !allow_node_target) {
          op.target = targets[rng.next_below(targets.size())];
        } else if (ph.global) {
          op.target = node_ids[rng.next_below(node_ids.size())];
        } else {
          op.target = targets[rng.next_below(targets.size())];
        }
      }
      // Read sources: global phases read global arrays (shape-independent
      // by induction); node phases read node arrays only. A node-array
      // target in a global phase may read either — but a GLOBAL target
      // must never read node-shared state, and the global-phase source
      // pool below is all-global, so that holds by construction.
      op.source = ph.global ? global_ids[rng.next_below(global_ids.size())]
                            : node_ids[rng.next_below(node_ids.size())];
      op.ra = 1 + rng.next_below(8);
      op.rb = rng.next_below(64);
      op.va = 1 + (rng.next_u64() & 0xffff);
      op.vb = rng.next_u64() & 0xffff;
      if (op.kind == OpKind::kPrefetch) {
        op.gather_count = 1 + static_cast<uint32_t>(rng.next_below(6));
        ph.ops.push_back(op);
        continue;
      }
      op.use_read = op.kind != OpKind::kGather && rng.next_below(100) < 35;
      if (op.kind == OpKind::kGather) {
        op.gather_count = 1 + static_cast<uint32_t>(rng.next_below(6));
      }
      // Roll the op's own shape, then coerce it into the target's category.
      const uint64_t want_ia_set = rng.next_below(4);
      op.ia = 1 + rng.next_below(8);
      op.ib = rng.next_below(64);
      // Full accumulate spectrum: add/min/max/mul plus the registered
      // kUser0 XOR slot — each commutes exactly with itself on uint64, so
      // overlapping index sets stay check-clean and bit-reproducible no
      // matter whether the runtime ships them as bundle entries or
      // owner-side kAccum fragments.
      op.accum_op = static_cast<uint8_t>(1 + rng.next_below(5));
      if (op.kind == OpKind::kBulk) {
        // Run length, plus a flavor: set runs stay on set_n; accumulate
        // runs go through accumulate_n, mixing kAccumBlock range records
        // with the scalar kAccumList traffic in the same phase.
        op.gather_count = 1 + static_cast<uint32_t>(rng.next_below(6));
        op.accum_op = rng.next_below(2) == 0
                          ? static_cast<uint8_t>(detail::WriteOp::kSet)
                          : static_cast<uint8_t>(1 + rng.next_below(5));
      }
      Category& c = cat[op.target];
      if (!cat_set[op.target]) {
        cat_set[op.target] = true;
        c.is_set = op.kind == OpKind::kSet;
        c.is_bulk = op.kind == OpKind::kBulk;
        c.accum_op = op.kind == OpKind::kGather
                         ? static_cast<uint8_t>(detail::WriteOp::kAdd)
                         : op.accum_op;
        c.ia = want_ia_set;
        c.bulk_len = op.gather_count == 0 ? 1 : op.gather_count;
      }
      if (c.is_bulk) {
        // Bulk targets are exclusive: every writer of the target uses the
        // identical run shape, so distinct VPs stay on disjoint runs (set
        // flavor) or commute (add flavor); same-VP repeats order by seq.
        op.kind = OpKind::kBulk;
        op.gather_count = c.bulk_len;
        op.ia = c.ia;
        op.accum_op = c.accum_op;
      } else if (c.is_set) {
        op.kind = OpKind::kSet;
        op.ia = c.ia;
      } else {
        if (op.kind == OpKind::kSet || op.kind == OpKind::kBulk) {
          op.kind = OpKind::kAccum;
        }
        if (op.kind == OpKind::kGather &&
            c.accum_op != static_cast<uint8_t>(detail::WriteOp::kAdd)) {
          op.kind = OpKind::kAccum;
        }
        op.accum_op = c.accum_op;
      }
      ph.ops.push_back(op);
    }
    spec.phases.push_back(std::move(ph));
  }

  // Canary phase: one VP setting the same element twice. Local writes are
  // never sender-combined, so even the single-node reference config
  // commits both entries — any runtime that stops applying them in
  // (vp_rank, seq) order flips the final value.
  PhaseSpec canary;
  canary.global = true;
  OpSpec c1;
  c1.kind = OpKind::kSet;
  c1.target = 0;
  c1.ia = 0;
  c1.va = 3;
  c1.vb = 7;
  OpSpec c2 = c1;
  c2.va = 5;
  c2.vb = 11;
  canary.ops = {c1, c2};
  spec.phases.push_back(std::move(canary));
  return spec;
}

}  // namespace ppm::stress
