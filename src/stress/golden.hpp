// Straight-line sequential interpreter of a ProgramSpec — the harness's
// ground truth. No runtime, no simulator: a plain array-of-uint64 model
// evaluated in the exact order phase semantics promise (reads see the
// phase-start snapshot; writes apply in ascending (global VP rank, program
// order), i.e. nodes ascending x local ranks ascending x ops in order).
#pragma once

#include <cstdint>
#include <vector>

#include "stress/program.hpp"

namespace ppm::stress {

struct GoldenState {
  // global_arrays[a]: logical contents (empty vector for node arrays);
  // node_arrays[a][node]: per-node instance (empty for global arrays).
  std::vector<std::vector<uint64_t>> global_arrays;
  std::vector<std::vector<std::vector<uint64_t>>> node_arrays;

  bool operator==(const GoldenState&) const = default;
};

/// Run the program under an `nodes`-node split. Global-array results are
/// independent of `nodes` by construction (the generator never lets global
/// writes read node-shared state); node-array results are per-shape.
GoldenState run_golden(const ProgramSpec& spec, int nodes);

}  // namespace ppm::stress
