// ppm::stress — random PPM programs for the differential fuzz harness.
//
// A ProgramSpec is a straight-line PPM program: a fixed VP count, a few
// shared arrays (always covering all three distributions), and a sequence
// of phases whose per-VP ops are pure functions of the VP's global rank and
// of phase-start shared values. That purity is what makes the program
// differentially checkable: the committed state after every phase is fully
// determined by (rank, phase, reads), so every runtime configuration —
// schedules, node counts, overlap/combining/prefetch knobs, fault-injected
// message timing — must commit bit-identical global state, and all of them
// must match the straight-line golden interpreter (golden.hpp).
//
// Generated programs are also ppm::check-clean by construction, so the
// differential runner can keep the sanitizer in fail-fast mode and treat
// any throw as a red verdict:
//   * per (phase, target array) there is exactly one write category —
//     either set() with one shared index expression rank + ia (distinct
//     VPs hit distinct elements), or a single accumulate kind (kAdd/kMin/
//     kMax/kMul and the registered kUser0 XOR all commute exactly with
//     themselves on uint64, which also keeps owner-side kAccum delivery
//     bit-identical to the fetch-based bundle path);
//   * values written to GLOBAL arrays never read node-shared state (whose
//     contents legitimately depend on the node count);
//   * node phases touch node-shared arrays only.
// Same-VP double-sets are allowed (phase semantics order them by the VP's
// program order), and every generated program ends with a canary phase
// doing exactly that — the cheapest program shape whose result flips if an
// implementation stops applying commits in (vp_rank, seq) order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace ppm::stress {

enum class OpKind : uint8_t {
  kSet,       // target[rank + ia] = value            (skipped if index >= n)
  kAccum,     // target[(ia*rank + ib) % n] op= value  (op = accum_op)
  kGather,    // value += sum(gather(source, idxs)); then like kAccum w/ kAdd
  kPrefetch,  // prefetch(source, idxs); no write
  // Bulk run write through set_n/accumulate_n: target[rank*len + ia + j]
  // for j < len (len = gather_count; clamped at n, skipped when the start
  // is past the end). accum_op 0 writes set-flavor; any accumulate op
  // makes an accumulate-flavor run. Distinct ranks cover disjoint runs,
  // so a bulk target stays check-clean; the generator makes bulk targets
  // exclusive (every writer of that target in the phase uses the
  // identical run shape).
  kBulk,
};

struct OpSpec {
  OpKind kind = OpKind::kSet;
  // detail::WriteOp for kAccum/kBulk: 1 add, 2 min, 3 max, 4 mul, 5 the
  // registered kUser0 XOR slot.
  uint8_t accum_op = 1;
  uint32_t target = 0;     // index into ProgramSpec::arrays
  uint32_t source = 0;     // read source (use_read / kGather / kPrefetch)
  bool use_read = false;   // value += source[(ra*rank + rb) % n_source]
  uint32_t gather_count = 0;  // indices per kGather / kPrefetch
  uint64_t ia = 0, ib = 0;    // write-index parameters
  uint64_t ra = 1, rb = 0;    // read/gather-index parameters
  uint64_t va = 1, vb = 0;    // value = va*rank + vb (wrapping uint64)
};

struct ArraySpec {
  bool global = true;
  uint64_t n = 1;
  Distribution dist = Distribution::kBlock;
};

struct PhaseSpec {
  bool global = true;
  std::vector<OpSpec> ops;
  // Arrays to env.rebalance() before this phase (kAdaptive globals only).
  std::vector<uint32_t> rebalance;
};

struct ProgramSpec {
  uint64_t seed = 0;
  uint64_t k_total = 0;   // VPs across the whole group (0 is legal)
  // How k_total splits over nodes: 0 even, 1 all on node 0, 2 all on the
  // last node (exercises K < cores and zero-VP nodes).
  uint8_t k_split_mode = 0;
  std::vector<ArraySpec> arrays;
  std::vector<PhaseSpec> phases;

  /// VPs this node contributes under an `nodes`-node machine.
  uint64_t k_local(int node, int nodes) const;
  /// Global rank of this node's VP 0 — matches the runtime's
  /// coordinate_group (sum of k_local over lower node ids).
  uint64_t k_offset(int node, int nodes) const;

  /// Human-readable listing for failure reports.
  std::string dump() const;
};

/// Size caps for the generator. The defaults are smoke-sized: breadth in a
/// soak comes from running more seeds, not bigger programs, which keeps
/// every seed cheap to replay and shrink.
struct GenLimits {
  uint64_t max_k = 48;
  uint64_t max_n = 96;
  int max_phases = 5;
  int max_ops = 5;
  int max_extra_arrays = 2;  // on top of the 4 fixed ones
};

/// Deterministic: the same (seed, limits) always yields the same program.
/// arrays[0..2] are global kBlock/kCyclic/kAdaptive, arrays[3] is
/// node-shared; the last phase is the double-set canary (see file header).
ProgramSpec generate_program(uint64_t seed, const GenLimits& limits = {});

// ---- Shared op semantics -------------------------------------------------
//
// One definition of every index/value expression, used by both the PPM
// executor (runner.cpp) and the golden interpreter (golden.cpp), so the
// two sides cannot drift apart.

inline uint64_t op_base_value(const OpSpec& op, uint64_t rank) {
  return op.va * rank + op.vb;  // uint64 wraps; well-defined
}
inline uint64_t op_set_index(const OpSpec& op, uint64_t rank) {
  return rank + op.ia;  // caller skips the write when >= n
}
inline uint64_t op_accum_index(const OpSpec& op, uint64_t rank, uint64_t n) {
  return (op.ia * rank + op.ib) % n;
}
inline uint64_t op_read_index(const OpSpec& op, uint64_t rank, uint64_t n) {
  return (op.ra * rank + op.rb) % n;
}
inline uint64_t op_gather_index(const OpSpec& op, uint64_t rank, uint64_t j,
                                uint64_t n) {
  return (op.ra * rank + op.rb + j * 7919) % n;
}
inline uint64_t op_bulk_value(uint64_t base, uint64_t j) {
  return base + j * 0x9e3779b97f4a7c15ULL;  // uint64 wraps; well-defined
}

/// Execute one op for one VP rank against a context providing
///   uint64_t read(uint32_t array, uint64_t index);
///   uint64_t gather_sum(uint32_t array, const std::vector<uint64_t>&);
///   void write(uint32_t array, uint64_t index, detail::WriteOp, uint64_t);
///   void write_run(uint32_t array, uint64_t first, detail::WriteOp,
///                  const std::vector<uint64_t>& values);
///   void prefetch(uint32_t array, const std::vector<uint64_t>&);
template <typename Ctx>
void exec_op(const ProgramSpec& spec, const OpSpec& op, uint64_t rank,
             Ctx&& ctx) {
  if (op.kind == OpKind::kPrefetch) {
    const uint64_t n = spec.arrays[op.source].n;
    std::vector<uint64_t> idx(op.gather_count);
    for (uint32_t j = 0; j < op.gather_count; ++j) {
      idx[j] = op_gather_index(op, rank, j, n);
    }
    ctx.prefetch(op.source, idx);
    return;
  }
  uint64_t value = op_base_value(op, rank);
  if (op.use_read) {
    const uint64_t n = spec.arrays[op.source].n;
    value += ctx.read(op.source, op_read_index(op, rank, n));
  }
  if (op.kind == OpKind::kGather) {
    const uint64_t n = spec.arrays[op.source].n;
    std::vector<uint64_t> idx(op.gather_count);
    for (uint32_t j = 0; j < op.gather_count; ++j) {
      idx[j] = op_gather_index(op, rank, j, n);
    }
    value += ctx.gather_sum(op.source, idx);
  }
  if (op.kind == OpKind::kBulk) {
    const ArraySpec& bt = spec.arrays[op.target];
    const uint64_t len = op.gather_count == 0 ? 1 : op.gather_count;
    const uint64_t first = rank * len + op.ia;
    if (first >= bt.n) return;
    const uint64_t cnt = std::min<uint64_t>(len, bt.n - first);
    std::vector<uint64_t> vals(cnt);
    for (uint64_t j = 0; j < cnt; ++j) vals[j] = op_bulk_value(value, j);
    ctx.write_run(op.target, first, static_cast<detail::WriteOp>(op.accum_op),
                  vals);
    return;
  }
  const ArraySpec& tgt = spec.arrays[op.target];
  if (op.kind == OpKind::kSet) {
    const uint64_t i = op_set_index(op, rank);
    if (i < tgt.n) ctx.write(op.target, i, detail::WriteOp::kSet, value);
    return;
  }
  const auto wop = op.kind == OpKind::kGather
                       ? detail::WriteOp::kAdd
                       : static_cast<detail::WriteOp>(op.accum_op);
  ctx.write(op.target, op_accum_index(op, rank, tgt.n), wop, value);
}

}  // namespace ppm::stress
