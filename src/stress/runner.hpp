// Config-matrix differential runner: execute one generated program under
// many sampled runtime configurations and check that every one of them
// commits bit-identical state — against each other (global arrays) and
// against the golden interpreter (everything, per machine shape) — with
// ppm::check in fail-fast mode wherever it is enabled. Any ppm::Error
// escaping a run (validator, wire protocol, runtime assertion) is a red
// verdict too, attributed to the config that threw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ppm.hpp"
#include "stress/golden.hpp"
#include "stress/program.hpp"

namespace ppm::stress {

struct StressConfig {
  cluster::MachineConfig machine;
  RuntimeOptions runtime;
  std::string name;  // human-readable knob summary for reports
};

/// Deterministic config matrix for one program seed. configs[0] is always
/// the single-node/single-core static reference (its global snapshot is
/// the cross-config comparison anchor); the rest sample node/core counts,
/// both schedules, the overlap/combining/prefetch/adaptive/owner-side-
/// accumulate knobs, and —
/// on some multi-node configs — fabric fault injection. Config i depends
/// only on draws before it, so any count >= i+1 reproduces config i.
std::vector<StressConfig> sample_configs(uint64_t seed, int count);

/// The committed state a config run ends with, in golden shape: logical
/// global-array contents plus per-node node-array instances. Collected on
/// node 0 via NodeRuntime::pack_owned_elems + allgather, so it is layout-
/// free (identical no matter where blocks migrated to).
using Snapshot = GoldenState;

/// Optional observability side-channel of run_under_config. Set `trace`
/// before the call to run under ppm::trace; afterwards `result` holds the
/// run's statistics (counter rollup, trace summary) and `trace_json` the
/// Chrome trace-event export. On a throwing run the trace captured up to
/// the failure point is still exported — that is the whole point of
/// --trace-on-failure repros.
struct RunArtifacts {
  bool trace = false;        // in: record a ppm::trace for this run
  RunResult result;          // out: statistics (invalid if the run threw)
  std::string trace_json;    // out: Chrome JSON (only when trace was set)
};

/// Execute the program under one config. Throws ppm::Error on any runtime
/// or validator failure.
Snapshot run_under_config(const ProgramSpec& spec, const StressConfig& cfg,
                          RunArtifacts* artifacts = nullptr);

/// Counters accumulated across every config run of a differential check,
/// reported by ppm_stress --json.
struct RunTotals {
  uint64_t runs = 0;
  uint64_t network_messages = 0;
  uint64_t network_bytes = 0;
  uint64_t blocks_fetched = 0;
  uint64_t reads_from_cache = 0;
  uint64_t fetch_stall_ns = 0;
  uint64_t blocks_migrated = 0;

  void add(const RunResult& r);
};

struct Verdict {
  bool ok = true;
  size_t config_index = 0;
  std::string config_name;
  std::string detail;  // first mismatch, or the escaped error's message
};

Verdict run_differential(const ProgramSpec& spec,
                         const std::vector<StressConfig>& configs,
                         RunTotals* totals = nullptr);

/// Greedy deterministic shrinker: starting from a failing (program,
/// config) pair, repeatedly drop phases and ops, clear rebalance hints,
/// and lower K / the split mode / the failing config's node count, keeping
/// each change only if the reduced pair still fails (checked against the
/// reference config plus the failing one). Bounded by a fixed run budget.
struct ShrinkResult {
  ProgramSpec spec;
  std::vector<StressConfig> configs;  // reference + (possibly reduced) failing
  int runs = 0;                       // differential runs spent shrinking
};

ShrinkResult shrink(const ProgramSpec& spec,
                    const std::vector<StressConfig>& configs,
                    size_t failing_config);

}  // namespace ppm::stress
