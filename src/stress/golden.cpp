#include "stress/golden.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ppm::stress {

namespace {

// Reference semantics for every write op the generator can emit. A new
// wire op MUST be taught here before the generator samples it (see
// TESTING.md "Registering a new wire op with the golden interpreter"):
// the runtime side routes through ArrayRecord::apply_op, and the two
// definitions drifting apart is exactly the bug class the differential
// harness exists to catch. kUser0 is the harness's one registered user
// slot: XOR, which commutes exactly on uint64.
void apply(uint64_t& elem, detail::WriteOp op, uint64_t v) {
  switch (op) {
    case detail::WriteOp::kSet: elem = v; break;
    case detail::WriteOp::kAdd: elem += v; break;
    case detail::WriteOp::kMin: elem = std::min(elem, v); break;
    case detail::WriteOp::kMax: elem = std::max(elem, v); break;
    case detail::WriteOp::kMul: elem *= v; break;
    case detail::WriteOp::kUser0: elem ^= v; break;
    case detail::WriteOp::kUser1:
    case detail::WriteOp::kUser2:
      PPM_CHECK(false, "golden interpreter: op %u has no reference "
                "semantics registered",
                static_cast<unsigned>(op));
  }
}

// exec_op context: reads from the phase-start snapshot, writes live.
struct GoldenCtx {
  const ProgramSpec* spec;
  const GoldenState* snap;
  GoldenState* live;
  int node;

  uint64_t read(uint32_t a, uint64_t i) const {
    return (*spec).arrays[a].global
               ? snap->global_arrays[a][i]
               : snap->node_arrays[a][static_cast<size_t>(node)][i];
  }
  uint64_t gather_sum(uint32_t a, const std::vector<uint64_t>& idx) const {
    uint64_t s = 0;
    for (const uint64_t i : idx) s += read(a, i);
    return s;
  }
  void write(uint32_t a, uint64_t i, detail::WriteOp op, uint64_t v) const {
    auto& arr = (*spec).arrays[a].global
                    ? live->global_arrays[a]
                    : live->node_arrays[a][static_cast<size_t>(node)];
    apply(arr[i], op, v);
  }
  void write_run(uint32_t a, uint64_t first, detail::WriteOp op,
                 const std::vector<uint64_t>& vals) const {
    for (size_t j = 0; j < vals.size(); ++j) {
      write(a, first + j, op, vals[j]);
    }
  }
  void prefetch(uint32_t, const std::vector<uint64_t>&) const {}
};

}  // namespace

GoldenState run_golden(const ProgramSpec& spec, int nodes) {
  PPM_CHECK(nodes > 0, "run_golden needs at least one node");
  GoldenState g;
  g.global_arrays.resize(spec.arrays.size());
  g.node_arrays.resize(spec.arrays.size());
  for (size_t a = 0; a < spec.arrays.size(); ++a) {
    if (spec.arrays[a].global) {
      g.global_arrays[a].assign(spec.arrays[a].n, 0);
    } else {
      g.node_arrays[a].assign(static_cast<size_t>(nodes),
                              std::vector<uint64_t>(spec.arrays[a].n, 0));
    }
  }
  for (const PhaseSpec& ph : spec.phases) {
    const GoldenState snap = g;  // phase-start snapshot for every read
    for (int node = 0; node < nodes; ++node) {
      const uint64_t k_loc = spec.k_local(node, nodes);
      const uint64_t off = spec.k_offset(node, nodes);
      for (uint64_t r = 0; r < k_loc; ++r) {
        GoldenCtx ctx{&spec, &snap, &g, node};
        for (const OpSpec& op : ph.ops) {
          exec_op(spec, op, off + r, ctx);
        }
      }
    }
  }
  return g;
}

}  // namespace ppm::stress
