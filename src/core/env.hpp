// ppm::Env — what a PPM node program sees — and ppm::VpGroup — the
// PPM_do(K) construct with its global/node phases.
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "core/runtime.hpp"
#include "core/shared_array.hpp"

namespace ppm {

namespace detail {

/// Thunk behind Env::reduce: fold this node's owned elements of
/// pr.array_a under pr.op into the [u8 has_value][T] partial blob.
/// pack_owned_elems delivers them in ascending global-index order under
/// every distribution, so the fold order is layout-independent.
template <typename T>
void reduce_partial_thunk(NodeRuntime& rt,
                          const NodeRuntime::PendingReduce& pr, Bytes* out) {
  out->assign(1 + sizeof(T), std::byte{0});
  const Bytes packed = rt.pack_owned_elems(pr.array_a);
  const size_t n = packed.size() / sizeof(T);
  if (n == 0) return;  // this node owns nothing: has_value stays 0
  const ArrayRecord& rec = rt.array(pr.array_a);
  T acc;
  std::memcpy(&acc, packed.data(), sizeof(T));
  for (size_t i = 1; i < n; ++i) {
    rec.apply_op(reinterpret_cast<std::byte*>(&acc),
                 packed.data() + i * sizeof(T),
                 static_cast<WriteOp>(pr.op));
  }
  (*out)[0] = std::byte{1};
  std::memcpy(out->data() + 1, &acc, sizeof(T));
}

/// Thunk behind Env::reduce_dot: ascending-index fold of sum(a[i]*b[i])
/// over this node's owned elements — exactly the per-node order
/// algorithms::dot uses on a block layout.
template <typename T>
void reduce_dot_partial_thunk(NodeRuntime& rt,
                              const NodeRuntime::PendingReduce& pr,
                              Bytes* out) {
  out->assign(1 + sizeof(T), std::byte{0});
  const Bytes pa = rt.pack_owned_elems(pr.array_a);
  const Bytes pb = rt.pack_owned_elems(pr.array_b);
  PPM_CHECK(pa.size() == pb.size(),
            "reduce_dot needs identically sized and distributed arrays");
  const size_t n = pa.size() / sizeof(T);
  if (n == 0) return;
  T acc{};
  for (size_t i = 0; i < n; ++i) {
    T x, y;
    std::memcpy(&x, pa.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&y, pb.data() + i * sizeof(T), sizeof(T));
    acc = (i == 0) ? x * y : acc + x * y;
  }
  (*out)[0] = std::byte{1};
  std::memcpy(out->data() + 1, &acc, sizeof(T));
}

/// Fold `other` into `acc` (both [u8 has_value][elem] blobs): empty
/// partials are skipped, the first contributing node seeds the value, and
/// later ones fold through the array's op table — which also dispatches
/// user slots, so one combine serves every ReduceOp. The dot form
/// registers op=kAdd, making its combine the plain sum.
inline void reduce_combine_thunk(NodeRuntime& rt,
                                 const NodeRuntime::PendingReduce& pr,
                                 Bytes* acc, const Bytes& other) {
  PPM_CHECK(other.size() == acc->size(), "reduce partial blob mismatch");
  if (other[0] == std::byte{0}) return;
  if ((*acc)[0] == std::byte{0}) {
    *acc = other;
    return;
  }
  rt.array(pr.array_a).apply_op(acc->data() + 1, other.data() + 1,
                                static_cast<WriteOp>(pr.op));
}

}  // namespace detail

/// Result handle of Env::reduce()/reduce_dot(). The scalar materializes
/// when the next global phase commits (the per-node partials ride the
/// commit barrier's dissemination tokens); value() before that commit is
/// an error.
template <typename T>
class ReduceHandle {
 public:
  ReduceHandle() = default;

  /// The combined scalar — identical on every node. T{} when no node
  /// owned any element of the reduced array.
  T value() const {
    const auto& pr = rt_->reduce_result(h_);
    PPM_CHECK(pr.result.size() == 1 + sizeof(T),
              "reduce result blob size mismatch");
    T out{};
    std::memcpy(&out, pr.result.data() + 1, sizeof(T));
    return out;
  }

 private:
  friend class Env;
  ReduceHandle(NodeRuntime* rt, size_t h) : rt_(rt), h_(h) {}

  NodeRuntime* rt_ = nullptr;
  size_t h_ = 0;
};

/// A group of K virtual processors started on this node by PPM_do(K).
///
/// Phases are the paper's PPM_global_phase / PPM_node_phase constructs: the
/// body runs once per VP (folded into loops over the node's cores) with an
/// implicit barrier and write commit at the end. Multiple phases on the
/// same group correspond to a PPM function containing several phase
/// constructs; per-VP state that must survive across phases lives in arrays
/// indexed by vp.node_rank() (the compiler's scalar-expansion
/// transformation, done by hand in the embedded DSL).
class VpGroup {
 public:
  /// VPs started on this node.
  uint64_t size() const { return k_local_; }
  /// VPs across all nodes of the group (k_local summed; collective groups
  /// only).
  uint64_t global_size() const { return k_total_; }
  /// Global rank of this node's VP 0.
  uint64_t global_offset() const { return k_offset_; }

  /// Cluster-wide phase: synchronizes and commits across all nodes.
  void global_phase(const std::function<void(Vp&)>& body) {
    PPM_CHECK(collective_,
              "global phase on an async (node-local) VP group");
    rt_->run_phase(/*global=*/true, k_local_, k_offset_, body);
  }

  /// Node-level phase: synchronizes only this node's cores; commits only
  /// node-shared writes. Global shared writes are rejected inside it.
  void node_phase(const std::function<void(Vp&)>& body) {
    rt_->run_phase(/*global=*/false, k_local_, k_offset_, body);
  }

 private:
  friend class Env;
  VpGroup(NodeRuntime* rt, uint64_t k_local, uint64_t k_offset,
          uint64_t k_total, bool collective)
      : rt_(rt), k_local_(k_local), k_offset_(k_offset), k_total_(k_total),
        collective_(collective) {}

  NodeRuntime* rt_;
  uint64_t k_local_;
  uint64_t k_offset_;
  uint64_t k_total_;
  bool collective_;
};

/// The per-node PPM programming environment handed to the node program.
class Env {
 public:
  explicit Env(NodeRuntime& rt) : rt_(&rt) {}

  // ---- System variables (§3.1 item 5) ----

  int node_id() const { return rt_->node_id(); }
  int node_count() const { return rt_->node_count(); }
  int cores_per_node() const { return rt_->cores_per_node(); }

  // ---- Shared variable declaration / dynamic allocation ----

  /// Allocate a globally shared array of n elements (zero-initialized).
  /// SPMD-collective: every node must allocate in the same order.
  /// Distribution::kBlock keeps contiguous chunks per node; kCyclic deals
  /// elements round-robin (spreads irregular hot spots).
  template <typename T>
  GlobalShared<T> global_array(uint64_t n,
                               Distribution dist = Distribution::kBlock) {
    const uint32_t id =
        rt_->create_array(true, n, detail::elem_ops<T>(), dist);
    return GlobalShared<T>(rt_, id, n);
  }

  /// Allocate a node-shared array of n elements (one instance per node).
  template <typename T>
  NodeShared<T> node_array(uint64_t n) {
    const uint32_t id = rt_->create_array(false, n, detail::elem_ops<T>());
    return NodeShared<T>(rt_, id, n);
  }

  // ---- PPM_do ----

  /// Start K virtual processors on this node, coordinated with all other
  /// nodes (K may differ per node; global VP ranks are consistent).
  VpGroup ppm_do(uint64_t k) {
    const auto [offset, total] = rt_->coordinate_group(k);
    return VpGroup(rt_, k, offset, total, /*collective=*/true);
  }

  /// Start K virtual processors on this node only, with no cross-node
  /// coordination (the paper's asynchronous mode). Only node phases are
  /// allowed on the returned group.
  VpGroup ppm_do_async(uint64_t k) {
    return VpGroup(rt_, k, 0, k, /*collective=*/false);
  }

  // ---- Utility functions (§3.1 item 6) ----

  void barrier() { rt_->barrier_global(); }

  /// Name the next phase started on this node (`env.phase_label("spmv")`).
  /// The label lands in PhaseProfile::label, ppm::trace events, and the
  /// critical-path summary; consumed by the next global_phase/node_phase.
  void phase_label(std::string_view label) { rt_->set_phase_label(label); }

  /// Lookahead prefetch of a global array's elements (see
  /// GlobalShared::prefetch); usable from VP bodies and between phases.
  template <typename T>
  void prefetch(const GlobalShared<T>& a,
                std::span<const uint64_t> indices) {
    a.prefetch(indices);
  }

  /// Locality hint (see GlobalShared::rebalance): plan block migrations
  /// for an owner-mapped array at the next global commit. Collective —
  /// call between phases, identically on every node.
  template <typename T>
  void rebalance(const GlobalShared<T>& a) {
    a.rebalance();
  }

  /// Reduction over one value per node; every node gets the result.
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T allreduce(T value, Op op) {
    ByteWriter w;
    w.put(value);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    T acc{};
    bool first = true;
    for (const Bytes& b : all) {
      ByteReader r(b);
      const T v = r.get<T>();
      acc = first ? v : op(acc, v);
      first = false;
    }
    return acc;
  }

  /// One value per node, gathered everywhere, indexed by node.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allgather(T value) {
    ByteWriter w;
    w.put(value);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    std::vector<T> out;
    out.reserve(all.size());
    for (const Bytes& b : all) {
      ByteReader r(b);
      out.push_back(r.get<T>());
    }
    return out;
  }

  /// Broadcast a vector from `root` to all nodes.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void broadcast(std::vector<T>& data, int root) {
    ByteWriter w;
    if (node_id() == root) w.put_vector(data);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    ByteReader r(all[static_cast<size_t>(root)]);
    data = r.get_vector<T>();
  }

  /// Inclusive prefix combine over nodes (node 0 gets its own value).
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T scan_inclusive(T value, Op op) {
    ByteWriter w;
    w.put(value);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    T acc{};
    for (int n = 0; n <= node_id(); ++n) {
      ByteReader r(all[static_cast<size_t>(n)]);
      const T v = r.get<T>();
      acc = (n == 0) ? v : op(acc, v);
    }
    return acc;
  }

  // ---- Owner-side accumulate / remote reduction ----

  /// Register the user accumulate function `fn` into one of an array's
  /// three user slots (usable as ReduceOp::kUser0 + slot). SPMD-collective
  /// and outside phases; every node must register an equivalent function
  /// in the same slot (the sanitizer's lockstep fingerprint covers the
  /// registration). Declare commutative=false when fn does not commute —
  /// ppm::check then reports any element the op hits more than once in a
  /// single phase, because owner-side application order (by source node)
  /// is not the VP rank order.
  template <typename T>
  void register_accum_op(const GlobalShared<T>& a, int slot,
                         void (*fn)(T&, const T&), bool commutative = true) {
    register_accum_op_id<T>(a.id(), slot, fn, commutative);
  }

  /// NodeShared form: same contract; the slot joins the same lockstep
  /// fingerprint, so registration must still happen identically on every
  /// node.
  template <typename T>
  void register_accum_op(const NodeShared<T>& a, int slot,
                         void (*fn)(T&, const T&), bool commutative = true) {
    register_accum_op_id<T>(a.id(), slot, fn, commutative);
  }

  /// Register a reduction of all elements of `a` under `op`, resolved at
  /// the NEXT global-phase commit: after the commit applies the phase's
  /// writes, each node folds its owned elements in ascending global-index
  /// order; the partials ride the commit barrier (zero extra messages)
  /// and combine in ascending node order, so every node reads the
  /// identical scalar from the handle. SPMD-collective, outside phases.
  template <typename T>
  ReduceHandle<T> reduce(const GlobalShared<T>& a, ReduceOp op) {
    NodeRuntime::PendingReduce pr;
    pr.array_a = a.id();
    pr.op = static_cast<uint8_t>(op);
    pr.partial = &detail::reduce_partial_thunk<T>;
    pr.combine = &detail::reduce_combine_thunk;
    return ReduceHandle<T>(rt_, rt_->register_reduce(std::move(pr)));
  }

  /// Dot-product form of reduce(): sum over i of a[i]*b[i]. Both arrays
  /// must share size and distribution (their owned index sets must
  /// coincide). On block layouts the result is bit-identical to a local
  /// ascending-index fold plus an ascending-node allreduce — the exact
  /// order algorithms::dot produces — at zero extra messages.
  template <typename T>
  ReduceHandle<T> reduce_dot(const GlobalShared<T>& a,
                             const GlobalShared<T>& b) {
    // The partial pairs the two arrays' owner-packed spans positionally,
    // so their owned index sets must coincide — catch a layout mismatch
    // at registration, not as silently mis-paired products.
    const detail::ArrayRecord& ra = rt_->array(a.id());
    const detail::ArrayRecord& rb = rt_->array(b.id());
    PPM_CHECK(ra.n == rb.n && ra.dist == rb.dist &&
                  ra.mig_owner == rb.mig_owner,
              "reduce_dot needs identically sized and distributed arrays "
              "(%u vs %u)", a.id(), b.id());
    NodeRuntime::PendingReduce pr;
    pr.array_a = a.id();
    pr.array_b = b.id();
    pr.op = static_cast<uint8_t>(ReduceOp::kAdd);
    pr.partial = &detail::reduce_dot_partial_thunk<T>;
    pr.combine = &detail::reduce_combine_thunk;
    return ReduceHandle<T>(rt_, rt_->register_reduce(std::move(pr)));
  }

  // ---- Phase-semantics sanitizer (ppm::check, docs/validator.md) ----

  /// True when RuntimeOptions::validate_phases enabled the sanitizer.
  bool validation_enabled() const { return rt_->validator() != nullptr; }

  /// This node's sanitizer findings so far (empty report when validation
  /// is off). The cluster-wide merged report is RunResult::check_report;
  /// this per-node view lets a program or test inspect findings mid-run.
  check::Report node_check_report() const {
    const check::PhaseValidator* v = rt_->validator();
    return v != nullptr ? v->report() : check::Report{};
  }

  /// Access to the underlying runtime (tests, benches, advanced use).
  NodeRuntime& runtime() { return *rt_; }

 private:
  template <typename T>
  void register_accum_op_id(uint32_t id, int slot, void (*fn)(T&, const T&),
                            bool commutative) {
    detail::UserAccumOp op;
    op.apply = [](std::byte* elem, const std::byte* value, const void* f) {
      const auto fp =
          reinterpret_cast<void (*)(T&, const T&)>(const_cast<void*>(f));
      T cur;
      std::memcpy(&cur, elem, sizeof(T));
      T val;
      std::memcpy(&val, value, sizeof(T));
      fp(cur, val);
      std::memcpy(elem, &cur, sizeof(T));
    };
    op.fn = reinterpret_cast<const void*>(fn);
    op.commutative = commutative;
    rt_->register_user_op(id, slot, op);
  }

  NodeRuntime* rt_;
};

}  // namespace ppm
