// ppm::Env — what a PPM node program sees — and ppm::VpGroup — the
// PPM_do(K) construct with its global/node phases.
#pragma once

#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "core/runtime.hpp"
#include "core/shared_array.hpp"

namespace ppm {

/// A group of K virtual processors started on this node by PPM_do(K).
///
/// Phases are the paper's PPM_global_phase / PPM_node_phase constructs: the
/// body runs once per VP (folded into loops over the node's cores) with an
/// implicit barrier and write commit at the end. Multiple phases on the
/// same group correspond to a PPM function containing several phase
/// constructs; per-VP state that must survive across phases lives in arrays
/// indexed by vp.node_rank() (the compiler's scalar-expansion
/// transformation, done by hand in the embedded DSL).
class VpGroup {
 public:
  /// VPs started on this node.
  uint64_t size() const { return k_local_; }
  /// VPs across all nodes of the group (k_local summed; collective groups
  /// only).
  uint64_t global_size() const { return k_total_; }
  /// Global rank of this node's VP 0.
  uint64_t global_offset() const { return k_offset_; }

  /// Cluster-wide phase: synchronizes and commits across all nodes.
  void global_phase(const std::function<void(Vp&)>& body) {
    PPM_CHECK(collective_,
              "global phase on an async (node-local) VP group");
    rt_->run_phase(/*global=*/true, k_local_, k_offset_, body);
  }

  /// Node-level phase: synchronizes only this node's cores; commits only
  /// node-shared writes. Global shared writes are rejected inside it.
  void node_phase(const std::function<void(Vp&)>& body) {
    rt_->run_phase(/*global=*/false, k_local_, k_offset_, body);
  }

 private:
  friend class Env;
  VpGroup(NodeRuntime* rt, uint64_t k_local, uint64_t k_offset,
          uint64_t k_total, bool collective)
      : rt_(rt), k_local_(k_local), k_offset_(k_offset), k_total_(k_total),
        collective_(collective) {}

  NodeRuntime* rt_;
  uint64_t k_local_;
  uint64_t k_offset_;
  uint64_t k_total_;
  bool collective_;
};

/// The per-node PPM programming environment handed to the node program.
class Env {
 public:
  explicit Env(NodeRuntime& rt) : rt_(&rt) {}

  // ---- System variables (§3.1 item 5) ----

  int node_id() const { return rt_->node_id(); }
  int node_count() const { return rt_->node_count(); }
  int cores_per_node() const { return rt_->cores_per_node(); }

  // ---- Shared variable declaration / dynamic allocation ----

  /// Allocate a globally shared array of n elements (zero-initialized).
  /// SPMD-collective: every node must allocate in the same order.
  /// Distribution::kBlock keeps contiguous chunks per node; kCyclic deals
  /// elements round-robin (spreads irregular hot spots).
  template <typename T>
  GlobalShared<T> global_array(uint64_t n,
                               Distribution dist = Distribution::kBlock) {
    const uint32_t id =
        rt_->create_array(true, n, detail::elem_ops<T>(), dist);
    return GlobalShared<T>(rt_, id, n);
  }

  /// Allocate a node-shared array of n elements (one instance per node).
  template <typename T>
  NodeShared<T> node_array(uint64_t n) {
    const uint32_t id = rt_->create_array(false, n, detail::elem_ops<T>());
    return NodeShared<T>(rt_, id, n);
  }

  // ---- PPM_do ----

  /// Start K virtual processors on this node, coordinated with all other
  /// nodes (K may differ per node; global VP ranks are consistent).
  VpGroup ppm_do(uint64_t k) {
    const auto [offset, total] = rt_->coordinate_group(k);
    return VpGroup(rt_, k, offset, total, /*collective=*/true);
  }

  /// Start K virtual processors on this node only, with no cross-node
  /// coordination (the paper's asynchronous mode). Only node phases are
  /// allowed on the returned group.
  VpGroup ppm_do_async(uint64_t k) {
    return VpGroup(rt_, k, 0, k, /*collective=*/false);
  }

  // ---- Utility functions (§3.1 item 6) ----

  void barrier() { rt_->barrier_global(); }

  /// Name the next phase started on this node (`env.phase_label("spmv")`).
  /// The label lands in PhaseProfile::label, ppm::trace events, and the
  /// critical-path summary; consumed by the next global_phase/node_phase.
  void phase_label(std::string_view label) { rt_->set_phase_label(label); }

  /// Lookahead prefetch of a global array's elements (see
  /// GlobalShared::prefetch); usable from VP bodies and between phases.
  template <typename T>
  void prefetch(const GlobalShared<T>& a,
                std::span<const uint64_t> indices) {
    a.prefetch(indices);
  }

  /// Locality hint (see GlobalShared::rebalance): plan block migrations
  /// for an owner-mapped array at the next global commit. Collective —
  /// call between phases, identically on every node.
  template <typename T>
  void rebalance(const GlobalShared<T>& a) {
    a.rebalance();
  }

  /// Reduction over one value per node; every node gets the result.
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T allreduce(T value, Op op) {
    ByteWriter w;
    w.put(value);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    T acc{};
    bool first = true;
    for (const Bytes& b : all) {
      ByteReader r(b);
      const T v = r.get<T>();
      acc = first ? v : op(acc, v);
      first = false;
    }
    return acc;
  }

  /// One value per node, gathered everywhere, indexed by node.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allgather(T value) {
    ByteWriter w;
    w.put(value);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    std::vector<T> out;
    out.reserve(all.size());
    for (const Bytes& b : all) {
      ByteReader r(b);
      out.push_back(r.get<T>());
    }
    return out;
  }

  /// Broadcast a vector from `root` to all nodes.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void broadcast(std::vector<T>& data, int root) {
    ByteWriter w;
    if (node_id() == root) w.put_vector(data);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    ByteReader r(all[static_cast<size_t>(root)]);
    data = r.get_vector<T>();
  }

  /// Inclusive prefix combine over nodes (node 0 gets its own value).
  template <typename T, typename Op>
    requires std::is_trivially_copyable_v<T>
  T scan_inclusive(T value, Op op) {
    ByteWriter w;
    w.put(value);
    const auto all = rt_->allgather_bytes(std::move(w).take());
    T acc{};
    for (int n = 0; n <= node_id(); ++n) {
      ByteReader r(all[static_cast<size_t>(n)]);
      const T v = r.get<T>();
      acc = (n == 0) ? v : op(acc, v);
    }
    return acc;
  }

  // ---- Phase-semantics sanitizer (ppm::check, docs/validator.md) ----

  /// True when RuntimeOptions::validate_phases enabled the sanitizer.
  bool validation_enabled() const { return rt_->validator() != nullptr; }

  /// This node's sanitizer findings so far (empty report when validation
  /// is off). The cluster-wide merged report is RunResult::check_report;
  /// this per-node view lets a program or test inspect findings mid-run.
  check::Report node_check_report() const {
    const check::PhaseValidator* v = rt_->validator();
    return v != nullptr ? v->report() : check::Report{};
  }

  /// Access to the underlying runtime (tests, benches, advanced use).
  NodeRuntime& runtime() { return *rt_; }

 private:
  NodeRuntime* rt_;
};

}  // namespace ppm
