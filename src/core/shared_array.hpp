// Typed shared-variable handles: the PPM_global_shared / PPM_node_shared
// declarations of the paper, as C++ value handles.
//
// Handles are cheap to copy and node-local: under the SPMD model each node's
// program instance allocates the same arrays in the same order, producing
// handles with matching ids that denote one logical distributed array
// (GlobalShared) or the node's own instance (NodeShared).
//
// Semantics (see DESIGN.md §5): inside a phase, get() returns the value the
// element had when the phase started; set()/add()/... take effect when the
// phase commits, applied in ascending (global VP rank, per-VP sequence)
// order. Outside phases, access is immediate and restricted to locally
// stored elements.
#pragma once

#include <span>
#include <vector>

#include "core/runtime.hpp"

namespace ppm {

/// Which accumulate operation accumulate()/accumulate_n() and
/// Env::reduce() apply. Values mirror detail::WriteOp (sans kSet), so the
/// selector crosses the wire unchanged; kUser0..kUser2 are the slots
/// filled by Env::register_accum_op.
enum class ReduceOp : uint8_t {
  kAdd = 1,
  kMin = 2,
  kMax = 3,
  kMul = 4,
  kUser0 = 5,
  kUser1 = 6,
  kUser2 = 7,
};

static_assert(static_cast<uint8_t>(ReduceOp::kAdd) ==
                  static_cast<uint8_t>(detail::WriteOp::kAdd) &&
              static_cast<uint8_t>(ReduceOp::kMul) ==
                  static_cast<uint8_t>(detail::WriteOp::kMul) &&
              static_cast<uint8_t>(ReduceOp::kUser2) ==
                  static_cast<uint8_t>(detail::WriteOp::kUser2),
              "ReduceOp must mirror detail::WriteOp");

/// One logical array distributed block-wise across all nodes
/// (PPM_global_shared).
template <typename T>
  requires std::is_trivially_copyable_v<T>
class GlobalShared {
 public:
  GlobalShared() = default;

  uint64_t size() const { return n_; }

  /// Phase-start value of element i (local: direct load; remote: served by
  /// the runtime's bundling read engine).
  ///
  /// Locally owned elements take an inline fast path: committed storage is
  /// allocated once and never moves, and deferred writes leave it frozen
  /// for the whole phase, so a plain load through a cached pointer is
  /// exactly the phase-start value.
  T get(uint64_t i) const { return view(i); }

  /// Deferred write; last writer (highest global VP rank, then latest
  /// program order) wins on conflicts.
  void set(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kSet);
  }

  /// Commutative accumulate-writes (well-defined under any conflict).
  void add(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kAdd);
  }
  void min_update(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kMin);
  }
  void max_update(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kMax);
  }

  /// Owner-side accumulate: same committed result as add()/min_update()/
  /// ... with the matching op, but remote elements ship their (op, value)
  /// to the owner through the compact kAccumList/kAccumBlock wire
  /// fragments and apply there at commit — no per-entry (vp_rank, seq)
  /// bytes, no fetch round trip. See NodeRuntime::accumulate_elem for the
  /// commutativity contract; with RuntimeOptions::owner_side_accumulate
  /// off this degrades to the plain deferred-write path bit-identically.
  void accumulate(uint64_t i, ReduceOp op, const T& v) {
    rt_->accumulate_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                         static_cast<detail::WriteOp>(op));
  }

  /// Bulk accumulate over [first, first+count) — as if accumulate() were
  /// called at consecutive indices in order; remote segments ship as one
  /// kAccumBlock range record per owner.
  void accumulate_n(uint64_t first, uint64_t count, ReduceOp op,
                    const T* values) {
    if (rt_->options().bulk_access) {
      rt_->accumulate_span(id_, first, count,
                           reinterpret_cast<const std::byte*>(values),
                           static_cast<detail::WriteOp>(op));
      return;
    }
    for (uint64_t j = 0; j < count; ++j) {
      accumulate(first + j, op, values[j]);
    }
  }

  /// Zero-copy read: a reference to the element's phase-start value,
  /// valid until the current phase commits. Remote elements resolve into
  /// the runtime's block cache, so large PODs (e.g. tree nodes) can be
  /// walked without copying.
  const T& view(uint64_t i) const {
    // Block-distribution local fast path (chunk_len_ is zeroed for other
    // distributions, so this branch cannot trigger for them).
    const uint64_t rel = i - chunk_base_;
    if (rel < chunk_len_) [[likely]] {
      rt_->charge_access();
      return local_data_[rel];
    }
    if (i < n_) {
      // Cyclic and owner-mapped local elements.
      if (rec_->dist != Distribution::kBlock &&
          rec_->owner_of(i) == rt_->node_id()) {
        rt_->charge_access();
        rt_->note_access(*rec_, i);
        return local_data_[rec_->local_of(i)];
      }
      // Remote element: consult the array's direct-mapped block table; a
      // hit resolves into the runtime's block cache without a call.
      if (!rec_->remote_block_ptr.empty()) {
        const std::byte* block = rec_->remote_block_ptr[rec_->block_slot(i)];
        if (block != nullptr) {
          rt_->charge_access();
          rt_->note_cache_hit();
          rt_->note_access(*rec_, i);
          const uint64_t in_block = rec_->local_of(i) % rec_->block_elems;
          return *reinterpret_cast<const T*>(block + in_block * sizeof(T));
        }
      }
    }
    return *reinterpret_cast<const T*>(rt_->read_ref(id_, i));
  }

  /// Bundled multi-element read: one runtime request per owner node.
  std::vector<T> gather(std::span<const uint64_t> indices) const {
    std::vector<T> out(indices.size());
    rt_->gather_elems(id_, indices,
                      reinterpret_cast<std::byte*>(out.data()));
    return out;
  }

  // -- Span-style bulk access (RuntimeOptions::bulk_access) --
  //
  // Equivalent to the per-element loops element for element — same
  // committed results, same conflict resolution — but ownership/bounds
  // resolve once per contiguous segment and remote write runs ship as
  // single range entries. With bulk_access off they degrade to the
  // per-element calls (the differential stress oracle runs both).

  /// Phase-start values of elements [first, first+count) into out.
  void read_n(uint64_t first, uint64_t count, T* out) const {
    if (rt_->options().bulk_access) {
      rt_->read_span(id_, first, count, reinterpret_cast<std::byte*>(out));
      return;
    }
    for (uint64_t j = 0; j < count; ++j) out[j] = get(first + j);
  }

  /// Deferred bulk set of elements [first, first+count) — as if set() were
  /// called at consecutive indices in order.
  void set_n(uint64_t first, uint64_t count, const T* values) {
    write_n(first, count, values, detail::WriteOp::kSet);
  }
  /// Deferred bulk accumulate, same shape as set_n.
  void add_n(uint64_t first, uint64_t count, const T* values) {
    write_n(first, count, values, detail::WriteOp::kAdd);
  }

  /// Lookahead hint over a contiguous index range [lo, hi): like
  /// prefetch() but walks cache blocks, so hinting a whole row slice
  /// costs O(blocks), not O(elements). No-op for ranges that resolve
  /// entirely into this node's chunk.
  void prefetch_range(uint64_t lo, uint64_t hi) const {
    // Entirely-local fast path (block distribution): nothing to fetch.
    if (lo >= chunk_base_ && hi <= chunk_base_ + chunk_len_) return;
    rt_->prefetch_range(id_, lo, hi);
  }

  /// Lookahead hint: start fetching the cache blocks holding these
  /// elements now, without blocking. Later get()/view() calls find them
  /// cached or in flight, so the round trips overlap the caller's compute.
  /// Local elements and blocks already cached/in-flight are skipped;
  /// RunResult::prefetch_hits counts blocks demanded before going unused.
  void prefetch(std::span<const uint64_t> indices) const {
    rt_->prefetch_elems(id_, indices);
  }

  /// Locality hint: run one migration planning round for this array at the
  /// next global-phase commit, even when RuntimeOptions::
  /// adaptive_distribution is off. SPMD-collective by contract (every node
  /// must request the same rebalances between the same phases). No-op
  /// unless the array was created with Distribution::kAdaptive.
  void rebalance() const { rt_->request_rebalance(id_); }

  // -- Locality utilities (the paper's node/global "casting" functions) --

  /// First global index owned by this node (block distribution only).
  uint64_t local_begin() const {
    PPM_CHECK(rec_->dist == Distribution::kBlock,
              "local_begin/local_end are block-distribution concepts");
    return rec_->chunk_base;
  }
  /// One past the last global index owned by this node (block only).
  uint64_t local_end() const {
    PPM_CHECK(rec_->dist == Distribution::kBlock,
              "local_begin/local_end are block-distribution concepts");
    return rec_->chunk_base + rec_->chunk_len;
  }
  /// Node that owns element i.
  int owner(uint64_t i) const { return rt_->owner_of(id_, i); }
  /// This array's distribution.
  Distribution distribution() const { return rec_->dist; }
  /// Number of elements stored locally (any distribution).
  uint64_t local_count() const { return rec_->chunk_len; }

  /// Read-only view of this node's committed chunk (phase-start values
  /// during a phase). Static layouts only: owner-mapped storage is
  /// slotted for migration headroom, so a raw span would mix live blocks
  /// with free or stale slots.
  std::span<const T> local_span() const {
    PPM_CHECK(rec_->mig_block_elems == 0,
              "local_span is not defined for owner-mapped (kAdaptive) "
              "arrays; use get()/gather() instead");
    const auto bytes = rt_->committed_bytes(id_);
    return {reinterpret_cast<const T*>(bytes.data()),
            bytes.size() / sizeof(T)};
  }

  uint32_t id() const { return id_; }

 private:
  friend class Env;

  void write_n(uint64_t first, uint64_t count, const T* values,
               detail::WriteOp op) {
    if (rt_->options().bulk_access) {
      rt_->write_span(id_, first, count,
                      reinterpret_cast<const std::byte*>(values), op);
      return;
    }
    for (uint64_t j = 0; j < count; ++j) {
      rt_->write_elem(id_, first + j,
                      reinterpret_cast<const std::byte*>(&values[j]), op);
    }
  }

  GlobalShared(NodeRuntime* rt, uint32_t id, uint64_t n)
      : rt_(rt), id_(id), n_(n) {
    const auto& rec = rt->array(id);
    rec_ = &rec;  // stable: records live in a deque
    if (rec.dist == Distribution::kBlock) {
      chunk_base_ = rec.chunk_base;
      chunk_len_ = rec.chunk_len;
    }
    local_data_ = reinterpret_cast<const T*>(rec.storage.data());
  }

  NodeRuntime* rt_ = nullptr;
  uint32_t id_ = 0;
  uint64_t n_ = 0;
  uint64_t chunk_base_ = 0;
  uint64_t chunk_len_ = 0;
  const T* local_data_ = nullptr;  // stable: storage never reallocates
  const detail::ArrayRecord* rec_ = nullptr;
};

/// One array instance per node, stored in that node's physical shared
/// memory (PPM_node_shared). Same phase semantics, no network traffic.
template <typename T>
  requires std::is_trivially_copyable_v<T>
class NodeShared {
 public:
  NodeShared() = default;

  uint64_t size() const { return n_; }

  T get(uint64_t i) const {
    if (i < n_) [[likely]] {
      rt_->charge_access();
      return data_[i];  // committed storage: phase-start values
    }
    T out;
    rt_->read_elem(id_, i, reinterpret_cast<std::byte*>(&out));
    return out;
  }

  void set(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kSet);
  }
  void add(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kAdd);
  }
  void min_update(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kMin);
  }
  void max_update(uint64_t i, const T& v) {
    rt_->write_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                    detail::WriteOp::kMax);
  }

  /// Accumulate with a selectable op. Node-shared storage is always
  /// local, so this is the plain deferred-write path; the selector exists
  /// for parity with GlobalShared::accumulate (one generator/test body
  /// can drive both array kinds).
  void accumulate(uint64_t i, ReduceOp op, const T& v) {
    rt_->accumulate_elem(id_, i, reinterpret_cast<const std::byte*>(&v),
                         static_cast<detail::WriteOp>(op));
  }
  void accumulate_n(uint64_t first, uint64_t count, ReduceOp op,
                    const T* values) {
    if (rt_->options().bulk_access) {
      rt_->accumulate_span(id_, first, count,
                           reinterpret_cast<const std::byte*>(values),
                           static_cast<detail::WriteOp>(op));
      return;
    }
    for (uint64_t j = 0; j < count; ++j) {
      accumulate(first + j, op, values[j]);
    }
  }

  // -- Span-style bulk access (RuntimeOptions::bulk_access); see
  // GlobalShared for semantics. Node-shared storage is always local, so
  // read_n is a plain memcpy either way.

  void read_n(uint64_t first, uint64_t count, T* out) const {
    if (rt_->options().bulk_access) {
      rt_->read_span(id_, first, count, reinterpret_cast<std::byte*>(out));
      return;
    }
    for (uint64_t j = 0; j < count; ++j) out[j] = get(first + j);
  }
  void set_n(uint64_t first, uint64_t count, const T* values) {
    write_n(first, count, values, detail::WriteOp::kSet);
  }
  void add_n(uint64_t first, uint64_t count, const T* values) {
    write_n(first, count, values, detail::WriteOp::kAdd);
  }

  /// Read-only view of the committed array (phase-start values during a
  /// phase).
  std::span<const T> span() const {
    const auto bytes = rt_->committed_bytes(id_);
    return {reinterpret_cast<const T*>(bytes.data()),
            bytes.size() / sizeof(T)};
  }

  uint32_t id() const { return id_; }

 private:
  friend class Env;

  void write_n(uint64_t first, uint64_t count, const T* values,
               detail::WriteOp op) {
    if (rt_->options().bulk_access) {
      rt_->write_span(id_, first, count,
                      reinterpret_cast<const std::byte*>(values), op);
      return;
    }
    for (uint64_t j = 0; j < count; ++j) {
      rt_->write_elem(id_, first + j,
                      reinterpret_cast<const std::byte*>(&values[j]), op);
    }
  }

  NodeShared(NodeRuntime* rt, uint32_t id, uint64_t n)
      : rt_(rt), id_(id), n_(n),
        data_(reinterpret_cast<const T*>(rt->array(id).storage.data())) {}

  NodeRuntime* rt_ = nullptr;
  uint32_t id_ = 0;
  uint64_t n_ = 0;
  const T* data_ = nullptr;  // stable: storage never reallocates
};

}  // namespace ppm
