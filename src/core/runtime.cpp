#include "core/runtime.hpp"

#include <algorithm>
#include <iterator>

#include "util/error.hpp"

namespace ppm {

// ppm::check mirrors the write-op encoding without including core headers
// (core links the check library, not the other way around). Keep in sync.
static_assert(check::kOpSet == static_cast<uint8_t>(detail::WriteOp::kSet));
static_assert(check::kOpAdd == static_cast<uint8_t>(detail::WriteOp::kAdd));
static_assert(check::kOpMin == static_cast<uint8_t>(detail::WriteOp::kMin));
static_assert(check::kOpMax == static_cast<uint8_t>(detail::WriteOp::kMax));
static_assert(check::kOpMul == static_cast<uint8_t>(detail::WriteOp::kMul));
static_assert(check::kOpUser0 ==
              static_cast<uint8_t>(detail::WriteOp::kUser0));
static_assert(check::kOpUser1 ==
              static_cast<uint8_t>(detail::WriteOp::kUser1));
static_assert(check::kOpUser2 ==
              static_cast<uint8_t>(detail::WriteOp::kUser2));

namespace {

/// Node-collective token channels.
constexpr uint32_t kChBarrier = 0;
constexpr uint32_t kChColl = 1;

/// Chunk size of an owner's block distribution: ceil(n / nodes).
uint64_t chunk_of(uint64_t n, int nodes) {
  return (n + static_cast<uint64_t>(nodes) - 1) / static_cast<uint64_t>(nodes);
}

struct ParsedEntry {
  uint64_t vp_rank;
  uint32_t seq;
  uint32_t array;
  uint8_t op;  // base WriteOp; range entries had kOpRangeBit stripped
  uint64_t index;
  uint32_t count;  // elements covered (1 for scalar entries)
  const std::byte* value;
};

}  // namespace

// ---------------------------------------------------------------------------
// Runtime (cluster-wide)
// ---------------------------------------------------------------------------

namespace {
std::vector<int> identity_partition(int nodes) {
  std::vector<int> p(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) p[static_cast<size_t>(n)] = n;
  return p;
}
}  // namespace

Runtime::Runtime(cluster::Machine& machine, RuntimeOptions options)
    : Runtime(machine, options, identity_partition(machine.nodes()), 0) {}

Runtime::Runtime(cluster::Machine& machine, RuntimeOptions options,
                 std::vector<int> machine_nodes, uint32_t run_tag)
    : machine_(machine), options_(options),
      partition_(std::move(machine_nodes)), run_tag_(run_tag) {
  PPM_CHECK(!partition_.empty(), "runtime partition needs at least one node");
  PPM_CHECK(run_tag_ <= detail::kRtTagMax, "run tag %u out of range",
            run_tag_);
  logical_of_.assign(static_cast<size_t>(machine.nodes()), -1);
  for (size_t k = 0; k < partition_.size(); ++k) {
    const int phys = partition_[k];
    PPM_CHECK(phys >= 0 && phys < machine.nodes(),
              "partition node %d outside machine", phys);
    PPM_CHECK(logical_of_[static_cast<size_t>(phys)] < 0,
              "machine node %d appears twice in partition", phys);
    logical_of_[static_cast<size_t>(phys)] = static_cast<int>(k);
  }
  if (!machine.windowed()) {
    // The quiesce latch is a classic-mode facility: only ppm::jobs waits on
    // it, and the jobs scheduler always configures a shared backbone, which
    // forces classic mode.
    quiesce_cv_ = std::make_unique<sim::ConditionVar>(machine.engine());
  }
  if (options_.trace) {
    // The trace is keyed by physical node id, and the fabric/engine
    // recorders are process-wide: with several traced tenants the last
    // attached Runtime wins them. ppm::jobs runs tenants untraced.
    trace_ = std::make_unique<trace::Trace>(machine.nodes(),
                                            options_.trace_buffer_events);
    if (machine.windowed()) {
      // Windowed mode: message spans are recorded on the track of the node
      // whose engine resolves the delivery time (see Fabric::
      // set_node_trace_recorders); the engine-step track stays empty (there
      // is no single engine to pace it, and a per-node stride would differ
      // from the classic track anyway).
      std::vector<trace::Recorder*> recs;
      recs.reserve(static_cast<size_t>(machine.nodes()));
      for (int n = 0; n < machine.nodes(); ++n) {
        recs.push_back(&trace_->node(n));
      }
      machine.fabric().set_node_trace_recorders(std::move(recs));
    } else {
      machine.fabric().set_trace_recorder(&trace_->fabric());
      machine.engine().set_trace_recorder(&trace_->engine());
    }
  }
  nodes_.reserve(partition_.size());
  for (size_t k = 0; k < partition_.size(); ++k) {
    nodes_.push_back(std::unique_ptr<NodeRuntime>(
        new NodeRuntime(*this, static_cast<int>(k))));
  }
}

void Runtime::note_runtime_fiber_exited() {
  if (--live_runtime_fibers_ == 0 && quiesce_cv_) quiesce_cv_->notify_all();
}

void Runtime::wait_runtime_fibers_exited() {
  PPM_CHECK(quiesce_cv_ != nullptr,
            "wait_runtime_fibers_exited is classic-mode only (no tenant "
            "scheduling under the windowed simulator)");
  quiesce_cv_->wait([this] { return live_runtime_fibers_ == 0; });
}

Runtime::~Runtime() {
  if (trace_) {
    // The machine can outlive this Runtime (benches reuse it); don't leave
    // it pointing into the trace we are about to destroy.
    if (machine_.windowed()) {
      machine_.fabric().set_node_trace_recorders({});
    } else {
      machine_.fabric().set_trace_recorder(nullptr);
      machine_.engine().set_trace_recorder(nullptr);
    }
  }
}

NodeRuntime& Runtime::node(int node_id) {
  PPM_CHECK(node_id >= 0 && node_id < static_cast<int>(nodes_.size()),
            "bad node id %d", node_id);
  return *nodes_[static_cast<size_t>(node_id)];
}

RunResult Runtime::collect() const {
  RunResult r;
  r.duration_ns = machine_.last_run_duration_ns();
  const auto& fs = machine_.fabric().stats();
  r.network_messages = fs.inter_messages.value();
  r.network_bytes = fs.inter_bytes.value();
  r.intranode_messages = fs.intra_messages.value();
  r.intranode_bytes = fs.intra_bytes.value();
  for (const auto& n : nodes_) {
    const auto& c = n->counters();
    r.global_phases += c.global_phases;
    r.node_phases += c.node_phases;
    r.remote_blocks_fetched += c.blocks_fetched;
    r.remote_reads_served_from_cache += c.reads_from_cache;
    r.slow_path_reads += c.slow_path_reads;
    r.write_entries += c.write_entries;
    r.bundles_sent += c.bundles_sent;
    r.fetch_stall_ns += c.fetch_stall_ns;
    r.prefetch_issued += c.prefetch_issued;
    r.prefetch_hits += c.prefetch_hits;
    r.entries_combined += c.entries_combined;
    r.accums_executed += c.accums_executed;
    r.reduction_bytes_saved += c.reduction_bytes_saved;
    r.blocks_migrated += c.blocks_migrated;
    r.migration_bytes += c.migration_bytes;
    r.remote_to_local_conversions += c.remote_to_local_conversions;
    r.stale_messages_dropped += c.stale_msgs_dropped;
    if (const check::PhaseValidator* v = n->validator()) {
      r.check_report.merge(v->report());
    }
  }
  // Phases are counted per node; report runtime-wide phase counts (the
  // partition's nodes for a tenant runtime).
  r.global_phases /= static_cast<uint64_t>(std::max(1, nodes()));

  // Per-counter rollup: sum plus per-node extremes, one row per
  // NodeRuntime::Counters field in declaration order.
  static constexpr struct {
    const char* name;
    uint64_t NodeRuntime::Counters::* field;
  } kCounterFields[] = {
      {"global_phases", &NodeRuntime::Counters::global_phases},
      {"node_phases", &NodeRuntime::Counters::node_phases},
      {"blocks_fetched", &NodeRuntime::Counters::blocks_fetched},
      {"reads_from_cache", &NodeRuntime::Counters::reads_from_cache},
      {"write_entries", &NodeRuntime::Counters::write_entries},
      {"bundles_sent", &NodeRuntime::Counters::bundles_sent},
      {"fetch_stall_ns", &NodeRuntime::Counters::fetch_stall_ns},
      {"prefetch_issued", &NodeRuntime::Counters::prefetch_issued},
      {"prefetch_hits", &NodeRuntime::Counters::prefetch_hits},
      {"entries_combined", &NodeRuntime::Counters::entries_combined},
      {"accums_executed", &NodeRuntime::Counters::accums_executed},
      {"reduction_bytes_saved",
       &NodeRuntime::Counters::reduction_bytes_saved},
      {"blocks_migrated", &NodeRuntime::Counters::blocks_migrated},
      {"migration_bytes", &NodeRuntime::Counters::migration_bytes},
      {"remote_to_local_conversions",
       &NodeRuntime::Counters::remote_to_local_conversions},
      {"stale_msgs_dropped", &NodeRuntime::Counters::stale_msgs_dropped},
      {"slow_path_reads", &NodeRuntime::Counters::slow_path_reads},
  };
  r.counter_rollup.reserve(std::size(kCounterFields));
  for (const auto& f : kCounterFields) {
    RunResult::CounterRollup row;
    row.name = f.name;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const uint64_t v = nodes_[n]->counters().*f.field;
      row.sum += v;
      if (n == 0 || v < row.min) {
        row.min = v;
        row.min_node = static_cast<int>(n);
      }
      if (n == 0 || v > row.max) {
        row.max = v;
        row.max_node = static_cast<int>(n);
      }
    }
    r.counter_rollup.push_back(std::move(row));
  }

  if (trace_) r.trace_summary = trace::analyze(*trace_);
  return r;
}

// ---------------------------------------------------------------------------
// NodeRuntime: lifecycle
// ---------------------------------------------------------------------------

NodeRuntime::NodeRuntime(Runtime& shared, int node_id)
    : shared_(shared), node_(node_id), opts_(shared.options()),
      engine_(&shared.machine().engine_for_node(shared.machine_node(node_id))) {
  if (opts_.validate_phases) {
    validator_ = std::make_unique<check::PhaseValidator>(node_);
  }
  // Trace tracks are keyed by physical node id (they describe the machine,
  // not one tenant).
  if (trace::Trace* t = shared.trace()) {
    tracer_ = &t->node(shared.machine_node(node_));
  }
}

int NodeRuntime::node_count() const { return shared_.nodes(); }
int NodeRuntime::cores_per_node() const {
  return shared_.machine().cores_per_node();
}

void NodeRuntime::start() {
  PPM_CHECK(!started_, "NodeRuntime::start called twice");
  auto& machine = shared_.machine();
  task_cv_ = std::make_unique<sim::ConditionVar>(*engine_);
  arrivals_cv_ = std::make_unique<sim::ConditionVar>(*engine_);

  // Map fiber ids to core indices so trace events land on per-core
  // tracks. The node's main fiber (running this) and the service fiber
  // both record as core 0.
  const auto note_core = [this](uint32_t fid, int core) {
    if (fid >= core_of_fiber_.size()) core_of_fiber_.resize(fid + 1, 0);
    core_of_fiber_[fid] = static_cast<uint16_t>(core);
  };
  if (engine_->on_fiber()) note_core(engine_->current_fiber_id(), 0);
  // Fibers live at the node's physical place (fiber names carry it too —
  // it is the machine-level identity). Each spawned runtime fiber is
  // registered with the Runtime's quiesce latch so a scheduler can wait
  // for full teardown before reallocating the node to another tenant.
  const int phys = shared_.machine_node(node_);
  shared_.note_runtime_fiber_spawned();
  note_core(machine.spawn_at({phys, 0}, strfmt("n%d.svc", phys),
                             [this] {
                               service_loop();
                               shared_.note_runtime_fiber_exited();
                             }),
            0);
  for (int core = 1; core < cores_per_node(); ++core) {
    shared_.note_runtime_fiber_spawned();
    const auto fid = machine.spawn_at({phys, core},
                                      strfmt("n%d.w%d", phys, core),
                     [this, core] {
                       uint64_t seen = 0;
                       for (;;) {
                         task_cv_->wait([&] {
                           return task_.shutdown || task_.generation != seen;
                         });
                         if (task_.shutdown) break;
                         seen = task_.generation;
                         run_chunks(core);
                         ++task_.workers_done;
                         task_cv_->notify_all();
                       }
                       shared_.note_runtime_fiber_exited();
                     });
    note_core(fid, core);
  }
  started_ = true;
}

void NodeRuntime::finish() {
  PPM_CHECK(started_, "NodeRuntime::finish without start");
  PPM_CHECK(phase_scope_ == PhaseScope::kNone, "finish inside a phase");
  // Quiesce: after this barrier no peer will address this node again.
  barrier_global();
  task_.shutdown = true;
  task_cv_->notify_all();
  rt_send(node_, detail::rt_kind(detail::RtMsg::kShutdown), Bytes{});
}

// ---------------------------------------------------------------------------
// Shared-array directory
// ---------------------------------------------------------------------------

uint32_t NodeRuntime::create_array(bool global, uint64_t n,
                                   detail::ElemOps ops, Distribution dist) {
  PPM_CHECK(started_, "create array before NodeRuntime::start");
  PPM_CHECK(phase_scope_ == PhaseScope::kNone,
            "shared arrays must be created outside phases");
  PPM_CHECK(n > 0, "shared array needs at least one element");
  PPM_CHECK(global || dist != Distribution::kAdaptive,
            "node-shared arrays cannot be owner-mapped (kAdaptive)");
  detail::ArrayRecord rec;
  rec.id = static_cast<uint32_t>(arrays_.size());
  rec.global = global;
  rec.n = n;
  rec.ops = ops;
  rec.dist = dist;
  rec.nodes = node_count();
  if (global) {
    rec.chunk = chunk_of(n, node_count());
    if (dist == Distribution::kAdaptive) {
      // Owner-mapped layout: the array is covered by fixed migration
      // blocks, initially dealt out block-aligned (kBlock restricted to
      // block granularity), with one block of storage headroom per freed
      // slot: every node keeps cap_blocks slots so the planner can pull
      // blocks in before (or without ever) giving its own away. Placement
      // never affects logical contents, so the coarser initial alignment
      // is invisible outside the wire/byte counters.
      const uint64_t nodes64 = static_cast<uint64_t>(rec.nodes);
      rec.mig_block_elems =
          std::max<uint64_t>(1, options().read_block_bytes / ops.size);
      rec.mig_blocks = (n + rec.mig_block_elems - 1) / rec.mig_block_elems;
      const uint64_t bpc = (rec.mig_blocks + nodes64 - 1) / nodes64;
      rec.cap_blocks = std::min(rec.mig_blocks, 2 * bpc);
      rec.mig_owner.resize(rec.mig_blocks);
      rec.mig_slot.resize(rec.mig_blocks);
      rec.free_slots.assign(static_cast<size_t>(rec.nodes), {});
      for (uint64_t b = 0; b < rec.mig_blocks; ++b) {
        rec.mig_owner[b] = static_cast<int32_t>(b / bpc);
        rec.mig_slot[b] = static_cast<uint32_t>(b % bpc);
      }
      for (int p = 0; p < rec.nodes; ++p) {
        const uint64_t owned =
            std::min(bpc, rec.mig_blocks -
                              std::min(rec.mig_blocks,
                                       bpc * static_cast<uint64_t>(p)));
        auto& free = rec.free_slots[static_cast<size_t>(p)];
        // An ascending run is already a valid min-heap.
        for (uint64_t s = owned; s < rec.cap_blocks; ++s) {
          free.push_back(static_cast<uint32_t>(s));
        }
      }
      rec.access_count.assign(rec.mig_blocks, 0);
      // Slotted storage: cap_blocks full slots per node. Setting chunk to
      // the slot extent makes the bundling setup below size the block
      // table so read-cache blocks coincide with migration slots.
      rec.chunk = rec.cap_blocks * rec.mig_block_elems;
      rec.chunk_base = 0;
      rec.chunk_len = rec.chunk;
      any_adaptive_ = true;
    } else if (dist == Distribution::kBlock) {
      rec.chunk_base = std::min(n, rec.chunk * static_cast<uint64_t>(node_));
      rec.chunk_len = std::min(rec.chunk, n - rec.chunk_base);
    } else {
      rec.chunk_base = 0;
      rec.chunk_len = rec.owner_len(node_);
    }
    if (options().bundle_reads) {
      rec.block_elems =
          std::max<uint64_t>(1, options().read_block_bytes / ops.size);
      rec.blocks_per_chunk =
          (rec.chunk + rec.block_elems - 1) / rec.block_elems;
      // The direct-mapped remote-block table is allocated lazily by
      // ensure_block_table on the first published block; an array this
      // node only ever accesses locally never grows one.
    }
  } else {
    rec.chunk = n;
    rec.chunk_base = 0;
    rec.chunk_len = n;
  }
  rec.storage.assign(rec.chunk_len * ops.size, std::byte{0});
  if (validator_) {
    validator_->on_array_created(rec.id, rec.global, rec.n, rec.ops.size,
                                 static_cast<uint8_t>(rec.dist),
                                 rec.nodes);
  }
  arrays_.push_back(std::move(rec));
  return arrays_.back().id;
}

const detail::ArrayRecord& NodeRuntime::array(uint32_t id) const {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  return arrays_[id];
}

std::span<const std::byte> NodeRuntime::committed_bytes(uint32_t id) const {
  const auto& rec = array(id);
  return {rec.storage.data(), rec.storage.size()};
}

Bytes NodeRuntime::pack_owned_elems(uint32_t id) const {
  const auto& rec = array(id);
  ByteWriter w;
  if (!rec.global) {
    w.put_raw(rec.storage.data(), rec.n * rec.ops.size);
    return std::move(w).take();
  }
  for (uint64_t i = 0; i < rec.n; ++i) {
    if (rec.owner_of(i) != node_) continue;
    w.put_raw(rec.storage.data() + rec.local_of(i) * rec.ops.size,
              rec.ops.size);
  }
  return std::move(w).take();
}

int NodeRuntime::owner_of(uint32_t id, uint64_t index) const {
  const auto& rec = array(id);
  PPM_CHECK(index < rec.n, "index %llu out of range (array size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  return rec.global ? rec.owner_of(index) : node_;
}

void NodeRuntime::request_rebalance(uint32_t id) {
  const auto& rec = array(id);
  if (rec.mig_block_elems == 0) return;  // static layout: nothing can move
  PPM_CHECK(phase_scope_ == PhaseScope::kNone,
            "rebalance must be requested outside phases");
  const auto it = std::lower_bound(rebalance_requests_.begin(),
                                   rebalance_requests_.end(), id);
  if (it == rebalance_requests_.end() || *it != id) {
    rebalance_requests_.insert(it, id);
  }
}

// ---------------------------------------------------------------------------
// Element access
// ---------------------------------------------------------------------------

Vp* NodeRuntime::current_vp() const {
  if (!engine_->on_fiber()) return nullptr;
  const uint32_t fid = engine_->current_fiber_id();
  return fid < vp_by_fiber_.size() ? vp_by_fiber_[fid] : nullptr;
}

uint64_t NodeRuntime::request_epoch() const {
  return phase_scope_ == PhaseScope::kGlobal ? epoch_ : detail::kAsyncEpoch;
}

void NodeRuntime::read_elem(uint32_t id, uint64_t index, std::byte* out) {
  const auto& rec = array(id);
  PPM_CHECK(index < rec.n, "read index %llu out of range (size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(opts_.access_overhead_ns);
  }
  if (validator_) [[unlikely]] validator_->on_read();
  note_access(rec, index);
  // Committed storage holds phase-start values during a phase (writes are
  // deferred), so local reads are plain loads.
  if (!rec.global || rec.owner_of(index) == node_) {
    const uint64_t local = rec.global ? rec.local_of(index) : index;
    std::memcpy(out, rec.storage.data() + local * rec.ops.size,
                rec.ops.size);
    return;
  }
  std::memcpy(out, remote_ref(rec, index), rec.ops.size);
}

const std::byte* NodeRuntime::read_ref(uint32_t id, uint64_t index) {
  const auto& rec = array(id);
  PPM_CHECK(index < rec.n, "read index %llu out of range (size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  charge_access();
  if (validator_) [[unlikely]] validator_->on_read();
  note_access(rec, index);
  if (!rec.global || rec.owner_of(index) == node_) {
    const uint64_t local = rec.global ? rec.local_of(index) : index;
    return rec.storage.data() + local * rec.ops.size;
  }
  return remote_ref(rec, index);
}

const std::byte* NodeRuntime::remote_ref(const detail::ArrayRecord& rec,
                                         uint64_t index) {
  // All coordinates on the wire are owner-local, which keeps the protocol
  // identical for every distribution.
  ++counters_.slow_path_reads;
  const bool bundle = options().bundle_reads && rec.block_elems > 0;
  const int owner = rec.owner_of(index);
  const uint64_t llocal = rec.local_of(index);
  const uint64_t olen = rec.owner_len(owner);
  const uint64_t block_elems = bundle ? rec.block_elems : 1;
  const uint64_t first = (llocal / block_elems) * block_elems;
  const uint64_t count = std::min(block_elems, olen - first);
  const BlockKey key{rec.id,
                     (static_cast<uint64_t>(owner) << 40) | first};

  auto elem_of = [&](const Bytes& data) -> const std::byte* {
    PPM_CHECK(data.size() == count * rec.ops.size,
              "short get response (%zu bytes for %llu elements)", data.size(),
              static_cast<unsigned long long>(count));
    return data.data() + (llocal - first) * rec.ops.size;
  };

  if (bundle) {
    if (const auto it = block_cache_.find(key); it != block_cache_.end()) {
      ++counters_.reads_from_cache;
      if (tracer_) [[unlikely]] {
        trace_rec(trace::EventKind::kCacheHit, rec.id, key.block);
      }
      publish_block(rec, key, it->second);
      return elem_of(it->second);
    }
    if (const auto it = pending_blocks_.find(key);
        it != pending_blocks_.end()) {
      // Request combining: another VP (or the lookahead engine) already
      // asked for this block; wait for the in-flight fetch and serve from
      // the freshly cached block.
      auto slot = it->second;  // keep alive across the wait
      wait_fetch(*slot);
      ++counters_.reads_from_cache;
      if (tracer_) [[unlikely]] {
        trace_rec(trace::EventKind::kCacheHit, rec.id, key.block,
                  /*c=*/0, trace::kFlagBit0);
      }
      const auto cached = block_cache_.find(key);
      PPM_CHECK(cached != block_cache_.end(),
                "combined fetch did not populate the block cache");
      publish_block(rec, key, cached->second);
      return elem_of(cached->second);
    }
    if (tracer_) [[unlikely]] {
      trace_rec(trace::EventKind::kCacheMiss, rec.id, key.block);
    }
    auto slot = issue_block_fetch(rec, owner, first, count,
                                  /*prefetch=*/false);
    maybe_stream_prefetch(rec, owner, first, olen);
    maybe_strided_prefetch(rec, index);
    wait_fetch(*slot);
    // The service fiber cached the payload and published it on arrival.
    const auto it = block_cache_.find(key);
    PPM_CHECK(it != block_cache_.end(), "fetched block missing from cache");
    return elem_of(it->second);
  }

  auto slot = std::make_shared<FetchSlot>(*engine_);
  slot->key = key;
  slot->req_id = next_req_id();
  outstanding_[slot->req_id] = slot;
  ByteWriter w;
  w.put(rec.id);
  w.put(first);
  w.put(count);
  w.put(slot->req_id);
  w.put(request_epoch());
  rt_send(owner, detail::rt_kind(detail::RtMsg::kGetBlock),
          std::move(w).take());
  ++counters_.blocks_fetched;
  wait_fetch(*slot);
  // Unbundled single-element fetch: park the payload in the phase arena so
  // view() pointers stay valid until commit.
  unbundled_arena_.push_back(std::move(slot->data));
  return elem_of(unbundled_arena_.back());
}

std::shared_ptr<NodeRuntime::FetchSlot> NodeRuntime::issue_block_fetch(
    const detail::ArrayRecord& rec, int owner, uint64_t first, uint64_t count,
    bool prefetch) {
  auto slot = std::make_shared<FetchSlot>(*engine_);
  slot->cache_on_arrival = true;
  slot->prefetched = prefetch;
  slot->key = BlockKey{
      rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | first};
  slot->record = &arrays_[rec.id];
  slot->block_slot = static_cast<uint64_t>(owner) * rec.blocks_per_chunk +
                     first / rec.block_elems;
  slot->req_id = next_req_id();
  outstanding_[slot->req_id] = slot;
  pending_blocks_[slot->key] = slot;
  if (tracer_) [[unlikely]] {
    trace_rec(trace::EventKind::kFetchIssued, rec.id, slot->key.block,
              slot->req_id, prefetch ? trace::kFlagBit0 : 0);
  }
  if (opts_.batch_fetches) {
    // Queue instead of sending: requests issued while this core
    // miss-switches through ready VPs (and the lookahead they trigger)
    // coalesce per owner, shipped by flush_fetch_backlog at the latest
    // right before the requester parks.
    auto& q = peer(owner).fetch_backlog;
    if (q.empty()) backlog_owners_.push_back(owner);
    q.push_back(QueuedFetch{rec.id, first, count, slot->req_id,
                            request_epoch(), prefetch});
    backlog_nonempty_ = true;
  } else {
    ByteWriter w;
    w.put(rec.id);
    w.put(first);
    w.put(count);
    w.put(slot->req_id);
    w.put(request_epoch());
    rt_send(owner,
            detail::rt_kind(prefetch ? detail::RtMsg::kPrefetchBlock
                                     : detail::RtMsg::kGetBlock),
            std::move(w).take());
  }
  ++counters_.blocks_fetched;
  if (prefetch) ++counters_.prefetch_issued;
  return slot;
}

void NodeRuntime::flush_fetch_backlog() {
  if (!backlog_nonempty_) return;
  // Swap the owner list out first: rt_send advances virtual time and may
  // switch fibers, and a resumed fiber can queue new fetches (which must
  // not be lost or double-flushed).
  std::vector<int> owners = std::move(backlog_owners_);
  backlog_owners_.clear();
  backlog_nonempty_ = false;
  for (const int owner : owners) {
    std::vector<QueuedFetch> q = std::move(peer(owner).fetch_backlog);
    peer(owner).fetch_backlog.clear();
    if (q.empty()) continue;
    if (q.size() == 1) {
      // A singleton list message would be larger than the plain request;
      // keep the legacy form (see wire.hpp's >= 2 rule).
      const QueuedFetch& f = q[0];
      ByteWriter w;
      w.put(f.array);
      w.put(f.first);
      w.put(f.count);
      w.put(f.req_id);
      w.put(f.epoch);
      rt_send(owner,
              detail::rt_kind(f.prefetch ? detail::RtMsg::kPrefetchBlock
                                         : detail::RtMsg::kGetBlock),
              std::move(w).take());
      continue;
    }
    ByteWriter w;
    w.put(q[0].epoch);
    w.put(static_cast<uint32_t>(q.size()));
    for (const QueuedFetch& f : q) {
      // All entries between two flushes come from one phase scope, so
      // they share the request epoch (the list carries it once).
      PPM_CHECK(f.epoch == q[0].epoch, "mixed epochs in one fetch flush");
      w.put(f.array);
      w.put(f.first);
      w.put(f.count);
      w.put(f.req_id);
      w.put<uint8_t>(f.prefetch ? 1 : 0);
    }
    rt_send(owner, detail::rt_kind(detail::RtMsg::kGetBlockList),
            std::move(w).take());
  }
}

void NodeRuntime::wait_fetch(FetchSlot& slot) {
  if (opts_.overlap_reads) {
    // Miss-switching: instead of idling for the round trip, run other
    // ready VPs of this phase on the same fiber. Each run_one_ready_vp
    // call executes one full VP body (which may itself miss and nest).
    while (!slot.done && run_one_ready_vp()) {
    }
  }
  if (slot.done) return;
  // Invariant: never park with unsent fetch requests — this slot's own
  // request may still be sitting in the backlog.
  flush_fetch_backlog();
  const int64_t t0 = engine_->now_ns();
  slot.waiters.wait([&] { return slot.done; });
  const int64_t stalled = engine_->now_ns() - t0;
  if (stalled > 0) {
    counters_.fetch_stall_ns += static_cast<uint64_t>(stalled);
    if (tracer_) [[unlikely]] {
      trace_rec(trace::EventKind::kFetchStall, slot.req_id, 0,
                static_cast<uint64_t>(t0));
    }
  }
}

bool NodeRuntime::claim_one_vp(uint32_t fid, uint64_t* out_vp) {
  if (options().schedule == SchedulePolicy::kStatic) {
    if (fid >= static_range_.size()) return false;
    StaticRange& r = static_range_[fid];
    if (r.next >= r.end) return false;
    *out_vp = r.next++;
    return true;
  }
  if (task_.next >= task_.k_local) return false;
  *out_vp = task_.next++;
  return true;
}

bool NodeRuntime::run_one_ready_vp() {
  if (task_.body == nullptr || phase_scope_ == PhaseScope::kNone) {
    return false;  // reads outside phases have nothing to switch to
  }
  const uint32_t fid = engine_->current_fiber_id();
  if (fid >= vp_by_fiber_.size() || vp_by_fiber_[fid] == nullptr) {
    return false;  // not a worker fiber mid-phase
  }
  if (fid >= miss_depth_.size()) miss_depth_.resize(fid + 1, 0);
  if (miss_depth_[fid] >= opts_.overlap_max_depth) return false;
  uint64_t i = 0;
  if (!claim_one_vp(fid, &i)) return false;
  Vp* outer = vp_by_fiber_[fid];
  ++miss_depth_[fid];
  Vp vp;
  vp.node_rank_ = i;
  vp.global_rank_ = task_.k_offset + i;
  vp_by_fiber_[fid] = &vp;
  const int64_t batch_start_ns = tracer_ ? engine_->now_ns() : 0;
  (*task_.body)(vp);
  if (tracer_) [[unlikely]] {
    // A miss-switched VP: runs nested inside another VP's remote-read
    // stall on the same core (flag bit 0 marks the nesting).
    trace_rec(trace::EventKind::kVpBatch, i, i + 1,
              static_cast<uint64_t>(batch_start_ns), trace::kFlagBit0, 1);
  }
  vp_by_fiber_[fid] = outer;
  --miss_depth_[fid];
  return true;
}

void NodeRuntime::maybe_stream_prefetch(const detail::ArrayRecord& rec,
                                        int owner, uint64_t first,
                                        uint64_t owner_len) {
  const uint32_t lookahead = opts_.prefetch_lookahead_blocks;
  if (lookahead == 0 || first == 0) return;
  // Fetch ahead only when the previous adjacent block was already wanted —
  // a detected forward stream. Random access then rarely pays for blocks
  // it will never touch.
  const BlockKey prev{rec.id,
                      (static_cast<uint64_t>(owner) << kBlockOwnerShift) |
                          (first - rec.block_elems)};
  if (!block_cache_.contains(prev) && !pending_blocks_.contains(prev)) {
    return;
  }
  uint64_t next = first + rec.block_elems;
  for (uint32_t j = 0; j < lookahead && next < owner_len;
       ++j, next += rec.block_elems) {
    const BlockKey key{
        rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | next};
    if (block_cache_.contains(key) || pending_blocks_.contains(key)) {
      continue;
    }
    issue_block_fetch(rec, owner, next,
                      std::min(rec.block_elems, owner_len - next),
                      /*prefetch=*/true);
  }
}

void NodeRuntime::maybe_strided_prefetch(const detail::ArrayRecord& rec,
                                         uint64_t index) {
  const uint32_t lookahead = opts_.prefetch_lookahead_blocks;
  if (!opts_.strided_prefetch || lookahead == 0) return;
  if (rec.id >= stride_state_.size()) stride_state_.resize(rec.id + 1);
  StrideState& st = stride_state_[rec.id];
  const uint64_t prev = st.last_index;
  const int64_t prev_delta = st.delta;
  st.last_index = index;
  if (prev == ~uint64_t{0}) return;  // first miss on this array
  const int64_t delta =
      static_cast<int64_t>(index) - static_cast<int64_t>(prev);
  st.delta = delta;
  // Prefetch only on a CONFIRMED stride (two equal consecutive deltas):
  // one speculative fetch per random miss would flood the wire. Strides
  // shorter than a block are the adjacent-stream detector's job.
  if (delta == 0 || delta != prev_delta) return;
  const uint64_t mag = static_cast<uint64_t>(delta < 0 ? -delta : delta);
  if (mag < rec.block_elems) return;
  int64_t next = static_cast<int64_t>(index);
  for (uint32_t j = 0; j < lookahead; ++j) {
    next += delta;
    if (next < 0 || next >= static_cast<int64_t>(rec.n)) return;
    const uint64_t g = static_cast<uint64_t>(next);
    const int owner = rec.owner_of(g);
    if (owner == node_) continue;
    const uint64_t llocal = rec.local_of(g);
    const uint64_t first = (llocal / rec.block_elems) * rec.block_elems;
    const BlockKey key{
        rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | first};
    if (block_cache_.contains(key) || pending_blocks_.contains(key)) {
      continue;
    }
    const uint64_t olen = rec.owner_len(owner);
    issue_block_fetch(rec, owner, first,
                      std::min(rec.block_elems, olen - first),
                      /*prefetch=*/true);
  }
}

void NodeRuntime::ensure_block_table(detail::ArrayRecord& rec) {
  if (rec.remote_block_ptr.empty() && rec.blocks_per_chunk != 0) {
    rec.remote_block_ptr.assign(
        rec.blocks_per_chunk * static_cast<uint64_t>(node_count()), nullptr);
  }
}

void NodeRuntime::publish_block(const detail::ArrayRecord& rec,
                                const BlockKey& key, const Bytes& cached) {
  auto& mut = arrays_[rec.id];
  const uint64_t owner = key.block >> kBlockOwnerShift;
  const uint64_t first = key.block & ((uint64_t{1} << kBlockOwnerShift) - 1);
  ensure_block_table(mut);
  if (!mut.remote_block_ptr.empty()) {
    mut.remote_block_ptr[owner * mut.blocks_per_chunk +
                         first / mut.block_elems] = cached.data();
  }
  if (prefetched_keys_.erase(key) != 0) {
    ++counters_.prefetch_hits;
    if (tracer_) [[unlikely]] {
      trace_rec(trace::EventKind::kPrefetchHit, rec.id, key.block);
    }
    // The consumer just reached a prefetched block: keep the stream one
    // block ahead (demand misses never happen again on a perfect stream,
    // so this touch is the only point that can extend it).
    maybe_stream_prefetch(rec, static_cast<int>(owner), first,
                          rec.owner_len(static_cast<int>(owner)));
  }
}

void NodeRuntime::prefetch_elems(uint32_t id,
                                 std::span<const uint64_t> indices) {
  const auto& rec = array(id);
  if (!rec.global || !options().bundle_reads || rec.block_elems == 0) return;
  for (const uint64_t index : indices) {
    PPM_CHECK(index < rec.n, "prefetch index %llu out of range (size %llu)",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(rec.n));
    const int owner = rec.owner_of(index);
    if (owner == node_) continue;
    const uint64_t llocal = rec.local_of(index);
    const uint64_t first = (llocal / rec.block_elems) * rec.block_elems;
    const BlockKey key{
        rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | first};
    if (block_cache_.contains(key) || pending_blocks_.contains(key)) {
      continue;
    }
    const uint64_t olen = rec.owner_len(owner);
    issue_block_fetch(rec, owner, first,
                      std::min(rec.block_elems, olen - first),
                      /*prefetch=*/true);
  }
  // Ship the sweep's requests now: lookahead only pays off if the fetches
  // are in flight while the consumer computes.
  flush_fetch_backlog();
}

void NodeRuntime::prefetch_range(uint32_t id, uint64_t lo, uint64_t hi) {
  const auto& rec = array(id);
  if (!rec.global || !options().bundle_reads || rec.block_elems == 0) return;
  if (lo >= hi) return;
  PPM_CHECK(hi <= rec.n, "prefetch range [%llu, %llu) out of range (size "
            "%llu)",
            static_cast<unsigned long long>(lo),
            static_cast<unsigned long long>(hi),
            static_cast<unsigned long long>(rec.n));
  const auto want = [&](int owner, uint64_t first, uint64_t olen) {
    const BlockKey key{
        rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | first};
    if (block_cache_.contains(key) || pending_blocks_.contains(key)) return;
    issue_block_fetch(rec, owner, first,
                      std::min(rec.block_elems, olen - first),
                      /*prefetch=*/true);
  };
  if (rec.dist == Distribution::kCyclic && rec.mig_block_elems == 0) {
    // Round-robin layout: every owner holds an interleaved share of
    // [lo, hi); walk each remote owner's local block range directly.
    const uint64_t p = static_cast<uint64_t>(rec.nodes);
    for (int owner = 0; owner < rec.nodes; ++owner) {
      if (owner == node_) continue;
      const uint64_t o = static_cast<uint64_t>(owner);
      if (hi <= o) continue;               // owner's first element is o
      const uint64_t last = (hi - 1 - o) / p;  // largest local idx in range
      const uint64_t lfirst = lo > o ? (lo - o + p - 1) / p : 0;
      if (lfirst > last) continue;
      const uint64_t olen = rec.owner_len(owner);
      for (uint64_t b = (lfirst / rec.block_elems) * rec.block_elems;
           b <= last; b += rec.block_elems) {
        want(owner, b, olen);
      }
    }
    flush_fetch_backlog();
    return;
  }
  // Contiguous layouts (kBlock chunks, kAdaptive migration blocks): walk
  // the range one cache block at a time — O(range / block_elems), not
  // O(range) — skipping whole owned chunks.
  uint64_t g = lo;
  while (g < hi) {
    if (rec.mig_block_elems != 0) {
      const uint64_t mb_end =
          (g / rec.mig_block_elems + 1) * rec.mig_block_elems;
      const int owner = rec.owner_of(g);
      if (owner != node_) {
        const uint64_t llocal = rec.local_of(g);
        want(owner, (llocal / rec.block_elems) * rec.block_elems,
             rec.owner_len(owner));
      }
      g = mb_end;
      continue;
    }
    const int owner = rec.owner_of(g);
    const uint64_t chunk_end = (static_cast<uint64_t>(owner) + 1) * rec.chunk;
    if (owner == node_) {
      g = chunk_end;
      continue;
    }
    const uint64_t llocal = rec.local_of(g);
    const uint64_t first = (llocal / rec.block_elems) * rec.block_elems;
    want(owner, first, rec.owner_len(owner));
    g = std::min(chunk_end,
                 static_cast<uint64_t>(owner) * rec.chunk + first +
                     rec.block_elems);
  }
  flush_fetch_backlog();
}

void NodeRuntime::gather_elems(uint32_t id,
                               std::span<const uint64_t> indices,
                               std::byte* out) {
  const auto& rec = array(id);
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(
        opts_.access_overhead_ns *
        static_cast<int64_t>(std::max<size_t>(1, indices.size() / 8)));
  }
  if (validator_) [[unlikely]] validator_->on_read(indices.size());
  // Partition by owner; local indices are copied directly, remote owners
  // each get exactly one indexed-get request (explicit bundling). Owners
  // are dense small integers, so a flat vector beats an ordered map.
  struct Group {
    std::vector<uint64_t> positions;
    std::vector<uint64_t> indices;  // owner-local coordinates
  };
  std::vector<Group> groups(static_cast<size_t>(node_count()));
  for (size_t pos = 0; pos < indices.size(); ++pos) {
    const uint64_t index = indices[pos];
    PPM_CHECK(index < rec.n, "gather index %llu out of range",
              static_cast<unsigned long long>(index));
    note_access(rec, index);
    const int owner = rec.global ? rec.owner_of(index) : node_;
    if (owner == node_) {
      const uint64_t local = rec.global ? rec.local_of(index) : index;
      std::memcpy(out + pos * rec.ops.size,
                  rec.storage.data() + local * rec.ops.size, rec.ops.size);
    } else {
      auto& g = groups[static_cast<size_t>(owner)];
      g.positions.push_back(pos);
      g.indices.push_back(rec.local_of(index));
    }
  }
  struct Wait {
    const Group* group;
    std::shared_ptr<FetchSlot> slot;
  };
  std::vector<Wait> waits;
  for (int owner = 0; owner < node_count(); ++owner) {
    const Group& group = groups[static_cast<size_t>(owner)];
    if (group.positions.empty()) continue;
    auto slot = std::make_shared<FetchSlot>(*engine_);
    slot->req_id = next_req_id();
    outstanding_[slot->req_id] = slot;
    ByteWriter w;
    w.put(rec.id);
    w.put(slot->req_id);
    w.put(request_epoch());
    w.put_vector(group.indices);
    rt_send(owner, detail::rt_kind(detail::RtMsg::kGetIndexed),
            std::move(w).take());
    ++counters_.blocks_fetched;
    waits.push_back(Wait{&group, std::move(slot)});
  }
  for (auto& wt : waits) {
    // The service fiber erases each request from outstanding_ by its
    // recorded id when the response arrives; no cleanup scan needed here.
    wait_fetch(*wt.slot);
    PPM_CHECK(wt.slot->data.size() == wt.group->indices.size() * rec.ops.size,
              "short indexed-get response");
    for (size_t j = 0; j < wt.group->positions.size(); ++j) {
      std::memcpy(out + wt.group->positions[j] * rec.ops.size,
                  wt.slot->data.data() + j * rec.ops.size, rec.ops.size);
    }
  }
}

void NodeRuntime::read_span(uint32_t id, uint64_t first, uint64_t count,
                            std::byte* out) {
  const auto& rec = array(id);
  PPM_CHECK(count <= rec.n && first <= rec.n - count,
            "read span [%llu, +%llu) out of range (size %llu)",
            static_cast<unsigned long long>(first),
            static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(rec.n));
  if (count == 0) return;
  // Cyclic multi-node layouts alternate owners every element — there is
  // no contiguous run to exploit; fall back to the per-element path
  // (which does its own accounting).
  if (rec.global && rec.dist == Distribution::kCyclic && node_count() > 1 &&
      rec.mig_block_elems == 0) {
    for (uint64_t j = 0; j < count; ++j) {
      read_elem(id, first + j, out + j * rec.ops.size);
    }
    return;
  }
  // Bulk accounting: overhead at the gather rate (ownership and bounds
  // resolve once per segment, not per element), one validator count.
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(
        opts_.access_overhead_ns *
        static_cast<int64_t>(std::max<uint64_t>(1, count / 8)));
  }
  if (validator_) [[unlikely]] validator_->on_read(count);
  const uint32_t esz = rec.ops.size;
  if (!rec.global) {
    std::memcpy(out, rec.storage.data() + first * esz, count * esz);
    return;
  }
  const uint64_t end = first + count;
  uint64_t g = first;
  while (g < end) {
    const int owner = rec.owner_of(g);
    const uint64_t seg_end =
        rec.mig_block_elems != 0
            ? std::min(end, (g / rec.mig_block_elems + 1) *
                                rec.mig_block_elems)
            : std::min(end, (static_cast<uint64_t>(owner) + 1) * rec.chunk);
    const uint64_t len = seg_end - g;
    if (!rec.access_count.empty()) [[unlikely]] {
      rec.access_count[g / rec.mig_block_elems] += len;
    }
    std::byte* dst = out + (g - first) * esz;
    if (owner == node_) {
      std::memcpy(dst, rec.storage.data() + rec.local_of(g) * esz,
                  len * esz);
      g = seg_end;
      continue;
    }
    if (!options().bundle_reads || rec.block_elems == 0) {
      for (uint64_t j = 0; j < len; ++j) {
        std::memcpy(dst + j * esz, remote_ref(rec, g + j), esz);
      }
      g = seg_end;
      continue;
    }
    // Remote contiguous run: the segment's owner-local indices
    // [ll, ll+len) are contiguous. Pass 1 queues demand fetches for every
    // missing cache block (they coalesce into one list flush); pass 2
    // waits where needed and copies block portions.
    const uint64_t ll = rec.local_of(g);
    const uint64_t olen = rec.owner_len(owner);
    const uint64_t be = rec.block_elems;
    for (uint64_t b = (ll / be) * be; b < ll + len; b += be) {
      const BlockKey key{
          rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | b};
      if (block_cache_.contains(key) || pending_blocks_.contains(key)) {
        continue;
      }
      issue_block_fetch(rec, owner, b, std::min(be, olen - b),
                        /*prefetch=*/false);
    }
    for (uint64_t b = (ll / be) * be; b < ll + len; b += be) {
      const BlockKey key{
          rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | b};
      auto itc = block_cache_.find(key);
      if (itc == block_cache_.end()) {
        const auto itp = pending_blocks_.find(key);
        PPM_CHECK(itp != pending_blocks_.end(),
                  "bulk read lost its in-flight block");
        auto slot = itp->second;  // keep alive across the wait
        wait_fetch(*slot);
        itc = block_cache_.find(key);
        PPM_CHECK(itc != block_cache_.end(),
                  "bulk read fetch did not populate the block cache");
      } else {
        counters_.reads_from_cache +=
            std::min(ll + len, b + be) - std::max(ll, b);
      }
      publish_block(rec, key, itc->second);
      const uint64_t lo = std::max(ll, b);
      const uint64_t hi = std::min(ll + len, b + be);
      std::memcpy(dst + (lo - ll) * esz,
                  itc->second.data() + (lo - b) * esz, (hi - lo) * esz);
    }
    g = seg_end;
  }
}

void NodeRuntime::write_span(uint32_t id, uint64_t first, uint64_t count,
                             const std::byte* values, detail::WriteOp op) {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  auto& rec = arrays_[id];
  PPM_CHECK(count <= rec.n && first <= rec.n - count,
            "write span [%llu, +%llu) out of range (size %llu)",
            static_cast<unsigned long long>(first),
            static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(rec.n));
  if (count == 0) return;
  const uint32_t esz = rec.ops.size;
  // Cyclic multi-node: a range entry would degenerate to one element per
  // owner switch — the per-element path (with its own accounting) is the
  // honest shape there.
  if (rec.global && rec.dist == Distribution::kCyclic && node_count() > 1 &&
      rec.mig_block_elems == 0) {
    for (uint64_t j = 0; j < count; ++j) {
      write_elem(id, first + j, values + j * esz, op);
    }
    return;
  }
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(
        opts_.access_overhead_ns *
        static_cast<int64_t>(std::max<uint64_t>(1, count / 8)));
  }
  if (phase_scope_ == PhaseScope::kNone) {
    // Outside phases only the node program runs; writes apply
    // immediately, and remote global writes are not allowed (same rule
    // as write_elem).
    for (uint64_t j = 0; j < count; ++j) {
      const uint64_t g = first + j;
      note_access(rec, g);
      if (rec.global) {
        PPM_CHECK(rec.owner_of(g) == node_,
                  "write to remote global element outside a phase");
        rec.apply_op(rec.storage.data() + rec.local_of(g) * esz,
                     values + j * esz, op);
      } else {
        rec.apply_op(rec.storage.data() + g * esz, values + j * esz, op);
      }
    }
    return;
  }
  PPM_CHECK(!(phase_scope_ == PhaseScope::kNode && rec.global),
            "global shared write inside a node phase");
  Vp* vp = current_vp();
  PPM_CHECK(vp != nullptr, "shared write inside a phase but outside a VP");
  counters_.write_entries += count;
  if (validator_) [[unlikely]] validator_->on_write(count);
  const uint64_t end = first + count;
  uint64_t g = first;
  while (g < end) {
    const int owner = rec.global ? rec.owner_of(g) : node_;
    uint64_t seg_end = end;
    if (rec.global) {
      seg_end = rec.mig_block_elems != 0
                    ? std::min(end, (g / rec.mig_block_elems + 1) *
                                        rec.mig_block_elems)
                    : std::min(end,
                               (static_cast<uint64_t>(owner) + 1) * rec.chunk);
    }
    const uint32_t len = static_cast<uint32_t>(seg_end - g);
    if (!rec.access_count.empty()) [[unlikely]] {
      rec.access_count[g / rec.mig_block_elems] += len;
    }
    // One range entry per owner segment: ONE (vp_rank, seq) pair for the
    // whole run, committing as a unit at that position — bit-identical
    // to len consecutive scalar writes (a VP's entries apply in seq
    // order either way).
    const detail::WireEntryHeader hdr{
        id,
        static_cast<uint8_t>(static_cast<uint8_t>(op) | detail::kOpRangeBit),
        g, vp->global_rank_, vp->next_seq_++};
    const std::byte* src = values + (g - first) * esz;
    if (rec.global && owner != node_) {
      ByteWriter& buf = bundle_buffer(owner);
      detail::put_range_entry(buf, hdr, src, len, esz);
      if (opts_.combine_writes) {
        // Later scalar writes must not fold into entries buffered BEFORE
        // this range: the fold keeps the old seq, which would commit
        // before the range instead of after. Dropping the map forfeits
        // combining across the range, never correctness.
        reset_combine_map(owner);
      }
      maybe_eager_flush(owner);
    } else {
      detail::put_range_entry(local_log_, hdr, src, len, esz);
    }
    g = seg_end;
  }
}

void NodeRuntime::write_elem(uint32_t id, uint64_t index,
                             const std::byte* value, detail::WriteOp op) {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  auto& rec = arrays_[id];
  PPM_CHECK(index < rec.n, "write index %llu out of range (size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(opts_.access_overhead_ns);
  }
  note_access(rec, index);

  if (phase_scope_ == PhaseScope::kNone) {
    // Outside phases only the node program runs; writes apply immediately.
    // Remote global writes are not allowed here — data exchange between
    // nodes happens through phases.
    if (rec.global) {
      PPM_CHECK(rec.owner_of(index) == node_,
                "write to remote global element outside a phase");
      rec.apply_op(rec.storage.data() + rec.local_of(index) * rec.ops.size,
                   value, op);
    } else {
      rec.apply_op(rec.storage.data() + index * rec.ops.size, value, op);
    }
    return;
  }

  PPM_CHECK(!(phase_scope_ == PhaseScope::kNode && rec.global),
            "global shared write inside a node phase");
  Vp* vp = current_vp();
  PPM_CHECK(vp != nullptr, "shared write inside a phase but outside a VP");
  detail::WireEntryHeader hdr{id, static_cast<uint8_t>(op), index,
                              vp->global_rank_, vp->next_seq_++};
  ++counters_.write_entries;
  if (validator_) [[unlikely]] validator_->on_write();

  if (rec.global) {
    const int owner = rec.owner_of(index);
    if (owner != node_) {
      if (opts_.combine_writes && try_combine(owner, hdr, value, rec)) {
        return;  // folded into a buffered entry; nothing new to flush
      }
      ByteWriter& buf = bundle_buffer(owner);
      const size_t offset = buf.size();
      detail::put_entry(buf, hdr, value, rec.ops.size);
      if (opts_.combine_writes) {
        peer(owner).combine[ElemKey{id, index}] =
            CombineSlot{offset, hdr.vp_rank, hdr.op};
      }
      maybe_eager_flush(owner);
      return;
    }
  }
  detail::put_entry(local_log_, hdr, value, rec.ops.size);
}

bool NodeRuntime::try_combine(int dest_node,
                              const detail::WireEntryHeader& hdr,
                              const std::byte* value,
                              const detail::ArrayRecord& rec) {
  auto& map = peer(dest_node).combine;
  const auto it = map.find(ElemKey{hdr.array_id, hdr.index});
  if (it == map.end()) return false;
  CombineSlot& slot = it->second;
  // Only the element's LAST buffered entry is tracked, so combining into
  // it is safe exactly when this write extends the same VP's same-op run:
  // commit applies a VP's entries contiguously in seq order, no other
  // entry for this element sits between the buffered one and this write,
  // and writes by other VPs order entirely before or after this VP's run
  // by rank either way. The merged entry keeps the OLD seq (its committed
  // position) and absorbs the new value.
  if (slot.vp_rank != hdr.vp_rank || slot.op != hdr.op) {
    return false;  // caller appends and re-points the map at the new entry
  }
  std::byte* entry_value = dest_buffer(dest_node).data() + slot.offset +
                           detail::kEntryHeaderBytes;
  if (static_cast<detail::WriteOp>(hdr.op) == detail::WriteOp::kSet) {
    // Superseded set: the old entry's slot now carries the newest value.
    std::memcpy(entry_value, value, rec.ops.size);
  } else {
    // Same-VP accumulate run: pre-reduce into the buffered value
    // (apply_op so user slots fold through their registered thunk).
    rec.apply_op(entry_value, value, static_cast<detail::WriteOp>(hdr.op));
  }
  ++counters_.entries_combined;
  return true;
}

// ---------------------------------------------------------------------------
// Owner-side accumulate (sender side)
// ---------------------------------------------------------------------------

void NodeRuntime::accumulate_elem(uint32_t id, uint64_t index,
                                  const std::byte* value,
                                  detail::WriteOp op) {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  PPM_CHECK(detail::is_accum_op(op),
            "accumulate() requires an accumulate op, not set");
  auto& rec = arrays_[id];
  PPM_CHECK(index < rec.n, "accumulate index %llu out of range (size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  // Local elements, node-shared arrays, writes outside global phases, and
  // the knob being off all take the plain deferred-write path (which does
  // its own accounting) — that path is the equivalence oracle the stress
  // harness compares against.
  if (!opts_.owner_side_accumulate || phase_scope_ != PhaseScope::kGlobal ||
      !rec.global || rec.owner_of(index) == node_) {
    write_elem(id, index, value, op);
    return;
  }
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(opts_.access_overhead_ns);
  }
  note_access(rec, index);
  Vp* vp = current_vp();
  PPM_CHECK(vp != nullptr, "shared write inside a phase but outside a VP");
  ++counters_.write_entries;
  if (validator_) [[unlikely]] validator_->on_write();
  const int owner = rec.owner_of(index);
  // 12 bytes smaller per item than the kBundle scalar entry it replaces
  // (no vp_rank + seq on the wire).
  counters_.reduction_bytes_saved += 12;
  if (opts_.combine_writes &&
      try_combine_accum(owner, id, index, value, op, rec)) {
    return;
  }
  PeerState& ps = peer(owner);
  ByteWriter& buf = accum_list_buffer(owner);
  const size_t offset = buf.size();
  buf.put(id);
  buf.put(static_cast<uint8_t>(op));
  buf.put(index);
  buf.put_raw(value, rec.ops.size);
  ++ps.accum_list_items;
  if (opts_.combine_writes) {
    ps.accum_combine[ElemKey{id, index}] =
        CombineSlot{offset, vp->global_rank_, static_cast<uint8_t>(op)};
  }
  if (options().eager_flush &&
      ps.accum_list.size() + ps.accum_block.size() >=
          options().flush_threshold_bytes) {
    flush_accum_buffers(owner);
  }
}

void NodeRuntime::accumulate_span(uint32_t id, uint64_t first,
                                  uint64_t count, const std::byte* values,
                                  detail::WriteOp op) {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  PPM_CHECK(detail::is_accum_op(op),
            "accumulate_n() requires an accumulate op, not set");
  auto& rec = arrays_[id];
  PPM_CHECK(count <= rec.n && first <= rec.n - count,
            "accumulate span [%llu, +%llu) out of range (size %llu)",
            static_cast<unsigned long long>(first),
            static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(rec.n));
  if (count == 0) return;
  const uint32_t esz = rec.ops.size;
  if (!opts_.owner_side_accumulate || phase_scope_ != PhaseScope::kGlobal ||
      !rec.global) {
    write_span(id, first, count, values, op);
    return;
  }
  // Cyclic multi-node: a range record would degenerate to one element per
  // owner switch — route elementwise (mirrors write_span's rule).
  if (rec.dist == Distribution::kCyclic && node_count() > 1 &&
      rec.mig_block_elems == 0) {
    for (uint64_t j = 0; j < count; ++j) {
      accumulate_elem(id, first + j, values + j * esz, op);
    }
    return;
  }
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(
        opts_.access_overhead_ns *
        static_cast<int64_t>(std::max<uint64_t>(1, count / 8)));
  }
  Vp* vp = current_vp();
  PPM_CHECK(vp != nullptr, "shared write inside a phase but outside a VP");
  counters_.write_entries += count;
  if (validator_) [[unlikely]] validator_->on_write(count);
  const uint64_t end = first + count;
  uint64_t g = first;
  while (g < end) {
    const int owner = rec.owner_of(g);
    const uint64_t seg_end =
        rec.mig_block_elems != 0
            ? std::min(end,
                       (g / rec.mig_block_elems + 1) * rec.mig_block_elems)
            : std::min(end, (static_cast<uint64_t>(owner) + 1) * rec.chunk);
    const uint32_t len = static_cast<uint32_t>(seg_end - g);
    if (!rec.access_count.empty()) [[unlikely]] {
      rec.access_count[g / rec.mig_block_elems] += len;
    }
    const std::byte* src = values + (g - first) * esz;
    if (owner != node_) {
      // One self-delimiting kAccumBlock record per owner segment: 12
      // bytes smaller than the kBundle range entry it replaces.
      counters_.reduction_bytes_saved += 12;
      PeerState& ps = peer(owner);
      ByteWriter& buf = accum_block_buffer(owner);
      buf.put(id);
      buf.put(static_cast<uint8_t>(op));
      buf.put(g);
      buf.put(len);
      buf.put_raw(src, static_cast<size_t>(len) * esz);
      if (opts_.combine_writes) {
        // Later scalar accumulates must not fold into list items buffered
        // BEFORE this record — the fold would reorder them past it.
        // Dropping the map forfeits combining, never correctness.
        auto& map = ps.accum_combine;
        if (!map.empty()) map.clear();
      }
      if (options().eager_flush &&
          ps.accum_list.size() + ps.accum_block.size() >=
              options().flush_threshold_bytes) {
        flush_accum_buffers(owner);
      }
    } else {
      // Local segment: plain deferred range entry (same as write_span's
      // local arm — applies in the ordered batch before any owner-side
      // accums, which is exactly the fetch path's position for it).
      const detail::WireEntryHeader hdr{
          id,
          static_cast<uint8_t>(static_cast<uint8_t>(op) |
                               detail::kOpRangeBit),
          g, vp->global_rank_, vp->next_seq_++};
      detail::put_range_entry(local_log_, hdr, src, len, esz);
    }
    g = seg_end;
  }
}

bool NodeRuntime::try_combine_accum(int dest_node, uint32_t array,
                                    uint64_t index, const std::byte* value,
                                    detail::WriteOp op,
                                    const detail::ArrayRecord& rec) {
  PeerState& ps = peer(dest_node);
  const auto it = ps.accum_combine.find(ElemKey{array, index});
  if (it == ps.accum_combine.end()) return false;
  const CombineSlot& slot = it->second;
  Vp* vp = current_vp();
  // Same rule as try_combine: fold only when this accumulate extends the
  // same VP's same-op run on the element's LAST buffered item — per-source
  // item order (the owner's apply order) is then preserved exactly.
  if (slot.vp_rank != vp->global_rank_ ||
      slot.op != static_cast<uint8_t>(op)) {
    return false;
  }
  std::byte* item_value = ps.accum_list.data() + slot.offset +
                          sizeof(uint32_t) + sizeof(uint8_t) +
                          sizeof(uint64_t);
  rec.apply_op(item_value, value, op);
  ++counters_.entries_combined;
  return true;
}

ByteWriter& NodeRuntime::accum_list_buffer(int dest_node) {
  ByteWriter& buf = peer(dest_node).accum_list;
  if (buf.size() == 0) {
    buf.put(epoch_);
    buf.put<uint32_t>(0);  // item count, patched at flush
  }
  return buf;
}

ByteWriter& NodeRuntime::accum_block_buffer(int dest_node) {
  ByteWriter& buf = peer(dest_node).accum_block;
  if (buf.size() == 0) buf.put(epoch_);
  return buf;
}

void NodeRuntime::flush_accum_buffers(int dest_node) {
  PeerState& ps = peer(dest_node);
  if (ps.accum_block.size() > kAccumBlockHeaderBytes) {
    if (tracer_) [[unlikely]] {
      trace_rec(trace::EventKind::kAccumFlush,
                static_cast<uint64_t>(dest_node), ps.accum_block.size());
    }
    rt_send(dest_node, detail::rt_kind(detail::RtMsg::kAccumBlock),
            std::move(ps.accum_block).take());
    ps.accum_block = ByteWriter(pool_take());
  }
  if (ps.accum_list_items > 0) {
    std::memcpy(ps.accum_list.data() + sizeof(uint64_t),
                &ps.accum_list_items, sizeof(uint32_t));
    if (tracer_) [[unlikely]] {
      trace_rec(trace::EventKind::kAccumFlush,
                static_cast<uint64_t>(dest_node), ps.accum_list.size(), 0,
                trace::kFlagBit0);
    }
    rt_send(dest_node, detail::rt_kind(detail::RtMsg::kAccumList),
            std::move(ps.accum_list).take());
    ps.accum_list = ByteWriter(pool_take());
    ps.accum_list_items = 0;
    if (!ps.accum_combine.empty()) ps.accum_combine.clear();
  }
}

void NodeRuntime::register_user_op(uint32_t id, int slot,
                                   detail::UserAccumOp op) {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  PPM_CHECK(slot >= 0 && slot < 3,
            "user accumulate slot %d out of range [0, 3)", slot);
  PPM_CHECK(phase_scope_ == PhaseScope::kNone,
            "register_accum_op must be called outside phases");
  PPM_CHECK(op.apply != nullptr, "register_accum_op needs a function");
  arrays_[id].user_ops[static_cast<size_t>(slot)] = op;
  if (validator_) {
    validator_->on_user_op_registered(
        id,
        static_cast<uint8_t>(static_cast<int>(detail::WriteOp::kUser0) +
                             slot),
        op.commutative);
  }
}

ByteWriter& NodeRuntime::dest_buffer(int dest_node) {
  return peer(dest_node).bundle;
}

ByteWriter& NodeRuntime::bundle_buffer(int dest_node) {
  ByteWriter& buf = peer(dest_node).bundle;
  if (buf.size() == 0) {
    // The fragment header lives inside the buffer from the first entry
    // on: flush_bundle patches the last-flag in place and ships the
    // buffer itself, instead of re-copying the whole payload into a fresh
    // writer per flush. Remote global writes only happen inside global
    // phases, so every entry appended later belongs to this epoch.
    buf.put(epoch_);
    buf.put<uint8_t>(0);
  }
  return buf;
}

void NodeRuntime::flush_bundle(int dest_node, bool last) {
  ByteWriter& buf = bundle_buffer(dest_node);  // header even when empty
  buf.data()[kBundleLastOffset] = static_cast<std::byte>(last ? 1 : 0);
  if (tracer_) [[unlikely]] {
    trace_rec(trace::EventKind::kBundleFlush,
              static_cast<uint64_t>(dest_node), buf.size(), 0,
              last ? trace::kFlagBit0 : 0);
  }
  rt_send(dest_node, detail::rt_kind(detail::RtMsg::kBundle),
          std::move(buf).take());
  ++counters_.bundles_sent;
  // Reseed from the recycled-allocation pool: steady-state flushes then
  // never touch the allocator.
  buf = ByteWriter(pool_take());
  // Buffered-entry offsets died with the shipped payload.
  reset_combine_map(dest_node);
}

Bytes NodeRuntime::pool_take() {
  if (bundle_pool_.empty()) return Bytes{};
  Bytes b = std::move(bundle_pool_.back());
  bundle_pool_.pop_back();
  return b;
}

void NodeRuntime::pool_put(Bytes b) {
  if (b.capacity() != 0 && bundle_pool_.size() < kBundlePoolMax) {
    b.clear();
    bundle_pool_.push_back(std::move(b));
  }
}

void NodeRuntime::reset_combine_map(int dest_node) {
  PeerState& ps = peer(dest_node);
  auto& map = ps.combine;
  size_t& hwm = ps.combine_hwm;
  hwm = std::max(hwm, map.size());
  map.clear();
  // clear() keeps the bucket array in practice, but that is not
  // guaranteed; re-reserving the high-water size makes the no-rehash
  // steady state explicit.
  map.reserve(hwm);
}

void NodeRuntime::maybe_eager_flush(int dest_node) {
  if (!options().eager_flush) return;
  if (dest_buffer(dest_node).size() <
      options().flush_threshold_bytes + kBundleHeaderBytes) {
    return;
  }
  // Stream a fragment now so the transfer overlaps remaining computation.
  flush_bundle(dest_node, /*last=*/false);
}

void NodeRuntime::flush_all_bundles_final() {
  for (int dest = 0; dest < node_count(); ++dest) {
    if (dest == node_) continue;
    // Every peer gets exactly one last-marker fragment per phase (possibly
    // header-only). Accum fragments ship FIRST: the per-(src, dst, port)
    // FIFO then guarantees the owner staged them before the marker that
    // completes its commit quorum.
    if (peers_.find(dest) != peers_.end()) {
      flush_accum_buffers(dest);
      flush_bundle(dest, /*last=*/true);
      continue;
    }
    // Untouched peer: ship the header-only marker without materializing
    // its PeerState — byte-identical on the wire to an empty
    // flush_bundle, same trace event and bundles_sent count.
    ByteWriter w(pool_take());
    w.put(epoch_);
    w.put<uint8_t>(1);
    if (tracer_) [[unlikely]] {
      trace_rec(trace::EventKind::kBundleFlush, static_cast<uint64_t>(dest),
                w.size(), 0, trace::kFlagBit0);
    }
    rt_send(dest, detail::rt_kind(detail::RtMsg::kBundle),
            std::move(w).take());
    ++counters_.bundles_sent;
  }
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

std::pair<uint64_t, uint64_t> NodeRuntime::coordinate_group(
    uint64_t k_local) {
  if (validator_) validator_->on_group_coordinated();
  ByteWriter w;
  w.put(k_local);
  const auto all = allgather_bytes(std::move(w).take());
  uint64_t offset = 0, total = 0;
  for (int n = 0; n < node_count(); ++n) {
    ByteReader r(all[static_cast<size_t>(n)]);
    const auto k = r.get<uint64_t>();
    if (n < node_) offset += k;
    total += k;
  }
  return {offset, total};
}

void NodeRuntime::run_phase(bool global, uint64_t k_local, uint64_t k_offset,
                            const std::function<void(Vp&)>& body) {
  PPM_CHECK(started_, "phase before NodeRuntime::start");
  PPM_CHECK(phase_scope_ == PhaseScope::kNone, "phases cannot nest");
  // Lookahead queued by async reads between phases carries kAsyncEpoch;
  // ship it before this phase queues epoch-stamped requests (one flush
  // never mixes epochs).
  flush_fetch_backlog();
  if (validator_) validator_->on_phase_start(global);
  phase_scope_ = global ? PhaseScope::kGlobal : PhaseScope::kNode;

  // The label set by Env::phase_label applies to exactly this phase.
  const std::string label = std::move(next_phase_label_);
  next_phase_label_.clear();
  if (tracer_) [[unlikely]] {
    trace_rec(trace::EventKind::kPhaseBegin, phase_index_, k_local,
              label.empty() ? 0 : tracer_->intern(label),
              global ? trace::kFlagBit0 : 0);
  }

  PhaseProfile profile;
  const bool profiling = opts_.profile_phases;
  if (profiling) {
    profile.global = global;
    profile.phase_index = phase_index_;
    profile.label = label;
    profile.k_local = k_local;
    profile.start_ns = engine_->now_ns();
    profile.write_entries = counters_.write_entries;
    profile.blocks_fetched = counters_.blocks_fetched;
    profile.bundles_sent = counters_.bundles_sent;
    profile.fetch_stall_ns = counters_.fetch_stall_ns;
    profile.prefetch_hits = counters_.prefetch_hits;
    profile.entries_combined = counters_.entries_combined;
    profile.blocks_migrated = counters_.blocks_migrated;
    profile.migration_bytes = counters_.migration_bytes;
    profile.accums_executed = counters_.accums_executed;
    profile.reduction_bytes_saved = counters_.reduction_bytes_saved;
  }

  task_.body = &body;
  task_.k_local = k_local;
  task_.k_offset = k_offset;
  task_.next = 0;
  const uint64_t cores = static_cast<uint64_t>(cores_per_node());
  task_.chunk = options().chunk_size != 0
                    ? options().chunk_size
                    : std::max<uint64_t>(1, k_local / (cores * 8));
  task_.workers_done = 0;
  ++task_.generation;
  task_cv_->notify_all();

  run_chunks(/*core_index=*/0);
  task_cv_->wait(
      [&] { return task_.workers_done == cores_per_node() - 1; });
  task_.body = nullptr;

  phase_scope_ = PhaseScope::kNone;
  if (profiling) profile.compute_done_ns = engine_->now_ns();
  if (tracer_) [[unlikely]] {
    trace_rec(trace::EventKind::kPhaseComputeDone, phase_index_);
  }
  if (global) {
    commit_global();
    ++counters_.global_phases;
  } else {
    commit_node();
    ++counters_.node_phases;
  }
  if (tracer_) [[unlikely]] {
    trace_rec(trace::EventKind::kPhaseCommitted, phase_index_);
  }
  ++phase_index_;
  if (profiling) {
    profile.committed_ns = engine_->now_ns();
    profile.write_entries = counters_.write_entries - profile.write_entries;
    profile.blocks_fetched =
        counters_.blocks_fetched - profile.blocks_fetched;
    profile.bundles_sent = counters_.bundles_sent - profile.bundles_sent;
    profile.fetch_stall_ns =
        counters_.fetch_stall_ns - profile.fetch_stall_ns;
    profile.prefetch_hits = counters_.prefetch_hits - profile.prefetch_hits;
    profile.entries_combined =
        counters_.entries_combined - profile.entries_combined;
    profile.blocks_migrated =
        counters_.blocks_migrated - profile.blocks_migrated;
    profile.migration_bytes =
        counters_.migration_bytes - profile.migration_bytes;
    profile.accums_executed =
        counters_.accums_executed - profile.accums_executed;
    profile.reduction_bytes_saved =
        counters_.reduction_bytes_saved - profile.reduction_bytes_saved;
    phase_profiles_.push_back(profile);
  }
}

void NodeRuntime::run_chunks(int core_index) {
  const uint64_t k = task_.k_local;
  if (k == 0) return;
  const uint32_t fid = engine_->current_fiber_id();
  Vp vp;
  if (fid >= vp_by_fiber_.size()) vp_by_fiber_.resize(fid + 1, nullptr);
  vp_by_fiber_[fid] = &vp;

  auto run_range = [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      vp.node_rank_ = i;
      vp.global_rank_ = task_.k_offset + i;
      vp.next_seq_ = 0;
      (*task_.body)(vp);
    }
  };

  if (options().schedule == SchedulePolicy::kStatic) {
    const uint64_t cores = static_cast<uint64_t>(cores_per_node());
    const uint64_t per_core = (k + cores - 1) / cores;
    const uint64_t begin =
        std::min(k, per_core * static_cast<uint64_t>(core_index));
    // Published through a cursor so miss-switching can claim VPs from this
    // core's range while the fiber waits on a fetch; claiming one VP at a
    // time guarantees none runs twice. No reference is held across the
    // body (another fiber may grow the vector while this one is blocked).
    if (fid >= static_range_.size()) static_range_.resize(fid + 1);
    const uint64_t range_end = std::min(k, begin + per_core);
    static_range_[fid] = StaticRange{begin, range_end};
    const int64_t batch_start_ns = tracer_ ? engine_->now_ns() : 0;
    uint32_t executed = 0;
    for (;;) {
      const uint64_t i = static_range_[fid].next;
      if (i >= static_range_[fid].end) break;
      ++static_range_[fid].next;
      run_range(i, i + 1);
      ++executed;
    }
    if (tracer_ && begin < range_end) [[unlikely]] {
      // One span per core per phase (miss-switched steals from this range
      // show up as their own nested batches on the stealing core).
      trace_rec(trace::EventKind::kVpBatch, begin, range_end,
                static_cast<uint64_t>(batch_start_ns), 0, executed);
    }
  } else {
    for (;;) {
      const uint64_t begin = task_.next;
      if (begin >= k) break;
      const uint64_t end = std::min(k, begin + task_.chunk);
      task_.next = end;  // no yield between read and update: atomic enough
      const int64_t batch_start_ns = tracer_ ? engine_->now_ns() : 0;
      run_range(begin, end);
      if (tracer_) [[unlikely]] {
        trace_rec(trace::EventKind::kVpBatch, begin, end,
                  static_cast<uint64_t>(batch_start_ns), 0,
                  static_cast<uint32_t>(end - begin));
      }
      // Let the other core fibers grab chunks: without this, a body that
      // never blocks would drain the whole queue in one host slice and the
      // phase would execute serially in virtual time.
      engine_->yield();
    }
  }
  vp_by_fiber_[fid] = nullptr;
}

void NodeRuntime::commit_global() {
  // 0. Unsent lookahead requests die with the phase: nobody waits on them
  //    (demand fetches always flush before their requester parks), so
  //    dropping them here — instead of shipping requests whose responses
  //    the epoch bump below would discard anyway — saves the wire bytes
  //    entirely.
  if (backlog_nonempty_) {
    for (const int owner : backlog_owners_) {
      for (const QueuedFetch& f : peer(owner).fetch_backlog) {
        PPM_CHECK(f.prefetch, "demand fetch still queued at commit");
        outstanding_.erase(f.req_id);
        pending_blocks_.erase(BlockKey{
            f.array,
            (static_cast<uint64_t>(owner) << kBlockOwnerShift) | f.first});
        --counters_.blocks_fetched;
        --counters_.prefetch_issued;
      }
      peer(owner).fetch_backlog.clear();
    }
    backlog_owners_.clear();
    backlog_nonempty_ = false;
  }

  // 1. Ship the remaining write entries; every peer gets exactly one
  //    last-marker fragment per phase (possibly empty).
  flush_all_bundles_final();

  // 2. Wait until every peer's last-marker for this epoch arrived.
  if (node_count() > 1) {
    arrivals_cv_->wait(
        [&] { return staged_last_markers_[epoch_] == node_count() - 1; });
  }

  // 3. Locality engine: decide — on SPMD-replicated state only, so
  //    identically on every node — whether this commit runs a migration
  //    planning round. Raising the flag before the barrier matters: a
  //    peer can finish its whole commit while this node is still
  //    applying, and its post-phase async reads then route by the NEW
  //    owner map, which this node's storage honors only once its own
  //    round is done. The flag makes the service fiber defer those reads
  //    until then. All local access counting is finished here (reads are
  //    synchronous in the VP loop; writes were counted when logged), so
  //    the counters are final and ready to ship.
  const bool migrate_round = migration_round_due();
  if (migrate_round) migration_in_progress_ = true;

  // 4. Apply local log + staged fragments in deterministic order, then
  //    the epoch's owner-side accumulate fragments (source node
  //    ascending). This runs BEFORE the barrier — safe because every
  //    peer's last marker is already in and demand reads are synchronous
  //    inside the phase, so no current-epoch request can still arrive
  //    (straggler prefetches only hit abandoned slots); the apply
  //    consumes no virtual time, so the reorder is observationally
  //    invisible. It must happen here so reduce partials below fold
  //    post-commit values and ride the same barrier.
  std::vector<std::span<const std::byte>> buffers;
  buffers.emplace_back(local_log_.bytes());
  auto staged = staged_bundles_.find(epoch_);
  if (staged != staged_bundles_.end()) {
    for (const Bytes& b : staged->second) buffers.emplace_back(b);
  }
  if (validator_) validator_->begin_commit(/*global_phase=*/true, epoch_);
  apply_staged_entries(std::move(buffers));
  apply_staged_accums();
  validate_commit_finish();
  local_log_.clear();  // keep the allocation for the next phase
  if (staged != staged_bundles_.end()) {
    // Recycle the staged fragments' allocations into the bundle pool.
    for (Bytes& b : staged->second) pool_put(std::move(b));
    staged_bundles_.erase(staged);
  }
  staged_last_markers_.erase(epoch_);

  // 5. Global barrier: after it, no node still reads phase-start values
  //    and all commits are applied everywhere. When a planning round or a
  //    registered reduction is pending, the barrier tokens carry each
  //    node's payload (Bruck-style dissemination) — migration access
  //    counters first, reduce partial blobs appended at the tail — so
  //    neither collective costs extra messages or latency rounds on top
  //    of the commit exchange.
  const size_t reduce_tail = pending_reduce_blob_bytes();
  const size_t reduce_count = pending_reduces_.size() - reduces_resolved_;
  std::vector<Bytes> barrier_blobs;
  if (migrate_round || reduce_tail > 0) {
    ByteWriter w;
    if (migrate_round) {
      for (const uint32_t id : planned_array_ids()) {
        w.put_vector(arrays_[id].access_count);
      }
    }
    if (reduce_tail > 0) {
      const Bytes partials = build_reduce_partials();
      w.put_raw(partials.data(), partials.size());
      if (tracer_) [[unlikely]] {
        trace_rec(trace::EventKind::kCommitReduce, reduce_count,
                  reduce_tail);
      }
    }
    if (node_count() > 1) {
      barrier_blobs = barrier_allgather(std::move(w).take());
    } else {
      barrier_blobs.push_back(std::move(w).take());
    }
  } else {
    barrier_global();
  }

  // 5b. Sanitizer: exchange SPMD-lockstep fingerprints while every node is
  //     parked at this commit anyway (piggybacks on the token/allgather
  //     path; no-op unless validate_phases).
  validate_lockstep();

  // 5c. Resolve registered reductions: fold the per-node partial blobs in
  //     ascending node order — identical scalar on every node.
  if (reduce_tail > 0) combine_reduce_partials(barrier_blobs, reduce_tail);

  // 5d. Migration planning round: every node computes the identical plan
  //     from allgathered access counters, rewrites the owner maps, and
  //     exchanges the moving block payloads. Must run after the apply
  //     above (this phase's writes were routed by the old map) and before
  //     the epoch bump below (peers' new-epoch gets stay deferred until
  //     the maps and storage agree again). run_migration_round reads
  //     exactly the counter vectors off each blob, so the reduce tail
  //     bytes behind them are ignored.
  if (migrate_round) run_migration_round(std::move(barrier_blobs));

  // 5. New epoch: phase-start snapshot changes, so the read cache dies.
  ++epoch_;
  if (!block_cache_.empty()) {
    for (auto& rec : arrays_) {
      if (!rec.remote_block_ptr.empty()) {
        std::fill(rec.remote_block_ptr.begin(), rec.remote_block_ptr.end(),
                  nullptr);
      }
    }
  }
  block_cache_.clear();
  prefetched_keys_.clear();
  unbundled_arena_.clear();
  // Demand reads complete inside the phase (their VP waits), but lookahead
  // fetches issued late may still be in flight: abandon them. The slot
  // stays in outstanding_ so a response that does arrive (the owner served
  // it before committing past our epoch) is recognized and discarded; an
  // owner that committed first drops the request instead.
  for (auto& [key, slot] : pending_blocks_) {
    PPM_CHECK(slot->prefetched && !slot->done,
              "demand reads still pending at end-of-phase commit");
    slot->abandoned = true;
  }
  pending_blocks_.clear();

  // 6. Serve get requests from nodes that raced ahead into the next phase.
  serve_deferred_gets();
}

void NodeRuntime::commit_node() {
  std::vector<std::span<const std::byte>> buffers;
  buffers.emplace_back(local_log_.bytes());
  if (validator_) {
    validator_->begin_commit(/*global_phase=*/false,
                             counters_.node_phases);
  }
  apply_staged_entries(std::move(buffers));
  validate_commit_finish();
  local_log_.clear();  // keep the allocation for the next phase
  unbundled_arena_.clear();  // view() pointers die with the phase
}

// ---------------------------------------------------------------------------
// Locality engine: commit-time migration planning
// ---------------------------------------------------------------------------

bool NodeRuntime::migration_round_due() const {
  // Evaluated identically on every node: any_adaptive_ follows from array
  // creation (SPMD-collective by contract), options are cluster-wide, and
  // rebalance() requests are SPMD-collective by contract too.
  if (!any_adaptive_ || node_count() <= 1) return false;
  return opts_.adaptive_distribution || !rebalance_requests_.empty();
}

std::vector<uint32_t> NodeRuntime::planned_array_ids() const {
  // Arrays up for planning: every owner-mapped array under automatic
  // mode, else exactly the requested rebalances. Ascending id either way
  // (and identical everywhere — both sources are SPMD-replicated).
  std::vector<uint32_t> ids;
  if (opts_.adaptive_distribution) {
    for (const auto& rec : arrays_) {
      if (rec.mig_block_elems != 0) ids.push_back(rec.id);
    }
  } else {
    ids = rebalance_requests_;
  }
  return ids;
}

void NodeRuntime::run_migration_round(std::vector<Bytes> all) {
  const std::vector<uint32_t> ids = planned_array_ids();
  rebalance_requests_.clear();

  // 1. Decode the counter exchange that rode on the commit barrier:
  //    `all[n]` holds node n's access counters for the planned arrays.
  const int p = node_count();
  // counts[node][array position in ids][migration block]
  std::vector<std::vector<std::vector<uint64_t>>> counts(
      static_cast<size_t>(p));
  for (int n = 0; n < p; ++n) {
    ByteReader r(all[static_cast<size_t>(n)]);
    auto& per_node = counts[static_cast<size_t>(n)];
    per_node.reserve(ids.size());
    for (size_t a = 0; a < ids.size(); ++a) {
      per_node.push_back(r.get_vector<uint64_t>());
    }
  }

  // 2. Greedy plan, computed identically everywhere from identical
  //    inputs: a block is a candidate when some remote node out-accessed
  //    the owner by migrate_remote_ratio; candidates move best-gain-first
  //    (ties broken by array then block) until the per-round budget or
  //    the destination's free slots run out. Applying a move updates the
  //    replicated owner map and the free-slot heaps in the same
  //    deterministic order on every node.
  struct Move {
    uint32_t array;
    uint64_t block;
    int from;
    int to;
    uint32_t from_slot;
    uint32_t to_slot;
    uint64_t gain;
  };
  std::vector<Move> cands;
  for (size_t a = 0; a < ids.size(); ++a) {
    const auto& rec = arrays_[ids[a]];
    for (uint64_t b = 0; b < rec.mig_blocks; ++b) {
      const int cur = rec.mig_owner[b];
      int best = 0;
      uint64_t best_c = counts[0][a][b];
      for (int n = 1; n < p; ++n) {  // ties resolve to the lowest node id
        if (counts[static_cast<size_t>(n)][a][b] > best_c) {
          best = n;
          best_c = counts[static_cast<size_t>(n)][a][b];
        }
      }
      if (best == cur || best_c == 0) continue;
      const uint64_t cur_c = counts[static_cast<size_t>(cur)][a][b];
      if (static_cast<double>(best_c) <
          opts_.migrate_remote_ratio *
              static_cast<double>(std::max<uint64_t>(1, cur_c))) {
        continue;
      }
      cands.push_back(Move{ids[a], b, cur, best, 0, 0, best_c - cur_c});
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Move& x, const Move& y) {
    if (x.gain != y.gain) return x.gain > y.gain;
    if (x.array != y.array) return x.array < y.array;
    return x.block < y.block;
  });

  std::vector<Move> plan;
  uint64_t plan_hash = 0xcbf29ce484222325ULL;
  for (Move& m : cands) {
    if (plan.size() >= opts_.migrate_max_blocks_per_phase) break;
    auto& rec = arrays_[m.array];
    auto& dst_free = rec.free_slots[static_cast<size_t>(m.to)];
    if (dst_free.empty()) continue;  // destination at capacity
    std::pop_heap(dst_free.begin(), dst_free.end(), std::greater<>());
    m.to_slot = dst_free.back();
    dst_free.pop_back();
    m.from_slot = rec.mig_slot[m.block];
    auto& src_free = rec.free_slots[static_cast<size_t>(m.from)];
    src_free.push_back(m.from_slot);
    std::push_heap(src_free.begin(), src_free.end(), std::greater<>());
    rec.mig_owner[m.block] = m.to;
    rec.mig_slot[m.block] = m.to_slot;
    for (const uint64_t word :
         {static_cast<uint64_t>(m.array), m.block,
          (static_cast<uint64_t>(static_cast<uint32_t>(m.from)) << 32) |
              static_cast<uint32_t>(m.to),
          static_cast<uint64_t>(m.to_slot)}) {
      plan_hash = (plan_hash ^ word) * 0x100000001b3ULL;
    }
    plan.push_back(m);
  }
  if (validator_) {
    // The plan digest joins the lockstep fingerprint: owner maps silently
    // diverging between nodes would corrupt every later remote access, so
    // make them surface at the next fingerprint exchange.
    validator_->on_migration_round(ids.size(), plan.size(), plan_hash);
  }
  if (tracer_) [[unlikely]] {
    trace_rec(trace::EventKind::kMigrationPlan, ids.size(), plan.size(),
              plan_hash);
  }

  // 3. Data movement. Serialize every outbound slot before applying any
  //    inbound payload: an arriving block may have been assigned a slot
  //    freed by an outbound one in this same round. The service fiber
  //    only stages arrivals in mig_inbox_, so storage stays untouched
  //    until the apply loop below.
  std::vector<size_t> pos_of_array(arrays_.size(), 0);
  for (size_t a = 0; a < ids.size(); ++a) pos_of_array[ids[a]] = a;
  uint64_t expected = 0;
  for (const Move& m : plan) {
    if (m.to == node_) {
      ++expected;
      // Accesses this node made remotely that the move turns local, each
      // counted once cluster-wide (on the node gaining the block).
      counters_.remote_to_local_conversions +=
          counts[static_cast<size_t>(node_)][pos_of_array[m.array]][m.block];
    }
    if (m.from != node_) continue;
    const auto& rec = arrays_[m.array];
    const size_t block_bytes = rec.mig_block_elems * rec.ops.size;
    ByteWriter out;
    out.put(m.array);
    out.put(m.block);
    out.put_raw(rec.storage.data() +
                    static_cast<size_t>(m.from_slot) * block_bytes,
                block_bytes);
    rt_send(m.to, detail::rt_kind(detail::RtMsg::kMigrateBlock),
            std::move(out).take());
    ++counters_.blocks_migrated;
    counters_.migration_bytes += block_bytes;
    if (tracer_) [[unlikely]] {
      trace_rec(trace::EventKind::kMigrationMove, m.array, m.block,
                (static_cast<uint64_t>(static_cast<uint32_t>(m.from)) << 32) |
                    static_cast<uint32_t>(m.to));
    }
  }

  // 4. Wait for and apply this node's inbound blocks — the identical plan
  //    tells every node exactly how many to expect, so no handshake or
  //    extra round is needed. Arrivals cannot belong to a later round: a
  //    peer reaches its next round only through a barrier this node has
  //    not entered yet.
  arrivals_cv_->wait([&] { return mig_inbox_.size() >= expected; });
  PPM_CHECK(mig_inbox_.size() == expected,
            "unexpected migration payload (%zu staged, %llu planned)",
            mig_inbox_.size(), static_cast<unsigned long long>(expected));
  for (const MigArrival& arr : mig_inbox_) {
    PPM_CHECK(arr.array < arrays_.size(),
              "migration payload for unknown array %u", arr.array);
    auto& rec = arrays_[arr.array];
    PPM_CHECK(rec.mig_block_elems != 0 && arr.block < rec.mig_blocks &&
                  rec.mig_owner[arr.block] == node_,
              "migration payload does not match the plan");
    const size_t block_bytes = rec.mig_block_elems * rec.ops.size;
    PPM_CHECK(arr.data.size() == block_bytes, "short migration payload");
    std::memcpy(rec.storage.data() +
                    static_cast<size_t>(rec.mig_slot[arr.block]) * block_bytes,
                arr.data.data(), block_bytes);
  }
  mig_inbox_.clear();

  // 5. Fresh profiling window for the next round.
  for (const uint32_t id : ids) {
    auto& ac = arrays_[id].access_count;
    std::fill(ac.begin(), ac.end(), 0);
  }
  migration_in_progress_ = false;
}

void NodeRuntime::apply_staged_entries(
    std::vector<std::span<const std::byte>> buffers) {
  std::vector<ParsedEntry> entries;
  // Reserve by the tightest possible entry size: commits are the hot path
  // of every phase, and vector regrowth here showed up in measured runs.
  size_t total_bytes = 0;
  for (const auto& buf : buffers) total_bytes += buf.size();
  entries.reserve(total_bytes / (detail::kEntryHeaderBytes + 1));
  uint8_t op_mask = 0;  // bit per WriteOp value seen in this batch
  for (const auto& buf : buffers) {
    ByteReader r(buf);
    while (!r.exhausted()) {
      ParsedEntry e{};
      e.array = r.get<uint32_t>();
      const uint8_t raw_op = r.get<uint8_t>();
      e.op = static_cast<uint8_t>(raw_op & ~detail::kOpRangeBit);
      e.index = r.get<uint64_t>();
      e.vp_rank = r.get<uint64_t>();
      e.seq = r.get<uint32_t>();
      PPM_CHECK(e.array < arrays_.size(),
                "write bundle names unknown array %u", e.array);
      e.count = detail::entry_is_range(raw_op) ? r.get<uint32_t>() : 1;
      const auto value =
          r.view(static_cast<size_t>(e.count) * arrays_[e.array].ops.size);
      e.value = value.data();
      op_mask |= static_cast<uint8_t>(1u << e.op);
      if (validator_) [[unlikely]] {
        for (uint32_t j = 0; j < e.count; ++j) {
          validator_->on_commit_entry(e.array, e.index + j, e.op, e.vp_rank);
        }
      }
      entries.push_back(e);
    }
  }
  // Deterministic conflict resolution: ascending (global VP rank, VP-local
  // sequence); plain sets resolve to the highest-ranked writer's last
  // write. A batch that uses exactly one accumulate op (all-adds, or
  // all-mins, ...) — the common histogram/BFS/relaxation shape — skips
  // ordering entirely: a single commutative op yields the same result in
  // any order. Mixed op kinds do NOT commute with each other (min after
  // add differs from add after min), so they take the ordered path.
  //
  // The ordered path is a bucket pass keyed on (vp_rank, seq) rather than
  // a comparison sort of the whole batch: each VP's entries already sit in
  // seq order within its stream (program order, and fragments between one
  // src/dst pair deliver in order), so grouping entry indices by vp_rank
  // and walking ranks ascending reproduces the fully sorted order in
  // O(n + V log V). A per-bucket ordering check guards the delivery
  // assumption and falls back to sorting just that bucket.
  // User slots (kUser0..kUser2) always take the ordered path: their
  // registration may be non-commutative, and (rank, seq) order is the
  // only application order the model promises them.
  constexpr uint8_t kUserOpMask =
      (1u << static_cast<uint8_t>(detail::WriteOp::kUser0)) |
      (1u << static_cast<uint8_t>(detail::WriteOp::kUser1)) |
      (1u << static_cast<uint8_t>(detail::WriteOp::kUser2));
  const bool single_commutative_op =
      (op_mask & (op_mask - 1)) == 0 &&
      (op_mask & (1u << static_cast<uint8_t>(detail::WriteOp::kSet))) == 0 &&
      (op_mask & kUserOpMask) == 0;
  std::vector<uint32_t> order;
  const auto seq_less = [&](uint32_t a, uint32_t b) {
    return entries[a].seq < entries[b].seq;
  };
  // After placement by rank, verify each same-rank run is in seq order
  // (program order per fragment plus in-order delivery make it so) and
  // sort just the runs that are not.
  const auto fix_seq_runs = [&] {
    size_t lo = 0;
    while (lo < order.size()) {
      size_t hi = lo + 1;
      const uint64_t rank = entries[order[lo]].vp_rank;
      while (hi < order.size() && entries[order[hi]].vp_rank == rank) ++hi;
      if (!std::is_sorted(order.begin() + lo, order.begin() + hi, seq_less)) {
        std::sort(order.begin() + lo, order.begin() + hi, seq_less);
      }
      lo = hi;
    }
  };
  if (!single_commutative_op && !entries.empty()) {
    uint64_t min_rank = entries[0].vp_rank, max_rank = entries[0].vp_rank;
    for (const ParsedEntry& e : entries) {
      min_rank = std::min(min_rank, e.vp_rank);
      max_rank = std::max(max_rank, e.vp_rank);
    }
    const uint64_t span = max_rank - min_rank + 1;
    if (span <= entries.size() * 8 + 1024) {
      // Dense ranks (the overwhelmingly common shape: a phase's VPs are a
      // contiguous rank range): a stable counting sort by rank replaces
      // the hash-bucket pass — no hashing, no per-bucket allocations, one
      // O(V) scratch vector. Stability preserves per-rank arrival order,
      // which is seq order already.
      std::vector<uint32_t> start(static_cast<size_t>(span) + 1, 0);
      for (const ParsedEntry& e : entries) {
        ++start[e.vp_rank - min_rank + 1];
      }
      for (size_t k = 1; k < start.size(); ++k) start[k] += start[k - 1];
      order.resize(entries.size());
      for (uint32_t idx = 0; idx < entries.size(); ++idx) {
        order[start[entries[idx].vp_rank - min_rank]++] = idx;
      }
    } else {
      // Sparse ranks (tiny batches from huge rank spaces): hash buckets.
      std::unordered_map<uint64_t, std::vector<uint32_t>> by_rank;
      std::vector<uint64_t> ranks;
      for (uint32_t idx = 0; idx < entries.size(); ++idx) {
        auto& bucket = by_rank[entries[idx].vp_rank];
        if (bucket.empty()) ranks.push_back(entries[idx].vp_rank);
        bucket.push_back(idx);
      }
      std::sort(ranks.begin(), ranks.end());
      order.reserve(entries.size());
      for (const uint64_t rank : ranks) {
        const auto& bucket = by_rank[rank];
        order.insert(order.end(), bucket.begin(), bucket.end());
      }
    }
    fix_seq_runs();
  } else {
    order.resize(entries.size());
    for (uint32_t idx = 0; idx < entries.size(); ++idx) order[idx] = idx;
  }
  if (detail::g_stress_flip_commit_order && !single_commutative_op)
      [[unlikely]] {
    // Planted fault for the stress harness's self-test: apply the ordered
    // batch backwards. The differential oracle must catch this.
    std::reverse(order.begin(), order.end());
  }
  for (const uint32_t idx : order) {
    const ParsedEntry& e = entries[idx];
    auto& rec = arrays_[e.array];
    PPM_CHECK(!rec.global || rec.owner_of(e.index) == node_,
              "write entry for element %llu not owned by node %d",
              static_cast<unsigned long long>(e.index), node_);
    const uint64_t local = rec.global ? rec.local_of(e.index) : e.index;
    if (e.count == 1) {
      PPM_CHECK(local < rec.chunk_len,
                "write entry for element %llu out of local range",
                static_cast<unsigned long long>(e.index));
      rec.apply_op(rec.storage.data() + local * rec.ops.size, e.value,
                   static_cast<detail::WriteOp>(e.op));
      continue;
    }
    // Range entry: the writer segmented the run so it stays inside one
    // owner's contiguous local storage (kBlock chunk / kAdaptive
    // migration block / node-shared array).
    PPM_CHECK(!rec.global || rec.owner_of(e.index + e.count - 1) == node_,
              "range entry [%llu, +%u) crosses an ownership boundary",
              static_cast<unsigned long long>(e.index), e.count);
    PPM_CHECK(local + e.count <= rec.chunk_len,
              "range entry [%llu, +%u) out of local range",
              static_cast<unsigned long long>(e.index), e.count);
    std::byte* dst = rec.storage.data() + local * rec.ops.size;
    if (static_cast<detail::WriteOp>(e.op) == detail::WriteOp::kSet) {
      std::memcpy(dst, e.value, static_cast<size_t>(e.count) * rec.ops.size);
    } else {
      for (uint32_t j = 0; j < e.count; ++j) {
        rec.apply_op(dst + static_cast<size_t>(j) * rec.ops.size,
                     e.value + static_cast<size_t>(j) * rec.ops.size,
                     static_cast<detail::WriteOp>(e.op));
      }
    }
  }
}

void NodeRuntime::apply_staged_accums() {
  PPM_CHECK(staged_accums_.empty() ||
                staged_accums_.begin()->first >= epoch_,
            "stale accumulate fragments left behind");
  const auto it = staged_accums_.find(epoch_);
  if (it == staged_accums_.end()) return;
  auto& frags = it->second;
  // Owner-side order: source node ascending, per-source arrival order
  // (= that source's program order — fragments between one src/dst pair
  // deliver in order, and items within a fragment are appended in program
  // order). stable_sort keeps the per-source sequence.
  std::stable_sort(frags.begin(), frags.end(),
                   [](const StagedAccum& a, const StagedAccum& b) {
                     return a.src < b.src;
                   });
  const int rounds = detail::g_stress_double_apply_accums ? 2 : 1;
  uint64_t applied = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const StagedAccum& f : frags) {
      ByteReader r(f.payload);
      (void)r.get<uint64_t>();  // epoch (validated at arrival)
      // Synthetic writer id for the conflict scan: owner-side entries
      // carry no vp_rank, so tag them per source node above the VP rank
      // space (bit 63 is never a real rank).
      const uint64_t writer =
          (uint64_t{1} << 63) | static_cast<uint64_t>(f.src);
      if (f.list) {
        const auto n = r.get<uint32_t>();
        for (uint32_t k = 0; k < n; ++k) {
          const auto id = r.get<uint32_t>();
          const auto op = static_cast<detail::WriteOp>(r.get<uint8_t>());
          const auto index = r.get<uint64_t>();
          auto& rec = arrays_[id];
          const auto value = r.view(rec.ops.size);
          PPM_CHECK(rec.owner_of(index) == node_,
                    "accumulate item for element %llu not owned by node %d",
                    static_cast<unsigned long long>(index), node_);
          if (validator_) [[unlikely]] {
            validator_->on_commit_entry(id, index,
                                        static_cast<uint8_t>(op), writer);
          }
          rec.apply_op(
              rec.storage.data() + rec.local_of(index) * rec.ops.size,
              value.data(), op);
          ++applied;
        }
      } else {
        while (!r.exhausted()) {
          const auto id = r.get<uint32_t>();
          const auto op = static_cast<detail::WriteOp>(r.get<uint8_t>());
          const auto first = r.get<uint64_t>();
          const auto count = r.get<uint32_t>();
          auto& rec = arrays_[id];
          const uint32_t esz = rec.ops.size;
          const auto values = r.view(static_cast<size_t>(count) * esz);
          PPM_CHECK(rec.owner_of(first) == node_ &&
                        rec.owner_of(first + count - 1) == node_,
                    "accumulate range [%llu, +%u) not owned by node %d",
                    static_cast<unsigned long long>(first), count, node_);
          const uint64_t local = rec.local_of(first);
          PPM_CHECK(local + count <= rec.chunk_len,
                    "accumulate range [%llu, +%u) out of local range",
                    static_cast<unsigned long long>(first), count);
          std::byte* dst = rec.storage.data() + local * esz;
          for (uint32_t j = 0; j < count; ++j) {
            if (validator_) [[unlikely]] {
              validator_->on_commit_entry(id, first + j,
                                          static_cast<uint8_t>(op), writer);
            }
            rec.apply_op(dst + static_cast<size_t>(j) * esz,
                         values.data() + static_cast<size_t>(j) * esz, op);
          }
          applied += count;
        }
      }
    }
  }
  counters_.accums_executed += applied;
  if (tracer_) [[unlikely]] {
    trace_rec(trace::EventKind::kAccumApply, frags.size(), applied);
  }
  for (StagedAccum& f : frags) pool_put(std::move(f.payload));
  staged_accums_.erase(it);
}

// ---------------------------------------------------------------------------
// Remote reduction (rides the commit barrier)
// ---------------------------------------------------------------------------

size_t NodeRuntime::register_reduce(PendingReduce pr) {
  PPM_CHECK(phase_scope_ == PhaseScope::kNone,
            "register_reduce must be called outside phases");
  PPM_CHECK(pr.partial != nullptr && pr.combine != nullptr,
            "register_reduce needs partial and combine thunks");
  PPM_CHECK(pr.array_a < arrays_.size() && arrays_[pr.array_a].global,
            "reduce needs a global shared array");
  if (pr.array_b != UINT32_MAX) {
    PPM_CHECK(pr.array_b < arrays_.size() && arrays_[pr.array_b].global,
              "reduce (dot form) needs a global shared array");
  }
  pending_reduces_.push_back(std::move(pr));
  return pending_reduces_.size() - 1;
}

const NodeRuntime::PendingReduce& NodeRuntime::reduce_result(
    size_t handle) const {
  PPM_CHECK(handle < pending_reduces_.size(), "unknown reduce handle %zu",
            handle);
  const PendingReduce& pr = pending_reduces_[handle];
  PPM_CHECK(pr.done,
            "reduce result read before the resolving global commit");
  return pr;
}

size_t NodeRuntime::pending_reduce_blob_bytes() const {
  size_t total = 0;
  for (size_t i = reduces_resolved_; i < pending_reduces_.size(); ++i) {
    total += 1 + arrays_[pending_reduces_[i].array_a].ops.size;
  }
  return total;
}

Bytes NodeRuntime::build_reduce_partials() {
  ByteWriter w;
  for (size_t i = reduces_resolved_; i < pending_reduces_.size(); ++i) {
    const PendingReduce& pr = pending_reduces_[i];
    Bytes blob;
    pr.partial(*this, pr, &blob);
    PPM_CHECK(blob.size() == 1 + arrays_[pr.array_a].ops.size,
              "reduce partial blob has the wrong size");
    w.put_raw(blob.data(), blob.size());
  }
  return std::move(w).take();
}

void NodeRuntime::combine_reduce_partials(const std::vector<Bytes>& all,
                                          size_t tail_bytes) {
  // Every node appended the same partial layout (registration is
  // SPMD-collective), so the blobs parse off the tail of each node's
  // barrier payload. Folding ascending node order makes the combined
  // scalar bit-identical on every node.
  const int p = node_count();
  std::vector<std::span<const std::byte>> tails(static_cast<size_t>(p));
  for (int n = 0; n < p; ++n) {
    const Bytes& b = all[static_cast<size_t>(n)];
    PPM_CHECK(b.size() >= tail_bytes,
              "commit barrier payload too short for reduce partials");
    tails[static_cast<size_t>(n)] =
        std::span<const std::byte>(b.data() + b.size() - tail_bytes,
                                   tail_bytes);
  }
  size_t off = 0;
  for (size_t i = reduces_resolved_; i < pending_reduces_.size(); ++i) {
    PendingReduce& pr = pending_reduces_[i];
    const uint32_t esz = arrays_[pr.array_a].ops.size;
    const size_t blob_bytes = 1 + esz;
    Bytes acc(blob_bytes, std::byte{0});  // has_value = 0: empty fold seed
    for (int n = 0; n < p; ++n) {
      const auto& tail = tails[static_cast<size_t>(n)];
      Bytes other(tail.begin() + off, tail.begin() + off + blob_bytes);
      pr.combine(*this, pr, &acc, other);
    }
    pr.result = std::move(acc);
    pr.done = true;
    // A standalone allreduce would have shipped this scalar to and from a
    // root: elem_size bytes per non-self node, saved by riding the commit
    // barrier's dissemination tokens.
    counters_.reduction_bytes_saved +=
        static_cast<uint64_t>(esz) * static_cast<uint64_t>(p - 1);
    off += blob_bytes;
  }
  reduces_resolved_ = pending_reduces_.size();
}

// ---------------------------------------------------------------------------
// ppm::check integration
// ---------------------------------------------------------------------------

void NodeRuntime::validate_commit_finish() {
  if (!validator_) return;
  const uint64_t new_errors = validator_->finish_commit();
  if (new_errors > 0 && opts_.validate_fail_fast) {
    const auto& vs = validator_->report().violations;
    throw Error("ppm::check (fail-fast): " +
                (vs.empty() ? std::string("phase-semantics violation")
                            : vs.back().to_string()));
  }
}

void NodeRuntime::validate_lockstep() {
  if (!validator_) return;
  // Serialize this node's fingerprint and allgather it. Every node runs
  // this at the same global commit (options are cluster-wide), so the
  // collective is itself in lockstep even when the program is not.
  const check::Fingerprint mine = validator_->fingerprint();
  ByteWriter w;
  w.put(mine.hash);
  w.put(mine.arrays_created);
  w.put(mine.groups_coordinated);
  w.put(mine.global_phases);
  const auto all_bytes = allgather_bytes(std::move(w).take());
  std::vector<check::Fingerprint> all(all_bytes.size());
  for (size_t n = 0; n < all_bytes.size(); ++n) {
    ByteReader r(all_bytes[n]);
    all[n].hash = r.get<uint64_t>();
    all[n].arrays_created = r.get<uint64_t>();
    all[n].groups_coordinated = r.get<uint64_t>();
    all[n].global_phases = r.get<uint64_t>();
  }
  const uint64_t new_errors = validator_->check_lockstep(all, epoch_);
  if (new_errors > 0 && opts_.validate_fail_fast) {
    const auto& vs = validator_->report().violations;
    throw Error("ppm::check (fail-fast): " +
                (vs.empty() ? std::string("lockstep mismatch")
                            : vs.back().to_string()));
  }
}

// ---------------------------------------------------------------------------
// Service fiber
// ---------------------------------------------------------------------------

void NodeRuntime::rt_send(int dst_node, uint64_t kind, Bytes payload) {
  // The single logical→physical translation point of the runtime: all
  // node ids above this line are partition-logical; the wire carries
  // physical addresses plus the tenancy's run tag (see wire.hpp).
  net::Message m;
  m.src_node = shared_.machine_node(node_);
  m.src_port = shared_.machine().service_port();
  m.dst_node = shared_.machine_node(dst_node);
  m.dst_port = shared_.machine().service_port();
  m.kind = kind | detail::rt_tag_bits(shared_.run_tag());
  m.payload = std::move(payload);
  shared_.machine().fabric().send(std::move(m));
}

void NodeRuntime::service_loop() {
  auto& endpoint = shared_.machine().fabric().endpoint(
      shared_.machine_node(node_), shared_.machine().service_port());
  for (;;) {
    net::Message msg = endpoint.recv();
    // Tenancy fence: a reallocated node can still receive straggler
    // traffic from the previous tenant of this endpoint (e.g. a
    // fault-delayed kGetResp). Wrong-tag messages are dropped, never
    // interpreted.
    if (detail::rt_run_tag(msg.kind) != shared_.run_tag()) {
      ++counters_.stale_msgs_dropped;
      continue;
    }
    // Translate the wire's physical source back into this partition's
    // logical node id; everything below the fence is logical again.
    const int src_logical = shared_.logical_node(msg.src_node);
    PPM_CHECK(src_logical >= 0,
              "runtime message from machine node %d outside the partition",
              msg.src_node);
    msg.src_node = src_logical;
    switch (detail::rt_class(msg.kind)) {
      case detail::RtMsg::kGetBlock:
      case detail::RtMsg::kPrefetchBlock:
      case detail::RtMsg::kGetIndexed:
      case detail::RtMsg::kGetBlockList:
        handle_get(std::move(msg));
        break;
      case detail::RtMsg::kGetResp: {
        ByteReader r(msg.payload);
        const auto req_id = r.get<uint64_t>();
        const auto it = outstanding_.find(req_id);
        PPM_CHECK(it != outstanding_.end(),
                  "get response for unknown request %llu",
                  static_cast<unsigned long long>(req_id));
        auto slot = std::move(it->second);
        outstanding_.erase(it);
        if (tracer_) [[unlikely]] {
          trace_rec(trace::EventKind::kFetchDone, slot->key.array,
                    slot->key.block, req_id,
                    slot->abandoned ? trace::kFlagBit0 : 0);
        }
        if (slot->abandoned) break;  // lookahead from a committed phase
        Bytes payload(msg.payload.begin() + sizeof(uint64_t),
                      msg.payload.end());
        if (slot->cache_on_arrival) {
          // Populate the block cache here so combined waiters can be woken
          // in any order relative to the initiating fiber. Demand blocks
          // are also published in the array's direct-mapped table for
          // inline reads; prefetched blocks publish on their first demand
          // touch instead, so lookahead hits stay observable.
          Bytes& cached = block_cache_[slot->key];
          cached = std::move(payload);
          pending_blocks_.erase(slot->key);
          if (slot->prefetched) {
            prefetched_keys_.insert(slot->key);
          } else {
            ensure_block_table(*slot->record);
            slot->record->remote_block_ptr[slot->block_slot] = cached.data();
          }
        } else {
          slot->data = std::move(payload);
        }
        slot->done = true;
        slot->waiters.wake_all();
        break;
      }
      case detail::RtMsg::kBundle:
        handle_bundle(std::move(msg));
        break;
      case detail::RtMsg::kAccumBlock:
        handle_accum(std::move(msg), /*list=*/false);
        break;
      case detail::RtMsg::kAccumList:
        handle_accum(std::move(msg), /*list=*/true);
        break;
      case detail::RtMsg::kMigrateBlock: {
        // Stage only: run_migration_round applies arrivals after all of
        // this node's outbound slots are serialized, so an inbound block
        // cannot clobber a slot still waiting to be shipped.
        ByteReader r(msg.payload);
        MigArrival arr;
        arr.array = r.get<uint32_t>();
        arr.block = r.get<uint64_t>();
        const auto data = r.view(r.remaining());
        arr.data.assign(data.begin(), data.end());
        mig_inbox_.push_back(std::move(arr));
        arrivals_cv_->notify_all();
        break;
      }
      case detail::RtMsg::kToken:
        handle_token(std::move(msg));
        break;
      case detail::RtMsg::kShutdown:
        return;
    }
  }
}

void NodeRuntime::handle_get(net::Message msg) {
  // Peek the requester's epoch (layout differs between the kinds).
  ByteReader r(msg.payload);
  uint64_t req_epoch;
  const detail::RtMsg cls = detail::rt_class(msg.kind);
  if (cls == detail::RtMsg::kGetBlockList) {
    req_epoch = r.get<uint64_t>();  // list messages lead with the epoch
  } else if (cls != detail::RtMsg::kGetIndexed) {
    (void)r.get<uint32_t>();  // array
    (void)r.get<uint64_t>();  // first
    (void)r.get<uint64_t>();  // count
    (void)r.get<uint64_t>();  // req id
    req_epoch = r.get<uint64_t>();
  } else {
    (void)r.get<uint32_t>();  // array
    (void)r.get<uint64_t>();  // req id
    req_epoch = r.get<uint64_t>();
  }
  if (req_epoch == detail::kAsyncEpoch) {
    if (migration_in_progress_) {
      // This commit's migration round may be about to overwrite the slot
      // the request resolves to (the requester routed it with the
      // already-updated owner map). Serve once the round has applied.
      deferred_gets_.push_back(std::move(msg));
      return;
    }
  } else {
    if (req_epoch < epoch_) {
      // A lookahead fetch can legitimately straggle past the requester's
      // commit (the requester abandoned its slot there): drop it. For
      // demand reads a stale epoch is a protocol bug. A stale LIST is
      // legal only when all its items are lookahead (demand requesters
      // park until served, so their node cannot have committed past).
      if (cls == detail::RtMsg::kPrefetchBlock) {
        return;
      }
      if (cls == detail::RtMsg::kGetBlockList) {
        const uint32_t n = r.get<uint32_t>();
        for (uint32_t k = 0; k < n; ++k) {
          (void)r.get<uint32_t>();  // array
          (void)r.get<uint64_t>();  // first
          (void)r.get<uint64_t>();  // count
          (void)r.get<uint64_t>();  // req id
          PPM_CHECK(r.get<uint8_t>() != 0,
                    "stale fetch list contains a demand item");
        }
        return;
      }
      PPM_CHECK(false,
                "get request for already-committed epoch %llu (at %llu)",
                static_cast<unsigned long long>(req_epoch),
                static_cast<unsigned long long>(epoch_));
    }
    if (req_epoch > epoch_) {
      // Requester already passed the barrier we have not committed past:
      // serve after our commit so it sees the new phase-start snapshot.
      deferred_gets_.push_back(std::move(msg));
      return;
    }
  }
  serve_get(msg);
}

void NodeRuntime::serve_get(const net::Message& msg) {
  ByteReader r(msg.payload);
  ByteWriter reply;
  // All request coordinates are owner-local (i.e. indices into this
  // node's committed storage), for every distribution.
  if (detail::rt_class(msg.kind) == detail::RtMsg::kGetBlockList) {
    // Coalesced request, fanned back out as one kGetResp per item — the
    // requester's response handling is identical to per-block fetches,
    // and response bytes match the unbatched protocol exactly.
    (void)r.get<uint64_t>();  // epoch (already checked)
    const uint32_t n = r.get<uint32_t>();
    for (uint32_t k = 0; k < n; ++k) {
      const auto id = r.get<uint32_t>();
      const auto first = r.get<uint64_t>();
      const auto count = r.get<uint64_t>();
      const auto req_id = r.get<uint64_t>();
      (void)r.get<uint8_t>();  // prefetch flag (epoch check used it)
      const auto& rec = array(id);
      PPM_CHECK(first + count <= rec.chunk_len,
                "get request [%llu, +%llu) outside node %d's storage",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(count), node_);
      ByteWriter item;
      item.put(req_id);
      item.put_raw(rec.storage.data() + first * rec.ops.size,
                   count * rec.ops.size);
      rt_send(msg.src_node, detail::rt_kind(detail::RtMsg::kGetResp),
              std::move(item).take());
    }
    return;
  }
  if (detail::rt_class(msg.kind) != detail::RtMsg::kGetIndexed) {
    const auto id = r.get<uint32_t>();
    const auto first = r.get<uint64_t>();
    const auto count = r.get<uint64_t>();
    const auto req_id = r.get<uint64_t>();
    const auto& rec = array(id);
    PPM_CHECK(first + count <= rec.chunk_len,
              "get request [%llu, +%llu) outside node %d's storage",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(count), node_);
    reply.put(req_id);
    reply.put_raw(rec.storage.data() + first * rec.ops.size,
                  count * rec.ops.size);
  } else {
    const auto id = r.get<uint32_t>();
    const auto req_id = r.get<uint64_t>();
    (void)r.get<uint64_t>();  // epoch (already checked)
    const auto indices = r.get_vector<uint64_t>();
    const auto& rec = array(id);
    reply.put(req_id);
    for (const uint64_t index : indices) {
      PPM_CHECK(index < rec.chunk_len,
                "indexed get for local element %llu outside node %d's "
                "storage",
                static_cast<unsigned long long>(index), node_);
      reply.put_raw(rec.storage.data() + index * rec.ops.size, rec.ops.size);
    }
  }
  rt_send(msg.src_node, detail::rt_kind(detail::RtMsg::kGetResp),
          std::move(reply).take());
}

void NodeRuntime::serve_deferred_gets() {
  std::vector<net::Message> still_deferred;
  for (auto& msg : deferred_gets_) {
    ByteReader r(msg.payload);
    uint64_t req_epoch;
    const detail::RtMsg cls = detail::rt_class(msg.kind);
    if (cls == detail::RtMsg::kGetBlockList) {
      req_epoch = r.get<uint64_t>();
    } else if (cls != detail::RtMsg::kGetIndexed) {
      (void)r.get<uint32_t>();
      (void)r.get<uint64_t>();
      (void)r.get<uint64_t>();
      (void)r.get<uint64_t>();
      req_epoch = r.get<uint64_t>();
    } else {
      (void)r.get<uint32_t>();
      (void)r.get<uint64_t>();
      req_epoch = r.get<uint64_t>();
    }
    const bool servable = req_epoch == detail::kAsyncEpoch
                              ? !migration_in_progress_
                              : req_epoch <= epoch_;
    if (servable) {
      serve_get(msg);
    } else {
      still_deferred.push_back(std::move(msg));
    }
  }
  deferred_gets_ = std::move(still_deferred);
}

void NodeRuntime::handle_bundle(net::Message msg) {
  ByteReader r(msg.payload);
  const auto epoch = r.get<uint64_t>();
  const auto last = r.get<uint8_t>();
  const auto entries = r.view(r.remaining());
  staged_bundles_[epoch].emplace_back(entries.begin(), entries.end());
  if (last != 0) {
    ++staged_last_markers_[epoch];
    arrivals_cv_->notify_all();
  }
  // The delivered buffer's capacity feeds the sender-side free pool.
  pool_put(std::move(msg.payload));
}

void NodeRuntime::handle_accum(net::Message msg, bool list) {
  // Validate the whole frame up front (like the fetch handlers): a
  // garbled fragment is rejected at arrival with a protocol error instead
  // of corrupting a later commit. ByteReader throws on truncation.
  ByteReader r(msg.payload);
  const auto epoch = r.get<uint64_t>();
  PPM_CHECK(epoch >= epoch_,
            "accumulate fragment for already-committed epoch %llu (at %llu)",
            static_cast<unsigned long long>(epoch),
            static_cast<unsigned long long>(epoch_));
  const auto check_item_head = [&](uint32_t id, uint8_t op) {
    PPM_CHECK(id < arrays_.size(),
              "accumulate fragment names unknown array %u", id);
    PPM_CHECK(op < 8 &&
                  detail::is_accum_op(static_cast<detail::WriteOp>(op)),
              "accumulate fragment carries invalid op %u",
              static_cast<unsigned>(op));
    PPM_CHECK(arrays_[id].global,
              "accumulate fragment targets node-shared array %u", id);
  };
  if (list) {
    const auto n = r.get<uint32_t>();
    for (uint32_t k = 0; k < n; ++k) {
      const auto id = r.get<uint32_t>();
      const auto op = r.get<uint8_t>();
      check_item_head(id, op);
      const auto index = r.get<uint64_t>();
      PPM_CHECK(index < arrays_[id].n,
                "accumulate item index %llu out of range",
                static_cast<unsigned long long>(index));
      (void)r.view(arrays_[id].ops.size);
    }
    PPM_CHECK(r.exhausted(), "garbled kAccumList payload (trailing bytes)");
  } else {
    while (!r.exhausted()) {
      const auto id = r.get<uint32_t>();
      const auto op = r.get<uint8_t>();
      check_item_head(id, op);
      const auto first = r.get<uint64_t>();
      const auto count = r.get<uint32_t>();
      const auto& rec = arrays_[id];
      PPM_CHECK(count > 0 && count <= rec.n && first <= rec.n - count,
                "accumulate range [%llu, +%u) out of range",
                static_cast<unsigned long long>(first), count);
      (void)r.view(static_cast<size_t>(count) * rec.ops.size);
    }
  }
  StagedAccum sa;
  sa.src = msg.src_node;
  sa.list = list;
  sa.payload = std::move(msg.payload);
  staged_accums_[epoch].push_back(std::move(sa));
}

void NodeRuntime::handle_token(net::Message msg) {
  ByteReader r(msg.payload);
  TokenKey key{};
  key.src = msg.src_node;
  key.channel = r.get<uint32_t>();
  key.seq = r.get<uint64_t>();
  key.round = r.get<uint32_t>();
  const auto body = r.view(r.remaining());
  tokens_[key] = Bytes(body.begin(), body.end());
  arrivals_cv_->notify_all();
}

// ---------------------------------------------------------------------------
// Node-level collectives
// ---------------------------------------------------------------------------

void NodeRuntime::token_send(int dst_node, uint32_t channel, uint64_t seq,
                             uint32_t round, Bytes payload) {
  ByteWriter w;
  w.put(channel);
  w.put(seq);
  w.put(round);
  w.put_raw(payload.data(), payload.size());
  rt_send(dst_node, detail::rt_kind(detail::RtMsg::kToken),
          std::move(w).take());
}

Bytes NodeRuntime::token_recv(int src_node, uint32_t channel, uint64_t seq,
                              uint32_t round) {
  const TokenKey key{src_node, channel, seq, round};
  arrivals_cv_->wait([&] { return tokens_.count(key) != 0; });
  Bytes payload = std::move(tokens_[key]);
  tokens_.erase(key);
  return payload;
}

void NodeRuntime::barrier_global() {
  const int p = node_count();
  if (p == 1) return;
  const uint64_t seq = barrier_seq_++;
  uint32_t round = 0;
  for (int offset = 1; offset < p; offset *= 2, ++round) {
    token_send((node_ + offset) % p, kChBarrier, seq, round, Bytes{});
    (void)token_recv((node_ - offset % p + p) % p, kChBarrier, seq, round);
  }
}

std::vector<Bytes> NodeRuntime::barrier_allgather(Bytes mine) {
  const int p = node_count();
  std::vector<Bytes> blocks(static_cast<size_t>(p));
  blocks[static_cast<size_t>(node_)] = std::move(mine);
  if (p == 1) return blocks;
  const uint64_t seq = barrier_seq_++;
  // Bruck-style dissemination: the identical send/recv pattern (offsets
  // 1, 2, 4, ... — and with it the round count and the synchronization
  // property) as barrier_global, but each round's token carries the
  // contributions its receiver is still missing. After round r every node
  // holds the blocks of ranks node_, node_-1, ..., node_-(2^(r+1)-1).
  int have = 1;
  uint32_t round = 0;
  for (int offset = 1; offset < p; offset *= 2, ++round) {
    const int send_count = std::min(have, p - have);
    ByteWriter w;
    w.put(static_cast<uint32_t>(send_count));
    for (int b = 0; b < send_count; ++b) {
      const Bytes& blk = blocks[static_cast<size_t>((node_ - b + p) % p)];
      w.put_span(std::span<const char>(
          reinterpret_cast<const char*>(blk.data()), blk.size()));
    }
    token_send((node_ + offset) % p, kChBarrier, seq, round,
               std::move(w).take());
    const int peer = (node_ - offset % p + p) % p;
    const Bytes in = token_recv(peer, kChBarrier, seq, round);
    ByteReader r(in);
    const auto count = r.get<uint32_t>();
    PPM_CHECK(static_cast<int>(count) == send_count,
              "counter exchange out of lockstep (round %u: got %u blocks, "
              "expected %d)",
              round, count, send_count);
    for (uint32_t b = 0; b < count; ++b) {
      const auto v = r.get_vector<char>();
      Bytes& blk =
          blocks[static_cast<size_t>((peer - static_cast<int>(b) + p) % p)];
      blk.resize(v.size());
      if (!v.empty()) std::memcpy(blk.data(), v.data(), v.size());
    }
    have += send_count;
  }
  return blocks;
}

std::vector<Bytes> NodeRuntime::allgather_bytes(Bytes mine) {
  const int p = node_count();
  std::vector<Bytes> result(static_cast<size_t>(p));
  if (p == 1) {
    result[0] = std::move(mine);
    return result;
  }
  const uint64_t seq = coll_seq_++;
  if (node_ != 0) {
    token_send(0, kChColl, seq, 0, std::move(mine));
    const Bytes packed = token_recv(0, kChColl, seq, 1);
    ByteReader r(packed);
    for (int n = 0; n < p; ++n) {
      result[static_cast<size_t>(n)] = [&] {
        auto v = r.get_vector<char>();
        Bytes b(v.size());
        if (!v.empty()) std::memcpy(b.data(), v.data(), v.size());
        return b;
      }();
    }
    return result;
  }
  result[0] = std::move(mine);
  for (int n = 1; n < p; ++n) {
    result[static_cast<size_t>(n)] = token_recv(n, kChColl, seq, 0);
  }
  ByteWriter packed;
  for (int n = 0; n < p; ++n) {
    packed.put_span(std::span<const char>(
        reinterpret_cast<const char*>(result[static_cast<size_t>(n)].data()),
        result[static_cast<size_t>(n)].size()));
  }
  const Bytes packed_bytes = std::move(packed).take();
  for (int n = 1; n < p; ++n) {
    token_send(n, kChColl, seq, 1, packed_bytes);
  }
  return result;
}

}  // namespace ppm
