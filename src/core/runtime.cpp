#include "core/runtime.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ppm {

// ppm::check mirrors the write-op encoding without including core headers
// (core links the check library, not the other way around). Keep in sync.
static_assert(check::kOpSet == static_cast<uint8_t>(detail::WriteOp::kSet));
static_assert(check::kOpAdd == static_cast<uint8_t>(detail::WriteOp::kAdd));
static_assert(check::kOpMin == static_cast<uint8_t>(detail::WriteOp::kMin));
static_assert(check::kOpMax == static_cast<uint8_t>(detail::WriteOp::kMax));

namespace {

/// Node-collective token channels.
constexpr uint32_t kChBarrier = 0;
constexpr uint32_t kChColl = 1;

/// Chunk size of an owner's block distribution: ceil(n / nodes).
uint64_t chunk_of(uint64_t n, int nodes) {
  return (n + static_cast<uint64_t>(nodes) - 1) / static_cast<uint64_t>(nodes);
}

struct ParsedEntry {
  uint64_t vp_rank;
  uint32_t seq;
  uint32_t array;
  uint8_t op;
  uint64_t index;
  const std::byte* value;
};

}  // namespace

// ---------------------------------------------------------------------------
// Runtime (cluster-wide)
// ---------------------------------------------------------------------------

Runtime::Runtime(cluster::Machine& machine, RuntimeOptions options)
    : machine_(machine), options_(options) {
  nodes_.reserve(static_cast<size_t>(machine.nodes()));
  for (int n = 0; n < machine.nodes(); ++n) {
    nodes_.push_back(std::unique_ptr<NodeRuntime>(new NodeRuntime(*this, n)));
  }
}

Runtime::~Runtime() = default;

NodeRuntime& Runtime::node(int node_id) {
  PPM_CHECK(node_id >= 0 && node_id < static_cast<int>(nodes_.size()),
            "bad node id %d", node_id);
  return *nodes_[static_cast<size_t>(node_id)];
}

RunResult Runtime::collect() const {
  RunResult r;
  r.duration_ns = machine_.last_run_duration_ns();
  const auto& fs = machine_.fabric().stats();
  r.network_messages = fs.inter_messages.value();
  r.network_bytes = fs.inter_bytes.value();
  r.intranode_messages = fs.intra_messages.value();
  r.intranode_bytes = fs.intra_bytes.value();
  for (const auto& n : nodes_) {
    const auto& c = n->counters();
    r.global_phases += c.global_phases;
    r.node_phases += c.node_phases;
    r.remote_blocks_fetched += c.blocks_fetched;
    r.remote_reads_served_from_cache += c.reads_from_cache;
    r.write_entries += c.write_entries;
    r.bundles_sent += c.bundles_sent;
    r.fetch_stall_ns += c.fetch_stall_ns;
    r.prefetch_issued += c.prefetch_issued;
    r.prefetch_hits += c.prefetch_hits;
    r.entries_combined += c.entries_combined;
    if (const check::PhaseValidator* v = n->validator()) {
      r.check_report.merge(v->report());
    }
  }
  // Phases are counted per node; report cluster-wide phase counts.
  r.global_phases /= static_cast<uint64_t>(std::max(1, machine_.nodes()));
  return r;
}

// ---------------------------------------------------------------------------
// NodeRuntime: lifecycle
// ---------------------------------------------------------------------------

NodeRuntime::NodeRuntime(Runtime& shared, int node_id)
    : shared_(shared), node_(node_id), opts_(shared.options()),
      engine_(&shared.machine().engine()) {
  if (opts_.validate_phases) {
    validator_ = std::make_unique<check::PhaseValidator>(node_);
  }
}

int NodeRuntime::node_count() const { return shared_.machine().nodes(); }
int NodeRuntime::cores_per_node() const {
  return shared_.machine().cores_per_node();
}

void NodeRuntime::start() {
  PPM_CHECK(!started_, "NodeRuntime::start called twice");
  auto& machine = shared_.machine();
  task_cv_ = std::make_unique<sim::ConditionVar>(machine.engine());
  arrivals_cv_ = std::make_unique<sim::ConditionVar>(machine.engine());
  dest_buffers_.resize(static_cast<size_t>(node_count()));
  combine_maps_.resize(static_cast<size_t>(node_count()));

  machine.spawn_at({node_, 0}, strfmt("n%d.svc", node_),
                   [this] { service_loop(); });
  for (int core = 1; core < cores_per_node(); ++core) {
    machine.spawn_at({node_, core}, strfmt("n%d.w%d", node_, core),
                     [this, core] {
                       uint64_t seen = 0;
                       for (;;) {
                         task_cv_->wait([&] {
                           return task_.shutdown || task_.generation != seen;
                         });
                         if (task_.shutdown) return;
                         seen = task_.generation;
                         run_chunks(core);
                         ++task_.workers_done;
                         task_cv_->notify_all();
                       }
                     });
  }
  started_ = true;
}

void NodeRuntime::finish() {
  PPM_CHECK(started_, "NodeRuntime::finish without start");
  PPM_CHECK(phase_scope_ == PhaseScope::kNone, "finish inside a phase");
  // Quiesce: after this barrier no peer will address this node again.
  barrier_global();
  task_.shutdown = true;
  task_cv_->notify_all();
  rt_send(node_, detail::rt_kind(detail::RtMsg::kShutdown), Bytes{});
}

// ---------------------------------------------------------------------------
// Shared-array directory
// ---------------------------------------------------------------------------

uint32_t NodeRuntime::create_array(bool global, uint64_t n,
                                   detail::ElemOps ops, Distribution dist) {
  PPM_CHECK(started_, "create array before NodeRuntime::start");
  PPM_CHECK(phase_scope_ == PhaseScope::kNone,
            "shared arrays must be created outside phases");
  PPM_CHECK(n > 0, "shared array needs at least one element");
  detail::ArrayRecord rec;
  rec.id = static_cast<uint32_t>(arrays_.size());
  rec.global = global;
  rec.n = n;
  rec.ops = ops;
  rec.dist = dist;
  rec.nodes = node_count();
  if (global) {
    rec.chunk = chunk_of(n, node_count());
    if (dist == Distribution::kBlock) {
      rec.chunk_base = std::min(n, rec.chunk * static_cast<uint64_t>(node_));
      rec.chunk_len = std::min(rec.chunk, n - rec.chunk_base);
    } else {
      rec.chunk_base = 0;
      rec.chunk_len = rec.owner_len(node_);
    }
    if (options().bundle_reads) {
      rec.block_elems =
          std::max<uint64_t>(1, options().read_block_bytes / ops.size);
      rec.blocks_per_chunk =
          (rec.chunk + rec.block_elems - 1) / rec.block_elems;
      rec.remote_block_ptr.assign(
          rec.blocks_per_chunk * static_cast<uint64_t>(node_count()),
          nullptr);
    }
  } else {
    rec.chunk = n;
    rec.chunk_base = 0;
    rec.chunk_len = n;
  }
  rec.storage.assign(rec.chunk_len * ops.size, std::byte{0});
  if (validator_) {
    validator_->on_array_created(rec.id, rec.global, rec.n, rec.ops.size,
                                 static_cast<uint8_t>(rec.dist),
                                 rec.nodes);
  }
  arrays_.push_back(std::move(rec));
  return arrays_.back().id;
}

const detail::ArrayRecord& NodeRuntime::array(uint32_t id) const {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  return arrays_[id];
}

std::span<const std::byte> NodeRuntime::committed_bytes(uint32_t id) const {
  const auto& rec = array(id);
  return {rec.storage.data(), rec.storage.size()};
}

int NodeRuntime::owner_of(uint32_t id, uint64_t index) const {
  const auto& rec = array(id);
  PPM_CHECK(index < rec.n, "index %llu out of range (array size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  return rec.global ? rec.owner_of(index) : node_;
}

// ---------------------------------------------------------------------------
// Element access
// ---------------------------------------------------------------------------

Vp* NodeRuntime::current_vp() const {
  if (!engine_->on_fiber()) return nullptr;
  const uint32_t fid = engine_->current_fiber_id();
  return fid < vp_by_fiber_.size() ? vp_by_fiber_[fid] : nullptr;
}

uint64_t NodeRuntime::request_epoch() const {
  return phase_scope_ == PhaseScope::kGlobal ? epoch_ : detail::kAsyncEpoch;
}

void NodeRuntime::read_elem(uint32_t id, uint64_t index, std::byte* out) {
  const auto& rec = array(id);
  PPM_CHECK(index < rec.n, "read index %llu out of range (size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(opts_.access_overhead_ns);
  }
  if (validator_) [[unlikely]] validator_->on_read();
  // Committed storage holds phase-start values during a phase (writes are
  // deferred), so local reads are plain loads.
  if (!rec.global || rec.owner_of(index) == node_) {
    const uint64_t local = rec.global ? rec.local_of(index) : index;
    std::memcpy(out, rec.storage.data() + local * rec.ops.size,
                rec.ops.size);
    return;
  }
  std::memcpy(out, remote_ref(rec, index), rec.ops.size);
}

const std::byte* NodeRuntime::read_ref(uint32_t id, uint64_t index) {
  const auto& rec = array(id);
  PPM_CHECK(index < rec.n, "read index %llu out of range (size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  charge_access();
  if (validator_) [[unlikely]] validator_->on_read();
  if (!rec.global || rec.owner_of(index) == node_) {
    const uint64_t local = rec.global ? rec.local_of(index) : index;
    return rec.storage.data() + local * rec.ops.size;
  }
  return remote_ref(rec, index);
}

const std::byte* NodeRuntime::remote_ref(const detail::ArrayRecord& rec,
                                         uint64_t index) {
  // All coordinates on the wire are owner-local, which keeps the protocol
  // identical for every distribution.
  const bool bundle = options().bundle_reads && rec.block_elems > 0;
  const int owner = rec.owner_of(index);
  const uint64_t llocal = rec.local_of(index);
  const uint64_t olen = rec.owner_len(owner);
  const uint64_t block_elems = bundle ? rec.block_elems : 1;
  const uint64_t first = (llocal / block_elems) * block_elems;
  const uint64_t count = std::min(block_elems, olen - first);
  const BlockKey key{rec.id,
                     (static_cast<uint64_t>(owner) << 40) | first};

  auto elem_of = [&](const Bytes& data) -> const std::byte* {
    PPM_CHECK(data.size() == count * rec.ops.size,
              "short get response (%zu bytes for %llu elements)", data.size(),
              static_cast<unsigned long long>(count));
    return data.data() + (llocal - first) * rec.ops.size;
  };

  if (bundle) {
    if (const auto it = block_cache_.find(key); it != block_cache_.end()) {
      ++counters_.reads_from_cache;
      publish_block(rec, key, it->second);
      return elem_of(it->second);
    }
    if (const auto it = pending_blocks_.find(key);
        it != pending_blocks_.end()) {
      // Request combining: another VP (or the lookahead engine) already
      // asked for this block; wait for the in-flight fetch and serve from
      // the freshly cached block.
      auto slot = it->second;  // keep alive across the wait
      wait_fetch(*slot);
      ++counters_.reads_from_cache;
      const auto cached = block_cache_.find(key);
      PPM_CHECK(cached != block_cache_.end(),
                "combined fetch did not populate the block cache");
      publish_block(rec, key, cached->second);
      return elem_of(cached->second);
    }
    auto slot = issue_block_fetch(rec, owner, first, count,
                                  /*prefetch=*/false);
    maybe_stream_prefetch(rec, owner, first, olen);
    wait_fetch(*slot);
    // The service fiber cached the payload and published it on arrival.
    const auto it = block_cache_.find(key);
    PPM_CHECK(it != block_cache_.end(), "fetched block missing from cache");
    return elem_of(it->second);
  }

  auto slot = std::make_shared<FetchSlot>(*engine_);
  slot->key = key;
  slot->req_id = next_req_id();
  outstanding_[slot->req_id] = slot;
  ByteWriter w;
  w.put(rec.id);
  w.put(first);
  w.put(count);
  w.put(slot->req_id);
  w.put(request_epoch());
  rt_send(owner, detail::rt_kind(detail::RtMsg::kGetBlock),
          std::move(w).take());
  ++counters_.blocks_fetched;
  wait_fetch(*slot);
  // Unbundled single-element fetch: park the payload in the phase arena so
  // view() pointers stay valid until commit.
  unbundled_arena_.push_back(std::move(slot->data));
  return elem_of(unbundled_arena_.back());
}

std::shared_ptr<NodeRuntime::FetchSlot> NodeRuntime::issue_block_fetch(
    const detail::ArrayRecord& rec, int owner, uint64_t first, uint64_t count,
    bool prefetch) {
  auto slot = std::make_shared<FetchSlot>(*engine_);
  slot->cache_on_arrival = true;
  slot->prefetched = prefetch;
  slot->key = BlockKey{
      rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | first};
  slot->record = &arrays_[rec.id];
  slot->block_slot = static_cast<uint64_t>(owner) * rec.blocks_per_chunk +
                     first / rec.block_elems;
  slot->req_id = next_req_id();
  outstanding_[slot->req_id] = slot;
  pending_blocks_[slot->key] = slot;
  ByteWriter w;
  w.put(rec.id);
  w.put(first);
  w.put(count);
  w.put(slot->req_id);
  w.put(request_epoch());
  rt_send(owner,
          detail::rt_kind(prefetch ? detail::RtMsg::kPrefetchBlock
                                   : detail::RtMsg::kGetBlock),
          std::move(w).take());
  ++counters_.blocks_fetched;
  if (prefetch) ++counters_.prefetch_issued;
  return slot;
}

void NodeRuntime::wait_fetch(FetchSlot& slot) {
  if (opts_.overlap_reads) {
    // Miss-switching: instead of idling for the round trip, run other
    // ready VPs of this phase on the same fiber. Each run_one_ready_vp
    // call executes one full VP body (which may itself miss and nest).
    while (!slot.done && run_one_ready_vp()) {
    }
  }
  if (slot.done) return;
  const int64_t t0 = engine_->now_ns();
  slot.waiters.wait([&] { return slot.done; });
  const int64_t stalled = engine_->now_ns() - t0;
  if (stalled > 0) {
    counters_.fetch_stall_ns += static_cast<uint64_t>(stalled);
  }
}

bool NodeRuntime::claim_one_vp(uint32_t fid, uint64_t* out_vp) {
  if (options().schedule == SchedulePolicy::kStatic) {
    if (fid >= static_range_.size()) return false;
    StaticRange& r = static_range_[fid];
    if (r.next >= r.end) return false;
    *out_vp = r.next++;
    return true;
  }
  if (task_.next >= task_.k_local) return false;
  *out_vp = task_.next++;
  return true;
}

bool NodeRuntime::run_one_ready_vp() {
  if (task_.body == nullptr || phase_scope_ == PhaseScope::kNone) {
    return false;  // reads outside phases have nothing to switch to
  }
  const uint32_t fid = engine_->current_fiber_id();
  if (fid >= vp_by_fiber_.size() || vp_by_fiber_[fid] == nullptr) {
    return false;  // not a worker fiber mid-phase
  }
  if (fid >= miss_depth_.size()) miss_depth_.resize(fid + 1, 0);
  if (miss_depth_[fid] >= opts_.overlap_max_depth) return false;
  uint64_t i = 0;
  if (!claim_one_vp(fid, &i)) return false;
  Vp* outer = vp_by_fiber_[fid];
  ++miss_depth_[fid];
  Vp vp;
  vp.node_rank_ = i;
  vp.global_rank_ = task_.k_offset + i;
  vp_by_fiber_[fid] = &vp;
  (*task_.body)(vp);
  vp_by_fiber_[fid] = outer;
  --miss_depth_[fid];
  return true;
}

void NodeRuntime::maybe_stream_prefetch(const detail::ArrayRecord& rec,
                                        int owner, uint64_t first,
                                        uint64_t owner_len) {
  const uint32_t lookahead = opts_.prefetch_lookahead_blocks;
  if (lookahead == 0 || first == 0) return;
  // Fetch ahead only when the previous adjacent block was already wanted —
  // a detected forward stream. Random access then rarely pays for blocks
  // it will never touch.
  const BlockKey prev{rec.id,
                      (static_cast<uint64_t>(owner) << kBlockOwnerShift) |
                          (first - rec.block_elems)};
  if (!block_cache_.contains(prev) && !pending_blocks_.contains(prev)) {
    return;
  }
  uint64_t next = first + rec.block_elems;
  for (uint32_t j = 0; j < lookahead && next < owner_len;
       ++j, next += rec.block_elems) {
    const BlockKey key{
        rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | next};
    if (block_cache_.contains(key) || pending_blocks_.contains(key)) {
      continue;
    }
    issue_block_fetch(rec, owner, next,
                      std::min(rec.block_elems, owner_len - next),
                      /*prefetch=*/true);
  }
}

void NodeRuntime::publish_block(const detail::ArrayRecord& rec,
                                const BlockKey& key, const Bytes& cached) {
  auto& mut = arrays_[rec.id];
  const uint64_t owner = key.block >> kBlockOwnerShift;
  const uint64_t first = key.block & ((uint64_t{1} << kBlockOwnerShift) - 1);
  if (!mut.remote_block_ptr.empty()) {
    mut.remote_block_ptr[owner * mut.blocks_per_chunk +
                         first / mut.block_elems] = cached.data();
  }
  if (prefetched_keys_.erase(key) != 0) {
    ++counters_.prefetch_hits;
    // The consumer just reached a prefetched block: keep the stream one
    // block ahead (demand misses never happen again on a perfect stream,
    // so this touch is the only point that can extend it).
    maybe_stream_prefetch(rec, static_cast<int>(owner), first,
                          rec.owner_len(static_cast<int>(owner)));
  }
}

void NodeRuntime::prefetch_elems(uint32_t id,
                                 std::span<const uint64_t> indices) {
  const auto& rec = array(id);
  if (!rec.global || !options().bundle_reads || rec.block_elems == 0) return;
  for (const uint64_t index : indices) {
    PPM_CHECK(index < rec.n, "prefetch index %llu out of range (size %llu)",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(rec.n));
    const int owner = rec.owner_of(index);
    if (owner == node_) continue;
    const uint64_t llocal = rec.local_of(index);
    const uint64_t first = (llocal / rec.block_elems) * rec.block_elems;
    const BlockKey key{
        rec.id, (static_cast<uint64_t>(owner) << kBlockOwnerShift) | first};
    if (block_cache_.contains(key) || pending_blocks_.contains(key)) {
      continue;
    }
    const uint64_t olen = rec.owner_len(owner);
    issue_block_fetch(rec, owner, first,
                      std::min(rec.block_elems, olen - first),
                      /*prefetch=*/true);
  }
}

void NodeRuntime::gather_elems(uint32_t id,
                               std::span<const uint64_t> indices,
                               std::byte* out) {
  const auto& rec = array(id);
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(
        opts_.access_overhead_ns *
        static_cast<int64_t>(std::max<size_t>(1, indices.size() / 8)));
  }
  if (validator_) [[unlikely]] validator_->on_read(indices.size());
  // Partition by owner; local indices are copied directly, remote owners
  // each get exactly one indexed-get request (explicit bundling). Owners
  // are dense small integers, so a flat vector beats an ordered map.
  struct Group {
    std::vector<uint64_t> positions;
    std::vector<uint64_t> indices;  // owner-local coordinates
  };
  std::vector<Group> groups(static_cast<size_t>(node_count()));
  for (size_t pos = 0; pos < indices.size(); ++pos) {
    const uint64_t index = indices[pos];
    PPM_CHECK(index < rec.n, "gather index %llu out of range",
              static_cast<unsigned long long>(index));
    const int owner = rec.global ? rec.owner_of(index) : node_;
    if (owner == node_) {
      const uint64_t local = rec.global ? rec.local_of(index) : index;
      std::memcpy(out + pos * rec.ops.size,
                  rec.storage.data() + local * rec.ops.size, rec.ops.size);
    } else {
      auto& g = groups[static_cast<size_t>(owner)];
      g.positions.push_back(pos);
      g.indices.push_back(rec.local_of(index));
    }
  }
  struct Wait {
    const Group* group;
    std::shared_ptr<FetchSlot> slot;
  };
  std::vector<Wait> waits;
  for (int owner = 0; owner < node_count(); ++owner) {
    const Group& group = groups[static_cast<size_t>(owner)];
    if (group.positions.empty()) continue;
    auto slot = std::make_shared<FetchSlot>(*engine_);
    slot->req_id = next_req_id();
    outstanding_[slot->req_id] = slot;
    ByteWriter w;
    w.put(rec.id);
    w.put(slot->req_id);
    w.put(request_epoch());
    w.put_vector(group.indices);
    rt_send(owner, detail::rt_kind(detail::RtMsg::kGetIndexed),
            std::move(w).take());
    ++counters_.blocks_fetched;
    waits.push_back(Wait{&group, std::move(slot)});
  }
  for (auto& wt : waits) {
    // The service fiber erases each request from outstanding_ by its
    // recorded id when the response arrives; no cleanup scan needed here.
    wait_fetch(*wt.slot);
    PPM_CHECK(wt.slot->data.size() == wt.group->indices.size() * rec.ops.size,
              "short indexed-get response");
    for (size_t j = 0; j < wt.group->positions.size(); ++j) {
      std::memcpy(out + wt.group->positions[j] * rec.ops.size,
                  wt.slot->data.data() + j * rec.ops.size, rec.ops.size);
    }
  }
}

void NodeRuntime::write_elem(uint32_t id, uint64_t index,
                             const std::byte* value, detail::WriteOp op) {
  PPM_CHECK(id < arrays_.size(), "unknown shared array id %u", id);
  auto& rec = arrays_[id];
  PPM_CHECK(index < rec.n, "write index %llu out of range (size %llu)",
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(rec.n));
  if (opts_.access_overhead_ns > 0) {
    engine_->advance_ns(opts_.access_overhead_ns);
  }

  if (phase_scope_ == PhaseScope::kNone) {
    // Outside phases only the node program runs; writes apply immediately.
    // Remote global writes are not allowed here — data exchange between
    // nodes happens through phases.
    if (rec.global) {
      PPM_CHECK(rec.owner_of(index) == node_,
                "write to remote global element outside a phase");
      rec.ops.apply(rec.storage.data() + rec.local_of(index) * rec.ops.size,
                    value, op);
    } else {
      rec.ops.apply(rec.storage.data() + index * rec.ops.size, value, op);
    }
    return;
  }

  PPM_CHECK(!(phase_scope_ == PhaseScope::kNode && rec.global),
            "global shared write inside a node phase");
  Vp* vp = current_vp();
  PPM_CHECK(vp != nullptr, "shared write inside a phase but outside a VP");
  detail::WireEntryHeader hdr{id, static_cast<uint8_t>(op), index,
                              vp->global_rank_, vp->next_seq_++};
  ++counters_.write_entries;
  if (validator_) [[unlikely]] validator_->on_write();

  if (rec.global) {
    const int owner = rec.owner_of(index);
    if (owner != node_) {
      if (opts_.combine_writes && try_combine(owner, hdr, value, rec.ops)) {
        return;  // folded into a buffered entry; nothing new to flush
      }
      ByteWriter& buf = dest_buffer(owner);
      const size_t offset = buf.size();
      detail::put_entry(buf, hdr, value, rec.ops.size);
      if (opts_.combine_writes) {
        combine_maps_[static_cast<size_t>(owner)][ElemKey{id, index}] =
            CombineSlot{offset, hdr.vp_rank, hdr.op};
      }
      maybe_eager_flush(owner);
      return;
    }
  }
  detail::put_entry(local_log_, hdr, value, rec.ops.size);
}

bool NodeRuntime::try_combine(int dest_node,
                              const detail::WireEntryHeader& hdr,
                              const std::byte* value,
                              const detail::ElemOps& ops) {
  auto& map = combine_maps_[static_cast<size_t>(dest_node)];
  const auto it = map.find(ElemKey{hdr.array_id, hdr.index});
  if (it == map.end()) return false;
  CombineSlot& slot = it->second;
  // Only the element's LAST buffered entry is tracked, so combining into
  // it is safe exactly when this write extends the same VP's same-op run:
  // commit applies a VP's entries contiguously in seq order, no other
  // entry for this element sits between the buffered one and this write,
  // and writes by other VPs order entirely before or after this VP's run
  // by rank either way. The merged entry keeps the OLD seq (its committed
  // position) and absorbs the new value.
  if (slot.vp_rank != hdr.vp_rank || slot.op != hdr.op) {
    return false;  // caller appends and re-points the map at the new entry
  }
  std::byte* entry_value = dest_buffer(dest_node).data() + slot.offset +
                           detail::kEntryHeaderBytes;
  if (static_cast<detail::WriteOp>(hdr.op) == detail::WriteOp::kSet) {
    // Superseded set: the old entry's slot now carries the newest value.
    std::memcpy(entry_value, value, ops.size);
  } else {
    // Same-VP accumulate run: pre-reduce into the buffered value.
    ops.apply(entry_value, value, static_cast<detail::WriteOp>(hdr.op));
  }
  ++counters_.entries_combined;
  return true;
}

ByteWriter& NodeRuntime::dest_buffer(int dest_node) {
  return dest_buffers_[static_cast<size_t>(dest_node)];
}

void NodeRuntime::maybe_eager_flush(int dest_node) {
  if (!options().eager_flush) return;
  ByteWriter& buf = dest_buffer(dest_node);
  if (buf.size() < options().flush_threshold_bytes) return;
  // Stream a fragment now so the transfer overlaps remaining computation.
  ByteWriter w;
  w.put(epoch_);
  w.put<uint8_t>(0);  // not the last fragment
  w.put_raw(buf.bytes().data(), buf.size());
  buf = ByteWriter{};
  // Buffered-entry offsets died with the buffer.
  combine_maps_[static_cast<size_t>(dest_node)].clear();
  rt_send(dest_node, detail::rt_kind(detail::RtMsg::kBundle),
          std::move(w).take());
  ++counters_.bundles_sent;
}

void NodeRuntime::flush_all_bundles_final() {
  for (int dest = 0; dest < node_count(); ++dest) {
    if (dest == node_) continue;
    ByteWriter& buf = dest_buffer(dest);
    ByteWriter w;
    w.put(epoch_);
    w.put<uint8_t>(1);  // last fragment: carries the end-of-phase marker
    w.put_raw(buf.bytes().data(), buf.size());
    buf = ByteWriter{};
    combine_maps_[static_cast<size_t>(dest)].clear();
    rt_send(dest, detail::rt_kind(detail::RtMsg::kBundle),
            std::move(w).take());
    ++counters_.bundles_sent;
  }
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

std::pair<uint64_t, uint64_t> NodeRuntime::coordinate_group(
    uint64_t k_local) {
  if (validator_) validator_->on_group_coordinated();
  ByteWriter w;
  w.put(k_local);
  const auto all = allgather_bytes(std::move(w).take());
  uint64_t offset = 0, total = 0;
  for (int n = 0; n < node_count(); ++n) {
    ByteReader r(all[static_cast<size_t>(n)]);
    const auto k = r.get<uint64_t>();
    if (n < node_) offset += k;
    total += k;
  }
  return {offset, total};
}

void NodeRuntime::run_phase(bool global, uint64_t k_local, uint64_t k_offset,
                            const std::function<void(Vp&)>& body) {
  PPM_CHECK(started_, "phase before NodeRuntime::start");
  PPM_CHECK(phase_scope_ == PhaseScope::kNone, "phases cannot nest");
  if (validator_) validator_->on_phase_start(global);
  phase_scope_ = global ? PhaseScope::kGlobal : PhaseScope::kNode;

  PhaseProfile profile;
  const bool profiling = opts_.profile_phases;
  if (profiling) {
    profile.global = global;
    profile.k_local = k_local;
    profile.start_ns = engine_->now_ns();
    profile.write_entries = counters_.write_entries;
    profile.blocks_fetched = counters_.blocks_fetched;
    profile.bundles_sent = counters_.bundles_sent;
    profile.fetch_stall_ns = counters_.fetch_stall_ns;
    profile.prefetch_hits = counters_.prefetch_hits;
    profile.entries_combined = counters_.entries_combined;
  }

  task_.body = &body;
  task_.k_local = k_local;
  task_.k_offset = k_offset;
  task_.next = 0;
  const uint64_t cores = static_cast<uint64_t>(cores_per_node());
  task_.chunk = options().chunk_size != 0
                    ? options().chunk_size
                    : std::max<uint64_t>(1, k_local / (cores * 8));
  task_.workers_done = 0;
  ++task_.generation;
  task_cv_->notify_all();

  run_chunks(/*core_index=*/0);
  task_cv_->wait(
      [&] { return task_.workers_done == cores_per_node() - 1; });
  task_.body = nullptr;

  phase_scope_ = PhaseScope::kNone;
  if (profiling) profile.compute_done_ns = engine_->now_ns();
  if (global) {
    commit_global();
    ++counters_.global_phases;
  } else {
    commit_node();
    ++counters_.node_phases;
  }
  if (profiling) {
    profile.committed_ns = engine_->now_ns();
    profile.write_entries = counters_.write_entries - profile.write_entries;
    profile.blocks_fetched =
        counters_.blocks_fetched - profile.blocks_fetched;
    profile.bundles_sent = counters_.bundles_sent - profile.bundles_sent;
    profile.fetch_stall_ns =
        counters_.fetch_stall_ns - profile.fetch_stall_ns;
    profile.prefetch_hits = counters_.prefetch_hits - profile.prefetch_hits;
    profile.entries_combined =
        counters_.entries_combined - profile.entries_combined;
    phase_profiles_.push_back(profile);
  }
}

void NodeRuntime::run_chunks(int core_index) {
  const uint64_t k = task_.k_local;
  if (k == 0) return;
  const uint32_t fid = engine_->current_fiber_id();
  Vp vp;
  if (fid >= vp_by_fiber_.size()) vp_by_fiber_.resize(fid + 1, nullptr);
  vp_by_fiber_[fid] = &vp;

  auto run_range = [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      vp.node_rank_ = i;
      vp.global_rank_ = task_.k_offset + i;
      vp.next_seq_ = 0;
      (*task_.body)(vp);
    }
  };

  if (options().schedule == SchedulePolicy::kStatic) {
    const uint64_t cores = static_cast<uint64_t>(cores_per_node());
    const uint64_t per_core = (k + cores - 1) / cores;
    const uint64_t begin =
        std::min(k, per_core * static_cast<uint64_t>(core_index));
    // Published through a cursor so miss-switching can claim VPs from this
    // core's range while the fiber waits on a fetch; claiming one VP at a
    // time guarantees none runs twice. No reference is held across the
    // body (another fiber may grow the vector while this one is blocked).
    if (fid >= static_range_.size()) static_range_.resize(fid + 1);
    static_range_[fid] = StaticRange{begin, std::min(k, begin + per_core)};
    for (;;) {
      const uint64_t i = static_range_[fid].next;
      if (i >= static_range_[fid].end) break;
      ++static_range_[fid].next;
      run_range(i, i + 1);
    }
  } else {
    for (;;) {
      const uint64_t begin = task_.next;
      if (begin >= k) break;
      const uint64_t end = std::min(k, begin + task_.chunk);
      task_.next = end;  // no yield between read and update: atomic enough
      run_range(begin, end);
      // Let the other core fibers grab chunks: without this, a body that
      // never blocks would drain the whole queue in one host slice and the
      // phase would execute serially in virtual time.
      engine_->yield();
    }
  }
  vp_by_fiber_[fid] = nullptr;
}

void NodeRuntime::commit_global() {
  // 1. Ship the remaining write entries; every peer gets exactly one
  //    last-marker fragment per phase (possibly empty).
  flush_all_bundles_final();

  // 2. Wait until every peer's last-marker for this epoch arrived.
  if (node_count() > 1) {
    arrivals_cv_->wait(
        [&] { return staged_last_markers_[epoch_] == node_count() - 1; });
  }

  // 3. Global barrier: after it, no node still reads phase-start values
  //    (reads are synchronous within the VP loop) and all bundles are
  //    staged everywhere.
  barrier_global();

  // 3b. Sanitizer: exchange SPMD-lockstep fingerprints while every node is
  //     parked at this commit anyway (piggybacks on the token/allgather
  //     path; no-op unless validate_phases).
  validate_lockstep();

  // 4. Apply local log + staged fragments in deterministic order.
  std::vector<std::span<const std::byte>> buffers;
  buffers.emplace_back(local_log_.bytes());
  auto staged = staged_bundles_.find(epoch_);
  if (staged != staged_bundles_.end()) {
    for (const Bytes& b : staged->second) buffers.emplace_back(b);
  }
  if (validator_) validator_->begin_commit(/*global_phase=*/true, epoch_);
  apply_staged_entries(std::move(buffers));
  validate_commit_finish();
  local_log_ = ByteWriter{};
  if (staged != staged_bundles_.end()) staged_bundles_.erase(staged);
  staged_last_markers_.erase(epoch_);

  // 5. New epoch: phase-start snapshot changes, so the read cache dies.
  ++epoch_;
  if (!block_cache_.empty()) {
    for (auto& rec : arrays_) {
      if (!rec.remote_block_ptr.empty()) {
        std::fill(rec.remote_block_ptr.begin(), rec.remote_block_ptr.end(),
                  nullptr);
      }
    }
  }
  block_cache_.clear();
  prefetched_keys_.clear();
  unbundled_arena_.clear();
  // Demand reads complete inside the phase (their VP waits), but lookahead
  // fetches issued late may still be in flight: abandon them. The slot
  // stays in outstanding_ so a response that does arrive (the owner served
  // it before committing past our epoch) is recognized and discarded; an
  // owner that committed first drops the request instead.
  for (auto& [key, slot] : pending_blocks_) {
    PPM_CHECK(slot->prefetched && !slot->done,
              "demand reads still pending at end-of-phase commit");
    slot->abandoned = true;
  }
  pending_blocks_.clear();

  // 6. Serve get requests from nodes that raced ahead into the next phase.
  serve_deferred_gets();
}

void NodeRuntime::commit_node() {
  std::vector<std::span<const std::byte>> buffers;
  buffers.emplace_back(local_log_.bytes());
  if (validator_) {
    validator_->begin_commit(/*global_phase=*/false,
                             counters_.node_phases);
  }
  apply_staged_entries(std::move(buffers));
  validate_commit_finish();
  local_log_ = ByteWriter{};
  unbundled_arena_.clear();  // view() pointers die with the phase
}

void NodeRuntime::apply_staged_entries(
    std::vector<std::span<const std::byte>> buffers) {
  std::vector<ParsedEntry> entries;
  uint8_t op_mask = 0;  // bit per WriteOp value seen in this batch
  for (const auto& buf : buffers) {
    ByteReader r(buf);
    while (!r.exhausted()) {
      ParsedEntry e{};
      e.array = r.get<uint32_t>();
      e.op = r.get<uint8_t>();
      e.index = r.get<uint64_t>();
      e.vp_rank = r.get<uint64_t>();
      e.seq = r.get<uint32_t>();
      PPM_CHECK(e.array < arrays_.size(),
                "write bundle names unknown array %u", e.array);
      const auto value = r.view(arrays_[e.array].ops.size);
      e.value = value.data();
      op_mask |= static_cast<uint8_t>(1u << e.op);
      if (validator_) [[unlikely]] {
        validator_->on_commit_entry(e.array, e.index, e.op, e.vp_rank);
      }
      entries.push_back(e);
    }
  }
  // Deterministic conflict resolution: ascending (global VP rank, VP-local
  // sequence); plain sets resolve to the highest-ranked writer's last
  // write. A batch that uses exactly one accumulate op (all-adds, or
  // all-mins, ...) — the common histogram/BFS/relaxation shape — skips
  // ordering entirely: a single commutative op yields the same result in
  // any order. Mixed op kinds do NOT commute with each other (min after
  // add differs from add after min), so they take the ordered path.
  //
  // The ordered path is a bucket pass keyed on (vp_rank, seq) rather than
  // a comparison sort of the whole batch: each VP's entries already sit in
  // seq order within its stream (program order, and fragments between one
  // src/dst pair deliver in order), so grouping entry indices by vp_rank
  // and walking ranks ascending reproduces the fully sorted order in
  // O(n + V log V). A per-bucket ordering check guards the delivery
  // assumption and falls back to sorting just that bucket.
  const bool single_commutative_op =
      (op_mask & (op_mask - 1)) == 0 &&
      (op_mask & (1u << static_cast<uint8_t>(detail::WriteOp::kSet))) == 0;
  std::vector<uint32_t> order;
  if (!single_commutative_op && !entries.empty()) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> by_rank;
    std::vector<uint64_t> ranks;
    for (uint32_t idx = 0; idx < entries.size(); ++idx) {
      auto& bucket = by_rank[entries[idx].vp_rank];
      if (bucket.empty()) ranks.push_back(entries[idx].vp_rank);
      bucket.push_back(idx);
    }
    std::sort(ranks.begin(), ranks.end());
    order.reserve(entries.size());
    const auto seq_less = [&](uint32_t a, uint32_t b) {
      return entries[a].seq < entries[b].seq;
    };
    for (const uint64_t rank : ranks) {
      auto& bucket = by_rank[rank];
      if (!std::is_sorted(bucket.begin(), bucket.end(), seq_less)) {
        std::sort(bucket.begin(), bucket.end(), seq_less);
      }
      order.insert(order.end(), bucket.begin(), bucket.end());
    }
  } else {
    order.resize(entries.size());
    for (uint32_t idx = 0; idx < entries.size(); ++idx) order[idx] = idx;
  }
  for (const uint32_t idx : order) {
    const ParsedEntry& e = entries[idx];
    auto& rec = arrays_[e.array];
    PPM_CHECK(!rec.global || rec.owner_of(e.index) == node_,
              "write entry for element %llu not owned by node %d",
              static_cast<unsigned long long>(e.index), node_);
    const uint64_t local = rec.global ? rec.local_of(e.index) : e.index;
    PPM_CHECK(local < rec.chunk_len,
              "write entry for element %llu out of local range",
              static_cast<unsigned long long>(e.index));
    rec.ops.apply(rec.storage.data() + local * rec.ops.size, e.value,
                  static_cast<detail::WriteOp>(e.op));
  }
}

// ---------------------------------------------------------------------------
// ppm::check integration
// ---------------------------------------------------------------------------

void NodeRuntime::validate_commit_finish() {
  if (!validator_) return;
  const uint64_t new_errors = validator_->finish_commit();
  if (new_errors > 0 && opts_.validate_fail_fast) {
    const auto& vs = validator_->report().violations;
    throw Error("ppm::check (fail-fast): " +
                (vs.empty() ? std::string("phase-semantics violation")
                            : vs.back().to_string()));
  }
}

void NodeRuntime::validate_lockstep() {
  if (!validator_) return;
  // Serialize this node's fingerprint and allgather it. Every node runs
  // this at the same global commit (options are cluster-wide), so the
  // collective is itself in lockstep even when the program is not.
  const check::Fingerprint mine = validator_->fingerprint();
  ByteWriter w;
  w.put(mine.hash);
  w.put(mine.arrays_created);
  w.put(mine.groups_coordinated);
  w.put(mine.global_phases);
  const auto all_bytes = allgather_bytes(std::move(w).take());
  std::vector<check::Fingerprint> all(all_bytes.size());
  for (size_t n = 0; n < all_bytes.size(); ++n) {
    ByteReader r(all_bytes[n]);
    all[n].hash = r.get<uint64_t>();
    all[n].arrays_created = r.get<uint64_t>();
    all[n].groups_coordinated = r.get<uint64_t>();
    all[n].global_phases = r.get<uint64_t>();
  }
  const uint64_t new_errors = validator_->check_lockstep(all, epoch_);
  if (new_errors > 0 && opts_.validate_fail_fast) {
    const auto& vs = validator_->report().violations;
    throw Error("ppm::check (fail-fast): " +
                (vs.empty() ? std::string("lockstep mismatch")
                            : vs.back().to_string()));
  }
}

// ---------------------------------------------------------------------------
// Service fiber
// ---------------------------------------------------------------------------

void NodeRuntime::rt_send(int dst_node, uint64_t kind, Bytes payload) {
  net::Message m;
  m.src_node = node_;
  m.src_port = shared_.machine().service_port();
  m.dst_node = dst_node;
  m.dst_port = shared_.machine().service_port();
  m.kind = kind;
  m.payload = std::move(payload);
  shared_.machine().fabric().send(std::move(m));
}

void NodeRuntime::service_loop() {
  auto& endpoint = shared_.machine().fabric().endpoint(
      node_, shared_.machine().service_port());
  for (;;) {
    net::Message msg = endpoint.recv();
    switch (detail::rt_class(msg.kind)) {
      case detail::RtMsg::kGetBlock:
      case detail::RtMsg::kPrefetchBlock:
      case detail::RtMsg::kGetIndexed:
        handle_get(std::move(msg));
        break;
      case detail::RtMsg::kGetResp: {
        ByteReader r(msg.payload);
        const auto req_id = r.get<uint64_t>();
        const auto it = outstanding_.find(req_id);
        PPM_CHECK(it != outstanding_.end(),
                  "get response for unknown request %llu",
                  static_cast<unsigned long long>(req_id));
        auto slot = std::move(it->second);
        outstanding_.erase(it);
        if (slot->abandoned) break;  // lookahead from a committed phase
        Bytes payload(msg.payload.begin() + sizeof(uint64_t),
                      msg.payload.end());
        if (slot->cache_on_arrival) {
          // Populate the block cache here so combined waiters can be woken
          // in any order relative to the initiating fiber. Demand blocks
          // are also published in the array's direct-mapped table for
          // inline reads; prefetched blocks publish on their first demand
          // touch instead, so lookahead hits stay observable.
          Bytes& cached = block_cache_[slot->key];
          cached = std::move(payload);
          pending_blocks_.erase(slot->key);
          if (slot->prefetched) {
            prefetched_keys_.insert(slot->key);
          } else {
            slot->record->remote_block_ptr[slot->block_slot] = cached.data();
          }
        } else {
          slot->data = std::move(payload);
        }
        slot->done = true;
        slot->waiters.wake_all();
        break;
      }
      case detail::RtMsg::kBundle:
        handle_bundle(std::move(msg));
        break;
      case detail::RtMsg::kToken:
        handle_token(std::move(msg));
        break;
      case detail::RtMsg::kShutdown:
        return;
    }
  }
}

void NodeRuntime::handle_get(net::Message msg) {
  // Peek the requester's epoch (layout differs between the kinds).
  ByteReader r(msg.payload);
  uint64_t req_epoch;
  if (detail::rt_class(msg.kind) != detail::RtMsg::kGetIndexed) {
    (void)r.get<uint32_t>();  // array
    (void)r.get<uint64_t>();  // first
    (void)r.get<uint64_t>();  // count
    (void)r.get<uint64_t>();  // req id
    req_epoch = r.get<uint64_t>();
  } else {
    (void)r.get<uint32_t>();  // array
    (void)r.get<uint64_t>();  // req id
    req_epoch = r.get<uint64_t>();
  }
  if (req_epoch != detail::kAsyncEpoch) {
    if (req_epoch < epoch_) {
      // A lookahead fetch can legitimately straggle past the requester's
      // commit (the requester abandoned its slot there): drop it. For
      // demand reads a stale epoch is a protocol bug.
      if (detail::rt_class(msg.kind) == detail::RtMsg::kPrefetchBlock) {
        return;
      }
      PPM_CHECK(false,
                "get request for already-committed epoch %llu (at %llu)",
                static_cast<unsigned long long>(req_epoch),
                static_cast<unsigned long long>(epoch_));
    }
    if (req_epoch > epoch_) {
      // Requester already passed the barrier we have not committed past:
      // serve after our commit so it sees the new phase-start snapshot.
      deferred_gets_.push_back(std::move(msg));
      return;
    }
  }
  serve_get(msg);
}

void NodeRuntime::serve_get(const net::Message& msg) {
  ByteReader r(msg.payload);
  ByteWriter reply;
  // All request coordinates are owner-local (i.e. indices into this
  // node's committed storage), for every distribution.
  if (detail::rt_class(msg.kind) != detail::RtMsg::kGetIndexed) {
    const auto id = r.get<uint32_t>();
    const auto first = r.get<uint64_t>();
    const auto count = r.get<uint64_t>();
    const auto req_id = r.get<uint64_t>();
    const auto& rec = array(id);
    PPM_CHECK(first + count <= rec.chunk_len,
              "get request [%llu, +%llu) outside node %d's storage",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(count), node_);
    reply.put(req_id);
    reply.put_raw(rec.storage.data() + first * rec.ops.size,
                  count * rec.ops.size);
  } else {
    const auto id = r.get<uint32_t>();
    const auto req_id = r.get<uint64_t>();
    (void)r.get<uint64_t>();  // epoch (already checked)
    const auto indices = r.get_vector<uint64_t>();
    const auto& rec = array(id);
    reply.put(req_id);
    for (const uint64_t index : indices) {
      PPM_CHECK(index < rec.chunk_len,
                "indexed get for local element %llu outside node %d's "
                "storage",
                static_cast<unsigned long long>(index), node_);
      reply.put_raw(rec.storage.data() + index * rec.ops.size, rec.ops.size);
    }
  }
  rt_send(msg.src_node, detail::rt_kind(detail::RtMsg::kGetResp),
          std::move(reply).take());
}

void NodeRuntime::serve_deferred_gets() {
  std::vector<net::Message> still_deferred;
  for (auto& msg : deferred_gets_) {
    ByteReader r(msg.payload);
    uint64_t req_epoch;
    if (detail::rt_class(msg.kind) != detail::RtMsg::kGetIndexed) {
      (void)r.get<uint32_t>();
      (void)r.get<uint64_t>();
      (void)r.get<uint64_t>();
      (void)r.get<uint64_t>();
      req_epoch = r.get<uint64_t>();
    } else {
      (void)r.get<uint32_t>();
      (void)r.get<uint64_t>();
      req_epoch = r.get<uint64_t>();
    }
    if (req_epoch <= epoch_) {
      serve_get(msg);
    } else {
      still_deferred.push_back(std::move(msg));
    }
  }
  deferred_gets_ = std::move(still_deferred);
}

void NodeRuntime::handle_bundle(net::Message msg) {
  ByteReader r(msg.payload);
  const auto epoch = r.get<uint64_t>();
  const auto last = r.get<uint8_t>();
  const auto entries = r.view(r.remaining());
  staged_bundles_[epoch].emplace_back(entries.begin(), entries.end());
  if (last != 0) {
    ++staged_last_markers_[epoch];
    arrivals_cv_->notify_all();
  }
}

void NodeRuntime::handle_token(net::Message msg) {
  ByteReader r(msg.payload);
  TokenKey key{};
  key.src = msg.src_node;
  key.channel = r.get<uint32_t>();
  key.seq = r.get<uint64_t>();
  key.round = r.get<uint32_t>();
  const auto body = r.view(r.remaining());
  tokens_[key] = Bytes(body.begin(), body.end());
  arrivals_cv_->notify_all();
}

// ---------------------------------------------------------------------------
// Node-level collectives
// ---------------------------------------------------------------------------

void NodeRuntime::token_send(int dst_node, uint32_t channel, uint64_t seq,
                             uint32_t round, Bytes payload) {
  ByteWriter w;
  w.put(channel);
  w.put(seq);
  w.put(round);
  w.put_raw(payload.data(), payload.size());
  rt_send(dst_node, detail::rt_kind(detail::RtMsg::kToken),
          std::move(w).take());
}

Bytes NodeRuntime::token_recv(int src_node, uint32_t channel, uint64_t seq,
                              uint32_t round) {
  const TokenKey key{src_node, channel, seq, round};
  arrivals_cv_->wait([&] { return tokens_.count(key) != 0; });
  Bytes payload = std::move(tokens_[key]);
  tokens_.erase(key);
  return payload;
}

void NodeRuntime::barrier_global() {
  const int p = node_count();
  if (p == 1) return;
  const uint64_t seq = barrier_seq_++;
  uint32_t round = 0;
  for (int offset = 1; offset < p; offset *= 2, ++round) {
    token_send((node_ + offset) % p, kChBarrier, seq, round, Bytes{});
    (void)token_recv((node_ - offset % p + p) % p, kChBarrier, seq, round);
  }
}

std::vector<Bytes> NodeRuntime::allgather_bytes(Bytes mine) {
  const int p = node_count();
  std::vector<Bytes> result(static_cast<size_t>(p));
  if (p == 1) {
    result[0] = std::move(mine);
    return result;
  }
  const uint64_t seq = coll_seq_++;
  if (node_ != 0) {
    token_send(0, kChColl, seq, 0, std::move(mine));
    const Bytes packed = token_recv(0, kChColl, seq, 1);
    ByteReader r(packed);
    for (int n = 0; n < p; ++n) {
      result[static_cast<size_t>(n)] = [&] {
        auto v = r.get_vector<char>();
        Bytes b(v.size());
        if (!v.empty()) std::memcpy(b.data(), v.data(), v.size());
        return b;
      }();
    }
    return result;
  }
  result[0] = std::move(mine);
  for (int n = 1; n < p; ++n) {
    result[static_cast<size_t>(n)] = token_recv(n, kChColl, seq, 0);
  }
  ByteWriter packed;
  for (int n = 0; n < p; ++n) {
    packed.put_span(std::span<const char>(
        reinterpret_cast<const char*>(result[static_cast<size_t>(n)].data()),
        result[static_cast<size_t>(n)].size()));
  }
  const Bytes packed_bytes = std::move(packed).take();
  for (int n = 1; n < p; ++n) {
    token_send(n, kChColl, seq, 1, packed_bytes);
  }
  return result;
}

}  // namespace ppm
