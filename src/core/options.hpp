// Configuration of the PPM runtime and the ppm::run entry point.
#pragma once

#include <cstdint>

#include <string>
#include <vector>

#include "check/report.hpp"
#include "cluster/machine.hpp"
#include "trace/analyze.hpp"

namespace ppm {

/// VP-to-core scheduling policy ("conversion of virtual processors into
/// loops", §3.4 of the paper).
enum class SchedulePolicy : uint8_t {
  kStatic,   // contiguous K/C chunks per core
  kDynamic,  // cores grab chunks from a shared counter (load balancing)
};

/// Tunables of the runtime optimizations the paper describes in §3.3.
/// The ablation benches flip these switches.
struct RuntimeOptions {
  /// Bundle fine-grained remote reads: fetch cache blocks instead of single
  /// elements and combine concurrent requests for the same block.
  bool bundle_reads = true;
  /// Bytes per read cache block (rounded down to a whole number of
  /// elements, minimum one element).
  uint32_t read_block_bytes = 2048;

  /// Stream write bundles to their destination while the phase is still
  /// computing (communication/computation overlap). When false all write
  /// traffic is sent at the end-of-phase commit.
  bool eager_flush = true;
  /// Flush a destination's write buffer once it exceeds this many bytes.
  uint32_t flush_threshold_bytes = 64 * 1024;

  /// Overlap remote-read latency with computation ("miss-switching"): when
  /// a VP's read misses the block cache, its core runs other ready VPs of
  /// the phase while the fetch is in flight, and the blocked VP resumes
  /// when the response arrives. Commit results are unaffected — writes
  /// apply in (global VP rank, per-VP seq) order regardless of execution
  /// order — so this is purely a latency-hiding knob for the ablations.
  bool overlap_reads = true;
  /// Max VP bodies stacked on one core fiber by miss-switching (each level
  /// nests a body frame on the fiber's stack).
  uint32_t overlap_max_depth = 4;

  /// Automatic sequential lookahead: when a demand miss extends a detected
  /// forward block stream, fetch up to this many subsequent blocks of the
  /// same owner ahead of use. 0 disables the automatic path; the explicit
  /// prefetch() API works regardless.
  uint32_t prefetch_lookahead_blocks = 1;

  /// Coalesce block-fetch requests: while a core is miss-switching through
  /// ready VPs, their fetch requests queue per owner and ship as one
  /// kGetBlockList message when the core finally parks (prefetch sweeps
  /// flush at their end). Cuts per-message send overhead and message count
  /// on fan-out miss patterns; strictly fewer wire bytes (singletons still
  /// go out as plain per-block requests). Committed results are unaffected.
  bool batch_fetches = true;

  /// Stride-detecting lookahead: when consecutive demand misses on an
  /// array are a constant element stride apart (SpMV column walks, strided
  /// halos), prefetch the blocks holding the next `prefetch_lookahead_
  /// blocks` strided elements — the forward-adjacent stream detector only
  /// covers unit stride. Off, only adjacent streams are detected.
  bool strided_prefetch = true;

  /// Span-style bulk access: GlobalShared/NodeShared read_n/set_n/add_n
  /// resolve whole contiguous runs through the runtime in one call —
  /// bounds checks and owner lookups are hoisted out of the per-element
  /// loop, contiguous write runs ship as single range entries, and commits
  /// apply them memcpy/tight-loop style. Off, the bulk calls degrade to
  /// the per-element paths (bit-identical committed results either way).
  bool bulk_access = true;

  /// Sender-side write combining: pre-reduce same-VP accumulate entries
  /// and overwrite superseded same-VP set() entries per (array, element)
  /// inside the per-destination write buffers before they are flushed.
  /// Shrinks wire bytes and the commit batch; committed results stay
  /// bit-identical.
  bool combine_writes = true;

  /// Owner-side accumulate: route GlobalShared::accumulate/accumulate_n
  /// entries for remote elements through the compact kAccumList/
  /// kAccumBlock wire fragments (no per-entry (vp_rank, seq) — 12 fewer
  /// bytes per scalar entry/range record) and apply them at the owner
  /// after the ordered commit batch, grouped by source node ascending.
  /// Off, accumulate() degrades to the plain deferred-write path (same
  /// committed results for the exactly commutative/associative ops the
  /// API requires; the stress harness differentially checks both).
  bool owner_side_accumulate = true;

  /// Locality engine: run the migration planner automatically at every
  /// global-phase commit for owner-mapped (Distribution::kAdaptive)
  /// arrays. Off, kAdaptive arrays keep their initial block-aligned layout
  /// unless a program requests a one-shot planning round through
  /// rebalance(). Either way the plan is computed identically on every
  /// node from allgathered access counters, so no extra coordination
  /// rounds are needed and committed logical contents are unaffected.
  bool adaptive_distribution = false;
  /// Migrate a block only when its dominant remote accessor recorded at
  /// least this many times the owner's own accesses since the last
  /// planning round (hysteresis against ping-ponging).
  double migrate_remote_ratio = 2.0;
  /// Cap on blocks moved per planning round across all arrays (bounds the
  /// commit-time migration burst).
  uint32_t migrate_max_blocks_per_phase = 64;

  SchedulePolicy schedule = SchedulePolicy::kDynamic;
  /// VPs per scheduling chunk; 0 chooses max(1, K / (cores * 8)).
  uint64_t chunk_size = 0;

  /// Record a per-phase timing/traffic profile on every node (see
  /// NodeRuntime::phase_profiles). Small constant overhead per phase.
  bool profile_phases = false;

  /// Modeled per-shared-access software overhead, charged to the accessing
  /// core's virtual clock. Models the paper's observation that "accesses to
  /// the PPM shared variables go through the PPM runtime library, which
  /// will bring in some overhead". Zero disables the modeled component
  /// (the real code cost still shows up under measured calibration).
  int64_t access_overhead_ns = 0;

  /// Enable the ppm::trace event recorder (docs/OBSERVABILITY.md). Each
  /// node then records phase, scheduling, read/write-engine, and
  /// migration events into a per-node ring buffer, the fabric records
  /// message spans, and the engine records step marks; exporters turn the
  /// rings into Perfetto-loadable JSON and the analyzer into
  /// RunResult::trace_summary. Timestamps are virtual, so under
  /// CalibrationMode::kModeledOnly a fixed config traces bit-identically.
  /// Default off: the hooks reduce to a never-taken null-pointer branch
  /// (same trick as the validator), and committed results are unaffected
  /// either way.
  bool trace = false;
  /// Ring capacity per track, in events. On wrap the OLDEST events are
  /// overwritten and counted (trace::Recorder::dropped), keeping memory
  /// bounded while always retaining the most recent window.
  uint32_t trace_buffer_events = 1 << 16;

  /// Enable the ppm::check phase-semantics sanitizer (docs/validator.md).
  /// Each node then records per-phase access metadata, scans every commit
  /// batch for write-write set() races and non-commuting op mixes, and
  /// exchanges a lockstep fingerprint at every global commit. Findings
  /// land in RunResult::check_report. Default off: the hooks reduce to a
  /// never-taken null-pointer branch, so the hot path is unaffected.
  bool validate_phases = false;
  /// With validate_phases: throw ppm::Error at the commit point that
  /// detects the first error-severity violation instead of recording it
  /// and continuing. Warnings never throw.
  bool validate_fail_fast = false;

  /// Host threads for the parallel windowed simulator (docs/SIM.md):
  /// convenience forwarded into MachineConfig::sim_threads by ppm::run
  /// when the machine config leaves it at 0. 0 keeps the classic
  /// sequential engine; >= 1 runs one engine per simulated node in
  /// conservative time windows (bit-identical results across windowed
  /// thread counts). Subject to the clamps documented on
  /// MachineConfig::sim_threads.
  int sim_threads = 0;
};

struct PpmConfig {
  cluster::MachineConfig machine{};
  RuntimeOptions runtime{};
};

/// Aggregate results of one ppm::run, for benches and tests.
struct RunResult {
  /// Virtual time from program start to the last node finishing.
  int64_t duration_ns = 0;
  uint64_t network_messages = 0;
  uint64_t network_bytes = 0;
  uint64_t intranode_messages = 0;
  uint64_t intranode_bytes = 0;
  /// Runtime counters summed over nodes.
  uint64_t global_phases = 0;
  uint64_t node_phases = 0;
  uint64_t remote_blocks_fetched = 0;
  uint64_t remote_reads_served_from_cache = 0;
  /// Reads that entered the runtime's cold remote path — i.e. missed both
  /// the handle-inline local and published-cached-block fast paths. A
  /// fully cached phase keeps this at zero.
  uint64_t slow_path_reads = 0;
  uint64_t write_entries = 0;
  uint64_t bundles_sent = 0;
  /// Virtual time VPs spent parked on remote fetches (summed over nodes);
  /// the overlap engine exists to shrink this.
  uint64_t fetch_stall_ns = 0;
  /// Lookahead blocks requested (explicit prefetch() + automatic stream
  /// detection) and how many were demanded before going unused.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  /// Write entries folded into an earlier buffered entry by sender-side
  /// write combining (never shipped or committed individually).
  uint64_t entries_combined = 0;
  /// Elements updated by owner-side accumulate fragments at commit
  /// (counted at the owner; the fetch-free half of the accumulate win).
  uint64_t accums_executed = 0;
  /// Wire bytes avoided by the accumulate/reduction machinery vs the
  /// plain paths: 12 bytes per kAccumList item / kAccumBlock record
  /// (dropped vp_rank + seq), plus elem_size * (nodes - 1) per reduce()
  /// per node (the root-gather messages a standalone allreduce would
  /// have sent; reduce partials ride the commit barrier's existing
  /// dissemination tokens instead).
  uint64_t reduction_bytes_saved = 0;
  /// Locality engine: migration blocks that changed owners (counted at the
  /// sending side) and the element bytes they carried over the wire.
  uint64_t blocks_migrated = 0;
  uint64_t migration_bytes = 0;
  /// Accesses the planner observed going remote that its accepted moves
  /// turned local (each counted once, on the node that gains the block).
  uint64_t remote_to_local_conversions = 0;
  /// Wrong-run-tag messages the service loops fenced off (straggler
  /// traffic from an earlier tenant of a reallocated node; see
  /// docs/SCHEDULER.md). Always 0 for whole-machine runs.
  uint64_t stale_messages_dropped = 0;
  /// Findings of the phase-semantics sanitizer, merged over all nodes.
  /// Populated only when RuntimeOptions::validate_phases was set.
  check::Report check_report;

  /// Per-run rollup of every NodeRuntime::Counters field: cluster-wide sum
  /// plus the per-node extremes (and which nodes they sit on), so load
  /// imbalance is visible without hand-summing node 0..N or parsing a
  /// trace. One row per counter, in declaration order.
  struct CounterRollup {
    std::string name;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    int min_node = 0;
    int max_node = 0;
  };
  std::vector<CounterRollup> counter_rollup;

  /// Critical-path / imbalance / efficiency analysis of the recorded
  /// events. Populated only when RuntimeOptions::trace was set
  /// (trace_summary.events is 0 otherwise).
  trace::Summary trace_summary;

  double duration_s() const { return static_cast<double>(duration_ns) * 1e-9; }
};

}  // namespace ppm
