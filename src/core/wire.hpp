// Wire protocol of the PPM runtime: message kinds carried over each node's
// service port, and the serialized write-entry format used in bundles.
//
// The runtime is the only consumer of the service port, so these kinds
// cannot collide with mp:: traffic (which uses the per-core rank ports).
#pragma once

#include <cstdint>

#include "util/byte_buffer.hpp"

namespace ppm::detail {

/// Runtime message classes (top byte of net::Message::kind).
enum class RtMsg : uint8_t {
  kGetBlock = 1,   // fetch a contiguous element range of a global array
  kGetIndexed = 2, // fetch an explicit index list (gather)
  kGetResp = 3,    // response to either fetch
  kBundle = 4,     // write bundle fragment for the current global phase
  kToken = 5,      // keyed control message (barriers, node collectives)
  kShutdown = 6,   // node program finished; service loop may exit
  // Lookahead fetch: same payload and reply as kGetBlock, but an owner
  // that already committed past the request's epoch drops it silently (the
  // requester abandoned the slot at its own commit) instead of treating it
  // as a protocol error.
  kPrefetchBlock = 7,
  // Locality engine: one migration block changing owners at a global
  // commit. Payload: u32 array id, u64 migration-block index, then the
  // block's raw element bytes. The receiver stages the payload and applies
  // it from its own commit path once its side of the (identical) plan is
  // reached; no reply.
  kMigrateBlock = 8,
  // Coalesced block-fetch list: every block request a requester queued for
  // the same owner while its cores were miss-switching, shipped as one
  // message. Payload: u64 epoch, u32 item count, then per item u32 array,
  // u64 first (owner-local), u64 count, u64 req_id, u8 prefetch-flag. The
  // owner replies with one kGetResp per item (requester-side handling is
  // identical to per-block fetches). Only sent with >= 2 items — a
  // singleton stays a plain kGetBlock/kPrefetchBlock, so list requests are
  // strictly smaller on the wire than the messages they replace. A stale
  // epoch is legal only when every item is a prefetch (mirrors
  // kPrefetchBlock's drop rule).
  kGetBlockList = 9,
  // Owner-side accumulate fragment, range form: contiguous accumulate runs
  // (accumulate_n) for one destination. Payload: u64 epoch, then repeated
  // records of u32 array, u8 op, u64 first (global index), u32 count,
  // count * elem_size value bytes. Commutative ops carry no (vp_rank, seq)
  // — the owner applies them after the ordered entry batch of the same
  // commit, grouped by source node ascending — which is what makes each
  // record 12 bytes smaller than the kBundle range entry it replaces.
  // Flushed before the sender's final kBundle last-marker, so the
  // per-(src, dst, port) FIFO floor guarantees arrival before the commit
  // that consumes it; no reply.
  kAccumBlock = 10,
  // Owner-side accumulate fragment, scalar form: individual accumulate(i)
  // items. Payload: u64 epoch, u32 item count, then per item u32 array,
  // u8 op, u64 index (global), elem_size value bytes — 12 bytes smaller
  // per item than the kBundle scalar entry (vp_rank + seq dropped). Same
  // ordering and flush contract as kAccumBlock.
  kAccumList = 11,
};

inline uint64_t rt_kind(RtMsg m) {
  return static_cast<uint64_t>(m) << 56;
}
inline RtMsg rt_class(uint64_t kind) {
  return static_cast<RtMsg>(kind >> 56);
}

/// Multi-tenant fencing: bits [32, 56) of Message::kind carry the sending
/// Runtime's 24-bit run tag. A node that is reallocated to a new job may
/// still have stale traffic from the previous tenancy in flight (e.g. a
/// fault-delayed kGetResp); the service loop drops any message whose tag
/// differs from its own Runtime's tag instead of misinterpreting it.
/// Whole-machine runtimes use tag 0, so the legacy wire format is
/// unchanged (all fence bits zero).
inline constexpr int kRtTagShift = 32;
inline constexpr uint32_t kRtTagMax = (uint32_t{1} << 24) - 1;

inline uint64_t rt_tag_bits(uint32_t run_tag) {
  return static_cast<uint64_t>(run_tag & kRtTagMax) << kRtTagShift;
}
inline uint32_t rt_run_tag(uint64_t kind) {
  return static_cast<uint32_t>(kind >> kRtTagShift) & kRtTagMax;
}

/// Requests carry the requester's epoch so an owner that has not yet
/// committed the phase the requester already finished can defer serving
/// (phase-start snapshot semantics). kAsyncEpoch marks reads that want the
/// owner's latest committed values (reads outside global phases).
inline constexpr uint64_t kAsyncEpoch = ~uint64_t{0};

/// Write operations a VP can perform on a shared element. Values must
/// stay in [0, 8): commit builds per-element masks as `1u << op` in a
/// uint8_t (see apply_staged_entries and check::ElemState::op_mask).
enum class WriteOp : uint8_t {
  kSet = 0,  // last-writer-wins, ordered by (global VP rank, VP-local seq)
  kAdd = 1,  // commutative accumulate
  kMin = 2,
  kMax = 3,
  kMul = 4,  // commutative accumulate (product)
  // User-registered accumulate slots (Env::register_accum_op). The
  // registered function must be commutative and associative for
  // deterministic results; ppm::check enforces single-entry access per
  // element per phase when a slot is registered non-commutative.
  kUser0 = 5,
  kUser1 = 6,
  kUser2 = 7,
};

/// True for every op that combines with the element's prior value
/// (everything except plain kSet).
inline bool is_accum_op(WriteOp op) { return op != WriteOp::kSet; }
/// True for the user-registered accumulate slots.
inline bool is_user_op(WriteOp op) {
  return static_cast<uint8_t>(op) >= static_cast<uint8_t>(WriteOp::kUser0);
}

/// Range-entry marker: a write entry whose op byte has this bit set covers
/// a contiguous element run instead of a single element. The header's
/// index names the first element; a u32 element count follows the header,
/// then count * elem_size value bytes. The whole run carries ONE
/// (vp_rank, seq) pair and commits as a unit at that position, so bulk
/// writes (GlobalShared::set_n/add_n) cost one header per owner segment
/// instead of one per element.
inline constexpr uint8_t kOpRangeBit = 0x80;

inline WriteOp entry_op(uint8_t op) {
  return static_cast<WriteOp>(op & ~kOpRangeBit);
}
inline bool entry_is_range(uint8_t op) { return (op & kOpRangeBit) != 0; }

/// Serialized write-entry header; followed by elem_size value bytes.
struct WireEntryHeader {
  uint32_t array_id;
  uint8_t op;
  uint64_t index;
  uint64_t vp_rank;
  uint32_t seq;  // per-VP write sequence (program order within the VP)
};

/// Serialized entry header size (fields written individually — the struct
/// itself has padding and is never memcpy'd as a whole).
inline constexpr size_t kEntryHeaderBytes =
    sizeof(uint32_t) + sizeof(uint8_t) + sizeof(uint64_t) +
    sizeof(uint64_t) + sizeof(uint32_t);

inline void put_entry(ByteWriter& w, const WireEntryHeader& h,
                      const std::byte* value, uint32_t elem_size) {
  // One growth operation per entry: this sits on the hot path of every
  // shared write.
  std::byte* out = w.extend(kEntryHeaderBytes + elem_size);
  std::memcpy(out, &h.array_id, sizeof(h.array_id));
  out += sizeof(h.array_id);
  std::memcpy(out, &h.op, sizeof(h.op));
  out += sizeof(h.op);
  std::memcpy(out, &h.index, sizeof(h.index));
  out += sizeof(h.index);
  std::memcpy(out, &h.vp_rank, sizeof(h.vp_rank));
  out += sizeof(h.vp_rank);
  std::memcpy(out, &h.seq, sizeof(h.seq));
  out += sizeof(h.seq);
  std::memcpy(out, value, elem_size);
}

/// Append a range entry (kOpRangeBit must be set in h.op): header, u32
/// element count, then the packed element values.
inline void put_range_entry(ByteWriter& w, const WireEntryHeader& h,
                            const std::byte* values, uint32_t count,
                            uint32_t elem_size) {
  std::byte* out = w.extend(kEntryHeaderBytes + sizeof(uint32_t) +
                            static_cast<size_t>(count) * elem_size);
  std::memcpy(out, &h.array_id, sizeof(h.array_id));
  out += sizeof(h.array_id);
  std::memcpy(out, &h.op, sizeof(h.op));
  out += sizeof(h.op);
  std::memcpy(out, &h.index, sizeof(h.index));
  out += sizeof(h.index);
  std::memcpy(out, &h.vp_rank, sizeof(h.vp_rank));
  out += sizeof(h.vp_rank);
  std::memcpy(out, &h.seq, sizeof(h.seq));
  out += sizeof(h.seq);
  std::memcpy(out, &count, sizeof(count));
  out += sizeof(count);
  std::memcpy(out, values, static_cast<size_t>(count) * elem_size);
}

}  // namespace ppm::detail
