// The PPM runtime library (§3.4 of the paper).
//
// One NodeRuntime instance lives on every node of the simulated machine.
// It owns:
//   * the node's shared-array directory and committed storage,
//   * the phase engine — deferred-write logs, the end-of-phase commit
//     protocol, and the deterministic application order,
//   * the remote-read engine — per-phase block cache and request combining
//     ("bundling up fine-grained remote shared data accesses into
//     coarse-grained packages"),
//   * eager write-bundle streaming (communication/computation overlap),
//   * the worker-core pool that folds K virtual processors into loops, and
//   * a service fiber that answers remote requests on the node's service
//     port (gets, bundle staging, barrier/collective tokens).
//
// Public programs never use this class directly; they go through ppm::Env,
// ppm::VpGroup and the shared-array handles in shared_array.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/validator.hpp"
#include "cluster/machine.hpp"
#include "core/options.hpp"
#include "core/wire.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"

namespace ppm {

class Env;

/// Identity of one virtual processor within a phase body.
class Vp {
 public:
  /// Rank among the VPs started on this node (0 .. K_local-1).
  uint64_t node_rank() const { return node_rank_; }
  /// Rank across all nodes of the group (offset by the node's share).
  uint64_t global_rank() const { return global_rank_; }

 private:
  friend class NodeRuntime;
  uint64_t node_rank_ = 0;
  uint64_t global_rank_ = 0;
  uint32_t next_seq_ = 0;  // per-VP write sequence counter
};

/// How a global shared array's elements map onto nodes ("automatic data
/// distribution", §3). Block keeps contiguous chunks together (good for
/// owner-computes stencils); cyclic deals elements round-robin (spreads
/// irregular hot spots). Adaptive starts block-aligned but materializes a
/// per-block owner map that the locality engine rewrites at global-phase
/// commits, moving blocks toward their dominant accessors (kBlock/kCyclic
/// are the closed-form special cases of the same block→owner map).
enum class Distribution : uint8_t {
  kBlock,
  kCyclic,
  kAdaptive,
};

namespace detail {

/// Type-erased element operations for a shared array.
struct ElemOps {
  uint32_t size = 0;
  void (*apply)(std::byte* elem, const std::byte* value, WriteOp op) =
      nullptr;
};

template <typename T>
  requires std::is_trivially_copyable_v<T>
ElemOps elem_ops() {
  ElemOps ops;
  ops.size = sizeof(T);
  ops.apply = [](std::byte* elem, const std::byte* value, WriteOp op) {
    if (op == WriteOp::kSet) {
      std::memcpy(elem, value, sizeof(T));
      return;
    }
    if constexpr (std::is_arithmetic_v<T>) {
      PPM_CHECK(!is_user_op(op),
                "user accumulate op reached the arithmetic apply (dispatch "
                "through ArrayRecord::apply_op)");
      T cur, val;
      std::memcpy(&cur, elem, sizeof(T));
      std::memcpy(&val, value, sizeof(T));
      switch (op) {
        case WriteOp::kAdd: cur = cur + val; break;
        case WriteOp::kMin: cur = std::min(cur, val); break;
        case WriteOp::kMax: cur = std::max(cur, val); break;
        case WriteOp::kMul: cur = cur * val; break;
        default: break;
      }
      std::memcpy(elem, &cur, sizeof(T));
    } else {
      PPM_CHECK(false, "accumulate op on non-arithmetic element type");
    }
  };
  return ops;
}

/// A user-registered accumulate operation (Env::register_accum_op): a
/// captureless thunk plus the user's function pointer it forwards to.
/// `commutative` is the user's declaration; ppm::check enforces the
/// single-entry-per-element contract for slots declared non-commutative.
struct UserAccumOp {
  void (*apply)(std::byte* elem, const std::byte* value,
                const void* fn) = nullptr;
  const void* fn = nullptr;
  bool commutative = true;
};

struct ArrayRecord {
  uint32_t id = 0;
  bool global = false;
  uint64_t n = 0;
  ElemOps ops;
  Distribution dist = Distribution::kBlock;
  int nodes = 1;
  // Block distribution: the contiguous chunk this node owns. Cyclic:
  // chunk_base is 0 and chunk_len is this node's element count.
  uint64_t chunk_base = 0;
  uint64_t chunk_len = 0;
  uint64_t chunk = 0;  // max elements per owner (ceil(n / nodes))
  std::vector<std::byte> storage;  // committed values (zero-initialized)

  // Owner-mapped (kAdaptive) distribution: elements are grouped into
  // fixed migration blocks of mig_block_elems each, and a replicated
  // block→(owner, slot) map — rewritten only inside the lockstep planning
  // rounds of the locality engine — replaces the closed-form placement
  // formulas. Every node stores cap_blocks slots; mig_slot[b] names the
  // slot block b occupies on its owner. mig_block_elems == 0 means the
  // array uses a static (kBlock/kCyclic) layout.
  uint64_t mig_block_elems = 0;
  uint64_t mig_blocks = 0;
  uint64_t cap_blocks = 0;
  std::vector<int32_t> mig_owner;
  std::vector<uint32_t> mig_slot;
  // Per-node min-heaps of unoccupied slots, replicated and updated
  // identically everywhere by the planner (deterministic slot choice).
  std::vector<std::vector<uint32_t>> free_slots;
  // Locality profiler: accesses per migration block since the last
  // planning round. Mutable: recorded through const handles on the read
  // fast path. Empty unless the array is owner-mapped.
  mutable std::vector<uint64_t> access_count;

  // User accumulate slots (WriteOp::kUser0..kUser2), registered through
  // Env::register_accum_op before any phase uses them. SPMD-collective:
  // every node must register the same slots with equivalent functions.
  std::array<UserAccumOp, 3> user_ops{};

  /// Apply one write op to an element, dispatching user slots to their
  /// registered thunks and everything else to the arithmetic ops.
  void apply_op(std::byte* elem, const std::byte* value, WriteOp op) const {
    if (is_user_op(op)) [[unlikely]] {
      const auto& u =
          user_ops[static_cast<size_t>(op) -
                   static_cast<size_t>(WriteOp::kUser0)];
      PPM_CHECK(u.apply != nullptr,
                "user accumulate op %u used on array %u without "
                "register_accum_op",
                static_cast<unsigned>(op), id);
      u.apply(elem, value, u.fn);
      return;
    }
    ops.apply(elem, value, op);
  }

  /// Node owning global element i.
  int owner_of(uint64_t i) const {
    if (mig_block_elems != 0) return mig_owner[i / mig_block_elems];
    return dist == Distribution::kBlock
               ? static_cast<int>(i / chunk)
               : static_cast<int>(i % static_cast<uint64_t>(nodes));
  }
  /// Owner-local storage index of global element i.
  uint64_t local_of(uint64_t i) const {
    if (mig_block_elems != 0) {
      return static_cast<uint64_t>(mig_slot[i / mig_block_elems]) *
                 mig_block_elems +
             i % mig_block_elems;
    }
    return dist == Distribution::kBlock
               ? i % chunk
               : i / static_cast<uint64_t>(nodes);
  }
  /// Element count stored by `owner` (slot capacity for owner-mapped
  /// arrays — slotted storage is sized for migration headroom, not for
  /// the blocks currently resident).
  uint64_t owner_len(int owner) const {
    if (!global) return n;
    if (mig_block_elems != 0) return cap_blocks * mig_block_elems;
    if (dist == Distribution::kBlock) {
      const uint64_t base = std::min(n, chunk * static_cast<uint64_t>(owner));
      return std::min(chunk, n - base);
    }
    return (n + static_cast<uint64_t>(nodes) - 1 -
            static_cast<uint64_t>(owner)) /
           static_cast<uint64_t>(nodes);
  }

  // Remote-read fast path (global arrays with bundling enabled): a
  // direct-mapped table with one slot per cache block of the whole array;
  // a non-null slot points at the block's bytes inside the requester's
  // block cache. Filled by the service fiber on fetch completion, wiped at
  // every global commit. Shared handles consult it inline.
  uint64_t block_elems = 0;        // elements per cache block
  uint64_t blocks_per_chunk = 0;   // blocks within one owner's chunk
  std::vector<const std::byte*> remote_block_ptr;

  /// Slot index of the block containing global element i (valid only for
  /// remote global elements).
  uint64_t block_slot(uint64_t i) const {
    return static_cast<uint64_t>(owner_of(i)) * blocks_per_chunk +
           local_of(i) / block_elems;
  }
};

/// Deliberate-fault hook for the stress harness's self-test (ppm::stress):
/// when set, apply_staged_entries applies ordered commit batches in
/// REVERSED (vp_rank, seq) order — a planted phase-semantics bug that the
/// differential oracle must flag. Never set outside tests.
inline bool g_stress_flip_commit_order = false;

/// Second planted bug, for the owner-side accumulate path: when set, every
/// staged kAccumList/kAccumBlock fragment is applied twice at commit — the
/// classic at-least-once-delivery bug an idempotence-free accumulate
/// protocol must never have. The stress harness's self-test proves the
/// differential oracle catches it with a shrunk repro. Never set outside
/// tests.
inline bool g_stress_double_apply_accums = false;

}  // namespace detail

class NodeRuntime;

/// Cluster-wide runtime: one NodeRuntime per node plus shared options.
///
/// A Runtime can also be a *tenant* of the machine: the partition form
/// runs on a subset of the machine's nodes, with all node ids inside the
/// runtime being logical (0 .. partition-1). Logical↔physical translation
/// happens only at the fabric boundary (rt_send stamps physical addresses
/// and the run tag; service_loop fences stale-tag traffic and translates
/// the source back). ppm::jobs co-schedules many such tenants on one
/// machine; the whole-machine constructor is the identity partition with
/// run tag 0 and behaves exactly as before.
class Runtime {
 public:
  Runtime(cluster::Machine& machine, RuntimeOptions options);
  /// Tenant form: run on `machine_nodes` (distinct physical node ids, in
  /// logical-rank order). `run_tag` (1 .. detail::kRtTagMax) fences this
  /// tenancy's wire traffic from earlier tenants of the same nodes.
  Runtime(cluster::Machine& machine, RuntimeOptions options,
          std::vector<int> machine_nodes, uint32_t run_tag);
  ~Runtime();

  NodeRuntime& node(int node_id);
  cluster::Machine& machine() { return machine_; }
  const RuntimeOptions& options() const { return options_; }

  /// Nodes of this runtime (= partition size; machine().nodes() for the
  /// whole-machine form).
  int nodes() const { return static_cast<int>(partition_.size()); }
  /// Physical machine node backing logical node `node_id`.
  int machine_node(int node_id) const {
    return partition_[static_cast<size_t>(node_id)];
  }
  /// Logical node backed by physical `machine_node`, or -1 if the node is
  /// outside this runtime's partition.
  int logical_node(int machine_node) const {
    return machine_node >= 0 &&
                   machine_node < static_cast<int>(logical_of_.size())
               ? logical_of_[static_cast<size_t>(machine_node)]
               : -1;
  }
  uint32_t run_tag() const { return run_tag_; }

  /// Block until every service and worker fiber spawned by the nodes'
  /// start() calls has exited (all have once every node program ran
  /// finish()). A scheduler must wait for this before tearing the Runtime
  /// down and reallocating its nodes — otherwise a dying tenant's service
  /// fiber could race the next tenant's on the same endpoint.
  void wait_runtime_fibers_exited();

  /// The run's event trace, or nullptr when options().trace is off. Owned
  /// here; the fabric and engine recorders are attached for this Runtime's
  /// lifetime (detached again by the destructor).
  trace::Trace* trace() { return trace_.get(); }
  const trace::Trace* trace() const { return trace_.get(); }

  /// Sum per-node counters and fabric stats into a RunResult (including
  /// the per-counter min/max rollup and, when tracing, trace_summary).
  RunResult collect() const;

 private:
  friend class NodeRuntime;
  void note_runtime_fiber_spawned() { ++live_runtime_fibers_; }
  void note_runtime_fiber_exited();

  cluster::Machine& machine_;
  RuntimeOptions options_;
  std::vector<int> partition_;   // logical node -> physical machine node
  std::vector<int> logical_of_;  // physical machine node -> logical (or -1)
  uint32_t run_tag_ = 0;
  // Atomic: under the windowed simulator (docs/SIM.md) runtime fibers of
  // different nodes exit on different host threads. The quiesce CV itself
  // exists only in classic mode (see wait_runtime_fibers_exited).
  std::atomic<int> live_runtime_fibers_{0};
  std::unique_ptr<sim::ConditionVar> quiesce_cv_;
  std::unique_ptr<trace::Trace> trace_;  // before nodes_: they point into it
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
};

class NodeRuntime {
 public:
  NodeRuntime(Runtime& shared, int node_id);

  int node_id() const { return node_; }
  int node_count() const;
  int cores_per_node() const;
  const RuntimeOptions& options() const { return opts_; }
  uint64_t epoch() const { return epoch_; }

  /// Spawn the service fiber and the worker-core fibers. Must be called on
  /// the node's main fiber before any other operation.
  void start();
  /// Final global barrier, then stop service fiber and workers. Must be the
  /// last runtime call of the node program.
  void finish();

  // ---- Shared-array directory ----

  /// Create a shared array (SPMD-collective: all nodes must create arrays
  /// in the same order). Storage starts zeroed. Must be called outside
  /// phases.
  uint32_t create_array(bool global, uint64_t n, detail::ElemOps ops,
                        Distribution dist = Distribution::kBlock);

  const detail::ArrayRecord& array(uint32_t id) const;

  /// Charge the modeled per-access software overhead to the calling core.
  /// Inline: it sits on the fast path of every shared read.
  void charge_access() {
    if (opts_.access_overhead_ns > 0) {
      engine_->advance_ns(opts_.access_overhead_ns);
    }
  }

  /// Bump the bundling counter from the handles' inline cached-read path.
  void note_cache_hit() { ++counters_.reads_from_cache; }

  /// Locality profiler hook, called on every element access of the read/
  /// write paths. Static-layout arrays keep access_count empty, so the
  /// hook reduces to one never-taken branch there (same trick as the
  /// validator's null-pointer hooks).
  void note_access(const detail::ArrayRecord& rec, uint64_t index) {
    if (!rec.access_count.empty()) [[unlikely]] {
      ++rec.access_count[index / rec.mig_block_elems];
    }
  }

  /// Ask the locality engine to run one migration planning round for this
  /// array at the next global-phase commit. SPMD-collective by contract:
  /// every node must request the same rebalances between the same phases
  /// (the planner's allgather assumes it; ppm::check's lockstep
  /// fingerprint catches divergence). No-op for static-layout arrays.
  void request_rebalance(uint32_t id);

  /// Read-only view of this node's committed chunk (global arrays) or the
  /// whole committed array (node-shared) — the paper's node/global space
  /// "casting" utility.
  std::span<const std::byte> committed_bytes(uint32_t id) const;

  /// This node's committed elements of array `id` packed in ascending
  /// global-index order (node-shared arrays: all n elements). Unlike
  /// committed_bytes this is layout-free — owner-mapped (kAdaptive) slot
  /// storage and cyclic striding are flattened out — so an
  /// allgather_bytes of it plus owner_of() reassembles the logical array
  /// contents under any distribution. Introspection hook for tools
  /// (ppm::stress snapshots); call outside phases.
  Bytes pack_owned_elems(uint32_t id) const;

  // ---- Element access (phase-start read / deferred write semantics) ----

  void read_elem(uint32_t id, uint64_t index, std::byte* out);
  /// Zero-copy read: pointer to the element's phase-start bytes, valid
  /// until the current phase commits (local storage or a cached block).
  const std::byte* read_ref(uint32_t id, uint64_t index);
  void write_elem(uint32_t id, uint64_t index, const std::byte* value,
                  detail::WriteOp op);
  /// Bundled multi-element read: one request per owner node.
  void gather_elems(uint32_t id, std::span<const uint64_t> indices,
                    std::byte* out);
  /// Non-blocking lookahead: issue block fetches covering the given
  /// elements of a global array so later get()/view() calls find them
  /// cached or in flight. Local and already-covered elements are skipped;
  /// no-op when read bundling is off.
  void prefetch_elems(uint32_t id, std::span<const uint64_t> indices);
  /// Non-blocking lookahead over a contiguous index range [lo, hi): walks
  /// cache blocks instead of elements, so an O(range) hint costs
  /// O(range / block_elems). Same skip rules as prefetch_elems.
  void prefetch_range(uint32_t id, uint64_t lo, uint64_t hi);

  /// Bulk contiguous read: elements [first, first+count) of the array's
  /// phase-start snapshot into `out`. Equivalent to count read_elem calls
  /// but resolves ownership per contiguous segment (memcpy for local or
  /// cached runs, batched fetches for missing blocks) and charges the
  /// modeled per-access overhead at the gather rate (one per 8 elements).
  void read_span(uint32_t id, uint64_t first, uint64_t count,
                 std::byte* out);
  /// Bulk contiguous deferred write: equivalent to count write_elem calls
  /// at consecutive indices with consecutive seq numbers, but ships one
  /// range entry per owner segment. Committed results are bit-identical
  /// to the elementwise loop.
  void write_span(uint32_t id, uint64_t first, uint64_t count,
                  const std::byte* values, detail::WriteOp op);

  /// Owner-side accumulate: a commutative read-modify-write executed at
  /// the element's owner during commit, shipped through the compact
  /// kAccumList wire fragments (no per-entry (vp_rank, seq)). Inside a
  /// phase the visible semantics match write_elem with the same accumulate
  /// op: reads keep seeing the phase-start value, the update lands at
  /// commit. The op must be exactly commutative and associative over T
  /// (integer add/min/max/mul, XOR, ...) OR touch each element from at
  /// most one writer per phase — owner-side application is grouped by
  /// source node, not interleaved by VP rank, which is indistinguishable
  /// exactly under that contract (ppm::check enforces it for ops
  /// registered non-commutative). Local elements, node-shared arrays,
  /// writes outside phases, and owner_side_accumulate=false all fall back
  /// to the plain write_elem path.
  void accumulate_elem(uint32_t id, uint64_t index, const std::byte* value,
                       detail::WriteOp op);
  /// Contiguous accumulate run: accumulate_elem over [first, first+count),
  /// shipped as one kAccumBlock range record per owner segment.
  void accumulate_span(uint32_t id, uint64_t first, uint64_t count,
                       const std::byte* values, detail::WriteOp op);

  /// Register a user accumulate function for one of the kUser0..kUser2
  /// slots of an array (SPMD-collective, outside phases). See
  /// Env::register_accum_op for the typed front end.
  void register_user_op(uint32_t id, int slot, detail::UserAccumOp op);

  // ---- Remote reduction (rides the commit barrier) ----

  /// One registered reduction, resolved at the next global-phase commit:
  /// after the commit applies its write batch, each node folds its OWNED
  /// elements in ascending global-index order into a partial blob
  /// ([u8 has_value][elem bytes]); the blobs ride the commit barrier's
  /// dissemination tokens (zero extra messages), and every node folds the
  /// per-node partials in ascending node order — so all nodes compute the
  /// identical scalar, bit-equal to a local fold over the whole array in
  /// ascending index order followed by an ascending-node combine (the
  /// order dot()/reduce_array produce for block layouts).
  struct PendingReduce {
    uint32_t array_a = 0;
    uint32_t array_b = UINT32_MAX;  // dot form when != UINT32_MAX
    uint8_t op = 0;                 // WriteOp value (single-array form)
    /// Fold this node's owned elements into `out` (typed thunk from Env).
    void (*partial)(NodeRuntime&, const PendingReduce&, Bytes* out) =
        nullptr;
    /// Fold `other` into `acc` (both partial blobs). Receives the runtime
    /// and the registration so one captureless thunk can dispatch through
    /// the array's op table (including user slots).
    void (*combine)(NodeRuntime&, const PendingReduce&, Bytes* acc,
                    const Bytes& other) = nullptr;
    Bytes result;
    bool done = false;
  };
  /// Register a reduction (SPMD-collective, before the global phase whose
  /// commit should resolve it). Returns a handle for reduce_result.
  size_t register_reduce(PendingReduce pr);
  const PendingReduce& reduce_result(size_t handle) const;

  int owner_of(uint32_t id, uint64_t index) const;

  // ---- Virtual processor groups and phases ----

  /// Coordinate a collective ppm_do across nodes: returns {global rank
  /// offset of this node's VPs, total K across nodes}.
  std::pair<uint64_t, uint64_t> coordinate_group(uint64_t k_local);

  /// Run one phase: execute body for VPs [0, k_local) folded into loops
  /// over this node's cores, then commit deferred writes. Global phases
  /// additionally exchange write bundles and synchronize all nodes.
  void run_phase(bool global, uint64_t k_local, uint64_t k_offset,
                 const std::function<void(Vp&)>& body);

  // ---- Node-level collectives (used by Env and the commit protocol) ----

  void barrier_global();
  /// Allgather of byte blobs over nodes; result indexed by node.
  std::vector<Bytes> allgather_bytes(Bytes mine);

  // ---- Counters (exposed for tests/benches) ----

  struct Counters {
    uint64_t global_phases = 0;
    uint64_t node_phases = 0;
    uint64_t blocks_fetched = 0;
    uint64_t reads_from_cache = 0;
    uint64_t write_entries = 0;
    uint64_t bundles_sent = 0;
    uint64_t fetch_stall_ns = 0;    // VP time parked on remote fetches
    uint64_t prefetch_issued = 0;   // lookahead block fetches sent
    uint64_t prefetch_hits = 0;     // prefetched blocks demanded before use
    uint64_t entries_combined = 0;  // writes folded into buffered entries
    uint64_t accums_executed = 0;   // owner-side accum elements applied
    uint64_t reduction_bytes_saved = 0;  // see RunResult
    uint64_t blocks_migrated = 0;   // migration blocks sent to a new owner
    uint64_t migration_bytes = 0;   // element bytes those blocks carried
    uint64_t remote_to_local_conversions = 0;  // see RunResult
    uint64_t stale_msgs_dropped = 0;  // wrong-run-tag messages fenced off
    // Reads that entered the runtime's cold remote path (remote_ref) —
    // i.e. missed both the handle-inline local and cached-block fast
    // paths. A fully cached phase keeps this at zero.
    uint64_t slow_path_reads = 0;
  };
  const Counters& counters() const { return counters_; }

  /// The node's phase-semantics sanitizer, or nullptr when
  /// options().validate_phases is off. See src/check/ and
  /// docs/validator.md.
  const check::PhaseValidator* validator() const { return validator_.get(); }

  /// Label the NEXT phase run on this node (consumed by it): shows up in
  /// that phase's PhaseProfile::label and, under tracing, on its trace
  /// spans, making profiles attributable to source phases instead of
  /// positional indices. Called through Env::phase_label.
  void set_phase_label(std::string_view label) { next_phase_label_ = label; }

  /// Phases executed so far on this node (the next phase's index).
  uint64_t phase_index() const { return phase_index_; }

  /// The node's trace recorder, or nullptr when options().trace is off.
  const trace::Recorder* tracer() const { return tracer_; }

  /// One record per executed phase (only when options().profile_phases).
  struct PhaseProfile {
    bool global = false;
    /// Running index of the phase on this node (global and node phases
    /// share the counter) and the app-set label, empty unless the program
    /// called Env::phase_label before the phase.
    uint64_t phase_index = 0;
    std::string label;
    uint64_t k_local = 0;
    int64_t start_ns = 0;         // virtual time at phase entry
    int64_t compute_done_ns = 0;  // all VPs finished (pre-commit)
    int64_t committed_ns = 0;     // commit complete
    uint64_t write_entries = 0;   // entries logged during this phase
    uint64_t blocks_fetched = 0;  // remote blocks fetched during it
    uint64_t bundles_sent = 0;
    uint64_t fetch_stall_ns = 0;     // VP time parked on fetches in it
    uint64_t prefetch_hits = 0;      // prefetched blocks demanded in it
    uint64_t entries_combined = 0;   // writes combined away in it
    uint64_t blocks_migrated = 0;    // blocks this node shipped at commit
    uint64_t migration_bytes = 0;    // bytes those blocks carried
    uint64_t accums_executed = 0;    // owner-side accumulates applied in it
    uint64_t reduction_bytes_saved = 0;  // accum/reduce wire-byte savings

    int64_t compute_ns() const { return compute_done_ns - start_ns; }
    int64_t commit_ns() const { return committed_ns - compute_done_ns; }
  };
  const std::vector<PhaseProfile>& phase_profiles() const {
    return phase_profiles_;
  }

 private:
  friend class Runtime;

  enum class PhaseScope : uint8_t { kNone, kGlobal, kNode };

  struct PhaseTask {
    const std::function<void(Vp&)>* body = nullptr;
    uint64_t k_local = 0;
    uint64_t k_offset = 0;
    uint64_t next = 0;  // dynamic scheduling cursor
    uint64_t chunk = 1;
    uint64_t generation = 0;
    int workers_done = 0;
    bool shutdown = false;
  };

  /// BlockKey::block packs (owner << kBlockOwnerShift) | first_owner_local.
  static constexpr int kBlockOwnerShift = 40;

  struct BlockKey {
    uint32_t array;
    uint64_t block;
    bool operator==(const BlockKey&) const = default;
  };

  struct FetchSlot {
    explicit FetchSlot(sim::Engine& engine) : waiters(engine) {}
    bool done = false;
    Bytes data;
    // Block fetches: the service fiber inserts the payload straight into
    // the block cache under this key (and publishes it in the array's
    // direct-mapped block table), so combined waiters can be woken in any
    // order.
    bool cache_on_arrival = false;
    // Issued by the lookahead engine: nobody waits, publication into the
    // direct-mapped table is deferred to the first demand touch (so hits
    // are observable), and the slot is abandoned if the phase commits
    // before the response arrives.
    bool prefetched = false;
    bool abandoned = false;
    BlockKey key{};
    detail::ArrayRecord* record = nullptr;
    uint64_t block_slot = 0;
    uint64_t req_id = 0;
    // Fibers parked on this fetch; woken (only these) on completion.
    sim::WaitList waiters;
  };

  struct TokenKey {
    int src;
    uint32_t channel;
    uint64_t seq;
    uint32_t round;
    auto operator<=>(const TokenKey&) const = default;
  };

  // Service-side handlers.
  void service_loop();
  void handle_get(net::Message msg);
  void serve_get(const net::Message& msg);
  void handle_bundle(net::Message msg);
  /// Stage one kAccumList/kAccumBlock fragment for its epoch's commit
  /// (validating the payload frame up front, like handle_bundle).
  void handle_accum(net::Message msg, bool list);
  void handle_token(net::Message msg);
  void serve_deferred_gets();

  // Requester-side read engine. Returns a pointer to the element's bytes,
  // valid until the phase commits.
  const std::byte* remote_ref(const detail::ArrayRecord& rec,
                              uint64_t index);
  uint64_t request_epoch() const;
  uint64_t next_req_id() { return req_id_counter_++; }

  // Overlap engine (requester side).
  std::shared_ptr<FetchSlot> issue_block_fetch(const detail::ArrayRecord& rec,
                                               int owner, uint64_t first,
                                               uint64_t count, bool prefetch);
  /// Ship every queued per-owner fetch request (kGetBlockList when an
  /// owner has >= 2, plain kGetBlock/kPrefetchBlock otherwise). Called
  /// before any fiber parks on a fetch and at the end of prefetch sweeps;
  /// no-op when the backlog is empty.
  void flush_fetch_backlog();
  /// Block until `slot` completes; with overlap_reads the calling core
  /// first runs other ready VPs of the current phase (miss-switching) and
  /// only parks when none are left. Parked time is charged to
  /// fetch_stall_ns.
  void wait_fetch(FetchSlot& slot);
  /// Claim and run one not-yet-started VP of the current phase on the
  /// calling fiber (nested under the blocked VP's frame). Returns false
  /// when no VP is available or the nesting cap is reached.
  bool run_one_ready_vp();
  bool claim_one_vp(uint32_t fid, uint64_t* out_vp);
  /// Fetch the next block(s) after `first` when the previous adjacent
  /// block was already wanted (detected forward stream).
  void maybe_stream_prefetch(const detail::ArrayRecord& rec, int owner,
                             uint64_t first, uint64_t owner_len);
  /// Stride detector: on a demand miss at global `index`, when the last
  /// two misses on this array were the same non-unit element stride
  /// apart, prefetch the blocks holding the next strided elements
  /// (options().strided_prefetch; the adjacent-stream detector covers
  /// stride 1).
  void maybe_strided_prefetch(const detail::ArrayRecord& rec,
                              uint64_t index);
  /// Publish a cached block in the array's direct-mapped table and count
  /// the first demand touch of a prefetched block.
  void publish_block(const detail::ArrayRecord& rec, const BlockKey& key,
                     const Bytes& cached);
  /// Allocate the array's direct-mapped remote-block table on its first
  /// published block. Lazy so arrays a node never reads remotely cost no
  /// table at all (it is blocks_per_chunk * nodes pointers).
  void ensure_block_table(detail::ArrayRecord& rec);

  // Write engine. Each destination buffer carries its fragment header
  // (epoch + last-flag) in place from the first entry on, so a flush ships
  // the buffer itself — no copy into a fresh writer — and reseeds it from
  // a small pool of recycled allocations.
  static constexpr size_t kBundleHeaderBytes =
      sizeof(uint64_t) + sizeof(uint8_t);
  static constexpr size_t kBundleLastOffset = sizeof(uint64_t);
  static constexpr size_t kBundlePoolMax = 16;
  ByteWriter& dest_buffer(int dest_node);
  /// dest_buffer plus lazily written fragment header.
  ByteWriter& bundle_buffer(int dest_node);
  /// Patch the last-flag, ship the buffer, reseed it from the pool, reset
  /// the destination's combine map.
  void flush_bundle(int dest_node, bool last);
  /// Fold this write into an earlier buffered entry for the same (array,
  /// element) when legal (same VP, compatible op). True when combined.
  bool try_combine(int dest_node, const detail::WireEntryHeader& hdr,
                   const std::byte* value, const detail::ArrayRecord& rec);
  void maybe_eager_flush(int dest_node);
  void flush_all_bundles_final();

  // Owner-side accumulate (sender side). Scalar items collect in a
  // per-peer kAccumList buffer (u64 epoch + u32 item count header, count
  // patched at flush), contiguous runs in a kAccumBlock buffer (u64 epoch
  // header, self-delimiting records). Both flush at the eager-flush
  // threshold and, unconditionally, right before the peer's final kBundle
  // last-marker — pairwise FIFO then guarantees the owner staged every
  // fragment before the marker that completes its commit quorum.
  static constexpr size_t kAccumListHeaderBytes =
      sizeof(uint64_t) + sizeof(uint32_t);
  static constexpr size_t kAccumBlockHeaderBytes = sizeof(uint64_t);
  ByteWriter& accum_list_buffer(int dest_node);
  ByteWriter& accum_block_buffer(int dest_node);
  /// Ship a peer's pending accum fragments (no-op when empty).
  void flush_accum_buffers(int dest_node);
  /// Fold a scalar accumulate into the peer's latest buffered item for
  /// the same (array, element) when it came from the same VP with the
  /// same op (mirrors try_combine). True when folded.
  bool try_combine_accum(int dest_node, uint32_t array, uint64_t index,
                         const std::byte* value, detail::WriteOp op,
                         const detail::ArrayRecord& rec);
  Bytes pool_take();
  void pool_put(Bytes b);
  /// Clear a destination's combine map but keep its table at high-water
  /// capacity, so steady-state flushes stop rehashing from empty.
  void reset_combine_map(int dest_node);

  // Locality engine (all nodes run these at the same global commits).
  /// Deterministic cluster-wide predicate: does this commit run a
  /// migration planning round? (Depends only on SPMD-replicated state.)
  bool migration_round_due() const;
  /// Arrays the next planning round covers, in ascending id order
  /// (identical on every node).
  std::vector<uint32_t> planned_array_ids() const;
  /// Global barrier that doubles as an allgather: each dissemination
  /// round's token carries the byte blobs its receiver is missing, so
  /// the planner's counter exchange rides the commit barrier at zero
  /// extra latency rounds. Result indexed by node.
  std::vector<Bytes> barrier_allgather(Bytes mine);
  /// From the allgathered access counters, compute the identical greedy
  /// plan on every node, rewrite the owner maps, move block payloads via
  /// kMigrateBlock, and reset the profiler.
  void run_migration_round(std::vector<Bytes> all_counts);

  // Phase engine.
  void run_vp_loop(const std::function<void(Vp&)>& body);
  void run_chunks(int core_index);
  void commit_global();
  void commit_node();
  void apply_staged_entries(std::vector<std::span<const std::byte>> buffers);
  /// Apply the current epoch's staged kAccumList/kAccumBlock fragments,
  /// grouped by source node ascending (per-source arrival order = that
  /// source's program order), after the ordered entry batch.
  void apply_staged_accums();

  // Pending-reduce plumbing (commit side). Partial blobs are appended to
  // the barrier_allgather payload AFTER the migration counter vectors;
  // their total size is SPMD-replicated (registration is collective), so
  // every node parses them back off the tail of each peer blob.
  size_t pending_reduce_blob_bytes() const;
  Bytes build_reduce_partials();
  void combine_reduce_partials(const std::vector<Bytes>& all,
                               size_t tail_bytes);

  // ppm::check integration: scan one commit batch (wraps the validator's
  // begin/finish around apply_staged_entries' entry walk) and exchange
  // lockstep fingerprints at a global commit. Both no-ops unless
  // validate_phases is on; both honor validate_fail_fast.
  void validate_commit_finish();
  void validate_lockstep();

  // Token transport.
  void token_send(int dst_node, uint32_t channel, uint64_t seq,
                  uint32_t round, Bytes payload);
  Bytes token_recv(int src_node, uint32_t channel, uint64_t seq,
                   uint32_t round);
  void rt_send(int dst_node, uint64_t kind, Bytes payload);

  Vp* current_vp() const;

  Runtime& shared_;
  int node_;
  bool started_ = false;
  // Hot-path caches (every shared access goes through read/write_elem).
  RuntimeOptions opts_;
  sim::Engine* engine_ = nullptr;

  std::deque<detail::ArrayRecord> arrays_;  // deque: records stay put

  // Phase state.
  PhaseScope phase_scope_ = PhaseScope::kNone;
  uint64_t epoch_ = 0;
  PhaseTask task_;
  std::unique_ptr<sim::ConditionVar> task_cv_;
  std::vector<Vp*> vp_by_fiber_;  // indexed by fiber id (dense, small)

  // Miss-switching state, indexed by fiber id. Static scheduling publishes
  // each core's remaining VP range through a cursor so nested execution can
  // claim one VP at a time without double-running any (dynamic scheduling
  // claims from task_.next directly).
  struct StaticRange {
    uint64_t next = 0;
    uint64_t end = 0;
  };
  std::vector<StaticRange> static_range_;
  std::vector<uint32_t> miss_depth_;  // nested VP bodies per fiber

  // Write buffers: per touched peer (see PeerState below) + local log.
  // Flushed buffers are reseeded from bundle_pool_ (fed by received bundle
  // payloads and drained staging copies), keeping steady-state flushes
  // allocation-free.
  ByteWriter local_log_;
  std::vector<Bytes> bundle_pool_;

  // Sender-side write combining: per destination, the buffer offset of the
  // last entry written to each (array, element) plus the VP/op that wrote
  // it. Cleared whenever the destination's buffer is flushed.
  struct ElemKey {
    uint32_t array;
    uint64_t index;
    bool operator==(const ElemKey&) const = default;
  };
  struct ElemKeyHash {
    size_t operator()(const ElemKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.array) << 48) ^
                                   k.index * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct CombineSlot {
    size_t offset = 0;  // entry start within the dest buffer
    uint64_t vp_rank = 0;
    uint8_t op = 0;
  };

  // Locality engine state. mig_inbox_ stages inbound kMigrateBlock
  // payloads (appended by the service fiber, applied by the commit path
  // once its own outbound copies are serialized); migration_in_progress_
  // makes the service fiber defer async-epoch gets while owner maps are
  // mid-rewrite anywhere in the cluster.
  struct MigArrival {
    uint32_t array = 0;
    uint64_t block = 0;
    Bytes data;
  };
  bool any_adaptive_ = false;
  bool migration_in_progress_ = false;
  std::vector<uint32_t> rebalance_requests_;  // sorted array ids
  std::vector<MigArrival> mig_inbox_;

  // Read engine state (cleared every global commit).
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.array) << 48) ^
                                   k.block * 0x9e3779b97f4a7c15ULL);
    }
  };
  std::unordered_map<BlockKey, Bytes, BlockKeyHash> block_cache_;
  std::unordered_map<BlockKey, std::shared_ptr<FetchSlot>, BlockKeyHash>
      pending_blocks_;
  // Cached blocks that arrived via prefetch and have not been demanded
  // yet; the first demand touch moves them into the published table and
  // counts a prefetch hit.
  std::unordered_set<BlockKey, BlockKeyHash> prefetched_keys_;
  std::vector<Bytes> unbundled_arena_;  // single-element fetches for views
  std::unordered_map<uint64_t, std::shared_ptr<FetchSlot>> outstanding_;
  std::unique_ptr<sim::ConditionVar> arrivals_cv_;
  uint64_t req_id_counter_ = 1;

  // Fetch coalescing (options().batch_fetches): block requests queued per
  // owner while cores miss-switch, shipped together by
  // flush_fetch_backlog. The invariant is "never park with a non-empty
  // backlog" — wait_fetch flushes right before parking, so a demand
  // fetch's send is delayed at most until its requester runs out of ready
  // VPs to switch to.
  struct QueuedFetch {
    uint32_t array = 0;
    uint64_t first = 0;  // owner-local
    uint64_t count = 0;
    uint64_t req_id = 0;
    uint64_t epoch = 0;
    bool prefetch = false;
  };
  std::vector<int> backlog_owners_;  // owners with a non-empty queue
  bool backlog_nonempty_ = false;

  // All per-peer sender-side state, created lazily on first contact. A
  // node that never writes to or fetches from a peer never materializes
  // an entry, so an idle or purely-local node costs O(1) bytes regardless
  // of cluster size — the keystone of thousand-node runs (the eager
  // layout was four O(nodes) containers per node, O(nodes^2) machine-
  // wide). The end-of-phase last-marker protocol still reaches every
  // peer: flush_all_bundles_final ships untouched peers a header-only
  // marker without creating their PeerState.
  struct PeerState {
    ByteWriter bundle;  // pending write entries (fragment header inline)
    std::unordered_map<ElemKey, CombineSlot, ElemKeyHash> combine;
    size_t combine_hwm = 0;
    std::vector<QueuedFetch> fetch_backlog;
    // Owner-side accumulate fragments (epoch headers inline; see
    // accum_list_buffer/accum_block_buffer). accum_combine mirrors the
    // bundle combine map, with offsets into accum_list.
    ByteWriter accum_list;
    ByteWriter accum_block;
    uint32_t accum_list_items = 0;
    std::unordered_map<ElemKey, CombineSlot, ElemKeyHash> accum_combine;
  };
  std::unordered_map<int, PeerState> peers_;
  PeerState& peer(int dest_node) { return peers_[dest_node]; }

  // Stride detector state, per array id (grown lazily). Tracks the last
  // demand-miss index and the last inter-miss delta; a repeated non-unit
  // delta triggers strided lookahead.
  struct StrideState {
    uint64_t last_index = ~uint64_t{0};
    int64_t delta = 0;
  };
  std::vector<StrideState> stride_state_;

  // Bundle staging (service side), keyed by epoch.
  std::map<uint64_t, std::vector<Bytes>> staged_bundles_;
  std::map<uint64_t, int> staged_last_markers_;

  // Accumulate-fragment staging (service side), keyed by epoch. Fragments
  // keep their source node so the commit can apply them grouped by source
  // ascending (per-source arrival order = that source's program order).
  struct StagedAccum {
    int src = 0;
    bool list = false;  // kAccumList payload (else kAccumBlock)
    Bytes payload;
  };
  std::map<uint64_t, std::vector<StagedAccum>> staged_accums_;

  // Reductions registered for the next global commit. Resolved entries
  // stay until the program re-registers (handles are indices); the
  // resolved prefix is tracked so repeated commits skip done work.
  std::vector<PendingReduce> pending_reduces_;
  size_t reduces_resolved_ = 0;

  // Deferred get requests from nodes ahead of our commit.
  std::vector<net::Message> deferred_gets_;

  // Token mailbox.
  std::map<TokenKey, Bytes> tokens_;
  uint64_t barrier_seq_ = 0;
  uint64_t coll_seq_ = 0;
  uint64_t group_seq_ = 0;

  Counters counters_;
  std::vector<PhaseProfile> phase_profiles_;
  uint64_t phase_index_ = 0;
  std::string next_phase_label_;  // consumed by the next run_phase

  // Phase-semantics sanitizer (null unless options().validate_phases; the
  // hot-path hooks are a single never-taken branch in that case).
  std::unique_ptr<check::PhaseValidator> validator_;

  // ppm::trace recorder for this node (null unless options().trace; every
  // hook below then reduces to one never-taken branch — the validator's
  // trick). Points into the Runtime-owned trace::Trace.
  trace::Recorder* tracer_ = nullptr;
  // Core index per fiber id (service fiber and main fiber record as core
  // 0), so events carry a per-core track for the exporter.
  std::vector<uint16_t> core_of_fiber_;

  uint16_t trace_core() const {
    const uint32_t fid = engine_->current_fiber_id();
    return fid < core_of_fiber_.size() ? core_of_fiber_[fid] : 0;
  }
  /// Record an event stamped with the current virtual time and core. Only
  /// call under `if (tracer_) [[unlikely]]`.
  void trace_rec(trace::EventKind kind, uint64_t a = 0, uint64_t b = 0,
                 uint64_t c = 0, uint8_t flags = 0, uint32_t aux = 0) {
    trace::Event e;
    e.t_ns = engine_->now_ns();
    e.kind = kind;
    e.flags = flags;
    e.core = engine_->on_fiber() ? trace_core() : 0;
    e.aux = aux;
    e.a = a;
    e.b = b;
    e.c = c;
    tracer_->record(e);
  }
};

}  // namespace ppm
