// Utility algorithms written *in* PPM (the paper's §3.1 "utility functions
// ... such as reduction, parallel prefix"). They double as reference
// examples of phase-style programming.
#pragma once

#include "core/env.hpp"
#include "core/shared_array.hpp"

namespace ppm {

/// Inclusive parallel prefix (scan) of a global shared array, in place.
/// Hillis–Steele over log2(n) global phases: the phase-start read snapshot
/// provides the double buffering for free.
template <typename T>
void prefix_sum(Env& env, GlobalShared<T>& x) {
  const uint64_t n = x.size();
  // Each node runs VPs for its own chunk (owner-computes).
  const uint64_t k_local = x.local_end() - x.local_begin();
  auto vps = env.ppm_do(k_local);
  const uint64_t base = x.local_begin();
  for (uint64_t d = 1; d < n; d *= 2) {
    vps.global_phase([&, d](Vp& vp) {
      const uint64_t i = base + vp.node_rank();
      if (i >= d) {
        x.set(i, x.get(i) + x.get(i - d));
      }
    });
  }
}

/// Reduce a global shared array to a single value with a commutative,
/// associative op; every node receives the result. Local chunks are folded
/// in place, then combined with one node-level collective.
template <typename T, typename Op>
T reduce_array(Env& env, const GlobalShared<T>& x, T init, Op op) {
  T acc = init;
  for (const T& v : x.local_span()) acc = op(acc, v);
  return env.allreduce(acc, op);
}

/// Dot product of two identically distributed global arrays.
template <typename T>
T dot(Env& env, const GlobalShared<T>& a, const GlobalShared<T>& b) {
  PPM_CHECK(a.size() == b.size(), "dot: size mismatch (%llu vs %llu)",
            static_cast<unsigned long long>(a.size()),
            static_cast<unsigned long long>(b.size()));
  T acc{};
  const auto as = a.local_span();
  const auto bs = b.local_span();
  for (size_t i = 0; i < as.size(); ++i) acc += as[i] * bs[i];
  return env.allreduce(acc, [](T u, T v) { return u + v; });
}

/// Fill a global array by formula, owner-computes: x[i] = f(i).
template <typename T, typename F>
void fill(Env& env, GlobalShared<T>& x, F f) {
  const uint64_t k_local = x.local_end() - x.local_begin();
  auto vps = env.ppm_do(k_local);
  const uint64_t base = x.local_begin();
  vps.global_phase([&](Vp& vp) {
    const uint64_t i = base + vp.node_rank();
    x.set(i, f(i));
  });
}

/// Copy this node's chunk of a (block-distributed) global array into a
/// node-shared array — the paper's "casting" from global to node-level
/// physical space. `local.size()` must cover the chunk. No network
/// traffic; immediate (call outside phases).
template <typename T>
void localize(Env& env, const GlobalShared<T>& global, NodeShared<T>& local) {
  (void)env;
  const auto chunk = global.local_span();
  PPM_CHECK(local.size() >= chunk.size(),
            "localize: node array too small (%llu < %zu)",
            static_cast<unsigned long long>(local.size()), chunk.size());
  for (size_t i = 0; i < chunk.size(); ++i) {
    local.set(i, chunk[i]);  // immediate node-local writes outside phases
  }
}

/// Copy a node-shared array back into this node's chunk of a global array
/// — the inverse cast. Immediate local writes; all nodes should call it
/// (followed by a barrier or phase) before remote readers rely on it.
template <typename T>
void publish(Env& env, const NodeShared<T>& local, GlobalShared<T>& global) {
  (void)env;
  const uint64_t base = global.local_begin();
  const uint64_t len = global.local_end() - base;
  PPM_CHECK(local.size() >= len,
            "publish: node array too small (%llu < %llu)",
            static_cast<unsigned long long>(local.size()),
            static_cast<unsigned long long>(len));
  const auto values = local.span();
  for (uint64_t i = 0; i < len; ++i) {
    global.set(base + i, values[i]);
  }
}

}  // namespace ppm
