// Public umbrella header of the Parallel Phase Model library.
//
// Quick tour (see README.md for the full story):
//
//   ppm::PpmConfig cfg;
//   cfg.machine.nodes = 4;
//   cfg.machine.cores_per_node = 4;
//   ppm::RunResult r = ppm::run(cfg, [](ppm::Env& env) {
//     auto a = env.global_array<double>(1'000'000);   // PPM_global_shared
//     auto vps = env.ppm_do(1'000'000);               // PPM_do(K)
//     vps.global_phase([&](ppm::Vp& vp) {             // PPM_global_phase
//       a.set(vp.global_rank(), 1.0);                 // deferred write
//     });
//     vps.global_phase([&](ppm::Vp& vp) {
//       double x = a.get(vp.global_rank());           // phase-start value
//       (void)x;
//     });
//   });
//
// Debugging a phase program: set cfg.runtime.validate_phases to run under
// the ppm::check sanitizer (docs/validator.md); findings come back in
// RunResult::check_report.
#pragma once

#include <functional>

#include "core/env.hpp"
#include "core/options.hpp"
#include "core/runtime.hpp"
#include "core/shared_array.hpp"

namespace ppm {

/// Execute a PPM node program on a simulated machine. The program runs
/// SPMD: once per node, each instance receiving its node's Env. Returns
/// timing and traffic statistics of the run.
RunResult run(const PpmConfig& config,
              const std::function<void(Env&)>& node_program);

/// Same, but on a caller-owned machine (lets benches reuse one machine or
/// inspect it afterwards).
RunResult run_on(cluster::Machine& machine, const RuntimeOptions& options,
                 const std::function<void(Env&)>& node_program);

}  // namespace ppm
