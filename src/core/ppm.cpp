#include "core/ppm.hpp"

namespace ppm {

RunResult run_on(cluster::Machine& machine, const RuntimeOptions& options,
                 const std::function<void(Env&)>& node_program) {
  Runtime runtime(machine, options);
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    node_program(env);
    nr.finish();
  });
  return runtime.collect();
}

RunResult run(const PpmConfig& config,
              const std::function<void(Env&)>& node_program) {
  cluster::MachineConfig mc = config.machine;
  if (mc.sim_threads == 0) mc.sim_threads = config.runtime.sim_threads;
  cluster::Machine machine(mc);
  return run_on(machine, config.runtime, node_program);
}

}  // namespace ppm
