file(REMOVE_RECURSE
  "CMakeFiles/ppm_cli.dir/ppm_cli.cpp.o"
  "CMakeFiles/ppm_cli.dir/ppm_cli.cpp.o.d"
  "ppm_cli"
  "ppm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
