# Empty dependencies file for ppm_cli.
# This may be replaced when dependencies are built.
