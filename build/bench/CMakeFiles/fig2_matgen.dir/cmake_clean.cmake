file(REMOVE_RECURSE
  "CMakeFiles/fig2_matgen.dir/fig2_matgen.cpp.o"
  "CMakeFiles/fig2_matgen.dir/fig2_matgen.cpp.o.d"
  "fig2_matgen"
  "fig2_matgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_matgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
