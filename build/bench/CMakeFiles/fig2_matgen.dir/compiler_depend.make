# Empty compiler generated dependencies file for fig2_matgen.
# This may be replaced when dependencies are built.
