file(REMOVE_RECURSE
  "CMakeFiles/ablation_overlap.dir/ablation_overlap.cpp.o"
  "CMakeFiles/ablation_overlap.dir/ablation_overlap.cpp.o.d"
  "ablation_overlap"
  "ablation_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
