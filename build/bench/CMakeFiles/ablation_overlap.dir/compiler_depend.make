# Empty compiler generated dependencies file for ablation_overlap.
# This may be replaced when dependencies are built.
