# Empty compiler generated dependencies file for ablation_bundling.
# This may be replaced when dependencies are built.
