file(REMOVE_RECURSE
  "CMakeFiles/ablation_bundling.dir/ablation_bundling.cpp.o"
  "CMakeFiles/ablation_bundling.dir/ablation_bundling.cpp.o.d"
  "ablation_bundling"
  "ablation_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
