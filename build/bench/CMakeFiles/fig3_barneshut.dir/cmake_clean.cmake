file(REMOVE_RECURSE
  "CMakeFiles/fig3_barneshut.dir/fig3_barneshut.cpp.o"
  "CMakeFiles/fig3_barneshut.dir/fig3_barneshut.cpp.o.d"
  "fig3_barneshut"
  "fig3_barneshut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_barneshut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
