
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_barneshut.cpp" "bench/CMakeFiles/fig3_barneshut.dir/fig3_barneshut.cpp.o" "gcc" "bench/CMakeFiles/fig3_barneshut.dir/fig3_barneshut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ppm_app_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/ppm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ppm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ppm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
