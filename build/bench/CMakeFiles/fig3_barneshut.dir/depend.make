# Empty dependencies file for fig3_barneshut.
# This may be replaced when dependencies are built.
