# Empty dependencies file for fig1_cg.
# This may be replaced when dependencies are built.
