file(REMOVE_RECURSE
  "CMakeFiles/fig1_cg.dir/fig1_cg.cpp.o"
  "CMakeFiles/fig1_cg.dir/fig1_cg.cpp.o.d"
  "fig1_cg"
  "fig1_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
