# Empty compiler generated dependencies file for ext_graph.
# This may be replaced when dependencies are built.
