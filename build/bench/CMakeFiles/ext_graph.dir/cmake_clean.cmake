file(REMOVE_RECURSE
  "CMakeFiles/ext_graph.dir/ext_graph.cpp.o"
  "CMakeFiles/ext_graph.dir/ext_graph.cpp.o.d"
  "ext_graph"
  "ext_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
