# Empty compiler generated dependencies file for micro_ppm.
# This may be replaced when dependencies are built.
