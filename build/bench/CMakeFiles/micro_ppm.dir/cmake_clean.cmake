file(REMOVE_RECURSE
  "CMakeFiles/micro_ppm.dir/micro_ppm.cpp.o"
  "CMakeFiles/micro_ppm.dir/micro_ppm.cpp.o.d"
  "micro_ppm"
  "micro_ppm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
