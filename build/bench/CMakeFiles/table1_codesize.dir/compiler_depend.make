# Empty compiler generated dependencies file for table1_codesize.
# This may be replaced when dependencies are built.
