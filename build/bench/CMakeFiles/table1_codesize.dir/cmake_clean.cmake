file(REMOVE_RECURSE
  "CMakeFiles/table1_codesize.dir/table1_codesize.cpp.o"
  "CMakeFiles/table1_codesize.dir/table1_codesize.cpp.o.d"
  "table1_codesize"
  "table1_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
