file(REMOVE_RECURSE
  "CMakeFiles/ablation_phases.dir/ablation_phases.cpp.o"
  "CMakeFiles/ablation_phases.dir/ablation_phases.cpp.o.d"
  "ablation_phases"
  "ablation_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
