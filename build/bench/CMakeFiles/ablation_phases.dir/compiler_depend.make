# Empty compiler generated dependencies file for ablation_phases.
# This may be replaced when dependencies are built.
