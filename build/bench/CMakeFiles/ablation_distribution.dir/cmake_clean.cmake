file(REMOVE_RECURSE
  "CMakeFiles/ablation_distribution.dir/ablation_distribution.cpp.o"
  "CMakeFiles/ablation_distribution.dir/ablation_distribution.cpp.o.d"
  "ablation_distribution"
  "ablation_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
