file(REMOVE_RECURSE
  "CMakeFiles/micro_mp.dir/micro_mp.cpp.o"
  "CMakeFiles/micro_mp.dir/micro_mp.cpp.o.d"
  "micro_mp"
  "micro_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
