# Empty dependencies file for micro_mp.
# This may be replaced when dependencies are built.
