file(REMOVE_RECURSE
  "CMakeFiles/ppm_cluster.dir/machine.cpp.o"
  "CMakeFiles/ppm_cluster.dir/machine.cpp.o.d"
  "libppm_cluster.a"
  "libppm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
