# Empty compiler generated dependencies file for ppm_cluster.
# This may be replaced when dependencies are built.
