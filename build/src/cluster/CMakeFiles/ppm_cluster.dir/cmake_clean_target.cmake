file(REMOVE_RECURSE
  "libppm_cluster.a"
)
