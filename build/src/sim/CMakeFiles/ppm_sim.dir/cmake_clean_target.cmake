file(REMOVE_RECURSE
  "libppm_sim.a"
)
