# Empty compiler generated dependencies file for ppm_sim.
# This may be replaced when dependencies are built.
