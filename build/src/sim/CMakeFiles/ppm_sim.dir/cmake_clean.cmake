file(REMOVE_RECURSE
  "CMakeFiles/ppm_sim.dir/engine.cpp.o"
  "CMakeFiles/ppm_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ppm_sim.dir/fiber.cpp.o"
  "CMakeFiles/ppm_sim.dir/fiber.cpp.o.d"
  "libppm_sim.a"
  "libppm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
