file(REMOVE_RECURSE
  "CMakeFiles/ppm_core.dir/ppm.cpp.o"
  "CMakeFiles/ppm_core.dir/ppm.cpp.o.d"
  "CMakeFiles/ppm_core.dir/runtime.cpp.o"
  "CMakeFiles/ppm_core.dir/runtime.cpp.o.d"
  "libppm_core.a"
  "libppm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
