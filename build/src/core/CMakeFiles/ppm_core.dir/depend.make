# Empty dependencies file for ppm_core.
# This may be replaced when dependencies are built.
