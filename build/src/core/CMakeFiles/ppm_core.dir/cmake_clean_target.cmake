file(REMOVE_RECURSE
  "libppm_core.a"
)
