file(REMOVE_RECURSE
  "CMakeFiles/ppm_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/ppm_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/ppm_util.dir/error.cpp.o"
  "CMakeFiles/ppm_util.dir/error.cpp.o.d"
  "CMakeFiles/ppm_util.dir/rng.cpp.o"
  "CMakeFiles/ppm_util.dir/rng.cpp.o.d"
  "CMakeFiles/ppm_util.dir/stats.cpp.o"
  "CMakeFiles/ppm_util.dir/stats.cpp.o.d"
  "libppm_util.a"
  "libppm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
