file(REMOVE_RECURSE
  "libppm_util.a"
)
