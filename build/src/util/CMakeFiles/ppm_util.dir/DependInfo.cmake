
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/byte_buffer.cpp" "src/util/CMakeFiles/ppm_util.dir/byte_buffer.cpp.o" "gcc" "src/util/CMakeFiles/ppm_util.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/util/CMakeFiles/ppm_util.dir/error.cpp.o" "gcc" "src/util/CMakeFiles/ppm_util.dir/error.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/ppm_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/ppm_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/ppm_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/ppm_util.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
