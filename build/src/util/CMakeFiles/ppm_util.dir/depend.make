# Empty dependencies file for ppm_util.
# This may be replaced when dependencies are built.
