file(REMOVE_RECURSE
  "CMakeFiles/ppm_mp.dir/comm.cpp.o"
  "CMakeFiles/ppm_mp.dir/comm.cpp.o.d"
  "libppm_mp.a"
  "libppm_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
