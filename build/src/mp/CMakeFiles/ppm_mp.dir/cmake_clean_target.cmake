file(REMOVE_RECURSE
  "libppm_mp.a"
)
