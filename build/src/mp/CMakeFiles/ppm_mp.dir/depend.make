# Empty dependencies file for ppm_mp.
# This may be replaced when dependencies are built.
