# Empty dependencies file for ppm_app_dense.
# This may be replaced when dependencies are built.
