file(REMOVE_RECURSE
  "libppm_app_dense.a"
)
