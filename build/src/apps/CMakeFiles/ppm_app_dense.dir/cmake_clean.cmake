file(REMOVE_RECURSE
  "CMakeFiles/ppm_app_dense.dir/dense/dense.cpp.o"
  "CMakeFiles/ppm_app_dense.dir/dense/dense.cpp.o.d"
  "libppm_app_dense.a"
  "libppm_app_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_app_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
