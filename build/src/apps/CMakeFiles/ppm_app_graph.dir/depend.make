# Empty dependencies file for ppm_app_graph.
# This may be replaced when dependencies are built.
