file(REMOVE_RECURSE
  "CMakeFiles/ppm_app_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/ppm_app_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/ppm_app_graph.dir/graph/graph_mpi.cpp.o"
  "CMakeFiles/ppm_app_graph.dir/graph/graph_mpi.cpp.o.d"
  "CMakeFiles/ppm_app_graph.dir/graph/graph_ppm.cpp.o"
  "CMakeFiles/ppm_app_graph.dir/graph/graph_ppm.cpp.o.d"
  "libppm_app_graph.a"
  "libppm_app_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_app_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
