file(REMOVE_RECURSE
  "libppm_app_graph.a"
)
