file(REMOVE_RECURSE
  "CMakeFiles/ppm_app_nbody.dir/nbody/body.cpp.o"
  "CMakeFiles/ppm_app_nbody.dir/nbody/body.cpp.o.d"
  "CMakeFiles/ppm_app_nbody.dir/nbody/nbody_mpi.cpp.o"
  "CMakeFiles/ppm_app_nbody.dir/nbody/nbody_mpi.cpp.o.d"
  "CMakeFiles/ppm_app_nbody.dir/nbody/nbody_ppm.cpp.o"
  "CMakeFiles/ppm_app_nbody.dir/nbody/nbody_ppm.cpp.o.d"
  "CMakeFiles/ppm_app_nbody.dir/nbody/nbody_serial.cpp.o"
  "CMakeFiles/ppm_app_nbody.dir/nbody/nbody_serial.cpp.o.d"
  "CMakeFiles/ppm_app_nbody.dir/nbody/octree.cpp.o"
  "CMakeFiles/ppm_app_nbody.dir/nbody/octree.cpp.o.d"
  "libppm_app_nbody.a"
  "libppm_app_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_app_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
