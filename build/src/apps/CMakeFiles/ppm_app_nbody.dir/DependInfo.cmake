
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/nbody/body.cpp" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/body.cpp.o" "gcc" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/body.cpp.o.d"
  "/root/repo/src/apps/nbody/nbody_mpi.cpp" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/nbody_mpi.cpp.o" "gcc" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/nbody_mpi.cpp.o.d"
  "/root/repo/src/apps/nbody/nbody_ppm.cpp" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/nbody_ppm.cpp.o" "gcc" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/nbody_ppm.cpp.o.d"
  "/root/repo/src/apps/nbody/nbody_serial.cpp" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/nbody_serial.cpp.o" "gcc" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/nbody_serial.cpp.o.d"
  "/root/repo/src/apps/nbody/octree.cpp" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/octree.cpp.o" "gcc" "src/apps/CMakeFiles/ppm_app_nbody.dir/nbody/octree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/ppm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ppm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ppm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
