file(REMOVE_RECURSE
  "libppm_app_nbody.a"
)
