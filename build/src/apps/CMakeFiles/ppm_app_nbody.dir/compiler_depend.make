# Empty compiler generated dependencies file for ppm_app_nbody.
# This may be replaced when dependencies are built.
