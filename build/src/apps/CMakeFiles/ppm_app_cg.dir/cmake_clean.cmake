file(REMOVE_RECURSE
  "CMakeFiles/ppm_app_cg.dir/cg/cg_mpi.cpp.o"
  "CMakeFiles/ppm_app_cg.dir/cg/cg_mpi.cpp.o.d"
  "CMakeFiles/ppm_app_cg.dir/cg/cg_ppm.cpp.o"
  "CMakeFiles/ppm_app_cg.dir/cg/cg_ppm.cpp.o.d"
  "CMakeFiles/ppm_app_cg.dir/cg/cg_ppm_ext.cpp.o"
  "CMakeFiles/ppm_app_cg.dir/cg/cg_ppm_ext.cpp.o.d"
  "CMakeFiles/ppm_app_cg.dir/cg/cg_serial.cpp.o"
  "CMakeFiles/ppm_app_cg.dir/cg/cg_serial.cpp.o.d"
  "CMakeFiles/ppm_app_cg.dir/cg/csr.cpp.o"
  "CMakeFiles/ppm_app_cg.dir/cg/csr.cpp.o.d"
  "CMakeFiles/ppm_app_cg.dir/cg/mm_io.cpp.o"
  "CMakeFiles/ppm_app_cg.dir/cg/mm_io.cpp.o.d"
  "CMakeFiles/ppm_app_cg.dir/cg/trisolve.cpp.o"
  "CMakeFiles/ppm_app_cg.dir/cg/trisolve.cpp.o.d"
  "libppm_app_cg.a"
  "libppm_app_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_app_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
