file(REMOVE_RECURSE
  "libppm_app_cg.a"
)
