# Empty compiler generated dependencies file for ppm_app_cg.
# This may be replaced when dependencies are built.
