file(REMOVE_RECURSE
  "libppm_app_multigrid.a"
)
