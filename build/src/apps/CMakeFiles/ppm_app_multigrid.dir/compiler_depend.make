# Empty compiler generated dependencies file for ppm_app_multigrid.
# This may be replaced when dependencies are built.
