file(REMOVE_RECURSE
  "CMakeFiles/ppm_app_multigrid.dir/multigrid/multigrid.cpp.o"
  "CMakeFiles/ppm_app_multigrid.dir/multigrid/multigrid.cpp.o.d"
  "CMakeFiles/ppm_app_multigrid.dir/multigrid/multigrid_ppm.cpp.o"
  "CMakeFiles/ppm_app_multigrid.dir/multigrid/multigrid_ppm.cpp.o.d"
  "libppm_app_multigrid.a"
  "libppm_app_multigrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_app_multigrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
