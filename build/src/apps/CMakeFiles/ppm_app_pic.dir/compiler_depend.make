# Empty compiler generated dependencies file for ppm_app_pic.
# This may be replaced when dependencies are built.
