file(REMOVE_RECURSE
  "libppm_app_pic.a"
)
