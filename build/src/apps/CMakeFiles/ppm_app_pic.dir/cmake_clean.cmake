file(REMOVE_RECURSE
  "CMakeFiles/ppm_app_pic.dir/pic/pic.cpp.o"
  "CMakeFiles/ppm_app_pic.dir/pic/pic.cpp.o.d"
  "libppm_app_pic.a"
  "libppm_app_pic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_app_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
