file(REMOVE_RECURSE
  "libppm_app_collocation.a"
)
