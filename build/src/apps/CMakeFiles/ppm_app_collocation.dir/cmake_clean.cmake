file(REMOVE_RECURSE
  "CMakeFiles/ppm_app_collocation.dir/collocation/collocation.cpp.o"
  "CMakeFiles/ppm_app_collocation.dir/collocation/collocation.cpp.o.d"
  "CMakeFiles/ppm_app_collocation.dir/collocation/matgen_mpi.cpp.o"
  "CMakeFiles/ppm_app_collocation.dir/collocation/matgen_mpi.cpp.o.d"
  "CMakeFiles/ppm_app_collocation.dir/collocation/matgen_ppm.cpp.o"
  "CMakeFiles/ppm_app_collocation.dir/collocation/matgen_ppm.cpp.o.d"
  "libppm_app_collocation.a"
  "libppm_app_collocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_app_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
