# Empty compiler generated dependencies file for ppm_app_collocation.
# This may be replaced when dependencies are built.
