# Empty compiler generated dependencies file for ppm_net.
# This may be replaced when dependencies are built.
