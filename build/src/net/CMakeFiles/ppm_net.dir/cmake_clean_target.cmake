file(REMOVE_RECURSE
  "libppm_net.a"
)
