file(REMOVE_RECURSE
  "CMakeFiles/ppm_net.dir/fabric.cpp.o"
  "CMakeFiles/ppm_net.dir/fabric.cpp.o.d"
  "libppm_net.a"
  "libppm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
