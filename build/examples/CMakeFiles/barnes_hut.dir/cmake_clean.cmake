file(REMOVE_RECURSE
  "CMakeFiles/barnes_hut.dir/barnes_hut.cpp.o"
  "CMakeFiles/barnes_hut.dir/barnes_hut.cpp.o.d"
  "barnes_hut"
  "barnes_hut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barnes_hut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
