# Empty compiler generated dependencies file for barnes_hut.
# This may be replaced when dependencies are built.
