# Empty dependencies file for cg_solver.
# This may be replaced when dependencies are built.
