file(REMOVE_RECURSE
  "CMakeFiles/matgen_collocation.dir/matgen_collocation.cpp.o"
  "CMakeFiles/matgen_collocation.dir/matgen_collocation.cpp.o.d"
  "matgen_collocation"
  "matgen_collocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matgen_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
