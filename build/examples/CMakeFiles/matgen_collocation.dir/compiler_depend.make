# Empty compiler generated dependencies file for matgen_collocation.
# This may be replaced when dependencies are built.
