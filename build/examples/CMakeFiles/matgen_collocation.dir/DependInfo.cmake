
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/matgen_collocation.cpp" "examples/CMakeFiles/matgen_collocation.dir/matgen_collocation.cpp.o" "gcc" "examples/CMakeFiles/matgen_collocation.dir/matgen_collocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ppm_app_collocation.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ppm_app_cg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/ppm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ppm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ppm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
