file(REMOVE_RECURSE
  "CMakeFiles/graph_bfs.dir/graph_bfs.cpp.o"
  "CMakeFiles/graph_bfs.dir/graph_bfs.cpp.o.d"
  "graph_bfs"
  "graph_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
