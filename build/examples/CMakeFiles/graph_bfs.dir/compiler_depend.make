# Empty compiler generated dependencies file for graph_bfs.
# This may be replaced when dependencies are built.
