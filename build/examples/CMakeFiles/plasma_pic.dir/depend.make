# Empty dependencies file for plasma_pic.
# This may be replaced when dependencies are built.
