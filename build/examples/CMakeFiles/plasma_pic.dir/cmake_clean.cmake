file(REMOVE_RECURSE
  "CMakeFiles/plasma_pic.dir/plasma_pic.cpp.o"
  "CMakeFiles/plasma_pic.dir/plasma_pic.cpp.o.d"
  "plasma_pic"
  "plasma_pic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plasma_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
