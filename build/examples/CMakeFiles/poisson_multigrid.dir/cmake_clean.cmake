file(REMOVE_RECURSE
  "CMakeFiles/poisson_multigrid.dir/poisson_multigrid.cpp.o"
  "CMakeFiles/poisson_multigrid.dir/poisson_multigrid.cpp.o.d"
  "poisson_multigrid"
  "poisson_multigrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson_multigrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
