# Empty compiler generated dependencies file for poisson_multigrid.
# This may be replaced when dependencies are built.
