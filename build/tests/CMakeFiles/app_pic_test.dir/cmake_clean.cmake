file(REMOVE_RECURSE
  "CMakeFiles/app_pic_test.dir/app_pic_test.cpp.o"
  "CMakeFiles/app_pic_test.dir/app_pic_test.cpp.o.d"
  "app_pic_test"
  "app_pic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_pic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
