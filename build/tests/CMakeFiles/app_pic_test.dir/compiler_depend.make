# Empty compiler generated dependencies file for app_pic_test.
# This may be replaced when dependencies are built.
