file(REMOVE_RECURSE
  "CMakeFiles/core_distribution_test.dir/core_distribution_test.cpp.o"
  "CMakeFiles/core_distribution_test.dir/core_distribution_test.cpp.o.d"
  "core_distribution_test"
  "core_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
