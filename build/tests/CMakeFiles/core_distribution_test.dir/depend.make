# Empty dependencies file for core_distribution_test.
# This may be replaced when dependencies are built.
