file(REMOVE_RECURSE
  "CMakeFiles/core_profiling_test.dir/core_profiling_test.cpp.o"
  "CMakeFiles/core_profiling_test.dir/core_profiling_test.cpp.o.d"
  "core_profiling_test"
  "core_profiling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_profiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
