# Empty compiler generated dependencies file for core_profiling_test.
# This may be replaced when dependencies are built.
