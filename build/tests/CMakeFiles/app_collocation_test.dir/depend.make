# Empty dependencies file for app_collocation_test.
# This may be replaced when dependencies are built.
