file(REMOVE_RECURSE
  "CMakeFiles/app_collocation_test.dir/app_collocation_test.cpp.o"
  "CMakeFiles/app_collocation_test.dir/app_collocation_test.cpp.o.d"
  "app_collocation_test"
  "app_collocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_collocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
