file(REMOVE_RECURSE
  "CMakeFiles/core_env_collectives_test.dir/core_env_collectives_test.cpp.o"
  "CMakeFiles/core_env_collectives_test.dir/core_env_collectives_test.cpp.o.d"
  "core_env_collectives_test"
  "core_env_collectives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_env_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
