# Empty compiler generated dependencies file for core_env_collectives_test.
# This may be replaced when dependencies are built.
