# Empty dependencies file for mp_p2p_test.
# This may be replaced when dependencies are built.
