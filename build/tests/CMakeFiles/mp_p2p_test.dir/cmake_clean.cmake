file(REMOVE_RECURSE
  "CMakeFiles/mp_p2p_test.dir/mp_p2p_test.cpp.o"
  "CMakeFiles/mp_p2p_test.dir/mp_p2p_test.cpp.o.d"
  "mp_p2p_test"
  "mp_p2p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
