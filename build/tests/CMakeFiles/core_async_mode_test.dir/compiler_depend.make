# Empty compiler generated dependencies file for core_async_mode_test.
# This may be replaced when dependencies are built.
