file(REMOVE_RECURSE
  "CMakeFiles/app_dense_test.dir/app_dense_test.cpp.o"
  "CMakeFiles/app_dense_test.dir/app_dense_test.cpp.o.d"
  "app_dense_test"
  "app_dense_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_dense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
