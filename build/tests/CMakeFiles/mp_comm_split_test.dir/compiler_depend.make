# Empty compiler generated dependencies file for mp_comm_split_test.
# This may be replaced when dependencies are built.
