file(REMOVE_RECURSE
  "CMakeFiles/mp_comm_split_test.dir/mp_comm_split_test.cpp.o"
  "CMakeFiles/mp_comm_split_test.dir/mp_comm_split_test.cpp.o.d"
  "mp_comm_split_test"
  "mp_comm_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_comm_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
