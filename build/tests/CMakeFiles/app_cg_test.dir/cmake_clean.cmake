file(REMOVE_RECURSE
  "CMakeFiles/app_cg_test.dir/app_cg_test.cpp.o"
  "CMakeFiles/app_cg_test.dir/app_cg_test.cpp.o.d"
  "app_cg_test"
  "app_cg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_cg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
