# Empty dependencies file for app_cg_test.
# This may be replaced when dependencies are built.
