file(REMOVE_RECURSE
  "CMakeFiles/core_view_test.dir/core_view_test.cpp.o"
  "CMakeFiles/core_view_test.dir/core_view_test.cpp.o.d"
  "core_view_test"
  "core_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
