file(REMOVE_RECURSE
  "CMakeFiles/app_mm_io_test.dir/app_mm_io_test.cpp.o"
  "CMakeFiles/app_mm_io_test.dir/app_mm_io_test.cpp.o.d"
  "app_mm_io_test"
  "app_mm_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_mm_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
