# Empty compiler generated dependencies file for app_mm_io_test.
# This may be replaced when dependencies are built.
