file(REMOVE_RECURSE
  "CMakeFiles/net_fabric_test.dir/net_fabric_test.cpp.o"
  "CMakeFiles/net_fabric_test.dir/net_fabric_test.cpp.o.d"
  "net_fabric_test"
  "net_fabric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
