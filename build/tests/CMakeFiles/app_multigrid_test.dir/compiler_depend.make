# Empty compiler generated dependencies file for app_multigrid_test.
# This may be replaced when dependencies are built.
