file(REMOVE_RECURSE
  "CMakeFiles/app_multigrid_test.dir/app_multigrid_test.cpp.o"
  "CMakeFiles/app_multigrid_test.dir/app_multigrid_test.cpp.o.d"
  "app_multigrid_test"
  "app_multigrid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_multigrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
