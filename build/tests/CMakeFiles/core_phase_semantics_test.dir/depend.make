# Empty dependencies file for core_phase_semantics_test.
# This may be replaced when dependencies are built.
