file(REMOVE_RECURSE
  "CMakeFiles/core_phase_semantics_test.dir/core_phase_semantics_test.cpp.o"
  "CMakeFiles/core_phase_semantics_test.dir/core_phase_semantics_test.cpp.o.d"
  "core_phase_semantics_test"
  "core_phase_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_phase_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
