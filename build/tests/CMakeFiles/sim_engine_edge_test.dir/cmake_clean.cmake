file(REMOVE_RECURSE
  "CMakeFiles/sim_engine_edge_test.dir/sim_engine_edge_test.cpp.o"
  "CMakeFiles/sim_engine_edge_test.dir/sim_engine_edge_test.cpp.o.d"
  "sim_engine_edge_test"
  "sim_engine_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_engine_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
