file(REMOVE_RECURSE
  "CMakeFiles/app_nbody_test.dir/app_nbody_test.cpp.o"
  "CMakeFiles/app_nbody_test.dir/app_nbody_test.cpp.o.d"
  "app_nbody_test"
  "app_nbody_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_nbody_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
