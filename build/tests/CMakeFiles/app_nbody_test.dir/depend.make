# Empty dependencies file for app_nbody_test.
# This may be replaced when dependencies are built.
