# Empty dependencies file for mp_collectives_test.
# This may be replaced when dependencies are built.
