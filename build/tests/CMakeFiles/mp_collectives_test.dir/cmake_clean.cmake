file(REMOVE_RECURSE
  "CMakeFiles/mp_collectives_test.dir/mp_collectives_test.cpp.o"
  "CMakeFiles/mp_collectives_test.dir/mp_collectives_test.cpp.o.d"
  "mp_collectives_test"
  "mp_collectives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
