file(REMOVE_RECURSE
  "CMakeFiles/sim_sync_test.dir/sim_sync_test.cpp.o"
  "CMakeFiles/sim_sync_test.dir/sim_sync_test.cpp.o.d"
  "sim_sync_test"
  "sim_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
