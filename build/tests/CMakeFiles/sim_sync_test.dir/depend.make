# Empty dependencies file for sim_sync_test.
# This may be replaced when dependencies are built.
