# Empty compiler generated dependencies file for core_runtime_test.
# This may be replaced when dependencies are built.
