file(REMOVE_RECURSE
  "CMakeFiles/core_runtime_test.dir/core_runtime_test.cpp.o"
  "CMakeFiles/core_runtime_test.dir/core_runtime_test.cpp.o.d"
  "core_runtime_test"
  "core_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
