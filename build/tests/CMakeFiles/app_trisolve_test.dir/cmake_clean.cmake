file(REMOVE_RECURSE
  "CMakeFiles/app_trisolve_test.dir/app_trisolve_test.cpp.o"
  "CMakeFiles/app_trisolve_test.dir/app_trisolve_test.cpp.o.d"
  "app_trisolve_test"
  "app_trisolve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_trisolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
