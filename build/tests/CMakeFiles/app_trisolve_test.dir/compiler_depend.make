# Empty compiler generated dependencies file for app_trisolve_test.
# This may be replaced when dependencies are built.
