file(REMOVE_RECURSE
  "CMakeFiles/app_graph_test.dir/app_graph_test.cpp.o"
  "CMakeFiles/app_graph_test.dir/app_graph_test.cpp.o.d"
  "app_graph_test"
  "app_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
