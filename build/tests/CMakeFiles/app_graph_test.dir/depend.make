# Empty dependencies file for app_graph_test.
# This may be replaced when dependencies are built.
