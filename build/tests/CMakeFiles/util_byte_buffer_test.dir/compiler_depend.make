# Empty compiler generated dependencies file for util_byte_buffer_test.
# This may be replaced when dependencies are built.
