file(REMOVE_RECURSE
  "CMakeFiles/util_byte_buffer_test.dir/util_byte_buffer_test.cpp.o"
  "CMakeFiles/util_byte_buffer_test.dir/util_byte_buffer_test.cpp.o.d"
  "util_byte_buffer_test"
  "util_byte_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_byte_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
