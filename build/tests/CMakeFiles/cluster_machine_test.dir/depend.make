# Empty dependencies file for cluster_machine_test.
# This may be replaced when dependencies are built.
