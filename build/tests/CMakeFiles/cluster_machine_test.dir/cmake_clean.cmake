file(REMOVE_RECURSE
  "CMakeFiles/cluster_machine_test.dir/cluster_machine_test.cpp.o"
  "CMakeFiles/cluster_machine_test.dir/cluster_machine_test.cpp.o.d"
  "cluster_machine_test"
  "cluster_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
