# Empty dependencies file for core_golden_model_test.
# This may be replaced when dependencies are built.
