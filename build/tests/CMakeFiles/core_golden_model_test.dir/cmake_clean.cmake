file(REMOVE_RECURSE
  "CMakeFiles/core_golden_model_test.dir/core_golden_model_test.cpp.o"
  "CMakeFiles/core_golden_model_test.dir/core_golden_model_test.cpp.o.d"
  "core_golden_model_test"
  "core_golden_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_golden_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
