// MPI_Comm_split-style sub-communicators: group membership, rank
// renumbering, matching isolation between communicators, and collectives
// restricted to the subgroup.
#include <gtest/gtest.h>

#include <vector>

#include "mp/comm.hpp"

namespace ppm::mp {
namespace {

using cluster::Machine;
using cluster::Place;

void run_ranks(int nodes, int cores,
               const std::function<void(Comm&)>& rank_main) {
  Machine machine({.nodes = nodes, .cores_per_node = cores});
  World world(machine);
  machine.run_per_core([&](const Place& place) {
    Comm comm = world.comm_at(place);
    rank_main(comm);
  });
}

TEST(CommSplit, EvenOddGroupsRenumberRanks) {
  run_ranks(4, 2, [&](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    EXPECT_EQ(sub.world_rank(), world.rank());
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  run_ranks(4, 1, [&](Comm& world) {
    // Reverse the order: key = -rank.
    Comm sub = world.split(0, -world.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - world.rank());
  });
}

TEST(CommSplit, SubgroupCollectivesSeeOnlyMembers) {
  run_ranks(4, 2, [&](Comm& world) {
    const int color = world.rank() % 2;
    Comm sub = world.split(color, world.rank());
    // Sum of world ranks within the subgroup only.
    const int total = sub.allreduce_value(world.rank(),
                                          [](int a, int b) { return a + b; });
    const int expect = color == 0 ? (0 + 2 + 4 + 6) : (1 + 3 + 5 + 7);
    EXPECT_EQ(total, expect);
    // Allgather returns members in subgroup order.
    const auto members = sub.allgatherv(
        std::span<const int>(std::vector<int>{world.rank()}));
    for (int r = 0; r < sub.size(); ++r) {
      EXPECT_EQ(members[static_cast<size_t>(r)][0], 2 * r + color);
    }
  });
}

TEST(CommSplit, PointToPointUsesSubgroupRanks) {
  std::vector<int> got(2, -1);
  run_ranks(2, 2, [&](Comm& world) {
    // Two row communicators: ranks {0,1} and {2,3}.
    Comm row = world.split(world.rank() / 2, world.rank());
    ASSERT_EQ(row.size(), 2);
    if (row.rank() == 0) {
      row.send_value<int>(1, 5, 100 + world.rank());
    } else {
      Status st;
      const int v = row.recv_value<int>(0, 5, &st);
      EXPECT_EQ(st.source, 0);  // subgroup rank, not world rank
      got[static_cast<size_t>(world.rank() / 2)] = v;
    }
  });
  EXPECT_EQ(got[0], 100);  // from world rank 0
  EXPECT_EQ(got[1], 102);  // from world rank 2
}

TEST(CommSplit, TrafficIsIsolatedBetweenCommunicators) {
  // The same (src local rank, tag) exists in both the world and the
  // subgroup; matching must keep them apart.
  run_ranks(2, 1, [&](Comm& world) {
    Comm sub = world.split(0, world.rank());  // same membership, new token
    if (world.rank() == 0) {
      world.send_value<int>(1, 7, 111);
      sub.send_value<int>(1, 7, 222);
    } else {
      // Receive in the opposite order of sending: matching by
      // communicator, not arrival.
      EXPECT_EQ(sub.recv_value<int>(0, 7), 222);
      EXPECT_EQ(world.recv_value<int>(0, 7), 111);
    }
  });
}

TEST(CommSplit, NestedSplits) {
  run_ranks(4, 2, [&](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());  // two halves
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());  // two pairs
    ASSERT_EQ(quarter.size(), 2);
    const int sum = quarter.allreduce_value(
        world.rank(), [](int a, int b) { return a + b; });
    // Pairs of consecutive world ranks: {0,1},{2,3},{4,5},{6,7}.
    EXPECT_EQ(sum, (world.rank() / 2) * 4 + 1);
  });
}

TEST(CommSplit, SingletonGroups) {
  run_ranks(3, 1, [&](Comm& world) {
    Comm solo = world.split(world.rank(), 0);  // every rank its own color
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_EQ(solo.allreduce_value(world.rank(),
                                   [](int a, int b) { return a + b; }),
              world.rank());
    solo.barrier();  // must not deadlock
  });
}

TEST(CommSplit, RowColumnGridDecomposition) {
  // Classic 2D grid use: 4 ranks as a 2x2 grid with row and column comms.
  run_ranks(2, 2, [&](Comm& world) {
    const int row = world.rank() / 2;
    const int col = world.rank() % 2;
    Comm row_comm = world.split(row, col);
    Comm col_comm = world.split(col, row);
    const int row_sum = row_comm.allreduce_value(
        world.rank(), [](int a, int b) { return a + b; });
    const int col_sum = col_comm.allreduce_value(
        world.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(row_sum, row == 0 ? 1 : 5);
    EXPECT_EQ(col_sum, col == 0 ? 2 : 4);
  });
}

}  // namespace
}  // namespace ppm::mp
