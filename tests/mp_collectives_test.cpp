#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mp/comm.hpp"

namespace ppm::mp {
namespace {

using cluster::Machine;
using cluster::Place;

struct Shape {
  int nodes;
  int cores;
};

class MpCollectives : public ::testing::TestWithParam<Shape> {
 protected:
  void run(const std::function<void(Comm&)>& rank_main) {
    Machine machine(
        {.nodes = GetParam().nodes, .cores_per_node = GetParam().cores});
    World world(machine);
    machine.run_per_core([&](const Place& place) {
      Comm comm = world.comm_at(place);
      rank_main(comm);
    });
  }
  int world_size() const { return GetParam().nodes * GetParam().cores; }
};

TEST_P(MpCollectives, BarrierReleasesNoEarlierThanLastArrival) {
  const int p = world_size();
  std::vector<int64_t> released(static_cast<size_t>(p), -1);
  run([&](Comm& comm) {
    auto& engine = *sim::current_engine();
    engine.advance_ns(1000 * (comm.rank() + 1));
    comm.barrier();
    released[static_cast<size_t>(comm.rank())] = engine.now_ns();
  });
  for (int64_t t : released) EXPECT_GE(t, 1000 * p);
}

TEST_P(MpCollectives, BcastFromEveryRoot) {
  const int p = world_size();
  for (int root = 0; root < p; ++root) {
    std::vector<std::vector<int>> got(static_cast<size_t>(p));
    run([&](Comm& comm) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, root * 7, -1};
      if (comm.rank() != root) data.resize(3);
      comm.bcast(data, root);
      got[static_cast<size_t>(comm.rank())] = data;
    });
    for (const auto& v : got) {
      EXPECT_EQ(v, (std::vector<int>{root, root * 7, -1}));
    }
  }
}

TEST_P(MpCollectives, ReduceSumsElementwise) {
  const int p = world_size();
  std::vector<long> root_result;
  run([&](Comm& comm) {
    const std::vector<long> mine = {static_cast<long>(comm.rank()),
                                    static_cast<long>(comm.rank() * 2), 1};
    auto result =
        comm.reduce(std::span<const long>(mine),
                    [](long a, long b) { return a + b; }, /*root=*/0);
    if (comm.rank() == 0) root_result = result;
  });
  const long ranksum = static_cast<long>(p) * (p - 1) / 2;
  EXPECT_EQ(root_result,
            (std::vector<long>{ranksum, 2 * ranksum, static_cast<long>(p)}));
}

TEST_P(MpCollectives, AllreduceMaxEverywhere) {
  const int p = world_size();
  std::vector<double> got(static_cast<size_t>(p), -1);
  run([&](Comm& comm) {
    got[static_cast<size_t>(comm.rank())] = comm.allreduce_value(
        static_cast<double>(comm.rank() * comm.rank()),
        [](double a, double b) { return std::max(a, b); });
  });
  for (double v : got) {
    EXPECT_DOUBLE_EQ(v, static_cast<double>((p - 1) * (p - 1)));
  }
}

TEST_P(MpCollectives, GathervCollectsVariableBlocks) {
  const int p = world_size();
  std::vector<std::vector<int>> at_root;
  run([&](Comm& comm) {
    // Rank r contributes r elements (rank 0 contributes none).
    std::vector<int> mine(static_cast<size_t>(comm.rank()), comm.rank());
    auto all = comm.gatherv(std::span<const int>(mine), /*root=*/0);
    if (comm.rank() == 0) at_root = all;
  });
  ASSERT_EQ(at_root.size(), static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(at_root[static_cast<size_t>(r)],
              std::vector<int>(static_cast<size_t>(r), r));
  }
}

TEST_P(MpCollectives, AllgathervEveryoneSeesEveryBlock) {
  const int p = world_size();
  std::vector<std::vector<std::vector<int>>> got(static_cast<size_t>(p));
  run([&](Comm& comm) {
    std::vector<int> mine = {comm.rank(), comm.rank() + 100};
    got[static_cast<size_t>(comm.rank())] =
        comm.allgatherv(std::span<const int>(mine));
  });
  for (int viewer = 0; viewer < p; ++viewer) {
    const auto& view = got[static_cast<size_t>(viewer)];
    ASSERT_EQ(view.size(), static_cast<size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(view[static_cast<size_t>(r)],
                (std::vector<int>{r, r + 100}));
    }
  }
}

TEST_P(MpCollectives, AlltoallvPersonalizedExchange) {
  const int p = world_size();
  std::vector<std::vector<std::vector<int>>> got(static_cast<size_t>(p));
  run([&](Comm& comm) {
    std::vector<std::vector<int>> blocks(static_cast<size_t>(p));
    for (int d = 0; d < p; ++d) {
      blocks[static_cast<size_t>(d)] = {comm.rank() * 1000 + d};
    }
    got[static_cast<size_t>(comm.rank())] = comm.alltoallv(blocks);
  });
  for (int me = 0; me < p; ++me) {
    const auto& inbox = got[static_cast<size_t>(me)];
    ASSERT_EQ(inbox.size(), static_cast<size_t>(p));
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(inbox[static_cast<size_t>(src)],
                (std::vector<int>{src * 1000 + me}));
    }
  }
}

TEST_P(MpCollectives, InclusiveScanPrefixSums) {
  const int p = world_size();
  std::vector<long> got(static_cast<size_t>(p), -1);
  run([&](Comm& comm) {
    got[static_cast<size_t>(comm.rank())] = comm.scan_inclusive(
        static_cast<long>(comm.rank() + 1),
        [](long a, long b) { return a + b; });
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(got[static_cast<size_t>(r)],
              static_cast<long>(r + 1) * (r + 2) / 2);
  }
}

TEST_P(MpCollectives, BackToBackCollectivesDoNotCrossTalk) {
  const int p = world_size();
  std::vector<long> sums(static_cast<size_t>(p), 0);
  run([&](Comm& comm) {
    long total = 0;
    for (int round = 0; round < 5; ++round) {
      total += comm.allreduce_value(static_cast<long>(round * comm.rank()),
                                    [](long a, long b) { return a + b; });
      comm.barrier();
    }
    sums[static_cast<size_t>(comm.rank())] = total;
  });
  const long ranksum = static_cast<long>(p) * (p - 1) / 2;
  const long expect = (0 + 1 + 2 + 3 + 4) * ranksum;
  for (long s : sums) EXPECT_EQ(s, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MpCollectives,
    ::testing::Values(Shape{1, 1}, Shape{1, 4}, Shape{2, 2}, Shape{3, 1},
                      Shape{2, 4}, Shape{4, 3}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace ppm::mp
