// Runtime mechanics: read bundling and caching, gather, eager write
// streaming, scheduling policies, locality utilities, misuse checks.
#include <gtest/gtest.h>

#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

TEST(RuntimeReads, BlockCacheServesRepeatedReads) {
  PpmConfig c = cfg(2, 1);
  c.runtime.bundle_reads = true;
  c.runtime.read_block_bytes = 1024;  // 128 doubles per block
  RunResult r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(256);  // nodes own 128 each
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      // 128 reads of remote elements covered by ONE cache block.
      double sum = 0;
      for (uint64_t i = 128; i < 256; ++i) sum += a.get(i);
      (void)sum;
    });
  });
  EXPECT_EQ(r.remote_blocks_fetched, 1u);
  EXPECT_EQ(r.remote_reads_served_from_cache, 127u);
}

TEST(RuntimeReads, BundlingOffFetchesEveryElement) {
  PpmConfig c = cfg(2, 1);
  c.runtime.bundle_reads = false;
  RunResult r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(256);
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      double sum = 0;
      for (uint64_t i = 128; i < 160; ++i) sum += a.get(i);
      (void)sum;
    });
  });
  EXPECT_EQ(r.remote_blocks_fetched, 32u);
  EXPECT_EQ(r.remote_reads_served_from_cache, 0u);
}

TEST(RuntimeReads, CacheIsInvalidatedAtPhaseCommit) {
  PpmConfig c = cfg(2, 1);
  std::vector<double> seen;
  run(c, [&](Env& env) {
    auto a = env.global_array<double>(2);  // node 0 owns 0, node 1 owns 1
    for (int round = 1; round <= 3; ++round) {
      auto vps = env.ppm_do(1);
      vps.global_phase([&](Vp& vp) {
        (void)vp;
        if (env.node_id() == 0) {
          seen.push_back(a.get(1));      // remote read (cached)
          seen.push_back(a.get(1));      // cache hit, same value
        } else {
          a.set(1, round * 10.0);        // owner updates for next phase
        }
      });
    }
  });
  // Phase k must observe the value committed by phase k-1, never a stale
  // cache line.
  EXPECT_EQ(seen, (std::vector<double>{0, 0, 10, 10, 20, 20}));
}

TEST(RuntimeReads, RequestCombiningAcrossCores) {
  PpmConfig c = cfg(2, 4);
  c.runtime.read_block_bytes = 4096;
  RunResult r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(512);
    // 4 cores on node 0 all read the same remote block concurrently.
    auto vps = env.ppm_do(env.node_id() == 0 ? 4 : 0);
    vps.global_phase([&](Vp& vp) {
      double sum = 0;
      for (uint64_t i = 256; i < 384; ++i) sum += a.get(i);
      (void)sum;
      (void)vp;
    });
  });
  // One fetch for the shared block; every other access combined/cached.
  EXPECT_EQ(r.remote_blocks_fetched, 1u);
}

TEST(RuntimeReads, GatherBundlesPerOwner) {
  PpmConfig c = cfg(4, 1);
  std::vector<double> got;
  RunResult r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(64);  // 16 per node
    // Populate: element i = i * 1.5.
    auto vps = env.ppm_do(16);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), static_cast<double>(vp.global_rank()) * 1.5);
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        // Indices scattered over 3 remote owners + self, in random order.
        const std::vector<uint64_t> idx = {60, 1, 17, 33, 34, 61, 2, 18};
        got = a.gather(idx);
      }
    });
  });
  EXPECT_EQ(got, (std::vector<double>{90, 1.5, 25.5, 49.5, 51, 91.5, 3, 27}));
  (void)r;
}

TEST(RuntimeWrites, EagerFlushStreamsFragmentsMidPhase) {
  PpmConfig base = cfg(2, 1);
  base.runtime.flush_threshold_bytes = 512;

  auto count_bundles = [&](bool eager) {
    PpmConfig c = base;
    c.runtime.eager_flush = eager;
    return run(c, [&](Env& env) {
      auto a = env.global_array<double>(4096);
      // Node 0's VPs write remote elements; enough volume to cross the
      // flush threshold many times.
      auto vps = env.ppm_do(env.node_id() == 0 ? 2048 : 0);
      vps.global_phase([&](Vp& vp) {
        a.set(2048 + vp.node_rank(), 1.0);
      });
    });
  };

  const RunResult eager_on = count_bundles(true);
  const RunResult eager_off = count_bundles(false);
  // Eager: many fragments; lazy: exactly one bundle per (src,dst) pair per
  // phase. Final values identical either way (checked by semantics tests).
  EXPECT_GT(eager_on.bundles_sent, 10u);
  // Two global phases happen per run? No: one phase, two nodes, each node
  // sends 1 final bundle to the other.
  EXPECT_EQ(eager_off.bundles_sent, 2u);
}

TEST(RuntimeWrites, WriteEntriesCounted) {
  RunResult r = run(cfg(2, 2), [&](Env& env) {
    auto a = env.global_array<int>(100);
    auto vps = env.ppm_do(10);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), 1);
      a.add(vp.global_rank(), 2);
    });
  });
  EXPECT_EQ(r.write_entries, 2u * 10u * 2u);
}

TEST(RuntimeSchedule, StaticAndDynamicProduceSameResult) {
  for (SchedulePolicy policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kDynamic}) {
    PpmConfig c = cfg(2, 4);
    c.runtime.schedule = policy;
    int64_t checksum = 0;
    run(c, [&](Env& env) {
      auto a = env.global_array<int64_t>(1000);
      auto vps = env.ppm_do(500);
      vps.global_phase([&](Vp& vp) {
        a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank() * 7));
      });
      vps.global_phase([&](Vp& vp) {
        if (env.node_id() == 0 && vp.node_rank() == 0) {
          for (uint64_t i = 0; i < 1000; ++i) checksum += a.get(i);
        }
      });
    });
    // 2 nodes x 500 VPs cover ranks [0, 1000).
    int64_t expect = 0;
    for (int64_t i = 0; i < 1000; ++i) expect += i * 7;
    EXPECT_EQ(checksum, expect) << "policy " << static_cast<int>(policy);
  }
}

TEST(RuntimeSchedule, ChunkSizeOverrideRespected) {
  PpmConfig c = cfg(1, 4);
  c.runtime.chunk_size = 3;
  int64_t sum = 0;
  run(c, [&](Env& env) {
    auto a = env.node_array<int64_t>(1);
    auto vps = env.ppm_do_async(100);
    vps.node_phase([&](Vp& vp) {
      (void)vp;
      a.add(0, 1);
    });
    vps.node_phase([&](Vp& vp) {
      if (vp.node_rank() == 0) sum = a.get(0);
    });
  });
  EXPECT_EQ(sum, 100);
}

TEST(RuntimeLocality, CastingUtilitiesDescribeDistribution) {
  run(cfg(4, 1), [&](Env& env) {
    auto a = env.global_array<float>(100);  // chunk = 25
    EXPECT_EQ(a.local_begin(), static_cast<uint64_t>(env.node_id()) * 25);
    EXPECT_EQ(a.local_end(), a.local_begin() + 25);
    EXPECT_EQ(a.local_span().size(), 25u);
    EXPECT_EQ(a.owner(0), 0);
    EXPECT_EQ(a.owner(24), 0);
    EXPECT_EQ(a.owner(25), 1);
    EXPECT_EQ(a.owner(99), 3);
  });
}

TEST(RuntimeLocality, UnevenTailDistribution) {
  run(cfg(4, 1), [&](Env& env) {
    auto a = env.global_array<double>(10);  // chunk = 3: 3,3,3,1
    const uint64_t expect_len =
        env.node_id() < 3 ? 3 : 1;
    EXPECT_EQ(a.local_end() - a.local_begin(), expect_len);
    EXPECT_EQ(a.owner(9), 3);
  });
}

TEST(RuntimeLocality, LocalWritesOutsidePhasesAreImmediate) {
  std::vector<double> seen;
  run(cfg(2, 1), [&](Env& env) {
    auto a = env.global_array<double>(8);
    // Initialize own chunk directly from the node program.
    for (uint64_t i = a.local_begin(); i < a.local_end(); ++i) {
      a.set(i, static_cast<double>(i) + 0.5);
    }
    EXPECT_DOUBLE_EQ(a.get(a.local_begin()), a.local_begin() + 0.5);
    env.barrier();
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      if (env.node_id() == 0) {
        for (uint64_t i = 0; i < 8; ++i) seen.push_back(a.get(i));
      }
    });
  });
  EXPECT_EQ(seen,
            (std::vector<double>{0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5}));
}

TEST(RuntimeMisuse, GlobalWriteInNodePhaseRejected) {
  EXPECT_THROW(run(cfg(2, 1),
                   [&](Env& env) {
                     auto a = env.global_array<int>(4);
                     auto vps = env.ppm_do(1);
                     vps.node_phase([&](Vp& vp) {
                       (void)vp;
                       a.set(0, 1);
                     });
                   }),
               Error);
}

TEST(RuntimeMisuse, RemoteWriteOutsidePhaseRejected) {
  EXPECT_THROW(run(cfg(2, 1),
                   [&](Env& env) {
                     auto a = env.global_array<int>(4);
                     if (env.node_id() == 0) a.set(3, 1);  // owned by node 1
                     env.barrier();
                   }),
               Error);
}

TEST(RuntimeMisuse, OutOfRangeAccessRejected) {
  EXPECT_THROW(run(cfg(1, 1),
                   [&](Env& env) {
                     auto a = env.global_array<int>(4);
                     (void)a.get(4);
                   }),
               Error);
}

TEST(RuntimeMisuse, WriteToUnknownArrayRejected) {
  // Regression: write_elem used to index arrays_ before validating the
  // id, so an unknown array id was undefined behavior instead of Error.
  EXPECT_THROW(run(cfg(1, 1),
                   [&](Env& env) {
                     auto vps = env.ppm_do(1);
                     vps.global_phase([&](Vp& vp) {
                       (void)vp;
                       const int v = 1;
                       env.runtime().write_elem(
                           99, 0, reinterpret_cast<const std::byte*>(&v),
                           detail::WriteOp::kSet);
                     });
                   }),
               Error);
}

TEST(RuntimeMisuse, NestedPhasesRejected) {
  EXPECT_THROW(run(cfg(1, 1),
                   [&](Env& env) {
                     auto vps = env.ppm_do(1);
                     vps.global_phase([&](Vp& vp) {
                       (void)vp;
                       auto inner = env.ppm_do_async(1);
                       inner.node_phase([](Vp&) {});
                     });
                   }),
               Error);
}

TEST(RuntimeMisuse, GlobalPhaseOnAsyncGroupRejected) {
  EXPECT_THROW(run(cfg(2, 1),
                   [&](Env& env) {
                     auto vps = env.ppm_do_async(4);
                     vps.global_phase([](Vp&) {});
                   }),
               Error);
}

TEST(RuntimeMisuse, ArrayCreationInsidePhaseRejected) {
  EXPECT_THROW(run(cfg(1, 1),
                   [&](Env& env) {
                     auto vps = env.ppm_do(1);
                     vps.global_phase([&](Vp& vp) {
                       (void)vp;
                       (void)env.global_array<int>(4);
                     });
                   }),
               Error);
}

TEST(RuntimeMisuse, ZeroSizedArrayRejected) {
  EXPECT_THROW(run(cfg(1, 1),
                   [&](Env& env) { (void)env.global_array<int>(0); }),
               Error);
}

TEST(RuntimeOverhead, ModeledAccessOverheadChargesTime) {
  PpmConfig slow = cfg(1, 1);
  slow.runtime.access_overhead_ns = 100;
  PpmConfig fast = cfg(1, 1);
  fast.runtime.access_overhead_ns = 0;

  auto program = [](Env& env) {
    auto a = env.node_array<double>(1000);
    auto vps = env.ppm_do(1000);
    vps.node_phase([&](Vp& vp) { a.set(vp.node_rank(), 1.0); });
  };
  const RunResult r_slow = run(slow, program);
  const RunResult r_fast = run(fast, program);
  EXPECT_GE(r_slow.duration_ns, r_fast.duration_ns + 1000 * 100);
}

TEST(RuntimeAsync, DifferentNodesDifferentWork) {
  // The paper's asynchronous mode: nodes run different K, node phases only.
  std::vector<int64_t> per_node(4, -1);
  run(cfg(4, 2), [&](Env& env) {
    const uint64_t k = 10 * (static_cast<uint64_t>(env.node_id()) + 1);
    auto sum = env.node_array<int64_t>(1);
    auto vps = env.ppm_do_async(k);
    vps.node_phase([&](Vp& vp) {
      (void)vp;
      sum.add(0, 1);
    });
    per_node[static_cast<size_t>(env.node_id())] = sum.span()[0];
  });
  EXPECT_EQ(per_node, (std::vector<int64_t>{10, 20, 30, 40}));
}

TEST(RuntimeStats, PhaseCountersAccumulate) {
  RunResult r = run(cfg(3, 1), [&](Env& env) {
    auto vps = env.ppm_do(2);
    vps.global_phase([](Vp&) {});
    vps.global_phase([](Vp&) {});
    vps.node_phase([](Vp&) {});
  });
  EXPECT_EQ(r.global_phases, 2u);       // per cluster
  EXPECT_EQ(r.node_phases, 3u);         // summed over nodes
}

}  // namespace
}  // namespace ppm
